// Benchmarks regenerating the paper's evaluation (§7). One benchmark per
// table/half-table, plus the design-choice ablations DESIGN.md calls out.
// The measured quantity is simulated elapsed time (see DESIGN.md §1); the
// testing.B wall-clock numbers measure the harness itself. Run
//
//	go test -bench=. -benchmem
//
// and read the ReportMetric columns: base_ms, prov_ms, overhead_pct and
// paper_pct per workload.
package passv2_test

import (
	"fmt"
	"testing"

	"passv2/internal/analyzer"
	"passv2/internal/bench"
	"passv2/internal/lasagna"
	"passv2/internal/pnode"
	"passv2/internal/pql"
	"passv2/internal/record"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// benchScale keeps `go test -bench=.` fast; cmd/passbench defaults to 0.4
// and accepts -scale 1.0 for paper-sized runs.
const benchScale = 0.1

// BenchmarkTable2PASSv2 regenerates the local half of Table 2: elapsed
// time, PASSv2 vs ext3, per workload.
func BenchmarkTable2PASSv2(b *testing.B) {
	for _, w := range bench.Workloads {
		w := w
		b.Run(sanitize(w.Name), func(b *testing.B) {
			var base, with float64
			for i := 0; i < b.N; i++ {
				bt, _, err := bench.RunLocal(w, benchScale, false)
				if err != nil {
					b.Fatal(err)
				}
				wt, _, err := bench.RunLocal(w, benchScale, true)
				if err != nil {
					b.Fatal(err)
				}
				base, with = float64(bt.Milliseconds()), float64(wt.Milliseconds())
			}
			b.ReportMetric(base, "base_ms")
			b.ReportMetric(with, "prov_ms")
			b.ReportMetric(pct(base, with), "overhead_pct")
			b.ReportMetric(w.PaperLocal, "paper_pct")
		})
	}
}

// BenchmarkTable2PANFS regenerates the network half of Table 2: PA-NFS vs
// NFS over a loopback mount.
func BenchmarkTable2PANFS(b *testing.B) {
	for _, w := range bench.Workloads {
		w := w
		b.Run(sanitize(w.Name), func(b *testing.B) {
			var base, with float64
			for i := 0; i < b.N; i++ {
				bt, m, srv, err := bench.RunNFS(w, benchScale, false)
				if err != nil {
					b.Fatal(err)
				}
				m.Close()
				srv.Close()
				wt, m2, srv2, err := bench.RunNFS(w, benchScale, true)
				if err != nil {
					b.Fatal(err)
				}
				m2.Close()
				srv2.Close()
				base, with = float64(bt.Milliseconds()), float64(wt.Milliseconds())
			}
			b.ReportMetric(base, "base_ms")
			b.ReportMetric(with, "prov_ms")
			b.ReportMetric(pct(base, with), "overhead_pct")
			b.ReportMetric(w.PaperNFS, "paper_pct")
		})
	}
}

// BenchmarkTable3Space regenerates the space-overhead table: provenance
// database bytes and database+index bytes as percentages of the data.
func BenchmarkTable3Space(b *testing.B) {
	for _, w := range bench.Workloads {
		w := w
		b.Run(sanitize(w.Name), func(b *testing.B) {
			var provPct, totalPct float64
			for i := 0; i < b.N; i++ {
				_, base, err := bench.RunLocal(w, benchScale, false)
				if err != nil {
					b.Fatal(err)
				}
				data, _, _, err := base.SpaceStats()
				if err != nil {
					b.Fatal(err)
				}
				_, m, err := bench.RunLocal(w, benchScale, true)
				if err != nil {
					b.Fatal(err)
				}
				_, prov, total, err := m.SpaceStats()
				if err != nil {
					b.Fatal(err)
				}
				if data > 0 {
					provPct = 100 * float64(prov) / float64(data)
					totalPct = 100 * float64(total) / float64(data)
				}
			}
			b.ReportMetric(provPct, "prov_pct")
			b.ReportMetric(totalPct, "total_pct")
			b.ReportMetric(w.PaperProvPct, "paper_prov_pct")
			b.ReportMetric(w.PaperTotalPct, "paper_total_pct")
		})
	}
}

// BenchmarkTable1RecordTypes regenerates the record-type inventory and
// reports how many distinct types each PA application produced.
func BenchmarkTable1RecordTypes(b *testing.B) {
	var t1 map[string][]string
	for i := 0; i < b.N; i++ {
		var err error
		t1, err = bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	for app, types := range t1 {
		b.ReportMetric(float64(len(types)), sanitize(app)+"_types")
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationCycleAlgorithms compares PASSv2's cycle avoidance
// against the PASSv1 global-detection-and-merge algorithm on the same
// dependency stream: versions created vs DFS work done.
func BenchmarkAblationCycleAlgorithms(b *testing.B) {
	mkStream := func() []record.Record {
		// A write/read-heavy interleaving over 40 objects.
		var recs []record.Record
		for i := 0; i < 4000; i++ {
			subj := pnode.Ref{PNode: pnode.PNode(i%40 + 1), Version: 1}
			dep := pnode.Ref{PNode: pnode.PNode((i*7)%40 + 1), Version: 1}
			recs = append(recs, record.Input(subj, dep))
		}
		return recs
	}
	b.Run("v2-cycle-avoidance", func(b *testing.B) {
		var freezes uint64
		for i := 0; i < b.N; i++ {
			an := analyzer.New()
			nodes := map[pnode.PNode]*benchNode{}
			for _, r := range mkStream() {
				n, ok := nodes[r.Subject.PNode]
				if !ok {
					n = &benchNode{ref: pnode.Ref{PNode: r.Subject.PNode, Version: 1}}
					nodes[r.Subject.PNode] = n
				}
				r.Subject.Version = n.ref.Version
				if _, err := an.Process(n, r); err != nil {
					b.Fatal(err)
				}
			}
			freezes = an.Stats().Freezes
		}
		b.ReportMetric(float64(freezes), "versions_created")
	})
	b.Run("v1-global-merge", func(b *testing.B) {
		var visits, merges uint64
		for i := 0; i < b.N; i++ {
			v1 := analyzer.NewV1()
			for _, r := range mkStream() {
				v1.FeedRecord(r)
			}
			st := v1.Stats()
			visits, merges = st.DFSVisits, st.Merges
		}
		b.ReportMetric(float64(visits), "dfs_visits")
		b.ReportMetric(float64(merges), "merges")
	})
}

type benchNode struct{ ref pnode.Ref }

func (n *benchNode) Ref() pnode.Ref { return n.ref }
func (n *benchNode) Freeze() (pnode.Version, error) {
	n.ref.Version++
	return n.ref.Version, nil
}

// BenchmarkAblationDedup measures the analyzer's duplicate elimination:
// log records emitted with and without it for a 4KB-block write pattern.
func BenchmarkAblationDedup(b *testing.B) {
	b.Run("with-dedup", func(b *testing.B) {
		var kept uint64
		for i := 0; i < b.N; i++ {
			an := analyzer.New()
			n := &benchNode{ref: pnode.Ref{PNode: 1, Version: 1}}
			dep := pnode.Ref{PNode: 2, Version: 1}
			for w := 0; w < 1024; w++ { // a 4MB file in 4KB writes
				an.Process(n, record.Input(n.ref, dep))
			}
			kept = an.Stats().Records
		}
		b.ReportMetric(float64(kept), "records_kept")
		b.ReportMetric(1024, "records_offered")
	})
}

// BenchmarkAblationWAP measures recovery precision: with WAP a crash
// yields exactly the torn region; the bench reports detection counts.
func BenchmarkAblationWAP(b *testing.B) {
	var flagged int
	for i := 0; i < b.N; i++ {
		lower := vfs.NewMemFS("lower", nil)
		vol, err := lasagna.New("v", lasagna.Config{Lower: lower, VolumeID: 1})
		if err != nil {
			b.Fatal(err)
		}
		f, _ := vol.Open("/f", vfs.OCreate|vfs.ORdWr)
		pf := f.(vfs.PassFile)
		pf.PassWrite([]byte("intact"), 0, nil)
		vol.InjectCrash(lasagna.CrashAfterProvenance)
		pf.PassWrite([]byte("torn"), 100, nil)
		bad, err := vol.Recover()
		if err != nil {
			b.Fatal(err)
		}
		flagged = len(bad)
	}
	b.ReportMetric(float64(flagged), "regions_flagged")
}

// BenchmarkAblationLogRotation measures Waldo ingestion across rotation
// thresholds: log file count vs drain passes.
func BenchmarkAblationLogRotation(b *testing.B) {
	for _, maxLog := range []int64{4 << 10, 64 << 10, 1 << 20} {
		maxLog := maxLog
		b.Run(fmt.Sprintf("max=%dKiB", maxLog>>10), func(b *testing.B) {
			var files float64
			for i := 0; i < b.N; i++ {
				lower := vfs.NewMemFS("lower", nil)
				vol, err := lasagna.New("v", lasagna.Config{Lower: lower, VolumeID: 1, MaxLogSize: maxLog, LogBuffer: 1})
				if err != nil {
					b.Fatal(err)
				}
				w := waldo.New()
				w.Attach(vol)
				for r := 0; r < 3000; r++ {
					vol.AppendProvenance([]record.Record{record.Input(
						pnode.Ref{PNode: pnode.PNode(r + 1), Version: 1},
						pnode.Ref{PNode: 9999, Version: 1},
					)})
				}
				if err := w.Drain(); err != nil {
					b.Fatal(err)
				}
				recs, _, _ := w.DB.Stats()
				if recs != 3000 {
					b.Fatalf("lost records across rotation: %d", recs)
				}
				ents, _ := lower.ReadDir("/.prov")
				files = float64(len(ents))
			}
			b.ReportMetric(files, "log_files")
		})
	}
}

// BenchmarkWaldoIngest measures the log→database pipeline (DESIGN.md §5):
// Waldo draining a Lasagna provenance log into the indexed database.
//
// cold: one drain over a fully written multi-file log — the bulk-ingest
// rate in records/sec.
//
// steady: a long-lived daemon draining small increments off a large
// existing log — the case that is quadratic if each drain re-reads the
// whole log instead of resuming from a byte offset.
func BenchmarkWaldoIngest(b *testing.B) {
	const (
		ingestRecords = 20000
		maxLogSize    = 256 << 10
		steadyBatch   = 50
	)
	appendRecords := func(vol *lasagna.FS, lo, n int) {
		for r := lo; r < lo+n; r++ {
			vol.AppendProvenance([]record.Record{
				record.New(pnode.Ref{PNode: pnode.PNode(r%512 + 1), Version: 1},
					record.AttrName, record.StringVal(fmt.Sprintf("/data/f%d", r))),
				record.Input(
					pnode.Ref{PNode: pnode.PNode(r%512 + 1), Version: 1},
					pnode.Ref{PNode: pnode.PNode(r%97 + 1000), Version: 1},
				),
			})
		}
	}

	b.Run("cold", func(b *testing.B) {
		lower := vfs.NewMemFS("lower", nil)
		vol, err := lasagna.New("v", lasagna.Config{Lower: lower, VolumeID: 1, MaxLogSize: maxLogSize, LogBuffer: 4096})
		if err != nil {
			b.Fatal(err)
		}
		appendRecords(vol, 0, ingestRecords)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := waldo.New()
			w.Attach(vol)
			if err := w.Drain(); err != nil {
				b.Fatal(err)
			}
			recs, _, _ := w.DB.Stats()
			if recs != 2*ingestRecords {
				b.Fatalf("ingested %d records, want %d", recs, 2*ingestRecords)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(2*ingestRecords)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
	})

	b.Run("steady", func(b *testing.B) {
		lower := vfs.NewMemFS("lower", nil)
		vol, err := lasagna.New("v", lasagna.Config{Lower: lower, VolumeID: 1, MaxLogSize: maxLogSize, LogBuffer: 4096})
		if err != nil {
			b.Fatal(err)
		}
		appendRecords(vol, 0, ingestRecords)
		w := waldo.New()
		w.Attach(vol)
		if err := w.Drain(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			appendRecords(vol, ingestRecords+i*steadyBatch, steadyBatch)
			if err := w.Drain(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(2*steadyBatch)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
	})
}

// BenchmarkPQLQuery measures the query planner (DESIGN.md §6): a selective
// name-filtered ancestor query — the paper's §3.1/§4 attribution shape —
// over a ≥100k-record database, evaluated by the planner/executor
// ("planned": name-index seek, lazy binding expansion, memoized closures)
// and by the retained cross-product reference evaluator ("naive"). Each
// planned iteration re-plans and uses a fresh traversal memo; the
// equivalence of the two result sets is asserted in-loop.
func BenchmarkPQLQuery(b *testing.B) {
	_, g, src := bench.QueryDataset(120000)
	q, err := pql.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	want, err := pql.EvalNaive(g, q)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("planned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := pql.Eval(g, q)
			if err != nil {
				b.Fatal(err)
			}
			if res.Format() != want.Format() {
				b.Fatal("planned result diverges from naive")
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pql.EvalNaive(g, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkConcurrentQuery measures the passd serving layer (DESIGN.md
// §7): aggregate throughput of 16 concurrent clients querying snapshots of
// a database that is ingesting live, versus the serialized in-process
// drain-then-evaluate path (the pass.Machine.Query contract). Each
// iteration runs both phases for a fixed wall-clock slice; the reported
// metrics are aggregate queries/sec and the serve/baseline speedup. The
// harness verifies remote results against quiesced local evaluations
// before timing anything.
func BenchmarkConcurrentQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Serve(24000, 16, 1.5)
		if err != nil {
			b.Fatal(err)
		}
		if res.Shed != 0 {
			b.Fatalf("backpressure shed %d queries; pool misconfigured for the bench", res.Shed)
		}
		b.ReportMetric(res.ServeQPS, "qps")
		b.ReportMetric(res.BaselineQPS, "baseline-qps")
		b.ReportMetric(res.Speedup, "speedup")
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}

// pct computes the percentage overhead of with over base.
func pct(base, with float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (with - base) / base
}
