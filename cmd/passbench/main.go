// Command passbench regenerates the paper's evaluation (§7): Table 1 (the
// record types each provenance-aware application collects), Table 2
// (elapsed-time overheads, PASSv2 vs ext3 and PA-NFS vs NFS, across the
// five workloads) and Table 3 (space overheads), printing measured rows
// next to the published numbers.
//
// Usage:
//
//	passbench -table 2            # local + NFS elapsed-time overheads
//	passbench -table 2 -local     # local only
//	passbench -table 2 -nfs       # NFS only
//	passbench -table 3            # space overheads
//	passbench -table 1            # record-type inventory
//	passbench -ingest             # Waldo log→database pipeline throughput
//	passbench -query              # PQL planner vs naive evaluator
//	passbench -serve              # passd concurrent serving vs serialized queries
//	passbench -recover            # checkpoint recovery vs from-zero re-ingest (BENCH_recover.json)
//	passbench -disclose           # remote DPAPI disclosure, per-record vs batched (BENCH_disclose.json)
//	passbench -replicate          # hedged vs unhedged reads on a replicated group (BENCH_replicate.json)
//	passbench -swarm              # protocol v3 frames vs v2 lines under a 1k-session swarm (BENCH_swarm.json)
//	passbench -verify             # tamper-evidence costs: MMR ingest overhead, proofs, audit (BENCH_verify.json)
//	passbench -all                # everything
//	passbench -scale 0.4          # workload scale (1.0 = paper-sized)
//	passbench -records 100000     # ingest benchmark size
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"passv2/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "which table to regenerate (1, 2 or 3)")
	all := flag.Bool("all", false, "regenerate every table")
	scale := flag.Float64("scale", 0.4, "workload scale in (0,1]; 1.0 is paper-sized")
	localOnly := flag.Bool("local", false, "table 2: only the PASSv2-vs-ext3 half")
	nfsOnly := flag.Bool("nfs", false, "table 2: only the PA-NFS-vs-NFS half")
	ingest := flag.Bool("ingest", false, "measure Waldo ingestion throughput (records/sec)")
	records := flag.Int("records", 50000, "ingest: records in the cold-ingest log")
	drains := flag.Int("drains", 200, "ingest: incremental drains in the steady-state phase")
	batch := flag.Int("batch", 50, "ingest: records appended before each steady-state drain")
	query := flag.Bool("query", false, "measure the PQL planner vs the naive evaluator")
	queryRecords := flag.Int("query-records", 120000, "query: records in the benchmark database")
	serve := flag.Bool("serve", false, "measure passd concurrent serving vs serialized in-process queries")
	serveRecords := flag.Int("serve-records", 24000, "serve: records in the benchmark database")
	serveClients := flag.Int("serve-clients", 16, "serve: concurrent passd clients")
	serveSecs := flag.Float64("serve-secs", 3.0, "serve: seconds per measured phase")
	recoverFlag := flag.Bool("recover", false, "measure checkpoint recovery vs from-zero re-ingest")
	recoverRecords := flag.Int("recover-records", 120000, "recover: records ingested before the checkpoint")
	recoverTail := flag.Int("recover-tail", 2000, "recover: records appended after the checkpoint")
	recoverJSON := flag.String("recover-json", "BENCH_recover.json", "recover: file for the JSON result (empty = don't write)")
	disclose := flag.Bool("disclose", false, "measure remote DPAPI disclosure: per-record round-trips vs pipelined batches")
	discloseRecords := flag.Int("disclose-records", 4000, "disclose: records per phase")
	discloseBatch := flag.Int("disclose-batch", 64, "disclose: DPAPI ops per pipelined batch")
	discloseJSON := flag.String("disclose-json", "BENCH_disclose.json", "disclose: file for the JSON result (empty = don't write)")
	swarm := flag.Bool("swarm", false, "measure protocol v3 binary frames vs the v2 line protocol under a session swarm")
	swarmSessions := flag.Int("swarm-sessions", 1000, "swarm: concurrent client sessions per arm")
	swarmConns := flag.Int("swarm-conns", 64, "swarm: TCP connections the sessions share")
	swarmSecs := flag.Float64("swarm-secs", 5.0, "swarm: seconds per measured arm")
	swarmTenantSecs := flag.Float64("swarm-tenant-secs", 3.0, "swarm: seconds per noisy-tenant isolation arm (0 = skip the tenant arms)")
	swarmJSON := flag.String("swarm-json", "BENCH_swarm.json", "swarm: file for the JSON result (empty = don't write)")
	replicate := flag.Bool("replicate", false, "measure hedged vs unhedged cluster reads on a replicated group with one slow follower")
	replRecords := flag.Int("replicate-records", 2000, "replicate: records replicated before measuring")
	replQueries := flag.Int("replicate-queries", 300, "replicate: queries per measured arm")
	replSlow := flag.Duration("replicate-slow", 25*time.Millisecond, "replicate: injected response delay on the slow follower")
	replHedge := flag.Duration("replicate-hedge", 3*time.Millisecond, "replicate: hedge trigger delay")
	replJSON := flag.String("replicate-json", "BENCH_replicate.json", "replicate: file for the JSON result (empty = don't write)")
	verifyFlag := flag.Bool("verify", false, "measure tamper-evidence costs: MMR ingest overhead, proof latency, signatures, offline audit")
	verifyRecords := flag.Int("verify-records", 60000, "verify: records per ingest arm")
	verifyProofs := flag.Int("verify-proofs", 2000, "verify: inclusion proofs to generate")
	verifyJSON := flag.String("verify-json", "BENCH_verify.json", "verify: file for the JSON result (empty = don't write)")
	flag.Parse()

	if *ingest || *all {
		runIngest(*records, *drains, *batch)
		if !*all {
			return
		}
	}
	if *query || *all {
		runQuery(*queryRecords)
		if !*all {
			return
		}
	}
	if *serve || *all {
		runServe(*serveRecords, *serveClients, *serveSecs)
		if !*all {
			return
		}
	}
	if *recoverFlag || *all {
		runRecover(*recoverRecords, *recoverTail, *recoverJSON)
		if !*all {
			return
		}
	}
	if *disclose || *all {
		runDisclose(*discloseRecords, *discloseBatch, *discloseJSON)
		if !*all {
			return
		}
	}
	if *replicate || *all {
		runReplicate(*replRecords, *replQueries, *replSlow, *replHedge, *replJSON)
		if !*all {
			return
		}
	}
	if *swarm || *all {
		runSwarm(*swarmSessions, *swarmConns, *swarmSecs, *swarmTenantSecs, *swarmJSON)
		if !*all {
			return
		}
	}
	if *verifyFlag || *all {
		runVerify(*verifyRecords, *verifyProofs, *verifyJSON)
		if !*all {
			return
		}
	}
	if *all {
		runTable(1, *scale, false, false)
		runTable(2, *scale, false, false)
		runTable(3, *scale, false, false)
		return
	}
	if *table == 0 {
		flag.Usage()
		os.Exit(2)
	}
	runTable(*table, *scale, *localOnly, *nfsOnly)
}

func runTable(table int, scale float64, localOnly, nfsOnly bool) {
	switch table {
	case 1:
		t1, err := bench.Table1()
		die(err)
		bench.PrintTable1(os.Stdout, t1)
	case 2:
		if !nfsOnly {
			rows, err := bench.Table2Local(scale)
			die(err)
			bench.PrintTable2(os.Stdout, fmt.Sprintf("Table 2 (local): PASSv2 vs ext3, scale %.2f", scale), rows)
		}
		if !localOnly {
			rows, err := bench.Table2NFS(scale)
			die(err)
			bench.PrintTable2(os.Stdout, fmt.Sprintf("Table 2 (network): PA-NFS vs NFS, scale %.2f", scale), rows)
		}
	case 3:
		rows, err := bench.Table3(scale)
		die(err)
		bench.PrintTable3(os.Stdout, rows)
	default:
		fmt.Fprintf(os.Stderr, "unknown table %d\n", table)
		os.Exit(2)
	}
}

func runIngest(records, drains, batch int) {
	res, err := bench.Ingest(records, drains, batch)
	die(err)
	bench.PrintIngest(os.Stdout, res)
}

func runQuery(records int) {
	res, err := bench.Query(records)
	die(err)
	bench.PrintQuery(os.Stdout, res)
}

func runServe(records, clients int, secs float64) {
	res, err := bench.Serve(records, clients, secs)
	die(err)
	bench.PrintServe(os.Stdout, res)
}

func runRecover(records, tail int, jsonPath string) {
	res, err := bench.Recover(records, tail)
	die(err)
	bench.PrintRecover(os.Stdout, res)
	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		die(err)
		die(os.WriteFile(jsonPath, append(data, '\n'), 0o644))
		fmt.Printf("  wrote %s\n", jsonPath)
	}
}

func runDisclose(records, batch int, jsonPath string) {
	res, err := bench.Disclose(records, batch)
	die(err)
	bench.PrintDisclose(os.Stdout, res)
	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		die(err)
		die(os.WriteFile(jsonPath, append(data, '\n'), 0o644))
		fmt.Printf("  wrote %s\n", jsonPath)
	}
}

func runVerify(records, proofs int, jsonPath string) {
	res, err := bench.Verify(records, proofs)
	die(err)
	bench.PrintVerify(os.Stdout, res)
	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		die(err)
		die(os.WriteFile(jsonPath, append(data, '\n'), 0o644))
		fmt.Printf("  wrote %s\n", jsonPath)
	}
}

func runReplicate(records, queries int, slow, hedge time.Duration, jsonPath string) {
	res, err := bench.Replicate(records, queries, slow, hedge)
	die(err)
	bench.PrintReplicate(os.Stdout, res)
	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		die(err)
		die(os.WriteFile(jsonPath, append(data, '\n'), 0o644))
		fmt.Printf("  wrote %s\n", jsonPath)
	}
}

func runSwarm(sessions, conns int, secs, tenantSecs float64, jsonPath string) {
	res, err := bench.Swarm(sessions, conns, secs, tenantSecs)
	die(err)
	bench.PrintSwarm(os.Stdout, res)
	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		die(err)
		die(os.WriteFile(jsonPath, append(data, '\n'), 0o644))
		fmt.Printf("  wrote %s\n", jsonPath)
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "passbench:", err)
		os.Exit(1)
	}
}
