// Command passd runs the PASSv2 provenance query daemon: it loads a
// database snapshot (written with Machine.SaveDB or waldo.DB.Save) and
// serves PQL queries to many concurrent clients over the line-oriented
// JSON protocol in DESIGN.md §7. Every query runs on an immutable snapshot
// of the database, so readers never block ingestion or each other.
//
// Usage:
//
//	passd -db prov.db                 # serve a snapshot on 127.0.0.1:7457
//	passd -demo -addr :9000           # serve the built-in demo database
//	passd -db prov.db -workers 8 -timeout 10s
//
// Query it with cmd/pql:
//
//	pql -remote 127.0.0.1:7457 'select A from Provenance.file as F ...'
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"passv2/internal/bench"
	"passv2/internal/passd"
	"passv2/internal/waldo"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7457", "TCP listen address")
	dbPath := flag.String("db", "", "provenance database snapshot to serve")
	demo := flag.Bool("demo", false, "serve a built-in demo database instead of -db")
	workers := flag.Int("workers", 0, "query worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max queries waiting for a worker before shedding (0 = 4x workers)")
	timeout := flag.Duration("timeout", 5*time.Second, "default per-query deadline")
	maxTimeout := flag.Duration("max-timeout", 30*time.Second, "cap on client-requested deadlines")
	flag.Parse()

	var db *waldo.DB
	switch {
	case *demo:
		db = bench.DemoDB()
	case *dbPath != "":
		f, err := os.Open(*dbPath)
		die(err)
		var lerr error
		db, lerr = waldo.Load(f)
		f.Close()
		die(lerr)
	default:
		fmt.Fprintln(os.Stderr, "passd: need -db <snapshot> or -demo")
		os.Exit(2)
	}

	w := waldo.New()
	w.DB = db
	srv, err := passd.Serve(w, passd.Config{
		Addr:           *addr,
		Workers:        *workers,
		MaxQueue:       *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	})
	die(err)
	records, _, _ := db.Stats()
	fmt.Printf("passd: serving %d records on %s\n", records, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("passd: shutting down")
	die(srv.Close())
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "passd:", err)
		os.Exit(1)
	}
}
