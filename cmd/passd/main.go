// Command passd runs the PASSv2 provenance daemon: it serves PQL queries
// to many concurrent clients over the line-oriented JSON protocol in
// DESIGN.md §7/§9. Every query runs on an immutable snapshot of the
// database, so readers never block ingestion or each other.
//
// With protocol v2 the daemon is also a remote DPAPI layer (§5.2):
// clients create phantom objects (mkobj), disclose provenance against
// them (write — durably acknowledged, pipelinable via batch), freeze
// them, and revive them across reconnects and daemon restarts. Anything
// written against dpapi.Object/dpapi.Layer — the Kepler PASS recorder,
// the provenance-aware Python runtime — stacks on this daemon unchanged
// through passd.Client; see the examples/remotesession walkthrough.
//
// The database comes from one of three places: a snapshot file (-db,
// written with Machine.SaveDB or waldo.DB.Save), the built-in demo
// database (-demo), or a provenance log directory on the local file
// system (-logdir), which the daemon tails continuously and extends via
// the protocol's "append" verb.
//
// With -checkpoint-dir the daemon is crash-durable: a background
// checkpointer persists atomic generations (database snapshot + log tail
// offsets, DESIGN.md §8), and on boot the daemon recovers the newest
// valid generation — falling back across corrupt ones — and re-drains
// only the log bytes past the checkpointed offsets, so restart work is
// proportional to the tail, not the log.
//
// With -replicate W the daemon is a replication primary (DESIGN.md §10):
// followers started with -join announce themselves, the primary streams
// its provenance log to them, and a write is acknowledged only once W
// daemons (counting the primary) hold it durably — so any single
// machine's death loses zero acked records. Followers are read-only
// replicas serving the same queries; point a read cluster at all of them
// for failover and hedged reads.
//
// Usage:
//
//	passd -db prov.db                 # serve a snapshot on 127.0.0.1:7457
//	passd -demo -addr :9000           # serve the built-in demo database
//	passd -logdir /var/pass/log -checkpoint-dir /var/pass/ckpt
//	passd -db prov.db -workers 8 -timeout 10s
//	passd -demo -admin 127.0.0.1:7459  # /metrics /healthz /readyz
//	passd -demo -admin 127.0.0.1:7459 -quota burst=4:65536
//
//	# a 3-node replicated group, quorum 2:
//	passd -addr 127.0.0.1:7457 -logdir /var/pass/log -replicate 2
//	passd -addr 127.0.0.1:7458 -logdir /var/pass/f1  -join 127.0.0.1:7457
//	passd -addr 127.0.0.1:7459 -logdir /var/pass/f2  -join 127.0.0.1:7457
//
// Query it with cmd/pql:
//
//	pql -remote 127.0.0.1:7457 'select A from Provenance.file as F ...'
package main

import (
	"bytes"
	"crypto/ed25519"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"passv2/internal/bench"
	"passv2/internal/checkpoint"
	"passv2/internal/mmr"
	"passv2/internal/passd"
	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/replica"
	"passv2/internal/signer"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// logVolumeName is the stable volume identity under which a -logdir tail
// is checkpointed; it must not change across restarts or recovery could
// not match the recorded offsets back to the volume.
const logVolumeName = "logdir"

func main() {
	addr := flag.String("addr", "127.0.0.1:7457", "TCP listen address")
	dbPath := flag.String("db", "", "provenance database snapshot to serve")
	demo := flag.Bool("demo", false, "serve a built-in demo database instead of -db")
	logDir := flag.String("logdir", "", "provenance log directory to tail (and append to) on the local file system")
	drainInterval := flag.Duration("drain-interval", 500*time.Millisecond, "how often the daemon drains the -logdir log")
	ckptDir := flag.String("checkpoint-dir", "", "directory for durable checkpoints (enables crash recovery)")
	ckptInterval := flag.Duration("checkpoint-interval", 30*time.Second, "elapsed-time checkpoint trigger")
	ckptRecords := flag.Int64("checkpoint-records", 50000, "records-ingested checkpoint trigger (0 = interval only)")
	ckptFullEvery := flag.Int("checkpoint-full-every", 8, "write a full snapshot every N checkpoint generations and cheap deltas in between (<=1 = always full)")
	retain := flag.Int("retain", checkpoint.DefaultRetain, "checkpoint generations to keep")
	workers := flag.Int("workers", 0, "query worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max queries waiting for a worker before shedding (0 = 4x workers)")
	timeout := flag.Duration("timeout", 5*time.Second, "default per-query deadline")
	maxTimeout := flag.Duration("max-timeout", 30*time.Second, "cap on client-requested deadlines")
	replicate := flag.Int("replicate", 0, "write quorum counting this daemon: acks wait for N-1 follower copies (1 = replicate asynchronously, 0 = replication off); requires -logdir")
	commitTimeout := flag.Duration("commit-timeout", 10*time.Second, "how long an ack may wait for the write quorum before refusing")
	join := flag.String("join", "", "primary address to follow: run as a read-only replica of that daemon; requires -logdir")
	joinInterval := flag.Duration("join-interval", time.Second, "how often a follower re-announces itself to the primary")
	advertise := flag.String("advertise", "", "address the primary should dial this follower back on (default: the bound -addr)")
	admin := flag.String("admin", "", "HTTP admin listen address serving /metrics, /healthz and /readyz (empty = off)")
	useMMR := flag.Bool("mmr", true, "maintain a Merkle mountain range over -logdir, sign checkpoint roots, and serve the verify verb (tamper evidence, DESIGN.md §13)")
	keyDir := flag.String("key-dir", "", "directory for the daemon's Ed25519 signing identity (default <logdir>/keys)")
	quotas := map[string]passd.TenantQuota{}
	flag.Func("quota", "per-tenant quota as tenant=maxInflight:stagedBytesPerSec (0 = unlimited axis); repeatable", func(v string) error {
		name, caps, ok := strings.Cut(v, "=")
		if !ok || name == "" {
			return fmt.Errorf("want tenant=maxInflight:stagedBytesPerSec, got %q", v)
		}
		inflightS, bytesS, ok := strings.Cut(caps, ":")
		if !ok {
			return fmt.Errorf("want tenant=maxInflight:stagedBytesPerSec, got %q", v)
		}
		inflight, err := strconv.Atoi(inflightS)
		if err != nil {
			return fmt.Errorf("bad maxInflight in %q: %v", v, err)
		}
		bytes, err := strconv.ParseInt(bytesS, 10, 64)
		if err != nil {
			return fmt.Errorf("bad stagedBytesPerSec in %q: %v", v, err)
		}
		quotas[name] = passd.TenantQuota{MaxInFlight: inflight, StagedBytesPerSec: bytes}
		return nil
	})
	flag.Parse()

	if *replicate > 0 && *join != "" {
		fmt.Fprintln(os.Stderr, "passd: -replicate (primary) and -join (follower) are mutually exclusive")
		os.Exit(2)
	}
	if (*replicate > 0 || *join != "") && *logDir == "" {
		fmt.Fprintln(os.Stderr, "passd: replication ships the provenance log, so -replicate/-join require -logdir")
		os.Exit(2)
	}

	// The log directory's file system is opened first: tamper evidence
	// derives the MMR from the on-disk log before recovery decides which
	// checkpoint to trust.
	var dfs *vfs.DirFS
	if *logDir != "" {
		var err error
		dfs, err = vfs.NewDirFS(*logDir)
		die(err)
	}

	// Tamper evidence (DESIGN.md §13): a signing identity plus a Merkle
	// mountain range over the provenance log. The range is built per role
	// — a follower drives it from the replication stream (TailFeeder), a
	// primary needs the full node set to serve root claims at arbitrary
	// stream offsets, and a standalone daemon resumes cheaply from the
	// peak file, rehydrating only when a proof demands history.
	tamper := *useMMR && *logDir != ""
	var (
		id     *signer.Identity
		bootM  *mmr.MMR
		feeder *provlog.TailFeeder
	)
	if tamper {
		var err error
		if *keyDir != "" {
			var kfs *vfs.DirFS
			kfs, err = vfs.NewDirFS(*keyDir)
			die(err)
			id, err = signer.LoadOrCreate(kfs, "/")
		} else {
			id, err = signer.LoadOrCreate(dfs, "/keys")
		}
		die(err)
		switch {
		case *join != "":
			feeder, err = provlog.LoadFeeder(dfs, "/", logVolumeName)
			die(err)
			bootM = feeder.MMR()
		case *replicate > 0:
			bootM, err = provlog.RebuildMMR(dfs, "/", logVolumeName)
			die(err)
		default:
			bootM, err = provlog.LoadMMR(dfs, "/", logVolumeName)
			die(err)
		}
		fmt.Printf("passd: tamper evidence on: device %x, MMR at %d leaves\n", id.DeviceID, bootM.Count())
	}

	// Boot-time recovery: load the newest valid checkpoint generation,
	// falling back across corrupt ones, before deciding the database.
	var (
		store *checkpoint.Store
		rec   *checkpoint.Recovered
	)
	if *ckptDir != "" {
		var err error
		store, err = checkpoint.OpenDir(*ckptDir, *retain)
		die(err)
		if tamper {
			// Recovery must not trust a checkpoint whose signed root the
			// log cannot reproduce: a candidate that fails here is skipped
			// with class root_mismatch and recovery falls back, exactly as
			// for a CRC failure — this is the CRC-valid-but-forged case.
			store.VerifyProofs = func(man *checkpoint.Manifest) error {
				for _, p := range man.Proofs {
					if p.Volume != logVolumeName {
						return fmt.Errorf("generation %d: proof names unknown volume %q", man.Gen, p.Volume)
					}
					if !bytes.Equal(p.PubKey, id.Pub) {
						return fmt.Errorf("generation %d: proof signed by a different identity", man.Gen)
					}
					st := signer.Statement{
						DeviceID:  p.DeviceID,
						Volume:    p.Volume,
						Root:      p.Root,
						Size:      p.Size,
						Gen:       uint64(man.Gen),
						Timestamp: p.Timestamp,
					}
					if !signer.Verify(ed25519.PublicKey(p.PubKey), st, p.Sig) {
						return fmt.Errorf("generation %d: root statement signature is invalid", man.Gen)
					}
					root, err := bootM.RootAt(p.Size)
					if errors.Is(err, mmr.ErrPruned) {
						// The peak file resumed past this generation's
						// size; rehydrate from the log and retry.
						var full *mmr.MMR
						if full, err = provlog.RebuildMMR(dfs, "/", logVolumeName); err != nil {
							return err
						}
						bootM = full
						root, err = bootM.RootAt(p.Size)
					}
					if err != nil {
						return err
					}
					if root != p.Root {
						return fmt.Errorf("generation %d: signed root over %d records does not match the log", man.Gen, p.Size)
					}
				}
				return nil
			}
		}
		rec, err = store.Load()
		die(err)
		for _, skip := range rec.Skipped {
			fmt.Printf("passd: recovery skipped generation %d [%s]: %s\n", skip.Gen, skip.Class, skip.Reason)
		}
	}

	var db *waldo.DB
	switch {
	case rec != nil && rec.DB != nil:
		db = rec.DB
		fmt.Printf("passd: recovered checkpoint generation %d (%d records, %d snapshot bytes)\n",
			rec.Gen, rec.Records, rec.SnapshotBytes)
	case *dbPath != "":
		f, err := os.Open(*dbPath)
		die(err)
		var lerr error
		db, lerr = waldo.Load(f)
		f.Close()
		die(lerr)
	case *demo:
		db = bench.DemoDB()
	case *logDir != "":
		db = waldo.NewDB() // cold start: everything replays from the log
	default:
		fmt.Fprintln(os.Stderr, "passd: need -db <snapshot>, -demo, -logdir <dir> or a recoverable -checkpoint-dir")
		os.Exit(2)
	}

	w := waldo.New()
	w.DB = db

	// Attach the on-disk log, if any: a write-through provlog on a DirFS,
	// so acknowledged writes survive a SIGKILL. Staging (Append) and the
	// durable-ack barrier (Sync) are split so a pipelined DPAPI batch
	// pays one fsync per acknowledgment, not one per record — the server
	// calls Sync exactly once before each acked request.
	var (
		appendFn  func([]record.Record) error
		syncFn    func() error
		logWriter *provlog.Writer
	)
	if *logDir != "" {
		var err error
		logWriter, err = provlog.NewWriter(dfs, "/", 0)
		die(err)
		w.Attach(waldo.NewLogVolume(logVolumeName, dfs, logWriter))
		appendFn = func(recs []record.Record) error {
			for _, r := range recs {
				if err := logWriter.AppendRecord(0, r); err != nil {
					return err
				}
			}
			return nil
		}
		syncFn = logWriter.Sync
	}

	// Wire the MMR into the writer so every appended frame becomes a
	// leaf. A follower's range is driven by the replication stream (the
	// feeder), not by the writer — its writer never appends. A log whose
	// tail the MMR cannot cover (torn bytes mid-file) degrades to serving
	// without tamper evidence rather than refusing to boot.
	if tamper && *join == "" {
		if err := logWriter.AttachMMR(bootM, logVolumeName); err != nil {
			fmt.Fprintf(os.Stderr, "passd: tamper evidence disabled: %v\n", err)
			tamper, bootM = false, nil
		}
	}

	// Replication roles. A primary streams its log file to followers and
	// gates acks on the write quorum; a follower receives log bytes via
	// replappend (its own writer is never appended to — the only writer
	// of a follower's log is the replication stream) and is read-only on
	// the client surface.
	var (
		prim *replica.Primary
		flog *replica.FollowerLog
	)
	if *replicate > 0 {
		// Followers mirror log.current by byte offset, so a rotation (which
		// renames it and starts a fresh file) would silently fork every
		// replica. -replicate already passes MaxSize 0; this refuses the
		// explicit Rotate path too.
		logWriter.DisableRotation("replication primary: follower offsets track log.current")
		src, err := replica.OpenFileSource(dfs, "/"+provlog.CurrentName)
		die(err)
		var rsrc replica.Source = src
		if tamper {
			// A proof-aware primary sends its MMR leaf count and root
			// alongside each replicated chunk; proof-aware followers
			// recompute and refuse a fork before it becomes durable.
			rsrc = replica.WithProofs(src, func(end int64) (uint64, [32]byte, bool) {
				m := logWriter.MMR()
				if m == nil {
					return 0, [32]byte{}, false
				}
				n, ok := m.LeavesAtOffset(end)
				if !ok {
					return 0, [32]byte{}, false
				}
				root, err := m.RootAt(n)
				if err != nil {
					return 0, [32]byte{}, false
				}
				return n, root, true
			})
		}
		prim = replica.NewPrimary(rsrc, replica.Config{
			Quorum:        *replicate,
			CommitTimeout: *commitTimeout,
			Dial: passd.PeerDialer(passd.Options{
				DialTimeout:    2 * time.Second,
				RequestTimeout: 30 * time.Second,
			}),
		})
	}
	if *join != "" {
		// Same divergence hazard as the primary: the replication stream
		// appends to log.current by offset, so the attached writer must
		// never rename it away.
		logWriter.DisableRotation("replication follower: the stream appends to log.current by offset")
		var err error
		flog, err = replica.OpenFollowerLog(dfs, "/"+provlog.CurrentName)
		die(err)
		appendFn, syncFn = nil, nil
	}
	if rec != nil && rec.DB != nil {
		for _, name := range w.RestoreVolumes(rec.Volumes) {
			fmt.Printf("passd: checkpointed volume %q has no attached log; its offsets were dropped\n", name)
		}
	}

	// Catch-up drain: with a recovered checkpoint this reads only the log
	// tail past the recorded offsets (proportional work); cold it replays
	// the whole log.
	if *logDir != "" {
		die(w.Drain())
		if rec != nil && rec.DB != nil {
			fmt.Printf("passd: resumed past %d checkpointed log bytes, replayed %d tail entries\n",
				rec.ResumeBytes(), w.EntriesDecoded())
		}
		w.Start(*drainInterval)
	}

	// Checkpoint signing and the server's tamper surface. Every committed
	// generation carries a signed statement binding the checkpoint to the
	// exact log prefix it covers; the MMR peak state that statement was
	// taken from is persisted after the manifest commits (the stash), so
	// the next boot resumes the range without rehashing history.
	var tamperCfg *passd.TamperConfig
	if tamper {
		var stash struct {
			mu sync.Mutex
			st mmr.State
			ok bool
		}
		var saveState func() error
		if store != nil {
			store.MakeProofs = func(cp *waldo.CheckpointState) ([]checkpoint.Proof, error) {
				var (
					st   mmr.State
					root mmr.Hash
					err  error
				)
				if feeder != nil {
					// A follower signs what the replication stream has
					// fed: its log is the primary's, verbatim.
					m := feeder.MMR()
					st = m.State()
					if root, err = m.RootAt(st.Count); err != nil {
						return nil, err
					}
				} else if st, _, root, err = logWriter.SyncTamper(); err != nil {
					return nil, err
				}
				stmt := signer.Statement{
					Volume:    logVolumeName,
					Root:      root,
					Size:      st.Count,
					Gen:       uint64(cp.Gen),
					Timestamp: uint64(time.Now().Unix()),
				}
				stash.mu.Lock()
				stash.st, stash.ok = st, true
				stash.mu.Unlock()
				return []checkpoint.Proof{{
					Volume:    logVolumeName,
					Size:      st.Count,
					Root:      root,
					Timestamp: stmt.Timestamp,
					DeviceID:  id.DeviceID,
					PubKey:    append([]byte(nil), id.Pub...),
					Sig:       id.Sign(stmt),
				}}, nil
			}
			if feeder == nil {
				saveState = func() error {
					stash.mu.Lock()
					st, ok := stash.st, stash.ok
					stash.mu.Unlock()
					if !ok {
						return nil
					}
					return provlog.SaveMMR(dfs, "/", st)
				}
			}
		}
		tamperCfg = &passd.TamperConfig{
			Volume:    logVolumeName,
			Signer:    id,
			SaveState: saveState,
		}
		if feeder != nil {
			tamperCfg.MMR = feeder.MMR
		} else {
			tamperCfg.MMR = logWriter.MMR
			tamperCfg.Rehydrate = logWriter.Rehydrate
		}
	}

	srv, err := passd.Serve(w, passd.Config{
		Addr:                *addr,
		Workers:             *workers,
		MaxQueue:            *queue,
		DefaultTimeout:      *timeout,
		MaxTimeout:          *maxTimeout,
		Checkpoints:         store,
		CheckpointInterval:  *ckptInterval,
		CheckpointEvery:     *ckptRecords,
		CheckpointFullEvery: *ckptFullEvery,
		Append:              appendFn,
		Sync:                syncFn,
		Recovered:           rec,
		Replicate:           prim,
		Follower:            flog,
		AdminAddr:           *admin,
		TenantQuotas:        quotas,
		Tamper:              tamperCfg,
		Feeder:              feeder,
	})
	die(err)
	records, _, _ := db.Stats()
	fmt.Printf("passd: serving %d records on %s\n", records, srv.Addr())
	if a := srv.AdminAddr(); a != "" {
		fmt.Printf("passd: admin endpoints on http://%s (/metrics /healthz /readyz)\n", a)
	}

	// A follower announces itself to the primary on a timer: the first
	// round registers it, later rounds are idempotent no-ops that
	// re-register after a primary restart. The primary dials back and
	// drives replication from whatever offset this follower's log holds.
	if *join != "" {
		self := *advertise
		if self == "" {
			self = srv.Addr()
		}
		fmt.Printf("passd: following %s as %s\n", *join, self)
		go func() {
			for {
				if err := passd.Announce(*join, self, 2*time.Second); err == nil {
					time.Sleep(*joinInterval)
				} else {
					time.Sleep(*joinInterval / 2)
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("passd: shutting down")
	if *logDir != "" {
		die(w.Stop()) // final drain so the shutdown checkpoint is complete
	}
	die(srv.Close()) // flushes a final checkpoint generation
	if prim != nil {
		die(prim.Close())
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "passd:", err)
		os.Exit(1)
	}
}
