// Command passdemo runs the paper's §3 use cases end to end and verifies
// the layered-provenance claims hold, printing PASS/FAIL per case. The
// runnable walk-throughs with narration live in examples/; this command is
// the one-shot checker.
//
// Usage:
//
//	passdemo            # run every use case
//	passdemo anomaly    # run one: anomaly|attribution|malware|dataorigin|validation
package main

import (
	"fmt"
	"os"
	"strings"

	"passv2/internal/kepler"
	"passv2/internal/links"
	"passv2/internal/pnode"
	"passv2/internal/pyprov"
	"passv2/internal/record"
	"passv2/internal/vfs"
	"passv2/internal/web"
	"passv2/pass"
)

type useCase struct {
	name string
	desc string
	run  func() error
}

func main() {
	cases := []useCase{
		{"anomaly", "§3.1 finding the source of anomalies (3 layers, 3 machines)", anomaly},
		{"attribution", "§3.2 attribution after rename with sources offline", attribution},
		{"malware", "§3.2 malware source and spread", malware},
		{"dataorigin", "§3.3 exact data origin through PA-Python", dataOrigin},
		{"validation", "§3.3 process validation after a library upgrade", validation},
	}
	want := ""
	if len(os.Args) > 1 {
		want = os.Args[1]
	}
	failed := 0
	ran := 0
	for _, c := range cases {
		if want != "" && c.name != want {
			continue
		}
		ran++
		if err := c.run(); err != nil {
			failed++
			fmt.Printf("FAIL  %-12s %s\n      %v\n", c.name, c.desc, err)
			continue
		}
		fmt.Printf("PASS  %-12s %s\n", c.name, c.desc)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "passdemo: unknown use case %q\n", want)
		os.Exit(2)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// anomaly reproduces Figure 1: workflow on a workstation, inputs and
// outputs on two NFS servers, one input silently modified between runs.
func anomaly() error {
	ws := pass.NewMachine(pass.Config{Provenance: true})
	if _, err := ws.AddVolume("/scratch", 1); err != nil {
		return err
	}
	srvIn, err := pass.NewFileServer(11, ws.Clock, vfs.DefaultCostModel())
	if err != nil {
		return err
	}
	defer srvIn.Close()
	srvOut, err := pass.NewFileServer(12, ws.Clock, vfs.DefaultCostModel())
	if err != nil {
		return err
	}
	defer srvOut.Close()
	if err := ws.MountNFS("/in", srvIn.Addr()); err != nil {
		return err
	}
	if err := ws.MountNFS("/out", srvOut.Addr()); err != nil {
		return err
	}
	// Deferred after the server closes, so it runs first: the servers'
	// Close waits for their connection handlers, which only exit once the
	// workstation's NFS clients disconnect.
	defer ws.Close()
	seed := ws.Spawn("seed", nil, nil)
	seed.MkdirAll("/in/fmri")
	for _, name := range kepler.ChallengeInputs() {
		fd, err := seed.Open("/in/fmri/"+name, vfs.OCreate|vfs.ORdWr)
		if err != nil {
			return err
		}
		seed.Write(fd, []byte("scan:"+name))
		seed.Close(fd)
	}
	run := func() error {
		eng := ws.Spawn("kepler", nil, nil)
		defer eng.Exit()
		eng.MkdirAll("/out/results")
		e := kepler.NewEngine(eng)
		e.AddRecorder(kepler.NewPASSRecorder(eng, "/scratch"))
		return e.Run(kepler.BuildChallenge(kepler.ChallengeConfig{
			Input: "/in/fmri", Work: "/scratch", Out: "/out/results",
		}))
	}
	if err := run(); err != nil {
		return err
	}
	mod := ws.Spawn("colleague", nil, nil)
	fd, err := mod.Open("/in/fmri/anatomy2.img", vfs.OCreate|vfs.OTrunc|vfs.ORdWr)
	if err != nil {
		return err
	}
	mod.Write(fd, []byte("MODIFIED"))
	mod.Close(fd)
	if err := run(); err != nil {
		return err
	}
	inDB, err := srvIn.DB()
	if err != nil {
		return err
	}
	outDB, err := srvOut.DB()
	if err != nil {
		return err
	}
	res, err := ws.QueryWith(`
		select Ancestor from Provenance.file as Atlas
		Atlas.input* as Ancestor
		where Atlas.name = "/out/results/atlas-x.gif"`, inDB, outDB)
	if err != nil {
		return err
	}
	got := res.Format()
	for _, want := range []string{"anatomy2.img", "softmean", "@v2"} {
		if !strings.Contains(got, want) {
			return fmt.Errorf("integrated ancestry missing %q", want)
		}
	}
	// The modified input must show multiple versions on the input server.
	for _, pn := range inDB.AllPNodes() {
		if name, ok := inDB.NameOf(pn); ok && strings.HasSuffix(name, "anatomy2.img") {
			if len(inDB.Versions(pn)) < 2 {
				return fmt.Errorf("modified input has no version history")
			}
			return nil
		}
	}
	return fmt.Errorf("anatomy2.img not found on input server")
}

func attribution() error {
	m := pass.NewMachine(pass.Config{Provenance: true})
	if _, err := m.AddVolume("/home", 1); err != nil {
		return err
	}
	www := web.New()
	www.AddPage("http://s.example/charts", "charts")
	www.AddDownload("http://s.example/charts/g.png", []byte("PNG"))
	p := m.Spawn("links", nil, nil)
	b := links.New(p, www)
	if _, err := b.NewSession("/home"); err != nil {
		return err
	}
	if _, err := b.Visit("http://s.example/charts"); err != nil {
		return err
	}
	if _, err := b.Download("http://s.example/charts/g.png", "/home/g.png"); err != nil {
		return err
	}
	p.MkdirAll("/home/talk")
	if err := p.Rename("/home/g.png", "/home/talk/fig1.png"); err != nil {
		return err
	}
	www.Remove("http://s.example/charts/g.png")
	if err := m.Drain(); err != nil {
		return err
	}
	db := m.Waldo.DB
	pns := db.ByName("/home/talk/fig1.png")
	if len(pns) == 0 {
		return fmt.Errorf("renamed file not findable by new name")
	}
	for _, v := range db.Versions(pns[0]) {
		for _, val := range db.AttrValues(pnode.Ref{PNode: pns[0], Version: v}, record.AttrFileURL) {
			if s, _ := val.AsString(); s == "http://s.example/charts/g.png" {
				return nil
			}
		}
	}
	return fmt.Errorf("FILE_URL lost after rename")
}

func malware() error {
	m := pass.NewMachine(pass.Config{Provenance: true})
	if _, err := m.AddVolume("/home", 1); err != nil {
		return err
	}
	www := web.New()
	www.AddRedirect("http://trusted.example/codec", "http://evil.example/codec-page")
	www.AddPage("http://evil.example/codec-page", "dl here")
	www.AddDownload("http://evil.example/codec.bin", []byte("clean"))
	www.Replace("http://evil.example/codec.bin", []byte("EVIL"))
	p := m.Spawn("links", nil, nil)
	b := links.New(p, www)
	if _, err := b.NewSession("/home"); err != nil {
		return err
	}
	if _, err := b.Visit("http://trusted.example/codec"); err != nil {
		return err
	}
	codecRef, err := b.Download("http://evil.example/codec.bin", "/home/codec.bin")
	if err != nil {
		return err
	}
	inst := m.Spawn("sh", nil, nil)
	if err := inst.Exec("/home/codec.bin", []string{"codec"}, nil); err != nil {
		return err
	}
	fd, err := inst.Open("/home/.profile", vfs.OCreate|vfs.ORdWr)
	if err != nil {
		return err
	}
	inst.Write(fd, []byte("infected"))
	inst.Close(fd)
	if err := m.Drain(); err != nil {
		return err
	}
	db := m.Waldo.DB
	// Origin: FILE_URL present; session trail includes the trusted URL.
	urls := db.AttrValues(codecRef, record.AttrFileURL)
	if len(urls) == 0 {
		return fmt.Errorf("malware origin URL missing")
	}
	// Spread: .profile descends from codec.bin.
	g := m.Graph()
	v, _ := db.LatestVersion(codecRef.PNode)
	for _, d := range g.Descendants(pnode.Ref{PNode: codecRef.PNode, Version: v}) {
		if name, ok := db.NameOf(d.PNode); ok && name == "/home/.profile" {
			return nil
		}
	}
	// The download-time version may differ from latest; check all.
	for _, ver := range db.Versions(codecRef.PNode) {
		for _, d := range g.Descendants(pnode.Ref{PNode: codecRef.PNode, Version: ver}) {
			if name, ok := db.NameOf(d.PNode); ok && name == "/home/.profile" {
				return nil
			}
		}
	}
	return fmt.Errorf("malware spread not traceable")
}

func dataOrigin() error {
	m := pass.NewMachine(pass.Config{Provenance: true})
	if _, err := m.AddVolume("/lab", 1); err != nil {
		return err
	}
	py := m.Spawn("python", nil, nil)
	rt := pyprov.New(py, "/lab")
	if err := pyprov.GenerateLogs(rt, "/lab/xml", 40); err != nil {
		return err
	}
	if _, err := pyprov.AnalyzeCrackHeating(rt, "/lab/xml", "/lab/plot.dat", "high", false); err != nil {
		return err
	}
	if err := m.Drain(); err != nil {
		return err
	}
	db := m.Waldo.DB
	pn := db.ByName("/lab/plot.dat")
	if len(pn) != 1 {
		return fmt.Errorf("plot missing")
	}
	v, _ := db.LatestVersion(pn[0])
	direct := 0
	for _, in := range db.Inputs(pnode.Ref{PNode: pn[0], Version: v}) {
		if name, ok := db.NameOf(in.PNode); ok && strings.HasPrefix(name, "/lab/xml/") {
			direct++
		}
	}
	if direct != 20 {
		return fmt.Errorf("direct XML deps = %d, want the 20 used", direct)
	}
	return nil
}

func validation() error {
	m := pass.NewMachine(pass.Config{Provenance: true})
	if _, err := m.AddVolume("/lab", 1); err != nil {
		return err
	}
	py := m.Spawn("python", nil, nil)
	rt := pyprov.New(py, "/lab")
	if err := pyprov.GenerateLogs(rt, "/lab/xml", 10); err != nil {
		return err
	}
	if _, err := pyprov.AnalyzeCrackHeating(rt, "/lab/xml", "/lab/good.dat", "high", false); err != nil {
		return err
	}
	if _, err := pyprov.AnalyzeCrackHeating(rt, "/lab/xml", "/lab/bad.dat", "high", true); err != nil {
		return err
	}
	if err := m.Drain(); err != nil {
		return err
	}
	db := m.Waldo.DB
	var fns []pnode.PNode
	for _, pn := range db.ByName("estimate_heating") {
		if typ, ok := db.TypeOf(pn); ok && typ == record.TypeFunction {
			fns = append(fns, pn)
		}
	}
	if len(fns) != 2 {
		return fmt.Errorf("function objects = %d", len(fns))
	}
	buggy := fns[1]
	g := m.Graph()
	tainted := func(path string) (bool, error) {
		pns := db.ByName(path)
		if len(pns) != 1 {
			return false, fmt.Errorf("%s missing", path)
		}
		v, _ := db.LatestVersion(pns[0])
		for _, a := range g.Ancestors(pnode.Ref{PNode: pns[0], Version: v}) {
			if a.PNode == buggy {
				return true, nil
			}
		}
		return false, nil
	}
	goodTainted, err := tainted("/lab/good.dat")
	if err != nil {
		return err
	}
	badTainted, err := tainted("/lab/bad.dat")
	if err != nil {
		return err
	}
	if goodTainted || !badTainted {
		return fmt.Errorf("validation verdicts wrong: good=%v bad=%v", goodTainted, badTainted)
	}
	return nil
}
