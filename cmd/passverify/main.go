// Command passverify is the offline tamper-evidence auditor: point it at
// a daemon's log directory (and, ideally, its checkpoint directory and
// an out-of-band copy of its public identity) and it re-derives the
// Merkle mountain range from the raw log bytes, checks every signed
// checkpoint root against it, proves the signed history append-only,
// and optionally produces inclusion proofs for named records. It never
// talks to a daemon and never writes anything — run it against copies.
//
//	passverify -logdir /var/lib/passd/log -checkpoint-dir /var/lib/passd/ckpt \
//	    -pub signer.pub -prove 0,41,1000
//
// Exit status: 0 clean, 1 audit failures, 2 usage or environment errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"passv2/internal/signer"
	"passv2/internal/verify"
	"passv2/internal/vfs"
)

func usageDie(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "passverify: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	logDir := flag.String("logdir", "", "provenance log directory to audit (required)")
	ckptDir := flag.String("checkpoint-dir", "", "checkpoint store directory holding the signed root statements")
	pubPath := flag.String("pub", "", "pinned public identity (a copy of the daemon's signer.pub); omitting it downgrades to trust-on-first-generation")
	volume := flag.String("volume", "logdir", "provlog volume name the roots were signed over (passd signs its -logdir tail as \"logdir\")")
	prove := flag.String("prove", "", "comma-separated record indices to produce inclusion proofs for")
	asJSON := flag.Bool("json", false, "emit the full report as JSON on stdout")
	flag.Parse()

	if *logDir == "" {
		usageDie("-logdir is required")
	}
	opts := verify.Options{Volume: *volume}

	lfs, err := vfs.NewDirFS(*logDir)
	if err != nil {
		usageDie("%v", err)
	}
	opts.LogFS = lfs
	if *ckptDir != "" {
		cfs, err := vfs.NewDirFS(*ckptDir)
		if err != nil {
			usageDie("%v", err)
		}
		opts.CheckpointFS = cfs
	}
	if *pubPath != "" {
		b, err := os.ReadFile(*pubPath)
		if err != nil {
			usageDie("%v", err)
		}
		pub, err := signer.ParsePublic(b)
		if err != nil {
			usageDie("%s: %v", *pubPath, err)
		}
		opts.Pub = &pub
	}
	for _, f := range strings.Split(*prove, ",") {
		if f = strings.TrimSpace(f); f == "" {
			continue
		}
		idx, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			usageDie("-prove: %q is not a record index", f)
		}
		opts.ProveIndices = append(opts.ProveIndices, idx)
	}

	rep, err := verify.Audit(opts)
	if err != nil {
		usageDie("%v", err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			usageDie("%v", err)
		}
	} else {
		printReport(rep)
	}
	if !rep.OK {
		os.Exit(1)
	}
}

func printReport(r *verify.Report) {
	fmt.Printf("passverify: volume %q: %d records, root %s\n", r.Volume, r.Records, r.Root)
	key := "none on file"
	if r.Key != "" {
		key = r.Key
		if !r.KeyPinned {
			key += " (UNPINNED — adopted from the oldest manifest; pass -pub to pin)"
		}
	}
	fmt.Printf("passverify: identity: %s\n", key)
	for _, g := range r.Generations {
		verdict := "ok"
		if !g.SigOK || !g.KeyOK || !g.RootOK {
			verdict = fmt.Sprintf("FAIL (sig=%v key=%v root=%v)", g.SigOK, g.KeyOK, g.RootOK)
			if g.Err != "" {
				verdict += ": " + g.Err
			}
		}
		fmt.Printf("passverify: generation %d: %d records signed at %d: %s\n", g.Gen, g.Size, g.Timestamp, verdict)
	}
	for _, c := range r.Consistency {
		verdict := "append-only ok"
		if !c.OK {
			verdict = "FAIL: " + c.Err
		}
		fmt.Printf("passverify: generations %d→%d (%d→%d records): %s\n", c.FromGen, c.ToGen, c.FromSize, c.ToSize, verdict)
	}
	for _, p := range r.Inclusions {
		switch {
		case p.OK && p.Signed:
			fmt.Printf("passverify: record %d: proven under the signed root over %d records\n", p.Index, p.Size)
		case p.OK:
			fmt.Printf("passverify: record %d: proven under the (unsigned) full-log root over %d records\n", p.Index, p.Size)
		default:
			fmt.Printf("passverify: record %d: FAIL: %s\n", p.Index, p.Err)
		}
	}
	if r.StateFile != "" {
		fmt.Printf("passverify: mmr.state cross-check: %s\n", r.StateFile)
	}
	if r.TailRecords > 0 {
		fmt.Printf("passverify: note: %d records past the newest signed root are CRC-checked only\n", r.TailRecords)
	}
	if r.OK {
		fmt.Printf("passverify: OK — %d records verified, %d covered by signatures\n", r.Records, r.SignedSize)
		return
	}
	fmt.Printf("passverify: %d FAILURE(S):\n", len(r.Failures))
	for _, f := range r.Failures {
		fmt.Printf("passverify:   - %s\n", f)
	}
}
