// Command pql is the PASSv2 query shell: it loads a provenance database
// snapshot (written with Machine.SaveDB or waldo.DB.Save) and evaluates
// PQL queries against it, either from the command line or interactively.
//
// Usage:
//
//	pql -db prov.db 'select Ancestor from Provenance.file as Atlas
//	                 Atlas.input* as Ancestor
//	                 where Atlas.name = "atlas-x.gif"'
//	pql -db prov.db            # REPL on stdin
//	pql -demo 'select ...'     # query a small built-in demo database
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"passv2/internal/graph"
	"passv2/internal/pnode"
	"passv2/internal/pql"
	"passv2/internal/record"
	"passv2/internal/waldo"
)

func main() {
	dbPath := flag.String("db", "", "provenance database snapshot to load")
	demo := flag.Bool("demo", false, "use a built-in demo database instead of -db")
	flag.Parse()

	var db *waldo.DB
	switch {
	case *demo:
		db = demoDB()
	case *dbPath != "":
		f, err := os.Open(*dbPath)
		die(err)
		defer f.Close()
		var lerr error
		db, lerr = waldo.Load(f)
		die(lerr)
	default:
		fmt.Fprintln(os.Stderr, "pql: need -db <snapshot> or -demo")
		os.Exit(2)
	}
	g := graph.New(db)

	if q := strings.TrimSpace(strings.Join(flag.Args(), " ")); q != "" {
		run(g, q)
		return
	}
	// REPL: one query per line (or until a line ending in ';').
	fmt.Println(`PQL shell — end a query with ';', Ctrl-D to exit, \explain <query>; shows the plan`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	for {
		if pending.Len() == 0 {
			fmt.Print("pql> ")
		} else {
			fmt.Print("...> ")
		}
		if !sc.Scan() {
			break
		}
		line := sc.Text()
		pending.WriteString(line)
		pending.WriteByte(' ')
		if strings.HasSuffix(strings.TrimSpace(line), ";") {
			q := strings.TrimSuffix(strings.TrimSpace(pending.String()), ";")
			pending.Reset()
			if strings.TrimSpace(q) != "" {
				run(g, q)
			}
		}
	}
}

func run(g *graph.Graph, q string) {
	if rest, ok := strings.CutPrefix(strings.TrimSpace(q), `\explain`); ok {
		explain(rest)
		return
	}
	res, err := pql.Run(g, q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	fmt.Print(res.Format())
}

// explain prints the plan the engine would run for q, without executing it.
func explain(q string) {
	parsed, err := pql.Parse(q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	fmt.Print(pql.PlanQuery(parsed).Describe())
}

// demoDB builds the paper's atlas-x.gif ancestry chain so the shell can be
// tried without running a workload first.
func demoDB() *waldo.DB {
	db := waldo.NewDB()
	ref := func(p uint64) pnode.Ref { return pnode.Ref{PNode: pnode.PNode(p), Version: 1} }
	add := func(r pnode.Ref, name, typ string) {
		db.Apply(record.New(r, record.AttrName, record.StringVal(name)))
		db.Apply(record.New(r, record.AttrType, record.StringVal(typ)))
	}
	atlas, convert, slicer, softmean, anatomy := ref(1), ref(2), ref(3), ref(4), ref(5)
	add(atlas, "atlas-x.gif", record.TypeFile)
	add(convert, "convert", record.TypeProc)
	add(slicer, "slicer", record.TypeProc)
	add(softmean, "softmean", record.TypeOperator)
	add(anatomy, "anatomy1.img", record.TypeFile)
	db.Apply(record.Input(atlas, convert))
	db.Apply(record.Input(convert, slicer))
	db.Apply(record.Input(slicer, softmean))
	db.Apply(record.Input(softmean, anatomy))
	return db
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pql:", err)
		os.Exit(1)
	}
}
