// Command pql is the PASSv2 query shell: it evaluates PQL queries against
// a provenance database — a local snapshot (written with Machine.SaveDB or
// waldo.DB.Save), a small built-in demo database, or a running passd
// daemon — either from the command line or interactively.
//
// Usage:
//
//	pql -db prov.db 'select Ancestor from Provenance.file as Atlas
//	                 Atlas.input* as Ancestor
//	                 where Atlas.name = "atlas-x.gif"'
//	pql -db prov.db                  # REPL on stdin
//	pql -demo 'select ...'           # query a small built-in demo database
//	pql -remote 127.0.0.1:7457 ...   # query a running passd daemon
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"passv2/internal/bench"
	"passv2/internal/graph"
	"passv2/internal/passd"
	"passv2/internal/pql"
	"passv2/internal/waldo"
)

// engine is where the shell sends queries: a local graph or a passd client.
type engine interface {
	query(q string) (*pql.Result, error)
	explain(q string) (string, error)
}

type localEngine struct{ g *graph.Graph }

func (e localEngine) query(q string) (*pql.Result, error) { return pql.Run(e.g, q) }
func (e localEngine) explain(q string) (string, error) {
	parsed, err := pql.Parse(q)
	if err != nil {
		return "", err
	}
	return pql.PlanQuery(parsed).Describe(), nil
}

type remoteEngine struct{ c *passd.Client }

func (e remoteEngine) query(q string) (*pql.Result, error) { return e.c.Query(q) }
func (e remoteEngine) explain(q string) (string, error)    { return e.c.Explain(q) }

func main() {
	dbPath := flag.String("db", "", "provenance database snapshot to load")
	demo := flag.Bool("demo", false, "use a built-in demo database instead of -db")
	remote := flag.String("remote", "", "query a running passd daemon at this address instead of a local database")
	flag.Parse()

	var eng engine
	switch {
	case *remote != "":
		c, err := passd.Dial(*remote)
		die(err)
		defer c.Close()
		eng = remoteEngine{c: c}
	case *demo:
		eng = localEngine{g: graph.New(bench.DemoDB())}
	case *dbPath != "":
		f, err := os.Open(*dbPath)
		die(err)
		defer f.Close()
		db, lerr := waldo.Load(f)
		die(lerr)
		eng = localEngine{g: graph.New(db)}
	default:
		fmt.Fprintln(os.Stderr, "pql: need -db <snapshot>, -demo, or -remote <addr>")
		os.Exit(2)
	}

	if q := strings.TrimSpace(strings.Join(flag.Args(), " ")); q != "" {
		run(eng, q)
		return
	}
	// REPL: one query per line (or until a line ending in ';').
	fmt.Println(`PQL shell — end a query with ';', Ctrl-D to exit, \explain <query>; shows the plan`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	for {
		if pending.Len() == 0 {
			fmt.Print("pql> ")
		} else {
			fmt.Print("...> ")
		}
		if !sc.Scan() {
			break
		}
		line := sc.Text()
		pending.WriteString(line)
		pending.WriteByte(' ')
		if strings.HasSuffix(strings.TrimSpace(line), ";") {
			q := strings.TrimSuffix(strings.TrimSpace(pending.String()), ";")
			pending.Reset()
			if strings.TrimSpace(q) != "" {
				run(eng, q)
			}
		}
	}
}

func run(eng engine, q string) {
	if rest, ok := strings.CutPrefix(strings.TrimSpace(q), `\explain`); ok {
		plan, err := eng.explain(rest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		fmt.Print(plan)
		return
	}
	res, err := eng.query(q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	fmt.Print(res.Format())
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pql:", err)
		os.Exit(1)
	}
}
