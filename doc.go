// Package passv2 is a from-scratch Go reproduction of "Layering in
// Provenance Systems" (Muniswamy-Reddy et al., USENIX ATC 2009) — the
// PASSv2 system: a provenance collection architecture in which every layer
// of a software stack (NFS servers, the local file system, the operating
// system, a workflow engine, a web browser, a Python-style runtime) both
// generates provenance and transmits disclosed provenance downward through
// one universal interface, the Disclosed Provenance API.
//
// The public API lives in package passv2/pass; the paper's components live
// under internal/ (one package per subsystem — see DESIGN.md for the
// inventory, and README.md for a quickstart). Queries run in-process
// (pass.Machine.Query) or through the passd daemon (cmd/passd), which
// serves many concurrent clients over immutable database snapshots while
// ingestion continues. The benchmarks in bench_test.go regenerate the
// paper's Tables 1–3; EXPERIMENTS.md records paper-vs-measured.
package passv2
