// Anomaly: the paper's Figure 1 / §3.1 scenario, end to end, across three
// provenance layers and three machines.
//
// A Kepler workflow runs on a workstation, reading the Provenance
// Challenge inputs from one NFS file server and writing its outputs to a
// second one, with intermediates on the local disk. Between two runs, a
// colleague silently modifies one input file directly on the first server.
// The second run's output differs; only the INTEGRATED provenance — Kepler
// operators + local files + both servers' files, joined in one graph —
// can show why.
package main

import (
	"bytes"
	"fmt"
	"log"

	"passv2/internal/kepler"
	"passv2/internal/vfs"
	"passv2/pass"
)

func main() {
	// The workstation and the two file servers of Figure 1.
	ws := pass.NewMachine(pass.Config{Provenance: true})
	if _, err := ws.AddVolume("/scratch", 1); err != nil {
		log.Fatal(err)
	}
	srvIn, err := pass.NewFileServer(11, ws.Clock, vfs.DefaultCostModel())
	must(err)
	defer srvIn.Close()
	srvOut, err := pass.NewFileServer(12, ws.Clock, vfs.DefaultCostModel())
	must(err)
	defer srvOut.Close()
	must(ws.MountNFS("/mnt/inputs", srvIn.Addr()))
	must(ws.MountNFS("/mnt/outputs", srvOut.Addr()))
	// Registered after the server defers so it runs first: Server.Close
	// waits for its connection handlers, which only exit once the
	// workstation's NFS clients disconnect.
	defer ws.Close()

	// Seed the challenge inputs on the input server.
	seed := ws.Spawn("seed", nil, nil)
	must(seed.MkdirAll("/mnt/inputs/fmri"))
	for _, name := range kepler.ChallengeInputs() {
		fd, err := seed.Open("/mnt/inputs/fmri/"+name, vfs.OCreate|vfs.ORdWr)
		must(err)
		seed.Write(fd, []byte("scan-data:"+name))
		seed.Close(fd)
	}
	seed.Exit()

	run := func(label string) []byte {
		eng := ws.Spawn("kepler", []string{"kepler", "challenge.xml"}, nil)
		defer eng.Exit()
		must(eng.MkdirAll("/mnt/outputs/results"))
		e := kepler.NewEngine(eng)
		e.AddRecorder(kepler.NewPASSRecorder(eng, "/scratch"))
		wf := kepler.BuildChallenge(kepler.ChallengeConfig{
			Input: "/mnt/inputs/fmri",
			Work:  "/scratch",
			Out:   "/mnt/outputs/results",
		})
		must(e.Run(wf))
		fd, err := eng.Open("/mnt/outputs/results/atlas-x.gif", vfs.ORdOnly)
		must(err)
		buf := make([]byte, 256)
		n, _ := eng.Read(fd, buf)
		eng.Close(fd)
		fmt.Printf("%s: atlas-x.gif = %x...\n", label, buf[:min(n, 8)])
		return append([]byte(nil), buf[:n]...)
	}

	monday := run("Monday   ")

	// Tuesday: unbeknownst to us, a colleague modifies an input — on the
	// server directly, invisible to Kepler.
	colleague := ws.Spawn("colleague", nil, nil)
	fd, err := colleague.Open("/mnt/inputs/fmri/anatomy2.img", vfs.OCreate|vfs.OTrunc|vfs.ORdWr)
	must(err)
	colleague.Write(fd, []byte("RESCANNED-SUBJECT-2"))
	colleague.Close(fd)
	colleague.Exit()

	wednesday := run("Wednesday")

	if bytes.Equal(monday, wednesday) {
		log.Fatal("outputs should differ after the input changed")
	}
	fmt.Println("\nThe Wednesday output differs. Why?")

	// Without layering: Kepler's own provenance shows two identical
	// executions (same operators, same parameters). The change is
	// invisible at the workflow layer.
	fmt.Println("\nWithout layering: Kepler's records for both runs are identical —")
	fmt.Println("same operators, same parameters. No explanation.")

	// With layering: join the workstation's provenance with both
	// servers' and walk the output's ancestry. The modified input
	// appears as a *new version* of anatomy2.img, reached through the
	// workflow operators.
	inDB, err := srvIn.DB()
	must(err)
	outDB, err := srvOut.DB()
	must(err)
	res, err := ws.QueryWith(`
		select Ancestor
		from Provenance.file as Atlas
		     Atlas.input* as Ancestor
		where Atlas.name = "/mnt/outputs/results/atlas-x.gif"`,
		inDB, outDB)
	must(err)
	fmt.Println("\nWith layering (client + both servers joined):")
	fmt.Print(res.Format())

	// Pinpoint the culprit: an ancestor file on the input server with
	// more than one version.
	fmt.Println("Input files with multiple versions (the modified ones):")
	for _, pn := range inDB.AllPNodes() {
		if vs := inDB.Versions(pn); len(vs) > 1 {
			if name, ok := inDB.NameOf(pn); ok {
				fmt.Printf("  %s: versions %v  ← modified between runs\n", name, vs)
			}
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
