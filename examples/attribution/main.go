// Attribution: the §3.2 use case. A professor downloads figures from the
// web, copies them into her presentation directory, and months later —
// with the browser history gone and some pages offline — needs proper
// attribution. The browser alone loses the connection when a file is
// moved; PASSv2 keeps file and provenance connected across renames.
package main

import (
	"fmt"
	"log"

	"passv2/internal/links"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/web"
	"passv2/pass"
)

func main() {
	m := pass.NewMachine(pass.Config{Provenance: true})
	if _, err := m.AddVolume("/home", 1); err != nil {
		log.Fatal(err)
	}

	// The web, as it existed back then.
	www := web.New()
	www.AddPage("http://stats.example/", "statistics portal", "http://stats.example/growth")
	www.AddPage("http://stats.example/growth", "growth charts", "http://stats.example/growth/chart.png")
	www.AddDownload("http://stats.example/growth/chart.png", []byte("PNG-GROWTH-CHART"))
	www.AddPage("http://quotes.example/keynote", "conference keynote")
	www.AddDownload("http://quotes.example/keynote.txt", []byte("\"Provenance is the new metadata.\""))

	// A browsing session months ago.
	proc := m.Spawn("links", []string{"links"}, nil)
	b := links.New(proc, www)
	if _, err := b.NewSession("/home"); err != nil {
		log.Fatal(err)
	}
	proc.MkdirAll("/home/downloads")
	must(b.Visit("http://stats.example/"))
	must(b.Visit("http://stats.example/growth"))
	if _, err := b.Download("http://stats.example/growth/chart.png", "/home/downloads/chart.png"); err != nil {
		log.Fatal(err)
	}
	must(b.Visit("http://quotes.example/keynote"))
	if _, err := b.Download("http://quotes.example/keynote.txt", "/home/downloads/quote.txt"); err != nil {
		log.Fatal(err)
	}

	// She assembles the talk: copies (renames) the figures into the
	// presentation directory. The browser has no idea.
	proc.MkdirAll("/home/talk")
	if err := proc.Rename("/home/downloads/chart.png", "/home/talk/figure1.png"); err != nil {
		log.Fatal(err)
	}
	if err := proc.Rename("/home/downloads/quote.txt", "/home/talk/quote.txt"); err != nil {
		log.Fatal(err)
	}

	// Time passes: browser history cleared, one source vanishes.
	www.Remove("http://stats.example/growth/chart.png")

	// Now: attribution, from the files themselves.
	must2(m.Drain())
	db := m.Waldo.DB
	fmt.Println("Attribution recovered from provenance:")
	for _, f := range []string{"/home/talk/figure1.png", "/home/talk/quote.txt"} {
		pns := db.ByName(f)
		if len(pns) == 0 {
			log.Fatalf("%s not in provenance database", f)
		}
		v, _ := db.LatestVersion(pns[0])
		ref := pnode.Ref{PNode: pns[0], Version: v}
		url := firstString(db.AttrValues(ref, record.AttrFileURL))
		page := firstString(db.AttrValues(ref, record.AttrCurrentURL))
		fmt.Printf("  %s\n    downloaded from: %s\n    while viewing:   %s\n", f, url, page)
	}

	// The session's full trail is there too.
	res, err := m.Query(`
		select S.visited_url as visited
		from Provenance.session as S`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBrowsing trail of the session:")
	fmt.Print(res.Format())
}

func firstString(vals []record.Value) string {
	for _, v := range vals {
		if s, ok := v.AsString(); ok {
			return s
		}
	}
	return "(unknown)"
}

func must(_ *web.Page, err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must2(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
