// Dataorigin: the §3.3 "Determining Data Origin" use case. A thermography
// group's plot script reads ~400 XML experiment logs but uses only the
// ones matching a stress classification. PASS alone says the plot derives
// from ALL the files; PA-Python alone knows the documents but not their
// files. Layered, the query reports exactly the XML documents that
// contributed — and the files they came from.
package main

import (
	"fmt"
	"log"
	"strings"

	"passv2/internal/pnode"
	"passv2/internal/pyprov"
	"passv2/pass"
)

func main() {
	m := pass.NewMachine(pass.Config{Provenance: true})
	if _, err := m.AddVolume("/lab", 1); err != nil {
		log.Fatal(err)
	}

	py := m.Spawn("python", []string{"python", "plot_heating.py"}, nil)
	rt := pyprov.New(py, "/lab")

	// The data acquisition system produced 400 experiment logs.
	if err := pyprov.GenerateLogs(rt, "/lab/xml", 400); err != nil {
		log.Fatal(err)
	}
	// Plot crack heating for the "high" vibrational-stress class.
	res, err := pyprov.AnalyzeCrackHeating(rt, "/lab/xml", "/lab/plot.dat", "high", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Script read %d XML files, used %d of them.\n\n", res.TotalRead, res.Used)

	if err := m.Drain(); err != nil {
		log.Fatal(err)
	}
	db := m.Waldo.DB
	plotPN := db.ByName("/lab/plot.dat")[0]
	v, _ := db.LatestVersion(plotPN)
	plotRef := pnode.Ref{PNode: plotPN, Version: v}

	// System layer only (what PASSv2 alone would say): every XML file is
	// an ancestor, because the python process read them all.
	g := m.Graph()
	all := 0
	for _, a := range g.Ancestors(plotRef) {
		if name, ok := db.NameOf(a.PNode); ok && strings.HasPrefix(name, "/lab/xml/") {
			all++
		}
	}
	fmt.Printf("PASS alone (full ancestry through the process): %d XML files — useless.\n", all)

	// Layered: the plot's DIRECT dependencies, disclosed by PA-Python,
	// name exactly the used documents.
	used := 0
	var sample []string
	for _, in := range db.Inputs(plotRef) {
		if name, ok := db.NameOf(in.PNode); ok && strings.HasPrefix(name, "/lab/xml/") {
			used++
			if len(sample) < 5 {
				sample = append(sample, name)
			}
		}
	}
	fmt.Printf("Layered PA-Python/PASSv2 (disclosed dependencies): %d XML files.\n", used)
	fmt.Println("First few:")
	for _, s := range sample {
		fmt.Println("  ", s)
	}

	// And the invocation chain is queryable: how often did the wrapped
	// routine run?
	q2, err := m.Query(`
		select count(I) as estimate_calls
		from Provenance.invocation as I
		where I.name = "estimate_heating"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nWrapped-routine invocations recorded:")
	fmt.Print(q2.Format())
}
