// Quickstart: assemble a PASSv2 machine, run a two-stage shell job on a
// provenance-aware volume, and ask where the output came from.
package main

import (
	"fmt"
	"log"

	"passv2/internal/vfs"
	"passv2/pass"
)

func main() {
	// A machine with the full PASSv2 pipeline and one PASS volume.
	m := pass.NewMachine(pass.Config{Provenance: true})
	if _, err := m.AddVolume("/data", 1); err != nil {
		log.Fatal(err)
	}

	// Stage 1: a "sensor" process produces raw readings.
	sensor := m.Spawn("sensor", []string{"sensor", "--take", "10"}, nil)
	fd, err := sensor.Open("/data/readings.csv", vfs.OCreate|vfs.ORdWr)
	if err != nil {
		log.Fatal(err)
	}
	sensor.Write(fd, []byte("t0,19.3\nt1,19.9\nt2,20.1\n"))
	sensor.Close(fd)
	sensor.Exit()

	// Stage 2: an "analyze" process reads the readings and writes a
	// report. PASSv2 watches the system calls; neither program was
	// modified.
	analyze := m.Spawn("analyze", []string{"analyze", "readings.csv"}, []string{"LANG=C"})
	in, _ := analyze.Open("/data/readings.csv", vfs.ORdOnly)
	buf := make([]byte, 256)
	n, _ := analyze.Read(in, buf)
	analyze.Close(in)
	analyze.Compute(int64(n) * 100) // simulated number crunching
	out, _ := analyze.Open("/data/report.txt", vfs.OCreate|vfs.ORdWr)
	analyze.Write(out, []byte("mean=19.77\n"))
	analyze.Close(out)
	analyze.Exit()

	// Ask PASSv2: what is the complete ancestry of the report?
	res, err := m.Query(`
		select Ancestor
		from Provenance.file as Report
		     Report.input* as Ancestor
		where Report.name = "/data/report.txt"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Ancestry of /data/report.txt:")
	fmt.Print(res.Format())

	// And which process arguments produced it?
	res, err = m.Query(`
		select P.name as process, P.argv as argv
		from Provenance.proc as P
		where exists(P.input~)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Processes with descendants:")
	fmt.Print(res.Format())
}
