// Remotesession replays the paper's §6.5 browser scenario against a
// remote provenance daemon, over the protocol-v2 DPAPI:
//
//  1. pass_mkobj a phantom SESSION object on the daemon — the browser
//     session exists at the application layer, with no file beneath it;
//  2. disclose page-derivation provenance over the network: every fetched
//     page is its own phantom DOCUMENT descending from the session and
//     from the page it was reached from, all pipelined in one batch
//     (one round-trip, one durable acknowledgment);
//  3. "restart the browser": drop the connection, reconnect, and
//     pass_reviveobj the session by its saved reference — the handle died
//     with the connection, the object did not;
//  4. keep disclosing against the revived session, then answer the §3.2
//     question over the same wire: where did this download come from?
//
// By default the example starts its own daemon over a temporary log
// directory. Point it at a real one instead (matching cmd/passd -logdir):
//
//	passd -logdir /tmp/prov &
//	go run ./examples/remotesession -addr 127.0.0.1:7457
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"passv2/internal/dpapi"
	"passv2/internal/passd"
	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

func main() {
	addr := flag.String("addr", "", "address of a running passd daemon (empty = start one in-process)")
	flag.Parse()

	target := *addr
	if target == "" {
		srv, cleanup := startLocalDaemon()
		defer cleanup()
		target = srv.Addr()
		fmt.Printf("started in-process passd on %s (use -addr to target a real daemon)\n\n", target)
	}

	// --- First browser run: create the session, disclose page visits. ---
	c, err := passd.Dial(target)
	if err != nil {
		log.Fatal(err)
	}
	v, vol, err := c.Hello()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("negotiated protocol v%d; daemon phantom volume %#x\n", v, vol)

	session, err := c.PassMkobj()
	if err != nil {
		log.Fatal(err)
	}
	sessionRef := session.Ref()
	if err := dpapi.Disclose(session,
		record.New(sessionRef, record.AttrType, record.StringVal(record.TypeSession)),
		record.New(sessionRef, record.AttrName, record.StringVal("firefox-session-1")),
	); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pass_mkobj session %v\n", sessionRef)

	// Browse: each page becomes a DOCUMENT phantom descending from the
	// session and from the page that linked to it. All the derivation
	// records ship in one pipelined batch.
	pages := []struct{ name, url, from string }{
		{"results", "http://search.example/q=mit+license", ""},
		{"project", "http://project.example/", "results"},
		{"download", "http://project.example/release.tar.gz", "project"},
	}
	objs := make(map[string]*passd.RemoteObject)
	batch := c.NewBatch()
	for _, pg := range pages {
		obj, err := c.PassMkobj()
		if err != nil {
			log.Fatal(err)
		}
		ro := obj.(*passd.RemoteObject)
		objs[pg.name] = ro
		recs := []record.Record{
			record.New(ro.Ref(), record.AttrType, record.StringVal(record.TypeDocument)),
			record.New(ro.Ref(), record.AttrName, record.StringVal(pg.name)),
			record.New(ro.Ref(), record.AttrFileURL, record.StringVal(pg.url)),
			record.Input(ro.Ref(), sessionRef),
		}
		if pg.from != "" {
			recs = append(recs, record.Input(ro.Ref(), objs[pg.from].Ref()))
		}
		if err := batch.Disclose(ro, recs...); err != nil {
			log.Fatal(err)
		}
	}
	n := batch.Len()
	if err := batch.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disclosed %d pages' derivations in one batch (%d DPAPI ops, one durable ack)\n", len(pages), n)

	// --- Browser exits: the connection (and every handle) dies. ---
	c.Close()
	fmt.Printf("connection closed — handles gone, session object still on the daemon\n\n")

	// --- Second browser run: revive and continue the session. ---
	c2, err := passd.Dial(target)
	if err != nil {
		log.Fatal(err)
	}
	defer c2.Close()
	revived, err := c2.PassReviveObj(sessionRef)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pass_reviveobj %v after reconnect\n", sessionRef)
	if err := dpapi.Disclose(revived,
		record.New(revived.Ref(), record.AttrVisitedURL, record.StringVal("http://project.example/changelog")),
	); err != nil {
		log.Fatal(err)
	}

	// --- §3.2's question, answered by the same daemon: where did the
	// download come from? ---
	if _, err := c2.Drain(); err != nil {
		log.Fatal(err)
	}
	res, err := c2.Query(`
		select Origin
		from Provenance.document as Download
		     Download.input* as Origin
		where Download.name = "download"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nancestry of the downloaded file:\n%s", res.Format())
}

// startLocalDaemon runs a passd server over a write-through provenance
// log in a temp directory — the same arrangement as cmd/passd -logdir,
// so every acknowledged disclosure is fsynced.
func startLocalDaemon() (*passd.Server, func()) {
	dir, err := os.MkdirTemp("", "remotesession-*")
	if err != nil {
		log.Fatal(err)
	}
	dfs, err := vfs.NewDirFS(dir)
	if err != nil {
		log.Fatal(err)
	}
	plog, err := provlog.NewWriter(dfs, "/", 0)
	if err != nil {
		log.Fatal(err)
	}
	w := waldo.New()
	w.Attach(waldo.NewLogVolume("session-log", dfs, plog))
	srv, err := passd.Serve(w, passd.Config{
		Append: func(recs []record.Record) error {
			for _, r := range recs {
				if err := plog.AppendRecord(0, r); err != nil {
					return err
				}
			}
			return nil
		},
		Sync: plog.Sync,
	})
	if err != nil {
		log.Fatal(err)
	}
	return srv, func() {
		srv.Close()
		os.RemoveAll(dir)
	}
}
