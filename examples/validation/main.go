// Validation: the §3.3 "Process Validation" use case. A Python library
// upgrade introduced a bug in a calculation routine; the group must find
// which results are tainted. PASS alone can tell which outputs used the
// new library; PA-Python alone which used the routine; the layered join
// identifies outputs that descend from BOTH — exactly the incorrect data.
package main

import (
	"fmt"
	"log"

	"passv2/internal/pnode"
	"passv2/internal/pyprov"
	"passv2/internal/record"
	"passv2/pass"
)

func main() {
	m := pass.NewMachine(pass.Config{Provenance: true})
	if _, err := m.AddVolume("/lab", 1); err != nil {
		log.Fatal(err)
	}

	py := m.Spawn("python", []string{"python", "analysis.py"}, nil)
	rt := pyprov.New(py, "/lab")
	if err := pyprov.GenerateLogs(rt, "/lab/xml", 60); err != nil {
		log.Fatal(err)
	}

	// Three analysis runs: two before the library upgrade, one after.
	runs := []struct {
		out   string
		buggy bool
	}{
		{"/lab/results/january.dat", false},
		{"/lab/results/february.dat", false},
		{"/lab/results/march.dat", true}, // after the upgrade
	}
	py.MkdirAll("/lab/results")
	for _, r := range runs {
		if _, err := pyprov.AnalyzeCrackHeating(rt, "/lab/xml", r.out, "high", r.buggy); err != nil {
			log.Fatal(err)
		}
	}

	if err := m.Drain(); err != nil {
		log.Fatal(err)
	}
	db := m.Waldo.DB

	// Each run wrapped its own estimate_heating function object; the
	// third run's is the buggy one (installed with the new library).
	var fns []pnode.PNode
	for _, pn := range db.ByName("estimate_heating") {
		if typ, ok := db.TypeOf(pn); ok && typ == record.TypeFunction {
			fns = append(fns, pn)
		}
	}
	if len(fns) != 3 {
		log.Fatalf("expected 3 estimate_heating function objects, got %d", len(fns))
	}
	buggy := fns[2]
	fmt.Printf("Buggy routine object: estimate_heating (%s)\n\n", pnode.Ref{PNode: buggy, Version: 1})

	// Which results descend from an invocation of the buggy routine?
	g := m.Graph()
	fmt.Println("Result validation:")
	for _, r := range runs {
		pns := db.ByName(r.out)
		if len(pns) != 1 {
			log.Fatalf("%s missing from database", r.out)
		}
		v, _ := db.LatestVersion(pns[0])
		tainted := false
		for _, a := range g.Ancestors(pnode.Ref{PNode: pns[0], Version: v}) {
			if a.PNode == buggy {
				tainted = true
				break
			}
		}
		verdict := "OK        (used the old routine)"
		if tainted {
			verdict = "RECOMPUTE (descends from the buggy routine)"
		}
		fmt.Printf("  %-28s %s\n", r.out, verdict)
		if tainted != r.buggy {
			log.Fatalf("provenance verdict wrong for %s", r.out)
		}
	}
	fmt.Println("\nOnly march.dat descends from both the new library's routine and")
	fmt.Println("the calculation — the layered join neither layer could do alone.")
}
