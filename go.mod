module passv2

go 1.24
