// Package analyzer implements the PASSv2 analyzer (§5.4): it processes the
// stream of provenance records coming from the observer, eliminates
// duplicates, and ensures that cyclic dependencies do not arise, using the
// cycle avoidance algorithm of Muniswamy-Reddy & Holland (FAST '09) — a
// conservative algorithm that consults only an object's local dependency
// information, unlike the PASSv1 global cycle-detection-and-merge
// algorithm (also implemented here, in v1.go, for the ablation benches).
//
// # The cycle avoidance invariant
//
// Every object version is in one of two phases: accumulating (it may gain
// new dependencies) and observed (someone has read it — its dependency set
// is final). The rule: before adding a dependency to an object whose
// current version is observed, freeze the object (new version, which
// depends on the old one). Reading an object marks its current version
// observed.
//
// Acyclicity follows: an edge X→Y is added while X's version is still
// accumulating and Y's version is (from that moment) observed. So along
// any edge, the first-observed time strictly decreases; a cycle would need
// it to decrease back to itself. Self-reads freeze for the same reason.
// This is provable from local state alone, which is the paper's point; the
// price is extra versions (the algorithm is conservative), measured by the
// ablation benchmark against the PASSv1 algorithm.
package analyzer

import (
	"fmt"
	"sync"

	"passv2/internal/pnode"
	"passv2/internal/record"
)

// Node is an object the analyzer can version: anything with a current
// identity and a freeze operation. Lasagna files, NFS client files,
// processes, pipes and phantom objects all provide one.
type Node interface {
	// Ref returns the object's current (pnode, version).
	Ref() pnode.Ref
	// Freeze creates a new version and returns it (pass_freeze).
	Freeze() (pnode.Version, error)
}

// objState is the analyzer's local knowledge of one object.
type objState struct {
	version  pnode.Version
	deps     map[pnode.Ref]bool // dependency set of the current version
	attrs    map[attrKey]bool   // non-INPUT records already seen (dup elim)
	observed bool               // current version has been read
}

type attrKey struct {
	attr record.Attr
	val  string // rendered value; good enough for duplicate detection
}

// Stats counts the analyzer's work for the evaluation.
type Stats struct {
	Records    uint64 // records accepted
	Duplicates uint64 // records dropped as duplicates
	Freezes    uint64 // versions created to avoid cycles
}

// Analyzer eliminates duplicate records and avoids cycles. It is safe for
// concurrent use; all state is local per object, per the algorithm.
type Analyzer struct {
	mu    sync.Mutex
	objs  map[pnode.PNode]*objState
	stats Stats
}

// New creates an analyzer.
func New() *Analyzer {
	return &Analyzer{objs: make(map[pnode.PNode]*objState)}
}

// Stats returns a snapshot of the counters.
func (a *Analyzer) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// state returns the object's state, syncing with the node's externally
// visible version (another NFS client may have frozen the file).
func (a *Analyzer) state(ref pnode.Ref) *objState {
	st, ok := a.objs[ref.PNode]
	if !ok {
		st = &objState{version: ref.Version, deps: make(map[pnode.Ref]bool), attrs: make(map[attrKey]bool)}
		a.objs[ref.PNode] = st
		return st
	}
	if ref.Version > st.version {
		// The object moved on without us (external freeze): reset.
		st.version = ref.Version
		st.deps = make(map[pnode.Ref]bool)
		st.attrs = make(map[attrKey]bool)
		st.observed = false
	}
	return st
}

// Observe marks the current version of ref as read. Callers (the
// observer) invoke it when any layer reads the object — the moment its
// dependency set must stop growing.
func (a *Analyzer) Observe(ref pnode.Ref) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.state(ref)
	if st.version == ref.Version {
		st.observed = true
	}
}

// Process runs records describing subject through duplicate elimination
// and cycle avoidance. It returns the records to persist — possibly
// rewritten to a fresh version of subject and possibly including the
// version-chain record a freeze introduces — or an empty slice if all
// records were duplicates.
//
// subject must be the node whose pnode equals every record's Subject
// pnode; records for other subjects must be processed with their own node
// (the observer guarantees this).
func (a *Analyzer) Process(subject Node, recs ...record.Record) ([]record.Record, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	ref := subject.Ref()
	st := a.state(ref)
	var out []record.Record

	for _, r := range recs {
		if r.Subject.PNode != ref.PNode {
			return out, fmt.Errorf("analyzer: record subject %v does not match node %v", r.Subject, ref)
		}
		if dep, ok := r.Value.AsRef(); ok && r.Attr == record.AttrInput {
			// Reading dep pins its current version as observed.
			dst := a.state(dep)
			if dst.version == dep.Version {
				dst.observed = true
			}
			if st.deps[dep] {
				a.stats.Duplicates++
				continue
			}
			if st.observed || dep.PNode == ref.PNode {
				// Cycle avoidance: freeze before the dependency
				// set of an observed version grows, and never
				// allow a same-object self edge.
				newRef, chain, err := a.freezeLocked(subject, st)
				if err != nil {
					return out, err
				}
				out = append(out, chain)
				ref = newRef
				st = a.state(ref)
				if st.deps[dep] {
					// The dependency collapsed into the version
					// chain (self edge): nothing more to record.
					a.stats.Duplicates++
					continue
				}
			}
			st.deps[dep] = true
			a.stats.Records++
			out = append(out, record.Record{Subject: ref, Attr: r.Attr, Value: r.Value})
			continue
		}
		// Identity/descriptive record: duplicate-eliminate per version.
		k := attrKey{attr: r.Attr, val: r.Value.String()}
		if st.attrs[k] {
			a.stats.Duplicates++
			continue
		}
		st.attrs[k] = true
		a.stats.Records++
		out = append(out, record.Record{Subject: ref, Attr: r.Attr, Value: r.Value})
	}
	return out, nil
}

// Freeze forces a new version of subject (exported for layers that break
// cycles themselves, e.g. the NFS client processing a pass_freeze from
// above). It returns the new ref and the version-chain record.
func (a *Analyzer) Freeze(subject Node) (pnode.Ref, record.Record, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.state(subject.Ref())
	return a.freezeLocked(subject, st)
}

// freezeLocked bumps subject's version via its Freeze op, resets local
// state, and returns the chain record newVersion INPUT oldVersion.
func (a *Analyzer) freezeLocked(subject Node, st *objState) (pnode.Ref, record.Record, error) {
	old := pnode.Ref{PNode: subject.Ref().PNode, Version: st.version}
	v, err := subject.Freeze()
	if err != nil {
		return pnode.Ref{}, record.Record{}, fmt.Errorf("analyzer: freeze %v: %w", old, err)
	}
	a.stats.Freezes++
	st.version = v
	st.deps = make(map[pnode.Ref]bool)
	st.attrs = make(map[attrKey]bool)
	st.observed = false
	newRef := pnode.Ref{PNode: old.PNode, Version: v}
	st.deps[old] = true
	return newRef, record.Input(newRef, old), nil
}

// CurrentVersion reports the analyzer's view of an object's version (used
// by tests and the NFS client's local version cache).
func (a *Analyzer) CurrentVersion(pn pnode.PNode) (pnode.Version, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.objs[pn]
	if !ok {
		return 0, false
	}
	return st.version, true
}
