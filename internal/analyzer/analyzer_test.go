package analyzer

import (
	"math/rand"
	"testing"

	"passv2/internal/pnode"
	"passv2/internal/record"
)

// fakeNode is a freezable object for tests.
type fakeNode struct {
	ref pnode.Ref
}

func newNode(pn uint64) *fakeNode {
	return &fakeNode{ref: pnode.Ref{PNode: pnode.PNode(pn), Version: 1}}
}

func (n *fakeNode) Ref() pnode.Ref { return n.ref }

func (n *fakeNode) Freeze() (pnode.Version, error) {
	n.ref.Version++
	return n.ref.Version, nil
}

func TestDuplicateElimination(t *testing.T) {
	a := New()
	f := newNode(1)
	p := pnode.Ref{PNode: 2, Version: 1}
	// A program writing a file in 4KB chunks emits the same dependency
	// over and over; only the first survives.
	for i := 0; i < 100; i++ {
		out, err := a.Process(f, record.Input(f.Ref(), p))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 && len(out) != 1 {
			t.Fatalf("first record: got %d records", len(out))
		}
		if i > 0 && len(out) != 0 {
			t.Fatalf("iteration %d: duplicate not dropped: %v", i, out)
		}
	}
	st := a.Stats()
	if st.Records != 1 || st.Duplicates != 99 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDescriptiveRecordDedup(t *testing.T) {
	a := New()
	f := newNode(1)
	name := record.New(f.Ref(), record.AttrName, record.StringVal("/out"))
	out, _ := a.Process(f, name)
	if len(out) != 1 {
		t.Fatal("first NAME must pass")
	}
	out, _ = a.Process(f, name)
	if len(out) != 0 {
		t.Fatal("repeated NAME must drop")
	}
	// A different value (rename) passes.
	out, _ = a.Process(f, record.New(f.Ref(), record.AttrName, record.StringVal("/out2")))
	if len(out) != 1 {
		t.Fatal("new NAME value must pass")
	}
}

func TestWriteAfterReadFreezes(t *testing.T) {
	a := New()
	file := newNode(10)
	proc := pnode.Ref{PNode: 20, Version: 1}

	// Process Q reads the file: its version becomes observed.
	a.Observe(file.Ref())
	// Process P writes the file: must freeze first.
	out, err := a.Process(file, record.Input(file.Ref(), proc))
	if err != nil {
		t.Fatal(err)
	}
	if file.Ref().Version != 2 {
		t.Fatalf("file version = %v, want 2", file.Ref().Version)
	}
	if len(out) != 2 {
		t.Fatalf("want chain + dep records, got %v", out)
	}
	chain := out[0]
	if chain.Attr != record.AttrInput {
		t.Fatal("chain record must be INPUT")
	}
	if dep, _ := chain.Value.AsRef(); dep != (pnode.Ref{PNode: 10, Version: 1}) {
		t.Fatalf("chain dep = %v", dep)
	}
	if chain.Subject != (pnode.Ref{PNode: 10, Version: 2}) {
		t.Fatalf("chain subject = %v", chain.Subject)
	}
	if out[1].Subject.Version != 2 {
		t.Fatal("dep record must be rewritten to the new version")
	}
}

func TestUnobservedWriteDoesNotFreeze(t *testing.T) {
	a := New()
	file := newNode(10)
	p1 := pnode.Ref{PNode: 20, Version: 1}
	p2 := pnode.Ref{PNode: 21, Version: 1}
	a.Process(file, record.Input(file.Ref(), p1))
	a.Process(file, record.Input(file.Ref(), p2))
	if file.Ref().Version != 1 {
		t.Fatalf("version churn without reads: %v", file.Ref().Version)
	}
}

func TestSelfDependencyFreezes(t *testing.T) {
	a := New()
	f := newNode(5)
	out, err := a.Process(f, record.Input(f.Ref(), f.Ref()))
	if err != nil {
		t.Fatal(err)
	}
	if f.Ref().Version != 2 {
		t.Fatal("self dependency must freeze")
	}
	// Result: v2 INPUT v1 (chain) and v2 INPUT v1 (the dep itself) — the
	// dep collapses into the chain edge, so dedup leaves one record.
	if len(out) != 1 {
		t.Fatalf("got %v", out)
	}
}

func TestTwoProcessTwoFileCycleAvoided(t *testing.T) {
	// The classic 4-cycle: P reads A, Q reads B, P writes B, Q writes A.
	a := New()
	fileA, fileB := newNode(1), newNode(2)
	procP, procQ := newNode(3), newNode(4)
	var all []record.Record

	emit := func(subj Node, dep pnode.Ref) {
		t.Helper()
		out, err := a.Process(subj, record.Input(subj.Ref(), dep))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, out...)
	}
	emit(procP, fileA.Ref()) // P reads A
	emit(procQ, fileB.Ref()) // Q reads B
	emit(fileB, procP.Ref()) // P writes B (B observed ⇒ freeze)
	emit(fileA, procQ.Ref()) // Q writes A (A observed ⇒ freeze)

	if cyclic(all) {
		t.Fatalf("cycle in version graph:\n%v", record.NewBundle(all...))
	}
	if fileA.Ref().Version != 2 || fileB.Ref().Version != 2 {
		t.Fatal("both files should have been frozen once")
	}
}

func TestExternalFreezeResetsState(t *testing.T) {
	a := New()
	f := newNode(1)
	p := pnode.Ref{PNode: 2, Version: 1}
	a.Process(f, record.Input(f.Ref(), p))
	// Another NFS client froze the file behind our back.
	f.Freeze()
	out, _ := a.Process(f, record.Input(f.Ref(), p))
	if len(out) != 1 {
		t.Fatal("dependency on the new version is not a duplicate")
	}
	if out[0].Subject.Version != 2 {
		t.Fatalf("subject version = %v", out[0].Subject.Version)
	}
}

func TestSubjectMismatchRejected(t *testing.T) {
	a := New()
	f := newNode(1)
	bad := record.Input(pnode.Ref{PNode: 99, Version: 1}, pnode.Ref{PNode: 2, Version: 1})
	if _, err := a.Process(f, bad); err == nil {
		t.Fatal("mismatched subject must error")
	}
}

func TestExplicitFreeze(t *testing.T) {
	a := New()
	f := newNode(1)
	ref, chain, err := a.Freeze(f)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Version != 2 || chain.Subject != ref {
		t.Fatalf("freeze returned %v / %v", ref, chain)
	}
	if v, ok := a.CurrentVersion(f.Ref().PNode); !ok || v != 2 {
		t.Fatalf("CurrentVersion = %v,%v", v, ok)
	}
}

// cyclic builds the version-level graph from INPUT records and checks for
// cycles.
func cyclic(recs []record.Record) bool {
	edges := map[pnode.Ref][]pnode.Ref{}
	for _, r := range recs {
		if dep, ok := r.Value.AsRef(); ok && r.Attr == record.AttrInput {
			edges[r.Subject] = append(edges[r.Subject], dep)
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[pnode.Ref]int{}
	var visit func(n pnode.Ref) bool
	visit = func(n pnode.Ref) bool {
		color[n] = gray
		for _, m := range edges[n] {
			switch color[m] {
			case gray:
				return true
			case white:
				if visit(m) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for n := range edges {
		if color[n] == white && visit(n) {
			return true
		}
	}
	return false
}

// TestPropertyRandomWorkloadAcyclic drives the analyzer with thousands of
// random read/write interleavings over a pool of processes and files and
// asserts the resulting version graph never contains a cycle — the central
// guarantee of the cycle avoidance algorithm.
func TestPropertyRandomWorkloadAcyclic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := New()
		nodes := make([]*fakeNode, 12)
		for i := range nodes {
			nodes[i] = newNode(uint64(i + 1))
		}
		var all []record.Record
		for op := 0; op < 400; op++ {
			i, j := rng.Intn(len(nodes)), rng.Intn(len(nodes))
			subj, dep := nodes[i], nodes[j]
			out, err := a.Process(subj, record.Input(subj.Ref(), dep.Ref()))
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, out...)
		}
		if cyclic(all) {
			t.Fatalf("seed %d: cycle in version graph (%d records)", seed, len(all))
		}
	}
}

func TestV1CycleMerge(t *testing.T) {
	v := NewV1()
	// P reads A, writes B; Q reads B, writes A → cycle → merge.
	P, Q, A, B := pnode.PNode(1), pnode.PNode(2), pnode.PNode(3), pnode.PNode(4)
	v.AddDep(P, A)
	v.AddDep(B, P)
	v.AddDep(Q, B)
	v.AddDep(A, Q) // closes the 4-cycle
	if v.HasCycle() {
		t.Fatal("v1 left a cycle after merge")
	}
	if v.Stats().Merges != 1 {
		t.Fatalf("merges = %d", v.Stats().Merges)
	}
	// All four nodes must now be one entity.
	c := v.Canonical(P)
	for _, n := range []pnode.PNode{Q, A, B} {
		if v.Canonical(n) != c {
			t.Fatalf("node %v not merged", n)
		}
	}
}

func TestV1DuplicateEdges(t *testing.T) {
	v := NewV1()
	if !v.AddDep(1, 2) {
		t.Fatal("first edge must be kept")
	}
	if v.AddDep(1, 2) {
		t.Fatal("duplicate edge must be dropped")
	}
	if v.Stats().Duplicates != 1 {
		t.Fatal("duplicate not counted")
	}
}

func TestPropertyV1NeverCyclic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		v := NewV1()
		for op := 0; op < 500; op++ {
			v.AddDep(pnode.PNode(rng.Intn(15)+1), pnode.PNode(rng.Intn(15)+1))
		}
		if v.HasCycle() {
			t.Fatalf("seed %d: v1 graph cyclic", seed)
		}
	}
}

func BenchmarkAnalyzerDedup(b *testing.B) {
	a := New()
	f := newNode(1)
	p := pnode.Ref{PNode: 2, Version: 1}
	rec := record.Input(f.Ref(), p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Process(f, rec)
	}
}

func BenchmarkV1AddDep(b *testing.B) {
	v := NewV1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.AddDep(pnode.PNode(i%1000+1), pnode.PNode((i+7)%1000+1))
	}
}
