package analyzer

import (
	"sync"

	"passv2/internal/pnode"
	"passv2/internal/record"
)

// V1 implements the PASSv1 cycle-handling algorithm for the ablation
// benchmarks: maintain a global graph of object dependencies, explicitly
// check for cycles on every new edge, and on detecting one merge all the
// nodes in the cycle into a single entity (§5.4: "This proved challenging,
// and there were cases where we were not able to do this correctly" — the
// motivation for PASSv2's cycle avoidance).
//
// Nodes here are whole objects (pnodes), as in PASSv1, and merging is a
// union-find over pnodes. The cost profile to compare against Analyzer:
// no freezes (fewer versions) but a global DFS per edge insertion.
type V1 struct {
	mu     sync.Mutex
	parent map[pnode.PNode]pnode.PNode          // union-find
	edges  map[pnode.PNode]map[pnode.PNode]bool // canonical → canonical deps
	stats  V1Stats
}

// V1Stats counts the v1 algorithm's work.
type V1Stats struct {
	Records    uint64
	Duplicates uint64
	Merges     uint64 // cycle merges performed
	DFSVisits  uint64 // nodes visited by cycle checks (the CPU cost proxy)
}

// NewV1 creates a PASSv1-style analyzer.
func NewV1() *V1 {
	return &V1{
		parent: make(map[pnode.PNode]pnode.PNode),
		edges:  make(map[pnode.PNode]map[pnode.PNode]bool),
	}
}

func (v *V1) find(p pnode.PNode) pnode.PNode {
	root := p
	for {
		q, ok := v.parent[root]
		if !ok || q == root {
			break
		}
		root = q
	}
	// Path compression.
	for p != root {
		next := v.parent[p]
		v.parent[p] = root
		p = next
	}
	return root
}

// AddDep records "subject depends on dep". It returns true if the edge was
// kept, false if it was a duplicate or became a self-loop after merging.
func (v *V1) AddDep(subject, dep pnode.PNode) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	s, d := v.find(subject), v.find(dep)
	if s == d {
		v.stats.Duplicates++
		return false
	}
	if v.edges[s][d] {
		v.stats.Duplicates++
		return false
	}
	// Would s→d close a cycle? Only if d can already reach s.
	if v.reaches(d, s) {
		v.mergeCycle(s, d)
		return false
	}
	if v.edges[s] == nil {
		v.edges[s] = make(map[pnode.PNode]bool)
	}
	v.edges[s][d] = true
	v.stats.Records++
	return true
}

// reaches runs a DFS from src looking for dst over canonical nodes.
func (v *V1) reaches(src, dst pnode.PNode) bool {
	seen := map[pnode.PNode]bool{}
	stack := []pnode.PNode{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == dst {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		v.stats.DFSVisits++
		for m := range v.edges[n] {
			stack = append(stack, v.find(m))
		}
	}
	return false
}

// mergeCycle unions every node on a path from d back to s (the cycle the
// new edge would close) into one entity and rewrites their edges.
func (v *V1) mergeCycle(s, d pnode.PNode) {
	// Collect nodes on the cycle: nodes reachable from d that reach s.
	onPath := map[pnode.PNode]bool{s: true}
	var walk func(n pnode.PNode) bool
	seen := map[pnode.PNode]bool{}
	walk = func(n pnode.PNode) bool {
		if n == s {
			return true
		}
		if seen[n] {
			return onPath[n]
		}
		seen[n] = true
		v.stats.DFSVisits++
		hit := false
		for m := range v.edges[n] {
			if walk(v.find(m)) {
				hit = true
			}
		}
		if hit {
			onPath[n] = true
		}
		return hit
	}
	walk(d)

	// Union them all into s, folding their edges.
	merged := v.edges[s]
	if merged == nil {
		merged = make(map[pnode.PNode]bool)
	}
	for n := range onPath {
		if n == s {
			continue
		}
		v.parent[n] = s
		for m := range v.edges[n] {
			merged[m] = true
		}
		delete(v.edges, n)
	}
	v.edges[s] = merged
	// Drop self-edges created by the merge.
	for m := range merged {
		if v.find(m) == s {
			delete(merged, m)
		}
	}
	v.stats.Merges++
}

// Canonical returns the entity a pnode currently belongs to.
func (v *V1) Canonical(p pnode.PNode) pnode.PNode {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.find(p)
}

// HasCycle reports whether the canonical graph contains a cycle (it never
// should; exported for the property tests).
func (v *V1) HasCycle() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[pnode.PNode]int{}
	var visit func(n pnode.PNode) bool
	visit = func(n pnode.PNode) bool {
		color[n] = gray
		for m := range v.edges[n] {
			cm := v.find(m)
			if cm == n {
				return true
			}
			switch color[cm] {
			case gray:
				return true
			case white:
				if visit(cm) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for n := range v.edges {
		if color[n] == white {
			if visit(n) {
				return true
			}
		}
	}
	return false
}

// Stats returns a snapshot of the counters.
func (v *V1) Stats() V1Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stats
}

// FeedRecord lets the ablation bench drive V1 with the same record stream
// the v2 analyzer sees: INPUT records become edges, others are counted.
func (v *V1) FeedRecord(r record.Record) {
	if dep, ok := r.Value.AsRef(); ok && r.Attr == record.AttrInput {
		v.AddDep(r.Subject.PNode, dep.PNode)
		return
	}
	v.mu.Lock()
	v.stats.Records++
	v.mu.Unlock()
}
