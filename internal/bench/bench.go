// Package bench is the evaluation harness: it re-runs the paper's §7
// experiments — Table 2 (elapsed-time overheads of PASSv2 vs ext3 and
// PA-NFS vs NFS, across five workloads) and Table 3 (space overheads),
// plus Table 1 (the record types each provenance-aware application
// collects) — and prints rows in the paper's format side by side with the
// published numbers. cmd/passbench and the root bench_test.go both drive
// this package.
package bench

import (
	"fmt"
	"time"

	"passv2/internal/kernel"
	"passv2/internal/vfs"
	"passv2/internal/workload"
	"passv2/pass"
)

// WorkloadFn runs one evaluation workload.
type WorkloadFn func(k *kernel.Kernel, cfg workload.Config, pa bool) (*workload.Stats, error)

// Workload names one of the five evaluation applications.
type Workload struct {
	Name string
	Run  WorkloadFn
	// Paper's measured overheads (percent) for the comparison columns.
	PaperLocal float64
	PaperNFS   float64
	// Paper's space overheads (percent of ext3 bytes).
	PaperProvPct  float64
	PaperTotalPct float64
}

// Workloads lists the evaluation applications in the paper's order.
var Workloads = []Workload{
	{
		Name: "Linux Compile",
		Run: func(k *kernel.Kernel, c workload.Config, _ bool) (*workload.Stats, error) {
			return workload.Compile(k, c)
		},
		PaperLocal:    15.6,
		PaperNFS:      11.0,
		PaperProvPct:  6.9,
		PaperTotalPct: 18.4,
	},
	{
		Name: "Postmark",
		Run: func(k *kernel.Kernel, c workload.Config, _ bool) (*workload.Stats, error) {
			return workload.Postmark(k, c)
		},
		PaperLocal:    11.5,
		PaperNFS:      16.8,
		PaperProvPct:  0.1,
		PaperTotalPct: 0.1,
	},
	{
		Name: "Mercurial Activity",
		Run: func(k *kernel.Kernel, c workload.Config, _ bool) (*workload.Stats, error) {
			return workload.Mercurial(k, c)
		},
		PaperLocal:    23.1,
		PaperNFS:      8.7,
		PaperProvPct:  1.8,
		PaperTotalPct: 3.4,
	},
	{
		Name: "Blast",
		Run: func(k *kernel.Kernel, c workload.Config, _ bool) (*workload.Stats, error) {
			return workload.Blast(k, c)
		},
		PaperLocal:    0.7,
		PaperNFS:      1.9,
		PaperProvPct:  1.1,
		PaperTotalPct: 3.8,
	},
	{
		Name:          "PA-Kepler",
		Run:           workload.Kepler2,
		PaperLocal:    1.4,
		PaperNFS:      2.5,
		PaperProvPct:  4.7,
		PaperTotalPct: 14.2,
	},
}

// FindWorkload looks a workload up by name.
func FindWorkload(name string) (Workload, bool) {
	for _, w := range Workloads {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// RunLocal executes a workload on a local machine (the PASSv2-vs-ext3
// columns) and returns simulated elapsed time plus the machine for
// space accounting.
func RunLocal(w Workload, scale float64, provenance bool) (time.Duration, *pass.Machine, error) {
	m := pass.NewMachine(pass.Config{Provenance: provenance})
	if _, err := m.AddVolume("/data", 1); err != nil {
		return 0, nil, err
	}
	cfg := workload.Config{Scale: scale, Seed: 42, Dir: "/data"}
	m.ResetClock()
	if _, err := w.Run(m.Kernel, cfg, provenance); err != nil {
		return 0, nil, err
	}
	elapsed := m.Elapsed()
	return elapsed, m, nil
}

// RunNFS executes a workload against a loopback PA-NFS mount (the
// PA-NFS-vs-NFS columns). It returns elapsed time, the client machine and
// the file server (for provenance-space accounting).
func RunNFS(w Workload, scale float64, provenance bool) (time.Duration, *pass.Machine, *pass.FileServer, error) {
	m := pass.NewMachine(pass.Config{Provenance: provenance})
	var srv *pass.FileServer
	var err error
	if provenance {
		srv, err = pass.NewFileServer(7, m.Clock, vfs.DefaultCostModel())
	} else {
		srv, err = pass.NewPlainFileServer(m.Clock, vfs.DefaultCostModel())
	}
	if err != nil {
		return 0, nil, nil, err
	}
	if err := m.MountNFS("/mnt", srv.Addr()); err != nil {
		srv.Close()
		return 0, nil, nil, err
	}
	cfg := workload.Config{Scale: scale, Seed: 42, Dir: "/mnt"}
	m.ResetClock()
	if _, err := w.Run(m.Kernel, cfg, provenance); err != nil {
		srv.Close()
		return 0, nil, nil, err
	}
	elapsed := m.Elapsed()
	return elapsed, m, srv, nil
}

// Overhead computes the percentage overhead of with vs without.
func Overhead(without, with time.Duration) float64 {
	if without == 0 {
		return 0
	}
	return 100 * (float64(with) - float64(without)) / float64(without)
}

// Pct formats a percentage the way the paper prints them.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
