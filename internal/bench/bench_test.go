package bench

import (
	"strings"
	"testing"
)

// Overheads are scale-sensitive (record counts are workload-shaped, base
// time grows with data), so the shape assertions run at a moderate scale
// and use generous bands; cmd/passbench -scale 0.4 gives the calibrated
// numbers.
const testScale = 0.15

func TestTable2LocalShape(t *testing.T) {
	rows, err := Table2Local(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Base <= 0 || r.With <= 0 {
			t.Fatalf("%s: zero elapsed time (base=%v with=%v)", r.Name, r.Base, r.With)
		}
		if r.OverheadPct < -1 {
			t.Fatalf("%s: provenance made it faster?! %v", r.Name, r.OverheadPct)
		}
	}
	// Shape assertions from the paper: I/O- and metadata-heavy loads pay
	// double-digit overheads, CPU-bound loads pay almost nothing.
	if byName["Blast"].OverheadPct > 5 {
		t.Errorf("Blast overhead = %v, should be small (paper: 0.7%%)", byName["Blast"].OverheadPct)
	}
	if byName["PA-Kepler"].OverheadPct > 12 {
		t.Errorf("PA-Kepler overhead = %v, should be small (paper: 1.4%%)", byName["PA-Kepler"].OverheadPct)
	}
	if byName["Mercurial Activity"].OverheadPct < byName["Blast"].OverheadPct {
		t.Error("metadata-heavy Mercurial should pay more than CPU-bound Blast")
	}
	if byName["Linux Compile"].OverheadPct < byName["Blast"].OverheadPct {
		t.Error("Compile should pay more than Blast")
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(testScale)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.DataBytes <= 0 {
			t.Fatalf("%s: no data bytes", r.Name)
		}
		if r.ProvBytes <= 0 {
			t.Fatalf("%s: no provenance recorded", r.Name)
		}
		if r.ProvPlusIndex < r.ProvBytes {
			t.Fatalf("%s: indexes negative", r.Name)
		}
	}
	// Postmark moves megabytes per provenance record: tiny relative
	// overhead. Compile produces many small objects: the largest.
	if byName["Postmark"].TotalPct > byName["Linux Compile"].TotalPct {
		t.Error("Postmark space overhead should be far below Compile's")
	}
}

func TestTable1RecordTypes(t *testing.T) {
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{
		"PA-NFS":    {"BEGINTXN", "ENDTXN", "FREEZE"},
		"PA-Kepler": {"INPUT", "NAME", "PARAMS", "TYPE"},
		"PA-links":  {"CURRENT_URL", "FILE_URL", "INPUT", "TYPE", "VISITED_URL"},
		"PA-Python": {"INPUT", "NAME", "TYPE"},
	}
	for app, wantTypes := range want {
		got := tab[app]
		for _, wt := range wantTypes {
			found := false
			for _, g := range got {
				if g == wt {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: record type %s missing (got %v)", app, wt, got)
			}
		}
	}
}

func TestTable2NFSShape(t *testing.T) {
	rows, err := Table2NFS(testScale)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Base <= 0 || r.With <= 0 {
			t.Fatalf("%s: zero elapsed", r.Name)
		}
	}
	if byName["Blast"].OverheadPct > 6 {
		t.Errorf("Blast PA-NFS overhead = %v, should be small", byName["Blast"].OverheadPct)
	}
}

func TestPrinters(t *testing.T) {
	var sb strings.Builder
	PrintTable2(&sb, "local", []Table2Row{{Name: "X", OverheadPct: 1.5, PaperOverhead: 2}})
	PrintTable3(&sb, []Table3Row{{Name: "X", DataBytes: 100, ProvBytes: 5, ProvPlusIndex: 9, ProvPct: 5, TotalPct: 9}})
	PrintTable1(&sb, map[string][]string{"PA-NFS": {"FREEZE"}})
	out := sb.String()
	for _, want := range []string{"Benchmark", "1.5%", "FREEZE", "Ext3"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed tables missing %q", want)
		}
	}
}
