package bench

import (
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/waldo"
)

// DemoDB builds the paper's atlas-x.gif ancestry chain (§3.1's attribution
// example) so the query tools can be tried without running a workload
// first. Both cmd/pql -demo and cmd/passd -demo serve it.
func DemoDB() *waldo.DB {
	db := waldo.NewDB()
	ref := func(p uint64) pnode.Ref { return pnode.Ref{PNode: pnode.PNode(p), Version: 1} }
	add := func(r pnode.Ref, name, typ string) {
		db.Apply(record.New(r, record.AttrName, record.StringVal(name)))
		db.Apply(record.New(r, record.AttrType, record.StringVal(typ)))
	}
	atlas, convert, slicer, softmean, anatomy := ref(1), ref(2), ref(3), ref(4), ref(5)
	add(atlas, "atlas-x.gif", record.TypeFile)
	add(convert, "convert", record.TypeProc)
	add(slicer, "slicer", record.TypeProc)
	add(softmean, "softmean", record.TypeOperator)
	add(anatomy, "anatomy1.img", record.TypeFile)
	db.Apply(record.Input(atlas, convert))
	db.Apply(record.Input(convert, slicer))
	db.Apply(record.Input(slicer, softmean))
	db.Apply(record.Input(softmean, anatomy))
	return db
}
