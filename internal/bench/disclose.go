package bench

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"passv2/internal/passd"
	"passv2/internal/pnode"
	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// DiscloseResult reports remote disclosure throughput over protocol v2:
// one DPAPI write per round-trip (each paying a network round-trip and a
// durable acknowledgment) versus the same records pipelined in batches
// (one round-trip and one fsync per batch). The multiplier is the whole
// argument for the batch verb — §6.5-style applications disclose
// thousands of small records, and per-record acknowledgment latency is
// what would make a remote layer unusable.
type DiscloseResult struct {
	Records   int  `json:"records"`    // records disclosed per phase
	BatchSize int  `json:"batch_size"` // ops pipelined per batch request
	Durable   bool `json:"durable"`    // fsync-backed on-disk log

	PerRecordSecs float64 `json:"per_record_secs"`
	PerRecordRPS  float64 `json:"per_record_rps"`
	BatchedSecs   float64 `json:"batched_secs"`
	BatchedRPS    float64 `json:"batched_rps"`
	Multiplier    float64 `json:"multiplier"`
}

// Disclose measures remote DPAPI disclosure against a real daemon setup:
// a passd server over a write-through provenance log on the local file
// system (fsync on every acknowledgment, as cmd/passd -logdir runs), a
// TCP client, one phantom object, and `records` distinct INPUT records
// disclosed twice — once as single-record round-trips, once pipelined in
// batches of `batch`.
func Disclose(records, batch int) (DiscloseResult, error) {
	res := DiscloseResult{Records: records, BatchSize: batch, Durable: true}

	dir, err := os.MkdirTemp("", "passd-disclose-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	dfs, err := vfs.NewDirFS(dir)
	if err != nil {
		return res, err
	}
	log, err := provlog.NewWriter(dfs, "/", 0)
	if err != nil {
		return res, err
	}
	w := waldo.New()
	w.Attach(waldo.NewLogVolume("bench", dfs, log))
	srv, err := passd.Serve(w, passd.Config{
		Append: func(recs []record.Record) error {
			for _, r := range recs {
				if err := log.AppendRecord(0, r); err != nil {
					return err
				}
			}
			return nil
		},
		Sync: log.Sync,
	})
	if err != nil {
		return res, err
	}
	defer srv.Close()
	c, err := passd.Dial(srv.Addr())
	if err != nil {
		return res, err
	}
	defer c.Close()

	obj, err := c.PassMkobj()
	if err != nil {
		return res, err
	}
	ro := obj.(*passd.RemoteObject)
	dep := func(i int) pnode.Ref {
		// Distinct dependencies so the analyzer's duplicate elimination
		// never collapses the workload.
		return pnode.Ref{PNode: pnode.PNode(0x0100000000000000 | uint64(i+1)), Version: 1}
	}

	// Phase 1: one record per round-trip, one durable ack each.
	runtime.GC()
	start := time.Now()
	for i := 0; i < records; i++ {
		if _, err := ro.PassWrite(nil, 0, record.NewBundle(record.Input(ro.Ref(), dep(i)))); err != nil {
			return res, err
		}
	}
	res.PerRecordSecs = time.Since(start).Seconds()

	// Phase 2: the same volume of fresh records, pipelined.
	runtime.GC()
	start = time.Now()
	b := c.NewBatch()
	for i := 0; i < records; i++ {
		if err := b.Disclose(ro, record.Input(ro.Ref(), dep(records+i))); err != nil {
			return res, err
		}
		if b.Len() >= batch {
			if err := b.Flush(); err != nil {
				return res, err
			}
		}
	}
	if err := b.Flush(); err != nil {
		return res, err
	}
	res.BatchedSecs = time.Since(start).Seconds()

	if res.PerRecordSecs > 0 {
		res.PerRecordRPS = float64(records) / res.PerRecordSecs
	}
	if res.BatchedSecs > 0 {
		res.BatchedRPS = float64(records) / res.BatchedSecs
	}
	if res.PerRecordRPS > 0 {
		res.Multiplier = res.BatchedRPS / res.PerRecordRPS
	}
	return res, nil
}

// PrintDisclose renders a DiscloseResult.
func PrintDisclose(w io.Writer, r DiscloseResult) {
	fmt.Fprintf(w, "remote disclosure: per-record round-trips vs pipelined batches\n")
	fmt.Fprintf(w, "  workload:   %d provenance records per phase, durable log acks: %v\n", r.Records, r.Durable)
	fmt.Fprintf(w, "  per-record: %8.3fs  (%10.0f rec/s; 1 round-trip + 1 fsync each)\n", r.PerRecordSecs, r.PerRecordRPS)
	fmt.Fprintf(w, "  batched:    %8.3fs  (%10.0f rec/s; %d ops per round-trip, 1 fsync per batch)\n",
		r.BatchedSecs, r.BatchedRPS, r.BatchSize)
	fmt.Fprintf(w, "  multiplier: %8.1fx\n", r.Multiplier)
}
