package bench

import "testing"

// TestDiscloseRuns is the harness smoke test: tiny sizes, but both phases
// must complete, commit every record, and produce sane numbers. The real
// multiplier claim is measured by passbench -disclose and gated in CI.
func TestDiscloseRuns(t *testing.T) {
	res, err := Disclose(64, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerRecordSecs <= 0 || res.BatchedSecs <= 0 {
		t.Fatalf("phases did not run: %+v", res)
	}
	if res.Multiplier <= 0 {
		t.Fatalf("no multiplier computed: %+v", res)
	}
}
