package bench

import (
	"fmt"
	"io"
	"time"

	"passv2/internal/lasagna"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// IngestResult reports the Waldo log→database pipeline's throughput
// (DESIGN.md §5). Unlike the table benchmarks, these are wall-clock
// numbers: the pipeline is pure harness code, so here the harness itself
// is the system under test.
type IngestResult struct {
	Records  int   // records written to the log
	LogBytes int64 // total log bytes scanned by the cold drain

	ColdSecs       float64 // one drain over the whole log
	ColdRecsPerSec float64

	SteadyDrains      int // incremental drains performed
	SteadyBatch       int // records appended before each drain
	SteadySecs        float64
	SteadyRecsPerSec  float64
	SteadyEntriesScan int64 // entries decoded across all steady drains

	DBKeys  int // resulting B-tree population
	DBNodes int
	DBDepth int
}

// Ingest measures cold and steady-state ingestion over a synthetic
// provenance stream: records records split across rotated log files, then
// steadyDrains incremental drains of steadyBatch records each.
func Ingest(records, steadyDrains, steadyBatch int) (IngestResult, error) {
	res := IngestResult{Records: records, SteadyDrains: steadyDrains, SteadyBatch: steadyBatch}
	lower := vfs.NewMemFS("lower", nil)
	vol, err := lasagna.New("v", lasagna.Config{Lower: lower, VolumeID: 1, MaxLogSize: 256 << 10, LogBuffer: 1 << 16})
	if err != nil {
		return res, err
	}
	appendRecords := func(lo, n int) error {
		for r := lo; r < lo+n; r++ {
			err := vol.AppendProvenance([]record.Record{
				record.New(pnode.Ref{PNode: pnode.PNode(r%512 + 1), Version: 1},
					record.AttrName, record.StringVal(fmt.Sprintf("/data/f%d", r))),
				record.Input(
					pnode.Ref{PNode: pnode.PNode(r%512 + 1), Version: 1},
					pnode.Ref{PNode: pnode.PNode(r%97 + 1000), Version: 1},
				),
			})
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := appendRecords(0, records); err != nil {
		return res, err
	}
	if err := vol.Log().Flush(); err != nil {
		return res, err
	}
	files, err := lower.ReadDir(vol.Log().Dir())
	if err == nil {
		for _, e := range files {
			if st, serr := lower.Stat(vfs.Join(vol.Log().Dir(), e.Name)); serr == nil {
				res.LogBytes += st.Size
			}
		}
	}

	w := waldo.New()
	w.Attach(vol)
	start := time.Now()
	if err := w.Drain(); err != nil {
		return res, err
	}
	res.ColdSecs = time.Since(start).Seconds()
	if res.ColdSecs > 0 {
		res.ColdRecsPerSec = float64(2*records) / res.ColdSecs
	}

	decoded0 := w.EntriesDecoded()
	start = time.Now()
	for i := 0; i < steadyDrains; i++ {
		if err := appendRecords(records+i*steadyBatch, steadyBatch); err != nil {
			return res, err
		}
		if err := w.Drain(); err != nil {
			return res, err
		}
	}
	res.SteadySecs = time.Since(start).Seconds()
	res.SteadyEntriesScan = w.EntriesDecoded() - decoded0
	if res.SteadySecs > 0 {
		res.SteadyRecsPerSec = float64(2*steadyBatch*steadyDrains) / res.SteadySecs
	}

	st := w.DB.TreeStats()
	res.DBKeys, res.DBNodes, res.DBDepth = st.Keys, st.Nodes, st.Depth
	return res, nil
}

// PrintIngest renders an IngestResult.
func PrintIngest(w io.Writer, r IngestResult) {
	fmt.Fprintf(w, "Waldo ingestion (log→database pipeline)\n")
	fmt.Fprintf(w, "  log: %d records, %d bytes across rotated files\n", 2*r.Records, r.LogBytes)
	fmt.Fprintf(w, "  cold ingest:   %10.0f records/sec (%.3fs)\n", r.ColdRecsPerSec, r.ColdSecs)
	fmt.Fprintf(w, "  steady state:  %10.0f records/sec (%d drains × %d records, %.3fs, %d entries decoded)\n",
		r.SteadyRecsPerSec, r.SteadyDrains, 2*r.SteadyBatch, r.SteadySecs, r.SteadyEntriesScan)
	fmt.Fprintf(w, "  database: %d keys in %d B-tree nodes, depth %d\n", r.DBKeys, r.DBNodes, r.DBDepth)
}
