package bench

import (
	"strings"
	"testing"
)

// TestIngestShape runs a small ingestion measurement and sanity-checks
// the result: all records land, the steady phase decodes exactly the new
// entries, and the printer renders without error.
func TestIngestShape(t *testing.T) {
	const (
		records = 2000
		drains  = 10
		batch   = 20
	)
	res, err := Ingest(records, drains, batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.ColdRecsPerSec <= 0 || res.SteadyRecsPerSec <= 0 {
		t.Fatalf("nonpositive throughput: %+v", res)
	}
	if res.LogBytes == 0 {
		t.Fatal("no log bytes accounted")
	}
	if want := int64(2 * batch * drains); res.SteadyEntriesScan != want {
		t.Fatalf("steady drains decoded %d entries, want %d (work not proportional to new bytes)", res.SteadyEntriesScan, want)
	}
	if res.DBKeys == 0 || res.DBNodes == 0 || res.DBDepth == 0 {
		t.Fatalf("empty tree stats: %+v", res)
	}
	var sb strings.Builder
	PrintIngest(&sb, res)
	if !strings.Contains(sb.String(), "records/sec") {
		t.Fatalf("printer output: %q", sb.String())
	}
}
