package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"passv2/internal/graph"
	"passv2/internal/pnode"
	"passv2/internal/pql"
	"passv2/internal/record"
	"passv2/internal/waldo"
)

// queryChain is the ancestry-chain length of the synthetic query workload:
// files link input-edges in blocks of this size, so one selective ancestor
// query touches a bounded closure while the naive evaluator still has to
// expand a closure per file in the database.
const queryChain = 8

// QueryDataset builds a synthetic provenance database of at least the given
// record count (NAME + TYPE + chained INPUT records per file), and returns
// the database, the graph over it, and the paper-shaped selective ancestor
// query the benchmarks run (§3.1 attribution: all ancestry of one named
// file).
func QueryDataset(records int) (*waldo.DB, *graph.Graph, string) {
	// Each file emits NAME + TYPE, and every file except a chain head (1
	// in queryChain) emits an INPUT: 3f - ceil(f/queryChain) records from
	// f files. Solve for f so the total meets the request.
	files := (records*queryChain + 3*queryChain - 2) / (3*queryChain - 1)
	if files < queryChain {
		files = queryChain
	}
	db := waldo.NewDB()
	batch := make([]record.Record, 0, 3*1024)
	flush := func() {
		db.ApplyBatch(batch)
		batch = batch[:0]
	}
	for i := 1; i <= files; i++ {
		ref := pnode.Ref{PNode: pnode.PNode(i), Version: 1}
		batch = append(batch,
			record.New(ref, record.AttrName, record.StringVal(fmt.Sprintf("/q/f%d", i))),
			record.New(ref, record.AttrType, record.StringVal(record.TypeFile)))
		if (i-1)%queryChain != 0 {
			batch = append(batch, record.Input(ref, pnode.Ref{PNode: pnode.PNode(i - 1), Version: 1}))
		}
		if len(batch) >= 3*1024 {
			flush()
		}
	}
	flush()
	// Target the last file of a complete chain so the closure is full-depth.
	target := (files / queryChain) * queryChain
	q := fmt.Sprintf(`select A from Provenance.file as F F.input* as A where F.name = "/q/f%d"`, target)
	return db, graph.New(db), q
}

// QueryBenchResult reports the planned-vs-naive comparison for one
// selective query over one database.
type QueryBenchResult struct {
	Records int     // records applied to the database
	Query   string  // the measured query
	Rows    int     // result rows (identical both ways)
	NaiveMS float64 // one naive (cross-product) evaluation
	PlanMS  float64 // one planned evaluation (fresh plan + memo each run)
	Speedup float64
	Plan    string // the executed plan, for the report
}

// Query measures the planner win: the same parsed query evaluated by the
// naive cross-product evaluator and by the planner/executor, over a
// database of at least `records` provenance records. The two result sets
// are verified identical before any number is reported.
func Query(records int) (QueryBenchResult, error) {
	db, g, src := QueryDataset(records)
	q, err := pql.Parse(src)
	if err != nil {
		return QueryBenchResult{}, err
	}
	res := QueryBenchResult{Query: src, Plan: pql.PlanQuery(q).Describe()}
	recs, _, _ := db.Stats()
	res.Records = int(recs)

	start := time.Now()
	naive, err := pql.EvalNaive(g, q)
	if err != nil {
		return res, err
	}
	res.NaiveMS = float64(time.Since(start).Microseconds()) / 1e3

	// Best of three planned runs: each run re-plans and uses a fresh memo,
	// so nothing is amortized across runs.
	for i := 0; i < 3; i++ {
		start = time.Now()
		planned, err := pql.Eval(g, q)
		if err != nil {
			return res, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1e3
		if i == 0 || ms < res.PlanMS {
			res.PlanMS = ms
		}
		if planned.Format() != naive.Format() {
			return res, fmt.Errorf("bench: planned and naive results differ")
		}
		res.Rows = len(planned.Rows)
	}
	if res.PlanMS > 0 {
		res.Speedup = res.NaiveMS / res.PlanMS
	}
	return res, nil
}

// PrintQuery renders a QueryBenchResult.
func PrintQuery(w io.Writer, r QueryBenchResult) {
	fmt.Fprintf(w, "PQL query planner (selective ancestor query)\n")
	fmt.Fprintf(w, "  database: %d records\n", r.Records)
	fmt.Fprintf(w, "  query:    %s\n", r.Query)
	fmt.Fprintf(w, "  naive:    %10.3f ms  (cross-product evaluator)\n", r.NaiveMS)
	fmt.Fprintf(w, "  planned:  %10.3f ms  (%d rows, identical results)\n", r.PlanMS, r.Rows)
	fmt.Fprintf(w, "  speedup:  %10.1fx\n", r.Speedup)
	fmt.Fprint(w, indent(r.Plan, "  "))
}

func indent(s, pad string) string {
	var sb strings.Builder
	for _, line := range strings.Split(strings.TrimSuffix(s, "\n"), "\n") {
		sb.WriteString(pad)
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}
