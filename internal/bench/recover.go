package bench

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"passv2/internal/checkpoint"
	"passv2/internal/pnode"
	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
	"runtime"
)

// RecoverResult reports the restart-cost comparison DESIGN.md §8 is
// about: recovering a serving database from the newest checkpoint plus a
// tail replay, versus re-ingesting the whole log from byte zero.
type RecoverResult struct {
	Records     int64 `json:"records"`      // records ingested before the checkpoint
	TailRecords int64 `json:"tail_records"` // records appended after the checkpoint
	LogBytes    int64 `json:"log_bytes"`    // total log size at crash time

	SnapshotBytes int64   `json:"snapshot_bytes"` // checkpoint snapshot size
	ResumeBytes   int64   `json:"resume_bytes"`   // log bytes the checkpoint lets recovery skip
	ReplayedBytes int64   `json:"replayed_bytes"` // log bytes recovery actually read
	ReplayedRecs  int64   `json:"replayed_records"`
	FromZeroSecs  float64 `json:"from_zero_secs"`
	FromCkptSecs  float64 `json:"from_checkpoint_secs"`
	Speedup       float64 `json:"speedup"`
	Verified      bool    `json:"verified"` // recovered DB byte-identical to re-ingested DB

	// Incremental arm: after the tail is drained, the same state is
	// committed again as a delta generation against the pinned full — the
	// steady-state shape of a long-running daemon, where the change set
	// between checkpoints is small relative to the database.
	FullWriteSecs  float64 `json:"full_write_secs"`  // time to commit the full generation
	DeltaBytes     int64   `json:"delta_bytes"`      // delta generation payload size
	DeltaWriteSecs float64 `json:"delta_write_secs"` // time to commit the delta generation
}

// Recover measures restart cost: ingest `records` provenance records from
// a log, checkpoint, append `tail` more, then time (a) a from-zero
// re-ingest of the whole log and (b) checkpoint recovery plus tail
// replay. Both paths are verified byte-identical before any number is
// reported.
func Recover(records, tail int) (RecoverResult, error) {
	res := RecoverResult{}
	lower := vfs.NewMemFS("lower", nil)
	log, err := provlog.NewWriter(lower, "/log", 1<<22)
	if err != nil {
		return res, err
	}
	log.SetBuffer(1 << 16)
	appendRecords := func(lo, n int) error {
		for i := lo; i < lo+n; i += 2 {
			ref := pnode.Ref{PNode: pnode.PNode(i%4096 + 1), Version: 1}
			if err := log.AppendRecord(0, record.New(ref, record.AttrName,
				record.StringVal(fmt.Sprintf("/data/f%d", i)))); err != nil {
				return err
			}
			if err := log.AppendRecord(0, record.Input(ref,
				pnode.Ref{PNode: pnode.PNode(i%97 + 100000), Version: 1})); err != nil {
				return err
			}
		}
		return nil
	}

	// Ingest the body, checkpoint, append the tail (the "crash" point).
	if err := appendRecords(0, records); err != nil {
		return res, err
	}
	w := waldo.New()
	w.Attach(waldo.NewLogVolume("vol", lower, log))
	if err := w.Drain(); err != nil {
		return res, err
	}
	store, err := checkpoint.NewStore(vfs.NewMemFS("ck", nil), "/ck", 2)
	if err != nil {
		return res, err
	}
	start := time.Now()
	info, err := store.Write(w.CheckpointState(), checkpoint.Policy{})
	if err != nil {
		return res, err
	}
	res.FullWriteSecs = time.Since(start).Seconds()
	res.Records = info.Records
	res.SnapshotBytes = info.SnapshotBytes
	if err := appendRecords(records, tail); err != nil {
		return res, err
	}
	if err := log.Flush(); err != nil {
		return res, err
	}
	res.TailRecords = int64(tail)
	files, err := provlog.LogFiles(lower, "/log")
	if err != nil {
		return res, err
	}
	for _, f := range files {
		if st, err := lower.Stat(f); err == nil {
			res.LogBytes += st.Size
		}
	}

	// From-zero re-ingest: a fresh process with no checkpoint.
	zeroLog, err := provlog.NewWriter(lower, "/log", 1<<22)
	if err != nil {
		return res, err
	}
	zero := waldo.New()
	zero.Attach(waldo.NewLogVolume("vol", lower, zeroLog))
	runtime.GC() // each phase pays only for its own garbage
	start = time.Now()
	if err := zero.Drain(); err != nil {
		return res, err
	}
	res.FromZeroSecs = time.Since(start).Seconds()

	// Checkpoint recovery: load the newest generation, seed the offsets,
	// replay the tail. Timed end to end, snapshot load included.
	ckptLog, err := provlog.NewWriter(lower, "/log", 1<<22)
	if err != nil {
		return res, err
	}
	runtime.GC()
	start = time.Now()
	rec, err := store.Load()
	if err != nil {
		return res, err
	}
	if rec.DB == nil {
		return res, fmt.Errorf("bench: no checkpoint recovered (skipped %v)", rec.Skipped)
	}
	recovered := waldo.New()
	recovered.DB = rec.DB
	recovered.Attach(waldo.NewLogVolume("vol", lower, ckptLog))
	if missing := recovered.RestoreVolumes(rec.Volumes); len(missing) != 0 {
		return res, fmt.Errorf("bench: unmatched checkpoint volumes %v", missing)
	}
	if err := recovered.Drain(); err != nil {
		return res, err
	}
	res.FromCkptSecs = time.Since(start).Seconds()
	res.ResumeBytes = rec.ResumeBytes()
	res.ReplayedBytes = res.LogBytes - res.ResumeBytes
	recs, _, _ := recovered.DB.Stats()
	res.ReplayedRecs = recs - rec.Records
	if res.FromCkptSecs > 0 {
		res.Speedup = res.FromZeroSecs / res.FromCkptSecs
	}

	// Correctness gate: both paths must produce the same database.
	var zb, cb bytes.Buffer
	if err := zero.DB.Save(&zb); err != nil {
		return res, err
	}
	if err := recovered.DB.Save(&cb); err != nil {
		return res, err
	}
	res.Verified = bytes.Equal(zb.Bytes(), cb.Bytes())
	if !res.Verified {
		return res, fmt.Errorf("bench: recovered database differs from from-zero re-ingest")
	}

	// Incremental arm: drain the tail into the live Waldo and commit the
	// result as a delta against the pinned full generation, then prove a
	// chain recovery reproduces the same bytes.
	if err := w.Drain(); err != nil {
		return res, err
	}
	start = time.Now()
	dinfo, err := store.Write(w.CheckpointState(), checkpoint.Policy{FullEvery: 1 << 20})
	if err != nil {
		return res, err
	}
	res.DeltaWriteSecs = time.Since(start).Seconds()
	if dinfo.Kind != checkpoint.KindDelta {
		return res, fmt.Errorf("bench: steady-state checkpoint fell back to a %v generation", dinfo.Kind)
	}
	res.DeltaBytes = dinfo.SnapshotBytes
	chain, err := store.Load()
	if err != nil {
		return res, err
	}
	if chain.DB == nil || chain.Gen != dinfo.Gen || len(chain.Chain) != 2 {
		return res, fmt.Errorf("bench: chain recovery landed on gen %d (chain %v), want delta gen %d",
			chain.Gen, chain.Chain, dinfo.Gen)
	}
	var hb bytes.Buffer
	if err := chain.DB.Save(&hb); err != nil {
		return res, err
	}
	if !bytes.Equal(hb.Bytes(), zb.Bytes()) {
		res.Verified = false
		return res, fmt.Errorf("bench: full+delta chain recovery differs from from-zero re-ingest")
	}
	return res, nil
}

// PrintRecover renders a RecoverResult.
func PrintRecover(w io.Writer, r RecoverResult) {
	fmt.Fprintf(w, "checkpoint recovery vs from-zero re-ingest\n")
	fmt.Fprintf(w, "  log:        %d records + %d tail records, %d bytes\n", r.Records, r.TailRecords, r.LogBytes)
	fmt.Fprintf(w, "  checkpoint: %d snapshot bytes covering %d records (%d log bytes skippable)\n",
		r.SnapshotBytes, r.Records, r.ResumeBytes)
	fmt.Fprintf(w, "  from zero:  %8.3fs  (decode + re-index the whole log)\n", r.FromZeroSecs)
	fmt.Fprintf(w, "  recovery:   %8.3fs  (snapshot load + %d-byte tail replay, %d records)\n",
		r.FromCkptSecs, r.ReplayedBytes, r.ReplayedRecs)
	fmt.Fprintf(w, "  speedup:    %8.1fx  (verified byte-identical: %v)\n", r.Speedup, r.Verified)
	fmt.Fprintf(w, "  delta:      %d bytes in %.3fs vs %d-byte full in %.3fs (%.1f%% of full)\n",
		r.DeltaBytes, r.DeltaWriteSecs, r.SnapshotBytes, r.FullWriteSecs,
		100*float64(r.DeltaBytes)/float64(r.SnapshotBytes))
}
