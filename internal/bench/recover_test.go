package bench

import (
	"bytes"
	"testing"
)

// TestRecoverShape runs the recovery benchmark at a small scale and
// checks its internal consistency: the correctness gate (recovered ==
// from-zero) must hold, and the replayed bytes must be exactly the log
// minus the checkpointed offsets.
func TestRecoverShape(t *testing.T) {
	res, err := Recover(4000, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("recovered database not verified identical")
	}
	if res.Records != 4000 || res.ReplayedRecs != 200 {
		t.Fatalf("records %d / replayed %d, want 4000 / 200", res.Records, res.ReplayedRecs)
	}
	if res.ResumeBytes <= 0 || res.ResumeBytes+res.ReplayedBytes != res.LogBytes {
		t.Fatalf("byte accounting off: resume %d + replayed %d != log %d",
			res.ResumeBytes, res.ReplayedBytes, res.LogBytes)
	}
	if res.SnapshotBytes <= 0 || res.FromZeroSecs <= 0 || res.FromCkptSecs <= 0 {
		t.Fatalf("degenerate timings/sizes: %+v", res)
	}
	// Incremental arm: the steady-state delta covers only the tail's
	// changes, so it must come in well under the full snapshot — the same
	// 5x margin CI gates the full-size run on.
	if res.DeltaBytes <= 0 || res.DeltaWriteSecs <= 0 || res.FullWriteSecs <= 0 {
		t.Fatalf("incremental arm not measured: %+v", res)
	}
	if res.DeltaBytes*5 > res.SnapshotBytes {
		t.Fatalf("delta generation is %d bytes against a %d-byte full; want <= 1/5",
			res.DeltaBytes, res.SnapshotBytes)
	}
	var buf bytes.Buffer
	PrintRecover(&buf, res)
	if buf.Len() == 0 {
		t.Fatal("PrintRecover wrote nothing")
	}
}
