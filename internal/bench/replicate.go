package bench

import (
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"time"

	"passv2/internal/netfault"
	"passv2/internal/passd"
	"passv2/internal/pnode"
	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/replica"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// ReplicateResult reports tail latency of cluster reads over a replicated
// passd group with one artificially slow follower: the same query stream
// measured without hedging (the straggler defines p95/p99 whenever the
// rotation lands on it) and with hedging (a second request fires after
// HedgeDelay and the fast replica's answer wins). The p99 ratio is the
// paper-adjacent claim ("The Tail at Scale"-style redundancy): one slow
// machine stops defining the distribution's tail.
type ReplicateResult struct {
	Records   int `json:"records"`   // records replicated before measuring
	Queries   int `json:"queries"`   // queries per measured arm
	Followers int `json:"followers"` // follower count (one of them slow)
	Quorum    int `json:"quorum"`    // write quorum, counting the primary

	SlowDelayMS  float64 `json:"slow_delay_ms"`  // injected per-response delay
	HedgeDelayMS float64 `json:"hedge_delay_ms"` // hedge trigger

	UnhedgedP50MS float64 `json:"unhedged_p50_ms"`
	UnhedgedP95MS float64 `json:"unhedged_p95_ms"`
	UnhedgedP99MS float64 `json:"unhedged_p99_ms"`
	HedgedP50MS   float64 `json:"hedged_p50_ms"`
	HedgedP95MS   float64 `json:"hedged_p95_ms"`
	HedgedP99MS   float64 `json:"hedged_p99_ms"`

	HedgesFired int64 `json:"hedges_fired"`
	HedgesWon   int64 `json:"hedges_won"`
	// P99Improvement is unhedged p99 / hedged p99 — >1 means hedging cut
	// the tail.
	P99Improvement float64 `json:"p99_improvement"`
}

// replBenchNode is one follower daemon plus its fault injector.
type replBenchNode struct {
	srv *passd.Server
	flt *netfault.Faults
}

func newReplBenchFollower(dir string) (*replBenchNode, error) {
	dfs, err := vfs.NewDirFS(dir)
	if err != nil {
		return nil, err
	}
	log, err := provlog.NewWriter(dfs, "/", 0)
	if err != nil {
		return nil, err
	}
	w := waldo.New()
	w.Attach(waldo.NewLogVolume("bench", dfs, log))
	flog, err := replica.OpenFollowerLog(dfs, "/"+provlog.CurrentName)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	flt := netfault.New()
	srv, err := passd.Serve(w, passd.Config{Follower: flog, Listener: flt.Listener(ln)})
	if err != nil {
		return nil, err
	}
	return &replBenchNode{srv: srv, flt: flt}, nil
}

// Replicate measures hedged vs unhedged cluster reads against a real
// replicated group: a primary (quorum 2) over an on-disk log, two
// followers fed by the replication stream, and a netfault write delay of
// slowDelay planted on one follower so every response it sends — to
// clients and primary alike — straggles.
func Replicate(records, queries int, slowDelay, hedgeDelay time.Duration) (ReplicateResult, error) {
	res := ReplicateResult{
		Records: records, Queries: queries, Followers: 2, Quorum: 2,
		SlowDelayMS:  float64(slowDelay.Microseconds()) / 1e3,
		HedgeDelayMS: float64(hedgeDelay.Microseconds()) / 1e3,
	}

	root, err := os.MkdirTemp("", "passd-replicate-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(root)

	// Primary: the -replicate wiring from cmd/passd, in-process.
	pdir := root + "/primary"
	if err := os.Mkdir(pdir, 0o755); err != nil {
		return res, err
	}
	dfs, err := vfs.NewDirFS(pdir)
	if err != nil {
		return res, err
	}
	log, err := provlog.NewWriter(dfs, "/", 0)
	if err != nil {
		return res, err
	}
	w := waldo.New()
	w.Attach(waldo.NewLogVolume("bench", dfs, log))
	src, err := replica.OpenFileSource(dfs, "/"+provlog.CurrentName)
	if err != nil {
		return res, err
	}
	prim := replica.NewPrimary(src, replica.Config{
		Quorum:        2,
		CommitTimeout: 10 * time.Second,
		Dial: passd.PeerDialer(passd.Options{
			DialTimeout:    2 * time.Second,
			RequestTimeout: 10 * time.Second,
		}),
	})
	defer prim.Close()
	srv, err := passd.Serve(w, passd.Config{
		Append: func(recs []record.Record) error {
			for _, r := range recs {
				if err := log.AppendRecord(0, r); err != nil {
					return err
				}
			}
			return nil
		},
		Sync:      log.Sync,
		Replicate: prim,
	})
	if err != nil {
		return res, err
	}
	defer srv.Close()

	followers := make([]*replBenchNode, 2)
	for i := range followers {
		fdir := fmt.Sprintf("%s/follower%d", root, i)
		if err := os.Mkdir(fdir, 0o755); err != nil {
			return res, err
		}
		if followers[i], err = newReplBenchFollower(fdir); err != nil {
			return res, err
		}
		defer followers[i].srv.Close()
		if err := passd.Announce(srv.Addr(), followers[i].srv.Addr(), 5*time.Second); err != nil {
			return res, err
		}
	}

	// Load: quorum-acked appends, then wait until both followers serve the
	// last record so the measured arms read a settled group.
	c, err := passd.Dial(srv.Addr())
	if err != nil {
		return res, err
	}
	defer c.Close()
	const chunk = 500
	for lo := 0; lo < records; lo += chunk {
		n := chunk
		if lo+n > records {
			n = records - lo
		}
		recs := make([]record.Record, 0, 2*n)
		for i := lo; i < lo+n; i++ {
			ref := pnode.Ref{PNode: pnode.PNode(i + 1), Version: 1}
			recs = append(recs,
				record.New(ref, record.AttrName, record.StringVal(fmt.Sprintf("/bench/%d", i))),
				record.New(ref, record.AttrType, record.StringVal(record.TypeFile)))
		}
		if _, err := c.Append(recs); err != nil {
			return res, err
		}
	}
	if _, err := c.Drain(); err != nil {
		return res, err
	}
	q := fmt.Sprintf(`select F from Provenance.file as F where F.name = "/bench/%d"`, records-1)
	for _, f := range followers {
		if err := waitReplRows(f.srv.Addr(), q); err != nil {
			return res, err
		}
	}

	// One follower straggles: every response it writes is delayed.
	followers[0].flt.SetWriteDelay(slowDelay)
	addrs := []string{srv.Addr(), followers[0].srv.Addr(), followers[1].srv.Addr()}

	// Arm 1: failover only. The rotation lands a third of the queries on
	// the slow follower and each eats the full delay.
	unhedged, _, _, err := measureCluster(addrs, passd.ClusterOptions{NoHedge: true}, q, queries)
	if err != nil {
		return res, err
	}
	// Arm 2: identical stream, hedged. A fresh cluster so the latency
	// window and rotation start cold, same as arm 1.
	hedged, fired, won, err := measureCluster(addrs, passd.ClusterOptions{HedgeDelay: hedgeDelay}, q, queries)
	if err != nil {
		return res, err
	}

	res.UnhedgedP50MS, res.UnhedgedP95MS, res.UnhedgedP99MS = pctMS(unhedged, 50), pctMS(unhedged, 95), pctMS(unhedged, 99)
	res.HedgedP50MS, res.HedgedP95MS, res.HedgedP99MS = pctMS(hedged, 50), pctMS(hedged, 95), pctMS(hedged, 99)
	res.HedgesFired, res.HedgesWon = fired, won
	if res.HedgedP99MS > 0 {
		res.P99Improvement = res.UnhedgedP99MS / res.HedgedP99MS
	}
	return res, nil
}

// measureCluster runs n queries through a fresh cluster and returns the
// per-query latencies plus the hedge counters.
func measureCluster(addrs []string, opts passd.ClusterOptions, q string, n int) ([]time.Duration, int64, int64, error) {
	cl := passd.NewCluster(addrs, opts)
	defer cl.Close()
	lats := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := cl.Query(q); err != nil {
			return nil, 0, 0, err
		}
		lats = append(lats, time.Since(start))
	}
	fired, won := cl.Hedges()
	return lats, fired, won, nil
}

// waitReplRows polls addr until q returns a row (replication caught up).
func waitReplRows(addr, q string) error {
	c, err := passd.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		res, err := c.Query(q)
		if err == nil && len(res.Rows) > 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("follower %s never caught up (last: %v)", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// pctMS returns the p'th percentile of lats in milliseconds.
func pctMS(lats []time.Duration, p int) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Microseconds()) / 1e3
}

// PrintReplicate renders a ReplicateResult.
func PrintReplicate(w io.Writer, r ReplicateResult) {
	fmt.Fprintf(w, "replicated reads: hedged vs unhedged with one slow follower\n")
	fmt.Fprintf(w, "  group:      primary + %d followers, write quorum %d, %d records replicated\n", r.Followers, r.Quorum, r.Records)
	fmt.Fprintf(w, "  straggler:  %.1fms injected on one follower; hedge trigger %.1fms; %d queries per arm\n",
		r.SlowDelayMS, r.HedgeDelayMS, r.Queries)
	fmt.Fprintf(w, "  unhedged:   p50 %7.2fms  p95 %7.2fms  p99 %7.2fms\n", r.UnhedgedP50MS, r.UnhedgedP95MS, r.UnhedgedP99MS)
	fmt.Fprintf(w, "  hedged:     p50 %7.2fms  p95 %7.2fms  p99 %7.2fms  (%d hedges fired, %d won)\n",
		r.HedgedP50MS, r.HedgedP95MS, r.HedgedP99MS, r.HedgesFired, r.HedgesWon)
	fmt.Fprintf(w, "  p99 gain:   %7.1fx\n", r.P99Improvement)
}
