package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"passv2/internal/graph"
	"passv2/internal/lasagna"
	"passv2/internal/passd"
	"passv2/internal/pnode"
	"passv2/internal/pql"
	"passv2/internal/record"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// serveDrainInterval is the passd phase's background ingestion cadence:
// how often the Waldo daemon drains the volume log while queries run. It is
// the serving layer's freshness/throughput knob: snapshots (and the caches
// their immutability makes sound) live at most this long, so query results
// lag ingestion by at most one interval plus drain time.
const serveDrainInterval = 500 * time.Millisecond

// serveQueryMix is how many distinct query texts the benchmark clients
// rotate through — enough that the serving layer cannot win on result
// caching alone (every generation recomputes the whole mix), few enough
// that their overlapping closures exercise the shared traversal memo.
const serveQueryMix = 16

// ServeBenchResult reports the serving-layer comparison: aggregate query
// throughput of N concurrent passd clients over pinned snapshots (with the
// Waldo daemon draining in the background) versus the repository's pre-passd
// query path — serialized in-process Drain-then-evaluate, the
// pass.Machine.Query contract — under the same live log-append load.
type ServeBenchResult struct {
	Records int     // records in the database before the run
	Query   string  // the measured query
	Clients int     // concurrent passd clients
	Secs    float64 // measured duration of each phase

	BaselineQueries int64   // queries completed in the baseline phase
	BaselineQPS     float64 // serialized Drain-then-evaluate queries/sec
	BaselineIngests int64   // records appended to the log during the baseline phase
	ServeQueries    int64   // queries completed in the serving phase
	ServeQPS        float64 // aggregate passd queries/sec
	ServeIngests    int64   // records appended to the log during the serving phase
	Speedup         float64
	Shed            int64 // queries refused by backpressure (0 expected)
	CacheHits       int64 // serve-phase queries answered from a snapshot's result cache
	CacheMisses     int64 // serve-phase queries that executed (once per text per snapshot)
}

// logAppender simulates live provenance arrival: records written to the
// volume's Lasagna log back-to-back (names disjoint from the query
// workload, so results stay stable) until stopped. Returns a stop func
// reporting how many records were appended.
func logAppender(vol *lasagna.FS, tag string) (stop func() (int64, error)) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	var n int64
	var failed error
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := uint64(1 << 40)
		for {
			select {
			case <-done:
				return
			default:
			}
			for i := 0; i < 64; i++ {
				ref := pnode.Ref{PNode: pnode.PNode(next), Version: 1}
				next++
				err := vol.AppendProvenance([]record.Record{
					record.New(ref, record.AttrName, record.StringVal(fmt.Sprintf("/%s/%d", tag, next))),
					record.New(ref, record.AttrType, record.StringVal(record.TypeFile)),
				})
				if err != nil {
					failed = err
					return
				}
				n += 2
			}
			// Rate-limit: ingestion is a fixed offered load (the same in
			// both phases), not a CPU-saturating antagonist.
			time.Sleep(10 * time.Millisecond)
		}
	}()
	return func() (int64, error) {
		close(done)
		wg.Wait()
		return n, failed
	}
}

// ServeDataset builds the serving benchmark's database: one deep ancestry
// chain of `files` files (NAME + TYPE + INPUT-to-predecessor records), so
// ancestry queries near the tip share almost their entire closure — the
// shape that rewards a traversal cache and punishes re-walking. It returns
// the database and the serveQueryMix distinct count-ancestors queries the
// clients rotate through (count projections keep responses one row, so the
// wire cost does not scale with the closure).
func ServeDataset(files int) (*waldo.DB, []string) {
	if files < serveQueryMix+2 {
		files = serveQueryMix + 2
	}
	db := waldo.NewDB()
	batch := make([]record.Record, 0, 3*1024)
	flush := func() {
		db.ApplyBatch(batch)
		batch = batch[:0]
	}
	for i := 1; i <= files; i++ {
		ref := pnode.Ref{PNode: pnode.PNode(i), Version: 1}
		batch = append(batch,
			record.New(ref, record.AttrName, record.StringVal(fmt.Sprintf("/q/c%d", i))),
			record.New(ref, record.AttrType, record.StringVal(record.TypeFile)))
		if i > 1 {
			batch = append(batch, record.Input(ref, pnode.Ref{PNode: pnode.PNode(i - 1), Version: 1}))
		}
		if len(batch) >= 3*1024 {
			flush()
		}
	}
	flush()
	queries := make([]string, serveQueryMix)
	for i := range queries {
		queries[i] = fmt.Sprintf(
			`select count(A) from Provenance.file as F F.input* as A where F.name = "/q/c%d"`,
			files-i)
	}
	return db, queries
}

// Serve measures what the passd serving layer buys. Phase one is the only
// query path the repo had before passd: each query synchronously drains the
// volume log into the database and then evaluates in-process over the live
// store with a fresh per-query memo — queries serialize against the ingest
// path, exactly as pass.Machine.Query does, and nothing may be reused
// across queries because the database changes between them. Phase two
// serves queries through a passd server from `clients` concurrent
// connections: the Waldo daemon drains in the background and every query
// runs over a pinned snapshot whose immutability lets the server share
// plans, the traversal memo and finished results until the next drain.
// Both phases run the same query mix for secs seconds under the same
// log-append load, and remote results are verified identical to quiesced
// local evaluations before any number is reported.
func Serve(records, clients int, secs float64) (ServeBenchResult, error) {
	res := ServeBenchResult{Clients: clients, Secs: secs}
	phase := time.Duration(secs * float64(time.Second))

	// The queried chain database, applied directly (it stands for history
	// already ingested); the volume log supplies the live load.
	db, queries := ServeDataset(records / 3)
	res.Query = queries[0] + fmt.Sprintf(" (1 of %d rotating targets)", len(queries))
	recs, _, _ := db.Stats()
	res.Records = int(recs)

	lower := vfs.NewMemFS("servelower", nil)
	vol, err := lasagna.New("servevol", lasagna.Config{
		Lower: lower, VolumeID: 1, MaxLogSize: 1 << 20, LogBuffer: 1 << 16,
	})
	if err != nil {
		return res, err
	}
	w := waldo.New()
	w.DB = db
	w.Attach(vol)

	plans := make([]*pql.Plan, len(queries))
	expected := make([]string, len(queries))
	for i, src := range queries {
		q, err := pql.Parse(src)
		if err != nil {
			return res, err
		}
		plans[i] = pql.PlanQuery(q)
		exp, err := plans[i].Execute(graph.New(db))
		if err != nil {
			return res, err
		}
		expected[i] = exp.Format()
	}

	// Phase one: serialized Drain-then-evaluate against the live store,
	// the log filling concurrently. (Plans are even pre-built here — a
	// generosity the pre-passd path did not actually extend.)
	stop := logAppender(vol, "base")
	start := time.Now()
	deadline := start.Add(phase)
	for time.Now().Before(deadline) {
		if err := w.Drain(); err != nil {
			stop()
			return res, err
		}
		plan := plans[int(res.BaselineQueries)%len(plans)]
		if _, err := plan.Execute(graph.New(w.DB)); err != nil {
			stop()
			return res, err
		}
		res.BaselineQueries++
	}
	baseElapsed := time.Since(start)
	if res.BaselineIngests, err = stop(); err != nil {
		return res, err
	}
	res.BaselineQPS = float64(res.BaselineQueries) / baseElapsed.Seconds()

	// Phase two: the same aggregate query count through passd, fanned out
	// over concurrent connections, each query on a pinned snapshot, the
	// daemon draining the (still-filling) log in the background.
	srv, err := passd.Serve(w, passd.Config{
		Workers:  clients,
		MaxQueue: 4 * clients,
	})
	if err != nil {
		return res, err
	}
	defer srv.Close()

	conns := make([]*passd.Client, clients)
	for i := range conns {
		c, err := passd.Dial(srv.Addr())
		if err != nil {
			return res, err
		}
		defer c.Close()
		conns[i] = c
	}
	// Correctness gate before timing: every remote answer must match its
	// quiesced local evaluation.
	for i, src := range queries {
		got, err := conns[0].Query(src)
		if err != nil {
			return res, err
		}
		if got.Format() != expected[i] {
			return res, fmt.Errorf("bench: remote and local results differ for %q", src)
		}
	}

	w.Start(serveDrainInterval)
	stop = logAppender(vol, "serve")
	var (
		wg    sync.WaitGroup
		errs  = make([]error, clients)
		total int64
	)
	counts := make([]int64, clients)
	start = time.Now()
	deadline = start.Add(phase)
	for i, c := range conns {
		i, c := i, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each client rotates through the whole mix, offset by its
			// index so the 16 texts stay uniformly in flight.
			for j := i; time.Now().Before(deadline); j++ {
				if _, err := c.Query(queries[j%len(queries)]); err != nil {
					errs[i] = err
					return
				}
				counts[i]++
			}
		}()
	}
	wg.Wait()
	serveElapsed := time.Since(start)
	if res.ServeIngests, err = stop(); err != nil {
		return res, err
	}
	if err := w.Stop(); err != nil {
		return res, err
	}
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	for _, n := range counts {
		total += n
	}
	res.ServeQueries = total
	st, err := conns[0].Stats()
	if err != nil {
		return res, err
	}
	res.Shed = st.Shed
	res.CacheHits = st.CacheHits
	res.CacheMisses = st.CacheMisses
	res.ServeQPS = float64(total) / serveElapsed.Seconds()
	if res.BaselineQPS > 0 {
		res.Speedup = res.ServeQPS / res.BaselineQPS
	}
	return res, nil
}

// PrintServe renders a ServeBenchResult.
func PrintServe(w io.Writer, r ServeBenchResult) {
	fmt.Fprintf(w, "passd serving layer (concurrent snapshot queries vs serialized drain-and-query)\n")
	fmt.Fprintf(w, "  database:  %d records, plus a continuously-filling volume log in both phases\n", r.Records)
	fmt.Fprintf(w, "  query:     %s\n", r.Query)
	fmt.Fprintf(w, "  baseline:  %10.1f queries/sec  (serialized in-process drain+eval; %d records arrived)\n",
		r.BaselineQPS, r.BaselineIngests)
	fmt.Fprintf(w, "  passd:     %10.1f queries/sec  (%d clients over snapshots, daemon draining; %d records arrived, %d shed)\n",
		r.ServeQPS, r.Clients, r.ServeIngests, r.Shed)
	fmt.Fprintf(w, "             %d executed / %d served from snapshot result caches (snapshots refresh per drain)\n",
		r.CacheMisses, r.CacheHits)
	fmt.Fprintf(w, "  speedup:   %10.1fx aggregate throughput\n", r.Speedup)
}
