package bench

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"passv2/internal/graph"
	"passv2/internal/passd"
	"passv2/internal/pnode"
	"passv2/internal/pql"
	"passv2/internal/record"
	"passv2/internal/waldo"
)

// swarmQueryMix is how many distinct query texts swarm sessions rotate
// through — the same anti-caching rationale as serveQueryMix.
const swarmQueryMix = 8

// swarmBatch is how many provenance records one disclosure carries: the
// bundle size a busy provenance-aware application accumulates between
// flushes, big enough that encoding cost (the thing protocol v3 attacks)
// dominates the round-trip.
const swarmBatch = 256

// SwarmArm is one protocol's side of the swarm comparison.
type SwarmArm struct {
	Version int     `json:"version"`  // protocol the clients negotiated
	Ops     int64   `json:"ops"`      // total operations completed
	Queries int64   `json:"queries"`  // queries among them
	QPS     float64 `json:"qps"`      // queries/sec
	Records int64   `json:"records"`  // provenance records disclosed
	RecPS   float64 `json:"rec_ps"`   // records/sec
	Shed    int64   `json:"shed"`     // requests refused by backpressure
	V3Conns int64   `json:"v3_conns"` // connections the server saw as v3 (sanity check)
}

// SwarmResult reports the swarm load benchmark: the same session swarm —
// mixed DPAPI disclosure and ancestry queries — driven through one passd
// daemon over the line-oriented v2 protocol and over v3's multiplexed
// binary frames, with the same number of TCP connections in both arms so
// the only variable is what the protocol lets each connection carry.
type SwarmResult struct {
	Sessions int     `json:"sessions"` // concurrent client sessions per arm
	Conns    int     `json:"conns"`    // TCP connections the sessions share
	Batch    int     `json:"batch"`    // records per disclosure
	Secs     float64 `json:"secs"`     // measured duration per arm
	Dataset  int     `json:"dataset"`  // records in the queried chain before the run

	V2 SwarmArm `json:"v2"`
	V3 SwarmArm `json:"v3"`

	QPSMultiplier   float64 `json:"qps_multiplier"`   // V3.QPS / V2.QPS
	RecPSMultiplier float64 `json:"recps_multiplier"` // V3.RecPS / V2.RecPS

	// Tenant carries the noisy-tenant isolation arms (tenant.go) when the
	// run asked for them; nil otherwise.
	Tenant *TenantIsolation `json:"tenant_isolation,omitempty"`
}

// swarmSessionRecords builds the reusable disclosure batch for one
// session: swarmBatch records under session-private pnodes, disjoint from
// the queried dataset and from every other session, so arms never contend
// on object identity and query results stay stable.
func swarmSessionRecords(session int) []record.Record {
	base := uint64(1<<41) + uint64(session)<<16
	recs := make([]record.Record, 0, swarmBatch)
	for i := 0; i < swarmBatch; i += 2 {
		ref := pnode.Ref{PNode: pnode.PNode(base + uint64(i)), Version: 1}
		recs = append(recs,
			record.New(ref, record.AttrName, record.StringVal(fmt.Sprintf("/swarm/%d/%d", session, i))),
			record.New(ref, record.AttrType, record.StringVal(record.TypeFile)))
	}
	return recs
}

// swarmArm runs one protocol arm: a fresh daemon over a fresh copy of the
// dataset (arms must not inherit each other's appended records), conns
// clients pinned to maxVersion, and sessions goroutines dealing their
// operations — three disclosures, then a query — across those clients
// round-robin until the deadline.
func swarmArm(maxVersion int, sessions, conns int, secs float64, queries []string, expected []string) (SwarmArm, error) {
	arm := SwarmArm{}

	db, _ := swarmDataset()
	w := waldo.New()
	w.DB = db
	// Disclosures land in an accounting sink, not the database: profiled
	// with real ApplyBatch, both arms bottleneck on index maintenance
	// (~55% of one core) and the protocols measure as storage. The swarm
	// benchmark's question is what the serving edge — read, decode,
	// dispatch, encode, write — can carry, so the storage back-end is the
	// one thing taken off the scale. Queries still read the real
	// database, and the ingest benchmark prices ApplyBatch itself.
	var sunk atomic.Int64
	srv, err := passd.Serve(w, passd.Config{
		Append: func(recs []record.Record) error { sunk.Add(int64(len(recs))); return nil },
	})
	if err != nil {
		return arm, err
	}
	defer srv.Close()

	clients := make([]*passd.Client, conns)
	for i := range clients {
		c, err := passd.DialOptions(srv.Addr(), passd.Options{MaxVersion: maxVersion})
		if err != nil {
			return arm, err
		}
		defer c.Close()
		clients[i] = c
	}
	v, _, err := clients[0].Hello()
	if err != nil {
		return arm, err
	}
	arm.Version = v

	// Equivalence before timing: the arm's transport must return results
	// byte-identical to quiesced local evaluation.
	for i, q := range queries {
		res, err := clients[0].Query(q)
		if err != nil {
			return arm, err
		}
		if res.Format() != expected[i] {
			return arm, fmt.Errorf("v%d remote result for %q differs from local evaluation", v, q)
		}
	}

	var ops, qs, recs atomic.Int64
	var firstErr atomic.Value
	deadline := time.Now().Add(time.Duration(secs * float64(time.Second)))
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c := clients[s%conns]
			batch := swarmSessionRecords(s)
			for i := 0; time.Now().Before(deadline); i++ {
				var err error
				if i%4 == 3 {
					if _, err = c.Query(queries[(s+i)%len(queries)]); err == nil {
						qs.Add(1)
					}
				} else {
					if err = c.AppendProvenance(batch); err == nil {
						recs.Add(int64(len(batch)))
					}
				}
				if err != nil {
					// Backpressure is the daemon doing its job under a
					// thousand sessions; a refused request is backed off
					// and not counted. Anything else fails the arm.
					if !errors.Is(err, passd.ErrOverloaded) {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					time.Sleep(time.Millisecond)
					continue
				}
				ops.Add(1)
			}
		}(s)
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return arm, err
	}

	st, err := clients[0].Stats()
	if err != nil {
		return arm, err
	}
	if sunk.Load() < recs.Load() {
		return arm, fmt.Errorf("v%d arm: clients counted %d disclosed records but the daemon accepted %d",
			arm.Version, recs.Load(), sunk.Load())
	}
	arm.Ops = ops.Load()
	arm.Queries = qs.Load()
	arm.QPS = float64(arm.Queries) / secs
	arm.Records = recs.Load()
	arm.RecPS = float64(arm.Records) / secs
	arm.Shed = st.Shed
	arm.V3Conns = st.V3Conns
	return arm, nil
}

// swarmDataset builds the queried chain and the sessions' query mix:
// name-seek point queries, deliberately cheap to evaluate (an index seek,
// one row back), so both arms are bound by what the wire and codec cost —
// the thing under test — rather than by query evaluation CPU. The serve
// benchmark already measures evaluation-bound load.
func swarmDataset() (*waldo.DB, []string) {
	db, _ := ServeDataset(4096)
	queries := make([]string, swarmQueryMix)
	for i := range queries {
		queries[i] = fmt.Sprintf(`select F from Provenance.file as F where F.name = "/q/c%d"`, 4096-i)
	}
	return db, queries
}

// Swarm measures what protocol v3 buys under a session swarm: `sessions`
// concurrent sessions of mixed DPAPI disclosure (swarmBatch-record
// bundles) and ancestry queries share `conns` TCP connections to one
// daemon. Pinned to v2, each connection is a serialized line protocol —
// one request in flight, everything JSON — so sessions queue behind each
// other's round-trips. On v3 the same connections multiplex every
// session's requests as binary frames. Both arms run against fresh,
// identical daemons for `secs` seconds, after remote results are verified
// against local evaluation.
// A positive tenantSecs additionally runs the noisy-tenant isolation arms
// (tenant.go) for that long each.
func Swarm(sessions, conns int, secs, tenantSecs float64) (SwarmResult, error) {
	res := SwarmResult{Sessions: sessions, Conns: conns, Batch: swarmBatch, Secs: secs}

	db, queries := swarmDataset()
	n, _, _ := db.Stats()
	res.Dataset = int(n)
	g := graph.New(db)
	expected := make([]string, len(queries))
	for i, src := range queries {
		q, err := pql.Parse(src)
		if err != nil {
			return res, err
		}
		out, err := pql.PlanQuery(q).Execute(g)
		if err != nil {
			return res, err
		}
		expected[i] = out.Format()
	}

	v2, err := swarmArm(2, sessions, conns, secs, queries, expected)
	if err != nil {
		return res, fmt.Errorf("v2 arm: %w", err)
	}
	res.V2 = v2
	v3, err := swarmArm(passd.ProtocolVersion, sessions, conns, secs, queries, expected)
	if err != nil {
		return res, fmt.Errorf("v3 arm: %w", err)
	}
	res.V3 = v3

	if v2.Version != 2 || v3.Version < 3 {
		return res, fmt.Errorf("negotiation went sideways: arms got v%d and v%d", v2.Version, v3.Version)
	}
	if v3.V3Conns != int64(conns) {
		return res, fmt.Errorf("v3 arm: server saw %d v3 connections, want %d", v3.V3Conns, conns)
	}
	if v2.QPS > 0 {
		res.QPSMultiplier = v3.QPS / v2.QPS
	}
	if v2.RecPS > 0 {
		res.RecPSMultiplier = v3.RecPS / v2.RecPS
	}
	if tenantSecs > 0 {
		ti, err := tenantIsolation(tenantSecs, queries)
		if err != nil {
			return res, fmt.Errorf("tenant arms: %w", err)
		}
		res.Tenant = ti
	}
	return res, nil
}

// PrintSwarm renders the swarm comparison.
func PrintSwarm(w io.Writer, r SwarmResult) {
	fmt.Fprintf(w, "\nSwarm load: %d sessions over %d connections, %d-record disclosures, %.1fs per arm (dataset %d records)\n",
		r.Sessions, r.Conns, r.Batch, r.Secs, r.Dataset)
	row := func(name string, a SwarmArm) {
		fmt.Fprintf(w, "  %-22s %9.0f q/s %12.0f rec/s   (%d ops, shed %d)\n",
			fmt.Sprintf("%s (v%d):", name, a.Version), a.QPS, a.RecPS, a.Ops, a.Shed)
	}
	row("line protocol", r.V2)
	row("binary frames", r.V3)
	fmt.Fprintf(w, "  multiplier:            %9.2fx q/s %11.2fx rec/s\n", r.QPSMultiplier, r.RecPSMultiplier)
	if r.Tenant != nil {
		PrintTenantIsolation(w, r.Tenant)
	}
}
