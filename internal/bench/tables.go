package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"passv2/internal/kepler"
	"passv2/internal/links"
	"passv2/internal/pnode"
	"passv2/internal/provlog"
	"passv2/internal/pyprov"
	"passv2/internal/record"
	"passv2/internal/vfs"
	"passv2/internal/web"
	"passv2/pass"
)

// Table2Row is one elapsed-time comparison.
type Table2Row struct {
	Name          string
	Base, With    time.Duration
	OverheadPct   float64
	PaperOverhead float64
}

// Table2Local regenerates the PASSv2-vs-ext3 half of Table 2.
func Table2Local(scale float64) ([]Table2Row, error) {
	var rows []Table2Row
	for _, w := range Workloads {
		base, _, err := RunLocal(w, scale, false)
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", w.Name, err)
		}
		withProv, _, err := RunLocal(w, scale, true)
		if err != nil {
			return nil, fmt.Errorf("%s PASSv2: %w", w.Name, err)
		}
		rows = append(rows, Table2Row{
			Name: w.Name, Base: base, With: withProv,
			OverheadPct: Overhead(base, withProv), PaperOverhead: w.PaperLocal,
		})
	}
	return rows, nil
}

// Table2NFS regenerates the PA-NFS-vs-NFS half of Table 2.
func Table2NFS(scale float64) ([]Table2Row, error) {
	var rows []Table2Row
	for _, w := range Workloads {
		base, m, srv, err := RunNFS(w, scale, false)
		if err != nil {
			return nil, fmt.Errorf("%s NFS baseline: %w", w.Name, err)
		}
		m.Close()
		srv.Close()
		withProv, m2, srv2, err := RunNFS(w, scale, true)
		if err != nil {
			return nil, fmt.Errorf("%s PA-NFS: %w", w.Name, err)
		}
		m2.Close()
		srv2.Close()
		rows = append(rows, Table2Row{
			Name: w.Name, Base: base, With: withProv,
			OverheadPct: Overhead(base, withProv), PaperOverhead: w.PaperNFS,
		})
	}
	return rows, nil
}

// Table3Row is one space-overhead comparison.
type Table3Row struct {
	Name          string
	DataBytes     int64
	ProvBytes     int64
	ProvPlusIndex int64
	ProvPct       float64
	TotalPct      float64
	PaperProvPct  float64
	PaperTotalPct float64
}

// Table3 regenerates the space-overhead table: the data footprint comes
// from the baseline (ext3) run, the provenance and index bytes from the
// PASSv2 run's Waldo database.
func Table3(scale float64) ([]Table3Row, error) {
	var rows []Table3Row
	for _, w := range Workloads {
		_, base, err := RunLocal(w, scale, false)
		if err != nil {
			return nil, err
		}
		baseData, _, _, err := base.SpaceStats()
		if err != nil {
			return nil, err
		}
		_, m, err := RunLocal(w, scale, true)
		if err != nil {
			return nil, err
		}
		_, prov, total, err := m.SpaceStats()
		if err != nil {
			return nil, err
		}
		row := Table3Row{
			Name: w.Name, DataBytes: baseData, ProvBytes: prov, ProvPlusIndex: total,
			PaperProvPct: w.PaperProvPct, PaperTotalPct: w.PaperTotalPct,
		}
		if baseData > 0 {
			row.ProvPct = 100 * float64(prov) / float64(baseData)
			row.TotalPct = 100 * float64(total) / float64(baseData)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table1 regenerates the record-type inventory: it runs each
// provenance-aware application once and reports the distinct provenance
// record types it generated, as in the paper's Table 1.
func Table1() (map[string][]string, error) {
	out := make(map[string][]string)

	// PA-NFS: protocol record types (BEGINTXN/ENDTXN/FREEZE).
	{
		m := pass.NewMachine(pass.Config{Provenance: true})
		srv, err := pass.NewFileServer(7, m.Clock, vfs.DefaultCostModel())
		if err != nil {
			return nil, err
		}
		if err := m.MountNFS("/mnt", srv.Addr()); err != nil {
			return nil, err
		}
		p := m.Spawn("writer", nil, nil)
		fd, err := p.Open("/mnt/f", vfs.OCreate|vfs.ORdWr)
		if err != nil {
			return nil, err
		}
		p.Write(fd, []byte("x"))
		if _, err := p.PassFreezeFd(fd); err != nil {
			return nil, err
		}
		p.Write(fd, []byte("y"))
		// Large disclosed bundle forces a transaction.
		kfd, _ := p.FDGet(fd)
		big := &record.Bundle{}
		for i := 0; i < 3000; i++ {
			big.Add(record.New(kfd.PassFile().Ref(), record.Attr("PARAM"),
				record.StringVal(fmt.Sprintf("value-%06d-padding-padding-padding", i))))
		}
		if _, err := p.PassWriteFd(fd, []byte("z"), big); err != nil {
			return nil, err
		}
		types := map[string]bool{}
		provlog.ScanAll(srv.Volume.Lower(), "/.prov", func(e provlog.Entry) error {
			switch e.Type {
			case provlog.EntryBeginTxn:
				types["BEGINTXN"] = true
			case provlog.EntryEndTxn:
				types["ENDTXN"] = true
			case provlog.EntryRecord:
				if e.Rec.Attr == record.AttrFreeze {
					types["FREEZE"] = true
				}
			}
			return nil
		})
		out["PA-NFS"] = sortedKeys(types)
		m.Close()
		srv.Close()
	}

	// PA-Kepler: attrs on OPERATOR objects.
	{
		m := pass.NewMachine(pass.Config{Provenance: true})
		m.AddVolume("/data", 1)
		p := m.Spawn("kepler", nil, nil)
		p.MkdirAll("/data/in")
		p.MkdirAll("/data/out")
		fd, _ := p.Open("/data/in/t.csv", vfs.OCreate|vfs.ORdWr)
		p.Write(fd, []byte("1,2\n"))
		p.Close(fd)
		eng := kepler.NewEngine(p)
		eng.AddRecorder(kepler.NewPASSRecorder(p, "/data"))
		wf := kepler.NewWorkflow("t")
		wf.Add(kepler.FileSource("src", "/data/in/t.csv"))
		wf.Add(kepler.Stage("parse", []string{"in"}, "", 1))
		wf.Add(kepler.FileSink("sink", "/data/out/t.out"))
		wf.Connect("src", "out", "parse", "in")
		wf.Connect("parse", "out", "sink", "in")
		if err := eng.Run(wf); err != nil {
			return nil, err
		}
		attrs, err := attrsOfType(m, record.TypeOperator)
		if err != nil {
			return nil, err
		}
		out["PA-Kepler"] = attrs
	}

	// PA-links: attrs on the session and link attrs on the download.
	{
		m := pass.NewMachine(pass.Config{Provenance: true})
		m.AddVolume("/home", 1)
		www := web.New()
		www.AddPage("http://site.example/", "home", "http://site.example/dl")
		www.AddDownload("http://site.example/dl", []byte("blob"))
		p := m.Spawn("links", nil, nil)
		b := links.New(p, www)
		b.NewSession("/home")
		b.Visit("http://site.example/")
		fileRef, err := b.Download("http://site.example/dl", "/home/dl.bin")
		if err != nil {
			return nil, err
		}
		sessAttrs, err := attrsOfType(m, record.TypeSession)
		if err != nil {
			return nil, err
		}
		if err := m.Drain(); err != nil {
			return nil, err
		}
		types := map[string]bool{}
		for _, a := range sessAttrs {
			types[a] = true
		}
		for _, r := range m.Waldo.DB.Attrs(fileRef) {
			switch r.Attr {
			case record.AttrFileURL, record.AttrCurrentURL, record.AttrInput:
				types[string(r.Attr)] = true
			}
		}
		out["PA-links"] = sortedKeys(types)
	}

	// PA-Python: attrs on FUNCTION and INVOCATION objects.
	{
		m := pass.NewMachine(pass.Config{Provenance: true})
		m.AddVolume("/lab", 1)
		p := m.Spawn("python", nil, nil)
		rt := pyprov.New(p, "/lab")
		if err := pyprov.GenerateLogs(rt, "/lab/xml", 4); err != nil {
			return nil, err
		}
		if _, err := pyprov.AnalyzeCrackHeating(rt, "/lab/xml", "/lab/plot.dat", "high", false); err != nil {
			return nil, err
		}
		fnAttrs, err := attrsOfType(m, record.TypeFunction)
		if err != nil {
			return nil, err
		}
		invAttrs, err := attrsOfType(m, record.TypeInvoke)
		if err != nil {
			return nil, err
		}
		types := map[string]bool{}
		for _, a := range append(fnAttrs, invAttrs...) {
			types[a] = true
		}
		out["PA-Python"] = sortedKeys(types)
	}
	return out, nil
}

// attrsOfType drains m and lists the distinct record attributes present on
// objects of the given TYPE.
func attrsOfType(m *pass.Machine, typ string) ([]string, error) {
	if err := m.Drain(); err != nil {
		return nil, err
	}
	db := m.Waldo.DB
	set := map[string]bool{}
	for _, pn := range db.ByType(typ) {
		for _, v := range db.Versions(pn) {
			for _, r := range db.Attrs(pnode.Ref{PNode: pn, Version: v}) {
				set[string(r.Attr)] = true
			}
		}
	}
	return sortedKeys(set), nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// --- printing ---

// PrintTable2 writes Table 2 rows in the paper's layout.
func PrintTable2(w io.Writer, title string, rows []Table2Row) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-20s %12s %12s %10s %10s\n", "Benchmark", "Base", "Prov", "Overhead", "Paper")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %12s %12s %10s %10s\n",
			r.Name, r.Base.Round(time.Millisecond), r.With.Round(time.Millisecond),
			Pct(r.OverheadPct), Pct(r.PaperOverhead))
	}
}

// PrintTable3 writes Table 3 rows in the paper's layout.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: Space overheads")
	fmt.Fprintf(w, "%-20s %12s %18s %24s %10s %10s\n",
		"Benchmark", "Ext3 (B)", "Provenance (B/%)", "Prov+Indexes (B/%)", "Paper-P", "Paper-T")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %12d %11d (%4.1f%%) %16d (%4.1f%%) %10s %10s\n",
			r.Name, r.DataBytes, r.ProvBytes, r.ProvPct, r.ProvPlusIndex, r.TotalPct,
			Pct(r.PaperProvPct), Pct(r.PaperTotalPct))
	}
}

// PrintTable1 writes the record-type inventory.
func PrintTable1(w io.Writer, t map[string][]string) {
	fmt.Fprintln(w, "Table 1: Provenance records collected by each provenance-aware application")
	for _, app := range []string{"PA-NFS", "PA-Kepler", "PA-links", "PA-Python"} {
		fmt.Fprintf(w, "%-12s", app)
		for i, typ := range t[app] {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprint(w, typ)
		}
		fmt.Fprintln(w)
	}
}
