package bench

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"passv2/internal/metrics"
	"passv2/internal/passd"
	"passv2/internal/record"
	"passv2/internal/waldo"
)

// The noisy-tenant isolation benchmark: a "victim" tenant running cheap
// point queries shares one small daemon (4 workers, short queue) with a
// "noisy" tenant offering 10x the victim's session count in heavy
// disclosure traffic. Three arms answer the isolation question:
//
//   - baseline: the victim alone (quotas configured but nobody to limit)
//     pins what its latency looks like on an idle daemon;
//   - quotas off: victim + noisy with no TenantQuotas — the noisy
//     tenant's load sheds the shared worker queue and the victim's p99
//     inflates by its client's retry backoff;
//   - quotas on: the same pair, with the noisy tenant capped. Its
//     requests are refused at admission with the "quota" code before
//     they can occupy workers, and the victim's p99 stays within a small
//     factor of baseline.
//
// The quotas-on arm also cross-checks the admin surface while the swarm
// runs: a mid-run /metrics scrape must parse and carry the required
// families, and a post-quiesce scrape must agree with the STATS verb
// counter for counter.

// Tenant-arm shape: the victim offers a tenth of the noisy tenant's
// sessions, on a deliberately small daemon so the noisy tenant can
// actually crowd the victim out when nothing stops it.
const (
	tenantVictimSessions = 4
	tenantVictimConns    = 2
	tenantNoisySessions  = 40
	tenantNoisyConns     = 8
	tenantWorkers        = 4
	tenantMaxQueue       = 8

	// victimP99FloorMs keeps degradation ratios meaningful: cached point
	// queries answer in ~100µs, where a single GC pause would swamp the
	// ratio. Both arms divide by max(baseline p99, this floor).
	victimP99FloorMs = 1.0
)

// tenantNoisyQuota is the quotas-on arm's cap for the noisy tenant: two
// requests in flight (of a 4-worker daemon) and a disclosure budget far
// under its offered load.
func tenantNoisyQuota() map[string]passd.TenantQuota {
	return map[string]passd.TenantQuota{
		"noisy": {MaxInFlight: 2, StagedBytesPerSec: 256 << 10},
	}
}

// TenantArm is one arm of the noisy-tenant comparison.
type TenantArm struct {
	VictimOps    int64   `json:"victim_ops"`    // victim queries completed
	VictimErrors int64   `json:"victim_errors"` // victim requests that exhausted retries
	VictimP50Ms  float64 `json:"victim_p50_ms"` // victim per-op wall time, incl. retry backoff
	VictimP99Ms  float64 `json:"victim_p99_ms"`
	NoisyOps     int64   `json:"noisy_ops"`     // noisy requests that succeeded
	NoisyRefused int64   `json:"noisy_refused"` // server-side quota refusals for "noisy"
	Shed         int64   `json:"shed"`          // server-side overload shed (all lanes)
}

// TenantIsolation reports the three-arm noisy-tenant benchmark. The
// degradation ratios are victim p99 over baseline p99 (floored at
// victimP99FloorMs); `isolated` is the claim CI gates on.
type TenantIsolation struct {
	Secs           float64 `json:"secs"`
	VictimSessions int     `json:"victim_sessions"`
	VictimConns    int     `json:"victim_conns"`
	NoisySessions  int     `json:"noisy_sessions"`
	NoisyConns     int     `json:"noisy_conns"`

	Baseline  TenantArm `json:"baseline"`
	QuotasOn  TenantArm `json:"quotas_on"`
	QuotasOff TenantArm `json:"quotas_off"`

	DegradationOn     float64 `json:"degradation_on"`
	DegradationOff    float64 `json:"degradation_off"`
	NoisyRefusedOn    int64   `json:"noisy_refused_on"`
	MetricsConsistent bool    `json:"metrics_consistent"`
	Isolated          bool    `json:"isolated"`
}

// tolerableTenantErr classifies the refusals a loaded daemon hands out on
// purpose: overload, quota, and retries exhausted on either. Anything
// else fails the arm.
func tolerableTenantErr(err error) bool {
	return errors.Is(err, passd.ErrOverloaded) ||
		errors.Is(err, passd.ErrQuotaExceeded) ||
		errors.Is(err, passd.ErrExhausted)
}

// requiredMetricFamilies is what a /metrics scrape must always carry —
// the admin-endpoint smoke contract, checked mid-run under load.
var requiredMetricFamilies = []string{
	"passd_requests_total",
	"passd_request_seconds",
	"passd_inflight",
	"passd_shed_total",
	"passd_queries_total",
	"passd_tenant_requests_total",
	"passd_uptime_seconds",
}

// scrapeMetrics fetches and parses one /metrics payload.
func scrapeMetrics(adminAddr string) (map[string]float64, error) {
	resp, err := http.Get("http://" + adminAddr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics returned %s", resp.Status)
	}
	return metrics.ParseText(resp.Body)
}

// checkRequiredFamilies verifies every required family has at least one
// sample in a parsed scrape (histograms appear via their _count suffix).
func checkRequiredFamilies(parsed map[string]float64) error {
	for _, fam := range requiredMetricFamilies {
		found := false
		for _, suffix := range []string{"", "_count"} {
			name := fam + suffix
			if _, ok := parsed[name]; ok {
				found = true
				break
			}
			for k := range parsed {
				if len(k) > len(name) && k[:len(name)+1] == name+"{" {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			return fmt.Errorf("scrape is missing metric family %s", fam)
		}
	}
	return nil
}

// statsAgreeWithScrape pins the metrics/STATS consistency property on a
// quiesced daemon: every counter both surfaces carry must be equal,
// because they read the same atomics.
func statsAgreeWithScrape(parsed map[string]float64, st *passd.Stats) error {
	want := map[string]float64{
		"passd_queries_total":        float64(st.Queries),
		"passd_query_errors_total":   float64(st.QueryErrors),
		"passd_staged_records_total": float64(st.Appends),
		"passd_cache_hits_total":     float64(st.CacheHits),
		"passd_cache_misses_total":   float64(st.CacheMisses),
	}
	for verb, n := range st.Verbs {
		want[fmt.Sprintf("passd_requests_total{verb=%q}", verb)] = float64(n)
	}
	for tenant, ts := range st.Tenants {
		want[fmt.Sprintf("passd_tenant_requests_total{tenant=%q}", tenant)] = float64(ts.Requests)
		if ts.Refused > 0 {
			want[fmt.Sprintf("passd_quota_refused_total{tenant=%q}", tenant)] = float64(ts.Refused)
		}
	}
	for key, v := range want {
		got, ok := parsed[key]
		if !ok {
			return fmt.Errorf("scrape is missing %s (want %g)", key, v)
		}
		if got != v {
			return fmt.Errorf("scrape %s = %g, STATS says %g", key, got, v)
		}
	}
	var shed float64
	for _, lane := range []string{"queue", "conn"} {
		shed += parsed[fmt.Sprintf("passd_shed_total{lane=%q}", lane)]
	}
	if shed != float64(st.Shed) {
		return fmt.Errorf("scrape shed lanes sum to %g, STATS says %d", shed, st.Shed)
	}
	return nil
}

// percentileMs picks the p'th percentile from unsorted samples.
func percentileMs(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Float64s(samples)
	i := int(p*float64(len(samples)-1) + 0.5)
	return samples[i]
}

// tenantArm runs one arm: a fresh small daemon with the given quotas, the
// victim tenant always, the noisy tenant when withNoisy. checkMetrics
// additionally runs the mid-run scrape smoke and the post-quiesce
// metrics/STATS consistency check (used on the quotas-on arm, where both
// tenants and the quota machinery are live).
func tenantArm(quotas map[string]passd.TenantQuota, withNoisy, checkMetrics bool, secs float64, queries []string) (TenantArm, bool, error) {
	arm := TenantArm{}
	db, _ := swarmDataset()
	w := waldo.New()
	w.DB = db
	var sunk atomic.Int64
	srv, err := passd.Serve(w, passd.Config{
		Workers:      tenantWorkers,
		MaxQueue:     tenantMaxQueue,
		AdminAddr:    "127.0.0.1:0",
		TenantQuotas: quotas,
		Append:       func(recs []record.Record) error { sunk.Add(int64(len(recs))); return nil },
	})
	if err != nil {
		return arm, false, err
	}
	defer srv.Close()

	dialAll := func(n int, tenant string) ([]*passd.Client, error) {
		cs := make([]*passd.Client, n)
		for i := range cs {
			c, err := passd.DialOptions(srv.Addr(), passd.Options{Tenant: tenant})
			if err != nil {
				return nil, err
			}
			cs[i] = c
		}
		return cs, nil
	}
	victims, err := dialAll(tenantVictimConns, "victim")
	if err != nil {
		return arm, false, err
	}
	defer func() {
		for _, c := range victims {
			c.Close()
		}
	}()
	var noisies []*passd.Client
	if withNoisy {
		if noisies, err = dialAll(tenantNoisyConns, "noisy"); err != nil {
			return arm, false, err
		}
		defer func() {
			for _, c := range noisies {
				c.Close()
			}
		}()
	}

	start := time.Now()
	deadline := start.Add(time.Duration(secs * float64(time.Second)))
	warmupOver := start.Add(time.Duration(secs * float64(time.Second) / 5))
	var (
		firstErr   atomic.Value
		victimOps  atomic.Int64
		victimErrs atomic.Int64
		noisyOps   atomic.Int64
		wg         sync.WaitGroup
	)
	victimLats := make([][]float64, tenantVictimSessions)
	for s := 0; s < tenantVictimSessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c := victims[s%tenantVictimConns]
			for i := 0; time.Now().Before(deadline); i++ {
				opStart := time.Now()
				_, err := c.Query(queries[(s+i)%len(queries)])
				elapsed := time.Since(opStart)
				if err != nil {
					if !tolerableTenantErr(err) {
						firstErr.CompareAndSwap(nil, fmt.Errorf("victim: %w", err))
						return
					}
					victimErrs.Add(1)
					continue
				}
				victimOps.Add(1)
				// The sample is the op's full wall time — client-side retry
				// backoff included, because that is the latency a tenant
				// actually experiences when its neighbor sheds the queue.
				if opStart.After(warmupOver) {
					victimLats[s] = append(victimLats[s], float64(elapsed.Microseconds())/1e3)
				}
			}
		}(s)
	}
	if withNoisy {
		for s := 0; s < tenantNoisySessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				c := noisies[s%tenantNoisyConns]
				batch := swarmSessionRecords(s)
				for i := 0; time.Now().Before(deadline); i++ {
					var err error
					if i%4 == 3 {
						_, err = c.Query(queries[(s+i)%len(queries)])
					} else {
						err = c.AppendProvenance(batch)
					}
					if err != nil {
						if !tolerableTenantErr(err) {
							firstErr.CompareAndSwap(nil, fmt.Errorf("noisy: %w", err))
							return
						}
						continue
					}
					noisyOps.Add(1)
				}
			}(s)
		}
	}

	consistent := false
	if checkMetrics {
		// Mid-run, under load: the admin surface must serve a parseable
		// payload carrying the required families, and the health endpoints
		// must answer.
		time.Sleep(time.Duration(secs * float64(time.Second) / 2))
		parsed, err := scrapeMetrics(srv.AdminAddr())
		if err == nil {
			err = checkRequiredFamilies(parsed)
		}
		if err != nil {
			firstErr.CompareAndSwap(nil, fmt.Errorf("mid-run scrape: %w", err))
		}
		for _, path := range []string{"/healthz", "/readyz"} {
			resp, herr := http.Get("http://" + srv.AdminAddr() + path)
			if herr != nil {
				firstErr.CompareAndSwap(nil, fmt.Errorf("mid-run %s: %w", path, herr))
				continue
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				firstErr.CompareAndSwap(nil, fmt.Errorf("mid-run %s: %s", path, resp.Status))
			}
		}
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return arm, false, err
	}

	st, err := victims[0].Stats()
	if err != nil {
		return arm, false, err
	}
	if checkMetrics {
		// Quiesced: nothing runs between the STATS snapshot and this
		// scrape, so every shared counter must agree exactly.
		parsed, err := scrapeMetrics(srv.AdminAddr())
		if err != nil {
			return arm, false, fmt.Errorf("post-run scrape: %w", err)
		}
		if err := statsAgreeWithScrape(parsed, st); err != nil {
			return arm, false, fmt.Errorf("metrics/STATS consistency: %w", err)
		}
		consistent = true
	}

	var lats []float64
	for _, l := range victimLats {
		lats = append(lats, l...)
	}
	arm.VictimOps = victimOps.Load()
	arm.VictimErrors = victimErrs.Load()
	arm.VictimP50Ms = percentileMs(lats, 0.50)
	arm.VictimP99Ms = percentileMs(lats, 0.99)
	arm.NoisyOps = noisyOps.Load()
	arm.Shed = st.Shed
	if ts, ok := st.Tenants["noisy"]; ok {
		arm.NoisyRefused = ts.Refused
	}
	return arm, consistent, nil
}

// tenantIsolation runs the three arms and computes the isolation verdict.
func tenantIsolation(secs float64, queries []string) (*TenantIsolation, error) {
	ti := &TenantIsolation{
		Secs:           secs,
		VictimSessions: tenantVictimSessions,
		VictimConns:    tenantVictimConns,
		NoisySessions:  tenantNoisySessions,
		NoisyConns:     tenantNoisyConns,
	}
	var err error
	if ti.Baseline, _, err = tenantArm(tenantNoisyQuota(), false, false, secs, queries); err != nil {
		return ti, fmt.Errorf("baseline arm: %w", err)
	}
	if ti.QuotasOff, _, err = tenantArm(nil, true, false, secs, queries); err != nil {
		return ti, fmt.Errorf("quotas-off arm: %w", err)
	}
	var consistent bool
	if ti.QuotasOn, consistent, err = tenantArm(tenantNoisyQuota(), true, true, secs, queries); err != nil {
		return ti, fmt.Errorf("quotas-on arm: %w", err)
	}
	ti.MetricsConsistent = consistent

	base := ti.Baseline.VictimP99Ms
	if base < victimP99FloorMs {
		base = victimP99FloorMs
	}
	ti.DegradationOn = ti.QuotasOn.VictimP99Ms / base
	ti.DegradationOff = ti.QuotasOff.VictimP99Ms / base
	ti.NoisyRefusedOn = ti.QuotasOn.NoisyRefused
	ti.Isolated = ti.DegradationOn <= 2 &&
		ti.DegradationOff > ti.DegradationOn &&
		ti.NoisyRefusedOn > 0 &&
		ti.MetricsConsistent
	return ti, nil
}

// PrintTenantIsolation renders the noisy-tenant comparison.
func PrintTenantIsolation(w io.Writer, ti *TenantIsolation) {
	fmt.Fprintf(w, "\nNoisy tenant: %d victim sessions vs %d noisy sessions, %.1fs per arm (workers %d, queue %d)\n",
		ti.VictimSessions, ti.NoisySessions, ti.Secs, tenantWorkers, tenantMaxQueue)
	row := func(name string, a TenantArm) {
		fmt.Fprintf(w, "  %-12s victim p50 %7.2fms p99 %8.2fms (%d ops, %d errs)   noisy %d ops, %d refused, shed %d\n",
			name+":", a.VictimP50Ms, a.VictimP99Ms, a.VictimOps, a.VictimErrors, a.NoisyOps, a.NoisyRefused, a.Shed)
	}
	row("baseline", ti.Baseline)
	row("quotas off", ti.QuotasOff)
	row("quotas on", ti.QuotasOn)
	fmt.Fprintf(w, "  degradation: %.2fx with quotas on, %.2fx off; metrics consistent: %v; isolated: %v\n",
		ti.DegradationOn, ti.DegradationOff, ti.MetricsConsistent, ti.Isolated)
}
