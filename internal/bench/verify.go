package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"passv2/internal/mmr"
	"passv2/internal/pnode"
	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/signer"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// VerifyResult reports what tamper evidence costs (DESIGN.md §13): the
// ingest overhead of maintaining the MMR inline with appends, the
// latency of serving Merkle proofs, the cost of signing and checking
// root statements, and the price an offline auditor pays to re-derive
// the whole range from raw log bytes.
type VerifyResult struct {
	Records int `json:"records"`

	// Ingest arms: the daemon's append path (log append + database
	// drain), with and without an attached MMR. The overhead gate is on
	// OverheadPct: (plain - mmr) / plain, in percent.
	PlainRecPerSec float64 `json:"recps_plain"`
	MMRRecPerSec   float64 `json:"recps_mmr"`
	OverheadPct    float64 `json:"overhead_pct"`

	// Proof service: inclusion-proof generation latency over the full
	// range, and one mid-to-head consistency proof.
	Proofs            int     `json:"proofs"`
	ProofAvgMicros    float64 `json:"proof_avg_us"`
	ProofP99Micros    float64 `json:"proof_p99_us"`
	ConsistencyMicros float64 `json:"consistency_us"`

	// Signature costs per root statement.
	SignMicros      float64 `json:"sign_us"`
	VerifySigMicros float64 `json:"verify_sig_us"`

	// Offline-auditor cost: re-deriving the MMR from raw log bytes, the
	// dominant term of a passverify run.
	RebuildSecs      float64 `json:"rebuild_secs"`
	RebuildRecPerSec float64 `json:"rebuild_recps"`
}

// verifyIngestArm runs the daemon-shaped ingest path — append a batch to
// the provlog, drain it into the database — over n records, with or
// without an MMR attached, and returns the elapsed seconds.
func verifyIngestArm(n int, withMMR bool) (float64, *provlog.Writer, vfs.FS, error) {
	lower := vfs.NewMemFS("bench", nil)
	log, err := provlog.NewWriter(lower, "/log", 1<<22)
	if err != nil {
		return 0, nil, nil, err
	}
	log.SetBuffer(1 << 16)
	if withMMR {
		if err := log.AttachMMR(mmr.New(), "vol"); err != nil {
			return 0, nil, nil, err
		}
	}
	w := waldo.New()
	w.Attach(waldo.NewLogVolume("vol", lower, log))

	const batch = 500
	runtime.GC()
	start := time.Now()
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			ref := pnode.Ref{PNode: pnode.PNode(i%4096 + 1), Version: 1}
			var r record.Record
			if i%2 == 0 {
				r = record.New(ref, record.AttrName, record.StringVal(fmt.Sprintf("/data/f%d", i)))
			} else {
				r = record.Input(ref, pnode.Ref{PNode: pnode.PNode(i%97 + 100000), Version: 1})
			}
			if err := log.AppendRecord(0, r); err != nil {
				return 0, nil, nil, err
			}
		}
		if err := w.Drain(); err != nil {
			return 0, nil, nil, err
		}
	}
	if err := log.Flush(); err != nil {
		return 0, nil, nil, err
	}
	return time.Since(start).Seconds(), log, lower, nil
}

// Verify measures the cost of the tamper-evidence layer over a
// records-sized ingest, generating `proofs` inclusion proofs.
func Verify(records, proofs int) (VerifyResult, error) {
	res := VerifyResult{Records: records, Proofs: proofs}

	// Interleave three repetitions of each arm and keep the fastest:
	// the arms are identical workloads, so min-of-3 cancels allocator
	// and GC noise that would otherwise dominate a percent-level gate.
	const reps = 3
	var (
		plainBest, mmrBest float64
		log                *provlog.Writer
		lower              vfs.FS
	)
	for r := 0; r < reps; r++ {
		secs, _, _, err := verifyIngestArm(records, false)
		if err != nil {
			return res, err
		}
		if r == 0 || secs < plainBest {
			plainBest = secs
		}
		var mlog *provlog.Writer
		var mfs vfs.FS
		if secs, mlog, mfs, err = verifyIngestArm(records, true); err != nil {
			return res, err
		}
		if r == 0 || secs < mmrBest {
			mmrBest = secs
		}
		log, lower = mlog, mfs
	}
	res.PlainRecPerSec = float64(records) / plainBest
	res.MMRRecPerSec = float64(records) / mmrBest
	res.OverheadPct = (res.PlainRecPerSec - res.MMRRecPerSec) / res.PlainRecPerSec * 100

	// Proof-generation latency over the final MMR-armed log.
	m := log.MMR()
	n := m.Count()
	if n == 0 {
		return res, fmt.Errorf("bench: MMR arm produced no leaves")
	}
	lat := make([]float64, 0, proofs)
	for i := 0; i < proofs; i++ {
		idx := (uint64(i) * 7919) % n
		start := time.Now()
		p, err := m.Prove(idx)
		if err != nil {
			return res, err
		}
		lat = append(lat, float64(time.Since(start).Nanoseconds())/1e3)
		leaf, err := m.Leaf(idx)
		if err != nil {
			return res, err
		}
		if err := mmr.VerifyInclusion(m.Root(), leaf, p); err != nil {
			return res, fmt.Errorf("bench: generated proof for %d does not verify: %v", idx, err)
		}
	}
	sort.Float64s(lat)
	var sum float64
	for _, v := range lat {
		sum += v
	}
	if len(lat) > 0 {
		res.ProofAvgMicros = sum / float64(len(lat))
		res.ProofP99Micros = lat[len(lat)*99/100]
	}

	// Consistency proof from the mid-point to the head, averaged over
	// enough iterations to resolve on a microsecond clock.
	if n >= 2 {
		oldRoot, err := m.RootAt(n / 2)
		if err != nil {
			return res, err
		}
		const iters = 200
		start := time.Now()
		var cp mmr.ConsistencyProof
		for i := 0; i < iters; i++ {
			if cp, err = m.Consistency(n/2, n); err != nil {
				return res, err
			}
		}
		res.ConsistencyMicros = float64(time.Since(start).Nanoseconds()) / 1e3 / iters
		if err := mmr.VerifyConsistency(oldRoot, m.Root(), cp); err != nil {
			return res, fmt.Errorf("bench: consistency proof does not verify: %v", err)
		}
	}

	// Signature arm: sign and check root statements.
	id, err := signer.LoadOrCreate(vfs.NewMemFS("keys", nil), "/")
	if err != nil {
		return res, err
	}
	stmt := signer.Statement{Volume: "vol", Root: m.Root(), Size: n, Timestamp: 1}
	const sigIters = 500
	start := time.Now()
	var sig []byte
	for i := 0; i < sigIters; i++ {
		sig = id.Sign(stmt)
	}
	res.SignMicros = float64(time.Since(start).Nanoseconds()) / 1e3 / sigIters
	stmt.DeviceID = id.DeviceID
	start = time.Now()
	for i := 0; i < sigIters; i++ {
		if !signer.Verify(id.Pub, stmt, sig) {
			return res, fmt.Errorf("bench: root statement signature does not verify")
		}
	}
	res.VerifySigMicros = float64(time.Since(start).Nanoseconds()) / 1e3 / sigIters

	// Offline-auditor arm: re-derive the range from raw bytes.
	runtime.GC()
	start = time.Now()
	rm, err := provlog.RebuildMMR(lower, "/log", "vol")
	if err != nil {
		return res, err
	}
	res.RebuildSecs = time.Since(start).Seconds()
	res.RebuildRecPerSec = float64(records) / res.RebuildSecs
	if rm.Root() != m.Root() {
		return res, fmt.Errorf("bench: rebuilt root disagrees with the live MMR")
	}
	return res, nil
}

// PrintVerify renders the result as the EXPERIMENTS.md §13 table rows.
func PrintVerify(out io.Writer, r VerifyResult) {
	fmt.Fprintf(out, "tamper-evidence cost (%d records):\n", r.Records)
	fmt.Fprintf(out, "  ingest, no MMR:        %10.0f rec/s\n", r.PlainRecPerSec)
	fmt.Fprintf(out, "  ingest, MMR attached:  %10.0f rec/s  (%.1f%% overhead)\n", r.MMRRecPerSec, r.OverheadPct)
	fmt.Fprintf(out, "  inclusion proof:       %10.1f us avg, %.1f us p99 (%d proofs)\n", r.ProofAvgMicros, r.ProofP99Micros, r.Proofs)
	fmt.Fprintf(out, "  consistency proof:     %10.1f us\n", r.ConsistencyMicros)
	fmt.Fprintf(out, "  sign root statement:   %10.1f us\n", r.SignMicros)
	fmt.Fprintf(out, "  check root signature:  %10.1f us\n", r.VerifySigMicros)
	fmt.Fprintf(out, "  offline MMR rebuild:   %10.2f s  (%.0f rec/s audited)\n", r.RebuildSecs, r.RebuildRecPerSec)
}
