package bench

import (
	"bytes"
	"testing"
)

// TestVerifyShape runs the tamper-evidence benchmark at a small scale
// and checks its internal consistency. Correctness is enforced inside
// Verify itself — every generated proof is checked, the rebuilt root
// must match the live MMR, and signatures must verify — so the shape
// test only needs non-degenerate measurements. The overhead percentage
// is deliberately NOT gated here (too noisy at this scale); CI gates it
// on the full-size run.
func TestVerifyShape(t *testing.T) {
	res, err := Verify(3000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 3000 || res.Proofs != 100 {
		t.Fatalf("records %d / proofs %d, want 3000 / 100", res.Records, res.Proofs)
	}
	if res.PlainRecPerSec <= 0 || res.MMRRecPerSec <= 0 {
		t.Fatalf("degenerate ingest rates: %+v", res)
	}
	if res.ProofAvgMicros <= 0 || res.ProofP99Micros < res.ProofAvgMicros/2 {
		t.Fatalf("degenerate proof latencies: avg %f p99 %f", res.ProofAvgMicros, res.ProofP99Micros)
	}
	if res.SignMicros <= 0 || res.VerifySigMicros <= 0 {
		t.Fatalf("degenerate signature timings: %+v", res)
	}
	if res.RebuildSecs <= 0 || res.RebuildRecPerSec <= 0 {
		t.Fatalf("degenerate rebuild timing: %+v", res)
	}
	var buf bytes.Buffer
	PrintVerify(&buf, res)
	if buf.Len() == 0 {
		t.Fatal("PrintVerify wrote nothing")
	}
}
