// Package checkpoint persists durable, crash-atomic checkpoints of the
// query stack's state — the restartability layer the paper's recovery
// story (§5.6/§6.1.2) stops short of. A Lasagna log is crash-safe, but the
// Waldo database above it is an in-memory tree: without checkpoints a
// daemon crash forces re-ingestion from byte zero of every volume log.
// A checkpoint makes restart work proportional to the log tail instead:
// it bundles a database snapshot with the per-volume provlog offsets (and
// open-transaction buffers) pinned on the same ApplyBatch boundary
// (waldo.Waldo.CheckpointState), so recovery loads the snapshot and
// resumes Drain from the recorded offsets, reading only bytes the
// checkpoint has not covered.
//
// On-disk layout, one generation per checkpoint (gen = the database's
// batch generation, monotonic across restarts via waldo.DB.RestoreGen):
//
//	ckpt-<gen16x>.db     full kvdb snapshot stream (waldo.ReadView.Save)
//	ckpt-<gen16x>.delta  delta stream against an earlier generation
//	                     (waldo.ReadView.SaveDelta) — O(changed keys)
//	ckpt-<gen16x>.meta   manifest: magic, gen, kind (full|delta), base
//	                     gen, record count, payload size+CRC, per-volume
//	                     offsets and pending transactions, optionally the
//	                     signed MMR root proofs (v3 magic, DESIGN.md §13),
//	                     trailing CRC-32 over the whole file
//
// A generation is either full (self-contained) or a delta whose manifest
// names the generation it applies on top of (BaseGen, always the
// immediately preceding generation). Chains are bounded by the write
// policy (Policy.FullEvery) and always terminate in a full generation.
//
// Commit protocol: both files are written to tmp- names, fsynced, and
// renamed into place — payload first, manifest last, directory synced
// after each rename. The manifest rename is the commit point: a crash
// anywhere earlier leaves at worst a stale tmp file or an orphaned
// payload, both invisible to recovery and collected by the next
// retention sweep. Load walks committed generations newest-first,
// composing each candidate's base+delta chain down to its full
// generation; any corrupt or torn link (bad magic, bad CRC, truncated
// payload, missing files, missing base) skips the whole candidate and
// recovery falls back toward the previous full generation, reporting
// everything it skipped per generation; it never serves a half-loaded
// database. Retention keeps whole chains: a base is never dropped while
// a retained delta still references it.
//
// The store works over any vfs.FS: a MemFS under the fault-injection
// wrapper (vfs.FaultFS) for the crash-equivalence sweep, a vfs.DirFS for
// the real daemon's on-disk checkpoints.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"passv2/internal/record"
	"passv2/internal/waldo"
)

// metaMagicV1 headed manifests before delta generations existed; those
// stores still decode (every v1 generation is a full one).
var metaMagicV1 = []byte("PASSCKPT1\n")

// metaMagic heads manifests without signed root proofs — still the
// format written when no signer is configured, so a v2 store stays
// byte-identical under a daemon that never enables tamper evidence.
var metaMagic = []byte("PASSCKPT2\n")

// metaMagicV3 heads manifests carrying signed MMR root proofs
// (DESIGN.md §13). v1 and v2 manifests still decode.
var metaMagicV3 = []byte("PASSCKPT3\n")

// ErrBadManifest reports an unreadable or corrupt manifest.
var ErrBadManifest = errors.New("checkpoint: bad manifest")

// Kind says how a generation's payload encodes the database.
type Kind uint8

const (
	// KindFull is a self-contained snapshot (ckpt-*.db).
	KindFull Kind = iota
	// KindDelta is a diff against the generation named by the manifest's
	// BaseGen (ckpt-*.delta).
	KindDelta
)

func (k Kind) String() string {
	switch k {
	case KindFull:
		return "full"
	case KindDelta:
		return "delta"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Proof is one signed MMR root statement embedded in a manifest: the
// daemon identified by DeviceID asserts that Volume's first Size provlog
// records hash to Root, as of this checkpoint at Timestamp (unix
// seconds). PubKey and Sig are opaque here — the checkpoint layer stores
// and round-trips them; cryptographic verification belongs to the
// VerifyProofs hook (wired by the daemon) and the offline verifier, so
// this package never imports the signer.
type Proof struct {
	Volume    string
	Size      uint64
	Root      [32]byte
	Timestamp uint64
	DeviceID  [16]byte
	PubKey    []byte
	Sig       []byte
}

// Manifest is the decoded form of a ckpt-*.meta file. Records, ProvBytes
// and IdxBytes are the pinned database counters: recovery seeds the loaded
// database with them (waldo.LoadCheckpoint) instead of recomputing them
// with full-store scans. For a delta generation they describe the state
// after the delta is applied, so a chain's head manifest alone seeds the
// composed database. Proofs, when present, are the generation's signed
// MMR root statements (one per tamper-evident volume) and force the v3
// magic; a manifest without proofs encodes exactly as v2 did.
type Manifest struct {
	Gen       int64
	Kind      Kind
	BaseGen   int64
	Records   int64
	ProvBytes int64
	IdxBytes  int64
	SnapSize  int64
	SnapCRC   uint32
	Volumes   []waldo.VolumeState
	Proofs    []Proof
}

// encodeManifest renders the manifest, including magic and trailing CRC.
func encodeManifest(m *Manifest) []byte {
	magic := metaMagic
	if len(m.Proofs) > 0 {
		magic = metaMagicV3
	}
	out := append([]byte(nil), magic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(m.Gen))
	out = append(out, byte(m.Kind))
	out = binary.LittleEndian.AppendUint64(out, uint64(m.BaseGen))
	out = binary.LittleEndian.AppendUint64(out, uint64(m.Records))
	out = binary.LittleEndian.AppendUint64(out, uint64(m.ProvBytes))
	out = binary.LittleEndian.AppendUint64(out, uint64(m.IdxBytes))
	out = binary.LittleEndian.AppendUint64(out, uint64(m.SnapSize))
	out = binary.LittleEndian.AppendUint32(out, m.SnapCRC)
	out = binary.AppendUvarint(out, uint64(len(m.Volumes)))
	for i := range m.Volumes {
		v := &m.Volumes[i]
		out = binary.AppendUvarint(out, uint64(len(v.Name)))
		out = append(out, v.Name...)
		out = binary.AppendUvarint(out, uint64(len(v.Offsets)))
		// Offsets sorted by sequence so the encoding is deterministic.
		seqs := make([]uint64, 0, len(v.Offsets))
		for seq := range v.Offsets {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs {
			out = binary.LittleEndian.AppendUint64(out, seq)
			out = binary.LittleEndian.AppendUint64(out, uint64(v.Offsets[seq]))
		}
		out = binary.AppendUvarint(out, uint64(len(v.Pending)))
		for _, p := range v.Pending {
			out = binary.LittleEndian.AppendUint64(out, p.ID)
			out = binary.AppendUvarint(out, uint64(len(p.Records)))
			for _, r := range p.Records {
				out = record.AppendRecord(out, r)
			}
		}
	}
	if len(m.Proofs) > 0 {
		out = binary.AppendUvarint(out, uint64(len(m.Proofs)))
		for i := range m.Proofs {
			p := &m.Proofs[i]
			out = binary.AppendUvarint(out, uint64(len(p.Volume)))
			out = append(out, p.Volume...)
			out = binary.LittleEndian.AppendUint64(out, p.Size)
			out = append(out, p.Root[:]...)
			out = binary.LittleEndian.AppendUint64(out, p.Timestamp)
			out = append(out, p.DeviceID[:]...)
			out = binary.AppendUvarint(out, uint64(len(p.PubKey)))
			out = append(out, p.PubKey...)
			out = binary.AppendUvarint(out, uint64(len(p.Sig)))
			out = append(out, p.Sig...)
		}
	}
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// decodeManifest parses and validates a manifest file image, accepting
// the proof-bearing v3 format, the proofless v2 format, and the pre-delta
// v1 layout.
func decodeManifest(data []byte) (*Manifest, error) {
	if len(data) < len(metaMagic)+4 {
		return nil, fmt.Errorf("%w: truncated (%d bytes)", ErrBadManifest, len(data))
	}
	var v1, v3 bool
	switch string(data[:len(metaMagic)]) {
	case string(metaMagicV1):
		v1 = true
	case string(metaMagic):
	case string(metaMagicV3):
		v3 = true
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrBadManifest)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrBadManifest)
	}
	d := &mdecoder{buf: body, off: len(metaMagic)}
	m := &Manifest{Gen: int64(d.u64())}
	if !v1 {
		m.Kind = Kind(d.u8())
		m.BaseGen = int64(d.u64())
	}
	m.Records = int64(d.u64())
	m.ProvBytes = int64(d.u64())
	m.IdxBytes = int64(d.u64())
	m.SnapSize = int64(d.u64())
	m.SnapCRC = d.u32()
	switch {
	case d.err != nil:
	case m.Kind > KindDelta:
		return nil, fmt.Errorf("%w: unknown generation kind %d", ErrBadManifest, m.Kind)
	case m.Kind == KindDelta && m.BaseGen >= m.Gen:
		return nil, fmt.Errorf("%w: delta base gen %d not older than gen %d", ErrBadManifest, m.BaseGen, m.Gen)
	case m.Kind == KindFull && m.BaseGen != 0:
		return nil, fmt.Errorf("%w: full generation names base gen %d", ErrBadManifest, m.BaseGen)
	}
	nVols := d.uvarint()
	for i := uint64(0); i < nVols && d.err == nil; i++ {
		var v waldo.VolumeState
		v.Name = string(d.bytes(d.uvarint()))
		nOff := d.uvarint()
		v.Offsets = make(map[uint64]int64, nOff)
		for j := uint64(0); j < nOff && d.err == nil; j++ {
			seq := d.u64()
			v.Offsets[seq] = int64(d.u64())
		}
		nPend := d.uvarint()
		for j := uint64(0); j < nPend && d.err == nil; j++ {
			p := waldo.PendingTxn{ID: d.u64()}
			nRecs := d.uvarint()
			for k := uint64(0); k < nRecs && d.err == nil; k++ {
				rec, n, err := record.DecodeRecord(d.buf[d.off:])
				if err != nil {
					d.err = err
					break
				}
				d.off += n
				p.Records = append(p.Records, rec)
			}
			v.Pending = append(v.Pending, p)
		}
		m.Volumes = append(m.Volumes, v)
	}
	if v3 {
		nProofs := d.uvarint()
		if d.err == nil && nProofs == 0 {
			return nil, fmt.Errorf("%w: v3 manifest with no proofs", ErrBadManifest)
		}
		for i := uint64(0); i < nProofs && d.err == nil; i++ {
			var p Proof
			p.Volume = string(d.bytes(d.uvarint()))
			p.Size = d.u64()
			copy(p.Root[:], d.bytes(32))
			p.Timestamp = d.u64()
			copy(p.DeviceID[:], d.bytes(16))
			p.PubKey = append([]byte(nil), d.bytes(d.uvarint())...)
			p.Sig = append([]byte(nil), d.bytes(d.uvarint())...)
			m.Proofs = append(m.Proofs, p)
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, d.err)
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadManifest, len(body)-d.off)
	}
	return m, nil
}

// mdecoder is a tiny error-latching cursor over the manifest body.
type mdecoder struct {
	buf []byte
	off int
	err error
}

func (d *mdecoder) need(n int) bool {
	if d.err != nil || d.off+n > len(d.buf) {
		if d.err == nil {
			d.err = errors.New("short read")
		}
		return false
	}
	return true
}

func (d *mdecoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *mdecoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *mdecoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *mdecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = errors.New("bad varint")
		return 0
	}
	d.off += n
	return v
}

func (d *mdecoder) bytes(n uint64) []byte {
	if n > uint64(len(d.buf)) || !d.need(int(n)) {
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}
