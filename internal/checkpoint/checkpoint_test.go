package checkpoint

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"passv2/internal/pnode"
	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// logDir is where the test workloads keep their provenance log.
const logDir = "/log"

// newLogWaldo builds a Waldo tailing the log directory on lower through a
// fresh writer — the shape both a recovering daemon and a from-zero
// re-ingest use.
func newLogWaldo(t *testing.T, lower vfs.FS) (*waldo.Waldo, *provlog.Writer) {
	t.Helper()
	w, err := provlog.NewWriter(lower, logDir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	wd := waldo.New()
	wd.Attach(waldo.NewLogVolume("vol1", lower, w))
	return wd, w
}

func ref(pn uint64, v uint32) pnode.Ref {
	return pnode.Ref{PNode: pnode.PNode(pn), Version: pnode.Version(v)}
}

// appendWorkload writes n pseudo-random records: loose ones, closed
// transactions, and — when openTxn is nonzero — records into a transaction
// that stays open past this call.
func appendWorkload(t *testing.T, rng *rand.Rand, log *provlog.Writer, lo, n int, openTxn uint64) {
	t.Helper()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if openTxn != 0 {
		must(log.AppendBeginTxn(openTxn))
	}
	for i := lo; i < lo+n; i++ {
		subj := ref(uint64(i%211+1), uint32(i%3+1))
		switch i % 5 {
		case 0:
			must(log.AppendRecord(0, record.New(subj, record.AttrName, record.StringVal(fmt.Sprintf("/w/f%d", i%211)))))
		case 1:
			must(log.AppendRecord(0, record.New(subj, record.AttrType, record.StringVal(record.TypeFile))))
		case 2:
			must(log.AppendRecord(0, record.Input(subj, ref(uint64(i%97+500), 1))))
		case 3:
			txn := uint64(i + 1000)
			must(log.AppendBeginTxn(txn))
			must(log.AppendRecord(txn, record.Input(subj, ref(uint64(i%53+800), 1))))
			must(log.AppendEndTxn(txn))
		case 4:
			if openTxn != 0 {
				must(log.AppendRecord(openTxn, record.Input(subj, ref(uint64(i%31+900), 1))))
			} else {
				must(log.AppendRecord(0, record.New(subj, record.AttrArgv, record.Int(int64(i)))))
			}
		}
		_ = rng
	}
}

// dbBytes serializes a database for full-content comparison (Save streams
// every key in order, so equal bytes == equal Ascend).
func dbBytes(t *testing.T, db *waldo.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// buildTwoGens writes a workload with two checkpoint generations onto ckfs
// and returns the log FS, the store, and the expected (fully drained)
// database bytes.
func buildTwoGens(t *testing.T, ckfs vfs.FS) (*vfs.MemFS, *Store, []byte) {
	t.Helper()
	lower := vfs.NewMemFS("log", nil)
	wd, log := newLogWaldo(t, lower)
	store, err := NewStore(ckfs, "/ck", 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	appendWorkload(t, rng, log, 0, 400, 42)
	if err := wd.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Write(wd.CheckpointState(), Policy{}); err != nil {
		t.Fatal(err)
	}
	appendWorkload(t, rng, log, 400, 300, 0)
	if err := log.AppendEndTxn(42); err != nil {
		t.Fatal(err)
	}
	if err := wd.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Write(wd.CheckpointState(), Policy{}); err != nil {
		t.Fatal(err)
	}
	return lower, store, dbBytes(t, wd.DB)
}

// recoverAndReplay loads the newest valid generation from the store and
// replays the log tail, returning the recovery outcome and the resulting
// database.
func recoverAndReplay(t *testing.T, store *Store, lower *vfs.MemFS) (*Recovered, *waldo.DB) {
	t.Helper()
	rec, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	wd, _ := newLogWaldo(t, lower)
	if rec.DB != nil {
		wd.DB = rec.DB
		if missing := wd.RestoreVolumes(rec.Volumes); len(missing) != 0 {
			t.Fatalf("unmatched checkpoint volumes: %v", missing)
		}
	}
	if err := wd.Drain(); err != nil {
		t.Fatal(err)
	}
	return rec, wd.DB
}

// TestCheckpointRoundTrip pins the basic contract: recovery from the
// newest generation plus tail replay equals the live database, decodes
// only post-checkpoint bytes, and preserves open transactions across the
// cut.
func TestCheckpointRoundTrip(t *testing.T) {
	ckfs := vfs.NewMemFS("ck", nil)
	lower, store, want := buildTwoGens(t, ckfs)

	gens, err := store.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 {
		t.Fatalf("store holds %d generations, want 2", len(gens))
	}

	rec, db := recoverAndReplay(t, store, lower)
	if rec.DB == nil {
		t.Fatalf("no generation recovered (skipped: %v)", rec.Skipped)
	}
	if len(rec.Skipped) != 0 {
		t.Fatalf("clean store reported skips: %v", rec.Skipped)
	}
	if rec.Gen != gens[0] {
		t.Fatalf("recovered gen %d, want newest %d", rec.Gen, gens[0])
	}
	if got := dbBytes(t, db); !bytes.Equal(got, want) {
		t.Fatal("recovered+replayed database differs from live database")
	}
	if rec.ResumeBytes() == 0 {
		t.Fatal("checkpoint recorded no resume offsets")
	}
}

// TestRecoveryProportionalWork asserts the restart cost contract: a
// recovering Waldo decodes only entries past the checkpointed offsets,
// not the whole log.
func TestRecoveryProportionalWork(t *testing.T) {
	lower := vfs.NewMemFS("log", nil)
	wd, log := newLogWaldo(t, lower)
	store, err := NewStore(vfs.NewMemFS("ck", nil), "/ck", 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	appendWorkload(t, rng, log, 0, 2000, 0)
	if err := wd.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Write(wd.CheckpointState(), Policy{}); err != nil {
		t.Fatal(err)
	}
	appendWorkload(t, rng, log, 2000, 50, 0)

	rec, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	wd2, _ := newLogWaldo(t, lower)
	wd2.DB = rec.DB
	wd2.RestoreVolumes(rec.Volumes)
	if err := wd2.Drain(); err != nil {
		t.Fatal(err)
	}
	// The tail is 50 appends; entry count per append varies (txn framing),
	// but the cold log holds ~2000 appends' worth — recovery must be in
	// the tail's ballpark, nowhere near the log's.
	if got := wd2.EntriesDecoded(); got > 200 {
		t.Fatalf("recovery decoded %d entries; want only the ~50-append tail", got)
	}
	recs1, _, _ := wd2.DB.Stats()
	ref, _ := newLogWaldo(t, lower)
	if err := ref.Drain(); err != nil {
		t.Fatal(err)
	}
	recs2, _, _ := ref.DB.Stats()
	if recs1 != recs2 {
		t.Fatalf("recovered %d records, from-zero %d", recs1, recs2)
	}
}

// corruptCase mutates a store directory's newest generation and says what
// Load must then do.
type corruptCase struct {
	name      string
	corrupt   func(t *testing.T, ckfs *vfs.MemFS, newest, older int64)
	wantGen   func(newest, older int64) int64 // generation Load must fall back to
	wantSkips int
	reason    string // substring expected in the first skip reason
}

func genPath(gen int64, ext string) string {
	return fmt.Sprintf("/ck/ckpt-%016x.%s", uint64(gen), ext)
}

// TestCorruptCheckpoints sweeps every way a generation can be damaged —
// truncated snapshot, flipped snapshot bytes, truncated or flipped
// manifest, missing manifest, missing snapshot, stale temp files — and
// requires recovery to fall back to the older generation (or to nothing),
// reporting what it skipped and never panicking.
func TestCorruptCheckpoints(t *testing.T) {
	cases := []corruptCase{
		{
			name: "truncated snapshot",
			corrupt: func(t *testing.T, ckfs *vfs.MemFS, newest, _ int64) {
				truncateFile(t, ckfs, genPath(newest, "db"), 0.5)
			},
			wantGen:   func(_, older int64) int64 { return older },
			wantSkips: 1,
			reason:    "bytes",
		},
		{
			name: "snapshot bit flip",
			corrupt: func(t *testing.T, ckfs *vfs.MemFS, newest, _ int64) {
				flipByte(t, ckfs, genPath(newest, "db"), 100)
			},
			wantGen:   func(_, older int64) int64 { return older },
			wantSkips: 1,
			reason:    "CRC",
		},
		{
			name: "truncated manifest",
			corrupt: func(t *testing.T, ckfs *vfs.MemFS, newest, _ int64) {
				truncateFile(t, ckfs, genPath(newest, "meta"), 0.7)
			},
			wantGen:   func(_, older int64) int64 { return older },
			wantSkips: 1,
			reason:    "CRC",
		},
		{
			name: "manifest bit flip",
			corrupt: func(t *testing.T, ckfs *vfs.MemFS, newest, _ int64) {
				flipByte(t, ckfs, genPath(newest, "meta"), 20)
			},
			wantGen:   func(_, older int64) int64 { return older },
			wantSkips: 1,
			reason:    "CRC",
		},
		{
			name: "missing manifest",
			corrupt: func(t *testing.T, ckfs *vfs.MemFS, newest, _ int64) {
				if err := ckfs.Remove(genPath(newest, "meta")); err != nil {
					t.Fatal(err)
				}
			},
			wantGen:   func(_, older int64) int64 { return older },
			wantSkips: 1,
			reason:    "missing manifest",
		},
		{
			name: "missing snapshot",
			corrupt: func(t *testing.T, ckfs *vfs.MemFS, newest, _ int64) {
				if err := ckfs.Remove(genPath(newest, "db")); err != nil {
					t.Fatal(err)
				}
			},
			wantGen:   func(_, older int64) int64 { return older },
			wantSkips: 1,
			reason:    "snapshot",
		},
		{
			name: "stale temp files",
			corrupt: func(t *testing.T, ckfs *vfs.MemFS, newest, _ int64) {
				if err := vfs.WriteFile(ckfs, "/ck/tmp-ckpt-00000000000000ff.db", []byte("half-written garbage")); err != nil {
					t.Fatal(err)
				}
				if err := vfs.WriteFile(ckfs, "/ck/tmp-ckpt-00000000000000ff.meta", []byte{1, 2, 3}); err != nil {
					t.Fatal(err)
				}
			},
			wantGen:   func(newest, _ int64) int64 { return newest },
			wantSkips: 0,
		},
		{
			name: "both generations corrupt",
			corrupt: func(t *testing.T, ckfs *vfs.MemFS, newest, older int64) {
				flipByte(t, ckfs, genPath(newest, "db"), 50)
				truncateFile(t, ckfs, genPath(older, "meta"), 0.3)
			},
			wantGen:   func(_, _ int64) int64 { return -1 }, // nothing usable
			wantSkips: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ckfs := vfs.NewMemFS("ck", nil)
			lower, store, want := buildTwoGens(t, ckfs)
			gens, err := store.Generations()
			if err != nil || len(gens) != 2 {
				t.Fatalf("generations: %v, %v", gens, err)
			}
			newest, older := gens[0], gens[1]
			tc.corrupt(t, ckfs, newest, older)

			rec, db := recoverAndReplay(t, store, lower)
			if len(rec.Skipped) != tc.wantSkips {
				t.Fatalf("skipped %v, want %d entries", rec.Skipped, tc.wantSkips)
			}
			if tc.reason != "" && !strings.Contains(rec.Skipped[0].Reason, tc.reason) {
				t.Fatalf("skip reason %q does not mention %q", rec.Skipped[0].Reason, tc.reason)
			}
			wantGen := tc.wantGen(newest, older)
			if wantGen == -1 {
				if rec.DB != nil {
					t.Fatalf("recovered gen %d from an all-corrupt store", rec.Gen)
				}
			} else if rec.DB == nil || rec.Gen != wantGen {
				t.Fatalf("recovered gen %v (db=%v), want %d", rec.Gen, rec.DB != nil, wantGen)
			}
			// Whatever generation recovery landed on, replaying the log
			// from its offsets must reproduce the full database.
			if got := dbBytes(t, db); !bytes.Equal(got, want) {
				t.Fatal("post-corruption recovery diverged from the live database")
			}
		})
	}
}

// TestSweepRetention checks generation rotation: only the newest retain
// generations survive a Write, and stale temp files and orphaned
// snapshots are collected.
func TestSweepRetention(t *testing.T) {
	ckfs := vfs.NewMemFS("ck", nil)
	lower := vfs.NewMemFS("log", nil)
	wd, log := newLogWaldo(t, lower)
	store, err := NewStore(ckfs, "/ck", 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4; i++ {
		appendWorkload(t, rng, log, i*100, 100, 0)
		if err := wd.Drain(); err != nil {
			t.Fatal(err)
		}
		// Plant garbage that the next Write must sweep.
		if err := vfs.WriteFile(ckfs, "/ck/tmp-ckpt-0000000000000001.db", []byte("junk")); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Write(wd.CheckpointState(), Policy{}); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := store.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 {
		t.Fatalf("retained %d generations, want 2", len(gens))
	}
	ents, err := ckfs.ReadDir("/ck")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 4 { // 2 generations × (db + meta)
		t.Fatalf("directory holds %d files, want 4: %v", len(ents), ents)
	}
	rec, db := recoverAndReplay(t, store, lower)
	if rec.DB == nil || rec.Gen != gens[0] {
		t.Fatalf("recovered gen %d, want %d", rec.Gen, gens[0])
	}
	recs, _, _ := db.Stats()
	wantRecs, _, _ := wd.DB.Stats()
	if recs != wantRecs {
		t.Fatalf("recovered %d records, want %d", recs, wantRecs)
	}
}

func truncateFile(t *testing.T, fs vfs.FS, path string, frac float64) {
	t.Helper()
	f, err := fs.Open(path, vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Truncate(int64(float64(f.Size()) * frac)); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, fs vfs.FS, path string, off int64) {
	t.Helper()
	f, err := fs.Open(path, vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if off >= f.Size() {
		off = f.Size() - 1
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}
