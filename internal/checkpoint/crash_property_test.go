package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"passv2/internal/vfs"
)

// TestPropertyCrashEquivalence is the waldo-layer analogue of
// lasagna/crash_property_test.go: for random workloads, a crash is
// injected at every mutating operation (create, write, fsync, rename,
// remove, directory sync) of the checkpoint write path, and after each
// crash the recovered database — newest surviving checkpoint plus replay
// of the log from its recorded offsets — must be byte-identical (a full
// Ascend compare via the snapshot encoding) to a from-zero re-ingest of
// the same log. The workload deliberately leaves a transaction open
// across the first checkpoint and closes it in the second phase, so the
// sweep also proves pending-transaction state survives the cut.
//
// The run is deterministic per (seed, crash point): the log bytes, the
// checkpoint contents and therefore the mutating-op count N are identical
// across re-runs, so a first uncrashed run learns N and the sweep re-runs
// the scenario N times, killing the store at each op in turn.
func TestPropertyCrashEquivalence(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Learning run: no crash point; count the checkpoint path's
			// mutating ops.
			_, fault, _ := runScenario(t, seed, 0)
			total := fault.Ops()
			if total < 10 {
				t.Fatalf("checkpoint path performed only %d mutating ops; sweep would be vacuous", total)
			}
			for k := int64(1); k <= total; k++ {
				ckInner, fault, logLower := runScenario(t, seed, k)
				if !fault.Crashed() {
					t.Fatalf("crash point %d/%d not reached", k, total)
				}
				verifyRecovery(t, seed, k, ckInner, logLower)
			}
		})
	}
}

// runScenario replays the deterministic workload for seed with a crash
// armed at mutating op k of the checkpoint store's FS (k=0: never crash).
// The scenario stops where a real process would die: at the first failed
// checkpoint write. It returns the checkpoint FS as the crash left it and
// the log FS in its final state.
func runScenario(t *testing.T, seed, k int64) (*vfs.MemFS, *vfs.FaultFS, *vfs.MemFS) {
	t.Helper()
	ckInner := vfs.NewMemFS("ck", nil)
	fault := vfs.NewFaultFS(ckInner)
	fault.SetCrashPoint(k)
	store, err := NewStore(fault, "/ck", 2)
	if err != nil {
		// Creating the checkpoint directory is mutating op 1 of the path.
		if !errors.Is(err, vfs.ErrInjectedCrash) {
			t.Fatal(err)
		}
		return ckInner, fault, vfs.NewMemFS("log", nil)
	}
	logLower := vfs.NewMemFS("log", nil)
	wd, log := newLogWaldo(t, logLower)
	rng := rand.New(rand.NewSource(seed))

	phase1 := rng.Intn(400) + 200
	phase2 := rng.Intn(200) + 100
	openTxn := uint64(7)

	appendWorkload(t, rng, log, 0, phase1, openTxn)
	if err := wd.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Write(wd.CheckpointState(), Policy{}); err != nil {
		if !errors.Is(err, vfs.ErrInjectedCrash) {
			t.Fatalf("checkpoint 1 failed for a non-crash reason: %v", err)
		}
		return ckInner, fault, logLower
	}
	appendWorkload(t, rng, log, phase1, phase2, 0)
	if err := log.AppendEndTxn(openTxn); err != nil {
		t.Fatal(err)
	}
	if err := wd.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Write(wd.CheckpointState(), Policy{}); err != nil {
		if !errors.Is(err, vfs.ErrInjectedCrash) {
			t.Fatalf("checkpoint 2 failed for a non-crash reason: %v", err)
		}
	}
	return ckInner, fault, logLower
}

// verifyRecovery recovers from the post-crash checkpoint directory (read
// directly, as a restarted process would), replays the log, and compares
// against a from-zero re-ingest of the same log bytes.
func verifyRecovery(t *testing.T, seed, k int64, ckInner, logLower *vfs.MemFS) {
	t.Helper()
	store, err := NewStore(ckInner, "/ck", 2)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := store.Load()
	if err != nil {
		t.Fatalf("seed %d crash %d: Load: %v", seed, k, err)
	}
	wd, _ := newLogWaldo(t, logLower)
	if rec.DB != nil {
		wd.DB = rec.DB
		if missing := wd.RestoreVolumes(rec.Volumes); len(missing) != 0 {
			t.Fatalf("seed %d crash %d: unmatched volumes %v", seed, k, missing)
		}
	}
	if err := wd.Drain(); err != nil {
		t.Fatalf("seed %d crash %d: replay drain: %v", seed, k, err)
	}

	ref, _ := newLogWaldo(t, logLower)
	if err := ref.Drain(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(dbBytes(t, wd.DB), dbBytes(t, ref.DB)) {
		t.Fatalf("seed %d crash %d (recovered gen %d, skipped %v): recovered database differs from from-zero re-ingest",
			seed, k, rec.Gen, rec.Skipped)
	}
	gotRecs, _, _ := wd.DB.Stats()
	wantRecs, _, _ := ref.DB.Stats()
	if gotRecs != wantRecs {
		t.Fatalf("seed %d crash %d: recovered %d records, from-zero %d", seed, k, gotRecs, wantRecs)
	}
	// Open-transaction state must also match: the same orphans are
	// pending on both sides.
	if got, want := fmt.Sprint(wd.OrphanTxns()), fmt.Sprint(ref.OrphanTxns()); got != want {
		t.Fatalf("seed %d crash %d: pending txns %v, from-zero %v", seed, k, got, want)
	}
}
