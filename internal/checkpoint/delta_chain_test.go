package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"strings"
	"testing"

	"passv2/internal/vfs"
)

// buildChain ingests `phases` workload phases, checkpointing after each
// under pol, and returns the log FS, the store, the per-write infos
// (oldest first) and the fully drained database bytes. The first phase
// leaves a transaction open across the first cut; the second closes it.
func buildChain(t *testing.T, ckfs vfs.FS, pol Policy, phases int) (*vfs.MemFS, *Store, []Info, []byte) {
	t.Helper()
	lower := vfs.NewMemFS("log", nil)
	wd, log := newLogWaldo(t, lower)
	store, err := NewStore(ckfs, "/ck", 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var infos []Info
	for i := 0; i < phases; i++ {
		openTxn := uint64(0)
		if i == 0 {
			openTxn = 77
		}
		appendWorkload(t, rng, log, i*150, 150, openTxn)
		if i == 1 {
			if err := log.AppendEndTxn(77); err != nil {
				t.Fatal(err)
			}
		}
		if err := wd.Drain(); err != nil {
			t.Fatal(err)
		}
		info, err := store.Write(wd.CheckpointState(), pol)
		if err != nil {
			t.Fatal(err)
		}
		if info.SweepErr != nil {
			t.Fatal(info.SweepErr)
		}
		infos = append(infos, info)
	}
	return lower, store, infos, dbBytes(t, wd.DB)
}

// TestDeltaChainRoundTrip pins the incremental-checkpoint contract: under
// a full-every-3 policy the store commits full, delta, delta, full, delta
// generations whose manifests link each delta to its immediate
// predecessor, deltas are smaller than fulls, and recovery composes the
// newest chain into a database byte-identical to the live one.
func TestDeltaChainRoundTrip(t *testing.T) {
	ckfs := vfs.NewMemFS("ck", nil)
	lower, store, infos, want := buildChain(t, ckfs, Policy{FullEvery: 3}, 5)

	wantKinds := []Kind{KindFull, KindDelta, KindDelta, KindFull, KindDelta}
	for i, info := range infos {
		if info.Kind != wantKinds[i] {
			t.Fatalf("write %d committed a %v generation, want %v", i, info.Kind, wantKinds[i])
		}
		if info.Kind == KindDelta {
			if info.BaseGen != infos[i-1].Gen {
				t.Fatalf("write %d delta bases gen %d, want predecessor %d", i, info.BaseGen, infos[i-1].Gen)
			}
			if info.SnapshotBytes <= 0 {
				t.Fatalf("write %d delta recorded %d payload bytes", i, info.SnapshotBytes)
			}
			if _, err := ckfs.Stat(genPath(info.Gen, "delta")); err != nil {
				t.Fatalf("write %d delta payload missing: %v", i, err)
			}
		} else if _, err := ckfs.Stat(genPath(info.Gen, "db")); err != nil {
			t.Fatalf("write %d full payload missing: %v", i, err)
		}
	}

	// Proportionality: every delta beats the size of a full generation,
	// including write 4's delta against the full it immediately follows.
	for _, i := range []int{1, 2, 4} {
		if infos[i].SnapshotBytes >= infos[3].SnapshotBytes {
			t.Fatalf("write %d delta is %d bytes, not smaller than the %d-byte full at write 3",
				i, infos[i].SnapshotBytes, infos[3].SnapshotBytes)
		}
	}

	rec, db := recoverAndReplay(t, store, lower)
	if rec.DB == nil || rec.Gen != infos[4].Gen {
		t.Fatalf("recovered gen %d, want chain head %d (skipped %v)", rec.Gen, infos[4].Gen, rec.Skipped)
	}
	if len(rec.Skipped) != 0 {
		t.Fatalf("clean chain reported skips: %v", rec.Skipped)
	}
	if len(rec.Chain) != 2 || rec.Chain[0] != infos[4].Gen || rec.Chain[1] != infos[3].Gen {
		t.Fatalf("recovered chain %v, want [%d %d]", rec.Chain, infos[4].Gen, infos[3].Gen)
	}
	if got := dbBytes(t, db); !bytes.Equal(got, want) {
		t.Fatal("chain recovery + replay differs from the live database")
	}
}

// TestDeltaFallsBackToFull sweeps the cases where the policy asks for a
// delta but the store must write a full generation instead: no pinned
// base (a fresh process), the base generation gone from the directory, a
// base view from a different database incarnation, and a delta that would
// be at least as large as the full snapshot.
func TestDeltaFallsBackToFull(t *testing.T) {
	pol := Policy{FullEvery: 100}

	t.Run("fresh process has no base", func(t *testing.T) {
		ckfs := vfs.NewMemFS("ck", nil)
		lower, _, infos, _ := buildChain(t, ckfs, pol, 2)
		if infos[1].Kind != KindDelta {
			t.Fatalf("second write in one process: %v, want delta", infos[1].Kind)
		}
		// A restarted process opens a new store over the same directory:
		// no pinned view, so its first generation must be full.
		store2, err := NewStore(ckfs, "/ck", 16)
		if err != nil {
			t.Fatal(err)
		}
		wd, log := newLogWaldo(t, lower)
		appendWorkload(t, rand.New(rand.NewSource(4)), log, 1000, 50, 0)
		if err := wd.Drain(); err != nil {
			t.Fatal(err)
		}
		info, err := store2.Write(wd.CheckpointState(), pol)
		if err != nil {
			t.Fatal(err)
		}
		if info.Kind != KindFull {
			t.Fatalf("first write after restart: %v, want full", info.Kind)
		}
	})

	t.Run("base generation swept from directory", func(t *testing.T) {
		ckfs := vfs.NewMemFS("ck", nil)
		lower, store, infos, _ := buildChain(t, ckfs, pol, 1)
		if err := ckfs.Remove(genPath(infos[0].Gen, "meta")); err != nil {
			t.Fatal(err)
		}
		if err := ckfs.Remove(genPath(infos[0].Gen, "db")); err != nil {
			t.Fatal(err)
		}
		wd, log := newLogWaldo(t, lower)
		appendWorkload(t, rand.New(rand.NewSource(5)), log, 1000, 50, 0)
		if err := wd.Drain(); err != nil {
			t.Fatal(err)
		}
		// Same process, same store — but the base is gone on disk, so a
		// delta would be unrecoverable. (The view is also from a new Waldo
		// here, which the identity check would catch anyway; the missing
		// manifest is checked first and never opens the payload path.)
		info, err := store.Write(wd.CheckpointState(), pol)
		if err != nil {
			t.Fatal(err)
		}
		if info.Kind != KindFull {
			t.Fatalf("write with swept base: %v, want full", info.Kind)
		}
	})

	t.Run("base view from another incarnation", func(t *testing.T) {
		ckfs := vfs.NewMemFS("ck", nil)
		lower, store, infos, _ := buildChain(t, ckfs, pol, 1)
		// Re-ingest the same log into a fresh Waldo: identical data, but a
		// different DB value — kvdb's identity check must refuse the diff
		// and the store must fall back to a full generation.
		wd, _ := newLogWaldo(t, lower)
		if err := wd.Drain(); err != nil {
			t.Fatal(err)
		}
		wd.DB.RestoreGen(infos[0].Gen + 5)
		info, err := store.Write(wd.CheckpointState(), pol)
		if err != nil {
			t.Fatal(err)
		}
		if info.Kind != KindFull {
			t.Fatalf("write against a foreign base view: %v, want full", info.Kind)
		}
		if tmp := vfs.Join("/ck", fmt.Sprintf("tmp-ckpt-%016x.delta", uint64(info.Gen))); fileExists(ckfs, tmp) {
			t.Fatalf("aborted delta left its temp file %s behind", tmp)
		}
	})

	t.Run("delta no smaller than full", func(t *testing.T) {
		ckfs := vfs.NewMemFS("ck", nil)
		lower := vfs.NewMemFS("log", nil)
		wd, log := newLogWaldo(t, lower)
		store, err := NewStore(ckfs, "/ck", 16)
		if err != nil {
			t.Fatal(err)
		}
		// Tiny base, then a phase that dwarfs it: the delta would carry
		// essentially the whole database plus per-op framing, so it cannot
		// beat the full snapshot and the store must abort it mid-write.
		appendWorkload(t, rand.New(rand.NewSource(6)), log, 0, 2, 0)
		if err := wd.Drain(); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Write(wd.CheckpointState(), pol); err != nil {
			t.Fatal(err)
		}
		appendWorkload(t, rand.New(rand.NewSource(6)), log, 10, 1500, 0)
		if err := wd.Drain(); err != nil {
			t.Fatal(err)
		}
		info, err := store.Write(wd.CheckpointState(), pol)
		if err != nil {
			t.Fatal(err)
		}
		if info.Kind != KindFull {
			t.Fatalf("oversized delta not aborted: committed %v generation", info.Kind)
		}
		rec, err := store.Load()
		if err != nil {
			t.Fatal(err)
		}
		if rec.Gen != info.Gen || len(rec.Chain) != 1 {
			t.Fatalf("recovered gen %d chain %v, want self-contained gen %d", rec.Gen, rec.Chain, info.Gen)
		}
	})
}

func fileExists(fs vfs.FS, path string) bool {
	_, err := fs.Stat(path)
	return err == nil
}

// TestSweepKeepsChains pins the retention invariant: a base generation
// survives as long as any retained delta references it, even when the
// retain count alone would have dropped it; once a new full generation
// replaces the chain head, the whole old chain goes at once.
func TestSweepKeepsChains(t *testing.T) {
	ckfs := vfs.NewMemFS("ck", nil)
	lower := vfs.NewMemFS("log", nil)
	wd, log := newLogWaldo(t, lower)
	store, err := NewStore(ckfs, "/ck", 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	write := func(i int) Info {
		t.Helper()
		appendWorkload(t, rng, log, i*120, 120, 0)
		if err := wd.Drain(); err != nil {
			t.Fatal(err)
		}
		info, err := store.Write(wd.CheckpointState(), Policy{FullEvery: 3})
		if err != nil {
			t.Fatal(err)
		}
		if info.SweepErr != nil {
			t.Fatal(info.SweepErr)
		}
		return info
	}
	var infos []Info
	for i := 0; i < 3; i++ {
		infos = append(infos, write(i))
	}
	// retain=1 would keep only the newest generation, but the newest is a
	// delta whose chain reaches back to the first full: all three survive.
	gens, err := store.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 3 {
		t.Fatalf("chain partially swept: %d generations retained, want 3", len(gens))
	}
	rec, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Gen != infos[2].Gen || len(rec.Chain) != 3 {
		t.Fatalf("recovered gen %d chain %v, want 3-link chain head %d", rec.Gen, rec.Chain, infos[2].Gen)
	}
	// The fourth write starts a new chain with a full generation; nothing
	// retains the old chain any more and it is swept whole.
	info4 := write(3)
	if info4.Kind != KindFull {
		t.Fatalf("fourth write: %v, want full (chain bound reached)", info4.Kind)
	}
	gens, err = store.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 || gens[0] != info4.Gen {
		t.Fatalf("after new full: generations %v, want just %d", gens, info4.Gen)
	}
	for _, info := range infos {
		for _, ext := range []string{"db", "delta", "meta"} {
			if fileExists(ckfs, genPath(info.Gen, ext)) {
				t.Fatalf("swept chain left %s behind", genPath(info.Gen, ext))
			}
		}
	}
}

// TestSweepFailureAfterCommit is the satellite bugfix regression: a
// retention-sweep failure after the manifest rename must not fail the
// write — the generation is durably committed and loadable — and must be
// reported through Info.SweepErr instead.
func TestSweepFailureAfterCommit(t *testing.T) {
	run := func(crashAt int64) (*vfs.MemFS, *vfs.FaultFS, Info, error) {
		t.Helper()
		inner := vfs.NewMemFS("ck", nil)
		fault := vfs.NewFaultFS(inner)
		fault.SetCrashPoint(crashAt)
		store, err := NewStore(fault, "/ck", 2)
		if err != nil {
			t.Fatal(err)
		}
		lower := vfs.NewMemFS("log", nil)
		wd, log := newLogWaldo(t, lower)
		rng := rand.New(rand.NewSource(13))
		appendWorkload(t, rng, log, 0, 200, 0)
		if err := wd.Drain(); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Write(wd.CheckpointState(), Policy{}); err != nil {
			t.Fatal(err)
		}
		// Garbage the second write's sweep must remove — its Remove is the
		// write path's final mutating operation.
		if err := vfs.WriteFile(inner, "/ck/tmp-ckpt-00000000000000aa.db", []byte("junk")); err != nil {
			t.Fatal(err)
		}
		appendWorkload(t, rng, log, 200, 200, 0)
		if err := wd.Drain(); err != nil {
			t.Fatal(err)
		}
		info, err := store.Write(wd.CheckpointState(), Policy{})
		return inner, fault, info, err
	}

	// Learning run: count the path's mutating ops, then re-run crashing at
	// the last one — the sweep's Remove of the planted garbage.
	_, fault, info, err := run(0)
	if err != nil || info.SweepErr != nil {
		t.Fatalf("clean run: err=%v sweepErr=%v", err, info.SweepErr)
	}
	total := fault.Ops()
	inner, fault, info, err := run(total)
	if !fault.Crashed() {
		t.Fatalf("crash point %d never reached", total)
	}
	if err != nil {
		t.Fatalf("sweep failure reported as checkpoint failure: %v", err)
	}
	if info.SweepErr == nil {
		t.Fatal("sweep crashed but Info.SweepErr is nil")
	}
	if !errors.Is(info.SweepErr, vfs.ErrInjectedCrash) {
		t.Fatalf("SweepErr = %v, want the injected crash", info.SweepErr)
	}
	if !fileExists(inner, "/ck/tmp-ckpt-00000000000000aa.db") {
		t.Fatal("garbage gone although its Remove crashed")
	}
	// The generation is committed: a restarted process recovers it, and
	// its recovery sweep finishes the housekeeping the crash interrupted.
	store2, err := NewStore(inner, "/ck", 2)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := store2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rec.DB == nil || rec.Gen != info.Gen {
		t.Fatalf("recovered gen %d, want the committed gen %d (skipped %v)", rec.Gen, info.Gen, rec.Skipped)
	}
	if rec.SweepErr != nil {
		t.Fatal(rec.SweepErr)
	}
	if fileExists(inner, "/ck/tmp-ckpt-00000000000000aa.db") {
		t.Fatal("recovery sweep left the stale temp file behind")
	}
}

// TestLoadSweepsOrphans is the satellite bugfix regression for recovery
// housekeeping: a successful Load removes temp files and orphaned
// payloads (so crash→recover→crash loops cannot accumulate garbage), and
// an orphan superseded by a newer committed generation is no longer
// reported as a skip.
func TestLoadSweepsOrphans(t *testing.T) {
	ckfs := vfs.NewMemFS("ck", nil)
	lower, store, want := buildTwoGens(t, ckfs)
	gens, err := store.Generations()
	if err != nil || len(gens) != 2 {
		t.Fatalf("generations: %v, %v", gens, err)
	}
	newest, oldest := gens[0], gens[1]
	// A crash between payload and manifest rename, newer than anything
	// committed: a real (if harmless) data-point, reported and removed.
	if err := vfs.WriteFile(ckfs, genPath(newest+5, "db"), []byte("uncommitted snapshot")); err != nil {
		t.Fatal(err)
	}
	// An orphan superseded by committed generations: stale garbage, not a
	// recovery problem — removed without a report.
	if err := vfs.WriteFile(ckfs, genPath(oldest-1, "delta"), []byte("superseded delta")); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(ckfs, "/ck/tmp-ckpt-0000000000000011.db", []byte("torn temp")); err != nil {
		t.Fatal(err)
	}

	rec, db := recoverAndReplay(t, store, lower)
	if rec.DB == nil || rec.Gen != newest {
		t.Fatalf("recovered gen %d, want %d", rec.Gen, newest)
	}
	if rec.SweepErr != nil {
		t.Fatal(rec.SweepErr)
	}
	if len(rec.Skipped) != 1 || rec.Skipped[0].Gen != newest+5 {
		t.Fatalf("skips %v, want only the orphan newer than the recovered generation", rec.Skipped)
	}
	if !strings.Contains(rec.Skipped[0].Reason, "missing manifest") {
		t.Fatalf("orphan skip reason %q", rec.Skipped[0].Reason)
	}
	if got := dbBytes(t, db); !bytes.Equal(got, want) {
		t.Fatal("recovery with orphans present diverged from the live database")
	}
	// All garbage gone; both committed generations intact.
	ents, err := ckfs.ReadDir("/ck")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 4 {
		t.Fatalf("directory holds %d files after recovery sweep, want 4: %v", len(ents), ents)
	}
	for _, gen := range []int64{newest, oldest} {
		if !fileExists(ckfs, genPath(gen, "meta")) || !fileExists(ckfs, genPath(gen, "db")) {
			t.Fatalf("recovery sweep damaged committed generation %d", gen)
		}
	}
}

// TestCorruptDeltaChains sweeps broken chains: a corrupt head delta falls
// back to the intact tail of the same chain, a corrupt mid-chain delta
// fails every head above it and lands on the base full, a corrupt full
// kills its whole chain, and a delta whose base generation was swept
// falls back to the previous chain's generations — each candidate skipped
// with its own reason.
func TestCorruptDeltaChains(t *testing.T) {
	t.Run("corrupt head delta", func(t *testing.T) {
		ckfs := vfs.NewMemFS("ck", nil)
		lower, store, infos, want := buildChain(t, ckfs, Policy{FullEvery: 3}, 3)
		flipByte(t, ckfs, genPath(infos[2].Gen, "delta"), 30)
		rec, db := recoverAndReplay(t, store, lower)
		if rec.Gen != infos[1].Gen || len(rec.Chain) != 2 {
			t.Fatalf("recovered gen %d chain %v, want the intact 2-link chain at %d", rec.Gen, rec.Chain, infos[1].Gen)
		}
		if len(rec.Skipped) != 1 || rec.Skipped[0].Gen != infos[2].Gen {
			t.Fatalf("skips %v, want one for gen %d", rec.Skipped, infos[2].Gen)
		}
		if r := rec.Skipped[0].Reason; !strings.Contains(r, "delta") || !strings.Contains(r, "CRC") {
			t.Fatalf("skip reason %q does not name the corrupt delta payload", r)
		}
		if got := dbBytes(t, db); !bytes.Equal(got, want) {
			t.Fatal("fallback recovery diverged from the live database")
		}
	})

	t.Run("corrupt mid-chain delta", func(t *testing.T) {
		ckfs := vfs.NewMemFS("ck", nil)
		lower, store, infos, want := buildChain(t, ckfs, Policy{FullEvery: 3}, 3)
		flipByte(t, ckfs, genPath(infos[1].Gen, "delta"), 30)
		rec, db := recoverAndReplay(t, store, lower)
		if rec.Gen != infos[0].Gen || len(rec.Chain) != 1 {
			t.Fatalf("recovered gen %d chain %v, want the base full %d", rec.Gen, rec.Chain, infos[0].Gen)
		}
		if len(rec.Skipped) != 2 || rec.Skipped[0].Gen != infos[2].Gen || rec.Skipped[1].Gen != infos[1].Gen {
			t.Fatalf("skips %v, want per-generation skips for %d then %d", rec.Skipped, infos[2].Gen, infos[1].Gen)
		}
		if r := rec.Skipped[0].Reason; !strings.Contains(r, fmt.Sprintf("chain base gen %d", infos[1].Gen)) {
			t.Fatalf("head skip reason %q does not name the broken link", r)
		}
		if r := rec.Skipped[1].Reason; !strings.Contains(r, "CRC") {
			t.Fatalf("mid-chain skip reason %q does not name the corruption", r)
		}
		if got := dbBytes(t, db); !bytes.Equal(got, want) {
			t.Fatal("fallback recovery diverged from the live database")
		}
	})

	t.Run("corrupt base full", func(t *testing.T) {
		ckfs := vfs.NewMemFS("ck", nil)
		lower, store, infos, want := buildChain(t, ckfs, Policy{FullEvery: 3}, 3)
		flipByte(t, ckfs, genPath(infos[0].Gen, "db"), 30)
		rec, db := recoverAndReplay(t, store, lower)
		if rec.DB != nil {
			t.Fatalf("recovered gen %d from a store whose only full is corrupt", rec.Gen)
		}
		if len(rec.Skipped) != 3 {
			t.Fatalf("skips %v, want one per generation", rec.Skipped)
		}
		// No usable checkpoint: recovery re-ingests from byte zero and
		// still converges on the same database.
		if got := dbBytes(t, db); !bytes.Equal(got, want) {
			t.Fatal("from-zero fallback diverged from the live database")
		}
	})

	t.Run("delta referencing swept base", func(t *testing.T) {
		ckfs := vfs.NewMemFS("ck", nil)
		lower, store, infos, want := buildChain(t, ckfs, Policy{FullEvery: 2}, 4)
		// Chain layout: full, delta, full, delta. Remove the second full
		// entirely — the newest delta now references a base that no longer
		// exists, and recovery must fall back to the previous chain.
		if err := ckfs.Remove(genPath(infos[2].Gen, "meta")); err != nil {
			t.Fatal(err)
		}
		if err := ckfs.Remove(genPath(infos[2].Gen, "db")); err != nil {
			t.Fatal(err)
		}
		rec, db := recoverAndReplay(t, store, lower)
		if rec.Gen != infos[1].Gen || len(rec.Chain) != 2 {
			t.Fatalf("recovered gen %d chain %v, want the previous chain head %d", rec.Gen, rec.Chain, infos[1].Gen)
		}
		if len(rec.Skipped) != 1 || rec.Skipped[0].Gen != infos[3].Gen {
			t.Fatalf("skips %v, want one for the baseless delta %d", rec.Skipped, infos[3].Gen)
		}
		if r := rec.Skipped[0].Reason; !strings.Contains(r, fmt.Sprintf("chain base gen %d", infos[2].Gen)) ||
			!strings.Contains(r, "manifest") {
			t.Fatalf("skip reason %q does not name the missing base", r)
		}
		if got := dbBytes(t, db); !bytes.Equal(got, want) {
			t.Fatal("fallback recovery diverged from the live database")
		}
	})
}

// TestManifestV1Compat pins backward compatibility: a store written
// before delta generations (v1 manifests) must still recover. The v1
// image is synthesized by re-encoding a current manifest in the old
// layout.
func TestManifestV1Compat(t *testing.T) {
	ckfs := vfs.NewMemFS("ck", nil)
	lower, store, want := buildTwoGens(t, ckfs)
	gens, err := store.Generations()
	if err != nil || len(gens) != 2 {
		t.Fatalf("generations: %v, %v", gens, err)
	}
	for _, gen := range gens {
		data, err := vfs.ReadFile(ckfs, genPath(gen, "meta"))
		if err != nil {
			t.Fatal(err)
		}
		m, err := decodeManifest(data)
		if err != nil {
			t.Fatal(err)
		}
		if err := vfs.WriteFile(ckfs, genPath(gen, "meta"), encodeManifestV1(m)); err != nil {
			t.Fatal(err)
		}
	}
	rec, db := recoverAndReplay(t, store, lower)
	if rec.DB == nil || rec.Gen != gens[0] || len(rec.Skipped) != 0 {
		t.Fatalf("v1 store: recovered gen %d, skipped %v", rec.Gen, rec.Skipped)
	}
	if got := dbBytes(t, db); !bytes.Equal(got, want) {
		t.Fatal("v1-manifest recovery diverged from the live database")
	}
}

// TestPropertyCrashEquivalenceDeltaChain is the delta-generation arm of
// the crash sweep: a full + two-delta chain (Policy{FullEvery: 3}) is
// written across three workload phases, a crash is injected at every
// mutating operation of the checkpoint path, and recovery after each
// crash must be byte-identical to a from-zero re-ingest. (The provenance
// store is append-only, so chain deltas here carry sets and overwrites;
// delete tombstones under corruption and truncation are swept at the
// kvdb layer, internal/kvdb/delta_test.go.)
func TestPropertyCrashEquivalenceDeltaChain(t *testing.T) {
	for seed := int64(0); seed < 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ckInner, fault, _, kinds := runDeltaScenario(t, seed, 0)
			total := fault.Ops()
			if total < 10 {
				t.Fatalf("checkpoint path performed only %d mutating ops", total)
			}
			// The learning run must actually exercise a chain, or the
			// sweep proves nothing about delta crash-safety.
			if want := []Kind{KindFull, KindDelta, KindDelta}; fmt.Sprint(kinds) != fmt.Sprint(want) {
				t.Fatalf("uncrashed scenario wrote %v, want %v", kinds, want)
			}
			if rec, err := NewStoreMust(ckInner).Load(); err != nil || rec.Gen == 0 {
				t.Fatalf("uncrashed scenario did not leave a recoverable chain: %v, %v", rec, err)
			}
			for k := int64(1); k <= total; k++ {
				ckInner, fault, logLower, _ := runDeltaScenario(t, seed, k)
				if !fault.Crashed() {
					t.Fatalf("crash point %d/%d not reached", k, total)
				}
				verifyRecovery(t, seed, k, ckInner, logLower)
			}
		})
	}
}

// NewStoreMust opens a store over an existing checkpoint directory,
// panicking on setup errors (test helper).
func NewStoreMust(fs vfs.FS) *Store {
	s, err := NewStore(fs, "/ck", 2)
	if err != nil {
		panic(err)
	}
	return s
}

// runDeltaScenario replays a three-phase workload with a checkpoint after
// each phase under Policy{FullEvery: 3} — full, delta, delta — crashing
// at mutating op k of the checkpoint FS (k=0: never). Like a real
// process, it stops at the first failed checkpoint write; a sweep
// failure on a committed generation does not stop it.
func runDeltaScenario(t *testing.T, seed, k int64) (*vfs.MemFS, *vfs.FaultFS, *vfs.MemFS, []Kind) {
	t.Helper()
	ckInner := vfs.NewMemFS("ck", nil)
	fault := vfs.NewFaultFS(ckInner)
	fault.SetCrashPoint(k)
	var kinds []Kind
	store, err := NewStore(fault, "/ck", 2)
	if err != nil {
		if !errors.Is(err, vfs.ErrInjectedCrash) {
			t.Fatal(err)
		}
		return ckInner, fault, vfs.NewMemFS("log", nil), kinds
	}
	logLower := vfs.NewMemFS("log", nil)
	wd, log := newLogWaldo(t, logLower)
	rng := rand.New(rand.NewSource(seed))

	phases := []int{rng.Intn(200) + 150, rng.Intn(150) + 80, rng.Intn(150) + 80}
	openTxn := uint64(7)
	lo := 0
	for i, n := range phases {
		switch i {
		case 0:
			appendWorkload(t, rng, log, lo, n, openTxn)
		case 1:
			appendWorkload(t, rng, log, lo, n, 0)
			if err := log.AppendEndTxn(openTxn); err != nil {
				t.Fatal(err)
			}
		default:
			appendWorkload(t, rng, log, lo, n, 0)
		}
		lo += n
		if err := wd.Drain(); err != nil {
			t.Fatal(err)
		}
		info, err := store.Write(wd.CheckpointState(), Policy{FullEvery: 3})
		if err != nil {
			if !errors.Is(err, vfs.ErrInjectedCrash) {
				t.Fatalf("checkpoint %d failed for a non-crash reason: %v", i+1, err)
			}
			return ckInner, fault, logLower, kinds
		}
		kinds = append(kinds, info.Kind)
	}
	return ckInner, fault, logLower, kinds
}

// encodeManifestV1 renders a manifest in the pre-delta layout: the v2
// image minus the kind byte and base gen, under the v1 magic. Only valid
// for full generations — v1 stores had no other kind.
func encodeManifestV1(m *Manifest) []byte {
	if m.Kind != KindFull || m.BaseGen != 0 {
		panic("encodeManifestV1: not a full generation")
	}
	v2 := encodeManifest(m)
	body := v2[:len(v2)-4]
	out := append([]byte(nil), metaMagicV1...)
	out = append(out, body[len(metaMagic):len(metaMagic)+8]...)
	out = append(out, body[len(metaMagic)+8+1+8:]...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}
