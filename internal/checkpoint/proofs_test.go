package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

func testProof(i byte) Proof {
	p := Proof{
		Volume:    "vol1",
		Size:      uint64(100 + i),
		Timestamp: 1700000000 + uint64(i),
		PubKey:    bytes.Repeat([]byte{0x50 + i}, 32),
		Sig:       bytes.Repeat([]byte{0x60 + i}, 64),
	}
	p.Root[0] = 0xaa + i
	p.DeviceID[0] = 0xbb + i
	return p
}

// TestManifestProofCodec pins the v3 wire format: proofs round-trip
// exactly, a proof-bearing manifest carries the v3 magic, and a manifest
// without proofs still encodes byte-identically to the v2 format.
func TestManifestProofCodec(t *testing.T) {
	base := &Manifest{Gen: 7, Kind: KindFull, Records: 9, SnapSize: 4, SnapCRC: 1,
		Volumes: []waldo.VolumeState{{Name: "vol1", Offsets: map[uint64]int64{1: 128}}}}

	plain := encodeManifest(base)
	if !bytes.HasPrefix(plain, metaMagic) {
		t.Fatal("proofless manifest did not keep the v2 magic")
	}

	withProofs := *base
	withProofs.Proofs = []Proof{testProof(0), testProof(1)}
	enc := encodeManifest(&withProofs)
	if !bytes.HasPrefix(enc, metaMagicV3) {
		t.Fatal("proof-bearing manifest did not use the v3 magic")
	}
	dec, err := decodeManifest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec.Proofs, withProofs.Proofs) {
		t.Fatalf("proofs did not round-trip:\n got %+v\nwant %+v", dec.Proofs, withProofs.Proofs)
	}

	// Every flipped byte in the proof section is caught by the file CRC.
	for off := len(enc) - 4 - 50; off < len(enc); off++ {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 1
		if _, err := decodeManifest(bad); err == nil {
			t.Fatalf("byte flip at %d decoded", off)
		}
	}

	// A v3 magic with no proof section is malformed, not an empty list.
	empty := *base
	forged := append([]byte(nil), metaMagicV3...)
	forged = append(forged, encodeManifest(&empty)[len(metaMagic):]...)
	if _, err := decodeManifest(forged); err == nil {
		t.Fatal("v3 manifest without proofs decoded")
	}
}

// TestWriteEmbedsProofsAndLoadReturnsThem runs the MakeProofs hook through
// a real store: every committed generation carries the hook's statements,
// Load hands back the recovered generation's proofs, and ReadManifest /
// VerifyGen expose them per generation for the offline verifier.
func TestWriteEmbedsProofsAndLoadReturnsThem(t *testing.T) {
	ckfs := vfs.NewMemFS("ck", nil)
	lower := vfs.NewMemFS("log", nil)
	wd, log := newLogWaldo(t, lower)
	store, err := NewStore(ckfs, "/ck", 3)
	if err != nil {
		t.Fatal(err)
	}
	var calls byte
	store.MakeProofs = func(cp *waldo.CheckpointState) ([]Proof, error) {
		calls++
		return []Proof{testProof(calls)}, nil
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3; i++ {
		appendWorkload(t, rng, log, i*200, 200, 0)
		if err := wd.Drain(); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Write(wd.CheckpointState(), Policy{}); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 3 {
		t.Fatalf("MakeProofs called %d times, want 3", calls)
	}

	rec, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rec.DB == nil || len(rec.Proofs) != 1 || rec.Proofs[0].Size != uint64(100+calls) {
		t.Fatalf("recovered proofs %+v, want the newest generation's", rec.Proofs)
	}
	gens, err := store.Generations()
	if err != nil {
		t.Fatal(err)
	}
	for i, gen := range gens {
		m, err := store.ReadManifest(gen)
		if err != nil {
			t.Fatal(err)
		}
		want := testProof(calls - byte(i))
		if len(m.Proofs) != 1 || !reflect.DeepEqual(m.Proofs[0], want) {
			t.Fatalf("gen %d proofs %+v, want %+v", gen, m.Proofs, want)
		}
		if _, err := store.VerifyGen(gen); err != nil {
			t.Fatalf("gen %d failed integrity check: %v", gen, err)
		}
	}

	// A signer failure aborts the checkpoint before anything is staged.
	store.MakeProofs = func(*waldo.CheckpointState) ([]Proof, error) {
		return nil, errors.New("key unavailable")
	}
	appendWorkload(t, rng, log, 600, 50, 0)
	if err := wd.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Write(wd.CheckpointState(), Policy{}); err == nil {
		t.Fatal("checkpoint committed despite MakeProofs failure")
	}
	if after, _ := store.Generations(); len(after) != len(gens) {
		t.Fatalf("failed write changed the store: %v -> %v", gens, after)
	}
}

// TestVerifyProofsRejectionFallsBack is the CRC-valid-but-forged case: a
// candidate whose manifest passes every integrity check but fails the
// VerifyProofs hook is skipped with class root_mismatch and recovery
// falls back to the previous generation.
func TestVerifyProofsRejectionFallsBack(t *testing.T) {
	ckfs := vfs.NewMemFS("ck", nil)
	lower, store, _ := buildTwoGens(t, ckfs)
	gens, err := store.Generations()
	if err != nil || len(gens) != 2 {
		t.Fatalf("gens %v, err %v", gens, err)
	}
	store.VerifyProofs = func(m *Manifest) error {
		if m.Gen == gens[0] {
			return fmt.Errorf("root does not match the recomputed MMR")
		}
		return nil
	}
	rec, _ := recoverAndReplay(t, store, lower)
	if rec.DB == nil || rec.Gen != gens[1] {
		t.Fatalf("recovered gen %d, want fallback to %d", rec.Gen, gens[1])
	}
	if len(rec.Skipped) != 1 || rec.Skipped[0].Gen != gens[0] || rec.Skipped[0].Class != SkipRootMismatch {
		t.Fatalf("skips %+v, want gen %d with class %q", rec.Skipped, gens[0], SkipRootMismatch)
	}
}

// TestSkipClasses pins the machine-readable skip classification across
// the failure shapes recovery distinguishes: corrupt manifest, corrupt
// payload, a delta whose chain base is damaged, and an orphaned payload.
func TestSkipClasses(t *testing.T) {
	t.Run("manifest and payload and orphan", func(t *testing.T) {
		ckfs := vfs.NewMemFS("ck", nil)
		lower, store, _ := buildTwoGens(t, ckfs)
		gens, _ := store.Generations()
		flipByte(t, ckfs, store.metaPath(gens[0]), 15)
		flipByte(t, ckfs, store.snapPath(gens[1]), 10)
		rec, err := store.Load()
		if err != nil {
			t.Fatal(err)
		}
		if rec.DB != nil {
			t.Fatal("recovered from corrupt generations")
		}
		got := map[int64]string{}
		for _, sk := range rec.Skipped {
			got[sk.Gen] = sk.Class
		}
		if got[gens[0]] != SkipManifest || got[gens[1]] != SkipPayload {
			t.Fatalf("classes %v, want gen %d=%q gen %d=%q", got, gens[0], SkipManifest, gens[1], SkipPayload)
		}
		_ = lower
	})

	t.Run("chain base", func(t *testing.T) {
		ckfs := vfs.NewMemFS("ck", nil)
		lower := vfs.NewMemFS("log", nil)
		wd, log := newLogWaldo(t, lower)
		store, err := NewStore(ckfs, "/ck", 3)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		var kinds []Kind
		for i := 0; i < 2; i++ {
			appendWorkload(t, rng, log, i*150, 150, 0)
			if err := wd.Drain(); err != nil {
				t.Fatal(err)
			}
			info, err := store.Write(wd.CheckpointState(), Policy{FullEvery: 4})
			if err != nil {
				t.Fatal(err)
			}
			kinds = append(kinds, info.Kind)
		}
		if kinds[1] != KindDelta {
			t.Fatalf("second generation is %v, want a delta", kinds[1])
		}
		gens, _ := store.Generations()
		flipByte(t, ckfs, store.snapPath(gens[1]), 10) // damage the delta's full base
		rec, err := store.Load()
		if err != nil {
			t.Fatal(err)
		}
		got := map[int64]string{}
		for _, sk := range rec.Skipped {
			got[sk.Gen] = sk.Class
		}
		if got[gens[0]] != SkipChainBase || got[gens[1]] != SkipPayload {
			t.Fatalf("classes %v, want delta=%q base=%q", got, SkipChainBase, SkipPayload)
		}
	})

	t.Run("orphan", func(t *testing.T) {
		ckfs := vfs.NewMemFS("ck", nil)
		_, store, _ := buildTwoGens(t, ckfs)
		gens, _ := store.Generations()
		if err := ckfs.Remove(store.metaPath(gens[0])); err != nil {
			t.Fatal(err)
		}
		rec, err := store.Load()
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Skipped) != 1 || rec.Skipped[0].Class != SkipOrphan {
			t.Fatalf("skips %+v, want one with class %q", rec.Skipped, SkipOrphan)
		}
	})
}
