package checkpoint

import (
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"

	"passv2/internal/kvdb"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// DefaultRetain is how many checkpoint chains a store keeps when the
// caller does not say: the newest to recover from, plus fallbacks should
// it prove corrupt.
const DefaultRetain = 3

// Policy says what kind of generation Write commits.
type Policy struct {
	// FullEvery bounds delta chains: one full generation, then up to
	// FullEvery-1 deltas, then full again. <= 1 means every generation is
	// a full snapshot (the pre-delta behavior). Independent of the
	// period, Write falls back to a full generation whenever a delta is
	// impossible or pointless: no base view is pinned in this process
	// (first write after boot), the base generation's manifest is gone
	// from the directory, or the delta would be at least as large as the
	// full snapshot it stands in for.
	FullEvery int
}

// Store reads and writes checkpoints in one directory of an FS. Methods
// are not safe for concurrent use with each other; the daemon serializes
// them behind its checkpointer mutex.
type Store struct {
	fs     vfs.FS
	dir    string
	retain int

	// MakeProofs, when set, is called by Write at the start of each
	// checkpoint to produce the generation's signed MMR root proofs
	// (DESIGN.md §13); returning an error aborts the checkpoint. A nil
	// hook (or an empty proof slice) writes a proofless v2 manifest.
	MakeProofs func(cp *waldo.CheckpointState) ([]Proof, error)

	// VerifyProofs, when set, is called by Load on each otherwise-valid
	// candidate manifest before recovery trusts it. An error rejects the
	// candidate (Skip class "root_mismatch") and recovery falls back
	// toward an older generation — the CRC-valid-but-root-forged case a
	// checksum alone cannot catch.
	VerifyProofs func(m *Manifest) error

	// Delta chain state, valid only within this process: base is the
	// view pinned by the previous successful Write (the tree a delta
	// diffs against — views of a reloaded database fail kvdb's identity
	// check, so a restart always begins with a full generation), baseGen
	// its generation, and sinceFull the number of deltas committed since
	// the last full. Holding base keeps one extra frozen tree alive, but
	// it shares every untouched node with the live tree, so the overhead
	// is the mutated fringe between checkpoints.
	base      *waldo.ReadView
	baseGen   int64
	sinceFull int
}

// NewStore opens (creating if needed) a checkpoint directory on fs.
// retain <= 0 means DefaultRetain.
func NewStore(fs vfs.FS, dir string, retain int) (*Store, error) {
	dir = vfs.Clean(dir)
	if err := fs.MkdirAll(dir); err != nil && !errors.Is(err, vfs.ErrExist) {
		return nil, err
	}
	if retain <= 0 {
		retain = DefaultRetain
	}
	return &Store{fs: fs, dir: dir, retain: retain}, nil
}

// OpenDir opens a checkpoint store on a real OS directory — the form the
// passd daemon uses (-checkpoint-dir).
func OpenDir(path string, retain int) (*Store, error) {
	dfs, err := vfs.NewDirFS(path)
	if err != nil {
		return nil, err
	}
	return NewStore(dfs, "/", retain)
}

// Dir returns the store's directory path within its FS.
func (s *Store) Dir() string { return s.dir }

func (s *Store) snapPath(gen int64) string {
	return vfs.Join(s.dir, fmt.Sprintf("ckpt-%016x.db", uint64(gen)))
}

func (s *Store) metaPath(gen int64) string {
	return vfs.Join(s.dir, fmt.Sprintf("ckpt-%016x.meta", uint64(gen)))
}

func (s *Store) deltaPath(gen int64) string {
	return vfs.Join(s.dir, fmt.Sprintf("ckpt-%016x.delta", uint64(gen)))
}

// payloadPath returns the payload file for a generation of the given kind.
func (s *Store) payloadPath(gen int64, kind Kind) string {
	if kind == KindDelta {
		return s.deltaPath(gen)
	}
	return s.snapPath(gen)
}

// parseGen extracts the generation from a checkpoint file name
// ("ckpt-<gen16x>.db" / ".meta"), reporting the extension.
func parseGen(name string) (gen int64, ext string, ok bool) {
	if !strings.HasPrefix(name, "ckpt-") {
		return 0, "", false
	}
	rest := name[len("ckpt-"):]
	dot := strings.IndexByte(rest, '.')
	if dot != 16 {
		return 0, "", false
	}
	n, err := strconv.ParseUint(rest[:dot], 16, 64)
	if err != nil {
		return 0, "", false
	}
	return int64(n), rest[dot+1:], true
}

// Info describes one written checkpoint.
type Info struct {
	Gen           int64
	Records       int64
	SnapshotBytes int64 // payload bytes committed for this generation (full snapshot or delta)
	Kind          Kind
	BaseGen       int64 // for a delta: the generation it applies on top of
	// SweepErr reports a post-commit retention sweep failure. The
	// generation itself is durably committed — the manifest rename
	// happened before the sweep — so callers must treat the write as a
	// success and surface SweepErr as a housekeeping problem (stale files
	// linger until a later sweep), never as a checkpoint failure.
	SweepErr error
}

// errDeltaTooBig aborts a delta payload once it stops being cheaper than
// the full snapshot it would stand in for; Write falls back to a full
// generation.
var errDeltaTooBig = errors.New("checkpoint: delta would be no smaller than a full snapshot")

// Write persists one checkpoint generation: payload then manifest, each
// through a temp file, fsync and atomic rename, with a directory sync
// after each rename. The manifest rename is the commit point. pol decides
// the payload kind — a delta against the previous generation's pinned
// view when the chain policy and base allow it, a full snapshot
// otherwise. After committing, a retention sweep removes chains beyond
// the store's retain count, stale temp files, and orphaned payloads; a
// sweep failure is reported in Info.SweepErr, not as a write error,
// because the generation is already committed.
func (s *Store) Write(cp *waldo.CheckpointState, pol Policy) (Info, error) {
	info := Info{Gen: cp.Gen, Records: cp.Records, Kind: KindFull}

	// Signed root proofs are collected before any payload I/O so a signer
	// failure aborts the checkpoint without staging files to sweep up.
	var proofs []Proof
	if s.MakeProofs != nil {
		var err error
		if proofs, err = s.MakeProofs(cp); err != nil {
			return info, fmt.Errorf("checkpoint: root proofs: %w", err)
		}
	}

	kind := KindFull
	if pol.FullEvery > 1 && s.base != nil && s.sinceFull+1 < pol.FullEvery {
		// The base must still be committed on disk: retention keeps live
		// chains, but the directory may have been cleared or reconfigured
		// under us between writes.
		if _, err := s.fs.Stat(s.metaPath(s.baseGen)); err == nil {
			kind = KindDelta
		}
	}

	var payloadBytes int64
	var payloadCRC uint32
	if kind == KindDelta {
		n, crc, err := s.writeDelta(cp)
		switch {
		case err == nil:
			payloadBytes, payloadCRC = n, crc
			info.Kind, info.BaseGen = KindDelta, s.baseGen
		case errors.Is(err, kvdb.ErrDeltaBase) || errors.Is(err, errDeltaTooBig):
			// Not an I/O failure: the base is unusable (e.g. a store
			// reused across a reload) or the delta buys nothing. Fall
			// back to a self-contained generation.
			kind = KindFull
		default:
			return info, err
		}
	}
	if kind == KindFull {
		n, crc, err := s.writeFull(cp)
		if err != nil {
			return info, err
		}
		payloadBytes, payloadCRC = n, crc
	}
	info.SnapshotBytes = payloadBytes

	// Manifest — the commit point.
	_, provBytes, idxBytes := cp.View.Stats()
	meta := encodeManifest(&Manifest{
		Gen:       cp.Gen,
		Kind:      info.Kind,
		BaseGen:   info.BaseGen,
		Records:   cp.Records,
		ProvBytes: provBytes,
		IdxBytes:  idxBytes,
		SnapSize:  payloadBytes,
		SnapCRC:   payloadCRC,
		Volumes:   cp.Volumes,
		Proofs:    proofs,
	})
	metaTmp := vfs.Join(s.dir, fmt.Sprintf("tmp-ckpt-%016x.meta", uint64(cp.Gen)))
	f, err := s.fs.Open(metaTmp, vfs.OCreate|vfs.ORdWr|vfs.OTrunc)
	if err != nil {
		return info, err
	}
	if _, err := f.WriteAt(meta, 0); err != nil {
		f.Close()
		return info, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return info, err
	}
	if err := f.Close(); err != nil {
		return info, err
	}
	if err := s.fs.Rename(metaTmp, s.metaPath(cp.Gen)); err != nil {
		return info, err
	}
	if err := s.fs.Sync(); err != nil {
		return info, err
	}

	// Committed: pin this generation's view as the next delta's base.
	s.base, s.baseGen = cp.View, cp.Gen
	if info.Kind == KindFull {
		s.sinceFull = 0
	} else {
		s.sinceFull++
	}

	info.SweepErr = s.sweep(nil)
	return info, nil
}

// writeFull stages and publishes a full snapshot payload for cp's
// generation, returning its size and CRC.
func (s *Store) writeFull(cp *waldo.CheckpointState) (int64, uint32, error) {
	tmp := vfs.Join(s.dir, fmt.Sprintf("tmp-ckpt-%016x.db", uint64(cp.Gen)))
	f, err := s.fs.Open(tmp, vfs.OCreate|vfs.ORdWr|vfs.OTrunc)
	if err != nil {
		return 0, 0, err
	}
	fw := &fileWriter{f: f, crc: crc32.NewIEEE()}
	if err := cp.View.Save(fw); err != nil {
		f.Close()
		return 0, 0, err
	}
	if err := s.publish(f, tmp, s.snapPath(cp.Gen)); err != nil {
		return 0, 0, err
	}
	return fw.off, fw.crc.Sum32(), nil
}

// writeDelta stages and publishes a delta payload diffing cp's view
// against the store's pinned base. It aborts with errDeltaTooBig the
// moment the stream reaches the full snapshot's size — the caller falls
// back to writeFull — and with kvdb.ErrDeltaBase when the pinned base
// belongs to a different database incarnation.
func (s *Store) writeDelta(cp *waldo.CheckpointState) (int64, uint32, error) {
	tmp := vfs.Join(s.dir, fmt.Sprintf("tmp-ckpt-%016x.delta", uint64(cp.Gen)))
	f, err := s.fs.Open(tmp, vfs.OCreate|vfs.ORdWr|vfs.OTrunc)
	if err != nil {
		return 0, 0, err
	}
	fw := &fileWriter{f: f, crc: crc32.NewIEEE(), limit: cp.View.SnapshotSize()}
	if _, err := cp.View.SaveDelta(s.base, fw); err != nil {
		f.Close()
		// Best-effort cleanup before falling back; a leftover tmp file is
		// invisible to recovery and collected by the next sweep anyway.
		s.fs.Remove(tmp)
		return 0, 0, err
	}
	if err := s.publish(f, tmp, s.deltaPath(cp.Gen)); err != nil {
		return 0, 0, err
	}
	return fw.off, fw.crc.Sum32(), nil
}

// publish fsyncs and closes a staged payload file, renames it into place,
// and syncs the directory.
func (s *Store) publish(f vfs.File, tmp, final string) error {
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return err
	}
	return s.fs.Sync()
}

// sweep enforces retention: the newest retain committed generations —
// plus, chain-safety, every base a kept delta transitively references,
// and every generation in extraKeep (the chain recovery just composed,
// which may sit outside the retain window after a fall-back) — survive;
// everything else goes: older generations, stale temp files, and payloads
// with no manifest (a crash between the two renames leaves one).
func (s *Store) sweep(extraKeep []int64) error {
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return err
	}
	committed := make(map[int64]bool)
	var gens []int64
	for _, e := range ents {
		if gen, ext, ok := parseGen(e.Name); ok && ext == "meta" {
			committed[gen] = true
			gens = append(gens, gen)
		}
	}
	// Chain links: which base each committed delta applies on. A manifest
	// that cannot be read or decoded links nowhere — its generation is
	// retained or dropped purely by position.
	baseOf := make(map[int64]int64)
	for _, gen := range gens {
		if data, err := vfs.ReadFile(s.fs, s.metaPath(gen)); err == nil {
			if m, err := decodeManifest(data); err == nil && m.Kind == KindDelta {
				baseOf[gen] = m.BaseGen
			}
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	keep := make(map[int64]bool)
	keepChain := func(gen int64) {
		for !keep[gen] {
			keep[gen] = true
			base, ok := baseOf[gen]
			if !ok {
				return
			}
			gen = base
		}
	}
	for i, gen := range gens {
		if i < s.retain {
			keepChain(gen)
		}
	}
	for _, gen := range extraKeep {
		if committed[gen] {
			keepChain(gen)
		}
	}
	var first error
	for _, e := range ents {
		var drop bool
		switch gen, ext, ok := parseGen(e.Name); {
		case strings.HasPrefix(e.Name, "tmp-"):
			drop = true
		case ok && ext == "meta":
			drop = !keep[gen]
		case ok && (ext == "db" || ext == "delta"):
			drop = !keep[gen] || !committed[gen]
		}
		if drop {
			if err := s.fs.Remove(vfs.Join(s.dir, e.Name)); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Skip reports one generation recovery could not use, and why. Class is
// the machine-readable bucket for metrics — one of "manifest" (the
// manifest itself was unreadable or corrupt), "payload" (a snapshot or
// delta failed its size/CRC/decode checks), "chain_base" (the candidate
// was fine but a generation its delta chain rests on was not), "orphan"
// (a payload with no manifest: the checkpoint never committed),
// "root_mismatch" (the VerifyProofs hook rejected a CRC-valid manifest),
// or "other".
type Skip struct {
	Gen    int64
	Reason string
	Class  string
}

// Skip classes.
const (
	SkipManifest     = "manifest"
	SkipPayload      = "payload"
	SkipChainBase    = "chain_base"
	SkipOrphan       = "orphan"
	SkipRootMismatch = "root_mismatch"
	SkipOther        = "other"
)

// classedErr tags an error with a Skip class. errors.As finds the
// outermost tag, so wrapping an already-classed error reclassifies it —
// loadChain uses that to turn any inner failure into "chain_base" when
// it happened below the candidate generation itself.
type classedErr struct {
	class string
	err   error
}

func (e *classedErr) Error() string { return e.err.Error() }
func (e *classedErr) Unwrap() error { return e.err }

func classed(class string, err error) error {
	return &classedErr{class: class, err: err}
}

func classOf(err error) string {
	var ce *classedErr
	if errors.As(err, &ce) {
		return ce.class
	}
	return SkipOther
}

// Recovered is the outcome of Load. DB is nil when no usable generation
// exists (an empty or brand-new store, or every generation corrupt — the
// caller then starts from an empty database and byte zero of every log);
// Skipped lists every generation that was present but rejected, newest
// first.
type Recovered struct {
	DB      *waldo.DB
	Gen     int64
	Records int64
	// SnapshotBytes is the payload bytes recovery actually read: the full
	// snapshot plus every delta composed on top of it.
	SnapshotBytes int64
	// Chain lists the generations composed into DB, newest first; a full
	// generation recovers as a chain of one.
	Chain   []int64
	Volumes []waldo.VolumeState
	// Proofs are the recovered manifest's signed MMR root statements,
	// verbatim (empty for a v1/v2 generation or when tamper evidence is
	// off). When the store's VerifyProofs hook is set they have already
	// been checked; recovery then re-verifies the root against the live
	// log before serving.
	Proofs  []Proof
	Skipped []Skip
	// Missing is filled by restore helpers (pass.Machine.Recover) with the
	// names of checkpointed volumes that had no attached counterpart.
	Missing []string
	// SweepErr reports a failure of the housekeeping sweep a successful
	// Load runs (collecting temp files and orphaned payloads left by
	// crashes); recovery itself succeeded.
	SweepErr error
}

// ResumeBytes sums the recovered offsets across volumes: the log bytes a
// post-recovery drain skips.
func (r *Recovered) ResumeBytes() int64 {
	var n int64
	for i := range r.Volumes {
		n += r.Volumes[i].ResumeBytes()
	}
	return n
}

// Load recovers from the newest valid checkpoint generation, composing
// its base+delta chain and falling back across corrupt candidates (bad
// magic or CRC, truncated payload or manifest, missing files, a delta
// whose base is gone) rather than failing: a half-written or bit-rotted
// generation costs only the fallback — ultimately to the newest intact
// full generation — never a panic or a half-loaded database. A
// successful recovery ends with a housekeeping sweep (reported in
// SweepErr, never as a Load failure), so temp files and orphaned
// payloads left by repeated crash→recover cycles cannot accumulate. The
// returned error is reserved for the directory itself being unreadable.
func (s *Store) Load() (*Recovered, error) {
	rec := &Recovered{}
	ents, err := s.fs.ReadDir(s.dir)
	if errors.Is(err, vfs.ErrNotExist) {
		return rec, nil
	}
	if err != nil {
		return nil, err
	}
	var gens, orphans []int64
	committed := make(map[int64]bool)
	for _, e := range ents {
		if gen, ext, ok := parseGen(e.Name); ok && ext == "meta" {
			gens = append(gens, gen)
			committed[gen] = true
		}
	}
	for _, e := range ents {
		if gen, ext, ok := parseGen(e.Name); ok && (ext == "db" || ext == "delta") && !committed[gen] {
			orphans = append(orphans, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	for _, gen := range gens {
		db, m, chain, totalBytes, err := s.loadChain(gen)
		if err == nil && s.VerifyProofs != nil {
			if perr := s.VerifyProofs(m); perr != nil {
				err = classed(SkipRootMismatch, perr)
			}
		}
		if err != nil {
			rec.Skipped = append(rec.Skipped, Skip{Gen: gen, Reason: err.Error(), Class: classOf(err)})
			continue
		}
		db.RestoreGen(m.Gen)
		rec.DB = db
		rec.Gen = m.Gen
		rec.Records = m.Records
		rec.SnapshotBytes = totalBytes
		rec.Chain = chain
		rec.Volumes = m.Volumes
		rec.Proofs = m.Proofs
		break
	}
	// An orphaned payload (no manifest) is a checkpoint that crashed
	// between its two renames. It is invisible to recovery; report it only
	// when it is newer than everything recovered — an orphan superseded by
	// a committed generation lost nothing and would read as a recovery
	// problem that never happened.
	for _, gen := range orphans {
		if rec.DB == nil || gen > rec.Gen {
			rec.Skipped = append(rec.Skipped, Skip{Gen: gen, Reason: "missing manifest (checkpoint did not commit)", Class: SkipOrphan})
		}
	}
	if rec.DB != nil {
		rec.SweepErr = s.sweep(rec.Chain)
	}
	return rec, nil
}

// loadChain loads generation gen, following delta base links down to a
// full generation and composing the chain oldest-first. It returns the
// head manifest (whose counters and volume offsets describe the composed
// state), the generations composed (newest first) and the total payload
// bytes read. Any unreadable link fails the whole candidate.
func (s *Store) loadChain(gen int64) (*waldo.DB, *Manifest, []int64, int64, error) {
	var (
		head   *Manifest
		chain  []int64
		deltas [][]byte
		total  int64
	)
	cur := gen
	for {
		m, payload, err := s.readGen(cur)
		if err != nil {
			if cur != gen {
				// Reclassify: the candidate itself was fine, a link its
				// chain rests on was not (outermost class wins).
				err = classed(SkipChainBase, fmt.Errorf("chain base gen %d: %v", cur, err))
			}
			return nil, nil, nil, 0, err
		}
		if head == nil {
			head = m
		}
		chain = append(chain, cur)
		total += int64(len(payload))
		if m.Kind == KindFull {
			// Deltas were collected walking newest→oldest; apply them
			// oldest→newest on top of the full image.
			for i, j := 0, len(deltas)-1; i < j; i, j = i+1, j-1 {
				deltas[i], deltas[j] = deltas[j], deltas[i]
			}
			db, err := waldo.LoadCheckpointChain(payload, deltas, head.Records, head.ProvBytes, head.IdxBytes)
			if err != nil {
				return nil, nil, nil, 0, classed(SkipPayload, fmt.Errorf("snapshot: %w", err))
			}
			return db, head, chain, total, nil
		}
		deltas = append(deltas, payload)
		// decodeManifest guarantees BaseGen < Gen for deltas, so the walk
		// strictly descends and must terminate.
		cur = m.BaseGen
	}
}

// readGen reads and integrity-checks one generation's manifest and
// payload: exact-size read, one CRC pass, nothing trusted before the
// whole payload validates.
func (s *Store) readGen(gen int64) (*Manifest, []byte, error) {
	metaData, err := vfs.ReadFile(s.fs, s.metaPath(gen))
	if err != nil {
		return nil, nil, classed(SkipManifest, fmt.Errorf("manifest: %w", err))
	}
	m, err := decodeManifest(metaData)
	if err != nil {
		return nil, nil, classed(SkipManifest, err)
	}
	if m.Gen != gen {
		return nil, nil, classed(SkipManifest, fmt.Errorf("%w: manifest gen %d under name gen %d", ErrBadManifest, m.Gen, gen))
	}
	label := "snapshot"
	if m.Kind == KindDelta {
		label = "delta"
	}
	f, err := s.fs.Open(s.payloadPath(gen, m.Kind), vfs.ORdOnly)
	if err != nil {
		return nil, nil, classed(SkipPayload, fmt.Errorf("%s: %w", label, err))
	}
	defer f.Close()
	if size := f.Size(); size != m.SnapSize {
		return nil, nil, classed(SkipPayload, fmt.Errorf("%s: %d bytes, manifest says %d", label, size, m.SnapSize))
	}
	buf := make([]byte, m.SnapSize)
	if n, err := f.ReadAt(buf, 0); err != nil || int64(n) != m.SnapSize {
		return nil, nil, classed(SkipPayload, fmt.Errorf("%s: read %d of %d bytes: %v", label, n, m.SnapSize, err))
	}
	if got := crc32.ChecksumIEEE(buf); got != m.SnapCRC {
		return nil, nil, classed(SkipPayload, fmt.Errorf("%s: CRC mismatch (%08x != %08x)", label, got, m.SnapCRC))
	}
	return m, buf, nil
}

// ReadManifest decodes one committed generation's manifest without
// touching its payload — the offline verifier's view of the signed root
// statements a generation carries.
func (s *Store) ReadManifest(gen int64) (*Manifest, error) {
	data, err := vfs.ReadFile(s.fs, s.metaPath(gen))
	if err != nil {
		return nil, err
	}
	m, err := decodeManifest(data)
	if err != nil {
		return nil, err
	}
	if m.Gen != gen {
		return nil, fmt.Errorf("%w: manifest gen %d under name gen %d", ErrBadManifest, m.Gen, gen)
	}
	return m, nil
}

// VerifyGen integrity-checks one generation end to end — manifest decode
// plus payload size and CRC — and returns its manifest. It does not
// compose chains or verify signatures; it is the per-generation bit-rot
// check the offline verifier runs across the whole store.
func (s *Store) VerifyGen(gen int64) (*Manifest, error) {
	m, _, err := s.readGen(gen)
	return m, err
}

// Generations lists the committed (manifest-bearing) generations, newest
// first. Validation is Load's job; this is directory inventory for tests
// and tools.
func (s *Store) Generations() ([]int64, error) {
	ents, err := s.fs.ReadDir(s.dir)
	if errors.Is(err, vfs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var gens []int64
	for _, e := range ents {
		if gen, ext, ok := parseGen(e.Name); ok && ext == "meta" {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	return gens, nil
}

// fileWriter adapts a vfs.File to io.Writer, tracking offset and CRC.
// A nonzero limit aborts the stream with errDeltaTooBig once it would
// reach limit bytes — the delta write path's early exit, saving the I/O
// of finishing a payload the size check would discard anyway.
type fileWriter struct {
	f     vfs.File
	off   int64
	limit int64
	crc   hash.Hash32
}

func (w *fileWriter) Write(p []byte) (int, error) {
	if w.limit > 0 && w.off+int64(len(p)) >= w.limit {
		return 0, errDeltaTooBig
	}
	n, err := w.f.WriteAt(p, w.off)
	w.off += int64(n)
	w.crc.Write(p[:n])
	return n, err
}
