package checkpoint

import (
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"

	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// DefaultRetain is how many checkpoint generations a store keeps when the
// caller does not say: the newest to recover from, plus fallbacks should
// it prove corrupt.
const DefaultRetain = 3

// Store reads and writes checkpoints in one directory of an FS. Methods
// are not safe for concurrent use with each other; the daemon serializes
// them behind its checkpointer mutex.
type Store struct {
	fs     vfs.FS
	dir    string
	retain int
}

// NewStore opens (creating if needed) a checkpoint directory on fs.
// retain <= 0 means DefaultRetain.
func NewStore(fs vfs.FS, dir string, retain int) (*Store, error) {
	dir = vfs.Clean(dir)
	if err := fs.MkdirAll(dir); err != nil && !errors.Is(err, vfs.ErrExist) {
		return nil, err
	}
	if retain <= 0 {
		retain = DefaultRetain
	}
	return &Store{fs: fs, dir: dir, retain: retain}, nil
}

// OpenDir opens a checkpoint store on a real OS directory — the form the
// passd daemon uses (-checkpoint-dir).
func OpenDir(path string, retain int) (*Store, error) {
	dfs, err := vfs.NewDirFS(path)
	if err != nil {
		return nil, err
	}
	return NewStore(dfs, "/", retain)
}

// Dir returns the store's directory path within its FS.
func (s *Store) Dir() string { return s.dir }

func (s *Store) snapPath(gen int64) string {
	return vfs.Join(s.dir, fmt.Sprintf("ckpt-%016x.db", uint64(gen)))
}

func (s *Store) metaPath(gen int64) string {
	return vfs.Join(s.dir, fmt.Sprintf("ckpt-%016x.meta", uint64(gen)))
}

// parseGen extracts the generation from a checkpoint file name
// ("ckpt-<gen16x>.db" / ".meta"), reporting the extension.
func parseGen(name string) (gen int64, ext string, ok bool) {
	if !strings.HasPrefix(name, "ckpt-") {
		return 0, "", false
	}
	rest := name[len("ckpt-"):]
	dot := strings.IndexByte(rest, '.')
	if dot != 16 {
		return 0, "", false
	}
	n, err := strconv.ParseUint(rest[:dot], 16, 64)
	if err != nil {
		return 0, "", false
	}
	return int64(n), rest[dot+1:], true
}

// Info describes one written checkpoint.
type Info struct {
	Gen           int64
	Records       int64
	SnapshotBytes int64
}

// Write persists one checkpoint generation: snapshot then manifest, each
// through a temp file, fsync and atomic rename, with a directory sync
// after each rename. The manifest rename is the commit point. After
// committing, a retention sweep removes generations beyond the store's
// retain count, stale temp files, and orphaned snapshots.
func (s *Store) Write(cp *waldo.CheckpointState) (Info, error) {
	info := Info{Gen: cp.Gen, Records: cp.Records}

	// Snapshot.
	snapTmp := vfs.Join(s.dir, fmt.Sprintf("tmp-ckpt-%016x.db", uint64(cp.Gen)))
	f, err := s.fs.Open(snapTmp, vfs.OCreate|vfs.ORdWr|vfs.OTrunc)
	if err != nil {
		return info, err
	}
	fw := &fileWriter{f: f, crc: crc32.NewIEEE()}
	if err := cp.View.Save(fw); err != nil {
		f.Close()
		return info, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return info, err
	}
	if err := f.Close(); err != nil {
		return info, err
	}
	if err := s.fs.Rename(snapTmp, s.snapPath(cp.Gen)); err != nil {
		return info, err
	}
	if err := s.fs.Sync(); err != nil {
		return info, err
	}
	info.SnapshotBytes = fw.off

	// Manifest — the commit point.
	_, provBytes, idxBytes := cp.View.Stats()
	meta := encodeManifest(&manifest{
		Gen:       cp.Gen,
		Records:   cp.Records,
		ProvBytes: provBytes,
		IdxBytes:  idxBytes,
		SnapSize:  fw.off,
		SnapCRC:   fw.crc.Sum32(),
		Volumes:   cp.Volumes,
	})
	metaTmp := vfs.Join(s.dir, fmt.Sprintf("tmp-ckpt-%016x.meta", uint64(cp.Gen)))
	f, err = s.fs.Open(metaTmp, vfs.OCreate|vfs.ORdWr|vfs.OTrunc)
	if err != nil {
		return info, err
	}
	if _, err := f.WriteAt(meta, 0); err != nil {
		f.Close()
		return info, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return info, err
	}
	if err := f.Close(); err != nil {
		return info, err
	}
	if err := s.fs.Rename(metaTmp, s.metaPath(cp.Gen)); err != nil {
		return info, err
	}
	if err := s.fs.Sync(); err != nil {
		return info, err
	}

	if err := s.sweep(); err != nil {
		return info, err
	}
	return info, nil
}

// sweep enforces retention: keep the newest retain committed generations;
// remove older generations, stale temp files, and snapshots with no
// manifest (a crash between the two renames leaves one).
func (s *Store) sweep() error {
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return err
	}
	committed := make(map[int64]bool)
	var gens []int64
	for _, e := range ents {
		if gen, ext, ok := parseGen(e.Name); ok && ext == "meta" {
			committed[gen] = true
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	keep := make(map[int64]bool)
	for i, gen := range gens {
		if i < s.retain {
			keep[gen] = true
		}
	}
	var first error
	for _, e := range ents {
		var drop bool
		switch gen, ext, ok := parseGen(e.Name); {
		case strings.HasPrefix(e.Name, "tmp-"):
			drop = true
		case ok && ext == "meta":
			drop = !keep[gen]
		case ok && ext == "db":
			drop = !keep[gen] || !committed[gen]
		}
		if drop {
			if err := s.fs.Remove(vfs.Join(s.dir, e.Name)); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Skip reports one generation recovery could not use, and why.
type Skip struct {
	Gen    int64
	Reason string
}

// Recovered is the outcome of Load. DB is nil when no usable generation
// exists (an empty or brand-new store, or every generation corrupt — the
// caller then starts from an empty database and byte zero of every log);
// Skipped lists every generation that was present but rejected, newest
// first.
type Recovered struct {
	DB            *waldo.DB
	Gen           int64
	Records       int64
	SnapshotBytes int64
	Volumes       []waldo.VolumeState
	Skipped       []Skip
	// Missing is filled by restore helpers (pass.Machine.Recover) with the
	// names of checkpointed volumes that had no attached counterpart.
	Missing []string
}

// ResumeBytes sums the recovered offsets across volumes: the log bytes a
// post-recovery drain skips.
func (r *Recovered) ResumeBytes() int64 {
	var n int64
	for i := range r.Volumes {
		n += r.Volumes[i].ResumeBytes()
	}
	return n
}

// Load recovers from the newest valid checkpoint generation, falling back
// across corrupt ones (bad magic or CRC, truncated snapshot or manifest,
// missing files) rather than failing: a half-written or bit-rotted
// generation costs only the fallback, never a panic or a half-loaded
// database. The returned error is reserved for the directory itself being
// unreadable.
func (s *Store) Load() (*Recovered, error) {
	rec := &Recovered{}
	ents, err := s.fs.ReadDir(s.dir)
	if errors.Is(err, vfs.ErrNotExist) {
		return rec, nil
	}
	if err != nil {
		return nil, err
	}
	var gens []int64
	committed := make(map[int64]bool)
	for _, e := range ents {
		if gen, ext, ok := parseGen(e.Name); ok && ext == "meta" {
			gens = append(gens, gen)
			committed[gen] = true
		}
	}
	// An orphaned snapshot (no manifest) is a checkpoint that crashed
	// between its two renames: invisible to recovery, but worth reporting.
	for _, e := range ents {
		if gen, ext, ok := parseGen(e.Name); ok && ext == "db" && !committed[gen] {
			rec.Skipped = append(rec.Skipped, Skip{Gen: gen, Reason: "missing manifest (checkpoint did not commit)"})
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	for _, gen := range gens {
		db, m, snapBytes, err := s.loadGen(gen)
		if err != nil {
			rec.Skipped = append(rec.Skipped, Skip{Gen: gen, Reason: err.Error()})
			continue
		}
		db.RestoreGen(m.Gen)
		rec.DB = db
		rec.Gen = m.Gen
		rec.Records = m.Records
		rec.SnapshotBytes = snapBytes
		rec.Volumes = m.Volumes
		return rec, nil
	}
	return rec, nil
}

// loadGen loads and fully validates one generation.
func (s *Store) loadGen(gen int64) (*waldo.DB, *manifest, int64, error) {
	metaData, err := vfs.ReadFile(s.fs, s.metaPath(gen))
	if err != nil {
		return nil, nil, 0, fmt.Errorf("manifest: %w", err)
	}
	m, err := decodeManifest(metaData)
	if err != nil {
		return nil, nil, 0, err
	}
	if m.Gen != gen {
		return nil, nil, 0, fmt.Errorf("%w: manifest gen %d under name gen %d", ErrBadManifest, m.Gen, gen)
	}
	f, err := s.fs.Open(s.snapPath(gen), vfs.ORdOnly)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	if size := f.Size(); size != m.SnapSize {
		return nil, nil, 0, fmt.Errorf("snapshot: %d bytes, manifest says %d", size, m.SnapSize)
	}
	// One exact-size read, one CRC pass, then an in-place parse: the
	// snapshot is validated whole before a single pair is trusted.
	buf := make([]byte, m.SnapSize)
	if n, err := f.ReadAt(buf, 0); err != nil || int64(n) != m.SnapSize {
		return nil, nil, 0, fmt.Errorf("snapshot: read %d of %d bytes: %v", n, m.SnapSize, err)
	}
	if got := crc32.ChecksumIEEE(buf); got != m.SnapCRC {
		return nil, nil, 0, fmt.Errorf("snapshot: CRC mismatch (%08x != %08x)", got, m.SnapCRC)
	}
	db, err := waldo.LoadCheckpoint(buf, m.Records, m.ProvBytes, m.IdxBytes)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("snapshot: %w", err)
	}
	return db, m, m.SnapSize, nil
}

// Generations lists the committed (manifest-bearing) generations, newest
// first. Validation is Load's job; this is directory inventory for tests
// and tools.
func (s *Store) Generations() ([]int64, error) {
	ents, err := s.fs.ReadDir(s.dir)
	if errors.Is(err, vfs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var gens []int64
	for _, e := range ents {
		if gen, ext, ok := parseGen(e.Name); ok && ext == "meta" {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	return gens, nil
}

// fileWriter adapts a vfs.File to io.Writer, tracking offset and CRC.
type fileWriter struct {
	f   vfs.File
	off int64
	crc hash.Hash32
}

func (w *fileWriter) Write(p []byte) (int, error) {
	n, err := w.f.WriteAt(p, w.off)
	w.off += int64(n)
	w.crc.Write(p[:n])
	return n, err
}
