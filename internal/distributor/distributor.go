// Package distributor implements the PASSv2 distributor (§5.5): processes,
// pipes, non-PASS files and application phantom objects are first-class
// provenance objects, but they are not persistent objects on a
// PASS-enabled volume, so their provenance has nowhere obvious to live.
// The distributor caches it until one of the objects becomes part of the
// ancestry of a persistent object — at which point the cached records are
// materialized to that object's volume — or until pass_sync forces them
// out to a hinted volume.
package distributor

import (
	"errors"
	"fmt"
	"sync"

	"passv2/internal/pnode"
	"passv2/internal/record"
)

// Sink is a PASS volume that can accept materialized provenance (a Lasagna
// volume locally; the PA-NFS client forwards to the server's volume).
type Sink interface {
	FSName() string
	VolumeID() uint16
	AppendProvenance(recs []record.Record) error
}

// ErrNoVolume reports a pass_sync for an object with no assigned or hinted
// volume and no default volume configured.
var ErrNoVolume = errors.New("distributor: no PASS volume to store provenance")

type objCache struct {
	recs    []record.Record
	flushed int    // prefix of recs already materialized
	sink    Sink   // assigned volume, nil until first materialization
	hint    uint16 // preferred volume from pass_mkobj
}

// Distributor caches and routes provenance for transient objects.
type Distributor struct {
	transientPrefix uint16

	mu       sync.Mutex
	sinks    map[uint16]Sink
	defSink  Sink
	objs     map[pnode.PNode]*objCache
	cachedN  int64
	flushedN int64
}

// New creates a distributor. transientPrefix is the kernel's transient
// pnode space; every other prefix is assumed persistent.
func New(transientPrefix uint16) *Distributor {
	return &Distributor{
		transientPrefix: transientPrefix,
		sinks:           make(map[uint16]Sink),
		objs:            make(map[pnode.PNode]*objCache),
	}
}

// RegisterSink makes a PASS volume available for materialization.
func (d *Distributor) RegisterSink(s Sink) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sinks[s.VolumeID()] = s
	if d.defSink == nil {
		d.defSink = s
	}
}

// SetDefaultSink chooses the volume used when pass_sync has no better
// information.
func (d *Distributor) SetDefaultSink(s Sink) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.defSink = s
}

// IsTransient reports whether a pnode lives in the transient space.
func (d *Distributor) IsTransient(pn pnode.PNode) bool {
	return pnode.VolumePrefix(pn) == d.transientPrefix
}

// SetHint records the preferred volume for a transient object (the volume
// argument of pass_mkobj).
func (d *Distributor) SetHint(pn pnode.PNode, volumeID uint16) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cacheFor(pn).hint = volumeID
}

func (d *Distributor) cacheFor(pn pnode.PNode) *objCache {
	c, ok := d.objs[pn]
	if !ok {
		c = &objCache{}
		d.objs[pn] = c
	}
	return c
}

// Cache stores records whose subjects are transient objects.
func (d *Distributor) Cache(recs ...record.Record) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range recs {
		c := d.cacheFor(r.Subject.PNode)
		c.recs = append(c.recs, r)
		d.cachedN++
		// An already-materialized object keeps its provenance flowing to
		// its assigned volume as it accumulates more.
		if c.sink != nil {
			// Materialize eagerly: the object is known to matter.
			d.flushLocked(r.Subject.PNode, c.sink, nil)
		}
	}
}

// BundleFor prepares the full WAP bundle for a pass_write to sink: the
// given records plus the materialized closure of every transient ancestor
// they reference, ancestors first. The closure records are marked flushed
// (assigned to sink) so they are never written twice.
func (d *Distributor) BundleFor(sink Sink, recs []record.Record) *record.Bundle {
	d.mu.Lock()
	defer d.mu.Unlock()
	b := &record.Bundle{}
	seen := make(map[pnode.PNode]bool)
	for _, r := range recs {
		if dep, ok := r.Value.AsRef(); ok {
			d.closureLocked(sink, dep.PNode, b, seen)
		}
		b.Add(r)
	}
	return b
}

// closureLocked appends the unflushed cached records of pn (and its
// transient ancestors, depth-first) to b, assigning pn to sink. Objects
// assigned to a different volume get their tail flushed there instead.
func (d *Distributor) closureLocked(sink Sink, pn pnode.PNode, b *record.Bundle, seen map[pnode.PNode]bool) {
	if !d.IsTransient(pn) || seen[pn] {
		return
	}
	seen[pn] = true
	c, ok := d.objs[pn]
	if !ok {
		return
	}
	if c.sink != nil && c.sink != sink {
		// Assigned elsewhere: its provenance lives on that volume.
		d.flushLocked(pn, c.sink, seen)
		return
	}
	c.sink = sink
	pendingStart := c.flushed
	c.flushed = len(c.recs)
	for _, r := range c.recs[pendingStart:] {
		if dep, ok := r.Value.AsRef(); ok {
			d.closureLocked(sink, dep.PNode, b, seen)
		}
		b.Add(r)
		d.flushedN++
	}
}

// flushLocked writes pn's unflushed records (with transitive closure) to
// its assigned sink directly.
func (d *Distributor) flushLocked(pn pnode.PNode, sink Sink, seen map[pnode.PNode]bool) error {
	if seen == nil {
		seen = make(map[pnode.PNode]bool)
	}
	b := &record.Bundle{}
	c := d.objs[pn]
	if c == nil {
		return nil
	}
	// Temporarily un-mark to reuse closureLocked's logic.
	if c.sink == nil {
		c.sink = sink
	}
	pendingStart := c.flushed
	c.flushed = len(c.recs)
	for _, r := range c.recs[pendingStart:] {
		if dep, ok := r.Value.AsRef(); ok {
			d.closureLocked(sink, dep.PNode, b, seen)
		}
		b.Add(r)
		d.flushedN++
	}
	if b.Empty() {
		return nil
	}
	return sink.AppendProvenance(b.Records)
}

// Sync is pass_sync: force a transient object's provenance (and ancestor
// closure) to persistent storage even though nothing persistent depends on
// it yet.
func (d *Distributor) Sync(pn pnode.PNode) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := d.cacheFor(pn)
	sink := c.sink
	if sink == nil {
		if s, ok := d.sinks[c.hint]; ok {
			sink = s
		} else {
			sink = d.defSink
		}
	}
	if sink == nil {
		return fmt.Errorf("%w: object %v", ErrNoVolume, pn)
	}
	return d.flushLocked(pn, sink, nil)
}

// Drop discards the cached, unflushed provenance of a transient object
// (the drop_inode path: an unlinked non-PASS file that never entered any
// persistent ancestry needs no provenance).
func (d *Distributor) Drop(pn pnode.PNode) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.objs[pn]
	if !ok {
		return
	}
	if c.sink == nil {
		delete(d.objs, pn)
		return
	}
	// Already materialized somewhere: keep the cache bookkeeping, drop
	// only the unflushed tail.
	c.recs = c.recs[:c.flushed]
}

// Pending reports how many cached records remain unflushed for pn.
func (d *Distributor) Pending(pn pnode.PNode) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.objs[pn]
	if !ok {
		return 0
	}
	return len(c.recs) - c.flushed
}

// Stats reports total records cached and materialized.
func (d *Distributor) Stats() (cached, flushed int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cachedN, d.flushedN
}

// AssignedVolume reports the volume an object's provenance lives on, if
// materialized.
func (d *Distributor) AssignedVolume(pn pnode.PNode) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.objs[pn]
	if !ok || c.sink == nil {
		return "", false
	}
	return c.sink.FSName(), true
}
