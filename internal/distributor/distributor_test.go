package distributor

import (
	"errors"
	"testing"

	"passv2/internal/pnode"
	"passv2/internal/record"
)

const transientPrefix = 0xFFFF

// fakeSink collects materialized provenance.
type fakeSink struct {
	name string
	id   uint16
	recs []record.Record
}

func (s *fakeSink) FSName() string   { return s.name }
func (s *fakeSink) VolumeID() uint16 { return s.id }
func (s *fakeSink) AppendProvenance(recs []record.Record) error {
	s.recs = append(s.recs, recs...)
	return nil
}

func transient(n uint64, v uint32) pnode.Ref {
	return pnode.Ref{PNode: pnode.PNode(uint64(transientPrefix)<<48 | n), Version: pnode.Version(v)}
}

func persistent(vol uint16, n uint64, v uint32) pnode.Ref {
	return pnode.Ref{PNode: pnode.PNode(uint64(vol)<<48 | n), Version: pnode.Version(v)}
}

func TestIsTransient(t *testing.T) {
	d := New(transientPrefix)
	if !d.IsTransient(transient(1, 1).PNode) {
		t.Fatal("transient not recognized")
	}
	if d.IsTransient(persistent(1, 1, 1).PNode) {
		t.Fatal("persistent misclassified")
	}
}

func TestBundleForMaterializesAncestorClosure(t *testing.T) {
	d := New(transientPrefix)
	sink := &fakeSink{name: "vol1", id: 1}
	d.RegisterSink(sink)

	proc := transient(10, 1)
	parent := transient(11, 1)
	file := persistent(1, 100, 1)

	// Cached: parent's identity, proc's identity + dependency on parent.
	d.Cache(record.New(parent, record.AttrName, record.StringVal("sh")))
	d.Cache(record.New(proc, record.AttrName, record.StringVal("cc")))
	d.Cache(record.Input(proc, parent))

	// Now the file (persistent) depends on proc: the write's bundle must
	// carry proc's and parent's records, ancestors first.
	wr := record.Input(file, proc)
	b := d.BundleFor(sink, []record.Record{wr})

	if b.Len() != 4 {
		t.Fatalf("bundle = %v", b)
	}
	// parent's record must precede proc's dependency on it; the file
	// record must be last.
	idx := map[string]int{}
	for i, r := range b.Records {
		idx[r.String()] = i
	}
	if !(idx[record.New(parent, record.AttrName, record.StringVal("sh")).String()] <
		idx[record.Input(proc, parent).String()]) {
		t.Fatalf("ancestor ordering violated: %v", b)
	}
	if b.Records[b.Len()-1].String() != wr.String() {
		t.Fatalf("referencing record not last: %v", b)
	}
	if vol, ok := d.AssignedVolume(proc.PNode); !ok || vol != "vol1" {
		t.Fatalf("proc not assigned: %q %v", vol, ok)
	}
}

func TestBundleForNeverFlushesTwice(t *testing.T) {
	d := New(transientPrefix)
	sink := &fakeSink{name: "vol1", id: 1}
	d.RegisterSink(sink)
	proc := transient(10, 1)
	file := persistent(1, 100, 1)
	d.Cache(record.New(proc, record.AttrArgv, record.StringVal("cc a.c")))

	b1 := d.BundleFor(sink, []record.Record{record.Input(file, proc)})
	if b1.Len() != 2 {
		t.Fatalf("first bundle = %v", b1)
	}
	b2 := d.BundleFor(sink, []record.Record{record.Input(pnode.Ref{PNode: file.PNode, Version: 2}, proc)})
	if b2.Len() != 1 {
		t.Fatalf("second bundle re-flushed the closure: %v", b2)
	}
}

func TestLateRecordsFlowToAssignedVolume(t *testing.T) {
	d := New(transientPrefix)
	sink := &fakeSink{name: "vol1", id: 1}
	d.RegisterSink(sink)
	proc := transient(10, 1)
	file := persistent(1, 100, 1)
	d.Cache(record.New(proc, record.AttrName, record.StringVal("cc")))
	d.BundleFor(sink, []record.Record{record.Input(file, proc)})

	// Once materialized, further provenance of the proc is forwarded
	// eagerly to its assigned volume.
	late := record.Input(proc, persistent(1, 101, 1))
	d.Cache(late)
	if len(sink.recs) == 0 || !sink.recs[len(sink.recs)-1].Equal(late) {
		t.Fatalf("late record not forwarded: %v", sink.recs)
	}
	if d.Pending(proc.PNode) != 0 {
		t.Fatal("late record left pending")
	}
}

func TestCrossVolumeAncestorStaysOnItsVolume(t *testing.T) {
	d := New(transientPrefix)
	vol1 := &fakeSink{name: "vol1", id: 1}
	vol2 := &fakeSink{name: "vol2", id: 2}
	d.RegisterSink(vol1)
	d.RegisterSink(vol2)

	proc := transient(10, 1)
	d.Cache(record.New(proc, record.AttrName, record.StringVal("cp")))

	// First the proc's provenance lands on vol1...
	d.BundleFor(vol1, []record.Record{record.Input(persistent(1, 100, 1), proc)})
	// ...then the proc writes to vol2. Its new records go to vol1 (its
	// assigned volume), not into vol2's bundle.
	d.Cache(record.Input(proc, persistent(2, 200, 1)))
	// Reset pending state by caching something unflushed first.
	b := d.BundleFor(vol2, []record.Record{record.Input(persistent(2, 201, 1), proc)})
	if b.Len() != 1 {
		t.Fatalf("vol2 bundle should only carry its own record: %v", b)
	}
	if vol, _ := d.AssignedVolume(proc.PNode); vol != "vol1" {
		t.Fatal("assignment moved")
	}
}

func TestSyncUsesHintThenDefault(t *testing.T) {
	d := New(transientPrefix)
	vol1 := &fakeSink{name: "vol1", id: 1}
	vol2 := &fakeSink{name: "vol2", id: 2}
	d.RegisterSink(vol1) // becomes default
	d.RegisterSink(vol2)

	sess := transient(30, 1)
	d.SetHint(sess.PNode, 2)
	d.Cache(record.New(sess, record.AttrType, record.StringVal(record.TypeSession)))
	if err := d.Sync(sess.PNode); err != nil {
		t.Fatal(err)
	}
	if len(vol2.recs) != 1 || len(vol1.recs) != 0 {
		t.Fatalf("hint ignored: vol1=%d vol2=%d", len(vol1.recs), len(vol2.recs))
	}

	other := transient(31, 1)
	d.Cache(record.New(other, record.AttrType, record.StringVal(record.TypeDataset)))
	if err := d.Sync(other.PNode); err != nil {
		t.Fatal(err)
	}
	if len(vol1.recs) != 1 {
		t.Fatal("default sink not used")
	}
}

func TestSyncWithoutAnyVolumeFails(t *testing.T) {
	d := New(transientPrefix)
	obj := transient(1, 1)
	d.Cache(record.New(obj, record.AttrType, record.StringVal("X")))
	if err := d.Sync(obj.PNode); !errors.Is(err, ErrNoVolume) {
		t.Fatalf("want ErrNoVolume, got %v", err)
	}
}

func TestDropDiscardsUnflushedOnly(t *testing.T) {
	d := New(transientPrefix)
	sink := &fakeSink{name: "vol1", id: 1}
	d.RegisterSink(sink)
	tmp := transient(40, 1)
	d.Cache(record.New(tmp, record.AttrName, record.StringVal("/tmp/x")))
	d.Drop(tmp.PNode)
	if d.Pending(tmp.PNode) != 0 {
		t.Fatal("drop left records pending")
	}
	// Dropped object's provenance never materializes.
	b := d.BundleFor(sink, []record.Record{record.Input(persistent(1, 1, 1), tmp)})
	if b.Len() != 1 {
		t.Fatalf("dropped provenance leaked: %v", b)
	}
	// Dropping an unknown object is a no-op.
	d.Drop(transient(41, 1).PNode)
}

func TestDiamondClosureEmittedOnce(t *testing.T) {
	d := New(transientPrefix)
	sink := &fakeSink{name: "vol1", id: 1}
	d.RegisterSink(sink)
	// proc1 and proc2 both depend on parent; file depends on both.
	parent := transient(50, 1)
	p1, p2 := transient(51, 1), transient(52, 1)
	d.Cache(record.New(parent, record.AttrName, record.StringVal("sh")))
	d.Cache(record.Input(p1, parent))
	d.Cache(record.Input(p2, parent))
	file := persistent(1, 60, 1)
	b := d.BundleFor(sink, []record.Record{
		record.Input(file, p1),
		record.Input(file, p2),
	})
	count := 0
	want := record.New(parent, record.AttrName, record.StringVal("sh")).String()
	for _, r := range b.Records {
		if r.String() == want {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("parent record emitted %d times: %v", count, b)
	}
	if b.Len() != 5 {
		t.Fatalf("bundle = %v", b)
	}
}

func TestStats(t *testing.T) {
	d := New(transientPrefix)
	sink := &fakeSink{name: "v", id: 1}
	d.RegisterSink(sink)
	p := transient(1, 1)
	d.Cache(record.New(p, record.AttrName, record.StringVal("x")))
	d.BundleFor(sink, []record.Record{record.Input(persistent(1, 2, 1), p)})
	cached, flushed := d.Stats()
	if cached != 1 || flushed != 1 {
		t.Fatalf("stats = %d,%d", cached, flushed)
	}
}
