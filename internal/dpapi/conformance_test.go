package dpapi_test

import (
	"testing"

	"passv2/internal/dpapi"
	"passv2/internal/dpapi/dpapitest"
	"passv2/internal/kernel"
	"passv2/internal/lasagna"
	"passv2/internal/nfs"
	"passv2/internal/observer"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// The DPAPI is "the central API inside PASSv2" (§5.2): every layer that
// exports it must behave the same way, or layers cannot stack freely.
// The contract itself lives in passv2/internal/dpapi/dpapitest; this file
// registers the local implementations of the object and layer surfaces:
//
//   - Lasagna files and Lasagna phantom objects (local storage)
//   - PA-NFS remote files and remote phantoms (the NFS protocol)
//   - observer phantom objects (the kernel's pass_mkobj/pass_reviveobj)
//
// The remote daemon's implementation (passd.RemoteObject over protocol
// v2) runs the same suites from passv2/internal/passd.

func newVolume(t *testing.T) *lasagna.FS {
	t.Helper()
	vol, err := lasagna.New("vol", lasagna.Config{Lower: vfs.NewMemFS("lower", nil), VolumeID: 2})
	if err != nil {
		t.Fatal(err)
	}
	return vol
}

func TestConformanceObjects(t *testing.T) {
	dpapitest.RunObjects(t, []dpapitest.ObjectImpl{
		{
			Name: "lasagna-file",
			Mk: func(t *testing.T) (dpapitest.Object, func()) {
				vol := newVolume(t)
				f, err := vol.Open("/obj", vfs.OCreate|vfs.ORdWr)
				if err != nil {
					t.Fatal(err)
				}
				return f.(vfs.PassFile), func() { f.Close() }
			},
		},
		{
			Name: "lasagna-phantom",
			Mk: func(t *testing.T) (dpapitest.Object, func()) {
				vol := newVolume(t)
				ph, err := vol.PassMkobj()
				if err != nil {
					t.Fatal(err)
				}
				return ph, func() {}
			},
		},
		{
			Name: "nfs-file",
			Mk: func(t *testing.T) (dpapitest.Object, func()) {
				vol := newVolume(t)
				srv, err := nfs.NewServer(vol)
				if err != nil {
					t.Fatal(err)
				}
				c, err := nfs.DialPass(srv.Addr(), nil, nfs.DefaultNetCost())
				if err != nil {
					srv.Close()
					t.Fatal(err)
				}
				f, err := c.Open("/obj", vfs.OCreate|vfs.ORdWr)
				if err != nil {
					srv.Close()
					t.Fatal(err)
				}
				return f.(vfs.PassFile), func() { f.Close(); c.Close(); srv.Close() }
			},
		},
		{
			Name: "nfs-phantom",
			Mk: func(t *testing.T) (dpapitest.Object, func()) {
				vol := newVolume(t)
				srv, err := nfs.NewServer(vol)
				if err != nil {
					t.Fatal(err)
				}
				c, err := nfs.DialPass(srv.Addr(), nil, nfs.DefaultNetCost())
				if err != nil {
					srv.Close()
					t.Fatal(err)
				}
				ph, err := c.PassMkobj()
				if err != nil {
					srv.Close()
					t.Fatal(err)
				}
				return ph, func() { c.Close(); srv.Close() }
			},
		},
		{
			Name: "observer-phantom",
			Mk: func(t *testing.T) (dpapitest.Object, func()) {
				l, cleanup := observerLayer(t)
				obj, err := l.PassMkobj()
				if err != nil {
					cleanup()
					t.Fatal(err)
				}
				return obj, func() { obj.Close(); cleanup() }
			},
		},
	})
}

// procLayer adapts a kernel process's DPAPI syscalls (libpass, §5.1) to
// the dpapi.Layer shape the harness drives.
type procLayer struct {
	p    *kernel.Process
	hint string
}

func (l procLayer) PassMkobj() (dpapi.Object, error) { return l.p.PassMkobj(l.hint) }
func (l procLayer) PassReviveObj(ref pnode.Ref) (dpapi.Object, error) {
	return l.p.PassReviveObj(ref)
}

func observerLayer(t *testing.T) (dpapi.Layer, func()) {
	t.Helper()
	k := kernel.New(nil)
	k.Mount("/", vfs.NewMemFS("root", nil))
	vol := newVolume(t)
	k.Mount("/data", vol)
	o := observer.New(k)
	o.RegisterVolume(vol)
	p := k.Spawn(nil, "app", nil, nil)
	return procLayer{p: p, hint: "/data"}, func() {}
}

// TestConformanceLayers runs the layer contract — mkobj/revive lifecycle,
// ErrStale/ErrWrongLayer/ErrClosed — against the kernel-local phantom
// implementation. The remote implementation runs the identical suite in
// passv2/internal/passd.
func TestConformanceLayers(t *testing.T) {
	dpapitest.RunLayers(t, []dpapitest.LayerImpl{
		{Name: "observer", New: observerLayer},
	})
}

func TestDiscloseHelper(t *testing.T) {
	vol := newVolume(t)
	ph, err := vol.PassMkobj()
	if err != nil {
		t.Fatal(err)
	}
	if err := dpapi.Disclose(ph); err != nil {
		t.Fatal("empty disclose must be a no-op")
	}
	if err := dpapi.Disclose(ph, record.New(ph.Ref(), record.AttrType, record.StringVal("X"))); err != nil {
		t.Fatal(err)
	}
	recs, err := vol.LogRecords()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.Subject.PNode == ph.Ref().PNode && r.Attr == record.AttrType {
			found = true
		}
	}
	if !found {
		t.Fatal("disclosed record missing")
	}
}
