package dpapi_test

import (
	"testing"

	"passv2/internal/dpapi"
	"passv2/internal/kernel"
	"passv2/internal/lasagna"
	"passv2/internal/nfs"
	"passv2/internal/observer"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// The DPAPI is "the central API inside PASSv2" (§5.2): every layer that
// exports it must behave the same way, or layers cannot stack freely.
// This conformance suite runs one contract against every implementation
// of the object/layer surface in the repository:
//
//   - Lasagna files and Lasagna phantom objects (local storage)
//   - PA-NFS remote files and remote phantoms (the protocol)
//   - observer phantom objects (the kernel's pass_mkobj)

type objUnderTest struct {
	name string
	mk   func(t *testing.T) (obj passObj, cleanup func())
	// phantoms have no backing data limit semantics; files do.
	isPhantom bool
}

// passObj is the common surface of vfs.PassFile and dpapi.Object.
type passObj interface {
	Ref() pnode.Ref
	PassRead(p []byte, off int64) (int, pnode.Ref, error)
	PassWrite(p []byte, off int64, b *record.Bundle) (int, error)
	PassFreeze() (pnode.Version, error)
}

func implementations() []objUnderTest {
	return []objUnderTest{
		{
			name: "lasagna-file",
			mk: func(t *testing.T) (passObj, func()) {
				vol := newVolume(t)
				f, err := vol.Open("/obj", vfs.OCreate|vfs.ORdWr)
				if err != nil {
					t.Fatal(err)
				}
				return f.(vfs.PassFile), func() { f.Close() }
			},
		},
		{
			name:      "lasagna-phantom",
			isPhantom: true,
			mk: func(t *testing.T) (passObj, func()) {
				vol := newVolume(t)
				ph, err := vol.PassMkobj()
				if err != nil {
					t.Fatal(err)
				}
				return ph, func() {}
			},
		},
		{
			name: "nfs-file",
			mk: func(t *testing.T) (passObj, func()) {
				vol := newVolume(t)
				srv, err := nfs.NewServer(vol)
				if err != nil {
					t.Fatal(err)
				}
				c, err := nfs.DialPass(srv.Addr(), nil, nfs.DefaultNetCost())
				if err != nil {
					srv.Close()
					t.Fatal(err)
				}
				f, err := c.Open("/obj", vfs.OCreate|vfs.ORdWr)
				if err != nil {
					srv.Close()
					t.Fatal(err)
				}
				return f.(vfs.PassFile), func() { f.Close(); c.Close(); srv.Close() }
			},
		},
		{
			name:      "nfs-phantom",
			isPhantom: true,
			mk: func(t *testing.T) (passObj, func()) {
				vol := newVolume(t)
				srv, err := nfs.NewServer(vol)
				if err != nil {
					t.Fatal(err)
				}
				c, err := nfs.DialPass(srv.Addr(), nil, nfs.DefaultNetCost())
				if err != nil {
					srv.Close()
					t.Fatal(err)
				}
				ph, err := c.PassMkobj()
				if err != nil {
					srv.Close()
					t.Fatal(err)
				}
				return ph, func() { c.Close(); srv.Close() }
			},
		},
		{
			name:      "observer-phantom",
			isPhantom: true,
			mk: func(t *testing.T) (passObj, func()) {
				k := kernel.New(nil)
				k.Mount("/", vfs.NewMemFS("root", nil))
				vol := newVolume(t)
				k.Mount("/data", vol)
				o := observer.New(k)
				o.RegisterVolume(vol)
				p := k.Spawn(nil, "app", nil, nil)
				obj, err := p.PassMkobj("/data")
				if err != nil {
					t.Fatal(err)
				}
				return obj.(dpapi.Object), func() { obj.Close() }
			},
		},
	}
}

func newVolume(t *testing.T) *lasagna.FS {
	t.Helper()
	vol, err := lasagna.New("vol", lasagna.Config{Lower: vfs.NewMemFS("lower", nil), VolumeID: 2})
	if err != nil {
		t.Fatal(err)
	}
	return vol
}

func TestConformanceIdentityIsStable(t *testing.T) {
	for _, impl := range implementations() {
		t.Run(impl.name, func(t *testing.T) {
			obj, cleanup := impl.mk(t)
			defer cleanup()
			r1 := obj.Ref()
			if !r1.IsValid() {
				t.Fatal("fresh object must have a valid ref")
			}
			if r1.Version != 1 {
				t.Fatalf("fresh object version = %v, want 1", r1.Version)
			}
			if obj.Ref() != r1 {
				t.Fatal("Ref must be stable without writes/freezes")
			}
		})
	}
}

func TestConformanceWriteThenReadWithIdentity(t *testing.T) {
	for _, impl := range implementations() {
		t.Run(impl.name, func(t *testing.T) {
			obj, cleanup := impl.mk(t)
			defer cleanup()
			payload := []byte("dpapi-payload")
			n, err := obj.PassWrite(payload, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(payload) {
				t.Fatalf("short write: %d", n)
			}
			buf := make([]byte, 64)
			rn, ref, err := obj.PassRead(buf, 0)
			if err != nil {
				t.Fatal(err)
			}
			if string(buf[:rn]) != string(payload) {
				t.Fatalf("read back %q", buf[:rn])
			}
			if ref.PNode != obj.Ref().PNode {
				t.Fatalf("pass_read identity %v != object %v", ref, obj.Ref())
			}
		})
	}
}

func TestConformanceFreezeMonotonic(t *testing.T) {
	for _, impl := range implementations() {
		t.Run(impl.name, func(t *testing.T) {
			obj, cleanup := impl.mk(t)
			defer cleanup()
			prev := obj.Ref().Version
			for i := 0; i < 5; i++ {
				v, err := obj.PassFreeze()
				if err != nil {
					t.Fatal(err)
				}
				if v != prev+1 {
					t.Fatalf("freeze %d: version %v, want %v", i, v, prev+1)
				}
				prev = v
			}
			if obj.Ref().Version != prev {
				t.Fatalf("Ref version %v after freezes, want %v", obj.Ref().Version, prev)
			}
		})
	}
}

func TestConformanceProvenanceOnlyWrite(t *testing.T) {
	for _, impl := range implementations() {
		t.Run(impl.name, func(t *testing.T) {
			obj, cleanup := impl.mk(t)
			defer cleanup()
			dep := pnode.Ref{PNode: 0xFFFF000000000123, Version: 1}
			n, err := obj.PassWrite(nil, 0, record.NewBundle(record.Input(obj.Ref(), dep)))
			if err != nil {
				t.Fatal(err)
			}
			if n != 0 {
				t.Fatalf("provenance-only write returned n=%d", n)
			}
			// The object's data is untouched.
			buf := make([]byte, 8)
			rn, _, err := obj.PassRead(buf, 0)
			if err != nil {
				t.Fatal(err)
			}
			if rn != 0 {
				t.Fatalf("provenance-only write produced data: %q", buf[:rn])
			}
		})
	}
}

func TestConformanceOffsetWrites(t *testing.T) {
	for _, impl := range implementations() {
		t.Run(impl.name, func(t *testing.T) {
			obj, cleanup := impl.mk(t)
			defer cleanup()
			if _, err := obj.PassWrite([]byte("AA"), 0, nil); err != nil {
				t.Fatal(err)
			}
			if _, err := obj.PassWrite([]byte("BB"), 4, nil); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 6)
			n, _, err := obj.PassRead(buf, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := "AA\x00\x00BB"
			if string(buf[:n]) != want {
				t.Fatalf("sparse content %q, want %q", buf[:n], want)
			}
		})
	}
}

func TestDiscloseHelper(t *testing.T) {
	vol := newVolume(t)
	ph, err := vol.PassMkobj()
	if err != nil {
		t.Fatal(err)
	}
	if err := dpapi.Disclose(ph); err != nil {
		t.Fatal("empty disclose must be a no-op")
	}
	if err := dpapi.Disclose(ph, record.New(ph.Ref(), record.AttrType, record.StringVal("X"))); err != nil {
		t.Fatal(err)
	}
	recs, err := vol.LogRecords()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.Subject.PNode == ph.Ref().PNode && r.Attr == record.AttrType {
			found = true
		}
	}
	if !found {
		t.Fatal("disclosed record missing")
	}
}
