// Package dpapi defines the Disclosed Provenance API (DPAPI), the central
// API inside PASSv2 (§5.2). It allows transfer of provenance both among
// the components of the system and between layers: applications use it to
// disclose provenance to the kernel, the kernel uses it to send provenance
// to the file system, and an NFS client analyzer uses it to stack on a
// server analyzer.
//
// The DPAPI consists of six calls — pass_read, pass_write, pass_freeze,
// pass_mkobj, pass_reviveobj and pass_sync — plus two concepts defined in
// sibling packages: the pnode number (package pnode) and the provenance
// record (package record).
package dpapi

import (
	"errors"

	"passv2/internal/pnode"
	"passv2/internal/record"
)

// Errors shared by DPAPI implementations.
var (
	// ErrNotPassVolume reports a DPAPI call against an object on a
	// volume that is not provenance-aware.
	ErrNotPassVolume = errors.New("dpapi: not a PASS-enabled volume")
	// ErrStale reports a pass_reviveobj with a pnode the volume does not
	// know.
	ErrStale = errors.New("dpapi: stale or unknown pnode")
	// ErrWrongLayer reports an object handle passed to a layer that did
	// not create it.
	ErrWrongLayer = errors.New("dpapi: object belongs to a different layer")
	// ErrClosed reports use of a closed object handle.
	ErrClosed = errors.New("dpapi: object handle is closed")
)

// Object is a handle to a provenance-bearing object within some layer.
// Files, processes, pipes and application-created phantom objects (browser
// sessions, data sets, operators) are all Objects. Handles are referenced
// "like files" (§5.2): they support provenance-coupled reads and writes.
type Object interface {
	// Ref returns the object's current identity: pnode number and
	// current version.
	Ref() pnode.Ref

	// PassRead reads data and returns the exact identity (pnode and
	// version as of the moment of the read) of what was read, so callers
	// can construct records that accurately describe their inputs.
	PassRead(p []byte, off int64) (n int, ref pnode.Ref, err error)

	// PassWrite writes a data buffer together with a bundle of
	// provenance records describing it, as one unit. Either may be
	// empty: a data-less PassWrite discloses provenance only, a
	// bundle-less PassWrite is an ordinary write.
	PassWrite(p []byte, off int64, b *record.Bundle) (n int, err error)

	// PassFreeze requests a new version of the object, breaking a
	// would-be cycle. It returns the new current version.
	PassFreeze() (pnode.Version, error)

	// PassSync forces the provenance associated with this object to
	// persistent storage even if the object is not (yet) in the ancestry
	// of any persistent object.
	PassSync() error

	// Close releases the handle. Closing does not destroy the object's
	// provenance.
	Close() error
}

// Layer is anything that can accept DPAPI calls from the layer above:
// PASS-enabled file systems (Lasagna), the PA-NFS client, the kernel
// observer, a provenance-aware interpreter. Layers stack: a component that
// both accepts and issues DPAPI calls is a middle layer (§5.2 allows an
// arbitrary number of them).
type Layer interface {
	// PassMkobj creates a phantom object: one that exists at this layer
	// (a browser session, a data set, a workflow operator) but has no
	// manifestation below it. The object can then appear in dependency
	// records linking names at one level to names at another.
	PassMkobj() (Object, error)

	// PassReviveObj returns a handle to an object previously created by
	// PassMkobj, identified by pnode number and version. It was added to
	// the DPAPI when provenance-aware applications (Firefox sessions,
	// §6.5) needed to record further provenance against objects that
	// outlive the handle that created them.
	PassReviveObj(ref pnode.Ref) (Object, error)
}

// Disclose is a convenience helper: write a provenance-only bundle to obj.
func Disclose(obj Object, recs ...record.Record) error {
	if len(recs) == 0 {
		return nil
	}
	_, err := obj.PassWrite(nil, 0, record.NewBundle(recs...))
	return err
}
