// Package dpapitest is the reusable DPAPI conformance harness. The DPAPI
// is "the central API inside PASSv2" (§5.2): layers stack freely only if
// every implementation of the object and layer surfaces behaves
// identically — the same read/write/freeze semantics, the same revival
// rules, the same sentinel errors. This package states that contract once
// as table-driven suites; each implementation (Lasagna files and
// phantoms, PA-NFS remote files, observer phantoms, passd RemoteObjects)
// registers a factory and runs the same tests.
//
// Two suites:
//
//   - RunObjects exercises the object surface shared by vfs.PassFile and
//     dpapi.Object: stable identity, provenance-coupled read/write,
//     monotonic freeze, provenance-only and sparse writes.
//
//   - RunLayers exercises the dpapi.Layer surface on top of it:
//     pass_mkobj objects satisfy the object contract, handles close
//     (ErrClosed) without destroying the object, pass_reviveobj reopens
//     objects across handle lifetimes, and the failure sentinels are
//     exact — ErrStale for an unknown pnode in the layer's own space,
//     ErrWrongLayer for a pnode from some other layer's space.
//
// The package also provides CanonicalGraph, a deterministic, identity-
// normalized rendering of a provenance database used by the end-to-end
// equivalence tests: a workload recorded through a remote layer must
// yield a graph byte-identical to the same workload recorded in-process.
package dpapitest

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"passv2/internal/dpapi"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/waldo"
)

// Object is the surface common to vfs.PassFile and dpapi.Object — the
// four provenance-coupled calls every PASS object answers.
type Object interface {
	Ref() pnode.Ref
	PassRead(p []byte, off int64) (int, pnode.Ref, error)
	PassWrite(p []byte, off int64, b *record.Bundle) (int, error)
	PassFreeze() (pnode.Version, error)
}

// ObjectImpl registers one implementation for RunObjects. Mk builds a
// fresh object and returns a cleanup.
type ObjectImpl struct {
	Name string
	Mk   func(t *testing.T) (Object, func())
}

// LayerImpl registers one implementation for RunLayers. New builds a
// fresh layer and returns a cleanup.
type LayerImpl struct {
	Name string
	New  func(t *testing.T) (dpapi.Layer, func())
}

// RunObjects runs the object-contract suite over every implementation.
func RunObjects(t *testing.T, impls []ObjectImpl) {
	suite := []struct {
		name string
		fn   func(t *testing.T, obj Object)
	}{
		{"IdentityIsStable", testIdentityStable},
		{"WriteThenReadWithIdentity", testWriteThenRead},
		{"FreezeMonotonic", testFreezeMonotonic},
		{"ProvenanceOnlyWrite", testProvenanceOnlyWrite},
		{"OffsetWrites", testOffsetWrites},
	}
	for _, tc := range suite {
		t.Run(tc.name, func(t *testing.T) {
			for _, impl := range impls {
				t.Run(impl.Name, func(t *testing.T) {
					obj, cleanup := impl.Mk(t)
					defer cleanup()
					tc.fn(t, obj)
				})
			}
		})
	}
}

func testIdentityStable(t *testing.T, obj Object) {
	r1 := obj.Ref()
	if !r1.IsValid() {
		t.Fatal("fresh object must have a valid ref")
	}
	if r1.Version != 1 {
		t.Fatalf("fresh object version = %v, want 1", r1.Version)
	}
	if obj.Ref() != r1 {
		t.Fatal("Ref must be stable without writes/freezes")
	}
}

func testWriteThenRead(t *testing.T, obj Object) {
	payload := []byte("dpapi-payload")
	n, err := obj.PassWrite(payload, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(payload) {
		t.Fatalf("short write: %d", n)
	}
	buf := make([]byte, 64)
	rn, ref, err := obj.PassRead(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:rn]) != string(payload) {
		t.Fatalf("read back %q", buf[:rn])
	}
	if ref.PNode != obj.Ref().PNode {
		t.Fatalf("pass_read identity %v != object %v", ref, obj.Ref())
	}
}

func testFreezeMonotonic(t *testing.T, obj Object) {
	prev := obj.Ref().Version
	for i := 0; i < 5; i++ {
		v, err := obj.PassFreeze()
		if err != nil {
			t.Fatal(err)
		}
		if v != prev+1 {
			t.Fatalf("freeze %d: version %v, want %v", i, v, prev+1)
		}
		prev = v
	}
	if obj.Ref().Version != prev {
		t.Fatalf("Ref version %v after freezes, want %v", obj.Ref().Version, prev)
	}
}

func testProvenanceOnlyWrite(t *testing.T, obj Object) {
	dep := pnode.Ref{PNode: 0xFFFF000000000123, Version: 1}
	n, err := obj.PassWrite(nil, 0, record.NewBundle(record.Input(obj.Ref(), dep)))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("provenance-only write returned n=%d", n)
	}
	// The object's data is untouched.
	buf := make([]byte, 8)
	rn, _, err := obj.PassRead(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rn != 0 {
		t.Fatalf("provenance-only write produced data: %q", buf[:rn])
	}
}

func testOffsetWrites(t *testing.T, obj Object) {
	if _, err := obj.PassWrite([]byte("AA"), 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := obj.PassWrite([]byte("BB"), 4, nil); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	n, _, err := obj.PassRead(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := "AA\x00\x00BB"
	if string(buf[:n]) != want {
		t.Fatalf("sparse content %q, want %q", buf[:n], want)
	}
}

// RunLayers runs the layer-contract suite — pass_mkobj, pass_reviveobj,
// handle lifecycle and the sentinel errors — over every implementation.
// Object behavior must be identical too, so the object suite runs against
// each layer's mkobj objects.
func RunLayers(t *testing.T, impls []LayerImpl) {
	objImpls := make([]ObjectImpl, 0, len(impls))
	for _, impl := range impls {
		impl := impl
		objImpls = append(objImpls, ObjectImpl{
			Name: impl.Name,
			Mk: func(t *testing.T) (Object, func()) {
				l, cleanup := impl.New(t)
				obj, err := l.PassMkobj()
				if err != nil {
					cleanup()
					t.Fatal(err)
				}
				return obj, func() { obj.Close(); cleanup() }
			},
		})
	}
	t.Run("MkobjObjects", func(t *testing.T) { RunObjects(t, objImpls) })

	suite := []struct {
		name string
		fn   func(t *testing.T, l dpapi.Layer)
	}{
		{"ReviveAcrossHandles", testReviveAcrossHandles},
		{"ReviveStale", testReviveStale},
		{"ReviveWrongLayer", testReviveWrongLayer},
		{"ClosedHandle", testClosedHandle},
	}
	for _, tc := range suite {
		t.Run(tc.name, func(t *testing.T) {
			for _, impl := range impls {
				t.Run(impl.Name, func(t *testing.T) {
					l, cleanup := impl.New(t)
					defer cleanup()
					tc.fn(t, l)
				})
			}
		})
	}
}

// testReviveAcrossHandles is §6.5's session pattern: create, disclose,
// close the handle, revive by reference, and keep disclosing — the object
// outlives every handle.
func testReviveAcrossHandles(t *testing.T, l dpapi.Layer) {
	obj, err := l.PassMkobj()
	if err != nil {
		t.Fatal(err)
	}
	ref := obj.Ref()
	if err := dpapi.Disclose(obj, record.New(ref, record.AttrType, record.StringVal(record.TypeSession))); err != nil {
		t.Fatal(err)
	}
	if err := obj.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := l.PassReviveObj(ref)
	if err != nil {
		t.Fatalf("revive after close: %v", err)
	}
	if back.Ref().PNode != ref.PNode {
		t.Fatalf("revived %v, want pnode %v", back.Ref(), ref.PNode)
	}
	if err := dpapi.Disclose(back, record.New(back.Ref(), record.AttrName, record.StringVal("revived"))); err != nil {
		t.Fatalf("disclose on revived handle: %v", err)
	}
	v, err := back.PassFreeze()
	if err != nil {
		t.Fatal(err)
	}
	if v != ref.Version+1 {
		t.Fatalf("freeze on revived handle: version %v, want %v", v, ref.Version+1)
	}
}

// testReviveStale: a pnode in this layer's space that was never allocated
// must be ErrStale.
func testReviveStale(t *testing.T, l dpapi.Layer) {
	obj, err := l.PassMkobj()
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	ghost := pnode.Ref{PNode: obj.Ref().PNode + 1<<40, Version: 1}
	if _, err := l.PassReviveObj(ghost); !errors.Is(err, dpapi.ErrStale) {
		t.Fatalf("revive of unallocated pnode: err = %v, want ErrStale", err)
	}
}

// testReviveWrongLayer: a pnode from another layer's volume space must be
// ErrWrongLayer, not ErrStale — the caller addressed the wrong layer, and
// the distinction tells a stacked component to route downward.
func testReviveWrongLayer(t *testing.T, l dpapi.Layer) {
	obj, err := l.PassMkobj()
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	foreign := uint64(pnode.VolumePrefix(obj.Ref().PNode))<<48 ^ 1<<48 | 42
	if _, err := l.PassReviveObj(pnode.Ref{PNode: pnode.PNode(foreign), Version: 1}); !errors.Is(err, dpapi.ErrWrongLayer) {
		t.Fatalf("revive of foreign-space pnode: err = %v, want ErrWrongLayer", err)
	}
}

// testClosedHandle: every call on a closed handle is ErrClosed, and
// closing never destroys the object (it revives).
func testClosedHandle(t *testing.T, l dpapi.Layer) {
	obj, err := l.PassMkobj()
	if err != nil {
		t.Fatal(err)
	}
	ref := obj.Ref()
	if err := obj.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := obj.PassWrite(nil, 0, record.NewBundle(record.New(ref, record.AttrName, record.StringVal("x")))); !errors.Is(err, dpapi.ErrClosed) {
		t.Fatalf("PassWrite on closed handle: %v, want ErrClosed", err)
	}
	if _, _, err := obj.PassRead(make([]byte, 4), 0); !errors.Is(err, dpapi.ErrClosed) {
		t.Fatalf("PassRead on closed handle: %v, want ErrClosed", err)
	}
	if _, err := obj.PassFreeze(); !errors.Is(err, dpapi.ErrClosed) {
		t.Fatalf("PassFreeze on closed handle: %v, want ErrClosed", err)
	}
	if err := obj.PassSync(); !errors.Is(err, dpapi.ErrClosed) {
		t.Fatalf("PassSync on closed handle: %v, want ErrClosed", err)
	}
	if err := obj.Close(); !errors.Is(err, dpapi.ErrClosed) {
		t.Fatalf("double Close: %v, want ErrClosed", err)
	}
	if _, err := l.PassReviveObj(ref); err != nil {
		t.Fatalf("object must survive its handles: revive after close: %v", err)
	}
}

// CanonicalGraph renders the union of one or more provenance databases in
// a deterministic, identity-normalized form: pnode numbers are replaced
// by labels derived from NAME/TYPE records, references carry versions,
// and lines are sorted. Two runs of the same deterministic workload yield
// byte-identical canonical graphs even though their raw pnode numbers
// come from different allocators (a remote layer allocates phantoms from
// the daemon's volume space, an in-process run from the kernel's
// transient space) — which is exactly the equivalence the end-to-end
// remote-layering tests assert.
func CanonicalGraph(dbs ...*waldo.DB) string {
	type pinfo struct {
		name string
		typ  string
	}
	// One entry per pnode across all databases: a pnode referenced in
	// several (a file ref crossing into a remote daemon's database, say)
	// is the same object, and its label comes from whichever database
	// recorded its NAME/TYPE.
	info := make(map[pnode.PNode]*pinfo)
	for _, db := range dbs {
		for _, pn := range db.AllPNodes() {
			pi := info[pn]
			if pi == nil {
				pi = &pinfo{}
				info[pn] = pi
			}
			if pi.name == "" {
				pi.name, _ = db.NameOf(pn)
			}
			if pi.typ == "" {
				pi.typ, _ = db.TypeOf(pn)
			}
		}
	}
	// Canonical label: NAME (or ?TYPE for unnamed objects), suffixed with
	// a rank when several pnodes share it. Ranks follow numeric pnode
	// order, which is creation order within any one allocator — stable
	// across runs of a deterministic workload.
	pns := make([]pnode.PNode, 0, len(info))
	for pn := range info {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	canon := make(map[pnode.PNode]string, len(pns))
	seen := make(map[string]int)
	for _, pn := range pns {
		pi := info[pn]
		base := pi.name
		if base == "" {
			base = "?" + pi.typ
		}
		k := seen[base]
		seen[base] = k + 1
		if k == 0 {
			canon[pn] = base
		} else {
			canon[pn] = fmt.Sprintf("%s#%d", base, k)
		}
	}
	label := func(ref pnode.Ref) string {
		c, ok := canon[ref.PNode]
		if !ok {
			c = ref.PNode.String()
		}
		return fmt.Sprintf("%s@%s", c, ref.Version)
	}
	var lines []string
	for _, db := range dbs {
		for _, ref := range db.AllRefs() {
			for _, rec := range db.Attrs(ref) {
				val := rec.Value.String()
				if dep, ok := rec.Value.AsRef(); ok {
					val = label(dep)
				}
				lines = append(lines, fmt.Sprintf("%s %s %s", label(rec.Subject), rec.Attr, val))
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
