// Package graph provides the versioned provenance-graph view the query
// engine runs over. A Graph merges one or more Waldo databases — that is
// how a query spans layers and machines: the anomaly use case (§3.1) joins
// Kepler provenance on the workstation's volume with file provenance from
// two NFS servers' volumes.
package graph

import (
	"sort"

	"passv2/internal/pnode"
	"passv2/internal/record"
)

// Source is one provenance database (waldo.DB implements it).
type Source interface {
	Attrs(ref pnode.Ref) []record.Record
	AttrValues(ref pnode.Ref, attr record.Attr) []record.Value
	Inputs(ref pnode.Ref) []pnode.Ref
	Dependents(ref pnode.Ref) []pnode.Ref
	Versions(pn pnode.PNode) []pnode.Version
	LatestVersion(pn pnode.PNode) (pnode.Version, bool)
	ByName(name string) []pnode.PNode
	ByType(typ string) []pnode.PNode
	NameOf(pn pnode.PNode) (string, bool)
	TypeOf(pn pnode.PNode) (string, bool)
	AllPNodes() []pnode.PNode
	AllRefs() []pnode.Ref
}

// RefScanner is an optional capability of a Source: index-backed
// enumeration of object versions by type or name label, plus a point
// type-membership probe. The PQL planner uses it to turn selective queries
// into index seeks instead of database scans; waldo.DB implements it over
// its n|/t|/v| key spaces. Sources without the capability fall back to
// ByType/ByName plus per-pnode Versions.
type RefScanner interface {
	RefsByType(typ string) []pnode.Ref
	RefsByName(name string) []pnode.Ref
	HasTypedPNode(pn pnode.PNode, typ string) bool
}

// Graph is a union view over sources.
type Graph struct {
	srcs []Source
}

// New builds a graph over the given sources.
func New(srcs ...Source) *Graph { return &Graph{srcs: srcs} }

// AddSource attaches another database.
func (g *Graph) AddSource(s Source) { g.srcs = append(g.srcs, s) }

// Inputs returns the union of direct ancestors across sources.
func (g *Graph) Inputs(ref pnode.Ref) []pnode.Ref {
	return g.unionRefs(func(s Source) []pnode.Ref { return s.Inputs(ref) })
}

// Dependents returns the union of direct descendants across sources.
func (g *Graph) Dependents(ref pnode.Ref) []pnode.Ref {
	return g.unionRefs(func(s Source) []pnode.Ref { return s.Dependents(ref) })
}

func (g *Graph) unionRefs(f func(Source) []pnode.Ref) []pnode.Ref {
	seen := make(map[pnode.Ref]bool)
	var out []pnode.Ref
	for _, s := range g.srcs {
		for _, r := range f(s) {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// AttrValues returns the values of attr on exactly this version, across
// sources.
func (g *Graph) AttrValues(ref pnode.Ref, attr record.Attr) []record.Value {
	var out []record.Value
	for _, s := range g.srcs {
		out = append(out, s.AttrValues(ref, attr)...)
	}
	return out
}

// AttrValuesAnyVersion falls back across the object's versions when the
// exact version carries no value (names are typically recorded at v1).
func (g *Graph) AttrValuesAnyVersion(ref pnode.Ref, attr record.Attr) []record.Value {
	if vals := g.AttrValues(ref, attr); len(vals) > 0 {
		return vals
	}
	var out []record.Value
	for _, v := range g.Versions(ref.PNode) {
		if v == ref.Version {
			continue
		}
		out = append(out, g.AttrValues(pnode.Ref{PNode: ref.PNode, Version: v}, attr)...)
	}
	return out
}

// Attrs returns all attribute records on this version across sources.
func (g *Graph) Attrs(ref pnode.Ref) []record.Record {
	var out []record.Record
	for _, s := range g.srcs {
		out = append(out, s.Attrs(ref)...)
	}
	return out
}

// Versions lists all versions of pn across sources, ascending.
func (g *Graph) Versions(pn pnode.PNode) []pnode.Version {
	seen := make(map[pnode.Version]bool)
	var out []pnode.Version
	for _, s := range g.srcs {
		for _, v := range s.Versions(pn) {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ByName returns pnodes bearing the exact name in any source.
func (g *Graph) ByName(name string) []pnode.PNode {
	return g.unionPNs(func(s Source) []pnode.PNode { return s.ByName(name) })
}

// ByType returns pnodes of the given TYPE in any source.
func (g *Graph) ByType(typ string) []pnode.PNode {
	return g.unionPNs(func(s Source) []pnode.PNode { return s.ByType(typ) })
}

// RefsByType returns every version of every pnode that has carried TYPE
// typ. Over a single RefScanner source this is one index pass in the
// source; over multiple sources it unions the typed pnodes first and then
// takes the cross-source version union, because a pnode's TYPE record and
// some of its versions can live in different databases.
func (g *Graph) RefsByType(typ string) []pnode.Ref {
	if len(g.srcs) == 1 {
		if rs, ok := g.srcs[0].(RefScanner); ok {
			return rs.RefsByType(typ)
		}
	}
	return g.refsOf(g.ByType(typ))
}

// RefsByNameType returns every version of every pnode that has carried the
// exact name and (when typ is non-empty) has carried TYPE typ — the root
// enumeration behind the planner's name-equality pushdown. The name index
// narrows the candidate set; type membership is a per-candidate point probe.
// Over a single RefScanner source the name seek runs entirely in the
// source; the multi-source union path mirrors RefsByType.
func (g *Graph) RefsByNameType(name, typ string) []pnode.Ref {
	if len(g.srcs) == 1 {
		if rs, ok := g.srcs[0].(RefScanner); ok {
			refs := rs.RefsByName(name)
			if typ == "" {
				return refs
			}
			// refs is freshly allocated and sorted by pnode: filter in
			// place with one type probe per distinct pnode.
			out := refs[:0]
			cur, has := pnode.Invalid, false
			for _, r := range refs {
				if r.PNode != cur {
					cur, has = r.PNode, rs.HasTypedPNode(r.PNode, typ)
				}
				if has {
					out = append(out, r)
				}
			}
			return out
		}
	}
	pns := g.ByName(name)
	if typ != "" {
		kept := pns[:0]
		for _, pn := range pns {
			if g.HasType(pn, typ) {
				kept = append(kept, pn)
			}
		}
		pns = kept
	}
	return g.refsOf(pns)
}

func (g *Graph) refsOf(pns []pnode.PNode) []pnode.Ref {
	var out []pnode.Ref
	for _, pn := range pns {
		for _, v := range g.Versions(pn) {
			out = append(out, pnode.Ref{PNode: pn, Version: v})
		}
	}
	return out
}

// HasType reports whether pn has ever carried TYPE typ in any source.
func (g *Graph) HasType(pn pnode.PNode, typ string) bool {
	for _, s := range g.srcs {
		if rs, ok := s.(RefScanner); ok {
			if rs.HasTypedPNode(pn, typ) {
				return true
			}
			continue
		}
		for _, p := range s.ByType(typ) {
			if p == pn {
				return true
			}
		}
	}
	return false
}

// AllPNodes lists every pnode in every source.
func (g *Graph) AllPNodes() []pnode.PNode {
	return g.unionPNs(func(s Source) []pnode.PNode { return s.AllPNodes() })
}

func (g *Graph) unionPNs(f func(Source) []pnode.PNode) []pnode.PNode {
	seen := make(map[pnode.PNode]bool)
	var out []pnode.PNode
	for _, s := range g.srcs {
		for _, pn := range f(s) {
			if !seen[pn] {
				seen[pn] = true
				out = append(out, pn)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllRefs lists every (pnode, version) in every source.
func (g *Graph) AllRefs() []pnode.Ref {
	seen := make(map[pnode.Ref]bool)
	var out []pnode.Ref
	for _, s := range g.srcs {
		for _, r := range s.AllRefs() {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// NameOf returns the best-known name for a pnode.
func (g *Graph) NameOf(pn pnode.PNode) (string, bool) {
	for _, s := range g.srcs {
		if n, ok := s.NameOf(pn); ok {
			return n, true
		}
	}
	return "", false
}

// TypeOf returns the recorded TYPE of a pnode.
func (g *Graph) TypeOf(pn pnode.PNode) (string, bool) {
	for _, s := range g.srcs {
		if t, ok := s.TypeOf(pn); ok {
			return t, true
		}
	}
	return "", false
}

// Ancestors returns the full ancestry closure of ref (not including ref).
func (g *Graph) Ancestors(ref pnode.Ref) []pnode.Ref {
	return g.closure(ref, g.Inputs)
}

// Descendants returns the full descendant closure of ref (not including
// ref) — the malware-spread question from §3.2.
func (g *Graph) Descendants(ref pnode.Ref) []pnode.Ref {
	return g.closure(ref, g.Dependents)
}

func (g *Graph) closure(start pnode.Ref, step func(pnode.Ref) []pnode.Ref) []pnode.Ref {
	seen := map[pnode.Ref]bool{start: true}
	var out []pnode.Ref
	queue := step(start)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
		queue = append(queue, step(n)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// HasPath reports whether dst is in src's ancestry.
func (g *Graph) HasPath(src, dst pnode.Ref) bool {
	if src == dst {
		return true
	}
	for _, a := range g.Ancestors(src) {
		if a == dst {
			return true
		}
	}
	return false
}
