package graph

import (
	"testing"

	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/waldo"
)

func ref(p uint64, v uint32) pnode.Ref {
	return pnode.Ref{PNode: pnode.PNode(p), Version: pnode.Version(v)}
}

func chainDB() *waldo.DB {
	db := waldo.NewDB()
	// c ← b ← a
	db.Apply(record.Input(ref(3, 1), ref(2, 1)))
	db.Apply(record.Input(ref(2, 1), ref(1, 1)))
	db.Apply(record.New(ref(1, 1), record.AttrName, record.StringVal("a")))
	db.Apply(record.New(ref(1, 1), record.AttrType, record.StringVal(record.TypeFile)))
	return db
}

func TestAncestorsAndDescendants(t *testing.T) {
	g := New(chainDB())
	anc := g.Ancestors(ref(3, 1))
	if len(anc) != 2 {
		t.Fatalf("ancestors = %v", anc)
	}
	desc := g.Descendants(ref(1, 1))
	if len(desc) != 2 {
		t.Fatalf("descendants = %v", desc)
	}
	if !g.HasPath(ref(3, 1), ref(1, 1)) {
		t.Fatal("path c→a missing")
	}
	if g.HasPath(ref(1, 1), ref(3, 1)) {
		t.Fatal("ancestry is directional")
	}
	if !g.HasPath(ref(3, 1), ref(3, 1)) {
		t.Fatal("trivial path")
	}
}

func TestMultiSourceUnionDedup(t *testing.T) {
	db1, db2 := chainDB(), waldo.NewDB()
	// db2 repeats one edge and adds another ancestor.
	db2.Apply(record.Input(ref(3, 1), ref(2, 1)))
	db2.Apply(record.Input(ref(3, 1), ref(9, 1)))
	g := New(db1, db2)
	in := g.Inputs(ref(3, 1))
	if len(in) != 2 {
		t.Fatalf("union inputs = %v", in)
	}
	if len(g.AllPNodes()) != 4 {
		t.Fatalf("AllPNodes = %v", g.AllPNodes())
	}
}

func TestAttrValuesAnyVersionFallback(t *testing.T) {
	db := waldo.NewDB()
	db.Apply(record.New(ref(5, 1), record.AttrName, record.StringVal("orig")))
	db.Apply(record.Input(ref(5, 2), ref(5, 1)))
	g := New(db)
	// Version 2 has no NAME of its own; fallback finds v1's.
	vals := g.AttrValuesAnyVersion(ref(5, 2), record.AttrName)
	if len(vals) != 1 {
		t.Fatalf("fallback vals = %v", vals)
	}
	if s, _ := vals[0].AsString(); s != "orig" {
		t.Fatalf("fallback = %q", s)
	}
}

func TestNameTypeAcrossSources(t *testing.T) {
	db1, db2 := waldo.NewDB(), waldo.NewDB()
	db2.Apply(record.New(ref(7, 1), record.AttrName, record.StringVal("remote")))
	g := New(db1, db2)
	if n, ok := g.NameOf(7); !ok || n != "remote" {
		t.Fatalf("NameOf across sources = %q,%v", n, ok)
	}
	if _, ok := g.TypeOf(7); ok {
		t.Fatal("TypeOf should miss")
	}
	if got := g.ByName("remote"); len(got) != 1 {
		t.Fatalf("ByName = %v", got)
	}
}

func TestAddSource(t *testing.T) {
	g := New(chainDB())
	extra := waldo.NewDB()
	extra.Apply(record.Input(ref(1, 1), ref(99, 1)))
	g.AddSource(extra)
	anc := g.Ancestors(ref(3, 1))
	if len(anc) != 3 {
		t.Fatalf("ancestors after AddSource = %v", anc)
	}
}
