package graph

import (
	"testing"

	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/waldo"
)

func ref(p uint64, v uint32) pnode.Ref {
	return pnode.Ref{PNode: pnode.PNode(p), Version: pnode.Version(v)}
}

func chainDB() *waldo.DB {
	db := waldo.NewDB()
	// c ← b ← a
	db.Apply(record.Input(ref(3, 1), ref(2, 1)))
	db.Apply(record.Input(ref(2, 1), ref(1, 1)))
	db.Apply(record.New(ref(1, 1), record.AttrName, record.StringVal("a")))
	db.Apply(record.New(ref(1, 1), record.AttrType, record.StringVal(record.TypeFile)))
	return db
}

func TestAncestorsAndDescendants(t *testing.T) {
	g := New(chainDB())
	anc := g.Ancestors(ref(3, 1))
	if len(anc) != 2 {
		t.Fatalf("ancestors = %v", anc)
	}
	desc := g.Descendants(ref(1, 1))
	if len(desc) != 2 {
		t.Fatalf("descendants = %v", desc)
	}
	if !g.HasPath(ref(3, 1), ref(1, 1)) {
		t.Fatal("path c→a missing")
	}
	if g.HasPath(ref(1, 1), ref(3, 1)) {
		t.Fatal("ancestry is directional")
	}
	if !g.HasPath(ref(3, 1), ref(3, 1)) {
		t.Fatal("trivial path")
	}
}

func TestMultiSourceUnionDedup(t *testing.T) {
	db1, db2 := chainDB(), waldo.NewDB()
	// db2 repeats one edge and adds another ancestor.
	db2.Apply(record.Input(ref(3, 1), ref(2, 1)))
	db2.Apply(record.Input(ref(3, 1), ref(9, 1)))
	g := New(db1, db2)
	in := g.Inputs(ref(3, 1))
	if len(in) != 2 {
		t.Fatalf("union inputs = %v", in)
	}
	if len(g.AllPNodes()) != 4 {
		t.Fatalf("AllPNodes = %v", g.AllPNodes())
	}
}

func TestAttrValuesAnyVersionFallback(t *testing.T) {
	db := waldo.NewDB()
	db.Apply(record.New(ref(5, 1), record.AttrName, record.StringVal("orig")))
	db.Apply(record.Input(ref(5, 2), ref(5, 1)))
	g := New(db)
	// Version 2 has no NAME of its own; fallback finds v1's.
	vals := g.AttrValuesAnyVersion(ref(5, 2), record.AttrName)
	if len(vals) != 1 {
		t.Fatalf("fallback vals = %v", vals)
	}
	if s, _ := vals[0].AsString(); s != "orig" {
		t.Fatalf("fallback = %q", s)
	}
}

func TestNameTypeAcrossSources(t *testing.T) {
	db1, db2 := waldo.NewDB(), waldo.NewDB()
	db2.Apply(record.New(ref(7, 1), record.AttrName, record.StringVal("remote")))
	g := New(db1, db2)
	if n, ok := g.NameOf(7); !ok || n != "remote" {
		t.Fatalf("NameOf across sources = %q,%v", n, ok)
	}
	if _, ok := g.TypeOf(7); ok {
		t.Fatal("TypeOf should miss")
	}
	if got := g.ByName("remote"); len(got) != 1 {
		t.Fatalf("ByName = %v", got)
	}
}

func TestAddSource(t *testing.T) {
	g := New(chainDB())
	extra := waldo.NewDB()
	extra.Apply(record.Input(ref(1, 1), ref(99, 1)))
	g.AddSource(extra)
	anc := g.Ancestors(ref(3, 1))
	if len(anc) != 3 {
		t.Fatalf("ancestors after AddSource = %v", anc)
	}
}

func TestRefsByTypeMatchesNaive(t *testing.T) {
	// Single source: served by the waldo RefScanner capability.
	db := chainDB()
	db.Apply(record.New(ref(2, 1), record.AttrType, record.StringVal(record.TypeFile)))
	db.Apply(record.Input(ref(2, 2), ref(2, 1)))
	g := New(db)
	naive := func(g *Graph, typ string) []pnode.Ref {
		var out []pnode.Ref
		for _, pn := range g.ByType(typ) {
			for _, v := range g.Versions(pn) {
				out = append(out, pnode.Ref{PNode: pn, Version: v})
			}
		}
		return out
	}
	check := func(g *Graph, typ string) {
		t.Helper()
		got, want := g.RefsByType(typ), naive(g, typ)
		if len(got) != len(want) {
			t.Fatalf("RefsByType(%q) = %v, want %v", typ, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("RefsByType(%q)[%d] = %v, want %v", typ, i, got[i], want[i])
			}
		}
	}
	check(g, record.TypeFile)

	// Multi source, with the TYPE record and one version split across
	// databases: the union path must still find both versions.
	db2 := waldo.NewDB()
	db2.Apply(record.Input(ref(2, 3), ref(2, 2)))
	g2 := New(db, db2)
	check(g2, record.TypeFile)
	found := false
	for _, r := range g2.RefsByType(record.TypeFile) {
		if r == ref(2, 3) {
			found = true
		}
	}
	if !found {
		t.Fatal("cross-source version missing from RefsByType")
	}
}

func TestRefsByNameTypeAndHasType(t *testing.T) {
	db := chainDB() // pnode 1 has name "a", type FILE
	g := New(db)
	if got := g.RefsByNameType("a", record.TypeFile); len(got) != 1 || got[0] != ref(1, 1) {
		t.Fatalf("RefsByNameType = %v", got)
	}
	// Wrong type filters the candidate out; empty type means any.
	if got := g.RefsByNameType("a", record.TypeProc); len(got) != 0 {
		t.Fatalf("type-mismatched RefsByNameType = %v", got)
	}
	if got := g.RefsByNameType("a", ""); len(got) != 1 {
		t.Fatalf("untyped RefsByNameType = %v", got)
	}
	if !g.HasType(1, record.TypeFile) || g.HasType(1, record.TypeProc) || g.HasType(42, record.TypeFile) {
		t.Fatal("HasType wrong")
	}
	// The capability must agree across sources: type in db2 only.
	db2 := waldo.NewDB()
	db2.Apply(record.New(ref(1, 1), record.AttrType, record.StringVal(record.TypeProc)))
	g2 := New(db, db2)
	if !g2.HasType(1, record.TypeProc) {
		t.Fatal("HasType missed the second source")
	}
}

func TestMemoMatchesClosures(t *testing.T) {
	db := chainDB()
	// Add a diamond and a cycle to exercise splicing and cycle safety:
	// 3 ← 2 ← 1 (chain), plus 3 ← 4 ← 1 and 1 ← 3 (cycle back).
	db.Apply(record.Input(ref(3, 1), ref(4, 1)))
	db.Apply(record.Input(ref(4, 1), ref(1, 1)))
	db.Apply(record.Input(ref(1, 1), ref(3, 1)))
	g := New(db)
	m := g.NewMemo()
	refs := []pnode.Ref{ref(1, 1), ref(2, 1), ref(3, 1), ref(4, 1)}
	// Warm the memo in an order that makes later closures hit earlier ones.
	for _, r := range refs {
		m.Closure(r, false)
		m.Closure(r, true)
	}
	for _, r := range refs {
		for pass := 0; pass < 2; pass++ { // second pass: fully cached
			anc, desc := m.Closure(r, false), m.Closure(r, true)
			wantAnc, wantDesc := g.Ancestors(r), g.Descendants(r)
			if len(anc) != len(wantAnc) || len(desc) != len(wantDesc) {
				t.Fatalf("memo closure size mismatch at %v: %v/%v vs %v/%v", r, anc, desc, wantAnc, wantDesc)
			}
			for i := range anc {
				if anc[i] != wantAnc[i] {
					t.Fatalf("memo ancestors(%v) = %v, want %v", r, anc, wantAnc)
				}
			}
			for i := range desc {
				if desc[i] != wantDesc[i] {
					t.Fatalf("memo descendants(%v) = %v, want %v", r, desc, wantDesc)
				}
			}
		}
	}
	if in := m.Inputs(ref(3, 1)); len(in) != len(g.Inputs(ref(3, 1))) {
		t.Fatalf("memo inputs = %v", in)
	}
	if dep := m.Dependents(ref(1, 1)); len(dep) != len(g.Dependents(ref(1, 1))) {
		t.Fatalf("memo dependents = %v", dep)
	}
}

func TestMemoSplicesMemoizedClosures(t *testing.T) {
	// A long chain: memoize the tail's closure first, then ask for the
	// head's; the spliced result must equal a fresh graph walk.
	db := waldo.NewDB()
	const n = 64
	for i := 2; i <= n; i++ {
		db.Apply(record.Input(ref(uint64(i), 1), ref(uint64(i-1), 1)))
	}
	g := New(db)
	m := g.NewMemo()
	for i := uint64(2); i <= n; i++ { // tail-first warm-up
		m.Closure(ref(i, 1), false)
	}
	got := m.Closure(ref(n, 1), false)
	want := g.Ancestors(ref(n, 1))
	if len(got) != len(want) {
		t.Fatalf("spliced closure = %d refs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("spliced closure[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
