package graph

import (
	"sort"

	"passv2/internal/pnode"
)

// Memo is a per-query traversal cache over a Graph. A query that expands
// many overlapping ancestry (or descendant) closures — every selective PQL
// query with an input*/input+ step does — pays for each edge scan and each
// reachability frontier once instead of once per root:
//
//   - adjacency (Inputs/Dependents) is cached per ref, so repeated BFS over
//     shared graph regions does map hits instead of index scans;
//   - full closures are cached per start ref, and a BFS that reaches a node
//     whose closure is already memoized splices that set in instead of
//     re-walking the frontier behind it.
//
// A Memo's lifetime is one query evaluation: it holds no invalidation
// logic, so it must be discarded before the underlying databases change.
// It is not safe for concurrent use, and callers must not modify returned
// slices.
type Memo struct {
	g           *Graph
	inputs      map[pnode.Ref][]pnode.Ref
	dependents  map[pnode.Ref][]pnode.Ref
	ancestors   map[pnode.Ref][]pnode.Ref
	descendants map[pnode.Ref][]pnode.Ref
}

// NewMemo creates an empty traversal cache over g.
func (g *Graph) NewMemo() *Memo {
	return &Memo{
		g:           g,
		inputs:      make(map[pnode.Ref][]pnode.Ref),
		dependents:  make(map[pnode.Ref][]pnode.Ref),
		ancestors:   make(map[pnode.Ref][]pnode.Ref),
		descendants: make(map[pnode.Ref][]pnode.Ref),
	}
}

// Inputs is Graph.Inputs with per-ref caching.
func (m *Memo) Inputs(ref pnode.Ref) []pnode.Ref {
	if out, ok := m.inputs[ref]; ok {
		return out
	}
	out := m.g.Inputs(ref)
	m.inputs[ref] = out
	return out
}

// Dependents is Graph.Dependents with per-ref caching.
func (m *Memo) Dependents(ref pnode.Ref) []pnode.Ref {
	if out, ok := m.dependents[ref]; ok {
		return out
	}
	out := m.g.Dependents(ref)
	m.dependents[ref] = out
	return out
}

// Closure returns every ref reachable from start along INPUT edges (against
// them when reverse is set), excluding start itself, sorted. It matches
// Graph.Ancestors/Descendants semantics, including on cyclic databases.
func (m *Memo) Closure(start pnode.Ref, reverse bool) []pnode.Ref {
	cache, step := m.ancestors, m.Inputs
	if reverse {
		cache, step = m.descendants, m.Dependents
	}
	if out, ok := cache[start]; ok {
		return out
	}
	seen := map[pnode.Ref]bool{start: true}
	var out []pnode.Ref
	queue := append([]pnode.Ref(nil), step(start)...)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
		// Closures are monotone, so a memoized node's reachability set can
		// be spliced in whole; its frontier needs no re-walk.
		if done, ok := cache[n]; ok {
			for _, r := range done {
				if !seen[r] {
					seen[r] = true
					out = append(out, r)
				}
			}
			continue
		}
		queue = append(queue, step(n)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	cache[start] = out
	return out
}
