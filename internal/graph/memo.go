package graph

import (
	"sort"
	"sync"

	"passv2/internal/pnode"
)

// Traversal is the cached-traversal capability the query engine consumes:
// adjacency plus full INPUT-edge closures. Memo implements it for one
// single-threaded query; SharedMemo implements it for many concurrent
// queries over an immutable snapshot.
type Traversal interface {
	Inputs(ref pnode.Ref) []pnode.Ref
	Dependents(ref pnode.Ref) []pnode.Ref
	Closure(start pnode.Ref, reverse bool) []pnode.Ref
}

// Memo is a per-query traversal cache over a Graph. A query that expands
// many overlapping ancestry (or descendant) closures — every selective PQL
// query with an input*/input+ step does — pays for each edge scan and each
// reachability frontier once instead of once per root:
//
//   - adjacency (Inputs/Dependents) is cached per ref, so repeated BFS over
//     shared graph regions does map hits instead of index scans;
//   - full closures are cached per start ref, and a BFS that reaches a node
//     whose closure is already memoized splices that set in instead of
//     re-walking the frontier behind it.
//
// A Memo's lifetime is one query evaluation: it holds no invalidation
// logic, so it must be discarded before the underlying databases change.
// It is not safe for concurrent use, and callers must not modify returned
// slices.
type Memo struct {
	g           *Graph
	inputs      map[pnode.Ref][]pnode.Ref
	dependents  map[pnode.Ref][]pnode.Ref
	ancestors   map[pnode.Ref][]pnode.Ref
	descendants map[pnode.Ref][]pnode.Ref
}

// NewMemo creates an empty traversal cache over g.
func (g *Graph) NewMemo() *Memo {
	return &Memo{
		g:           g,
		inputs:      make(map[pnode.Ref][]pnode.Ref),
		dependents:  make(map[pnode.Ref][]pnode.Ref),
		ancestors:   make(map[pnode.Ref][]pnode.Ref),
		descendants: make(map[pnode.Ref][]pnode.Ref),
	}
}

// Inputs is Graph.Inputs with per-ref caching.
func (m *Memo) Inputs(ref pnode.Ref) []pnode.Ref {
	if out, ok := m.inputs[ref]; ok {
		return out
	}
	out := m.g.Inputs(ref)
	m.inputs[ref] = out
	return out
}

// Dependents is Graph.Dependents with per-ref caching.
func (m *Memo) Dependents(ref pnode.Ref) []pnode.Ref {
	if out, ok := m.dependents[ref]; ok {
		return out
	}
	out := m.g.Dependents(ref)
	m.dependents[ref] = out
	return out
}

// Closure returns every ref reachable from start along INPUT edges (against
// them when reverse is set), excluding start itself, sorted. It matches
// Graph.Ancestors/Descendants semantics, including on cyclic databases.
func (m *Memo) Closure(start pnode.Ref, reverse bool) []pnode.Ref {
	cache, step := m.ancestors, m.Inputs
	if reverse {
		cache, step = m.descendants, m.Dependents
	}
	if out, ok := cache[start]; ok {
		return out
	}
	seen := map[pnode.Ref]bool{start: true}
	var out []pnode.Ref
	queue := append([]pnode.Ref(nil), step(start)...)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
		// Closures are monotone, so a memoized node's reachability set can
		// be spliced in whole; its frontier needs no re-walk.
		if done, ok := cache[n]; ok {
			for _, r := range done {
				if !seen[r] {
					seen[r] = true
					out = append(out, r)
				}
			}
			continue
		}
		queue = append(queue, step(n)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	cache[start] = out
	return out
}

// SharedMemo is a Memo safe for concurrent use: one mutex serializes cache
// access, so concurrent queries over the same graph share every memoized
// adjacency list and closure instead of each paying its own traversal.
//
// Sharing a memo ACROSS queries is only sound when the underlying
// databases cannot change — which is exactly what a waldo.ReadView
// guarantees. This is the serving layer's amortization: the snapshot
// machinery is what makes a long-lived traversal cache correct, where the
// live-database path must discard its memo after every query.
type SharedMemo struct {
	mu sync.Mutex
	m  *Memo
}

// NewSharedMemo creates a concurrent-safe traversal cache over g. g's
// sources must be immutable for the memo's lifetime (e.g. ReadViews).
func (g *Graph) NewSharedMemo() *SharedMemo {
	return &SharedMemo{m: g.NewMemo()}
}

// Inputs is Memo.Inputs under the lock.
func (s *SharedMemo) Inputs(ref pnode.Ref) []pnode.Ref {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Inputs(ref)
}

// Dependents is Memo.Dependents under the lock.
func (s *SharedMemo) Dependents(ref pnode.Ref) []pnode.Ref {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Dependents(ref)
}

// Closure is Memo.Closure under the lock: a closure is computed once and
// spliced into every later query that reaches it.
func (s *SharedMemo) Closure(start pnode.Ref, reverse bool) []pnode.Ref {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Closure(start, reverse)
}
