// Package health is the daemon's liveness/readiness surface: a Checker
// that separates "the process is up" (liveness — true the moment the
// process can answer HTTP) from "the process should receive traffic"
// (readiness — an explicit bit the daemon sets once it has recovered,
// drained and bound, gated further by named readiness checks such as "the
// write quorum is reachable"). The split matches how orchestrators use
// the two endpoints: a failed liveness probe restarts the process, a
// failed readiness probe only steers traffic away — a primary that lost
// its quorum wants the second, never the first.
package health

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Check is one named readiness condition. Return nil when healthy.
type Check func() error

// Checker aggregates the readiness bit and registered checks. The zero
// value is not ready and has no start time; use New.
type Checker struct {
	start time.Time
	ready atomic.Bool

	mu     sync.Mutex
	names  []string // registration order, for stable reports
	checks map[string]Check
}

// New returns a Checker that is alive but not yet ready.
func New() *Checker {
	return &Checker{start: time.Now(), checks: make(map[string]Check)}
}

// AddReadiness registers a named readiness check, evaluated on every
// Ready call. Re-registering a name replaces the check.
func (c *Checker) AddReadiness(name string, fn Check) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.checks[name]; !ok {
		c.names = append(c.names, name)
	}
	c.checks[name] = fn
}

// SetReady flips the master readiness bit — the daemon calls it once
// recovery and binding are done, and may clear it during shutdown.
func (c *Checker) SetReady(ready bool) { c.ready.Store(ready) }

// Uptime reports time since New.
func (c *Checker) Uptime() time.Duration { return time.Since(c.start) }

// CheckResult is one check's outcome in a report; Err is "" when healthy.
type CheckResult struct {
	Name string
	Err  string
}

// Report is the outcome of a Live or Ready evaluation.
type Report struct {
	OK     bool
	Uptime time.Duration
	Checks []CheckResult
}

// Live reports liveness: always OK — if this code runs, the process is
// alive. It carries uptime so a probe's output is still informative.
func (c *Checker) Live() Report {
	return Report{OK: true, Uptime: c.Uptime()}
}

// Ready evaluates the readiness bit and every registered check. All must
// pass for OK; every check's outcome is reported either way.
func (c *Checker) Ready() Report {
	rep := Report{OK: c.ready.Load(), Uptime: c.Uptime()}
	if !rep.OK {
		rep.Checks = append(rep.Checks, CheckResult{Name: "ready", Err: "not ready"})
	}
	c.mu.Lock()
	names := append([]string(nil), c.names...)
	checks := make(map[string]Check, len(c.checks))
	for k, v := range c.checks {
		checks[k] = v
	}
	c.mu.Unlock()
	for _, name := range names {
		res := CheckResult{Name: name}
		if err := checks[name](); err != nil {
			res.Err = err.Error()
			rep.OK = false
		}
		rep.Checks = append(rep.Checks, res)
	}
	return rep
}

// WriteText renders the report in the plain one-line-per-fact shape the
// admin endpoints serve: "ok"/"unhealthy", uptime, then each check.
func (r Report) WriteText(w io.Writer) {
	status := "ok"
	if !r.OK {
		status = "unhealthy"
	}
	fmt.Fprintf(w, "%s\nuptime_seconds %.3f\n", status, r.Uptime.Seconds())
	for _, c := range r.Checks {
		if c.Err == "" {
			fmt.Fprintf(w, "check %s ok\n", c.Name)
		} else {
			fmt.Fprintf(w, "check %s failing: %s\n", c.Name, c.Err)
		}
	}
}
