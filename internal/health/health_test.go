package health

import (
	"errors"
	"strings"
	"testing"
)

func TestLiveAlwaysOK(t *testing.T) {
	c := New()
	if rep := c.Live(); !rep.OK {
		t.Fatalf("liveness must be OK while the process runs")
	}
}

func TestReadinessBitAndChecks(t *testing.T) {
	c := New()
	if c.Ready().OK {
		t.Fatalf("a fresh checker must not be ready")
	}
	c.SetReady(true)
	if !c.Ready().OK {
		t.Fatalf("ready bit set, no checks: must be ready")
	}

	var quorumErr error
	c.AddReadiness("quorum", func() error { return quorumErr })
	if !c.Ready().OK {
		t.Fatalf("passing check must keep readiness")
	}
	quorumErr = errors.New("1 of 2 followers connected")
	rep := c.Ready()
	if rep.OK {
		t.Fatalf("failing check must fail readiness")
	}
	if len(rep.Checks) != 1 || rep.Checks[0].Name != "quorum" || rep.Checks[0].Err == "" {
		t.Fatalf("report = %+v", rep)
	}

	var sb strings.Builder
	rep.WriteText(&sb)
	out := sb.String()
	if !strings.HasPrefix(out, "unhealthy\n") || !strings.Contains(out, "check quorum failing: 1 of 2 followers connected") {
		t.Fatalf("report text:\n%s", out)
	}

	quorumErr = nil
	var ok strings.Builder
	c.Ready().WriteText(&ok)
	if !strings.HasPrefix(ok.String(), "ok\n") || !strings.Contains(ok.String(), "check quorum ok") {
		t.Fatalf("healthy report text:\n%s", ok.String())
	}
}

func TestSetReadyClears(t *testing.T) {
	c := New()
	c.SetReady(true)
	c.SetReady(false)
	rep := c.Ready()
	if rep.OK {
		t.Fatalf("cleared ready bit must fail readiness")
	}
	if len(rep.Checks) == 0 || rep.Checks[0].Name != "ready" {
		t.Fatalf("not-ready report must name the ready bit, got %+v", rep)
	}
}
