package kepler

import (
	"crypto/md5"
	"fmt"

	"passv2/internal/pnode"
)

// This file builds the First Provenance Challenge fMRI workflow [24], the
// workload the paper runs in its §3.1 anomaly use case and whose final
// output — atlas-x.gif — stars in the §5.7 sample query:
//
//	anatomy[1..4].img + reference.img
//	    → align_warp ×4 → warp[i]
//	    → reslice ×4    → resliced[i]
//	    → softmean      → atlas.img
//	    → slicer ×3     → atlas-{x,y,z}.img
//	    → convert ×3    → atlas-{x,y,z}.gif
//
// The image processing itself is simulated: each stage derives output
// bytes deterministically (MD5 chaining) from its input bytes, so a
// changed input changes every downstream artifact, which is exactly the
// property the anomaly use case needs. Each stage charges CPU
// proportional to the data processed.

// ChallengeConfig locates the workflow's storage. The paper's Figure 1
// scenario puts Input on one NFS server, Work on the local disk, and Out
// on a second NFS server.
type ChallengeConfig struct {
	Input string // directory holding anatomy1..4.img and reference.img
	Work  string // directory for intermediate files
	Out   string // directory for the atlas-{x,y,z}.gif outputs
}

// ChallengeInputs lists the input files the workflow expects.
func ChallengeInputs() []string {
	return []string{"anatomy1.img", "anatomy2.img", "anatomy3.img", "anatomy4.img", "reference.img"}
}

// ChallengeOutputs lists the final output file names.
func ChallengeOutputs() []string {
	return []string{"atlas-x.gif", "atlas-y.gif", "atlas-z.gif"}
}

// derive simulates an image-processing stage deterministically.
func derive(stage string, inputs ...[]byte) []byte {
	h := md5.New()
	h.Write([]byte(stage))
	for _, in := range inputs {
		h.Write(in)
	}
	sum := h.Sum(nil)
	// Produce a recognizable, stage-tagged body.
	out := append([]byte(stage+":"), sum...)
	return out
}

// FileSource builds an operator that reads path and emits it on port
// "out".
func FileSource(name, path string) *Operator {
	return &Operator{
		Name:   name,
		Params: map[string]string{"fileName": path},
		Out:    []string{"out"},
		Fire: func(ctx *Ctx, in map[string]Token) (map[string]Token, error) {
			data, ref, err := ctx.ReadFile(path)
			if err != nil {
				return nil, err
			}
			t := Token{Data: data}
			if ref.IsValid() {
				t.Refs = append(t.Refs, ref)
			}
			return map[string]Token{"out": t}, nil
		},
	}
}

// FileSink builds an operator that writes its "in" token to path.
func FileSink(name, path string) *Operator {
	return &Operator{
		Name:   name,
		Params: map[string]string{"fileName": path, "confirmOverwrite": "false"},
		In:     []string{"in"},
		Fire: func(ctx *Ctx, in map[string]Token) (map[string]Token, error) {
			return nil, ctx.WriteFile(path, in["in"].Data)
		},
	}
}

// Stage builds a computation operator: it consumes the named input ports,
// derives output bytes, optionally writes them to file, and emits them on
// "out".
func Stage(name string, inPorts []string, file string, cpuFactor int64) *Operator {
	return &Operator{
		Name:   name,
		Params: map[string]string{"algorithm": name},
		In:     inPorts,
		Out:    []string{"out"},
		Fire: func(ctx *Ctx, in map[string]Token) (map[string]Token, error) {
			var bodies [][]byte
			var refs []pnode.Ref
			total := 0
			for _, port := range inPorts {
				tok := in[port]
				bodies = append(bodies, tok.Data)
				total += len(tok.Data)
				refs = append(refs, tok.Refs...)
			}
			ctx.Compute(int64(total) * cpuFactor)
			out := derive(name, bodies...)
			if file != "" {
				if err := ctx.WriteFile(file, out); err != nil {
					return nil, err
				}
			}
			return map[string]Token{"out": {Data: out, Refs: refs}}, nil
		},
	}
}

// BuildChallenge assembles the Provenance Challenge workflow over cfg.
func BuildChallenge(cfg ChallengeConfig) *Workflow {
	wf := NewWorkflow("provenance-challenge-1")
	join := func(dir, name string) string { return dir + "/" + name }

	wf.Add(FileSource("refsrc", join(cfg.Input, "reference.img")))
	for i := 1; i <= 4; i++ {
		wf.Add(FileSource(fmt.Sprintf("anatomy%dsrc", i), join(cfg.Input, fmt.Sprintf("anatomy%d.img", i))))
		wf.Add(Stage(fmt.Sprintf("align_warp%d", i), []string{"img", "ref"},
			join(cfg.Work, fmt.Sprintf("warp%d.warp", i)), 3))
		wf.Add(Stage(fmt.Sprintf("reslice%d", i), []string{"in"},
			join(cfg.Work, fmt.Sprintf("resliced%d.img", i)), 2))
		wf.Connect(fmt.Sprintf("anatomy%dsrc", i), "out", fmt.Sprintf("align_warp%d", i), "img")
		wf.Connect("refsrc", "out", fmt.Sprintf("align_warp%d", i), "ref")
		wf.Connect(fmt.Sprintf("align_warp%d", i), "out", fmt.Sprintf("reslice%d", i), "in")
	}
	wf.Add(Stage("softmean", []string{"in1", "in2", "in3", "in4"}, join(cfg.Work, "atlas.img"), 4))
	for i := 1; i <= 4; i++ {
		wf.Connect(fmt.Sprintf("reslice%d", i), "out", "softmean", fmt.Sprintf("in%d", i))
	}
	for _, axis := range []string{"x", "y", "z"} {
		slicer := "slicer_" + axis
		convert := "convert_" + axis
		wf.Add(Stage(slicer, []string{"in"}, join(cfg.Work, "atlas-"+axis+".img"), 1))
		wf.Add(Stage(convert, []string{"in"}, "", 1))
		wf.Add(FileSink("sink_"+axis, join(cfg.Out, "atlas-"+axis+".gif")))
		wf.Connect("softmean", "out", slicer, "in")
		wf.Connect(slicer, "out", convert, "in")
		wf.Connect(convert, "out", "sink_"+axis, "in")
	}
	return wf
}
