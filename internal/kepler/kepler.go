// Package kepler implements the workflow-engine substrate of §6.2: a
// dataflow engine in the style of the Kepler scientific workflow system
// (operators with typed ports connected by channels, fired by a director
// in dependency order) together with its provenance recording interface.
//
// Kepler records provenance for all communication between workflow
// operators; the recording interface supports three backends, as in the
// paper: a text file, a relational-style table, and — the point of the
// exercise — PASSv2 via the DPAPI, in which every operator becomes a
// pass_mkobj phantom object carrying NAME/TYPE/PARAMS records, and every
// message adds an ancestry relationship between sender and recipient. The
// engine's data source/sink operators open real files through the
// simulated kernel, so system-level provenance accrues underneath at the
// same time.
package kepler

import (
	"errors"
	"fmt"
	"sort"

	"passv2/internal/kernel"
	"passv2/internal/pnode"
	"passv2/internal/vfs"
)

// Token is a unit of data flowing between operators. It carries the
// provenance references picked up along the way (file identities from
// pass_read, operator identities from firings).
type Token struct {
	Data []byte
	Refs []pnode.Ref
}

// Port names an operator port.
type Port struct {
	Operator string
	Port     string
}

// Operator is one workflow stage.
type Operator struct {
	Name   string
	Params map[string]string
	In     []string
	Out    []string
	// Fire consumes one token set and produces outputs. ctx provides
	// file and compute access routed through the engine's process.
	Fire func(ctx *Ctx, in map[string]Token) (map[string]Token, error)
}

// Workflow is a directed acyclic graph of operators.
type Workflow struct {
	Name  string
	ops   map[string]*Operator
	order []string
	wires map[Port][]Port // out-port → in-ports
}

// NewWorkflow creates an empty workflow.
func NewWorkflow(name string) *Workflow {
	return &Workflow{
		Name:  name,
		ops:   make(map[string]*Operator),
		wires: make(map[Port][]Port),
	}
}

// Add registers an operator.
func (wf *Workflow) Add(op *Operator) *Workflow {
	if _, dup := wf.ops[op.Name]; dup {
		panic("kepler: duplicate operator " + op.Name)
	}
	wf.ops[op.Name] = op
	wf.order = append(wf.order, op.Name)
	return wf
}

// Connect wires an output port to an input port.
func (wf *Workflow) Connect(fromOp, fromPort, toOp, toPort string) *Workflow {
	src := Port{fromOp, fromPort}
	wf.wires[src] = append(wf.wires[src], Port{toOp, toPort})
	return wf
}

// Operators returns the operators in insertion order.
func (wf *Workflow) Operators() []*Operator {
	out := make([]*Operator, 0, len(wf.order))
	for _, name := range wf.order {
		out = append(out, wf.ops[name])
	}
	return out
}

// topo orders operators so every producer fires before its consumers.
func (wf *Workflow) topo() ([]string, error) {
	indeg := make(map[string]int, len(wf.ops))
	succ := make(map[string][]string)
	for name := range wf.ops {
		indeg[name] = 0
	}
	for src, dsts := range wf.wires {
		for _, d := range dsts {
			succ[src.Operator] = append(succ[src.Operator], d.Operator)
			indeg[d.Operator]++
		}
	}
	var queue []string
	for _, name := range wf.order {
		if indeg[name] == 0 {
			queue = append(queue, name)
		}
	}
	var out []string
	for len(queue) > 0 {
		sort.Strings(queue) // deterministic
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		for _, s := range succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(out) != len(wf.ops) {
		return nil, errors.New("kepler: workflow has a cycle")
	}
	return out, nil
}

// Ctx gives a firing operator access to the machine: file I/O through the
// engine's kernel process (so PASSv2 observes it) and CPU accounting.
type Ctx struct {
	eng *Engine
	op  *Operator
}

// Proc returns the engine's kernel process.
func (c *Ctx) Proc() *kernel.Process { return c.eng.proc }

// Compute charges CPU work for this firing.
func (c *Ctx) Compute(units int64) { c.eng.proc.Compute(units) }

// ReadFile reads a whole file through the kernel, returning its bytes and
// the exact identity read (pass_read), which the engine links into the
// operator's provenance.
func (c *Ctx) ReadFile(path string) ([]byte, pnode.Ref, error) {
	p := c.eng.proc
	fd, err := p.Open(path, vfs.ORdOnly)
	if err != nil {
		return nil, pnode.Ref{}, err
	}
	defer p.Close(fd)
	st, err := p.Stat(path)
	if err != nil {
		return nil, pnode.Ref{}, err
	}
	buf := make([]byte, st.Size)
	var ref pnode.Ref
	total := 0
	for total < len(buf) {
		n, r, err := p.PassReadFd(fd, buf[total:])
		if err != nil {
			// Non-PASS volume: fall back to a plain read; the identity
			// is unknown at this layer (PASS still sees the syscall).
			n, err = p.Read(fd, buf[total:])
			if err != nil {
				return nil, pnode.Ref{}, err
			}
			if n == 0 {
				break
			}
			total += n
			continue
		}
		ref = r
		if n == 0 {
			break
		}
		total += n
	}
	c.eng.record(func(r Recorder) { r.FileRead(c.op, path, ref) })
	return buf[:total], ref, nil
}

// WriteFile writes a whole file through the kernel and tells the recorders
// so PA-Kepler can link the file to this operator.
func (c *Ctx) WriteFile(path string, data []byte) error {
	p := c.eng.proc
	fd, err := p.Open(path, vfs.OCreate|vfs.OTrunc|vfs.ORdWr)
	if err != nil {
		return err
	}
	defer p.Close(fd)
	c.eng.record(func(r Recorder) { r.FileWriting(c.op, path, fd) })
	if _, err := p.Write(fd, data); err != nil {
		return err
	}
	return nil
}

// Recorder is Kepler's provenance recording interface (§6.2). The engine
// notifies it of operator creation, firings (message exchanges), and the
// file accesses of source/sink operators.
type Recorder interface {
	OperatorCreated(op *Operator)
	// MessageSent fires per produced token delivered to a recipient.
	MessageSent(from, to *Operator, tok Token)
	// FileRead reports a source operator consuming a file; ref is the
	// pass_read identity (zero if the file is not on a PASS volume).
	FileRead(op *Operator, path string, ref pnode.Ref)
	// FileWriting reports a sink operator about to write fd; PA-Kepler
	// uses the open descriptor to disclose the operator→file link.
	FileWriting(op *Operator, path string, fd int)
	// RunFinished closes out one workflow execution.
	RunFinished(wf *Workflow)
}

// Engine executes workflows on a kernel process.
type Engine struct {
	proc *kernel.Process
	recs []Recorder
}

// NewEngine creates an engine running as proc.
func NewEngine(proc *kernel.Process) *Engine {
	return &Engine{proc: proc}
}

// AddRecorder attaches a provenance recording backend.
func (e *Engine) AddRecorder(r Recorder) { e.recs = append(e.recs, r) }

func (e *Engine) record(f func(Recorder)) {
	for _, r := range e.recs {
		f(r)
	}
}

// Run fires every operator in dependency order, routing tokens along the
// wires and notifying the recorders of every exchange.
func (e *Engine) Run(wf *Workflow) error {
	order, err := wf.topo()
	if err != nil {
		return err
	}
	for _, name := range order {
		e.record(func(r Recorder) { r.OperatorCreated(wf.ops[name]) })
	}
	inbox := make(map[Port]Token)
	for _, name := range order {
		op := wf.ops[name]
		in := make(map[string]Token, len(op.In))
		for _, port := range op.In {
			tok, ok := inbox[Port{name, port}]
			if !ok {
				return fmt.Errorf("kepler: operator %s: no token on port %s", name, port)
			}
			in[port] = tok
		}
		ctx := &Ctx{eng: e, op: op}
		out, err := op.Fire(ctx, in)
		if err != nil {
			return fmt.Errorf("kepler: operator %s: %w", name, err)
		}
		for port, tok := range out {
			for _, dst := range wf.wires[Port{name, port}] {
				inbox[dst] = tok
				e.record(func(r Recorder) { r.MessageSent(op, wf.ops[dst.Operator], tok) })
			}
		}
	}
	e.record(func(r Recorder) { r.RunFinished(wf) })
	return nil
}
