package kepler

import (
	"bytes"
	"strings"
	"testing"

	"passv2/internal/kernel"
	"passv2/internal/lasagna"
	"passv2/internal/observer"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// machine assembles a kernel with a PASS volume at /data and an observer.
type machine struct {
	k   *kernel.Kernel
	vol *lasagna.FS
	w   *waldo.Waldo
	o   *observer.Observer
}

func newMachine(t *testing.T) *machine {
	t.Helper()
	k := kernel.New(&vfs.Clock{})
	k.Mount("/", vfs.NewMemFS("root", nil))
	vol, err := lasagna.New("pass0", lasagna.Config{Lower: vfs.NewMemFS("lower", nil), VolumeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	k.Mount("/data", vol)
	o := observer.New(k)
	o.RegisterVolume(vol)
	w := waldo.New()
	w.Attach(vol)
	return &machine{k: k, vol: vol, w: w, o: o}
}

func (m *machine) seedChallengeInputs(t *testing.T, p *kernel.Process, dir string) {
	t.Helper()
	if err := p.MkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range ChallengeInputs() {
		fd, err := p.Open(dir+"/"+name, vfs.OCreate|vfs.ORdWr)
		if err != nil {
			t.Fatal(err)
		}
		p.Write(fd, []byte("imagedata:"+name))
		p.Close(fd)
	}
}

func runChallenge(t *testing.T, m *machine, rec Recorder) *kernel.Process {
	t.Helper()
	p := m.k.Spawn(nil, "kepler", []string{"kepler", "challenge"}, nil)
	if _, err := p.Stat("/data/input/reference.img"); err != nil {
		m.seedChallengeInputs(t, p, "/data/input")
	}
	p.MkdirAll("/data/work")
	p.MkdirAll("/data/out")
	eng := NewEngine(p)
	if rec != nil {
		eng.AddRecorder(rec)
	}
	wf := BuildChallenge(ChallengeConfig{Input: "/data/input", Work: "/data/work", Out: "/data/out"})
	if err := eng.Run(wf); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestChallengeProducesOutputs(t *testing.T) {
	m := newMachine(t)
	p := runChallenge(t, m, nil)
	for _, out := range ChallengeOutputs() {
		st, err := p.Stat("/data/out/" + out)
		if err != nil || st.Size == 0 {
			t.Fatalf("output %s missing: %v", out, err)
		}
	}
	// Intermediates landed in the work dir.
	if _, err := p.Stat("/data/work/atlas.img"); err != nil {
		t.Fatal("softmean intermediate missing")
	}
}

func TestChangedInputChangesOutput(t *testing.T) {
	m := newMachine(t)
	runChallenge(t, m, nil)
	p := m.k.Spawn(nil, "reader", nil, nil)
	before, err := readAll(p, "/data/out/atlas-x.gif")
	if err != nil {
		t.Fatal(err)
	}
	// A colleague silently modifies one input (the §3.1 scenario).
	fd, _ := p.Open("/data/input/anatomy2.img", vfs.OCreate|vfs.OTrunc|vfs.ORdWr)
	p.Write(fd, []byte("MODIFIED"))
	p.Close(fd)
	runChallenge(t, m, nil)
	after, _ := readAll(p, "/data/out/atlas-x.gif")
	if bytes.Equal(before, after) {
		t.Fatal("output did not change when an input changed")
	}
}

func readAll(p *kernel.Process, path string) ([]byte, error) {
	fd, err := p.Open(path, vfs.ORdOnly)
	if err != nil {
		return nil, err
	}
	defer p.Close(fd)
	st, _ := p.Stat(path)
	buf := make([]byte, st.Size)
	n, err := p.Read(fd, buf)
	return buf[:n], err
}

func TestTextRecorder(t *testing.T) {
	m := newMachine(t)
	p := m.k.Spawn(nil, "kepler", nil, nil)
	m.seedChallengeInputs(t, p, "/data/input")
	p.MkdirAll("/data/work")
	p.MkdirAll("/data/out")
	rec := NewTextRecorder(p, "/data/kepler.log")
	eng := NewEngine(p)
	eng.AddRecorder(rec)
	wf := BuildChallenge(ChallengeConfig{Input: "/data/input", Work: "/data/work", Out: "/data/out"})
	if err := eng.Run(wf); err != nil {
		t.Fatal(err)
	}
	lines := rec.Lines()
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"operator softmean", "message softmean -> slicer_x", "read anatomy1src", "write sink_x"} {
		if !strings.Contains(joined, want) {
			t.Errorf("text log missing %q", want)
		}
	}
	// The log file itself was written through the kernel.
	if _, err := p.Stat("/data/kepler.log"); err != nil {
		t.Fatal("log file missing")
	}
}

func TestTableRecorder(t *testing.T) {
	m := newMachine(t)
	rec := &TableRecorder{}
	runChallenge(t, m, rec)
	kinds := map[string]int{}
	for _, row := range rec.Rows {
		kinds[row.Kind]++
	}
	// 5 sources + 4 align_warp + 4 reslice + softmean + 3 slicer +
	// 3 convert + 3 sinks = 23 operators.
	if kinds["operator"] != 23 {
		t.Fatalf("operators = %d", kinds["operator"])
	}
	if kinds["message"] == 0 || kinds["read"] != 5 || kinds["write"] == 0 {
		t.Fatalf("row kinds = %v", kinds)
	}
}

func TestPASSRecorderLayeredProvenance(t *testing.T) {
	m := newMachine(t)
	p := m.k.Spawn(nil, "kepler", nil, nil)
	m.seedChallengeInputs(t, p, "/data/input")
	p.MkdirAll("/data/work")
	p.MkdirAll("/data/out")
	rec := NewPASSRecorder(p, "/data")
	eng := NewEngine(p)
	eng.AddRecorder(rec)
	wf := BuildChallenge(ChallengeConfig{Input: "/data/input", Work: "/data/work", Out: "/data/out"})
	if err := eng.Run(wf); err != nil {
		t.Fatal(err)
	}
	if err := m.w.Drain(); err != nil {
		t.Fatal(err)
	}
	db := m.w.DB

	// Operators exist as OPERATOR objects with PARAMS.
	ops := db.ByType(record.TypeOperator)
	if len(ops) < 20 {
		t.Fatalf("only %d operators in DB", len(ops))
	}
	soft := db.ByName("softmean")
	if len(soft) != 1 {
		t.Fatalf("softmean objects = %v", soft)
	}
	// atlas-x.gif's ancestry must reach the workflow operators AND the
	// input files — the layered query of §5.7.
	gifs := db.ByName("/data/out/atlas-x.gif")
	if len(gifs) != 1 {
		t.Fatal("atlas-x.gif not in DB")
	}
	v, _ := db.LatestVersion(gifs[0])
	anc := ancestorNames(db, pnode.Ref{PNode: gifs[0], Version: v})
	for _, want := range []string{"softmean", "convert_x", "slicer_x", "/data/input/anatomy1.img", "/data/input/reference.img"} {
		if !anc[want] {
			t.Errorf("ancestry missing %q (have %d names)", want, len(anc))
		}
	}
	// Layering differentiator: the ancestry crosses from a FILE object
	// into OPERATOR objects and back into FILE objects.
}

func ancestorNames(db *waldo.DB, start pnode.Ref) map[string]bool {
	names := map[string]bool{}
	seen := map[pnode.Ref]bool{}
	stack := []pnode.Ref{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		if name, ok := db.NameOf(n.PNode); ok {
			names[name] = true
		}
		stack = append(stack, db.Inputs(n)...)
	}
	return names
}

func TestWorkflowCycleRejected(t *testing.T) {
	wf := NewWorkflow("cyclic")
	wf.Add(&Operator{Name: "a", In: []string{"in"}, Out: []string{"out"},
		Fire: func(*Ctx, map[string]Token) (map[string]Token, error) { return nil, nil }})
	wf.Add(&Operator{Name: "b", In: []string{"in"}, Out: []string{"out"},
		Fire: func(*Ctx, map[string]Token) (map[string]Token, error) { return nil, nil }})
	wf.Connect("a", "out", "b", "in")
	wf.Connect("b", "out", "a", "in")
	m := newMachine(t)
	p := m.k.Spawn(nil, "kepler", nil, nil)
	if err := NewEngine(p).Run(wf); err == nil {
		t.Fatal("cyclic workflow must be rejected")
	}
}

func TestMissingTokenError(t *testing.T) {
	wf := NewWorkflow("incomplete")
	wf.Add(&Operator{Name: "lonely", In: []string{"in"},
		Fire: func(*Ctx, map[string]Token) (map[string]Token, error) { return nil, nil }})
	m := newMachine(t)
	p := m.k.Spawn(nil, "kepler", nil, nil)
	if err := NewEngine(p).Run(wf); err == nil || !strings.Contains(err.Error(), "no token") {
		t.Fatalf("want missing-token error, got %v", err)
	}
}

func TestDuplicateOperatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate operator must panic")
		}
	}()
	wf := NewWorkflow("dup")
	op := &Operator{Name: "x"}
	wf.Add(op)
	wf.Add(&Operator{Name: "x"})
}
