package kepler

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"passv2/internal/dpapi"
	"passv2/internal/kernel"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// TextRecorder is Kepler's first-generation backend: provenance events as
// lines in a text file (written through the kernel so even the recording
// itself has provenance).
type TextRecorder struct {
	proc *kernel.Process
	path string

	mu    sync.Mutex
	lines []string
}

// NewTextRecorder logs events to path.
func NewTextRecorder(proc *kernel.Process, path string) *TextRecorder {
	return &TextRecorder{proc: proc, path: path}
}

func (t *TextRecorder) log(format string, args ...interface{}) {
	t.mu.Lock()
	t.lines = append(t.lines, fmt.Sprintf(format, args...))
	t.mu.Unlock()
}

func (t *TextRecorder) OperatorCreated(op *Operator) {
	t.log("operator %s params=%s", op.Name, formatParams(op.Params))
}

func (t *TextRecorder) MessageSent(from, to *Operator, tok Token) {
	t.log("message %s -> %s (%d bytes)", from.Name, to.Name, len(tok.Data))
}

func (t *TextRecorder) FileRead(op *Operator, path string, ref pnode.Ref) {
	t.log("read %s <- %s", op.Name, path)
}

func (t *TextRecorder) FileWriting(op *Operator, path string, fd int) {
	t.log("write %s -> %s", op.Name, path)
}

func (t *TextRecorder) RunFinished(wf *Workflow) {
	t.mu.Lock()
	data := strings.Join(t.lines, "\n") + "\n"
	t.mu.Unlock()
	fd, err := t.proc.Open(t.path, vfs.OCreate|vfs.OTrunc|vfs.ORdWr)
	if err != nil {
		return
	}
	defer t.proc.Close(fd)
	t.proc.Write(fd, []byte(data))
}

// Lines exposes the recorded events (tests).
func (t *TextRecorder) Lines() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.lines...)
}

func formatParams(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + m[k]
	}
	return strings.Join(parts, ",")
}

// TableRecorder is the relational-style backend: rows in memory, the way
// Kepler's RDBMS option stores events.
type TableRecorder struct {
	mu   sync.Mutex
	Rows []TableRow
}

// TableRow is one provenance event row.
type TableRow struct {
	Kind string // "operator", "message", "read", "write"
	From string
	To   string
	Info string
}

func (t *TableRecorder) add(r TableRow) {
	t.mu.Lock()
	t.Rows = append(t.Rows, r)
	t.mu.Unlock()
}

func (t *TableRecorder) OperatorCreated(op *Operator) {
	t.add(TableRow{Kind: "operator", From: op.Name, Info: formatParams(op.Params)})
}

func (t *TableRecorder) MessageSent(from, to *Operator, tok Token) {
	t.add(TableRow{Kind: "message", From: from.Name, To: to.Name, Info: fmt.Sprint(len(tok.Data))})
}

func (t *TableRecorder) FileRead(op *Operator, path string, ref pnode.Ref) {
	t.add(TableRow{Kind: "read", From: path, To: op.Name})
}

func (t *TableRecorder) FileWriting(op *Operator, path string, fd int) {
	t.add(TableRow{Kind: "write", From: op.Name, To: path})
}

func (t *TableRecorder) RunFinished(wf *Workflow) {}

// PASSRecorder is the third recording option the paper adds: transmit the
// provenance into PASSv2 via the DPAPI. Every operator becomes a phantom
// object (pass_mkobj) with NAME, TYPE and PARAMS records; every message
// adds an ancestry relationship between sender and recipient; the data
// source/sink hooks link Kepler's provenance to the files' provenance.
type PASSRecorder struct {
	proc *kernel.Process
	hint string // PASS volume hint for operator objects

	mu   sync.Mutex
	objs map[string]dpapi.Object
}

// NewPASSRecorder records into PASSv2 through proc. hint names the volume
// that should hold workflow provenance (e.g. "/data").
func NewPASSRecorder(proc *kernel.Process, hint string) *PASSRecorder {
	return &PASSRecorder{proc: proc, hint: hint, objs: make(map[string]dpapi.Object)}
}

// ObjectFor returns the PASS object of an operator (tests, queries).
func (p *PASSRecorder) ObjectFor(name string) (dpapi.Object, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	o, ok := p.objs[name]
	return o, ok
}

func (p *PASSRecorder) OperatorCreated(op *Operator) {
	p.mu.Lock()
	if _, exists := p.objs[op.Name]; exists {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	obj, err := p.proc.PassMkobj(p.hint)
	if err != nil {
		return
	}
	ref := obj.Ref()
	recs := []record.Record{
		record.New(ref, record.AttrType, record.StringVal(record.TypeOperator)),
		record.New(ref, record.AttrName, record.StringVal(op.Name)),
	}
	if len(op.Params) > 0 {
		recs = append(recs, record.New(ref, record.AttrParams, record.StringVal(formatParams(op.Params))))
	}
	obj.PassWrite(nil, 0, record.NewBundle(recs...))
	p.mu.Lock()
	p.objs[op.Name] = obj
	p.mu.Unlock()
}

// MessageSent adds the recipient←sender ancestry relationship — the only
// Kepler recording operation that sends data relationships to PASSv2
// (§6.2).
func (p *PASSRecorder) MessageSent(from, to *Operator, tok Token) {
	p.mu.Lock()
	src, ok1 := p.objs[from.Name]
	dst, ok2 := p.objs[to.Name]
	p.mu.Unlock()
	if !ok1 || !ok2 {
		return
	}
	recs := []record.Record{record.Input(dst.Ref(), src.Ref())}
	// The token may carry file identities picked up by pass_read.
	for _, ref := range tok.Refs {
		if ref.IsValid() {
			recs = append(recs, record.Input(dst.Ref(), ref))
		}
	}
	dst.PassWrite(nil, 0, record.NewBundle(recs...))
}

// FileRead links a source operator to the exact file version it consumed.
func (p *PASSRecorder) FileRead(op *Operator, path string, ref pnode.Ref) {
	if !ref.IsValid() {
		return
	}
	p.mu.Lock()
	obj, ok := p.objs[op.Name]
	p.mu.Unlock()
	if !ok {
		return
	}
	obj.PassWrite(nil, 0, record.NewBundle(record.Input(obj.Ref(), ref)))
}

// FileWriting links the file being written to the operator writing it, by
// disclosing through the open descriptor (pass_write with no data).
func (p *PASSRecorder) FileWriting(op *Operator, path string, fd int) {
	p.mu.Lock()
	obj, ok := p.objs[op.Name]
	p.mu.Unlock()
	if !ok {
		return
	}
	kfd, err := p.proc.FDGet(fd)
	if err != nil || kfd.PassFile() == nil {
		return
	}
	fileRef := kfd.PassFile().Ref()
	p.proc.PassWriteFd(fd, nil, record.NewBundle(record.Input(fileRef, obj.Ref())))
}

func (p *PASSRecorder) RunFinished(wf *Workflow) {}

var (
	_ Recorder = (*TextRecorder)(nil)
	_ Recorder = (*TableRecorder)(nil)
	_ Recorder = (*PASSRecorder)(nil)
)
