package kepler

import (
	"strings"
	"testing"

	"passv2/internal/dpapi/dpapitest"
	"passv2/internal/passd"
	"passv2/internal/pnode"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// pipelineWorkflow is a deterministic three-stage dataflow — read,
// transform, write — whose every operator ends up in the ancestry of the
// written output, so the in-process run materializes exactly the records
// the remote run discloses eagerly.
func pipelineWorkflow() *Workflow {
	wf := NewWorkflow("pipeline")
	wf.Add(&Operator{
		Name:   "ingest",
		Params: map[string]string{"path": "/data/in.txt"},
		Out:    []string{"out"},
		Fire: func(ctx *Ctx, in map[string]Token) (map[string]Token, error) {
			data, ref, err := ctx.ReadFile("/data/in.txt")
			if err != nil {
				return nil, err
			}
			return map[string]Token{"out": {Data: data, Refs: []pnode.Ref{ref}}}, nil
		},
	})
	wf.Add(&Operator{
		Name:   "upcase",
		Params: map[string]string{"mode": "upper"},
		In:     []string{"in"},
		Out:    []string{"out"},
		Fire: func(ctx *Ctx, in map[string]Token) (map[string]Token, error) {
			tok := in["in"]
			return map[string]Token{"out": {
				Data: []byte(strings.ToUpper(string(tok.Data))),
				Refs: tok.Refs,
			}}, nil
		},
	})
	wf.Add(&Operator{
		Name: "publish",
		In:   []string{"in"},
		Fire: func(ctx *Ctx, in map[string]Token) (map[string]Token, error) {
			return nil, ctx.WriteFile("/data/out.txt", in["in"].Data)
		},
	})
	wf.Connect("ingest", "out", "upcase", "in")
	wf.Connect("upcase", "out", "publish", "in")
	return wf
}

// runPipeline seeds the input, runs the workflow under a PASSRecorder on
// m, and drains m's local database. The recorder is constructed exactly
// as a local run would construct it — whether its pass_mkobj objects end
// up local or remote is decided entirely below it, which is the point.
func runPipeline(t *testing.T, m *machine) {
	t.Helper()
	p := m.k.Spawn(nil, "kepler", []string{"kepler", "pipeline"}, nil)
	fd, err := p.Open("/data/in.txt", vfs.OCreate|vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(fd, []byte("tokens flowing downstream")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(p)
	eng.AddRecorder(NewPASSRecorder(p, "/data"))
	if err := eng.Run(pipelineWorkflow()); err != nil {
		t.Fatal(err)
	}
	if err := m.w.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestPASSRecorderRemoteEquivalence is the layering acceptance test: the
// same workflow run twice under the unmodified PASSRecorder — once with
// local phantom objects, once with the machine's phantom layer stacked on
// a remote passd daemon — must yield byte-identical provenance graphs
// (identity-normalized; the remote run's graph spans the machine's
// database plus the daemon's).
func TestPASSRecorderRemoteEquivalence(t *testing.T) {
	// In-process run.
	local := newMachine(t)
	runPipeline(t, local)
	want := dpapitest.CanonicalGraph(local.w.DB)

	// Remote run: identical machine, phantom objects on a passd daemon.
	remote := newMachine(t)
	serverW := waldo.New()
	srv, err := passd.Serve(serverW, passd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := passd.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	remote.o.SetPhantomLayer(c)
	runPipeline(t, remote)
	got := dpapitest.CanonicalGraph(remote.w.DB, serverW.DB)

	if got != want {
		t.Fatalf("remote-layered provenance graph differs from in-process run:\n--- in-process\n%s\n--- remote\n%s", want, got)
	}
	if !strings.Contains(want, "upcase") || !strings.Contains(want, "/data/out.txt") {
		t.Fatalf("graph misses expected objects:\n%s", want)
	}
}
