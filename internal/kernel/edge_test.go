package kernel

import (
	"errors"
	"testing"

	"passv2/internal/vfs"
)

func TestExecMissingBinaryStillExecs(t *testing.T) {
	// execve of a name not on any volume (e.g. a built-in) still replaces
	// the image; there is simply no binary dependency.
	k, _ := newTestKernel(t)
	p := k.Spawn(nil, "sh", nil, nil)
	before := p.Ref()
	if err := p.Exec("/no/such/bin", []string{"ghost"}, nil); err != nil {
		t.Fatal(err)
	}
	if p.Ref() == before || p.Name != "bin" {
		t.Fatalf("exec identity/name wrong: %v %q", p.Ref(), p.Name)
	}
}

func TestExecAfterExitFails(t *testing.T) {
	k, _ := newTestKernel(t)
	p := k.Spawn(nil, "sh", nil, nil)
	p.Exit()
	if err := p.Exec("/bin/x", nil, nil); err == nil {
		t.Fatal("exec after exit must fail")
	}
	if _, _, err := p.Pipe(); err == nil {
		t.Fatal("pipe after exit must fail")
	}
}

func TestGiveFDErrors(t *testing.T) {
	k, _ := newTestKernel(t)
	a := k.Spawn(nil, "a", nil, nil)
	b := k.Spawn(nil, "b", nil, nil)
	if _, err := a.GiveFD(99, b); !errors.Is(err, ErrBadFD) {
		t.Fatalf("GiveFD of bad fd: %v", err)
	}
	fd, _ := a.Open("/f", vfs.OCreate|vfs.ORdWr)
	nfd, err := a.GiveFD(fd, b)
	if err != nil {
		t.Fatal(err)
	}
	// The giver no longer owns it; the receiver does.
	if _, err := a.Write(fd, []byte("x")); !errors.Is(err, ErrBadFD) {
		t.Fatal("giver kept the fd")
	}
	if _, err := b.Write(nfd, []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateViaProcess(t *testing.T) {
	k, fs := newTestKernel(t)
	vfs.WriteFile(fs, "/f", []byte("0123456789"))
	p := k.Spawn(nil, "sh", nil, nil)
	fd, _ := p.Open("/f", vfs.ORdWr)
	if err := p.Truncate(fd, 4); err != nil {
		t.Fatal(err)
	}
	got, _ := vfs.ReadFile(fs, "/f")
	if string(got) != "0123" {
		t.Fatalf("truncate: %q", got)
	}
	pr, _, _ := p.Pipe()
	if err := p.Truncate(pr, 0); !errors.Is(err, ErrNotFile) {
		t.Fatalf("truncate pipe: %v", err)
	}
}

func TestNamespaceSyscalls(t *testing.T) {
	k, _ := newTestKernel(t)
	p := k.Spawn(nil, "sh", nil, nil)
	if err := p.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if err := p.Mkdir("/a/b/c/d"); err != nil {
		t.Fatal(err)
	}
	st, err := p.Stat("/a/b/c/d")
	if err != nil || !st.IsDir {
		t.Fatalf("stat: %+v %v", st, err)
	}
	ents, err := p.ReadDir("/a/b/c")
	if err != nil || len(ents) != 1 || ents[0].Name != "d" {
		t.Fatalf("readdir: %v %v", ents, err)
	}
	if err := p.Remove("/a/b/c/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Stat("/a/b/c/d"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("remove did not remove")
	}
}

func TestWriteToReadEndOfPipe(t *testing.T) {
	k, _ := newTestKernel(t)
	p := k.Spawn(nil, "sh", nil, nil)
	pr, pw, _ := p.Pipe()
	if _, err := p.Write(pr, []byte("x")); !errors.Is(err, ErrNotFile) {
		t.Fatalf("write to read end: %v", err)
	}
	if _, err := p.Read(pw, make([]byte, 1)); !errors.Is(err, ErrNotFile) {
		t.Fatalf("read from write end: %v", err)
	}
	if _, err := p.Seek(pr, 0, 0); !errors.Is(err, ErrNotFile) {
		t.Fatalf("seek on pipe: %v", err)
	}
}

func TestDoubleCloseAndBadFD(t *testing.T) {
	k, _ := newTestKernel(t)
	p := k.Spawn(nil, "sh", nil, nil)
	fd, _ := p.Open("/f", vfs.OCreate)
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(fd); !errors.Is(err, ErrBadFD) {
		t.Fatalf("double close: %v", err)
	}
	if err := p.Close(12345); !errors.Is(err, ErrBadFD) {
		t.Fatalf("close bad fd: %v", err)
	}
}

func TestChdirRelative(t *testing.T) {
	k, fs := newTestKernel(t)
	fs.MkdirAll("/a/b")
	p := k.Spawn(nil, "sh", nil, nil)
	if err := p.Chdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := p.Chdir("b"); err != nil {
		t.Fatal(err)
	}
	if p.Cwd() != "/a/b" {
		t.Fatalf("cwd = %q", p.Cwd())
	}
	if err := p.Chdir(".."); err != nil {
		t.Fatal(err)
	}
	if p.Cwd() != "/a" {
		t.Fatalf("cwd after .. = %q", p.Cwd())
	}
	if err := p.Chdir("/missing"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("chdir missing: %v", err)
	}
}

func TestOpenAppendSetsOffset(t *testing.T) {
	k, fs := newTestKernel(t)
	vfs.WriteFile(fs, "/log", []byte("abc"))
	p := k.Spawn(nil, "sh", nil, nil)
	fd, _ := p.Open("/log", vfs.OAppend)
	kfd, _ := p.FDGet(fd)
	if kfd.Offset() != 3 {
		t.Fatalf("append offset = %d", kfd.Offset())
	}
}

func TestPwriteRespectsReadOnly(t *testing.T) {
	k, fs := newTestKernel(t)
	vfs.WriteFile(fs, "/ro", []byte("x"))
	p := k.Spawn(nil, "sh", nil, nil)
	fd, _ := p.Open("/ro", vfs.ORdOnly)
	if _, err := p.Pwrite(fd, []byte("y"), 0); !errors.Is(err, vfs.ErrReadOnly) {
		t.Fatalf("pwrite on ro: %v", err)
	}
}
