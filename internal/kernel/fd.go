package kernel

import (
	"errors"

	"passv2/internal/vfs"
)

// Errors in the fd layer.
var (
	ErrBadFD    = errors.New("kernel: bad file descriptor")
	ErrClosedFD = errors.New("kernel: file descriptor closed")
	ErrNotFile  = errors.New("kernel: not a regular file")
	ErrNotPipe  = errors.New("kernel: not a pipe")
)

// FDKind distinguishes what a descriptor refers to.
type FDKind uint8

const (
	FDFile FDKind = iota
	FDPipeRead
	FDPipeWrite
	FDPassObj
)

// FD is an open file descriptor within a process.
type FD struct {
	Num   int
	Kind  FDKind
	Path  string // absolute path for files; "" for pipes/objects
	Flags vfs.Flags

	file vfs.File     // FDFile
	pass vfs.PassFile // non-nil when the file is on a PASS volume or is a phantom object
	pipe *Pipe        // FDPipeRead / FDPipeWrite

	offset int64
	closed bool
}

// File returns the underlying vfs file, or nil for pipes.
func (fd *FD) File() vfs.File { return fd.file }

// PassFile returns the DPAPI-capable handle if the descriptor is on a
// PASS-enabled volume (or is a phantom object), else nil.
func (fd *FD) PassFile() vfs.PassFile { return fd.pass }

// Pipe returns the pipe, or nil for files.
func (fd *FD) Pipe() *Pipe { return fd.pipe }

// Offset returns the descriptor's current file offset.
func (fd *FD) Offset() int64 { return fd.offset }

// IsPass reports whether the descriptor supports DPAPI inode operations.
func (fd *FD) IsPass() bool { return fd.pass != nil }
