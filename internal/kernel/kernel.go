// Package kernel simulates the operating-system substrate PASSv2 modifies:
// a process table, file descriptors, pipes, a mount namespace and the
// system calls the PASSv2 interceptor hooks (execve, fork, exit, read,
// write, mmap, open, pipe, plus drop_inode). The real system patches Linux
// 2.6.23; this reproduction routes the same events through the same
// architectural seam — a Hooks interface standing in for the interceptor —
// so the observer/analyzer/distributor pipeline above it is faithful.
package kernel

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"passv2/internal/dpapi"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// Hooks is the interceptor seam. The PASSv2 observer implements it; a nil
// Hooks yields a vanilla kernel (the ext3 baseline in the evaluation).
//
// Read and Write sit *in the data path*, mirroring how the PASSv2 observer
// issues pass_read/pass_write itself so data and provenance move together
// (§5.3). The remaining methods are notifications.
type Hooks interface {
	// Spawn fires when a process is created (fork); parent is nil for
	// the initial process.
	Spawn(p, parent *Process)
	// Exec fires after a process replaces its image. oldRef is the
	// process identity before the exec; binary is the executed file's
	// descriptor-like view (nil if the binary is not on any volume).
	Exec(p *Process, oldRef pnode.Ref, binaryPath string, binary vfs.PassFile, binaryFS vfs.FS)
	// Exit fires when a process exits.
	Exit(p *Process)
	// Open fires after a successful file open.
	Open(p *Process, fd *FD)
	// Read performs a provenance-aware read of a regular file.
	Read(p *Process, fd *FD, buf []byte, off int64) (int, error)
	// Write performs a provenance-aware write of a regular file.
	Write(p *Process, fd *FD, data []byte, off int64) (int, error)
	// PipeRead / PipeWrite fire after pipe transfers.
	PipeRead(p *Process, pipe *Pipe, n int)
	PipeWrite(p *Process, pipe *Pipe, n int)
	// Mmap fires on memory mapping; writable reports PROT_WRITE.
	Mmap(p *Process, fd *FD, writable bool)
	// Rename fires after a successful rename so the observer can refresh
	// the object's NAME record (provenance follows the file, §3.2).
	Rename(p *Process, fs vfs.FS, oldPath, newPath string)
	// DropInode fires when a file's last link is removed (the kernel
	// drop_inode operation the interceptor watches).
	DropInode(fs vfs.FS, path string, st vfs.Stat)
	// Disclose is the DPAPI entry point (§5.3): a provenance-aware
	// application sends an explicit bundle, optionally with data, to a
	// descriptor. The observer augments and forwards it.
	Disclose(p *Process, fd *FD, data []byte, off int64, b *record.Bundle) (int, error)
	// PassRead performs a provenance-aware read returning the exact
	// identity of what was read (the user-level pass_read).
	PassRead(p *Process, fd *FD, buf []byte, off int64) (int, pnode.Ref, error)
	// Mkobj creates a phantom object on behalf of a process. volumePath
	// hints which PASS volume should eventually store its provenance
	// ("" = choose when it joins persistent ancestry).
	Mkobj(p *Process, volumePath string) (dpapi.Object, error)
	// Revive returns a handle to a previously created phantom object.
	Revive(p *Process, ref pnode.Ref) (dpapi.Object, error)
}

// Pid identifies a process.
type Pid int

// Kernel is the simulated operating system.
type Kernel struct {
	Mounts *vfs.MountTable
	Clock  *vfs.Clock

	hooks Hooks
	// Transient-object pnode space (processes, pipes, non-PASS files).
	pnodes *pnode.Allocator

	// CPUCost converts a unit of simulated computation into clock time;
	// Process.Compute uses it.
	CPUCost time.Duration

	mu      sync.Mutex
	nextPid Pid
	procs   map[Pid]*Process
}

// New creates a kernel with an empty mount namespace.
func New(clock *vfs.Clock) *Kernel {
	return &Kernel{
		Mounts:  vfs.NewMountTable(),
		Clock:   clock,
		pnodes:  pnode.NewPrefixed(0xFFFF), // transient space, never collides with volumes
		procs:   make(map[Pid]*Process),
		CPUCost: 100 * time.Nanosecond, // ~3GHz P4 doing ~10 ops per unit
	}
}

// SetHooks installs the interceptor/observer. Must be called before
// processes are spawned.
func (k *Kernel) SetHooks(h Hooks) { k.hooks = h }

// Hooks returns the installed hooks, possibly nil.
func (k *Kernel) HooksInstalled() bool { return k.hooks != nil }

// AllocTransient allocates a pnode in the kernel's transient space.
func (k *Kernel) AllocTransient() pnode.Ref {
	return pnode.Ref{PNode: k.pnodes.Next(), Version: 1}
}

// Mount attaches a file system into the namespace.
func (k *Kernel) Mount(prefix string, fs vfs.FS) { k.Mounts.Mount(prefix, fs) }

// Resolve maps an absolute path to its volume.
func (k *Kernel) Resolve(path string) (vfs.FS, string, error) {
	return k.Mounts.Resolve(path)
}

// Process is a simulated process: a first-class provenance object.
type Process struct {
	k *Kernel

	Pid  Pid
	Name string
	Argv []string
	Env  []string

	mu     sync.Mutex
	ref    pnode.Ref // provenance identity; replaced on exec
	cwd    string
	fds    map[int]*FD
	nextFd int
	exited bool
}

// Spawn creates a process as a child of parent (nil for the first
// process). The returned process has exec'd name already (convenience for
// spawn-then-exec, the common pattern in the workloads).
func (k *Kernel) Spawn(parent *Process, name string, argv, env []string) *Process {
	k.mu.Lock()
	k.nextPid++
	p := &Process{
		k:    k,
		Pid:  k.nextPid,
		Name: name,
		Argv: argv,
		Env:  env,
		ref:  k.AllocTransient(),
		cwd:  "/",
		fds:  make(map[int]*FD),
	}
	if parent != nil {
		p.cwd = parent.cwd
	}
	k.procs[p.Pid] = p
	k.mu.Unlock()
	if k.hooks != nil {
		k.hooks.Spawn(p, parent)
	}
	return p
}

// Processes returns a snapshot of live processes.
func (k *Kernel) Processes() []*Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Process, 0, len(k.procs))
	for _, p := range k.procs {
		out = append(out, p)
	}
	return out
}

// Ref returns the process's current provenance identity.
func (p *Process) Ref() pnode.Ref {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ref
}

// Kernel returns the owning kernel.
func (p *Process) Kernel() *Kernel { return p.k }

// Cwd returns the current working directory.
func (p *Process) Cwd() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cwd
}

// Chdir changes the working directory.
func (p *Process) Chdir(path string) error {
	abs := p.Abs(path)
	fs, rel, err := p.k.Resolve(abs)
	if err != nil {
		return err
	}
	st, err := fs.Stat(rel)
	if err != nil {
		return err
	}
	if !st.IsDir {
		return vfs.ErrNotDir
	}
	p.mu.Lock()
	p.cwd = abs
	p.mu.Unlock()
	return nil
}

// Abs resolves path against the process cwd.
func (p *Process) Abs(path string) string {
	if len(path) > 0 && path[0] == '/' {
		return vfs.Clean(path)
	}
	p.mu.Lock()
	cwd := p.cwd
	p.mu.Unlock()
	return vfs.Join(cwd, path)
}

// Fork creates a child process inheriting name, argv, env and cwd. Open
// descriptors are not inherited (the workloads do not need it, and it
// keeps pipe lifetime tractable); pass descriptors explicitly instead.
func (p *Process) Fork() *Process {
	return p.k.Spawn(p, p.Name, p.Argv, p.Env)
}

// Exec replaces the process image: the process gets a fresh provenance
// identity descending from both the old identity and the binary.
func (p *Process) Exec(binPath string, argv, env []string) error {
	if p.isExited() {
		return errExited
	}
	abs := p.Abs(binPath)
	fs, rel, err := p.k.Resolve(abs)
	var passBin vfs.PassFile
	var binFS vfs.FS
	if err == nil {
		binFS = fs
		if pfs, ok := fs.(vfs.PassFS); ok {
			if f, oerr := pfs.Open(rel, vfs.ORdOnly); oerr == nil {
				if pf, ok := f.(vfs.PassFile); ok {
					passBin = pf
				} else {
					f.Close()
				}
			}
		}
	}
	p.mu.Lock()
	oldRef := p.ref
	p.ref = p.k.AllocTransient()
	p.Name = vfs.Base(abs)
	p.Argv = argv
	p.Env = env
	p.mu.Unlock()
	if p.k.hooks != nil {
		p.k.hooks.Exec(p, oldRef, abs, passBin, binFS)
	}
	if passBin != nil {
		passBin.Close()
	}
	return nil
}

var errExited = errors.New("kernel: process has exited")

func (p *Process) isExited() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exited
}

// Exit terminates the process, closing its descriptors.
func (p *Process) Exit() {
	p.mu.Lock()
	if p.exited {
		p.mu.Unlock()
		return
	}
	p.exited = true
	fds := make([]*FD, 0, len(p.fds))
	for _, fd := range p.fds {
		fds = append(fds, fd)
	}
	p.fds = map[int]*FD{}
	p.mu.Unlock()
	for _, fd := range fds {
		p.closeFD(fd)
	}
	if p.k.hooks != nil {
		p.k.hooks.Exit(p)
	}
	p.k.mu.Lock()
	delete(p.k.procs, p.Pid)
	p.k.mu.Unlock()
}

// Compute charges units of CPU work to the simulated clock. Workloads use
// it to model computation (compilation, BLAST scoring, plotting).
func (p *Process) Compute(units int64) {
	if p.k.Clock != nil && units > 0 {
		p.k.Clock.Advance(time.Duration(units) * p.k.CPUCost)
	}
}

// installFD registers an fd with the process.
func (p *Process) installFD(fd *FD) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	num := p.nextFd
	p.nextFd++
	fd.Num = num
	p.fds[num] = fd
	return num
}

// FDGet looks up a descriptor.
func (p *Process) FDGet(num int) (*FD, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fd, ok := p.fds[num]
	if !ok {
		return nil, ErrBadFD
	}
	if fd.closed {
		return nil, ErrClosedFD
	}
	return fd, nil
}

// Open opens path with flags, returning a descriptor number.
func (p *Process) Open(path string, flags vfs.Flags) (int, error) {
	if p.isExited() {
		return -1, errExited
	}
	abs := p.Abs(path)
	fs, rel, err := p.k.Resolve(abs)
	if err != nil {
		return -1, err
	}
	f, err := fs.Open(rel, flags)
	if err != nil {
		return -1, fmt.Errorf("open %s: %w", abs, err)
	}
	fd := &FD{Kind: FDFile, Path: abs, Flags: flags, file: f}
	if pf, ok := f.(vfs.PassFile); ok {
		fd.pass = pf
	}
	if flags&vfs.OAppend != 0 {
		fd.offset = f.Size()
	}
	num := p.installFD(fd)
	if p.k.hooks != nil {
		p.k.hooks.Open(p, fd)
	}
	return num, nil
}

// Close closes a descriptor.
func (p *Process) Close(num int) error {
	p.mu.Lock()
	fd, ok := p.fds[num]
	if ok {
		delete(p.fds, num)
	}
	p.mu.Unlock()
	if !ok {
		return ErrBadFD
	}
	return p.closeFD(fd)
}

func (p *Process) closeFD(fd *FD) error {
	if fd.closed {
		return ErrClosedFD
	}
	fd.closed = true
	switch fd.Kind {
	case FDFile:
		return fd.file.Close()
	case FDPipeRead:
		fd.pipe.closeRead()
	case FDPipeWrite:
		fd.pipe.closeWrite()
	case FDPassObj:
		return fd.pass.Close()
	}
	return nil
}

// Read reads from a descriptor at its current offset.
func (p *Process) Read(num int, buf []byte) (int, error) {
	fd, err := p.FDGet(num)
	if err != nil {
		return 0, err
	}
	switch fd.Kind {
	case FDFile, FDPassObj:
		n, err := p.pread(fd, buf, fd.offset)
		fd.offset += int64(n)
		return n, err
	case FDPipeRead:
		n, err := fd.pipe.read(buf)
		if n > 0 && p.k.hooks != nil {
			p.k.hooks.PipeRead(p, fd.pipe, n)
		}
		return n, err
	default:
		return 0, ErrNotFile
	}
}

// Pread reads at an explicit offset without moving the descriptor offset.
func (p *Process) Pread(num int, buf []byte, off int64) (int, error) {
	fd, err := p.FDGet(num)
	if err != nil {
		return 0, err
	}
	if fd.Kind != FDFile && fd.Kind != FDPassObj {
		return 0, ErrNotFile
	}
	return p.pread(fd, buf, off)
}

func (p *Process) pread(fd *FD, buf []byte, off int64) (int, error) {
	if p.k.hooks != nil {
		return p.k.hooks.Read(p, fd, buf, off)
	}
	return fd.file.ReadAt(buf, off)
}

// Write writes to a descriptor at its current offset.
func (p *Process) Write(num int, data []byte) (int, error) {
	fd, err := p.FDGet(num)
	if err != nil {
		return 0, err
	}
	switch fd.Kind {
	case FDFile, FDPassObj:
		if fd.Flags&vfs.OAppend != 0 {
			fd.offset = fd.file.Size()
		}
		n, err := p.pwrite(fd, data, fd.offset)
		fd.offset += int64(n)
		return n, err
	case FDPipeWrite:
		n, err := fd.pipe.write(data)
		if n > 0 && p.k.hooks != nil {
			p.k.hooks.PipeWrite(p, fd.pipe, n)
		}
		return n, err
	default:
		return 0, ErrNotFile
	}
}

// Pwrite writes at an explicit offset without moving the descriptor
// offset.
func (p *Process) Pwrite(num int, data []byte, off int64) (int, error) {
	fd, err := p.FDGet(num)
	if err != nil {
		return 0, err
	}
	if fd.Kind != FDFile && fd.Kind != FDPassObj {
		return 0, ErrNotFile
	}
	return p.pwrite(fd, data, off)
}

func (p *Process) pwrite(fd *FD, data []byte, off int64) (int, error) {
	if !fd.Flags.MayWrite() {
		return 0, vfs.ErrReadOnly
	}
	if p.k.hooks != nil {
		return p.k.hooks.Write(p, fd, data, off)
	}
	return fd.file.WriteAt(data, off)
}

// Seek sets the descriptor offset. Whence: 0 absolute, 1 relative, 2 from
// end.
func (p *Process) Seek(num int, off int64, whence int) (int64, error) {
	fd, err := p.FDGet(num)
	if err != nil {
		return 0, err
	}
	if fd.Kind != FDFile && fd.Kind != FDPassObj {
		return 0, ErrNotFile
	}
	switch whence {
	case 0:
		fd.offset = off
	case 1:
		fd.offset += off
	case 2:
		fd.offset = fd.file.Size() + off
	default:
		return 0, vfs.ErrInvalid
	}
	if fd.offset < 0 {
		fd.offset = 0
		return 0, vfs.ErrInvalid
	}
	return fd.offset, nil
}

// Pipe creates a pipe, returning (readFd, writeFd).
func (p *Process) Pipe() (int, int, error) {
	if p.isExited() {
		return -1, -1, errExited
	}
	pipe := newPipe(p.k.AllocTransient())
	r := &FD{Kind: FDPipeRead, pipe: pipe, Flags: vfs.ORdOnly}
	w := &FD{Kind: FDPipeWrite, pipe: pipe, Flags: vfs.OWrOnly}
	rn := p.installFD(r)
	wn := p.installFD(w)
	return rn, wn, nil
}

// GiveFD transfers a descriptor to another process (models inherited pipe
// ends across fork in the shell-pipeline workloads).
func (p *Process) GiveFD(num int, to *Process) (int, error) {
	p.mu.Lock()
	fd, ok := p.fds[num]
	if ok {
		delete(p.fds, num)
	}
	p.mu.Unlock()
	if !ok {
		return -1, ErrBadFD
	}
	return to.installFD(fd), nil
}

// Mmap maps a file; provenance-wise a readable mapping is a read
// dependency and a writable mapping a write dependency (§5.3 intercepts
// mmap).
func (p *Process) Mmap(num int, writable bool) error {
	fd, err := p.FDGet(num)
	if err != nil {
		return err
	}
	if fd.Kind != FDFile {
		return ErrNotFile
	}
	if p.k.hooks != nil {
		p.k.hooks.Mmap(p, fd, writable)
	}
	return nil
}

// Mkdir / MkdirAll / ReadDir / Stat / Rename / Remove are namespace
// syscalls; they resolve through the mount table.

// Mkdir creates a directory.
func (p *Process) Mkdir(path string) error {
	fs, rel, err := p.k.Resolve(p.Abs(path))
	if err != nil {
		return err
	}
	return fs.Mkdir(rel)
}

// MkdirAll creates a directory and any missing parents.
func (p *Process) MkdirAll(path string) error {
	fs, rel, err := p.k.Resolve(p.Abs(path))
	if err != nil {
		return err
	}
	return fs.MkdirAll(rel)
}

// ReadDir lists a directory.
func (p *Process) ReadDir(path string) ([]vfs.DirEnt, error) {
	fs, rel, err := p.k.Resolve(p.Abs(path))
	if err != nil {
		return nil, err
	}
	return fs.ReadDir(rel)
}

// Stat describes a file.
func (p *Process) Stat(path string) (vfs.Stat, error) {
	fs, rel, err := p.k.Resolve(p.Abs(path))
	if err != nil {
		return vfs.Stat{}, err
	}
	return fs.Stat(rel)
}

// Rename renames within one mount.
func (p *Process) Rename(oldPath, newPath string) error {
	absOld, absNew := p.Abs(oldPath), p.Abs(newPath)
	fsOld, relOld, err := p.k.Resolve(absOld)
	if err != nil {
		return err
	}
	fsNew, relNew, err := p.k.Resolve(absNew)
	if err != nil {
		return err
	}
	if fsOld != fsNew {
		return vfs.ErrCrossMount
	}
	if err := fsOld.Rename(relOld, relNew); err != nil {
		return err
	}
	if p.k.hooks != nil {
		p.k.hooks.Rename(p, fsOld, absOld, absNew)
	}
	return nil
}

// Remove unlinks a path, firing DropInode when the last link goes.
func (p *Process) Remove(path string) error {
	abs := p.Abs(path)
	fs, rel, err := p.k.Resolve(abs)
	if err != nil {
		return err
	}
	st, serr := fs.Stat(rel)
	if err := fs.Remove(rel); err != nil {
		return err
	}
	if serr == nil && !st.IsDir && st.Nlink <= 1 && p.k.hooks != nil {
		p.k.hooks.DropInode(fs, abs, st)
	}
	return nil
}

// Truncate truncates an open descriptor's file.
func (p *Process) Truncate(num int, size int64) error {
	fd, err := p.FDGet(num)
	if err != nil {
		return err
	}
	if fd.Kind != FDFile {
		return ErrNotFile
	}
	return fd.file.Truncate(size)
}

// --- DPAPI syscalls (libpass, §5.1: libpass exports the DPAPI to
// user-level; the observer is the entry point, §5.3) ---

// PassWriteFd discloses a provenance bundle, with optional data, through a
// descriptor. This is the user-level pass_write.
func (p *Process) PassWriteFd(num int, data []byte, b *record.Bundle) (int, error) {
	fd, err := p.FDGet(num)
	if err != nil {
		return 0, err
	}
	if fd.Kind != FDFile && fd.Kind != FDPassObj {
		return 0, ErrNotFile
	}
	if p.k.hooks == nil {
		return 0, dpapi.ErrNotPassVolume
	}
	if fd.Flags&vfs.OAppend != 0 && fd.file != nil {
		fd.offset = fd.file.Size()
	}
	n, err := p.k.hooks.Disclose(p, fd, data, fd.offset, b)
	fd.offset += int64(n)
	return n, err
}

// PassReadFd is the user-level pass_read: read data plus the exact
// identity of what was read.
func (p *Process) PassReadFd(num int, buf []byte) (int, pnode.Ref, error) {
	fd, err := p.FDGet(num)
	if err != nil {
		return 0, pnode.Ref{}, err
	}
	if fd.pass == nil {
		return 0, pnode.Ref{}, dpapi.ErrNotPassVolume
	}
	var n int
	var ref pnode.Ref
	if p.k.hooks != nil {
		n, ref, err = p.k.hooks.PassRead(p, fd, buf, fd.offset)
	} else {
		n, ref, err = fd.pass.PassRead(buf, fd.offset)
	}
	fd.offset += int64(n)
	return n, ref, err
}

// PassFreezeFd is the user-level pass_freeze.
func (p *Process) PassFreezeFd(num int) (pnode.Version, error) {
	fd, err := p.FDGet(num)
	if err != nil {
		return 0, err
	}
	if fd.pass == nil {
		return 0, dpapi.ErrNotPassVolume
	}
	return fd.pass.PassFreeze()
}

// PassSyncFd is the user-level pass_sync.
func (p *Process) PassSyncFd(num int) error {
	fd, err := p.FDGet(num)
	if err != nil {
		return err
	}
	if fd.pass == nil {
		return dpapi.ErrNotPassVolume
	}
	return fd.pass.PassSync()
}

// PassMkobj creates a phantom object (user-level pass_mkobj). volumePath
// hints the PASS volume that should store its provenance.
func (p *Process) PassMkobj(volumePath string) (dpapi.Object, error) {
	if p.k.hooks == nil {
		return nil, dpapi.ErrNotPassVolume
	}
	return p.k.hooks.Mkobj(p, volumePath)
}

// PassReviveObj revives a phantom object (user-level pass_reviveobj).
func (p *Process) PassReviveObj(ref pnode.Ref) (dpapi.Object, error) {
	if p.k.hooks == nil {
		return nil, dpapi.ErrNotPassVolume
	}
	return p.k.hooks.Revive(p, ref)
}
