package kernel

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"passv2/internal/pnode"
	"passv2/internal/vfs"
)

func newTestKernel(t *testing.T) (*Kernel, *vfs.MemFS) {
	t.Helper()
	k := New(&vfs.Clock{})
	fs := vfs.NewMemFS("root", nil)
	k.Mount("/", fs)
	return k, fs
}

func TestSpawnAssignsIdentity(t *testing.T) {
	k, _ := newTestKernel(t)
	p1 := k.Spawn(nil, "init", nil, nil)
	p2 := k.Spawn(p1, "child", nil, nil)
	if p1.Pid == p2.Pid {
		t.Fatal("pids must differ")
	}
	if p1.Ref() == p2.Ref() {
		t.Fatal("process identities must differ")
	}
	if !p1.Ref().IsValid() {
		t.Fatal("process ref invalid")
	}
	if len(k.Processes()) != 2 {
		t.Fatal("process table wrong")
	}
}

func TestOpenReadWrite(t *testing.T) {
	k, _ := newTestKernel(t)
	p := k.Spawn(nil, "sh", nil, nil)
	fd, err := p.Open("/f.txt", vfs.OCreate|vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(fd, []byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(fd, []byte("world")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Seek(fd, 0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := p.Read(fd, buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "hello world" {
		t.Fatalf("read %q", buf[:n])
	}
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(fd, buf); !errors.Is(err, ErrBadFD) {
		t.Fatalf("read after close: %v", err)
	}
}

func TestWriteRespectsReadOnly(t *testing.T) {
	k, fs := newTestKernel(t)
	vfs.WriteFile(fs, "/ro", []byte("x"))
	p := k.Spawn(nil, "sh", nil, nil)
	fd, err := p.Open("/ro", vfs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(fd, []byte("y")); !errors.Is(err, vfs.ErrReadOnly) {
		t.Fatalf("want ErrReadOnly, got %v", err)
	}
}

func TestAppendMode(t *testing.T) {
	k, fs := newTestKernel(t)
	vfs.WriteFile(fs, "/log", []byte("abc"))
	p := k.Spawn(nil, "sh", nil, nil)
	fd, err := p.Open("/log", vfs.OAppend)
	if err != nil {
		t.Fatal(err)
	}
	p.Write(fd, []byte("def"))
	got, _ := vfs.ReadFile(fs, "/log")
	if string(got) != "abcdef" {
		t.Fatalf("append got %q", got)
	}
}

func TestCwdAndRelativePaths(t *testing.T) {
	k, fs := newTestKernel(t)
	fs.MkdirAll("/home/user")
	p := k.Spawn(nil, "sh", nil, nil)
	if err := p.Chdir("/home/user"); err != nil {
		t.Fatal(err)
	}
	fd, err := p.Open("notes.txt", vfs.OCreate|vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	p.Write(fd, []byte("hi"))
	p.Close(fd)
	if _, err := fs.Stat("/home/user/notes.txt"); err != nil {
		t.Fatal("relative create landed in the wrong place:", err)
	}
	if err := p.Chdir("/home/user/notes.txt"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("chdir to file: %v", err)
	}
	child := p.Fork()
	if child.Cwd() != "/home/user" {
		t.Fatal("fork must inherit cwd")
	}
}

func TestExecChangesIdentity(t *testing.T) {
	k, fs := newTestKernel(t)
	vfs.WriteFile(fs, "/bin/cc", []byte("ELF"))
	p := k.Spawn(nil, "sh", nil, nil)
	before := p.Ref()
	if err := p.Exec("/bin/cc", []string{"cc", "-O2"}, []string{"PATH=/bin"}); err != nil {
		t.Fatal(err)
	}
	if p.Ref() == before {
		t.Fatal("exec must produce a fresh process identity")
	}
	if p.Name != "cc" {
		t.Fatalf("name = %q", p.Name)
	}
}

func TestPipeTransfer(t *testing.T) {
	k, _ := newTestKernel(t)
	p := k.Spawn(nil, "sh", nil, nil)
	r, w, err := p.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(w, []byte("through the pipe")); err != nil {
		t.Fatal(err)
	}
	p.Close(w)
	buf := make([]byte, 64)
	n, err := p.Read(r, buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "through the pipe" {
		t.Fatalf("got %q", buf[:n])
	}
	if _, err := p.Read(r, buf); err != io.EOF {
		t.Fatalf("want EOF after writer close, got %v", err)
	}
}

func TestPipeAcrossProcesses(t *testing.T) {
	k, _ := newTestKernel(t)
	parent := k.Spawn(nil, "sh", nil, nil)
	child := parent.Fork()
	r, w, _ := parent.Pipe()
	rChild, err := parent.GiveFD(r, child)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 16)
		total := 0
		for {
			n, err := child.Read(rChild, buf)
			total += n
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Error(err)
				return
			}
		}
		if total != 100 {
			t.Errorf("child read %d bytes, want 100", total)
		}
	}()
	for i := 0; i < 10; i++ {
		parent.Write(w, make([]byte, 10))
	}
	parent.Close(w)
	wg.Wait()
}

func TestBrokenPipe(t *testing.T) {
	k, _ := newTestKernel(t)
	p := k.Spawn(nil, "sh", nil, nil)
	r, w, _ := p.Pipe()
	p.Close(r)
	if _, err := p.Write(w, []byte("x")); !errors.Is(err, ErrPipeClosed) {
		t.Fatalf("want broken pipe, got %v", err)
	}
}

func TestExitClosesFDs(t *testing.T) {
	k, _ := newTestKernel(t)
	p := k.Spawn(nil, "sh", nil, nil)
	fd, _ := p.Open("/f", vfs.OCreate|vfs.ORdWr)
	p.Exit()
	if _, err := p.Write(fd, []byte("x")); err == nil {
		t.Fatal("write after exit must fail")
	}
	if _, err := p.Open("/g", vfs.OCreate); !errors.Is(err, errExited) {
		t.Fatalf("open after exit: %v", err)
	}
	if len(k.Processes()) != 0 {
		t.Fatal("exited process still in table")
	}
	p.Exit() // double exit must be safe
}

func TestRenameCrossMountRejected(t *testing.T) {
	k, _ := newTestKernel(t)
	other := vfs.NewMemFS("other", nil)
	k.Mount("/mnt", other)
	p := k.Spawn(nil, "sh", nil, nil)
	fd, _ := p.Open("/f", vfs.OCreate)
	p.Close(fd)
	if err := p.Rename("/f", "/mnt/f"); !errors.Is(err, vfs.ErrCrossMount) {
		t.Fatalf("want ErrCrossMount, got %v", err)
	}
}

func TestComputeChargesClock(t *testing.T) {
	k, _ := newTestKernel(t)
	k.CPUCost = time.Microsecond
	p := k.Spawn(nil, "cruncher", nil, nil)
	p.Compute(1000)
	if k.Clock.Now() != time.Millisecond {
		t.Fatalf("clock = %v", k.Clock.Now())
	}
}

func TestSeekWhence(t *testing.T) {
	k, fs := newTestKernel(t)
	vfs.WriteFile(fs, "/f", []byte("0123456789"))
	p := k.Spawn(nil, "sh", nil, nil)
	fd, _ := p.Open("/f", vfs.ORdWr)
	if off, _ := p.Seek(fd, 4, 0); off != 4 {
		t.Fatalf("abs seek = %d", off)
	}
	if off, _ := p.Seek(fd, 2, 1); off != 6 {
		t.Fatalf("rel seek = %d", off)
	}
	if off, _ := p.Seek(fd, -1, 2); off != 9 {
		t.Fatalf("end seek = %d", off)
	}
	if _, err := p.Seek(fd, -100, 1); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatalf("negative seek: %v", err)
	}
}

func TestDPAPIWithoutHooksFails(t *testing.T) {
	k, _ := newTestKernel(t)
	p := k.Spawn(nil, "app", nil, nil)
	if _, err := p.PassMkobj(""); err == nil {
		t.Fatal("PassMkobj without PASS must fail")
	}
	if _, err := p.PassReviveObj(pnode.Ref{PNode: 1, Version: 1}); err == nil {
		t.Fatal("PassReviveObj without PASS must fail")
	}
	fd, _ := p.Open("/f", vfs.OCreate|vfs.ORdWr)
	if _, err := p.PassWriteFd(fd, nil, nil); err == nil {
		t.Fatal("PassWriteFd without PASS must fail")
	}
	if _, _, err := p.PassReadFd(fd, nil); err == nil {
		t.Fatal("PassReadFd on non-PASS volume must fail")
	}
}

func TestTransientPnodeSpaceIsPrefixed(t *testing.T) {
	k, _ := newTestKernel(t)
	ref := k.AllocTransient()
	if pnode.VolumePrefix(ref.PNode) != 0xFFFF {
		t.Fatalf("transient prefix = %#x", pnode.VolumePrefix(ref.PNode))
	}
}

func TestPreadPwriteDoNotMoveOffset(t *testing.T) {
	k, _ := newTestKernel(t)
	p := k.Spawn(nil, "sh", nil, nil)
	fd, _ := p.Open("/f", vfs.OCreate|vfs.ORdWr)
	if _, err := p.Pwrite(fd, []byte("abcdef"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := p.Pread(fd, buf, 3); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "def" {
		t.Fatalf("pread got %q", buf)
	}
	// Offset still at 0: a normal Read starts from the beginning.
	n, _ := p.Read(fd, buf)
	if string(buf[:n]) != "abc" {
		t.Fatalf("offset moved; read %q", buf[:n])
	}
}
