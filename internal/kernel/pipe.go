package kernel

import (
	"errors"
	"io"
	"sync"

	"passv2/internal/pnode"
)

// ErrPipeClosed reports a write to a pipe whose read end is gone.
var ErrPipeClosed = errors.New("kernel: broken pipe")

// Pipe is an in-kernel unidirectional byte channel. Pipes are first-class
// provenance objects (§5.5: the distributor caches provenance for pipes
// until they need to be materialized); each pipe carries a pnode.
type Pipe struct {
	ref pnode.Ref

	mu      sync.Mutex
	cond    *sync.Cond
	buf     []byte
	wClosed bool
	rClosed bool
}

func newPipe(ref pnode.Ref) *Pipe {
	p := &Pipe{ref: ref}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Ref returns the pipe's provenance identity.
func (p *Pipe) Ref() pnode.Ref { return p.ref }

// write appends data; the buffer is unbounded so writers never block.
func (p *Pipe) write(data []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rClosed {
		return 0, ErrPipeClosed
	}
	if p.wClosed {
		return 0, ErrClosedFD
	}
	p.buf = append(p.buf, data...)
	p.cond.Broadcast()
	return len(data), nil
}

// read takes up to len(buf) bytes, blocking while the pipe is empty and
// the write end is still open. Returns io.EOF once drained and closed.
func (p *Pipe) read(buf []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) == 0 && !p.wClosed {
		p.cond.Wait()
	}
	if len(p.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(buf, p.buf)
	p.buf = p.buf[n:]
	return n, nil
}

func (p *Pipe) closeWrite() {
	p.mu.Lock()
	p.wClosed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *Pipe) closeRead() {
	p.mu.Lock()
	p.rClosed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}
