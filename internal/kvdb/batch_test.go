package kvdb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestSetBatchMatchesSet drives SetBatch and Set with the same random
// streams (inserts, replacements, duplicates within a batch) and checks
// the stores converge to identical contents and counters.
func TestSetBatchMatchesSet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	one, batch := New(), New()
	for round := 0; round < 50; round++ {
		n := rng.Intn(200) + 1
		kvs := make([]KV, n)
		for i := range kvs {
			k := fmt.Sprintf("k%05d", rng.Intn(500))
			kvs[i] = KV{Key: k, Val: []byte(fmt.Sprintf("v%d-%d", round, i))}
		}
		// Set semantics for duplicate keys: last write wins. Feed Set in
		// order; SetBatch processes in order too.
		for _, kv := range kvs {
			one.Set(kv.Key, kv.Val)
		}
		batch.SetBatch(kvs)
	}
	if one.Len() != batch.Len() {
		t.Fatalf("Len: %d vs %d", one.Len(), batch.Len())
	}
	k1, v1 := one.Bytes()
	k2, v2 := batch.Bytes()
	if k1 != k2 || v1 != v2 {
		t.Fatalf("Bytes: (%d,%d) vs (%d,%d)", k1, v1, k2, v2)
	}
	var keys1, keys2 []string
	one.AscendPrefix("", func(k string, v []byte) bool { keys1 = append(keys1, k+"="+string(v)); return true })
	batch.AscendPrefix("", func(k string, v []byte) bool { keys2 = append(keys2, k+"="+string(v)); return true })
	if len(keys1) != len(keys2) {
		t.Fatalf("key counts diverge: %d vs %d", len(keys1), len(keys2))
	}
	for i := range keys1 {
		if keys1[i] != keys2[i] {
			t.Fatalf("entry %d diverges: %q vs %q", i, keys1[i], keys2[i])
		}
	}
}

// TestSetBatchSortedRun exercises the cached-leaf fast path: a long
// sorted run (Waldo feeds sorted batches) must land every key, keep order,
// and report New correctly.
func TestSetBatchSortedRun(t *testing.T) {
	db := New()
	const n = 5000
	kvs := make([]KV, n)
	for i := range kvs {
		kvs[i] = KV{Key: fmt.Sprintf("key%08d", i), Val: []byte{byte(i)}}
	}
	if added := db.SetBatch(kvs); added != n {
		t.Fatalf("added %d, want %d", added, n)
	}
	for i := range kvs {
		if !kvs[i].New {
			t.Fatalf("kv %d not marked New on first insert", i)
		}
	}
	if db.Len() != n {
		t.Fatalf("Len = %d, want %d", db.Len(), n)
	}
	prev := ""
	count := 0
	db.AscendPrefix("key", func(k string, _ []byte) bool {
		if k <= prev {
			t.Fatalf("order violated: %q after %q", k, prev)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Fatalf("iterated %d keys, want %d", count, n)
	}
	// Re-insert the same run: nothing is new.
	again := make([]KV, n)
	copy(again, kvs)
	for i := range again {
		again[i].New = false
	}
	if added := db.SetBatch(again); added != 0 {
		t.Fatalf("re-insert added %d, want 0", added)
	}
	for i := range again {
		if again[i].New {
			t.Fatalf("kv %d marked New on re-insert", i)
		}
	}
}

// TestSetBatchNewFlags mixes fresh and existing keys and checks the
// per-key New report, which Waldo's index-space accounting depends on.
func TestSetBatchNewFlags(t *testing.T) {
	db := New()
	db.Set("b", []byte("old"))
	kvs := []KV{
		{Key: "a", Val: []byte("1")},
		{Key: "b", Val: []byte("2")},
		{Key: "c", Val: []byte("3")},
	}
	if added := db.SetBatch(kvs); added != 2 {
		t.Fatalf("added %d, want 2", added)
	}
	if !kvs[0].New || kvs[1].New || !kvs[2].New {
		t.Fatalf("New flags = %v %v %v, want true false true", kvs[0].New, kvs[1].New, kvs[2].New)
	}
	if v, _ := db.Get("b"); string(v) != "2" {
		t.Fatalf("replacement value = %q", v)
	}
}

// TestStats sanity-checks the tree-shape report.
func TestStats(t *testing.T) {
	db := New()
	if s := db.Stats(); s.Keys != 0 || s.Nodes != 1 || s.Depth != 1 {
		t.Fatalf("empty stats = %+v", s)
	}
	const n = 10000
	for i := 0; i < n; i++ {
		db.Set(fmt.Sprintf("%06d", i), []byte("v"))
	}
	s := db.Stats()
	if s.Keys != n {
		t.Fatalf("Keys = %d, want %d", s.Keys, n)
	}
	if s.Depth < 2 || s.Depth > 6 {
		t.Fatalf("Depth = %d, implausible for %d keys at degree %d", s.Depth, n, degree)
	}
	if s.Nodes < n/(2*degree) {
		t.Fatalf("Nodes = %d, too few for %d keys", s.Nodes, n)
	}
	kb, vb := db.Bytes()
	if s.KeyBytes != kb || s.ValBytes != vb {
		t.Fatalf("Stats bytes (%d,%d) disagree with Bytes (%d,%d)", s.KeyBytes, s.ValBytes, kb, vb)
	}
}

// TestSetBatchInterleavedWithDeletes makes sure batch inserts compose
// with the existing delete path (rebalancing does not confuse later
// batches).
func TestSetBatchInterleavedWithDeletes(t *testing.T) {
	db := New()
	live := map[string]bool{}
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 30; round++ {
		var kvs []KV
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("x%04d", rng.Intn(1000))
			kvs = append(kvs, KV{Key: k, Val: []byte("v")})
			live[k] = true
		}
		db.SetBatch(kvs)
		for i := 0; i < 40; i++ {
			k := fmt.Sprintf("x%04d", rng.Intn(1000))
			if db.Delete(k) != live[k] {
				t.Fatalf("Delete(%q) disagreed with model", k)
			}
			delete(live, k)
		}
	}
	want := make([]string, 0, len(live))
	for k := range live {
		want = append(want, k)
	}
	sort.Strings(want)
	got := db.Keys("x")
	if len(got) != len(want) {
		t.Fatalf("%d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("key %d: %q vs %q", i, got[i], want[i])
		}
	}
}
