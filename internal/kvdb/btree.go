// Package kvdb is an embedded ordered key-value store: the substrate for
// the Waldo provenance database (the kernel prototype used Berkeley DB).
// It provides ordered iteration (range and prefix scans), which Waldo's
// secondary indexes are built from, plus snapshot persistence so a query
// shell can work on a saved database.
//
// The implementation is an in-memory B-tree with copy-free reads; all
// operations are safe for concurrent use through a single RWMutex, which
// matches Waldo's workload (one ingesting writer, many query readers).
// For readers that must not contend with the writer at all, View returns
// an O(1) immutable image of the store: taking a view bumps the store's
// write epoch, and every mutation after that clones the nodes it touches
// (path copying) instead of editing them in place, so a view's tree is
// frozen for as long as the view is held.
package kvdb

import (
	"sort"
	"strings"
	"sync"
)

// degree is the minimum number of keys per non-root node. Nodes hold
// between degree and 2*degree keys (except the root).
const degree = 16

type node struct {
	keys     []string
	vals     [][]byte
	children []*node // nil for leaves
	// epoch is the DB write epoch the node was created (or cloned) in. A
	// node whose epoch predates the store's current epoch may be shared
	// with a View and must be cloned before mutation.
	epoch uint64
}

func (n *node) leaf() bool { return n.children == nil }

// find returns the index of key in n.keys, or the child index to descend
// into, and whether the key was found.
func (n *node) find(key string) (int, bool) {
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return i, true
	}
	return i, false
}

// DB is the store. The zero value is not usable; call New.
type DB struct {
	mu       sync.RWMutex
	root     *node
	count    int
	keyBytes int64
	valBytes int64
	// epoch is bumped by View: nodes created before the bump are frozen
	// (possibly shared with a view) and are cloned on first mutation.
	epoch uint64
}

// New creates an empty database.
func New() *DB {
	return &DB{root: &node{}}
}

// mutable returns a node safe to mutate under the current epoch: n itself
// when it already belongs to this epoch, otherwise a shallow clone (keys,
// values and child pointers are copied; the pointed-to children stay
// shared until they are themselves mutated).
func (db *DB) mutable(n *node) *node {
	if n.epoch == db.epoch {
		return n
	}
	c := &node{
		keys:  append(make([]string, 0, len(n.keys)+1), n.keys...),
		vals:  append(make([][]byte, 0, len(n.vals)+1), n.vals...),
		epoch: db.epoch,
	}
	if n.children != nil {
		c.children = append(make([]*node, 0, len(n.children)+1), n.children...)
	}
	return c
}

// Len returns the number of keys.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.count
}

// Bytes reports the cumulative size of keys and values — the space
// accounting Table 3 is built from.
func (db *DB) Bytes() (keyBytes, valBytes int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.keyBytes, db.valBytes
}

// Stats describes the store: key population and tree shape. Nodes and
// Depth are computed by a walk, so Stats is a diagnostics/bench call, not a
// hot-path one.
type Stats struct {
	Keys     int
	KeyBytes int64
	ValBytes int64
	Nodes    int
	Depth    int
}

// Stats reports the current store statistics.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := Stats{Keys: db.count, KeyBytes: db.keyBytes, ValBytes: db.valBytes}
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		s.Nodes++
		if depth > s.Depth {
			s.Depth = depth
		}
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(db.root, 1)
	return s
}

// Get returns the value for key, and whether it exists. The returned slice
// must not be modified.
func (db *DB) Get(key string) ([]byte, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return lookup(db.root, key)
}

// lookup descends from root to the value of key. It takes no lock: the
// caller either holds the store's RLock or owns an immutable view root.
func lookup(n *node, key string) ([]byte, bool) {
	for {
		i, ok := n.find(key)
		if ok {
			return n.vals[i], true
		}
		if n.leaf() {
			return nil, false
		}
		n = n.children[i]
	}
}

// Has reports whether key exists.
func (db *DB) Has(key string) bool {
	_, ok := db.Get(key)
	return ok
}

// Set stores value under key, returning true if the key already existed.
func (db *DB) Set(key string, value []byte) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	replaced := db.setLocked(key, value).replaced
	return replaced
}

// KV is one key/value pair for batch insertion. SetBatch reports back
// through New whether the key was absent before the batch.
type KV struct {
	Key string
	Val []byte
	New bool
}

// SetBatch stores every pair under a single mutex acquisition — the write
// amortization Waldo's ingestion path depends on. Runs of ascending keys
// additionally skip the root-to-leaf descent: the insertion leaf (and the
// separator bounds that make it valid) is cached from the previous pair, so
// a sorted batch touching one region of the key space inserts in O(1) per
// key until the leaf fills. Returns the number of keys that were new.
func (db *DB) SetBatch(kvs []KV) (added int) {
	if len(kvs) == 0 {
		return 0
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	var at insertAt
	for idx := range kvs {
		key, value := kvs[idx].Key, kvs[idx].Val
		// Fast path: key strictly inside the cached leaf's bounds, and
		// the leaf has room for a direct insert (no split can cascade).
		// The cached leaf came out of setLocked this batch, so it already
		// belongs to the current epoch and is safe to mutate in place.
		if at.leaf != nil && len(at.leaf.keys) < 2*degree &&
			(!at.hasLo || key > at.lo) && (!at.hasHi || key < at.hi) {
			n := at.leaf
			i, ok := n.find(key)
			if ok {
				db.valBytes += int64(len(value)) - int64(len(n.vals[i]))
				n.vals[i] = value
				continue
			}
			n.keys = append(n.keys, "")
			n.vals = append(n.vals, nil)
			copy(n.keys[i+1:], n.keys[i:])
			copy(n.vals[i+1:], n.vals[i:])
			n.keys[i] = key
			n.vals[i] = value
			db.count++
			db.keyBytes += int64(len(key))
			db.valBytes += int64(len(value))
			kvs[idx].New = true
			added++
			continue
		}
		at = db.setLocked(key, value)
		if !at.replaced {
			kvs[idx].New = true
			added++
		}
	}
	return added
}

// insertAt remembers where setLocked landed: the leaf it inserted into and
// the separator bounds within which that leaf is the correct target for
// further inserts. leaf is nil when the key was settled in an interior
// node (replacement), which cannot seed the batch fast path.
type insertAt struct {
	leaf     *node
	lo, hi   string
	hasLo    bool
	hasHi    bool
	replaced bool
}

// setLocked inserts or replaces one key with db.mu held, maintaining the
// size counters, and reports the insertion point for batch amortization.
// Every node it is about to mutate is first made current-epoch (cloned if
// a view still shares it), so pinned views keep their frozen image.
func (db *DB) setLocked(key string, value []byte) insertAt {
	db.root = db.mutable(db.root)
	if len(db.root.keys) >= 2*degree {
		old := db.root
		db.root = &node{children: []*node{old}, epoch: db.epoch}
		db.splitChild(db.root, 0)
	}
	var at insertAt
	n := db.root
	for {
		i, ok := n.find(key)
		if ok {
			db.valBytes += int64(len(value)) - int64(len(n.vals[i]))
			n.vals[i] = value
			at.replaced = true
			if n.leaf() {
				at.leaf = n
			}
			return at
		}
		if n.leaf() {
			n.keys = append(n.keys, "")
			n.vals = append(n.vals, nil)
			copy(n.keys[i+1:], n.keys[i:])
			copy(n.vals[i+1:], n.vals[i:])
			n.keys[i] = key
			n.vals[i] = value
			db.count++
			db.keyBytes += int64(len(key))
			db.valBytes += int64(len(value))
			at.leaf = n
			return at
		}
		if len(n.children[i].keys) >= 2*degree {
			db.splitChild(n, i)
			if key == n.keys[i] {
				db.valBytes += int64(len(value)) - int64(len(n.vals[i]))
				n.vals[i] = value
				at.replaced = true
				at.leaf = nil
				return at
			}
			if key > n.keys[i] {
				i++
			}
		}
		if i > 0 {
			at.lo, at.hasLo = n.keys[i-1], true
		}
		if i < len(n.keys) {
			at.hi, at.hasHi = n.keys[i], true
		}
		n.children[i] = db.mutable(n.children[i])
		n = n.children[i]
	}
}

// splitChild splits n.children[i] (which must be full) around its median.
// The child may hold 2·degree or 2·degree+1 keys — delete's merge path can
// briefly leave a node one over the cap — so the median is computed, not
// assumed. n must already be current-epoch; the child is cloned if a view
// shares it.
func (db *DB) splitChild(n *node, i int) {
	n.children[i] = db.mutable(n.children[i])
	child := n.children[i]
	mid := len(child.keys) / 2
	midKey, midVal := child.keys[mid], child.vals[mid]

	right := &node{
		keys:  append([]string(nil), child.keys[mid+1:]...),
		vals:  append([][]byte(nil), child.vals[mid+1:]...),
		epoch: db.epoch,
	}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[mid+1:]...)
		child.children = child.children[: mid+1 : mid+1]
	}
	child.keys = child.keys[:mid:mid]
	child.vals = child.vals[:mid:mid]

	n.keys = append(n.keys, "")
	n.vals = append(n.vals, nil)
	copy(n.keys[i+1:], n.keys[i:])
	copy(n.vals[i+1:], n.vals[i:])
	n.keys[i], n.vals[i] = midKey, midVal

	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Delete removes key, returning whether it existed.
func (db *DB) Delete(key string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.root = db.mutable(db.root)
	removed, vlen := db.delete(db.root, key)
	if removed {
		db.count--
		db.keyBytes -= int64(len(key))
		db.valBytes -= int64(vlen)
	}
	if len(db.root.keys) == 0 && !db.root.leaf() {
		db.root = db.root.children[0]
	}
	return removed
}

// delete removes key from the subtree rooted at n, which is guaranteed to
// have > degree keys (or be the root) and to be current-epoch. Returns
// whether removed and the removed value's length.
func (db *DB) delete(n *node, key string) (bool, int) {
	i, found := n.find(key)
	if n.leaf() {
		if !found {
			return false, 0
		}
		vlen := len(n.vals[i])
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true, vlen
	}
	if found {
		vlen := len(n.vals[i])
		// CLRS case 2: replace with the predecessor or successor from a
		// child that can spare a key, then delete that key from it.
		if len(n.children[i].keys) > degree {
			n.children[i] = db.mutable(n.children[i])
			pk, pv := maxKV(n.children[i])
			n.keys[i], n.vals[i] = pk, pv
			db.delete(n.children[i], pk)
			return true, vlen
		}
		if len(n.children[i+1].keys) > degree {
			n.children[i+1] = db.mutable(n.children[i+1])
			sk, sv := minKV(n.children[i+1])
			n.keys[i], n.vals[i] = sk, sv
			db.delete(n.children[i+1], sk)
			return true, vlen
		}
		// Both children minimal: merge around the key then recurse.
		db.mergeChildren(n, i)
		db.delete(n.children[i], key)
		return true, vlen
	}
	i = db.ensureChild(n, i)
	return db.delete(n.children[i], key)
}

// ensureChild guarantees n.children[i] has more than degree keys before
// descending, borrowing from a sibling or merging, and leaves the
// descended-into child current-epoch. Returns the (possibly shifted)
// child index.
func (db *DB) ensureChild(n *node, i int) int {
	n.children[i] = db.mutable(n.children[i])
	c := n.children[i]
	if len(c.keys) > degree {
		return i
	}
	// Borrow from left sibling.
	if i > 0 && len(n.children[i-1].keys) > degree {
		n.children[i-1] = db.mutable(n.children[i-1])
		left := n.children[i-1]
		c.keys = append([]string{n.keys[i-1]}, c.keys...)
		c.vals = append([][]byte{n.vals[i-1]}, c.vals...)
		n.keys[i-1] = left.keys[len(left.keys)-1]
		n.vals[i-1] = left.vals[len(left.vals)-1]
		left.keys = left.keys[:len(left.keys)-1]
		left.vals = left.vals[:len(left.vals)-1]
		if !c.leaf() {
			c.children = append([]*node{left.children[len(left.children)-1]}, c.children...)
			left.children = left.children[:len(left.children)-1]
		}
		return i
	}
	// Borrow from right sibling.
	if i < len(n.children)-1 && len(n.children[i+1].keys) > degree {
		n.children[i+1] = db.mutable(n.children[i+1])
		right := n.children[i+1]
		c.keys = append(c.keys, n.keys[i])
		c.vals = append(c.vals, n.vals[i])
		n.keys[i] = right.keys[0]
		n.vals[i] = right.vals[0]
		right.keys = right.keys[1:]
		right.vals = right.vals[1:]
		if !c.leaf() {
			c.children = append(c.children, right.children[0])
			right.children = right.children[1:]
		}
		return i
	}
	// Merge with a sibling.
	if i > 0 {
		db.mergeChildren(n, i-1)
		return i - 1
	}
	db.mergeChildren(n, i)
	return i
}

// mergeChildren merges children i and i+1 around key i. The surviving left
// child is made current-epoch; the right child is only read (a view
// sharing it keeps its frozen image).
func (db *DB) mergeChildren(n *node, i int) {
	n.children[i] = db.mutable(n.children[i])
	left, right := n.children[i], n.children[i+1]
	left.keys = append(left.keys, n.keys[i])
	left.vals = append(left.vals, n.vals[i])
	left.keys = append(left.keys, right.keys...)
	left.vals = append(left.vals, right.vals...)
	if !left.leaf() {
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

func maxKV(n *node) (string, []byte) {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.keys[len(n.keys)-1], n.vals[len(n.vals)-1]
}

func minKV(n *node) (string, []byte) {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0], n.vals[0]
}

// Ascend visits keys in [lo, hi) in order; fn returning false stops the
// scan. An empty hi means "to the end".
func (db *DB) Ascend(lo, hi string, fn func(key string, value []byte) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ascend(db.root, lo, hi, fn)
}

// ascend is the lock-free range walk shared by DB (under RLock) and View
// (over a frozen root).
func ascend(n *node, lo, hi string, fn func(string, []byte) bool) bool {
	i := sort.SearchStrings(n.keys, lo)
	for ; i <= len(n.keys); i++ {
		if !n.leaf() {
			if !ascend(n.children[i], lo, hi, fn) {
				return false
			}
		}
		if i == len(n.keys) {
			break
		}
		k := n.keys[i]
		if k < lo {
			continue
		}
		if hi != "" && k >= hi {
			return false
		}
		if !fn(k, n.vals[i]) {
			return false
		}
	}
	return true
}

// AscendPrefix visits all keys with the given prefix in order.
func (db *DB) AscendPrefix(prefix string, fn func(key string, value []byte) bool) {
	db.Ascend(prefix, prefixEnd(prefix), fn)
}

// prefixEnd returns the smallest string greater than every string with the
// prefix, or "" if there is none.
func prefixEnd(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xFF {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

// MaxInPrefix returns the greatest key carrying the prefix and its value,
// found by one bounded root-to-leaf descent — no iteration over the prefix
// range. Waldo's LatestVersion is built on it.
func (db *DB) MaxInPrefix(prefix string) (string, []byte, bool) {
	db.mu.RLock()
	k, v, ok := maxBelow(db.root, prefixEnd(prefix))
	db.mu.RUnlock()
	if !ok || !strings.HasPrefix(k, prefix) {
		return "", nil, false
	}
	return k, v, true
}

// maxBelow returns the greatest key strictly less than hi; hi == "" means
// "no upper bound" (the greatest key in the store).
func maxBelow(n *node, hi string) (string, []byte, bool) {
	var (
		bk    string
		bv    []byte
		found bool
	)
	for {
		i := len(n.keys)
		if hi != "" {
			i = sort.SearchStrings(n.keys, hi)
		}
		if i > 0 {
			bk, bv, found = n.keys[i-1], n.vals[i-1], true
		}
		if n.leaf() {
			return bk, bv, found
		}
		n = n.children[i]
	}
}

// CountPrefix counts keys with the prefix.
func (db *DB) CountPrefix(prefix string) int {
	n := 0
	db.AscendPrefix(prefix, func(string, []byte) bool { n++; return true })
	return n
}

// HasPrefix reports whether any key starts with prefix.
func (db *DB) HasPrefix(prefix string) bool {
	found := false
	db.AscendPrefix(prefix, func(string, []byte) bool { found = true; return false })
	return found
}

// Keys returns all keys with the prefix (convenience for tests/tools).
func (db *DB) Keys(prefix string) []string {
	var out []string
	db.AscendPrefix(prefix, func(k string, _ []byte) bool {
		out = append(out, k)
		return true
	})
	return out
}

// TrimPrefix is a helper for index scans: the remainder of key after
// prefix.
func TrimPrefix(key, prefix string) string { return strings.TrimPrefix(key, prefix) }
