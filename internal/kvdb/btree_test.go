package kvdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSetGetBasic(t *testing.T) {
	db := New()
	if db.Set("k", []byte("v")) {
		t.Fatal("fresh key reported as replaced")
	}
	if !db.Set("k", []byte("v2")) {
		t.Fatal("overwrite not reported")
	}
	got, ok := db.Get("k")
	if !ok || string(got) != "v2" {
		t.Fatalf("Get = %q,%v", got, ok)
	}
	if _, ok := db.Get("missing"); ok {
		t.Fatal("phantom key")
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestManyKeysSortedIteration(t *testing.T) {
	db := New()
	const n = 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		db.Set(fmt.Sprintf("key%06d", i), []byte{byte(i)})
	}
	if db.Len() != n {
		t.Fatalf("Len = %d", db.Len())
	}
	var keys []string
	db.Ascend("", "", func(k string, v []byte) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != n {
		t.Fatalf("iterated %d", len(keys))
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatal("iteration out of order")
	}
}

func TestAscendRange(t *testing.T) {
	db := New()
	for i := 0; i < 100; i++ {
		db.Set(fmt.Sprintf("%03d", i), nil)
	}
	var got []string
	db.Ascend("010", "015", func(k string, _ []byte) bool {
		got = append(got, k)
		return true
	})
	want := []string{"010", "011", "012", "013", "014"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("range = %v", got)
	}
	// Early stop.
	count := 0
	db.Ascend("", "", func(string, []byte) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestAscendPrefix(t *testing.T) {
	db := New()
	db.Set("a|1", nil)
	db.Set("a|2", nil)
	db.Set("b|1", nil)
	db.Set("a", nil)
	if got := db.Keys("a|"); len(got) != 2 {
		t.Fatalf("prefix a| = %v", got)
	}
	if db.CountPrefix("b|") != 1 {
		t.Fatal("CountPrefix wrong")
	}
	if !db.HasPrefix("a|") || db.HasPrefix("z|") {
		t.Fatal("HasPrefix wrong")
	}
}

func TestPrefixEndEdgeCases(t *testing.T) {
	if prefixEnd("ab") != "ac" {
		t.Fatal("simple prefixEnd")
	}
	if prefixEnd("a\xff") != "b" {
		t.Fatalf("carry prefixEnd = %q", prefixEnd("a\xff"))
	}
	if prefixEnd("\xff\xff") != "" {
		t.Fatal("all-0xff prefixEnd must be empty (scan to end)")
	}
	// A prefix of 0xff bytes must still scan correctly.
	db := New()
	db.Set("\xff\xffx", []byte("v"))
	if got := db.Keys("\xff\xff"); len(got) != 1 {
		t.Fatalf("0xff prefix scan = %v", got)
	}
}

func TestDelete(t *testing.T) {
	db := New()
	const n = 2000
	for i := 0; i < n; i++ {
		db.Set(fmt.Sprintf("%05d", i), []byte(fmt.Sprint(i)))
	}
	// Delete every third key.
	for i := 0; i < n; i += 3 {
		if !db.Delete(fmt.Sprintf("%05d", i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if db.Delete("99999") {
		t.Fatal("deleting missing key reported success")
	}
	for i := 0; i < n; i++ {
		_, ok := db.Get(fmt.Sprintf("%05d", i))
		want := i%3 != 0
		if ok != want {
			t.Fatalf("key %d present=%v want %v", i, ok, want)
		}
	}
	var keys []string
	db.Ascend("", "", func(k string, _ []byte) bool { keys = append(keys, k); return true })
	if !sort.StringsAreSorted(keys) || len(keys) != db.Len() {
		t.Fatal("tree inconsistent after deletes")
	}
}

func TestPropertyAgainstMap(t *testing.T) {
	// Randomized sequence of Set/Delete/Get mirrored against a Go map.
	rng := rand.New(rand.NewSource(7))
	db := New()
	ref := map[string]string{}
	keyOf := func() string { return fmt.Sprintf("k%03d", rng.Intn(500)) }
	for op := 0; op < 50000; op++ {
		k := keyOf()
		switch rng.Intn(3) {
		case 0:
			v := fmt.Sprint(rng.Intn(1000))
			db.Set(k, []byte(v))
			ref[k] = v
		case 1:
			delete(ref, k)
			db.Delete(k)
		case 2:
			got, ok := db.Get(k)
			want, wok := ref[k]
			if ok != wok || (ok && string(got) != want) {
				t.Fatalf("op %d: Get(%q) = %q,%v want %q,%v", op, k, got, ok, want, wok)
			}
		}
	}
	if db.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", db.Len(), len(ref))
	}
	// Byte accounting matches the reference contents.
	var wantK, wantV int64
	for k, v := range ref {
		wantK += int64(len(k))
		wantV += int64(len(v))
	}
	gotK, gotV := db.Bytes()
	if gotK != wantK || gotV != wantV {
		t.Fatalf("Bytes = %d,%d want %d,%d", gotK, gotV, wantK, wantV)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := New()
	for i := 0; i < 1000; i++ {
		db.Set(fmt.Sprintf("key%04d", i), []byte(fmt.Sprintf("val%d", i)))
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != db.Len() {
		t.Fatalf("loaded %d keys", db2.Len())
	}
	db.Ascend("", "", func(k string, v []byte) bool {
		got, ok := db2.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("key %q lost in snapshot", k)
		}
		return true
	})
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	New().Save(&buf)
	trunc := buf.Bytes()[:len(buf.Bytes())-1]
	if _, err := Load(bytes.NewReader(trunc[:5])); err == nil {
		t.Fatal("truncated magic accepted")
	}
}

func TestPropertySetGetQuick(t *testing.T) {
	db := New()
	f := func(k string, v []byte) bool {
		db.Set(k, v)
		got, ok := db.Get(k)
		return ok && bytes.Equal(got, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSet(b *testing.B) {
	db := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Set(fmt.Sprintf("key%09d", i%100000), []byte("value"))
	}
}

func BenchmarkGet(b *testing.B) {
	db := New()
	for i := 0; i < 100000; i++ {
		db.Set(fmt.Sprintf("key%09d", i), []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Get(fmt.Sprintf("key%09d", i%100000))
	}
}

func TestMaxInPrefix(t *testing.T) {
	db := New()
	if _, _, ok := db.MaxInPrefix("v|"); ok {
		t.Fatal("empty store must miss")
	}
	// Enough keys to force a multi-level tree, across three prefixes.
	for i := 0; i < 500; i++ {
		db.Set(fmt.Sprintf("a|%04d", i), []byte("a"))
		db.Set(fmt.Sprintf("m|%04d", i), []byte{byte(i)})
		db.Set(fmt.Sprintf("z|%04d", i), []byte("z"))
	}
	k, v, ok := db.MaxInPrefix("m|")
	if !ok || k != "m|0499" || len(v) != 1 || v[0] != byte(499%256) {
		t.Fatalf("MaxInPrefix(m|) = %q,%v,%v", k, v, ok)
	}
	// A bounded sub-prefix must not leak into its neighbors.
	if k, _, ok := db.MaxInPrefix("m|01"); !ok || k != "m|0199" {
		t.Fatalf("MaxInPrefix(m|01) = %q,%v", k, ok)
	}
	if _, _, ok := db.MaxInPrefix("n|"); ok {
		t.Fatal("absent prefix must miss")
	}
	// Greatest prefix overall (nothing sorts after z|).
	if k, _, ok := db.MaxInPrefix("z|"); !ok || k != "z|0499" {
		t.Fatalf("MaxInPrefix(z|) = %q,%v", k, ok)
	}
	// Agreement with a full prefix scan, for every per-item prefix.
	for i := 0; i < 500; i += 17 {
		prefix := fmt.Sprintf("a|%03d", i/10)
		var last string
		db.AscendPrefix(prefix, func(k string, _ []byte) bool { last = k; return true })
		k, _, ok := db.MaxInPrefix(prefix)
		if (last == "") != !ok || k != last {
			t.Fatalf("MaxInPrefix(%q) = %q,%v; scan says %q", prefix, k, ok, last)
		}
	}
}
