package kvdb

// Bottom-up bulk construction for pair streams arriving in strictly
// ascending key order — the cold-start path Load runs on every snapshot.
// Inserting n sorted pairs through Set costs n root-to-leaf descents
// (O(n log n) comparisons and a cache-hostile walk per pair); the builder
// instead grows the tree along its right spine: each pair lands in the
// rightmost leaf with zero comparisons, a full leaf is closed by promoting
// the arriving pair to its parent as the separator, and closed nodes are
// never touched again. Every node except the rightmost at each level ends
// exactly full (2·degree keys), so the loaded tree is also shallower and
// denser than an insertion-built one.

// bulkLoader accumulates ascending pairs and finishes into a valid B-tree.
// The zero value is ready to use.
type bulkLoader struct {
	// spine[0] is the leaf currently being filled; spine[h] is the open
	// node at height h whose rightmost child is spine[h-1]. All other
	// nodes are closed and full.
	spine    []*node
	lastKey  string
	count    int
	keyBytes int64
	valBytes int64
}

// add appends one pair. Keys must be strictly ascending; add reports false
// (and stores nothing) when the order is violated, so the caller can fall
// back to ordinary insertion.
func (l *bulkLoader) add(key string, val []byte) bool {
	if l.spine == nil {
		l.spine = append(l.spine, newFullNode(false))
	} else if key <= l.lastKey {
		return false
	}
	l.lastKey = key
	l.count++
	l.keyBytes += int64(len(key))
	l.valBytes += int64(len(val))
	leaf := l.spine[0]
	if len(leaf.keys) < 2*degree {
		leaf.keys = append(leaf.keys, key)
		leaf.vals = append(leaf.vals, val)
		return true
	}
	// Leaf full: the arriving pair becomes the parent separator and a
	// fresh rightmost leaf opens.
	fresh := newFullNode(false)
	l.spine[0] = fresh
	l.promote(1, key, val, leaf, fresh)
	return true
}

// newFullNode allocates a node with capacity for a full complement of keys
// up front: bulk-built nodes almost all end exactly full, so sizing them
// once avoids the append-growth reallocation (and the GC churn it feeds)
// that dominated the load profile.
func newFullNode(interior bool) *node {
	n := &node{
		keys: make([]string, 0, 2*degree),
		vals: make([][]byte, 0, 2*degree),
	}
	if interior {
		n.children = make([]*node, 0, 2*degree+1)
	}
	return n
}

// promote installs (key, val) as a separator at height h, between the
// just-closed node and the freshly opened one. A full parent closes in
// turn, promoting the separator another level up.
func (l *bulkLoader) promote(h int, key string, val []byte, closed, fresh *node) {
	if h == len(l.spine) {
		root := newFullNode(true)
		root.keys = append(root.keys, key)
		root.vals = append(root.vals, val)
		root.children = append(root.children, closed, fresh)
		l.spine = append(l.spine, root)
		return
	}
	n := l.spine[h]
	if len(n.keys) < 2*degree {
		n.keys = append(n.keys, key)
		n.vals = append(n.vals, val)
		n.children = append(n.children, fresh)
		return
	}
	up := newFullNode(true)
	up.children = append(up.children, fresh)
	l.spine[h] = up
	l.promote(h+1, key, val, n, up)
}

// finish rebalances the right spine (the only nodes that may be under-full,
// including a possible cascade of zero-key one-child nodes left by nested
// promotions) and returns the completed root. The loader must not be reused.
func (l *bulkLoader) finish() *node {
	if l.spine == nil {
		return &node{}
	}
	root := l.spine[len(l.spine)-1]
	l.spine = nil
	// Walk the last-child path top-down, fixing each under-full child before
	// descending into it. The invariant that makes one redistribution always
	// sufficient: every non-last child of a path node is a closed node and
	// therefore exactly full (2·degree keys), so pooling it with the
	// separator and the under-full child yields between 2·degree+1 and
	// 3·degree keys — always splittable into two legal nodes. The path node
	// itself has at least one key (the root by construction, fixed nodes at
	// least degree), so the left sibling always exists.
	for n := root; !n.leaf(); n = n.children[len(n.children)-1] {
		i := len(n.children) - 1
		last := n.children[i]
		if len(last.keys) >= degree {
			continue
		}
		left := n.children[i-1]
		keys := append(append(append([]string(nil), left.keys...), n.keys[i-1]), last.keys...)
		vals := append(append(append([][]byte(nil), left.vals...), n.vals[i-1]), last.vals...)
		mid := len(keys) / 2
		n.keys[i-1], n.vals[i-1] = keys[mid], vals[mid]
		left.keys = append(left.keys[:0], keys[:mid]...)
		left.vals = append(left.vals[:0], vals[:mid]...)
		last.keys = append(last.keys[:0], keys[mid+1:]...)
		last.vals = append(last.vals[:0], vals[mid+1:]...)
		if !left.leaf() {
			children := append(append([]*node(nil), left.children...), last.children...)
			left.children = append(left.children[:0], children[:mid+1]...)
			last.children = append(last.children[:0], children[mid+1:]...)
		}
	}
	return root
}

// into installs the built tree into db, replacing its contents. db must be
// freshly created (no views pinned, no concurrent users).
func (l *bulkLoader) into(db *DB) {
	count, keyBytes, valBytes := l.count, l.keyBytes, l.valBytes
	db.root = l.finish()
	db.count = count
	db.keyBytes = keyBytes
	db.valBytes = valBytes
}
