package kvdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// checkInvariants verifies the full B-tree contract: uniform leaf depth,
// node occupancy within [minKeys, maxKeys] (root exempt from the minimum),
// sorted keys, separator ordering and parallel keys/vals/children lengths.
// It returns the total key count. A freshly bulk-loaded tree satisfies the
// tight (degree, 2*degree) bounds; a mutated tree satisfies the operational
// (degree-1, 2*degree+1) bounds — splits leave a right sibling one short,
// and delete's merge can run a node one over until the next insert splits
// it.
func checkInvariants(t *testing.T, db *DB, minKeys, maxKeys int) int {
	t.Helper()
	leafDepth := -1
	count := 0
	var walk func(n *node, depth int, lo, hi string, hasLo, hasHi bool)
	walk = func(n *node, depth int, lo, hi string, hasLo, hasHi bool) {
		if len(n.vals) != len(n.keys) {
			t.Fatalf("node at depth %d: %d keys but %d vals", depth, len(n.keys), len(n.vals))
		}
		if depth > 0 && len(n.keys) < minKeys {
			t.Fatalf("non-root node at depth %d has %d keys, want >= %d", depth, len(n.keys), minKeys)
		}
		if len(n.keys) > maxKeys {
			t.Fatalf("node at depth %d has %d keys, want <= %d", depth, len(n.keys), maxKeys)
		}
		count += len(n.keys)
		for i, k := range n.keys {
			if i > 0 && n.keys[i-1] >= k {
				t.Fatalf("unsorted keys at depth %d: %q >= %q", depth, n.keys[i-1], k)
			}
			if hasLo && k <= lo {
				t.Fatalf("key %q at depth %d violates lower separator %q", k, depth, lo)
			}
			if hasHi && k >= hi {
				t.Fatalf("key %q at depth %d violates upper separator %q", k, depth, hi)
			}
		}
		if n.leaf() {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				t.Fatalf("leaf at depth %d, others at %d", depth, leafDepth)
			}
			return
		}
		if len(n.children) != len(n.keys)+1 {
			t.Fatalf("node at depth %d: %d keys but %d children", depth, len(n.keys), len(n.children))
		}
		for i, c := range n.children {
			clo, chasLo := lo, hasLo
			chi, chasHi := hi, hasHi
			if i > 0 {
				clo, chasLo = n.keys[i-1], true
			}
			if i < len(n.keys) {
				chi, chasHi = n.keys[i], true
			}
			walk(c, depth+1, clo, chi, chasLo, chasHi)
		}
	}
	walk(db.root, 0, "", "", false, false)
	if count != db.count {
		t.Fatalf("tree holds %d keys but count says %d", count, db.count)
	}
	return count
}

func saveBytes(t *testing.T, db *DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBulkLoadEquivalence round-trips databases of many sizes (all the
// right-spine edge cases: empty, single leaf, exactly-full leaf, fresh
// empty rightmost leaf, multi-level promotions) through Save/Load and
// checks the loaded tree is a valid B-tree with identical contents that
// still accepts mutations.
func TestBulkLoadEquivalence(t *testing.T) {
	sizes := []int{0, 1, degree, 2 * degree, 2*degree + 1, 2*degree + 2,
		4 * degree, 100, 1000, (2*degree + 1) * (2*degree + 1), 5000}
	for _, n := range sizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			src := New()
			for i := 0; i < n; i++ {
				src.Set(fmt.Sprintf("k%08d", i), []byte(fmt.Sprintf("v%d", i)))
			}
			loaded, err := Load(bytes.NewReader(saveBytes(t, src)))
			if err != nil {
				t.Fatal(err)
			}
			if got := checkInvariants(t, loaded, degree, 2*degree); got != n {
				t.Fatalf("loaded %d keys, want %d", got, n)
			}
			kb, vb := loaded.Bytes()
			skb, svb := src.Bytes()
			if kb != skb || vb != svb {
				t.Fatalf("byte accounting diverged: (%d,%d) vs (%d,%d)", kb, vb, skb, svb)
			}
			if !bytes.Equal(saveBytes(t, loaded), saveBytes(t, src)) {
				t.Fatal("loaded database content differs from source")
			}
			// The loaded tree must remain a working store.
			loaded.Set("zzz-new", []byte("new"))
			if n > 0 {
				loaded.Delete("k00000000")
			}
			checkInvariants(t, loaded, degree-1, 2*degree+1)
		})
	}
}

// TestBulkLoadRandomized drives random key populations (duplicates in the
// source collapse via Set) through the bulk loader and cross-checks every
// read path against the source.
func TestBulkLoadRandomized(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := New()
		n := rng.Intn(3000)
		for i := 0; i < n; i++ {
			src.Set(fmt.Sprintf("%x", rng.Intn(4096)), []byte{byte(i)})
		}
		loaded, err := Load(bytes.NewReader(saveBytes(t, src)))
		if err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, loaded, degree, 2*degree)
		src.Ascend("", "", func(k string, v []byte) bool {
			got, ok := loaded.Get(k)
			if !ok || !bytes.Equal(got, v) {
				t.Fatalf("seed %d: Get(%q) = %q,%v want %q", seed, k, got, ok, v)
			}
			return true
		})
		if loaded.Len() != src.Len() {
			t.Fatalf("seed %d: loaded %d keys, want %d", seed, loaded.Len(), src.Len())
		}
	}
}

// TestBulkLoaderOutOfOrder feeds the loader a violating key and checks it
// refuses (Load then falls back to Set-based insertion for the remainder).
func TestBulkLoaderOutOfOrder(t *testing.T) {
	var bl bulkLoader
	if !bl.add("b", nil) || !bl.add("c", nil) {
		t.Fatal("ascending adds refused")
	}
	if bl.add("a", nil) {
		t.Fatal("out-of-order add accepted")
	}
	if bl.add("c", nil) {
		t.Fatal("duplicate add accepted")
	}
	db := New()
	bl.into(db)
	if db.Len() != 2 {
		t.Fatalf("prefix holds %d keys, want 2", db.Len())
	}
}

// TestBulkLoadDenserThanInsert pins the bulk loader's fill-factor win: a
// loaded tree must not use more nodes than the insertion-built source it
// came from (splits leave insertion-built leaves half full; the bulk
// builder closes them full).
func TestBulkLoadDenserThanInsert(t *testing.T) {
	src := New()
	for i := 0; i < 20000; i++ {
		src.Set(fmt.Sprintf("k%08d", i), nil)
	}
	loaded, err := Load(bytes.NewReader(saveBytes(t, src)))
	if err != nil {
		t.Fatal(err)
	}
	ss, ls := src.Stats(), loaded.Stats()
	if ls.Nodes > ss.Nodes {
		t.Fatalf("bulk-loaded tree has %d nodes, insertion-built has %d", ls.Nodes, ss.Nodes)
	}
	if ls.Depth > ss.Depth {
		t.Fatalf("bulk-loaded tree depth %d exceeds insertion-built %d", ls.Depth, ss.Depth)
	}
}

// TestChurnOccupancyBounded is the regression test for the split condition
// fix: delete's merge path can leave a node at 2*degree+1 keys, and the old
// `== 2*degree` split check would then never split it again, so an
// insert-heavy workload could grow leaves without bound. Bulk-loaded trees
// (every node exactly full) trigger the merge case immediately, so churn
// one and check occupancy stays bounded.
func TestChurnOccupancyBounded(t *testing.T) {
	src := New()
	for i := 0; i < 5000; i++ {
		src.Set(fmt.Sprintf("k%08d", i), nil)
	}
	db, err := Load(bytes.NewReader(saveBytes(t, src)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30000; i++ {
		k := fmt.Sprintf("k%08d", rng.Intn(8000))
		if rng.Intn(3) == 0 {
			db.Delete(k)
		} else {
			db.Set(k, []byte{1})
		}
	}
	checkInvariants(t, db, degree-1, 2*degree+1)
}

// BenchmarkKvdbLoad measures cold-start snapshot loading: the bulk-build
// path Load uses, against the per-pair Set insertion the old Load did.
func BenchmarkKvdbLoad(b *testing.B) {
	const n = 200000
	src := New()
	for i := 0; i < n; i++ {
		src.Set(fmt.Sprintf("a|%016x|%08x|NAME|%08x", i, 1, 0), []byte("value-payload"))
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		b.Fatal(err)
	}
	snap := buf.Bytes()

	b.Run("bulk", func(b *testing.B) {
		b.SetBytes(int64(len(snap)))
		for i := 0; i < b.N; i++ {
			db, err := Load(bytes.NewReader(snap))
			if err != nil {
				b.Fatal(err)
			}
			if db.Len() != n {
				b.Fatalf("loaded %d keys, want %d", db.Len(), n)
			}
		}
	})
	b.Run("set", func(b *testing.B) {
		b.SetBytes(int64(len(snap)))
		for i := 0; i < b.N; i++ {
			db := New()
			src.Ascend("", "", func(k string, v []byte) bool {
				db.Set(k, v)
				return true
			})
			if db.Len() != n {
				b.Fatalf("inserted %d keys, want %d", db.Len(), n)
			}
		}
	})
}
