package kvdb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Delta streams: the incremental counterpart of the snapshot format. A
// delta records how one view differs from an earlier view of the same
// store — set ops for keys inserted or changed, delete tombstones for keys
// removed — so a checkpoint chain can persist O(changed keys) instead of
// O(database) per generation.
//
// Format: magic, then tagged ops in key order ('S' klen vlen key val for a
// set, 'D' klen key for a tombstone), then an 'E' trailer carrying the set
// and delete counts for end-to-end validation. Integrity of the file as a
// whole is the checkpoint manifest's job (size + CRC), as with snapshots.
//
// Enumeration exploits the store's epoch-tagged copy-on-write nodes: every
// mutation after a view is pinned clones the nodes it touches into a newer
// epoch, so two views of one store share every untouched subtree by
// pointer. SaveDelta walks both trees as merged ordered streams and skips
// any subtree the views share, which bounds the walk to the mutated
// fringe (plus structural neighbors) rather than the whole key space.

var deltaMagic = []byte("PASSKVDD1\n")

// ErrBadDelta reports an unreadable delta stream.
var ErrBadDelta = errors.New("kvdb: bad delta")

// ErrDeltaBase reports a base view SaveDelta cannot diff against: nil, a
// view of a different DB (including the reloaded incarnation of the same
// data after a restart), or a view newer than the one being saved.
var ErrDeltaBase = errors.New("kvdb: invalid delta base view")

// DeltaStats counts the operations in a delta stream.
type DeltaStats struct {
	Sets    int64
	Deletes int64
}

// SaveDelta writes to w the operations that transform base's image into
// v's: sets for keys added or changed since base, tombstones for keys
// deleted. base must be an earlier View of the same DB value (the
// same-process identity check behind checkpoint delta generations);
// otherwise ErrDeltaBase is returned and nothing is written.
func (v *View) SaveDelta(base *View, w io.Writer) (DeltaStats, error) {
	var st DeltaStats
	if base == nil || base.db == nil || base.db != v.db {
		return st, fmt.Errorf("%w: not a view of the same database", ErrDeltaBase)
	}
	if base.epoch > v.epoch {
		return st, fmt.Errorf("%w: base epoch %d is newer than view epoch %d", ErrDeltaBase, base.epoch, v.epoch)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(deltaMagic); err != nil {
		return st, err
	}
	var lens [8]byte
	emitSet := func(k string, val []byte) error {
		if err := bw.WriteByte('S'); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(lens[:4], uint32(len(k)))
		binary.LittleEndian.PutUint32(lens[4:], uint32(len(val)))
		if _, err := bw.Write(lens[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(k); err != nil {
			return err
		}
		_, err := bw.Write(val)
		st.Sets++
		return err
	}
	emitDel := func(k string) error {
		if err := bw.WriteByte('D'); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(lens[:4], uint32(len(k)))
		if _, err := bw.Write(lens[:4]); err != nil {
			return err
		}
		_, err := bw.WriteString(k)
		st.Deletes++
		return err
	}
	if err := diffViews(v, base, emitSet, emitDel); err != nil {
		return st, err
	}
	if err := bw.WriteByte('E'); err != nil {
		return st, err
	}
	binary.LittleEndian.PutUint64(lens[:], uint64(st.Sets))
	if _, err := bw.Write(lens[:]); err != nil {
		return st, err
	}
	binary.LittleEndian.PutUint64(lens[:], uint64(st.Deletes))
	if _, err := bw.Write(lens[:]); err != nil {
		return st, err
	}
	return st, bw.Flush()
}

// diffViews runs the merged ordered walk over cur's and base's frozen
// trees, invoking set for every key whose value is new or changed in cur
// and del for every key present in base but absent from cur.
func diffViews(cur, base *View, set func(string, []byte) error, del func(string) error) error {
	ci := newDeltaIter(cur.root)
	bi := newDeltaIter(base.root)
	for {
		cp, ck, cv, cSub, cOK := ci.peek()
		bp, bk, bv, bSub, bOK := bi.peek()
		switch {
		case !cOK && !bOK:
			return nil
		case !cOK:
			// cur exhausted: everything left in base was deleted.
			if bp {
				if err := del(bk); err != nil {
					return err
				}
				bi.advance()
			} else {
				bi.expand()
			}
		case !bOK:
			// base exhausted: everything left in cur is new.
			if cp {
				if err := set(ck, cv); err != nil {
					return err
				}
				ci.advance()
			} else {
				ci.expand()
			}
		case !cp && !bp:
			// Both streams are positioned at whole subtrees. Identical
			// pointers mean a shared, untouched subtree — the prune that
			// makes deltas O(changed), not O(database). Different nodes:
			// unpack whichever starts earlier in the key order so the
			// streams can realign on shared grandchildren.
			if cSub == bSub {
				ci.advance()
				bi.advance()
				continue
			}
			if subtreeMin(cSub) <= subtreeMin(bSub) {
				ci.expand()
			} else {
				bi.expand()
			}
		case !cp:
			// cur at a subtree, base at a key: base's key is a delete
			// candidate only if it precedes everything in the subtree.
			if subtreeMin(cSub) <= bk {
				ci.expand()
			} else {
				if err := del(bk); err != nil {
					return err
				}
				bi.advance()
			}
		case !bp:
			if subtreeMin(bSub) <= ck {
				bi.expand()
			} else {
				if err := set(ck, cv); err != nil {
					return err
				}
				ci.advance()
			}
		default:
			switch {
			case ck == bk:
				if !bytes.Equal(cv, bv) {
					if err := set(ck, cv); err != nil {
						return err
					}
				}
				ci.advance()
				bi.advance()
			case ck < bk:
				if err := set(ck, cv); err != nil {
					return err
				}
				ci.advance()
			default:
				if err := del(bk); err != nil {
					return err
				}
				bi.advance()
			}
		}
	}
}

// deltaFrame is one node being walked: pos indexes the node's in-order
// element sequence. For an interior node with m keys that sequence is
// child0, key0, child1, key1, …, childm (length 2m+1, children at even
// positions); a leaf's sequence is just its keys.
type deltaFrame struct {
	n   *node
	pos int
}

// deltaIter yields a tree's elements in key order, exposing pending
// subtrees unexpanded so the diff can skip or descend them.
type deltaIter struct {
	stack []deltaFrame
}

func newDeltaIter(root *node) *deltaIter {
	return &deltaIter{stack: []deltaFrame{{n: root}}}
}

// peek reports the next element: a key/value pair (isPair true) or an
// unexpanded subtree. ok is false when the walk is exhausted.
func (it *deltaIter) peek() (isPair bool, k string, v []byte, sub *node, ok bool) {
	for len(it.stack) > 0 {
		f := &it.stack[len(it.stack)-1]
		n := f.n
		if n.leaf() {
			if f.pos < len(n.keys) {
				return true, n.keys[f.pos], n.vals[f.pos], nil, true
			}
		} else if f.pos <= 2*len(n.keys) {
			if f.pos%2 == 0 {
				return false, "", nil, n.children[f.pos/2], true
			}
			i := (f.pos - 1) / 2
			return true, n.keys[i], n.vals[i], nil, true
		}
		it.stack = it.stack[:len(it.stack)-1]
	}
	return false, "", nil, nil, false
}

// advance consumes the peeked element without descending into it: past a
// pair, or past a whole (shared, skippable) subtree.
func (it *deltaIter) advance() { it.stack[len(it.stack)-1].pos++ }

// expand descends into the peeked subtree: its elements are yielded
// individually before the walk resumes after it.
func (it *deltaIter) expand() {
	f := &it.stack[len(it.stack)-1]
	child := f.n.children[f.pos/2]
	f.pos++
	it.stack = append(it.stack, deltaFrame{n: child})
}

// subtreeMin returns the smallest key in a subtree. Subtrees handed to it
// are non-root nodes of a valid B-tree and therefore non-empty.
func subtreeMin(n *node) string {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0]
}

// ApplyDelta reads a delta stream written by SaveDelta and applies it to
// db, which must hold the image the delta's base view described (loading
// the base snapshot and applying its delta chain in order reproduces the
// newest view byte-for-byte).
func ApplyDelta(db *DB, r io.Reader) (DeltaStats, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return DeltaStats{}, fmt.Errorf("%w: %v", ErrBadDelta, err)
	}
	return ApplyDeltaBytes(db, data)
}

// ApplyDeltaBytes applies a delta image to db, taking ownership of data:
// applied keys and values alias the buffer rather than copying, exactly as
// LoadBytes does for full snapshots, so the caller must not modify it
// afterwards.
func ApplyDeltaBytes(db *DB, data []byte) (DeltaStats, error) {
	var st DeltaStats
	if len(data) < len(deltaMagic) {
		return st, fmt.Errorf("%w: truncated header", ErrBadDelta)
	}
	if string(data[:len(deltaMagic)]) != string(deltaMagic) {
		return st, fmt.Errorf("%w: bad magic", ErrBadDelta)
	}
	data = data[len(deltaMagic):]
	sdata := zeroCopyString(data)
	pos := 0
	for {
		if pos >= len(data) {
			return st, fmt.Errorf("%w: missing trailer", ErrBadDelta)
		}
		tag := data[pos]
		pos++
		switch tag {
		case 'S':
			if pos+8 > len(data) {
				return st, fmt.Errorf("%w: truncated set at op %d", ErrBadDelta, st.Sets+st.Deletes)
			}
			klen := int(binary.LittleEndian.Uint32(data[pos:]))
			vlen := int(binary.LittleEndian.Uint32(data[pos+4:]))
			if klen > 1<<24 || vlen > 1<<28 {
				return st, fmt.Errorf("%w: implausible lengths", ErrBadDelta)
			}
			pos += 8
			if pos+klen+vlen > len(data) {
				return st, fmt.Errorf("%w: truncated set at op %d", ErrBadDelta, st.Sets+st.Deletes)
			}
			key := sdata[pos : pos+klen]
			val := data[pos+klen : pos+klen+vlen : pos+klen+vlen]
			if vlen == 0 {
				val = nil
			}
			pos += klen + vlen
			db.Set(key, val)
			st.Sets++
		case 'D':
			if pos+4 > len(data) {
				return st, fmt.Errorf("%w: truncated delete at op %d", ErrBadDelta, st.Sets+st.Deletes)
			}
			klen := int(binary.LittleEndian.Uint32(data[pos:]))
			if klen > 1<<24 {
				return st, fmt.Errorf("%w: implausible lengths", ErrBadDelta)
			}
			pos += 4
			if pos+klen > len(data) {
				return st, fmt.Errorf("%w: truncated delete at op %d", ErrBadDelta, st.Sets+st.Deletes)
			}
			db.Delete(sdata[pos : pos+klen])
			pos += klen
			st.Deletes++
		case 'E':
			if pos+16 != len(data) {
				return st, fmt.Errorf("%w: %d bytes after trailer", ErrBadDelta, len(data)-pos-16)
			}
			sets := binary.LittleEndian.Uint64(data[pos:])
			dels := binary.LittleEndian.Uint64(data[pos+8:])
			if int64(sets) != st.Sets || int64(dels) != st.Deletes {
				return st, fmt.Errorf("%w: trailer says %d sets / %d deletes, stream held %d / %d",
					ErrBadDelta, sets, dels, st.Sets, st.Deletes)
			}
			return st, nil
		default:
			return st, fmt.Errorf("%w: unknown op tag %#x", ErrBadDelta, tag)
		}
	}
}
