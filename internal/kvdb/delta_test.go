package kvdb

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// saveView serializes a view's full image.
func saveView(t *testing.T, v *View) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// applyRandom mutates db with n random operations drawn from rng: inserts,
// overwrites, and — crucially for tombstone coverage — deletes of existing
// keys, tracked in live.
func applyRandom(rng *rand.Rand, db *DB, live map[string]bool, n int) (dels int) {
	for i := 0; i < n; i++ {
		switch op := rng.Intn(10); {
		case op < 6: // insert (or collide into an overwrite)
			k := fmt.Sprintf("k%06d", rng.Intn(50000))
			db.Set(k, []byte(fmt.Sprintf("v%d", rng.Int63())))
			live[k] = true
		case op < 8: // overwrite an existing key
			if k, ok := anyKey(rng, live); ok {
				db.Set(k, []byte(fmt.Sprintf("w%d", rng.Int63())))
			}
		default: // delete an existing key
			if k, ok := anyKey(rng, live); ok {
				db.Delete(k)
				delete(live, k)
				dels++
			}
		}
	}
	return dels
}

func anyKey(rng *rand.Rand, live map[string]bool) (string, bool) {
	if len(live) == 0 {
		return "", false
	}
	i := rng.Intn(len(live))
	for k := range live {
		if i == 0 {
			return k, true
		}
		i--
	}
	return "", false
}

// TestDeltaRoundTrip sweeps random workloads: base image + delta must
// reproduce the current image byte-for-byte, across inserts, overwrites
// and enough deletes that tombstones are genuinely exercised.
func TestDeltaRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			db := New()
			live := map[string]bool{}
			applyRandom(rng, db, live, 3000+rng.Intn(2000))
			base := db.View()
			baseImg := saveView(t, base)

			dels := applyRandom(rng, db, live, 500+rng.Intn(500))
			cur := db.View()
			if cur.Epoch() <= base.Epoch() {
				t.Fatalf("epochs not monotonic: base %d, cur %d", base.Epoch(), cur.Epoch())
			}

			var delta bytes.Buffer
			st, err := cur.SaveDelta(base, &delta)
			if err != nil {
				t.Fatal(err)
			}
			if dels > 0 && st.Deletes == 0 {
				t.Fatalf("workload deleted %d keys but the delta carries no tombstones", dels)
			}

			re, err := LoadBytes(append([]byte(nil), baseImg...))
			if err != nil {
				t.Fatal(err)
			}
			ast, err := ApplyDelta(re, bytes.NewReader(delta.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if ast != st {
				t.Fatalf("applied %+v ops, delta saved %+v", ast, st)
			}
			if got, want := saveView(t, re.View()), saveView(t, cur); !bytes.Equal(got, want) {
				t.Fatalf("base+delta image differs from current image (%d vs %d bytes)", len(got), len(want))
			}
		})
	}
}

// TestDeltaChain composes a full image with several consecutive deltas —
// the shape a checkpoint chain recovers — and requires byte identity at
// the end.
func TestDeltaChain(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := New()
	live := map[string]bool{}
	applyRandom(rng, db, live, 4000)
	base := db.View()
	full := saveView(t, base)

	var deltas [][]byte
	for i := 0; i < 4; i++ {
		applyRandom(rng, db, live, 400)
		cur := db.View()
		var buf bytes.Buffer
		if _, err := cur.SaveDelta(base, &buf); err != nil {
			t.Fatal(err)
		}
		deltas = append(deltas, buf.Bytes())
		base = cur
	}
	want := saveView(t, db.View())

	re, err := LoadBytes(full)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range deltas {
		if _, err := ApplyDeltaBytes(re, d); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
	}
	if got := saveView(t, re.View()); !bytes.Equal(got, want) {
		t.Fatal("full+delta-chain image differs from the live image")
	}
}

// TestDeltaBaseIdentity pins the same-process identity contract: a base
// from another DB value (including a reload of identical data) or a base
// newer than the view must be refused before anything is written.
func TestDeltaBaseIdentity(t *testing.T) {
	db := New()
	db.Set("a", []byte("1"))
	v1 := db.View()
	db.Set("b", []byte("2"))
	v2 := db.View()

	var buf bytes.Buffer
	if _, err := v1.SaveDelta(v2, &buf); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("newer base accepted: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("failed SaveDelta wrote %d bytes", buf.Len())
	}

	other := New()
	other.Set("a", []byte("1"))
	if _, err := v2.SaveDelta(other.View(), &buf); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("foreign base accepted: %v", err)
	}

	// A reloaded incarnation holds the same data but is a different DB:
	// its epochs are unrelated, so it cannot serve as a base.
	img := saveView(t, v1)
	re, err := LoadBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.SaveDelta(re.View(), &buf); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("reloaded base accepted: %v", err)
	}

	// Self-delta: legal and empty.
	buf.Reset()
	st, err := v2.SaveDelta(v2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sets != 0 || st.Deletes != 0 {
		t.Fatalf("self-delta carries ops: %+v", st)
	}
}

// TestDeltaProportional is the size contract behind incremental
// checkpoints: a small tail of changes over a large database must produce
// a delta far smaller than the full snapshot.
func TestDeltaProportional(t *testing.T) {
	db := New()
	for i := 0; i < 60000; i++ {
		db.Set(fmt.Sprintf("key-%08d", i), []byte(fmt.Sprintf("value-%d", i)))
	}
	base := db.View()
	for i := 0; i < 500; i++ {
		db.Set(fmt.Sprintf("key-%08d", i*117%60000), []byte("changed"))
	}
	cur := db.View()
	full := cur.SnapshotSize()
	if got := int64(len(saveView(t, cur))); got != full {
		t.Fatalf("SnapshotSize says %d, Save wrote %d", full, got)
	}
	var delta bytes.Buffer
	if _, err := cur.SaveDelta(base, &delta); err != nil {
		t.Fatal(err)
	}
	if int64(delta.Len())*5 > full {
		t.Fatalf("delta %d bytes vs full %d: not under 1/5", delta.Len(), full)
	}
}

// TestDeltaCorrupt sweeps malformed delta streams: truncations at every
// boundary, a bad trailer count, trailing garbage and a flipped magic must
// all fail cleanly, never panic.
func TestDeltaCorrupt(t *testing.T) {
	db := New()
	db.Set("alpha", []byte("1"))
	base := db.View()
	db.Set("beta", []byte("2"))
	db.Delete("alpha")
	var buf bytes.Buffer
	if _, err := db.View().SaveDelta(base, &buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for cut := 0; cut < len(good); cut++ {
		fresh := New()
		fresh.Set("alpha", []byte("1"))
		if _, err := ApplyDeltaBytes(fresh, append([]byte(nil), good[:cut]...)); !errors.Is(err, ErrBadDelta) {
			t.Fatalf("truncation at %d not rejected: %v", cut, err)
		}
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xff // trailer delete-count
	if _, err := ApplyDeltaBytes(New(), bad); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("bad trailer count not rejected: %v", err)
	}
	if _, err := ApplyDeltaBytes(New(), append(append([]byte(nil), good...), 0)); !errors.Is(err, ErrBadDelta) {
		t.Fatal("trailing garbage not rejected")
	}
	bad = append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, err := ApplyDeltaBytes(New(), bad); !errors.Is(err, ErrBadDelta) {
		t.Fatal("bad magic not rejected")
	}
}
