package kvdb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"unsafe"
)

// zeroCopyString views data's bytes as a string without copying. Safe
// only because LoadBytes owns its arena by contract (the caller hands it
// over and nothing ever writes to it again); keys carved from the result
// stay valid for the life of the database. This halves the memory and
// skips a whole-arena copy on the recovery path, where restart latency is
// the budget.
func zeroCopyString(data []byte) string {
	if len(data) == 0 {
		return ""
	}
	return unsafe.String(&data[0], len(data))
}

// Snapshot format: magic, count, then (keyLen, key, valLen, val)* in key
// order. Loading bulk-inserts in order, which keeps the tree balanced.

var snapshotMagic = []byte("PASSKVDB1\n")

// ErrBadSnapshot reports an unreadable snapshot stream.
var ErrBadSnapshot = errors.New("kvdb: bad snapshot")

// Save writes a point-in-time snapshot of the database to w. The image is
// consistent even with a concurrent writer: Save pins a View first, so the
// header count and the pair stream describe the same frozen tree.
func (db *DB) Save(w io.Writer) error { return db.View().Save(w) }

// Save writes the view's frozen image to w in the snapshot format.
func (v *View) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(v.count))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var failed error
	v.Ascend("", "", func(k string, v []byte) bool {
		var lens [8]byte
		binary.LittleEndian.PutUint32(lens[:4], uint32(len(k)))
		binary.LittleEndian.PutUint32(lens[4:], uint32(len(v)))
		if _, err := bw.Write(lens[:]); err != nil {
			failed = err
			return false
		}
		if _, err := bw.WriteString(k); err != nil {
			failed = err
			return false
		}
		if _, err := bw.Write(v); err != nil {
			failed = err
			return false
		}
		return true
	})
	if failed != nil {
		return failed
	}
	return bw.Flush()
}

// Load reads a snapshot written by Save into a fresh database.
func Load(r io.Reader) (*DB, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return LoadBytes(data)
}

// LoadBytes reads a snapshot image into a fresh database, taking
// ownership of data: the caller must not modify it afterwards, because
// loaded keys and values alias it rather than copying — the snapshot
// arena becomes the database's storage. Save streams pairs in key order,
// so loading builds the tree bottom-up along its right spine (see
// bulkload.go): O(1) per pair, no descents, and every node but the
// rightmost per level ends exactly full. A stream that violates the key
// order (not something Save produces) falls back to ordinary insertion
// for the out-of-order remainder.
func LoadBytes(data []byte) (*DB, error) {
	if len(data) < len(snapshotMagic)+8 {
		return nil, fmt.Errorf("%w: truncated header", ErrBadSnapshot)
	}
	if string(data[:len(snapshotMagic)]) != string(snapshotMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	count := binary.LittleEndian.Uint64(data[len(snapshotMagic):])
	data = data[len(snapshotMagic)+8:]
	sdata := zeroCopyString(data)
	db := New()
	var (
		bl      bulkLoader
		bulking = true
		pos     int
	)
	for i := uint64(0); i < count; i++ {
		if pos+8 > len(data) {
			return nil, fmt.Errorf("%w: truncated at pair %d", ErrBadSnapshot, i)
		}
		klen := int(binary.LittleEndian.Uint32(data[pos:]))
		vlen := int(binary.LittleEndian.Uint32(data[pos+4:]))
		if klen > 1<<24 || vlen > 1<<28 {
			return nil, fmt.Errorf("%w: implausible lengths", ErrBadSnapshot)
		}
		pos += 8
		if pos+klen+vlen > len(data) {
			return nil, fmt.Errorf("%w: truncated at pair %d", ErrBadSnapshot, i)
		}
		key := sdata[pos : pos+klen]
		val := data[pos+klen : pos+klen+vlen : pos+klen+vlen]
		if vlen == 0 {
			val = nil
		}
		pos += klen + vlen
		if bulking {
			if bl.add(key, val) {
				continue
			}
			bl.into(db) // out-of-order stream: finish the prefix, Set the rest
			bulking = false
		}
		db.Set(key, val)
	}
	if bulking {
		bl.into(db)
	}
	return db, nil
}
