package kvdb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Snapshot format: magic, count, then (keyLen, key, valLen, val)* in key
// order. Loading bulk-inserts in order, which keeps the tree balanced.

var snapshotMagic = []byte("PASSKVDB1\n")

// ErrBadSnapshot reports an unreadable snapshot stream.
var ErrBadSnapshot = errors.New("kvdb: bad snapshot")

// Save writes a point-in-time snapshot of the database to w. The image is
// consistent even with a concurrent writer: Save pins a View first, so the
// header count and the pair stream describe the same frozen tree.
func (db *DB) Save(w io.Writer) error { return db.View().Save(w) }

// Save writes the view's frozen image to w in the snapshot format.
func (v *View) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(v.count))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var failed error
	v.Ascend("", "", func(k string, v []byte) bool {
		var lens [8]byte
		binary.LittleEndian.PutUint32(lens[:4], uint32(len(k)))
		binary.LittleEndian.PutUint32(lens[4:], uint32(len(v)))
		if _, err := bw.Write(lens[:]); err != nil {
			failed = err
			return false
		}
		if _, err := bw.WriteString(k); err != nil {
			failed = err
			return false
		}
		if _, err := bw.Write(v); err != nil {
			failed = err
			return false
		}
		return true
	})
	if failed != nil {
		return failed
	}
	return bw.Flush()
}

// Load reads a snapshot written by Save into a fresh database.
func Load(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if string(magic) != string(snapshotMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	db := New()
	var lens [8]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, lens[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated at pair %d", ErrBadSnapshot, i)
		}
		klen := binary.LittleEndian.Uint32(lens[:4])
		vlen := binary.LittleEndian.Uint32(lens[4:])
		if klen > 1<<24 || vlen > 1<<28 {
			return nil, fmt.Errorf("%w: implausible lengths", ErrBadSnapshot)
		}
		kv := make([]byte, int(klen)+int(vlen))
		if _, err := io.ReadFull(br, kv); err != nil {
			return nil, fmt.Errorf("%w: truncated at pair %d", ErrBadSnapshot, i)
		}
		db.Set(string(kv[:klen]), kv[klen:])
	}
	return db, nil
}
