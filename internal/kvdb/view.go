package kvdb

import "strings"

// View is an immutable point-in-time image of the store. Taking one is
// O(1): it captures the current tree root and bumps the store's write
// epoch, after which every mutation path-copies the nodes it touches
// instead of editing them in place. A View therefore never blocks — and is
// never blocked by — the writer, which is what lets many concurrent
// queries run against a database that is still ingesting.
//
// A View holds no lock and keeps its tree alive only through ordinary
// references: dropping the View releases the frozen nodes to the garbage
// collector. Values returned by a View must not be modified.
type View struct {
	root     *node
	count    int
	keyBytes int64
	valBytes int64
}

// View returns an immutable snapshot of the current database state.
func (db *DB) View() *View {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.epoch++
	return &View{
		root:     db.root,
		count:    db.count,
		keyBytes: db.keyBytes,
		valBytes: db.valBytes,
	}
}

// Len returns the number of keys in the view.
func (v *View) Len() int { return v.count }

// Bytes reports the cumulative size of keys and values in the view.
func (v *View) Bytes() (keyBytes, valBytes int64) { return v.keyBytes, v.valBytes }

// Get returns the value for key at the view's point in time.
func (v *View) Get(key string) ([]byte, bool) { return lookup(v.root, key) }

// Has reports whether key exists in the view.
func (v *View) Has(key string) bool {
	_, ok := v.Get(key)
	return ok
}

// Ascend visits keys in [lo, hi) in order; fn returning false stops the
// scan. An empty hi means "to the end".
func (v *View) Ascend(lo, hi string, fn func(key string, value []byte) bool) {
	ascend(v.root, lo, hi, fn)
}

// AscendPrefix visits all keys with the given prefix in order.
func (v *View) AscendPrefix(prefix string, fn func(key string, value []byte) bool) {
	v.Ascend(prefix, prefixEnd(prefix), fn)
}

// MaxInPrefix returns the greatest key carrying the prefix and its value.
func (v *View) MaxInPrefix(prefix string) (string, []byte, bool) {
	k, val, ok := maxBelow(v.root, prefixEnd(prefix))
	if !ok || !strings.HasPrefix(k, prefix) {
		return "", nil, false
	}
	return k, val, true
}

// CountPrefix counts keys with the prefix.
func (v *View) CountPrefix(prefix string) int {
	n := 0
	v.AscendPrefix(prefix, func(string, []byte) bool { n++; return true })
	return n
}

// HasPrefix reports whether any key starts with prefix.
func (v *View) HasPrefix(prefix string) bool {
	found := false
	v.AscendPrefix(prefix, func(string, []byte) bool { found = true; return false })
	return found
}

// Keys returns all keys with the prefix.
func (v *View) Keys(prefix string) []string {
	var out []string
	v.AscendPrefix(prefix, func(k string, _ []byte) bool {
		out = append(out, k)
		return true
	})
	return out
}
