package kvdb

import "strings"

// View is an immutable point-in-time image of the store. Taking one is
// O(1): it captures the current tree root and bumps the store's write
// epoch, after which every mutation path-copies the nodes it touches
// instead of editing them in place. A View therefore never blocks — and is
// never blocked by — the writer, which is what lets many concurrent
// queries run against a database that is still ingesting.
//
// A View holds no lock and keeps its tree alive only through ordinary
// references: dropping the View releases the frozen nodes to the garbage
// collector. Values returned by a View must not be modified.
type View struct {
	// db identifies the store the view was pinned from: SaveDelta refuses
	// a base view of a different store (or of a different incarnation of
	// the "same" store after a restart), because epoch comparisons are
	// meaningful only within one DB's lifetime.
	db *DB
	// epoch is the store's write epoch after the pin's bump: every node
	// mutated after this view was taken carries an epoch >= this value,
	// while every node the view can reach carries a smaller one. That
	// ordering is what lets SaveDelta prune unchanged subtrees.
	epoch    uint64
	root     *node
	count    int
	keyBytes int64
	valBytes int64
}

// View returns an immutable snapshot of the current database state.
func (db *DB) View() *View {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.epoch++
	return &View{
		db:       db,
		epoch:    db.epoch,
		root:     db.root,
		count:    db.count,
		keyBytes: db.keyBytes,
		valBytes: db.valBytes,
	}
}

// Epoch returns the store write epoch the view was pinned at. Epochs are
// comparable only between views of the same DB value: a later view has a
// strictly greater epoch, and nodes mutated after this view was taken are
// tagged with epochs >= Epoch().
func (v *View) Epoch() uint64 { return v.epoch }

// SnapshotSize returns the exact byte size Save would write for this
// view — the store's checkpoint policy compares a delta against it before
// choosing which generation kind to commit.
func (v *View) SnapshotSize() int64 {
	return int64(len(snapshotMagic)) + 8 + int64(v.count)*8 + v.keyBytes + v.valBytes
}

// Len returns the number of keys in the view.
func (v *View) Len() int { return v.count }

// Bytes reports the cumulative size of keys and values in the view.
func (v *View) Bytes() (keyBytes, valBytes int64) { return v.keyBytes, v.valBytes }

// Get returns the value for key at the view's point in time.
func (v *View) Get(key string) ([]byte, bool) { return lookup(v.root, key) }

// Has reports whether key exists in the view.
func (v *View) Has(key string) bool {
	_, ok := v.Get(key)
	return ok
}

// Ascend visits keys in [lo, hi) in order; fn returning false stops the
// scan. An empty hi means "to the end".
func (v *View) Ascend(lo, hi string, fn func(key string, value []byte) bool) {
	ascend(v.root, lo, hi, fn)
}

// AscendPrefix visits all keys with the given prefix in order.
func (v *View) AscendPrefix(prefix string, fn func(key string, value []byte) bool) {
	v.Ascend(prefix, prefixEnd(prefix), fn)
}

// MaxInPrefix returns the greatest key carrying the prefix and its value.
func (v *View) MaxInPrefix(prefix string) (string, []byte, bool) {
	k, val, ok := maxBelow(v.root, prefixEnd(prefix))
	if !ok || !strings.HasPrefix(k, prefix) {
		return "", nil, false
	}
	return k, val, true
}

// CountPrefix counts keys with the prefix.
func (v *View) CountPrefix(prefix string) int {
	n := 0
	v.AscendPrefix(prefix, func(string, []byte) bool { n++; return true })
	return n
}

// HasPrefix reports whether any key starts with prefix.
func (v *View) HasPrefix(prefix string) bool {
	found := false
	v.AscendPrefix(prefix, func(string, []byte) bool { found = true; return false })
	return found
}

// Keys returns all keys with the prefix.
func (v *View) Keys(prefix string) []string {
	var out []string
	v.AscendPrefix(prefix, func(k string, _ []byte) bool {
		out = append(out, k)
		return true
	})
	return out
}
