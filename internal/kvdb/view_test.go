package kvdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

func dumpView(v *View) map[string]string {
	out := make(map[string]string)
	v.Ascend("", "", func(k string, val []byte) bool {
		out[k] = string(val)
		return true
	})
	return out
}

func dumpDB(db *DB) map[string]string {
	out := make(map[string]string)
	db.Ascend("", "", func(k string, val []byte) bool {
		out[k] = string(val)
		return true
	})
	return out
}

// TestViewFrozen pins a view, then runs every mutation path (Set, SetBatch,
// value replacement, Delete) and checks the view still reads the exact
// pinned image while the live store reads the new one.
func TestViewFrozen(t *testing.T) {
	db := New()
	for i := 0; i < 500; i++ {
		db.Set(fmt.Sprintf("k%04d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	want := dumpDB(db)
	v := db.View()

	// Inserts, replacements, batch inserts, deletes after the pin.
	db.Set("k0101", []byte("REPLACED"))
	var batch []KV
	for i := 0; i < 500; i++ {
		batch = append(batch, KV{Key: fmt.Sprintf("k%04d", 1000+i), Val: []byte("new")})
	}
	db.SetBatch(batch)
	for i := 0; i < 200; i++ {
		db.Delete(fmt.Sprintf("k%04d", i*2))
	}

	if got := dumpView(v); !reflect.DeepEqual(got, want) {
		t.Fatalf("view image changed after writes: %d keys vs %d pinned", len(got), len(want))
	}
	if v.Len() != len(want) {
		t.Fatalf("view Len = %d, want %d", v.Len(), len(want))
	}
	if got, ok := v.Get("k0101"); !ok || string(got) != "v101" {
		t.Fatalf("view Get(k0101) = %q, %v; want pinned v101", got, ok)
	}
	if v.Has("k1000") {
		t.Fatal("view sees key inserted after the pin")
	}
	if got, ok := db.Get("k0101"); !ok || string(got) != "REPLACED" {
		t.Fatalf("live Get(k0101) = %q, %v; want REPLACED", got, ok)
	}
	if k, _, ok := v.MaxInPrefix("k"); !ok || k != "k0499" {
		t.Fatalf("view MaxInPrefix = %q, %v; want k0499", k, ok)
	}
	if n := v.CountPrefix("k0"); n != 500 {
		t.Fatalf("view CountPrefix(k0) = %d, want 500", n)
	}
}

// TestViewStacked pins several views at different points and checks each
// keeps its own generation.
func TestViewStacked(t *testing.T) {
	db := New()
	var views []*View
	var wants []int
	for gen := 0; gen < 5; gen++ {
		for i := 0; i < 200; i++ {
			db.Set(fmt.Sprintf("g%d-%03d", gen, i), []byte("x"))
		}
		views = append(views, db.View())
		wants = append(wants, (gen+1)*200)
	}
	for i, v := range views {
		if v.Len() != wants[i] {
			t.Fatalf("view %d: Len = %d, want %d", i, v.Len(), wants[i])
		}
		if n := v.CountPrefix(""); n != wants[i] {
			t.Fatalf("view %d: CountPrefix = %d, want %d", i, n, wants[i])
		}
	}
}

// TestSaveUnderConcurrentWriter pins a view, hammers the store from a
// writer goroutine, and round-trips the view through Save/Load: the loaded
// image must equal the pinned view exactly. DB.Save (which pins its own
// view) must also load back self-consistent while the writer runs — the
// old Save read count and then Ascended without a consistent view.
func TestSaveUnderConcurrentWriter(t *testing.T) {
	db := New()
	for i := 0; i < 2000; i++ {
		db.Set(fmt.Sprintf("k%05d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	v := db.View()
	want := dumpView(v)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for n := 0; n < 2000; n++ {
			select {
			case <-stop:
				return
			default:
			}
			var batch []KV
			for i := 0; i < 64; i++ {
				batch = append(batch, KV{
					Key: fmt.Sprintf("w%06d", n*64+i),
					Val: []byte{byte(rng.Intn(256))},
				})
			}
			db.SetBatch(batch)
			db.Delete(fmt.Sprintf("k%05d", rng.Intn(2000)))
			runtime.Gosched()
		}
	}()

	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatalf("view Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got := dumpDB(loaded); !reflect.DeepEqual(got, want) {
		t.Fatalf("loaded image differs from pinned view: %d keys vs %d", len(got), len(want))
	}

	// DB.Save mid-write must itself produce a loadable, self-consistent
	// snapshot (count in the header matching the pairs that follow).
	for i := 0; i < 5; i++ {
		var mid bytes.Buffer
		if err := db.Save(&mid); err != nil {
			t.Fatalf("db Save: %v", err)
		}
		if _, err := Load(&mid); err != nil {
			t.Fatalf("snapshot written during writes does not load: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestViewConcurrentReaders runs many view readers against a live writer —
// primarily a -race exercise, but it also checks every view is internally
// consistent (Len agrees with a full scan).
func TestViewConcurrentReaders(t *testing.T) {
	db := New()
	stop := make(chan struct{})
	var writer, readers sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for n := 0; n < 1000; n++ {
			select {
			case <-stop:
				return
			default:
			}
			var batch []KV
			for i := 0; i < 64; i++ {
				batch = append(batch, KV{Key: fmt.Sprintf("k%08d", n*64+i), Val: []byte("v")})
			}
			db.SetBatch(batch)
			runtime.Gosched()
		}
	}()
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			last := -1
			for i := 0; i < 50; i++ {
				v := db.View()
				n := 0
				v.Ascend("", "", func(string, []byte) bool { n++; return true })
				if n != v.Len() {
					t.Errorf("view scan saw %d keys, Len says %d", n, v.Len())
					return
				}
				if n < last {
					t.Errorf("views went backwards: %d then %d", last, n)
					return
				}
				last = n
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}
