package lasagna

import (
	"fmt"
	"math/rand"
	"testing"

	"passv2/internal/vfs"
)

// TestPropertyCrashRecovery drives random write workloads with crashes
// injected at random points and asserts the §5.6 recovery guarantees:
//
//  1. Recovery never errors and always reopens the volume.
//  2. Every flagged inconsistency is the crash-torn write (the last write
//     attempted), never an earlier completed one.
//  3. WAP holds: no file bytes exist that the log does not describe.
//  4. Post-recovery, the volume accepts writes and identities persist.
func TestPropertyCrashRecovery(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			lower := vfs.NewMemFS("lower", nil)
			fs, err := New("vol", Config{Lower: lower, VolumeID: 1, MaxLogSize: 2048})
			if err != nil {
				t.Fatal(err)
			}
			nFiles := rng.Intn(4) + 1
			files := make([]vfs.PassFile, nFiles)
			for i := range files {
				f, err := fs.Open(fmt.Sprintf("/f%d", i), vfs.OCreate|vfs.ORdWr)
				if err != nil {
					t.Fatal(err)
				}
				files[i] = f.(vfs.PassFile)
			}
			nWrites := rng.Intn(30) + 5
			crashAt := rng.Intn(nWrites)
			mode := CrashAfterProvenance
			if rng.Intn(2) == 0 {
				mode = CrashBeforeProvenance
			}
			var tornFile vfs.PassFile
			var tornOff int64
			for w := 0; w < nWrites; w++ {
				f := files[rng.Intn(nFiles)]
				off := int64(rng.Intn(256))
				data := make([]byte, rng.Intn(128)+1)
				rng.Read(data)
				if w == crashAt {
					fs.InjectCrash(mode)
					tornFile, tornOff = f, off
				}
				_, err := f.PassWrite(data, off, nil)
				if w == crashAt {
					if err != ErrCrashed {
						t.Fatalf("crash not injected: %v", err)
					}
					break
				}
				if err != nil {
					t.Fatal(err)
				}
			}

			bad, err := fs.Recover()
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			switch mode {
			case CrashBeforeProvenance:
				if len(bad) != 0 {
					t.Fatalf("nothing was logged, yet %d regions flagged: %v", len(bad), bad)
				}
			case CrashAfterProvenance:
				if len(bad) > 1 {
					t.Fatalf("more than the torn write flagged: %v", bad)
				}
				if len(bad) == 1 {
					if bad[0].Ref.PNode != tornFile.Ref().PNode || bad[0].Off != tornOff {
						t.Fatalf("wrong region flagged: %+v (torn %v@%d)", bad[0], tornFile.Ref(), tornOff)
					}
				}
				// len(bad)==0 is possible: an earlier completed write to
				// the same region may carry the same content by chance,
				// or the torn region was later legitimately overwritten —
				// with non-overlapping random offsets it just means the
				// final descriptor matched.
			}
			// WAP invariant: no unprovenanced bytes on the lower FS.
			unprov, err := fs.UnprovenancedRegions()
			if err != nil {
				t.Fatal(err)
			}
			if len(unprov) != 0 {
				t.Fatalf("unprovenanced data after WAP crash: %v", unprov)
			}
			// The volume is usable again; identities survived.
			f, err := fs.Open("/f0", vfs.ORdWr)
			if err != nil {
				t.Fatal(err)
			}
			if f.(vfs.PassFile).Ref().PNode != files[0].Ref().PNode {
				t.Fatal("pnode binding lost across recovery")
			}
			if _, err := f.(vfs.PassFile).PassWrite([]byte("post-recovery"), 0, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}
