// Package lasagna implements Lasagna, the PASSv2 provenance-aware file
// system (§5.6). Lasagna is stackable (the prototype was based on the
// eCryptfs codebase): it layers over any lower vfs.FS, implements the
// DPAPI in addition to the regular VFS calls — pass_read, pass_write and
// pass_freeze as inode operations, pass_mkobj and pass_reviveobj as
// superblock operations — and writes all provenance to a log through the
// lower file system, enforcing write-ahead provenance (WAP): provenance
// reaches disk before the data it describes, so unprovenanced data never
// exists on disk.
//
// Being stackable has a measurable cost the paper calls out (Postmark's
// overhead is mostly double buffering: stackable file systems cache both
// their own pages and the lower file system's); this implementation
// charges that page-copy cost to the simulated disk.
package lasagna

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"passv2/internal/pnode"
	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// AttrLowerPath is the housekeeping record linking a pnode to its current
// path on the lower file system. Lasagna logs it at identity creation and
// on rename; recovery uses it to locate data for MD5 verification. (The
// kernel prototype kept the pnode in an inode xattr instead.)
const AttrLowerPath record.Attr = "LPATH"

// CrashMode arms crash injection for the recovery tests and the WAP
// ablation bench.
type CrashMode int

const (
	// CrashNone disables injection.
	CrashNone CrashMode = iota
	// CrashAfterProvenance crashes after the provenance (records + WAP
	// data descriptor) reaches the log but before the data is written —
	// the window WAP is designed to make detectable.
	CrashAfterProvenance
	// CrashBeforeProvenance crashes before anything reaches the log.
	CrashBeforeProvenance
)

// ErrCrashed reports an operation on a crashed (unrecovered) volume.
var ErrCrashed = errors.New("lasagna: volume crashed; run Recover")

// Config configures a Lasagna volume.
type Config struct {
	// Lower is the file system Lasagna stacks on. Required.
	Lower vfs.FS
	// VolumeID tags the volume's pnode space. Required, nonzero.
	VolumeID uint16
	// LogDir is the provenance log directory on the lower FS; default
	// "/.prov".
	LogDir string
	// MaxLogSize triggers log rotation; default 1 MiB.
	MaxLogSize int64
	// Disk, if set, is charged the stackable-FS page-copy overhead.
	Disk *vfs.Disk
	// RecordCost is the simulated cost of producing and logging one
	// provenance record (interceptor crossing, observer, analyzer,
	// encoding, log append). Zero selects the calibrated default.
	RecordCost time.Duration
	// DataDescCost is the (much smaller) cost of one WAP data
	// descriptor. Zero selects the calibrated default.
	DataDescCost time.Duration
	// FlushCost models the WAP ordering flush: when a data write carries
	// freshly disclosed records, the log must reach the platter before
	// the data, costing a short seek into the log region. Zero selects
	// the calibrated default.
	FlushCost time.Duration
	// LogBuffer is the write-behind buffer for the provenance log (the
	// paper's log rides the page cache); zero selects 16 KiB.
	LogBuffer int
}

// FS is a Lasagna volume. It implements vfs.PassFS.
type FS struct {
	name  string
	lower vfs.FS
	volID uint16
	alloc *pnode.Allocator
	log   *provlog.Writer
	disk  *vfs.Disk

	recordCost   time.Duration
	dataDescCost time.Duration
	flushCost    time.Duration

	mu       sync.Mutex
	byIno    map[uint64]pnode.PNode
	versions map[pnode.PNode]pnode.Version
	phantoms map[pnode.PNode]*phantom
	crash    CrashMode
	crashed  bool
}

// New creates a Lasagna volume named name over cfg.Lower.
func New(name string, cfg Config) (*FS, error) {
	if cfg.Lower == nil {
		return nil, errors.New("lasagna: nil lower file system")
	}
	if cfg.VolumeID == 0 {
		return nil, errors.New("lasagna: volume ID must be nonzero")
	}
	if cfg.LogDir == "" {
		cfg.LogDir = "/.prov"
	}
	if cfg.MaxLogSize == 0 {
		cfg.MaxLogSize = 1 << 20
	}
	if cfg.RecordCost == 0 {
		cfg.RecordCost = 400 * time.Microsecond
	}
	if cfg.DataDescCost == 0 {
		cfg.DataDescCost = 2 * time.Microsecond
	}
	if cfg.LogBuffer == 0 {
		cfg.LogBuffer = 16 << 10
	}
	if cfg.FlushCost == 0 {
		cfg.FlushCost = 1500 * time.Microsecond
	}
	log, err := provlog.NewWriter(cfg.Lower, cfg.LogDir, cfg.MaxLogSize)
	if err != nil {
		return nil, fmt.Errorf("lasagna: open log: %w", err)
	}
	log.SetBuffer(cfg.LogBuffer)
	return &FS{
		name:         name,
		lower:        cfg.Lower,
		volID:        cfg.VolumeID,
		alloc:        pnode.NewPrefixed(cfg.VolumeID),
		log:          log,
		disk:         cfg.Disk,
		recordCost:   cfg.RecordCost,
		dataDescCost: cfg.DataDescCost,
		flushCost:    cfg.FlushCost,
		byIno:        make(map[uint64]pnode.PNode),
		versions:     make(map[pnode.PNode]pnode.Version),
		phantoms:     make(map[pnode.PNode]*phantom),
	}, nil
}

// ChargeRecords accounts the simulated cost of n provenance records
// arriving from above the volume (the PA-NFS server calls it for records
// it logs on behalf of clients).
func (fs *FS) ChargeRecords(n int) { fs.chargeRecords(n) }

// ChargeWAPFlush accounts one WAP ordering flush (the PA-NFS server calls
// it when an OP_PASSWRITE carries both records and data).
func (fs *FS) ChargeWAPFlush() {
	if fs.disk != nil {
		fs.disk.Charge(fs.flushCost)
	}
}

// chargeRecords accounts the simulated cost of n provenance records.
func (fs *FS) chargeRecords(n int) {
	if fs.disk != nil && n > 0 {
		fs.disk.Charge(time.Duration(n) * fs.recordCost)
	}
}

func (fs *FS) chargeDataDesc() {
	if fs.disk != nil {
		fs.disk.Charge(fs.dataDescCost)
	}
}

// FSName returns the volume name.
func (fs *FS) FSName() string { return fs.name }

// VolumeID returns the volume's pnode prefix.
func (fs *FS) VolumeID() uint16 { return fs.volID }

// Log exposes the provenance log (Waldo tails it).
func (fs *FS) Log() *provlog.Writer { return fs.log }

// Lower returns the stacked-on file system.
func (fs *FS) Lower() vfs.FS { return fs.lower }

// InjectCrash arms crash injection for the next data-bearing PassWrite.
func (fs *FS) InjectCrash(mode CrashMode) {
	fs.mu.Lock()
	fs.crash = mode
	fs.mu.Unlock()
}

func (fs *FS) checkAlive() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	return nil
}

// identityFor returns (creating if needed) the pnode for a lower inode.
// A freshly created identity is logged with its lower path.
func (fs *FS) identityFor(ino uint64, path string) (pnode.Ref, error) {
	fs.mu.Lock()
	pn, ok := fs.byIno[ino]
	if !ok {
		pn = fs.alloc.Next()
		fs.byIno[ino] = pn
		fs.versions[pn] = 1
	}
	ref := pnode.Ref{PNode: pn, Version: fs.versions[pn]}
	fs.mu.Unlock()
	if !ok {
		if err := fs.log.AppendRecord(0, record.New(ref, AttrLowerPath, record.StringVal(path))); err != nil {
			return pnode.Ref{}, err
		}
		fs.chargeRecords(1)
	}
	return ref, nil
}

func (fs *FS) currentRef(pn pnode.PNode) pnode.Ref {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return pnode.Ref{PNode: pn, Version: fs.versions[pn]}
}

// freeze bumps a pnode's version and logs the freeze record.
func (fs *FS) freeze(pn pnode.PNode) (pnode.Version, error) {
	fs.mu.Lock()
	fs.versions[pn]++
	v := fs.versions[pn]
	fs.mu.Unlock()
	ref := pnode.Ref{PNode: pn, Version: v}
	if err := fs.log.AppendRecord(0, record.New(ref, record.AttrFreeze, record.Int(int64(v)))); err != nil {
		return 0, err
	}
	fs.chargeRecords(1)
	return v, nil
}

// --- vfs.FS ---

// Open opens a file on the lower FS and wraps it with provenance identity.
func (fs *FS) Open(path string, flags vfs.Flags) (vfs.File, error) {
	if err := fs.checkAlive(); err != nil {
		return nil, err
	}
	lf, err := fs.lower.Open(path, flags)
	if err != nil {
		return nil, err
	}
	ref, err := fs.identityFor(lf.Ino(), vfs.Clean(path))
	if err != nil {
		lf.Close()
		return nil, err
	}
	return &file{fs: fs, lower: lf, pn: ref.PNode, path: vfs.Clean(path)}, nil
}

func (fs *FS) Mkdir(path string) error    { return fs.lower.Mkdir(path) }
func (fs *FS) MkdirAll(path string) error { return fs.lower.MkdirAll(path) }

func (fs *FS) ReadDir(path string) ([]vfs.DirEnt, error) {
	ents, err := fs.lower.ReadDir(path)
	if err != nil {
		return nil, err
	}
	// Hide the provenance log directory from the namespace.
	if vfs.Clean(path) == "/" {
		out := ents[:0]
		for _, e := range ents {
			if "/"+e.Name != fs.log.Dir() {
				out = append(out, e)
			}
		}
		ents = out
	}
	return ents, nil
}

func (fs *FS) Stat(path string) (vfs.Stat, error) { return fs.lower.Stat(path) }

// Rename renames on the lower FS and re-logs the pnode's path so recovery
// and queries stay connected to the file (the browser use case in §3.2
// depends on provenance following renames).
func (fs *FS) Rename(oldPath, newPath string) error {
	if err := fs.checkAlive(); err != nil {
		return err
	}
	st, serr := fs.lower.Stat(oldPath)
	if err := fs.lower.Rename(oldPath, newPath); err != nil {
		return err
	}
	if serr == nil && !st.IsDir {
		fs.mu.Lock()
		pn, ok := fs.byIno[st.Ino]
		var ref pnode.Ref
		if ok {
			ref = pnode.Ref{PNode: pn, Version: fs.versions[pn]}
		}
		fs.mu.Unlock()
		if ok {
			fs.chargeRecords(1)
			return fs.log.AppendRecord(0, record.New(ref, AttrLowerPath, record.StringVal(vfs.Clean(newPath))))
		}
	}
	return nil
}

func (fs *FS) Remove(path string) error {
	if err := fs.checkAlive(); err != nil {
		return err
	}
	st, serr := fs.lower.Stat(path)
	if err := fs.lower.Remove(path); err != nil {
		return err
	}
	if serr == nil && !st.IsDir && st.Nlink <= 1 {
		fs.mu.Lock()
		delete(fs.byIno, st.Ino)
		fs.mu.Unlock()
	}
	return nil
}

func (fs *FS) Sync() error { return fs.lower.Sync() }

// --- DPAPI superblock operations ---

// PassMkobj creates a phantom object: provenance identity without a lower
// file. Browser sessions, data sets and workflow operators live here.
func (fs *FS) PassMkobj() (vfs.PassFile, error) {
	if err := fs.checkAlive(); err != nil {
		return nil, err
	}
	fs.mu.Lock()
	pn := fs.alloc.Next()
	fs.versions[pn] = 1
	ph := &phantom{fs: fs, pn: pn}
	fs.phantoms[pn] = ph
	fs.mu.Unlock()
	return ph, nil
}

// PassReviveObj returns a handle to a phantom created earlier. The volume
// only verifies the pnode is valid (§6.1.2's cheap-recovery design).
func (fs *FS) PassReviveObj(ref pnode.Ref) (vfs.PassFile, error) {
	if err := fs.checkAlive(); err != nil {
		return nil, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ph, ok := fs.phantoms[ref.PNode]
	if !ok {
		return nil, fmt.Errorf("lasagna: revive %v: %w", ref, errStale)
	}
	return ph, nil
}

var errStale = errors.New("stale or unknown pnode")

// CurrentVersion reports the volume's current version for any pnode it
// has allocated (files and phantoms).
func (fs *FS) CurrentVersion(pn pnode.PNode) pnode.Version {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.versions[pn]
}

// FreezePnode is pass_freeze addressed by pnode rather than handle. The
// PA-NFS server uses it when it processes a FREEZE record arriving inside
// an OP_PASSWRITE bundle (§6.1.2: freeze is a record type, not an
// operation, because it is order-sensitive with respect to pass_write).
func (fs *FS) FreezePnode(pn pnode.PNode) (pnode.Version, error) {
	if err := fs.checkAlive(); err != nil {
		return 0, err
	}
	return fs.freeze(pn)
}

// AppendProvenance writes records straight to the volume's log — the
// distributor's sink when it materializes cached provenance (§5.5).
func (fs *FS) AppendProvenance(recs []record.Record) error {
	if err := fs.checkAlive(); err != nil {
		return err
	}
	for _, r := range recs {
		if err := fs.log.AppendRecord(0, r); err != nil {
			return err
		}
	}
	fs.chargeRecords(len(recs))
	return nil
}

// passWrite is the shared WAP write path: provenance first, then the data
// descriptor, then the data itself.
func (fs *FS) passWrite(f *file, data []byte, off int64, b *record.Bundle) (int, error) {
	fs.mu.Lock()
	mode := fs.crash
	if fs.crashed {
		fs.mu.Unlock()
		return 0, ErrCrashed
	}
	if mode == CrashBeforeProvenance && len(data) > 0 {
		fs.crashed = true
		fs.mu.Unlock()
		return 0, ErrCrashed
	}
	fs.mu.Unlock()

	ref := fs.currentRef(f.pn)
	if err := fs.log.AppendBundle(0, b); err != nil {
		return 0, err
	}
	fs.chargeRecords(b.Len())
	if len(data) == 0 {
		return 0, nil
	}
	if b.Len() > 0 && fs.disk != nil {
		// WAP: the new records must be durable before this data.
		fs.disk.Charge(fs.flushCost)
	}
	if err := fs.log.AppendData(ref, off, data); err != nil {
		return 0, err
	}
	fs.chargeDataDesc()
	if mode == CrashAfterProvenance {
		fs.mu.Lock()
		fs.crashed = true
		fs.mu.Unlock()
		return 0, ErrCrashed
	}
	n, err := f.lower.WriteAt(data, off)
	if err != nil {
		return n, err
	}
	// Stackable double buffering: the page exists in both Lasagna's and
	// the lower FS's cache.
	if fs.disk != nil {
		fs.disk.ChargeCopy(n)
	}
	return n, nil
}

// --- file: vfs.PassFile over a lower file ---

type file struct {
	fs    *FS
	lower vfs.File
	pn    pnode.PNode
	path  string
}

func (f *file) Ref() pnode.Ref { return f.fs.currentRef(f.pn) }

func (f *file) ReadAt(p []byte, off int64) (int, error) {
	if err := f.fs.checkAlive(); err != nil {
		return 0, err
	}
	n, err := f.lower.ReadAt(p, off)
	if n > 0 && f.fs.disk != nil {
		f.fs.disk.ChargeCopy(n)
	}
	return n, err
}

func (f *file) WriteAt(p []byte, off int64) (int, error) {
	// A plain write is a pass_write with no disclosed provenance; WAP
	// still logs the data descriptor so recovery can vouch for the data.
	return f.fs.passWrite(f, p, off, nil)
}

func (f *file) PassRead(p []byte, off int64) (int, pnode.Ref, error) {
	n, err := f.ReadAt(p, off)
	return n, f.Ref(), err
}

func (f *file) PassWrite(p []byte, off int64, b *record.Bundle) (int, error) {
	return f.fs.passWrite(f, p, off, b)
}

func (f *file) PassFreeze() (pnode.Version, error) {
	if err := f.fs.checkAlive(); err != nil {
		return 0, err
	}
	return f.fs.freeze(f.pn)
}

func (f *file) PassSync() error { return f.Sync() }

func (f *file) Truncate(size int64) error { return f.lower.Truncate(size) }
func (f *file) Size() int64               { return f.lower.Size() }
func (f *file) Ino() uint64               { return f.lower.Ino() }
func (f *file) Sync() error               { return f.lower.Sync() }
func (f *file) Close() error              { return f.lower.Close() }

// --- phantom: vfs.PassFile without a lower file ---

type phantom struct {
	fs *FS
	pn pnode.PNode

	mu  sync.Mutex
	buf []byte
}

func (ph *phantom) Ref() pnode.Ref { return ph.fs.currentRef(ph.pn) }

func (ph *phantom) ReadAt(p []byte, off int64) (int, error) {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if off >= int64(len(ph.buf)) {
		return 0, nil
	}
	return copy(p, ph.buf[off:]), nil
}

func (ph *phantom) WriteAt(p []byte, off int64) (int, error) {
	return ph.PassWrite(p, off, nil)
}

func (ph *phantom) PassRead(p []byte, off int64) (int, pnode.Ref, error) {
	n, err := ph.ReadAt(p, off)
	return n, ph.Ref(), err
}

// PassWrite on a phantom logs the provenance; any data lives only in
// memory (phantoms have no lower file).
func (ph *phantom) PassWrite(p []byte, off int64, b *record.Bundle) (int, error) {
	if err := ph.fs.checkAlive(); err != nil {
		return 0, err
	}
	if err := ph.fs.log.AppendBundle(0, b); err != nil {
		return 0, err
	}
	ph.fs.chargeRecords(b.Len())
	if len(p) == 0 {
		return 0, nil
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	ph.mu.Lock()
	defer ph.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(ph.buf)) {
		grown := make([]byte, end)
		copy(grown, ph.buf)
		ph.buf = grown
	}
	copy(ph.buf[off:], p)
	return len(p), nil
}

func (ph *phantom) PassFreeze() (pnode.Version, error) { return ph.fs.freeze(ph.pn) }
func (ph *phantom) PassSync() error                    { return nil }
func (ph *phantom) Truncate(size int64) error          { return vfs.ErrInvalid }
func (ph *phantom) Size() int64 {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	return int64(len(ph.buf))
}
func (ph *phantom) Ino() uint64  { return uint64(ph.pn) }
func (ph *phantom) Sync() error  { return nil }
func (ph *phantom) Close() error { return nil }

var (
	_ vfs.PassFS   = (*FS)(nil)
	_ vfs.PassFile = (*file)(nil)
	_ vfs.PassFile = (*phantom)(nil)
)
