package lasagna

import (
	"errors"
	"testing"

	"passv2/internal/pnode"
	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

func newVolume(t *testing.T) (*FS, *vfs.MemFS) {
	t.Helper()
	lower := vfs.NewMemFS("lower", nil)
	fs, err := New("pass0", Config{Lower: lower, VolumeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	return fs, lower
}

func openPass(t *testing.T, fs *FS, path string, flags vfs.Flags) vfs.PassFile {
	t.Helper()
	f, err := fs.Open(path, flags)
	if err != nil {
		t.Fatal(err)
	}
	return f.(vfs.PassFile)
}

func TestConfigValidation(t *testing.T) {
	if _, err := New("x", Config{}); err == nil {
		t.Fatal("nil lower must be rejected")
	}
	if _, err := New("x", Config{Lower: vfs.NewMemFS("l", nil)}); err == nil {
		t.Fatal("zero volume ID must be rejected")
	}
}

func TestFileIdentityStableAcrossOpens(t *testing.T) {
	fs, _ := newVolume(t)
	f1 := openPass(t, fs, "/a.txt", vfs.OCreate|vfs.ORdWr)
	ref1 := f1.Ref()
	f1.Close()
	f2 := openPass(t, fs, "/a.txt", vfs.ORdWr)
	if f2.Ref() != ref1 {
		t.Fatalf("identity changed across opens: %v vs %v", f2.Ref(), ref1)
	}
	if pnode.VolumePrefix(ref1.PNode) != 1 {
		t.Fatalf("pnode not in volume space: %v", ref1)
	}
}

func TestIdentitySurvivesRename(t *testing.T) {
	fs, _ := newVolume(t)
	f := openPass(t, fs, "/orig", vfs.OCreate|vfs.ORdWr)
	ref := f.Ref()
	f.Close()
	if err := fs.Rename("/orig", "/moved"); err != nil {
		t.Fatal(err)
	}
	f2 := openPass(t, fs, "/moved", vfs.ORdOnly)
	if f2.Ref() != ref {
		t.Fatal("provenance identity must follow the file across rename (§3.2)")
	}
	// And the log must know the new lower path.
	recs, err := fs.LogRecords()
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, r := range recs {
		if r.Attr == AttrLowerPath && r.Subject.PNode == ref.PNode {
			s, _ := r.Value.AsString()
			paths = append(paths, s)
		}
	}
	if len(paths) != 2 || paths[1] != "/moved" {
		t.Fatalf("LPATH history = %v", paths)
	}
}

func TestPassWriteLogsProvenanceBeforeData(t *testing.T) {
	fs, lower := newVolume(t)
	f := openPass(t, fs, "/out", vfs.OCreate|vfs.ORdWr)
	proc := pnode.Ref{PNode: 900, Version: 1}
	b := record.NewBundle(record.Input(f.Ref(), proc))
	if _, err := f.PassWrite([]byte("result"), 0, b); err != nil {
		t.Fatal(err)
	}
	// Scan raw log: the INPUT record must precede the data descriptor.
	var order []provlog.EntryType
	provlog.ScanAll(lower, "/.prov", func(e provlog.Entry) error {
		order = append(order, e.Type)
		return nil
	})
	sawRecord := false
	for _, typ := range order {
		if typ == provlog.EntryRecord {
			sawRecord = true
		}
		if typ == provlog.EntryData && !sawRecord {
			t.Fatal("WAP violated: data descriptor before provenance record")
		}
	}
	got, _ := vfs.ReadFile(lower, "/out")
	if string(got) != "result" {
		t.Fatalf("data = %q", got)
	}
}

func TestPassReadReturnsIdentity(t *testing.T) {
	fs, _ := newVolume(t)
	f := openPass(t, fs, "/in", vfs.OCreate|vfs.ORdWr)
	f.PassWrite([]byte("data"), 0, nil)
	buf := make([]byte, 4)
	n, ref, err := f.PassRead(buf, 0)
	if err != nil || n != 4 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if ref != f.Ref() {
		t.Fatalf("pass_read ref %v != %v", ref, f.Ref())
	}
}

func TestFreezeBumpsVersionAndLogs(t *testing.T) {
	fs, _ := newVolume(t)
	f := openPass(t, fs, "/v", vfs.OCreate|vfs.ORdWr)
	if f.Ref().Version != 1 {
		t.Fatal("fresh file must be version 1")
	}
	v, err := f.PassFreeze()
	if err != nil || v != 2 {
		t.Fatalf("freeze → %v, %v", v, err)
	}
	if f.Ref().Version != 2 {
		t.Fatal("Ref must reflect freeze")
	}
	recs, _ := fs.LogRecords()
	found := false
	for _, r := range recs {
		if r.Attr == record.AttrFreeze && r.Subject == f.Ref() {
			found = true
		}
	}
	if !found {
		t.Fatal("freeze record not logged")
	}
}

func TestPhantomObjects(t *testing.T) {
	fs, _ := newVolume(t)
	ph, err := fs.PassMkobj()
	if err != nil {
		t.Fatal(err)
	}
	ref := ph.Ref()
	if !ref.IsValid() || ref.Version != 1 {
		t.Fatalf("phantom ref = %v", ref)
	}
	// Phantom data is readable back but never hits the lower FS.
	if _, err := ph.PassWrite([]byte("session-state"), 0, nil); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, _, _ := ph.PassRead(buf, 0)
	if string(buf[:n]) != "session-state" {
		t.Fatalf("phantom read = %q", buf[:n])
	}
	// Revive by pnode.
	again, err := fs.PassReviveObj(ref)
	if err != nil {
		t.Fatal(err)
	}
	if again.Ref() != ref {
		t.Fatal("revive returned a different object")
	}
	// Unknown pnode is rejected.
	if _, err := fs.PassReviveObj(pnode.Ref{PNode: 424242, Version: 1}); err == nil {
		t.Fatal("revive of unknown pnode must fail")
	}
}

func TestProvenanceLogHiddenFromReadDir(t *testing.T) {
	fs, _ := newVolume(t)
	f := openPass(t, fs, "/visible", vfs.OCreate)
	f.Close()
	ents, err := fs.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name == ".prov" {
			t.Fatal("provenance log leaked into the namespace")
		}
	}
	if len(ents) != 1 || ents[0].Name != "visible" {
		t.Fatalf("ents = %v", ents)
	}
}

func TestAppendProvenanceReachesLog(t *testing.T) {
	fs, _ := newVolume(t)
	r := record.Input(pnode.Ref{PNode: 5, Version: 1}, pnode.Ref{PNode: 6, Version: 1})
	if err := fs.AppendProvenance([]record.Record{r}); err != nil {
		t.Fatal(err)
	}
	recs, _ := fs.LogRecords()
	if len(recs) != 1 || !recs[0].Equal(r) {
		t.Fatalf("log = %v", recs)
	}
}

func TestCrashAfterProvenanceDetectedByRecovery(t *testing.T) {
	fs, _ := newVolume(t)
	f := openPass(t, fs, "/precious", vfs.OCreate|vfs.ORdWr)
	if _, err := f.PassWrite([]byte("intact"), 0, nil); err != nil {
		t.Fatal(err)
	}
	fs.InjectCrash(CrashAfterProvenance)
	_, err := f.PassWrite([]byte("lostwr"), 6, nil)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	// Volume refuses work until recovered.
	if _, err := fs.Open("/precious", vfs.ORdOnly); !errors.Is(err, ErrCrashed) {
		t.Fatal("crashed volume must refuse opens")
	}
	bad, err := fs.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 {
		t.Fatalf("inconsistencies = %v, want exactly the torn write", bad)
	}
	if bad[0].Path != "/precious" || bad[0].Off != 6 || bad[0].Len != 6 {
		t.Fatalf("wrong region flagged: %+v", bad[0])
	}
	// After recovery the volume works again and identity is preserved.
	f2 := openPass(t, fs, "/precious", vfs.ORdWr)
	if f2.Ref().PNode != f.Ref().PNode {
		t.Fatal("recovery lost the pnode binding")
	}
}

func TestRecoveryCleanVolumeFindsNothing(t *testing.T) {
	fs, _ := newVolume(t)
	f := openPass(t, fs, "/a", vfs.OCreate|vfs.ORdWr)
	f.PassWrite([]byte("one"), 0, nil)
	f.PassWrite([]byte("two"), 0, nil) // overwrite same region: only final counts
	bad, err := fs.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("clean volume flagged: %v", bad)
	}
}

func TestCrashBeforeProvenanceLeavesNoTrace(t *testing.T) {
	fs, _ := newVolume(t)
	f := openPass(t, fs, "/x", vfs.OCreate|vfs.ORdWr)
	fs.InjectCrash(CrashBeforeProvenance)
	if _, err := f.PassWrite([]byte("gone"), 0, nil); !errors.Is(err, ErrCrashed) {
		t.Fatal("crash not injected")
	}
	bad, err := fs.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// Nothing logged, nothing written: recovery is silent, and WAP means
	// no unprovenanced data exists either.
	if len(bad) != 0 {
		t.Fatalf("flagged %v", bad)
	}
	unprov, _ := fs.UnprovenancedRegions()
	if len(unprov) != 0 {
		t.Fatalf("unprovenanced data after WAP crash: %v", unprov)
	}
}

func TestUnprovenancedRegionsCatchesNonWAPWrite(t *testing.T) {
	fs, lower := newVolume(t)
	f := openPass(t, fs, "/sneaky", vfs.OCreate|vfs.ORdWr)
	f.PassWrite([]byte("ok"), 0, nil)
	// Simulate a non-WAP write: bytes land on the lower FS directly,
	// bypassing the log (what a crash in a WAP-less design leaves).
	lf, _ := lower.Open("/sneaky", vfs.ORdWr)
	lf.WriteAt([]byte("XXXX"), 2)
	lf.Close()
	unprov, err := fs.UnprovenancedRegions()
	if err != nil {
		t.Fatal(err)
	}
	if len(unprov) != 1 || unprov[0].Off != 2 || unprov[0].Len != 4 {
		t.Fatalf("unprovenanced = %v", unprov)
	}
}

func TestDoubleBufferingCharged(t *testing.T) {
	var clk vfs.Clock
	disk := vfs.NewDisk(vfs.CostModel{PageCopy: 1}, &clk)
	lower := vfs.NewMemFS("lower", nil)
	fs, err := New("pass0", Config{Lower: lower, VolumeID: 1, Disk: disk})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Open("/f", vfs.OCreate|vfs.ORdWr)
	f.WriteAt(make([]byte, 1000), 0)
	if clk.Now() < 1000 {
		t.Fatalf("stacking copy not charged: %v", clk.Now())
	}
}

func TestRemoveDropsIdentity(t *testing.T) {
	fs, _ := newVolume(t)
	f := openPass(t, fs, "/tmp1", vfs.OCreate|vfs.ORdWr)
	old := f.Ref()
	f.Close()
	if err := fs.Remove("/tmp1"); err != nil {
		t.Fatal(err)
	}
	f2 := openPass(t, fs, "/tmp1", vfs.OCreate|vfs.ORdWr)
	if f2.Ref().PNode == old.PNode {
		t.Fatal("recreated file must get a fresh pnode")
	}
}
