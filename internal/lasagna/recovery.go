package lasagna

import (
	"crypto/md5"
	"fmt"

	"passv2/internal/pnode"
	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// Inconsistency reports data whose on-disk bytes do not match the
// provenance that was logged for them — precisely the data being written
// at the time of a crash (§5.6).
type Inconsistency struct {
	Ref  pnode.Ref
	Path string
	Off  int64
	Len  int32
}

// String renders the inconsistency for recovery reports.
func (i Inconsistency) String() string {
	return fmt.Sprintf("%s %s [%d,+%d): data does not match logged provenance", i.Ref, i.Path, i.Off, i.Len)
}

// Recover replays the provenance log after a crash: it rebuilds the
// volume's pnode table (versions and lower-path bindings) and verifies
// every region's final WAP data descriptor against the bytes actually on
// the lower file system. It returns the regions that do not match —
// unprovenanced data cannot exist (WAP), but provenanced-yet-unwritten
// data can, and this finds it. The volume is usable again afterwards.
func (fs *FS) Recover() ([]Inconsistency, error) {
	type region struct {
		ref pnode.Ref
		off int64
		len int32
	}
	versions := make(map[pnode.PNode]pnode.Version)
	paths := make(map[pnode.PNode]string)
	finalData := make(map[region][md5.Size]byte)
	var order []region
	// Per-pnode write history, in log order, for overlap supersession.
	history := make(map[pnode.PNode][]region)

	if err := fs.log.Flush(); err != nil {
		return nil, err
	}
	err := provlog.ScanAll(fs.lower, fs.log.Dir(), func(e provlog.Entry) error {
		switch e.Type {
		case provlog.EntryRecord:
			r := e.Rec
			if r.Subject.Version > versions[r.Subject.PNode] {
				versions[r.Subject.PNode] = r.Subject.Version
			}
			if r.Attr == AttrLowerPath {
				if p, ok := r.Value.AsString(); ok {
					paths[r.Subject.PNode] = p
				}
			}
		case provlog.EntryData:
			d := e.Data
			if d.Ref.Version > versions[d.Ref.PNode] {
				versions[d.Ref.PNode] = d.Ref.Version
			}
			// Region identity ignores the version: later writes to the
			// same region supersede earlier checksums.
			key := region{ref: pnode.Ref{PNode: d.Ref.PNode}, off: d.Off, len: d.Len}
			if _, seen := finalData[key]; !seen {
				order = append(order, key)
			}
			finalData[key] = d.MD5
			history[d.Ref.PNode] = append(history[d.Ref.PNode], key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lasagna: recovery scan: %w", err)
	}

	// A region is verifiable only if no later write to the same file
	// overlaps it: overlapped bytes were legitimately superseded, and the
	// log keeps only per-write checksums, not byte history. The torn
	// write is by definition the last, so it is always verifiable.
	superseded := func(key region) bool {
		h := history[key.ref.PNode]
		// Find the last occurrence of this exact region; anything after
		// it that overlaps supersedes it.
		last := -1
		for i, r := range h {
			if r == key {
				last = i
			}
		}
		for _, r := range h[last+1:] {
			if r.off < key.off+int64(key.len) && key.off < r.off+int64(r.len) {
				return true
			}
		}
		return false
	}

	var bad []Inconsistency
	for _, key := range order {
		want := finalData[key]
		path, ok := paths[key.ref.PNode]
		if !ok {
			// Phantom object or a file whose identity record was lost
			// with the torn tail; nothing on disk to verify.
			continue
		}
		if superseded(key) {
			continue
		}
		got, verr := readRegion(fs.lower, path, key.off, key.len)
		if verr != nil || md5.Sum(got) != want {
			bad = append(bad, Inconsistency{
				Ref:  fs.refAfterRecovery(key.ref.PNode, versions),
				Path: path,
				Off:  key.off,
				Len:  key.len,
			})
		}
	}

	// Reinstall volume state and clear the crash flag.
	fs.mu.Lock()
	for pn, v := range versions {
		if v > fs.versions[pn] {
			fs.versions[pn] = v
		}
	}
	for pn, p := range paths {
		if st, serr := fs.lower.Stat(p); serr == nil && !st.IsDir {
			fs.byIno[st.Ino] = pn
		}
	}
	fs.crashed = false
	fs.crash = CrashNone
	fs.mu.Unlock()
	return bad, nil
}

func (fs *FS) refAfterRecovery(pn pnode.PNode, versions map[pnode.PNode]pnode.Version) pnode.Ref {
	v := versions[pn]
	if v == 0 {
		v = 1
	}
	return pnode.Ref{PNode: pn, Version: v}
}

func readRegion(fs vfs.FS, path string, off int64, n int32) ([]byte, error) {
	f, err := fs.Open(path, vfs.ORdOnly)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, n)
	got, err := f.ReadAt(buf, off)
	if err != nil {
		return nil, err
	}
	return buf[:got], nil
}

// UnprovenancedRegions double-checks the WAP invariant for the ablation
// bench: with WAP disabled (data written before provenance), a crash can
// leave data on disk that no log entry describes. It reports file bytes
// beyond what the log accounts for. A healthy WAP volume always returns
// nil.
func (fs *FS) UnprovenancedRegions() ([]Inconsistency, error) {
	covered := make(map[pnode.PNode]int64) // highest byte described per pnode
	paths := make(map[pnode.PNode]string)
	if err := fs.log.Flush(); err != nil {
		return nil, err
	}
	err := provlog.ScanAll(fs.lower, fs.log.Dir(), func(e provlog.Entry) error {
		switch e.Type {
		case provlog.EntryData:
			end := e.Data.Off + int64(e.Data.Len)
			if end > covered[e.Data.Ref.PNode] {
				covered[e.Data.Ref.PNode] = end
			}
		case provlog.EntryRecord:
			if e.Rec.Attr == AttrLowerPath {
				if p, ok := e.Rec.Value.AsString(); ok {
					paths[e.Rec.Subject.PNode] = p
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var bad []Inconsistency
	for pn, path := range paths {
		st, serr := fs.lower.Stat(path)
		if serr != nil || st.IsDir {
			continue
		}
		if st.Size > covered[pn] {
			bad = append(bad, Inconsistency{
				Ref:  pnode.Ref{PNode: pn, Version: 1},
				Path: path,
				Off:  covered[pn],
				Len:  int32(st.Size - covered[pn]),
			})
		}
	}
	return bad, nil
}

// LogRecords returns every provenance record currently in the volume's
// log, in order (test and tooling helper).
func (fs *FS) LogRecords() ([]record.Record, error) {
	if err := fs.log.Flush(); err != nil {
		return nil, err
	}
	var out []record.Record
	err := provlog.ScanAll(fs.lower, fs.log.Dir(), func(e provlog.Entry) error {
		if e.Type == provlog.EntryRecord {
			out = append(out, e.Rec)
		}
		return nil
	})
	return out, err
}
