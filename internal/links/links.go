// Package links implements the provenance-aware text browser of §6.3,
// modeled on links 0.98 (chosen in the paper for its simple code base). A
// PA-browser captures semantic information invisible to PASS: the URL of
// every downloaded file, the page the user was viewing when she initiated
// the download, the sequence of pages she visited before it, and the
// grouping of all of that into sessions.
//
// Provenance is grouped by session: each session is a pass_mkobj phantom
// object. Visits append VISITED_URL records to the session. A download
// generates three records — INPUT (file ← session), FILE_URL, and
// CURRENT_URL — and replaces the browser's write with a pass_write that
// transmits the data and the records together, so the file and its
// provenance stay connected even if the file is later renamed or copied
// (the attribution use case, §3.2).
package links

import (
	"errors"
	"fmt"

	"passv2/internal/dpapi"
	"passv2/internal/kernel"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
	"passv2/internal/web"
)

// ErrNoSession reports browsing before NewSession.
var ErrNoSession = errors.New("links: no active session")

// Browser is one links instance bound to a kernel process.
type Browser struct {
	proc *kernel.Process
	web  *web.Web

	sess    dpapi.Object
	current string
	history []string
}

// New starts a browser on proc over w.
func New(proc *kernel.Process, w *web.Web) *Browser {
	return &Browser{proc: proc, web: w}
}

// NewSession opens a browsing session: a phantom object whose provenance
// the distributor will place on volumeHint (or wherever its first
// persistent descendant lives).
func (b *Browser) NewSession(volumeHint string) (pnode.Ref, error) {
	sess, err := b.proc.PassMkobj(volumeHint)
	if err != nil {
		return pnode.Ref{}, fmt.Errorf("links: create session: %w", err)
	}
	b.sess = sess
	b.current = ""
	b.history = nil
	ref := sess.Ref()
	err = dpapi.Disclose(sess, record.New(ref, record.AttrType, record.StringVal(record.TypeSession)))
	return ref, err
}

// ReviveSession reattaches to a stored session (the Firefox restart
// scenario of §6.5 that motivated pass_reviveobj).
func (b *Browser) ReviveSession(ref pnode.Ref) error {
	sess, err := b.proc.PassReviveObj(ref)
	if err != nil {
		return err
	}
	b.sess = sess
	return nil
}

// Session returns the active session's identity.
func (b *Browser) Session() (pnode.Ref, error) {
	if b.sess == nil {
		return pnode.Ref{}, ErrNoSession
	}
	return b.sess.Ref(), nil
}

// Current returns the URL being viewed.
func (b *Browser) Current() string { return b.current }

// History returns the visited URLs, oldest first.
func (b *Browser) History() []string { return append([]string(nil), b.history...) }

// Visit fetches a page, records the VISITED_URL dependency between the
// session and the URL, and makes it current. It returns the page.
func (b *Browser) Visit(url string) (*web.Page, error) {
	if b.sess == nil {
		return nil, ErrNoSession
	}
	page, finalURL, err := b.web.Get(url)
	if err != nil {
		return nil, err
	}
	if page.Download {
		return nil, fmt.Errorf("links: %s is a download; use Download", url)
	}
	sref := b.sess.Ref()
	recs := []record.Record{record.New(sref, record.AttrVisitedURL, record.StringVal(finalURL))}
	if finalURL != url {
		// Record the redirect hop too: the malware use case wants "the
		// user may have been redirected from a trusted site".
		recs = append(recs, record.New(sref, record.AttrVisitedURL, record.StringVal(url)))
	}
	if err := dpapi.Disclose(b.sess, recs...); err != nil {
		return nil, err
	}
	b.current = finalURL
	b.history = append(b.history, finalURL)
	return page, nil
}

// Download fetches a resource and writes it to destPath, replacing the
// plain write with a pass_write carrying the three records of §6.3:
// INPUT (file ← session), FILE_URL, and CURRENT_URL.
func (b *Browser) Download(url, destPath string) (pnode.Ref, error) {
	if b.sess == nil {
		return pnode.Ref{}, ErrNoSession
	}
	page, finalURL, err := b.web.Get(url)
	if err != nil {
		return pnode.Ref{}, err
	}
	fd, err := b.proc.Open(destPath, vfs.OCreate|vfs.OTrunc|vfs.ORdWr)
	if err != nil {
		return pnode.Ref{}, err
	}
	defer b.proc.Close(fd)

	kfd, err := b.proc.FDGet(fd)
	if err != nil {
		return pnode.Ref{}, err
	}
	sref := b.sess.Ref()
	var fileRef pnode.Ref
	if pf := kfd.PassFile(); pf != nil {
		fileRef = pf.Ref()
		bundle := record.NewBundle(
			record.Input(fileRef, sref),
			record.New(fileRef, record.AttrFileURL, record.StringVal(finalURL)),
		)
		if b.current != "" {
			bundle.Add(record.New(fileRef, record.AttrCurrentURL, record.StringVal(b.current)))
		}
		if _, err := b.proc.PassWriteFd(fd, page.Content, bundle); err != nil {
			return pnode.Ref{}, err
		}
		return fileRef, nil
	}
	// Non-PASS destination: the browser still discloses; the records
	// describe the file's transient identity and persist only if the
	// file later enters persistent ancestry.
	if _, err := b.proc.Write(fd, page.Content); err != nil {
		return pnode.Ref{}, err
	}
	return pnode.Ref{}, nil
}
