package links

import (
	"errors"
	"testing"

	"passv2/internal/kernel"
	"passv2/internal/lasagna"
	"passv2/internal/observer"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
	"passv2/internal/web"
)

type rig struct {
	k   *kernel.Kernel
	w   *waldo.Waldo
	web *web.Web
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := kernel.New(&vfs.Clock{})
	k.Mount("/", vfs.NewMemFS("root", nil))
	vol, err := lasagna.New("pass0", lasagna.Config{Lower: vfs.NewMemFS("lower", nil), VolumeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	k.Mount("/home", vol)
	o := observer.New(k)
	o.RegisterVolume(vol)
	w := waldo.New()
	w.Attach(vol)
	www := web.New()
	www.AddPage("http://uni.example/", "course home", "http://uni.example/charts")
	www.AddPage("http://uni.example/charts", "charts index", "http://uni.example/charts/growth.png")
	www.AddDownload("http://uni.example/charts/growth.png", []byte("PNGDATA"))
	return &rig{k: k, w: w, web: www}
}

func (r *rig) db(t *testing.T) *waldo.DB {
	t.Helper()
	if err := r.w.Drain(); err != nil {
		t.Fatal(err)
	}
	return r.w.DB
}

func TestBrowsingRequiresSession(t *testing.T) {
	r := newRig(t)
	p := r.k.Spawn(nil, "links", nil, nil)
	b := New(p, r.web)
	if _, err := b.Visit("http://uni.example/"); !errors.Is(err, ErrNoSession) {
		t.Fatalf("visit without session: %v", err)
	}
	if _, err := b.Download("http://uni.example/charts/growth.png", "/home/x"); !errors.Is(err, ErrNoSession) {
		t.Fatalf("download without session: %v", err)
	}
}

func TestDownloadCarriesThreeRecords(t *testing.T) {
	r := newRig(t)
	p := r.k.Spawn(nil, "links", nil, nil)
	b := New(p, r.web)
	if _, err := b.NewSession("/home"); err != nil {
		t.Fatal(err)
	}
	b.Visit("http://uni.example/")
	b.Visit("http://uni.example/charts")
	fileRef, err := b.Download("http://uni.example/charts/growth.png", "/home/growth.png")
	if err != nil {
		t.Fatal(err)
	}
	db := r.db(t)

	// FILE_URL: the URL of the file itself.
	vals := db.AttrValues(fileRef, record.AttrFileURL)
	if len(vals) != 1 {
		t.Fatal("FILE_URL missing")
	}
	if s, _ := vals[0].AsString(); s != "http://uni.example/charts/growth.png" {
		t.Fatalf("FILE_URL = %q", s)
	}
	// CURRENT_URL: the page being viewed at download time.
	vals = db.AttrValues(fileRef, record.AttrCurrentURL)
	if s, _ := vals[0].AsString(); s != "http://uni.example/charts" {
		t.Fatalf("CURRENT_URL = %q", s)
	}
	// INPUT: the file descends from the session, and the session's
	// visit history materialized with it.
	sess, _ := b.Session()
	inputs := db.Inputs(fileRef)
	found := false
	for _, in := range inputs {
		if in.PNode == sess.PNode {
			found = true
		}
	}
	if !found {
		t.Fatalf("session missing from file inputs: %v", inputs)
	}
	visited := db.AttrValues(pnode.Ref{PNode: sess.PNode, Version: sess.Version}, record.AttrVisitedURL)
	if len(visited) != 2 {
		t.Fatalf("VISITED_URL history = %v", visited)
	}
	// The file content arrived too.
	got, _ := vfs.ReadFile(r.k.Mounts.FSAt("/home"), "/growth.png")
	if string(got) != "PNGDATA" {
		t.Fatalf("content = %q", got)
	}
}

func TestProvenanceSurvivesRenameAndCopy(t *testing.T) {
	// The attribution use case: browser loses the connection when the
	// user moves the file; PASSv2 does not.
	r := newRig(t)
	p := r.k.Spawn(nil, "links", nil, nil)
	b := New(p, r.web)
	b.NewSession("/home")
	b.Visit("http://uni.example/charts")
	fileRef, err := b.Download("http://uni.example/charts/growth.png", "/home/downloads/../growth.png")
	if err != nil {
		t.Fatal(err)
	}
	// The professor moves the file into her presentation directory.
	p.MkdirAll("/home/talk")
	if err := p.Rename("/home/growth.png", "/home/talk/fig1.png"); err != nil {
		t.Fatal(err)
	}
	// The site goes away entirely.
	r.web.Remove("http://uni.example/charts/growth.png")

	db := r.db(t)
	// Query by the file's identity (which followed the rename): the
	// URL is still recoverable.
	vals := db.AttrValues(fileRef, record.AttrFileURL)
	if len(vals) != 1 {
		t.Fatal("attribution lost after rename")
	}
}

func TestRedirectRecordsBothURLs(t *testing.T) {
	r := newRig(t)
	r.web.AddRedirect("http://trusted.example/dl", "http://evil.example/payload-page")
	r.web.AddPage("http://evil.example/payload-page", "get it here")
	p := r.k.Spawn(nil, "links", nil, nil)
	b := New(p, r.web)
	b.NewSession("/home")
	if _, err := b.Visit("http://trusted.example/dl"); err != nil {
		t.Fatal(err)
	}
	sess, _ := b.Session()
	db := r.db(t)
	// Force session provenance out even without a download.
	_ = db
	// Session history not yet persistent (no persistent descendant);
	// download something to materialize it.
	b.Download("http://uni.example/charts/growth.png", "/home/f.png")
	db = r.db(t)
	visited := db.AttrValues(pnode.Ref{PNode: sess.PNode, Version: sess.Version}, record.AttrVisitedURL)
	var urls []string
	for _, v := range visited {
		s, _ := v.AsString()
		urls = append(urls, s)
	}
	haveTrusted, haveEvil := false, false
	for _, u := range urls {
		if u == "http://trusted.example/dl" {
			haveTrusted = true
		}
		if u == "http://evil.example/payload-page" {
			haveEvil = true
		}
	}
	if !haveTrusted || !haveEvil {
		t.Fatalf("redirect hops not both recorded: %v", urls)
	}
}

func TestReviveSession(t *testing.T) {
	r := newRig(t)
	p := r.k.Spawn(nil, "links", nil, nil)
	b := New(p, r.web)
	ref, _ := b.NewSession("/home")
	b.Visit("http://uni.example/")

	// Browser restarts: a new Browser revives the stored session.
	b2 := New(p, r.web)
	if err := b2.ReviveSession(ref); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Visit("http://uni.example/charts"); err != nil {
		t.Fatal(err)
	}
	b2.Download("http://uni.example/charts/growth.png", "/home/g.png")
	db := r.db(t)
	visited := db.AttrValues(pnode.Ref{PNode: ref.PNode, Version: ref.Version}, record.AttrVisitedURL)
	if len(visited) != 2 {
		t.Fatalf("revived session history = %d URLs, want 2", len(visited))
	}
}

func TestVisitOnDownloadRejected(t *testing.T) {
	r := newRig(t)
	p := r.k.Spawn(nil, "links", nil, nil)
	b := New(p, r.web)
	b.NewSession("/home")
	if _, err := b.Visit("http://uni.example/charts/growth.png"); err == nil {
		t.Fatal("visiting a download must be rejected")
	}
}
