// Package metrics is a dependency-free instrumentation kit: counters,
// gauges and histograms — scalar, labeled (vec) and read-through (func)
// variants — collected in a Registry that renders the Prometheus text
// exposition format. It exists so the serving daemon can export what it
// is doing on a plain HTTP endpoint without pulling a client library
// into the module.
//
// Two design rules keep the export trustworthy:
//
//   - Read-through collectors (CounterFunc/GaugeFunc) sample an existing
//     atomic at scrape time instead of maintaining a second copy, so a
//     daemon that already counts something for its STATS verb exports
//     the same number on /metrics by construction — the property the
//     metrics/STATS consistency tests pin.
//   - Registration is get-or-create per name: asking twice for the same
//     family returns the same instrument, and asking for the same name
//     as a different type panics (a programming error worth failing
//     loudly on, not a runtime condition).
//
// Everything is safe for concurrent use. Counter values are int64 (our
// counters count events and bytes, never fractions); gauges and
// histogram observations are float64.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default latency histogram layout, in seconds: wide
// enough to see a 100µs cache hit and a 10s stuck quorum in one family.
var DefBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the export to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets and tracks their sum.
type Histogram struct {
	uppers []float64 // sorted upper bounds, +Inf excluded
	counts []atomic.Int64
	count  atomic.Int64
	sum    Gauge
}

func newHistogram(buckets []float64) *Histogram {
	uppers := append([]float64(nil), buckets...)
	sort.Float64s(uppers)
	dst := uppers[:0]
	for _, b := range uppers {
		if math.IsInf(b, +1) || (len(dst) > 0 && dst[len(dst)-1] == b) {
			continue
		}
		dst = append(dst, b)
	}
	uppers = dst
	return &Histogram{uppers: uppers, counts: make([]atomic.Int64, len(uppers)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v) // first upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports how many values were observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// vec is the generic labeled-children store behind the *Vec types.
type vec[T any] struct {
	labels []string
	mu     sync.Mutex
	child  map[string]*T
	keys   []string // sorted lazily at export
	vals   map[string][]string
}

func newVec[T any](labels []string) *vec[T] {
	return &vec[T]{labels: labels, child: make(map[string]*T), vals: make(map[string][]string)}
}

func (v *vec[T]) with(make_ func() *T, values ...string) *T {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %d label values for labels %v", len(values), v.labels))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.child[key]
	if !ok {
		c = make_()
		v.child[key] = c
		v.vals[key] = append([]string(nil), values...)
		v.keys = nil
	}
	return c
}

// each visits children in sorted key order (stable export order).
func (v *vec[T]) each(fn func(values []string, c *T)) {
	v.mu.Lock()
	if v.keys == nil {
		v.keys = make([]string, 0, len(v.child))
		for k := range v.child {
			v.keys = append(v.keys, k)
		}
		sort.Strings(v.keys)
	}
	keys := v.keys
	v.mu.Unlock()
	for _, k := range keys {
		v.mu.Lock()
		c, vals := v.child[k], v.vals[k]
		v.mu.Unlock()
		if c != nil {
			fn(vals, c)
		}
	}
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ v *vec[Counter] }

// With returns (creating on first use) the child for the label values.
func (cv *CounterVec) With(values ...string) *Counter {
	return cv.v.with(func() *Counter { return &Counter{} }, values...)
}

// Each visits every child with its label values, in stable order.
func (cv *CounterVec) Each(fn func(values []string, c *Counter)) { cv.v.each(fn) }

// Total sums every child — the "whole family" view STATS fields use.
func (cv *CounterVec) Total() int64 {
	var t int64
	cv.v.each(func(_ []string, c *Counter) { t += c.Value() })
	return t
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ v *vec[Gauge] }

// With returns (creating on first use) the child for the label values.
func (gv *GaugeVec) With(values ...string) *Gauge {
	return gv.v.with(func() *Gauge { return &Gauge{} }, values...)
}

// Each visits every child with its label values, in stable order.
func (gv *GaugeVec) Each(fn func(values []string, g *Gauge)) { gv.v.each(fn) }

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct {
	buckets []float64
	v       *vec[Histogram]
}

// With returns (creating on first use) the child for the label values.
func (hv *HistogramVec) With(values ...string) *Histogram {
	return hv.v.with(func() *Histogram { return newHistogram(hv.buckets) }, values...)
}

// Each visits every child with its label values, in stable order.
func (hv *HistogramVec) Each(fn func(values []string, h *Histogram)) { hv.v.each(fn) }

// family is one named metric in a registry: exactly one of the concrete
// slots is set, and typ/labels pin what a re-registration must match.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []string

	c  *Counter
	cv *CounterVec
	cf func() int64
	g  *Gauge
	gv *GaugeVec
	gf func() float64
	h  *Histogram
	hv *HistogramVec
}

// Registry holds metric families in registration order and renders them
// in the Prometheus text format.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*family
	order  []*family
}

// NewRegistry makes an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// lookup implements get-or-create: returns the existing family when name
// is taken (the caller type-checks it), or installs and returns fresh.
func (r *Registry) lookup(name string, fresh func() *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		return f
	}
	f := fresh()
	r.byName[name] = f
	r.order = append(r.order, f)
	return f
}

func (f *family) check(name, typ, slot string) {
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s already registered as a %s, not a %s", name, f.typ, typ))
	}
	switch slot {
	case "c":
		if f.c == nil {
			panic("metrics: " + name + " already registered with a different shape")
		}
	case "cv":
		if f.cv == nil {
			panic("metrics: " + name + " already registered with a different shape")
		}
	case "cf":
		if f.cf == nil {
			panic("metrics: " + name + " already registered with a different shape")
		}
	case "g":
		if f.g == nil {
			panic("metrics: " + name + " already registered with a different shape")
		}
	case "gv":
		if f.gv == nil {
			panic("metrics: " + name + " already registered with a different shape")
		}
	case "gf":
		if f.gf == nil {
			panic("metrics: " + name + " already registered with a different shape")
		}
	case "h":
		if f.h == nil {
			panic("metrics: " + name + " already registered with a different shape")
		}
	case "hv":
		if f.hv == nil {
			panic("metrics: " + name + " already registered with a different shape")
		}
	}
}

// Counter registers (or returns) a scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, func() *family {
		return &family{name: name, help: help, typ: "counter", c: &Counter{}}
	})
	f.check(name, "counter", "c")
	return f.c
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.lookup(name, func() *family {
		return &family{name: name, help: help, typ: "counter", labels: labels,
			cv: &CounterVec{v: newVec[Counter](labels)}}
	})
	f.check(name, "counter", "cv")
	return f.cv
}

// CounterFunc registers a read-through counter sampled at export time.
// Registering the same name again is a no-op (the first closure wins), so
// component setup stays idempotent.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	f := r.lookup(name, func() *family {
		return &family{name: name, help: help, typ: "counter", cf: fn}
	})
	f.check(name, "counter", "cf")
}

// Gauge registers (or returns) a scalar gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, func() *family {
		return &family{name: name, help: help, typ: "gauge", g: &Gauge{}}
	})
	f.check(name, "gauge", "g")
	return f.g
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := r.lookup(name, func() *family {
		return &family{name: name, help: help, typ: "gauge", labels: labels,
			gv: &GaugeVec{v: newVec[Gauge](labels)}}
	})
	f.check(name, "gauge", "gv")
	return f.gv
}

// GaugeFunc registers a read-through gauge sampled at export time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, func() *family {
		return &family{name: name, help: help, typ: "gauge", gf: fn}
	})
	f.check(name, "gauge", "gf")
}

// Histogram registers (or returns) a scalar histogram with the given
// bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.lookup(name, func() *family {
		return &family{name: name, help: help, typ: "histogram", h: newHistogram(buckets)}
	})
	f.check(name, "histogram", "h")
	return f.h
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := r.lookup(name, func() *family {
		return &family{name: name, help: help, typ: "histogram", labels: labels,
			hv: &HistogramVec{buckets: buckets, v: newVec[Histogram](labels)}}
	})
	f.check(name, "histogram", "hv")
	return f.hv
}

// families snapshots registration order under the lock.
func (r *Registry) families() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*family(nil), r.order...)
}

// labelString renders `name="v1",other="v2"` with label values escaped.
func labelString(labels, values []string) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatValue renders integral values without an exponent or decimal
// point (counters stay readable), other floats in shortest form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sample is fn(name-with-suffix, rendered-labels, value); labels is ""
// for unlabeled samples.
func (f *family) samples(fn func(name, labels string, v float64)) {
	emitHist := func(labels string, h *Histogram) {
		cum := int64(0)
		for i, upper := range h.uppers {
			cum += h.counts[i].Load()
			le := `le="` + formatValue(upper) + `"`
			if labels != "" {
				le = labels + "," + le
			}
			fn(f.name+"_bucket", le, float64(cum))
		}
		le := `le="+Inf"`
		if labels != "" {
			le = labels + "," + le
		}
		fn(f.name+"_bucket", le, float64(h.Count()))
		fn(f.name+"_sum", labels, h.Sum())
		fn(f.name+"_count", labels, float64(h.Count()))
	}
	switch {
	case f.c != nil:
		fn(f.name, "", float64(f.c.Value()))
	case f.cf != nil:
		fn(f.name, "", float64(f.cf()))
	case f.cv != nil:
		f.cv.Each(func(values []string, c *Counter) {
			fn(f.name, labelString(f.labels, values), float64(c.Value()))
		})
	case f.g != nil:
		fn(f.name, "", f.g.Value())
	case f.gf != nil:
		fn(f.name, "", f.gf())
	case f.gv != nil:
		f.gv.Each(func(values []string, g *Gauge) {
			fn(f.name, labelString(f.labels, values), g.Value())
		})
	case f.h != nil:
		emitHist("", f.h)
	case f.hv != nil:
		f.hv.Each(func(values []string, h *Histogram) {
			emitHist(labelString(f.labels, values), h)
		})
	}
}

// WritePrometheus renders every family in the text exposition format
// (# HELP, # TYPE, then samples), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 16<<10)
	for _, f := range r.families() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		f.samples(func(name, labels string, v float64) {
			if labels != "" {
				fmt.Fprintf(bw, "%s{%s} %s\n", name, labels, formatValue(v))
			} else {
				fmt.Fprintf(bw, "%s %s\n", name, formatValue(v))
			}
		})
	}
	return bw.Flush()
}

// Gather collects every sample into a map keyed exactly as WritePrometheus
// renders it — `name` or `name{label="value"}` — so tests can compare a
// scraped /metrics payload (via ParseText) against the live registry
// without going through HTTP.
func (r *Registry) Gather() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.families() {
		f.samples(func(name, labels string, v float64) {
			out[SampleKey(name, labels)] = v
		})
	}
	return out
}

// SampleKey builds the Gather/ParseText key for a sample: name alone, or
// name{labels} when labels is non-empty. labels must be pre-rendered
// (`verb="query"`), matching the declared label order.
func SampleKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// ParseText parses a Prometheus text-format payload back into the same
// key→value map Gather produces. Comment and blank lines are skipped;
// malformed sample lines are an error (a scrape that half-parses is a bug
// worth failing on, not data).
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("metrics: malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: bad value in %q: %v", line, err)
		}
		out[strings.TrimSpace(line[:sp])] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
