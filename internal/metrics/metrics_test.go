package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "Events.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("events_total", "Events."); again != c {
		t.Fatalf("re-registering a counter must return the same instrument")
	}

	g := r.Gauge("depth", "Depth.")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("registering x as a gauge after a counter must panic")
		}
	}()
	r.Gauge("x", "")
}

func TestVecChildrenAndTotal(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("requests_total", "Requests by verb.", "verb")
	cv.With("query").Add(3)
	cv.With("ping").Inc()
	cv.With("query").Inc()
	if got := cv.With("query").Value(); got != 4 {
		t.Fatalf("query child = %d, want 4", got)
	}
	if got := cv.Total(); got != 5 {
		t.Fatalf("total = %d, want 5", got)
	}
	seen := map[string]int64{}
	cv.Each(func(values []string, c *Counter) { seen[values[0]] = c.Value() })
	if seen["query"] != 4 || seen["ping"] != 1 {
		t.Fatalf("Each saw %v", seen)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.605) > 1e-9 {
		t.Fatalf("sum = %v, want 5.605", h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`latency_seconds_bucket{le="0.01"} 1`,
		`latency_seconds_bucket{le="0.1"} 3`,
		`latency_seconds_bucket{le="1"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_count 5`,
		"# TYPE latency_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %q in:\n%s", want, out)
		}
	}
}

func TestFuncCollectorsReadThrough(t *testing.T) {
	r := NewRegistry()
	var n int64
	r.CounterFunc("live_total", "Live.", func() int64 { return n })
	n = 7
	if got := r.Gather()["live_total"]; got != 7 {
		t.Fatalf("CounterFunc sampled %v, want 7", got)
	}
	n = 9
	if got := r.Gather()["live_total"]; got != 9 {
		t.Fatalf("CounterFunc must read through, got %v", got)
	}
}

// TestGatherParseRoundTrip pins the contract the consistency tests lean
// on: ParseText(WritePrometheus(r)) == Gather(r), key for key.
func TestGatherParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Add(12)
	cv := r.CounterVec("b_total", "B.", "tenant")
	cv.With("alice").Add(3)
	cv.With(`we"ird\`).Add(1)
	r.Gauge("c", "C.").Set(-2.25)
	hv := r.HistogramVec("d_seconds", "D.", []float64{0.5}, "verb")
	hv.With("query").Observe(0.25)
	hv.With("query").Observe(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	gathered := r.Gather()
	if len(parsed) != len(gathered) {
		t.Fatalf("parsed %d samples, gathered %d", len(parsed), len(gathered))
	}
	for k, v := range gathered {
		pv, ok := parsed[k]
		if !ok {
			t.Fatalf("parsed output missing key %q", k)
		}
		if pv != v {
			t.Fatalf("key %q: parsed %v, gathered %v", k, pv, v)
		}
	}
	if gathered[`b_total{tenant="alice"}`] != 3 {
		t.Fatalf("label key shape drifted: %v", gathered)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("ops_total", "", "kind")
	h := r.Histogram("lat", "", DefBuckets)
	g := r.Gauge("inflight", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kind := []string{"a", "b", "c"}[i%3]
			for j := 0; j < 1000; j++ {
				cv.With(kind).Inc()
				h.Observe(float64(j) * 1e-4)
				g.Add(1)
				g.Add(-1)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := cv.Total(); got != 8000 {
		t.Fatalf("total = %d, want 8000", got)
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %v, want 0", g.Value())
	}
}
