// Package mmr implements the append-only Merkle mountain range that makes
// the provenance log tamper-evident (DESIGN.md §13). Every provlog record
// becomes a leaf; the peaks of the range are bagged into a single root
// hash that commits to the entire log prefix. Because an MMR only ever
// grows on the right, the root at any earlier size is recomputable from
// the full structure, which is what makes consistency proofs between two
// checkpoint generations possible: a signed root over n leaves and a
// signed root over m ≥ n leaves either agree on the first n records or
// one of them is a lie.
//
// Hash domain separation (all SHA-256):
//
//	leaf   = H(0x00 || len(rec):u64le || canonical record bytes || volume || offset:u64le)
//	parent = H(0x01 || left || right)
//	root   = H(0x02 || leafCount:u64le || peaks, largest mountain first)
//
// The structure runs in one of two modes. Full mode keeps every node in a
// flat post-order array and can generate inclusion and consistency
// proofs. Pruned mode keeps only the peaks (resumed from a compact state
// file, so reopening a log does not rehash history) plus the leaves
// appended since resume; it can append and report roots but returns
// ErrPruned for proof generation — callers rehydrate by rescanning the
// log, and the rebuilt root must match the pruned one, which doubles as a
// check that the persisted state was not doctored.
package mmr

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
)

// Hash is one SHA-256 node hash.
type Hash = [32]byte

// ErrPruned reports an operation that needs the full node set on an MMR
// resumed from a peak file. Rehydrate (rescan the log) to clear it.
var ErrPruned = errors.New("mmr: pruned range cannot serve this request; rehydrate from the log")

// domain-separation prefixes.
const (
	tagLeaf   = 0x00
	tagParent = 0x01
	tagRoot   = 0x02
)

// LeafHash binds one provenance record to its position: the canonical
// record bytes exactly as framed in the log, the volume the log belongs
// to, and the global byte offset of the record's frame. Two identical
// records at different positions — or the same bytes claimed for a
// different volume — hash to different leaves.
func LeafHash(rec []byte, volume string, offset uint64) Hash {
	h := sha256.New()
	var n [8]byte
	h.Write([]byte{tagLeaf})
	binary.LittleEndian.PutUint64(n[:], uint64(len(rec)))
	h.Write(n[:]) // length prefix: no rec/volume boundary ambiguity
	h.Write(rec)
	h.Write([]byte(volume))
	binary.LittleEndian.PutUint64(n[:], offset)
	h.Write(n[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// ParentHash combines two sibling subtree roots.
func ParentHash(left, right Hash) Hash {
	h := sha256.New()
	h.Write([]byte{tagParent})
	h.Write(left[:])
	h.Write(right[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// BagPeaks folds the peaks (largest mountain first) and the leaf count
// into the single root hash that signed statements commit to. The count
// is hashed in so that a root is unambiguous about how many leaves it
// covers.
func BagPeaks(count uint64, peaks []Hash) Hash {
	h := sha256.New()
	h.Write([]byte{tagRoot})
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], count)
	h.Write(n[:])
	for _, p := range peaks {
		h.Write(p[:])
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// mountain is one perfect subtree in the decomposition of a leaf count:
// leaves [start, start+size), size a power of two. The greedy
// decomposition (one mountain per set bit of n, descending) is canonical
// and aligned, which every proof below relies on.
type mountain struct {
	start, size uint64
}

// mountains returns the canonical decomposition of n leaves, largest
// mountain (leftmost) first.
func mountains(n uint64) []mountain {
	out := make([]mountain, 0, bits.OnesCount64(n))
	a := uint64(0)
	for n != 0 {
		s := uint64(1) << (bits.Len64(n) - 1)
		out = append(out, mountain{a, s})
		a += s
		n &^= s
	}
	return out
}

// nodeCount is the number of nodes in the post-order array for n leaves:
// 2n - popcount(n).
func nodeCount(n uint64) uint64 {
	return 2*n - uint64(bits.OnesCount64(n))
}

// peak is one entry of the live peak stack.
type peak struct {
	size uint64
	h    Hash
}

// MMR is the mountain range. Safe for concurrent use: appends come from
// the log writer while the serving path reads roots and generates proofs.
type MMR struct {
	mu sync.RWMutex

	count uint64 // total leaves committed
	peaks []peak // current peak stack, largest first

	// Full mode: every node in post-order. nil in pruned mode.
	nodes []Hash

	// Pruned mode.
	pruned     bool
	base       uint64 // leaves summarized by the resumed peaks
	baseCursor int64  // log offset the resumed peaks covered
	basePeaks  []peak // the resumed peak stack, immutable after Resume
	tail       []Hash // leaf hashes appended since base
	memoCount  uint64 // RootAt replay memo: peaks state at memoCount leaves
	memoPeaks  []peak

	// Offset index: global frame-end offset of each leaf at index
	// i-indexBase. In full mode indexBase is 0; pruned mode only knows the
	// tail.
	ends []int64

	cursor int64 // log offset up to which frames have been consumed
}

// New returns an empty full-mode MMR.
func New() *MMR {
	return &MMR{}
}

// Resume reconstructs a pruned MMR from a saved State. A state with zero
// leaves carries no history, so it resumes in full mode.
func Resume(st State) (*MMR, error) {
	if st.Count == 0 {
		m := New()
		m.cursor = st.Cursor
		return m, nil
	}
	if len(st.Peaks) != bits.OnesCount64(st.Count) {
		return nil, fmt.Errorf("mmr: state has %d peaks for %d leaves, want %d",
			len(st.Peaks), st.Count, bits.OnesCount64(st.Count))
	}
	m := &MMR{
		count:      st.Count,
		pruned:     true,
		base:       st.Count,
		baseCursor: st.Cursor,
		cursor:     st.Cursor,
	}
	for i, mt := range mountains(st.Count) {
		m.peaks = append(m.peaks, peak{mt.size, st.Peaks[i]})
	}
	m.basePeaks = append([]peak(nil), m.peaks...)
	return m, nil
}

// Count returns the number of leaves.
func (m *MMR) Count() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.count
}

// Cursor returns the log offset up to which frames have been consumed.
func (m *MMR) Cursor() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.cursor
}

// Pruned reports whether this MMR was resumed from a peak file and so
// cannot generate proofs until rehydrated.
func (m *MMR) Pruned() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.pruned
}

// Append commits one leaf whose frame ends at log offset end.
func (m *MMR) Append(leaf Hash, end int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.pruned {
		m.nodes = append(m.nodes, leaf)
	} else {
		m.tail = append(m.tail, leaf)
	}
	m.ends = append(m.ends, end)
	m.peaks = pushLeaf(m.peaks, leaf, func(p Hash) {
		if !m.pruned {
			m.nodes = append(m.nodes, p)
		}
	})
	m.count++
	if end > m.cursor {
		m.cursor = end
	}
}

// pushLeaf appends a leaf to a peak stack, carry-merging equal-size peaks
// and reporting each newly created parent node to emit (for the full-mode
// post-order array).
func pushLeaf(peaks []peak, leaf Hash, emit func(Hash)) []peak {
	peaks = append(peaks, peak{1, leaf})
	for len(peaks) >= 2 && peaks[len(peaks)-1].size == peaks[len(peaks)-2].size {
		r := peaks[len(peaks)-1]
		l := peaks[len(peaks)-2]
		p := ParentHash(l.h, r.h)
		if emit != nil {
			emit(p)
		}
		peaks = peaks[:len(peaks)-2]
		peaks = append(peaks, peak{l.size * 2, p})
	}
	return peaks
}

// Advance records that the log has been consumed up to offset end without
// adding a leaf (data and transaction frames are not leaves, but the
// cursor must cover them so a resumed MMR knows where to pick up).
func (m *MMR) Advance(end int64) {
	m.mu.Lock()
	if end > m.cursor {
		m.cursor = end
	}
	m.mu.Unlock()
}

// Root returns the current root hash.
func (m *MMR) Root() Hash {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return BagPeaks(m.count, peakHashes(m.peaks))
}

func peakHashes(ps []peak) []Hash {
	out := make([]Hash, len(ps))
	for i, p := range ps {
		out[i] = p.h
	}
	return out
}

// subRoot returns the root of the perfect subtree over leaves
// [start, start+size) from the post-order array. The subtree's nodes are
// contiguous, ending at nodeCount(start) + 2*size - 2.
func (m *MMR) subRoot(start, size uint64) Hash {
	return m.nodes[nodeCount(start)+2*size-2]
}

// peaksAtLocked returns the peak hashes at an earlier size k. Callers
// hold at least the read lock.
func (m *MMR) peaksAtLocked(k uint64) ([]Hash, error) {
	if k > m.count {
		return nil, fmt.Errorf("mmr: size %d beyond %d leaves", k, m.count)
	}
	if !m.pruned {
		ms := mountains(k)
		out := make([]Hash, len(ms))
		for i, mt := range ms {
			out[i] = m.subRoot(mt.start, mt.size)
		}
		return out, nil
	}
	if k < m.base {
		return nil, fmt.Errorf("%w: size %d predates the resumed base %d", ErrPruned, k, m.base)
	}
	if k == m.count {
		return peakHashes(m.peaks), nil
	}
	return nil, errNeedReplay
}

var errNeedReplay = errors.New("mmr: internal: replay required")

// RootAt returns the root the MMR had when it held k leaves. In pruned
// mode only sizes at or after the resumed base are answerable; the tail
// leaves are replayed forward with a memo so repeated monotonic queries
// (the replication fork check asks at every chunk boundary) stay cheap.
func (m *MMR) RootAt(k uint64) (Hash, error) {
	m.mu.RLock()
	ph, err := m.peaksAtLocked(k)
	m.mu.RUnlock()
	if err == nil {
		return BagPeaks(k, ph), nil
	}
	if !errors.Is(err, errNeedReplay) {
		return Hash{}, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if k > m.count || k < m.base {
		return Hash{}, fmt.Errorf("mmr: size %d not answerable", k)
	}
	// Replay the tail forward from the resumed base peaks; queries that
	// move backwards restart the replay from the base.
	if m.memoPeaks == nil || m.memoCount > k {
		m.memoCount = m.base
		m.memoPeaks = append([]peak(nil), m.basePeaks...)
	}
	for m.memoCount < k {
		leaf := m.tail[m.memoCount-m.base]
		m.memoPeaks = pushLeaf(m.memoPeaks, leaf, nil)
		m.memoCount++
	}
	return BagPeaks(k, peakHashes(m.memoPeaks)), nil
}

// Leaf returns the hash of leaf i. Pruned mode can only answer for
// leaves appended since resume.
func (m *MMR) Leaf(i uint64) (Hash, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if i >= m.count {
		return Hash{}, fmt.Errorf("mmr: leaf %d beyond %d leaves", i, m.count)
	}
	if m.pruned {
		if i < m.base {
			return Hash{}, fmt.Errorf("%w: leaf %d predates the resumed base %d", ErrPruned, i, m.base)
		}
		return m.tail[i-m.base], nil
	}
	return m.nodes[nodeCount(i)], nil
}

// LeavesAtOffset returns how many leaves have their frame end at or
// before global log offset end — the leaf count a replication chunk
// boundary corresponds to. ok is false when the answer would need
// history a pruned MMR no longer holds.
func (m *MMR) LeavesAtOffset(end int64) (uint64, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.pruned && end < m.baseCursor {
		return 0, false
	}
	n := uint64(sort.Search(len(m.ends), func(i int) bool { return m.ends[i] > end }))
	if m.pruned {
		return m.base + n, true
	}
	return n, true
}

// State snapshots the compact resume state: leaf count, log cursor and
// current peaks. Persisting it after a durable sync lets the next boot
// resume without rehashing history.
func (m *MMR) State() State {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return State{Count: m.count, Cursor: m.cursor, Peaks: peakHashes(m.peaks)}
}
