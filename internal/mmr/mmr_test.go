package mmr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
)

// testLeaf derives a distinct deterministic leaf for index i.
func testLeaf(i uint64) Hash {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], i)
	return LeafHash(b[:], "testvol", i*100)
}

// grow builds a full-mode MMR over n synthetic leaves, with frame ends
// at 10 bytes per leaf.
func grow(n uint64) *MMR {
	m := New()
	for i := uint64(0); i < n; i++ {
		m.Append(testLeaf(i), int64((i+1)*10))
	}
	return m
}

func TestRootChangesWithEveryLeaf(t *testing.T) {
	m := New()
	seen := map[Hash]uint64{m.Root(): 0}
	for i := uint64(0); i < 130; i++ {
		m.Append(testLeaf(i), int64(i+1)*10)
		r := m.Root()
		if prev, dup := seen[r]; dup {
			t.Fatalf("root at %d leaves repeats root at %d leaves", i+1, prev)
		}
		seen[r] = i + 1
	}
}

func TestRootAtMatchesIncrementalRoots(t *testing.T) {
	const n = 100
	roots := make([]Hash, n+1)
	m := New()
	roots[0] = m.Root()
	for i := uint64(0); i < n; i++ {
		m.Append(testLeaf(i), int64(i+1)*10)
		roots[i+1] = m.Root()
	}
	for k := uint64(0); k <= n; k++ {
		got, err := m.RootAt(k)
		if err != nil {
			t.Fatalf("RootAt(%d): %v", k, err)
		}
		if got != roots[k] {
			t.Fatalf("RootAt(%d) disagrees with the live root at that size", k)
		}
	}
	if _, err := m.RootAt(n + 1); err == nil {
		t.Fatal("RootAt past the leaf count succeeded")
	}
}

// TestInclusionProofMatrix proves every leaf at every size for a range of
// sizes that crosses several mountain-shape transitions.
func TestInclusionProofMatrix(t *testing.T) {
	const max = 70
	m := grow(max)
	for size := uint64(1); size <= max; size++ {
		root, err := m.RootAt(size)
		if err != nil {
			t.Fatalf("RootAt(%d): %v", size, err)
		}
		for i := uint64(0); i < size; i++ {
			p, err := m.ProveAt(i, size)
			if err != nil {
				t.Fatalf("ProveAt(%d, %d): %v", i, size, err)
			}
			if err := VerifyInclusion(root, testLeaf(i), p); err != nil {
				t.Fatalf("inclusion %d of %d: %v", i, size, err)
			}
			// The same proof must fail for a different leaf hash.
			if err := VerifyInclusion(root, testLeaf(i+1), p); err == nil {
				t.Fatalf("inclusion %d of %d verified a wrong leaf", i, size)
			}
		}
	}
}

func TestInclusionProofRejectsTamperedPath(t *testing.T) {
	m := grow(37)
	root := m.Root()
	p, err := m.Prove(11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Path {
		p.Path[i][0] ^= 1
		if err := VerifyInclusion(root, testLeaf(11), p); err == nil {
			t.Fatalf("flipped path hash %d still verified", i)
		}
		p.Path[i][0] ^= 1
	}
	for i := range p.Peaks {
		p.Peaks[i][0] ^= 1
		if err := VerifyInclusion(root, testLeaf(11), p); err == nil {
			t.Fatalf("flipped peak hash %d still verified", i)
		}
		p.Peaks[i][0] ^= 1
	}
	wrongRoot := root
	wrongRoot[5] ^= 1
	if err := VerifyInclusion(wrongRoot, testLeaf(11), p); err == nil {
		t.Fatal("proof verified against a wrong root")
	}
}

// TestConsistencyProofMatrix proves every (old, new) size pair across a
// range and checks that a forked history is rejected.
func TestConsistencyProofMatrix(t *testing.T) {
	const max = 40
	m := grow(max)
	roots := make([]Hash, max+1)
	for k := uint64(0); k <= max; k++ {
		roots[k], _ = m.RootAt(k)
	}
	for oldN := uint64(0); oldN <= max; oldN++ {
		for newN := oldN; newN <= max; newN++ {
			p, err := m.Consistency(oldN, newN)
			if err != nil {
				t.Fatalf("Consistency(%d, %d): %v", oldN, newN, err)
			}
			if err := VerifyConsistency(roots[oldN], roots[newN], p); err != nil {
				t.Fatalf("consistency %d→%d: %v", oldN, newN, err)
			}
		}
	}
}

func TestConsistencyRejectsFork(t *testing.T) {
	// Two histories that agree on the first 20 leaves and then diverge.
	honest := grow(33)
	forked := New()
	for i := uint64(0); i < 33; i++ {
		leaf := testLeaf(i)
		if i >= 20 {
			leaf = LeafHash([]byte("forged"), "testvol", i*100)
		}
		forked.Append(leaf, int64(i+1)*10)
	}
	oldRoot, _ := honest.RootAt(25)
	// The fork cannot produce a consistency proof from the honest root at
	// 25 to its own root at 33.
	p, err := forked.Consistency(25, 33)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyConsistency(oldRoot, forked.Root(), p); err == nil {
		t.Fatal("fork produced a consistency proof against the honest old root")
	}
	// And an honest proof does not link the honest old root to the forked
	// new root.
	hp, err := honest.Consistency(25, 33)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyConsistency(oldRoot, forked.Root(), hp); err == nil {
		t.Fatal("honest proof linked to a forked new root")
	}
	if err := VerifyConsistency(oldRoot, honest.Root(), hp); err != nil {
		t.Fatalf("honest proof rejected: %v", err)
	}
}

func TestPrunedResumeEquivalence(t *testing.T) {
	const cut, total = 45, 90
	full := grow(total)

	half := grow(cut)
	st := half.State()
	resumed, err := Resume(st)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Pruned() {
		t.Fatal("resumed MMR is not pruned")
	}
	for i := uint64(cut); i < total; i++ {
		resumed.Append(testLeaf(i), int64(i+1)*10)
	}
	if resumed.Root() != full.Root() {
		t.Fatal("pruned resume diverged from the full MMR")
	}
	if resumed.Count() != full.Count() {
		t.Fatal("pruned resume miscounted")
	}
	// RootAt works at and after the base, including backwards queries
	// (which restart the replay memo).
	for _, k := range []uint64{cut, 60, 70, 50, total, cut} {
		want, _ := full.RootAt(k)
		got, err := resumed.RootAt(k)
		if err != nil {
			t.Fatalf("pruned RootAt(%d): %v", k, err)
		}
		if got != want {
			t.Fatalf("pruned RootAt(%d) diverged", k)
		}
	}
	// Before the base: answerable only by rehydrating.
	if _, err := resumed.RootAt(cut - 1); !errors.Is(err, ErrPruned) {
		t.Fatalf("RootAt before base: %v, want ErrPruned", err)
	}
	if _, err := resumed.Prove(1); !errors.Is(err, ErrPruned) {
		t.Fatalf("Prove on pruned: %v, want ErrPruned", err)
	}
	if _, err := resumed.Consistency(cut, total); !errors.Is(err, ErrPruned) {
		t.Fatalf("Consistency on pruned: %v, want ErrPruned", err)
	}
}

func TestStateRoundTripAndTamper(t *testing.T) {
	for _, n := range []uint64{0, 1, 2, 3, 31, 32, 33} {
		st := grow(n).State()
		enc := st.Encode()
		dec, err := DecodeState(enc)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if dec.Count != st.Count || dec.Cursor != st.Cursor || len(dec.Peaks) != len(st.Peaks) {
			t.Fatalf("n=%d: state round trip mismatch", n)
		}
		for i := range st.Peaks {
			if dec.Peaks[i] != st.Peaks[i] {
				t.Fatalf("n=%d: peak %d mismatch", n, i)
			}
		}
		if n > 0 {
			for i := range enc {
				enc[i] ^= 0x40
				if _, err := DecodeState(enc); err == nil {
					t.Fatalf("n=%d: flipped byte %d decoded cleanly", n, i)
				}
				enc[i] ^= 0x40
			}
		}
	}
	if _, err := DecodeState([]byte("junk")); err == nil {
		t.Fatal("junk decoded as a peak file")
	}
}

func TestResumeZeroStateIsFullMode(t *testing.T) {
	m, err := Resume(State{Count: 0, Cursor: 7})
	if err != nil {
		t.Fatal(err)
	}
	if m.Pruned() {
		t.Fatal("zero-leaf resume should be full mode")
	}
	if m.Cursor() != 7 {
		t.Fatalf("cursor %d, want 7", m.Cursor())
	}
	m.Append(testLeaf(0), 17)
	if _, err := m.Prove(0); err != nil {
		t.Fatalf("full-mode proof after zero resume: %v", err)
	}
}

func TestResumeRejectsBadPeakCount(t *testing.T) {
	if _, err := Resume(State{Count: 3, Peaks: []Hash{{}}}); err == nil {
		t.Fatal("resume accepted wrong peak count")
	}
}

func TestLeavesAtOffset(t *testing.T) {
	m := New()
	// Leaves end at 10, 25, 40; an Advance (non-leaf frame) pushes the
	// cursor to 55.
	m.Append(testLeaf(0), 10)
	m.Append(testLeaf(1), 25)
	m.Append(testLeaf(2), 40)
	m.Advance(55)
	cases := []struct {
		end  int64
		want uint64
	}{{0, 0}, {9, 0}, {10, 1}, {24, 1}, {25, 2}, {40, 3}, {55, 3}, {1000, 3}}
	for _, c := range cases {
		got, ok := m.LeavesAtOffset(c.end)
		if !ok || got != c.want {
			t.Fatalf("LeavesAtOffset(%d) = %d, %v; want %d, true", c.end, got, ok, c.want)
		}
	}
	if m.Cursor() != 55 {
		t.Fatalf("cursor %d, want 55", m.Cursor())
	}

	// A pruned MMR cannot answer below its base cursor.
	st := m.State()
	p, err := Resume(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.LeavesAtOffset(54); ok {
		t.Fatal("pruned MMR answered an offset below its base")
	}
	p.Append(testLeaf(3), 70)
	if got, ok := p.LeavesAtOffset(70); !ok || got != 4 {
		t.Fatalf("pruned LeavesAtOffset(70) = %d, %v; want 4, true", got, ok)
	}
}

func TestLeafAccess(t *testing.T) {
	m := grow(10)
	for i := uint64(0); i < 10; i++ {
		h, err := m.Leaf(i)
		if err != nil {
			t.Fatal(err)
		}
		if h != testLeaf(i) {
			t.Fatalf("leaf %d mismatch", i)
		}
	}
	if _, err := m.Leaf(10); err == nil {
		t.Fatal("leaf past the count succeeded")
	}
	p, _ := Resume(m.State())
	if _, err := p.Leaf(3); !errors.Is(err, ErrPruned) {
		t.Fatalf("pruned leaf access: %v, want ErrPruned", err)
	}
	p.Append(testLeaf(10), 110)
	if h, err := p.Leaf(10); err != nil || h != testLeaf(10) {
		t.Fatalf("pruned tail leaf access: %v", err)
	}
}

func TestLeafHashDomainSeparation(t *testing.T) {
	rec := []byte("some record bytes")
	a := LeafHash(rec, "vol", 100)
	if a != LeafHash(rec, "vol", 100) {
		t.Fatal("leaf hash not deterministic")
	}
	for name, b := range map[string]Hash{
		"different bytes":  LeafHash([]byte("some record byteZ"), "vol", 100),
		"different volume": LeafHash(rec, "vol2", 100),
		"different offset": LeafHash(rec, "vol", 101),
	} {
		if a == b {
			t.Fatalf("%s hashed to the same leaf", name)
		}
	}
	// A shifted volume/bytes boundary must not collide.
	if LeafHash([]byte("ab"), "c", 0) == LeafHash([]byte("a"), "bc", 0) {
		t.Fatal("leaf hash boundary ambiguity")
	}
}

func TestConcurrentAppendAndProve(t *testing.T) {
	m := grow(64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(64); i < 2064; i++ {
			m.Append(testLeaf(i), int64(i+1)*10)
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		n := m.Count()
		root, err := m.RootAt(n)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.ProveAt(n-1, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyInclusion(root, testLeaf(n-1), p); err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkAppend(b *testing.B) {
	m := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Append(testLeaf(uint64(i)), int64(i+1)*10)
	}
}

func BenchmarkProve(b *testing.B) {
	m := grow(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Prove(uint64(i) % (1 << 16)); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleVerifyInclusion() {
	m := New()
	for i := uint64(0); i < 5; i++ {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], i)
		m.Append(LeafHash(buf[:], "vol", i*16), int64(i+1)*16)
	}
	p, _ := m.Prove(3)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], 3)
	leaf := LeafHash(buf[:], "vol", 3*16)
	fmt.Println(VerifyInclusion(m.Root(), leaf, p) == nil)
	// Output: true
}
