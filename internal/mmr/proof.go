package mmr

import (
	"fmt"
	"math/bits"
)

// InclusionProof shows that a specific leaf is committed by the root at
// Size leaves. Path holds the sibling hashes from the leaf up to its
// mountain peak (leaf-adjacent first); Peaks holds the other mountains'
// peaks in canonical order, with the proven mountain's slot omitted. No
// direction bits travel with the proof: the verifier derives them from
// the index bits and the canonical decomposition of Size.
type InclusionProof struct {
	Index uint64
	Size  uint64
	Path  []Hash
	Peaks []Hash
}

// ConsistencyProof shows that the root at NewSize extends the root at
// OldSize without rewriting it. OldPeaks are the peaks at OldSize
// (which must bag to the old root); Fillers are the roots of the new
// aligned subtrees that lie entirely past OldSize, in the deterministic
// order the rebuild recursion consumes them.
type ConsistencyProof struct {
	OldSize  uint64
	NewSize  uint64
	OldPeaks []Hash
	Fillers  []Hash
}

// containing finds the mountain of the decomposition ms that holds leaf
// i, and its slot index.
func containing(ms []mountain, i uint64) (mountain, int, bool) {
	for slot, mt := range ms {
		if i >= mt.start && i < mt.start+mt.size {
			return mt, slot, true
		}
	}
	return mountain{}, 0, false
}

// Prove generates an inclusion proof for leaf i against the current
// root. Full mode only.
func (m *MMR) Prove(i uint64) (InclusionProof, error) {
	return m.ProveAt(i, m.Count())
}

// ProveAt generates an inclusion proof for leaf i against the root the
// MMR had at size leaves. Full mode only.
func (m *MMR) ProveAt(i, size uint64) (InclusionProof, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.pruned {
		return InclusionProof{}, ErrPruned
	}
	if size > m.count {
		return InclusionProof{}, fmt.Errorf("mmr: size %d beyond %d leaves", size, m.count)
	}
	if i >= size {
		return InclusionProof{}, fmt.Errorf("mmr: leaf %d not covered by size %d", i, size)
	}
	ms := mountains(size)
	mt, slot, _ := containing(ms, i)
	p := InclusionProof{Index: i, Size: size}
	m.pathTo(mt.start, mt.size, i, &p.Path)
	for s, other := range ms {
		if s != slot {
			p.Peaks = append(p.Peaks, m.subRoot(other.start, other.size))
		}
	}
	return p, nil
}

// pathTo collects the sibling hashes on the way from leaf i to the root
// of the perfect subtree over [start, start+size), appending them
// leaf-adjacent first.
func (m *MMR) pathTo(start, size, i uint64, path *[]Hash) {
	if size == 1 {
		return
	}
	half := size / 2
	if i < start+half {
		m.pathTo(start, half, i, path)
		*path = append(*path, m.subRoot(start+half, half))
	} else {
		m.pathTo(start+half, half, i, path)
		*path = append(*path, m.subRoot(start, half))
	}
}

// VerifyInclusion checks an inclusion proof for the given leaf hash
// against a root covering p.Size leaves.
func VerifyInclusion(root Hash, leaf Hash, p InclusionProof) error {
	if p.Index >= p.Size {
		return fmt.Errorf("mmr: proof index %d not covered by size %d", p.Index, p.Size)
	}
	ms := mountains(p.Size)
	mt, slot, ok := containing(ms, p.Index)
	if !ok {
		return fmt.Errorf("mmr: no mountain holds leaf %d at size %d", p.Index, p.Size)
	}
	if want := bits.Len64(mt.size) - 1; len(p.Path) != want {
		return fmt.Errorf("mmr: path length %d, want %d", len(p.Path), want)
	}
	if len(p.Peaks) != len(ms)-1 {
		return fmt.Errorf("mmr: %d other peaks, want %d", len(p.Peaks), len(ms)-1)
	}
	h := leaf
	j := p.Index - mt.start
	for _, sib := range p.Path {
		if j&1 == 1 {
			h = ParentHash(sib, h)
		} else {
			h = ParentHash(h, sib)
		}
		j >>= 1
	}
	all := make([]Hash, 0, len(ms))
	all = append(all, p.Peaks[:slot]...)
	all = append(all, h)
	all = append(all, p.Peaks[slot:]...)
	if BagPeaks(p.Size, all) != root {
		return fmt.Errorf("mmr: inclusion proof does not reach the root")
	}
	return nil
}

// Consistency generates a proof that the root at newSize extends the
// root at oldSize. Full mode only.
func (m *MMR) Consistency(oldSize, newSize uint64) (ConsistencyProof, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.pruned {
		return ConsistencyProof{}, ErrPruned
	}
	if newSize > m.count {
		return ConsistencyProof{}, fmt.Errorf("mmr: size %d beyond %d leaves", newSize, m.count)
	}
	if oldSize > newSize {
		return ConsistencyProof{}, fmt.Errorf("mmr: old size %d past new size %d", oldSize, newSize)
	}
	p := ConsistencyProof{OldSize: oldSize, NewSize: newSize}
	oldMs := mountains(oldSize)
	for _, mt := range oldMs {
		p.OldPeaks = append(p.OldPeaks, m.subRoot(mt.start, mt.size))
	}
	var descend func(start, size uint64)
	descend = func(start, size uint64) {
		for _, omt := range oldMs {
			if omt.start == start && omt.size == size {
				return // an old mountain: the verifier already holds it
			}
		}
		if start >= oldSize {
			p.Fillers = append(p.Fillers, m.subRoot(start, size))
			return
		}
		half := size / 2
		descend(start, half)
		descend(start+half, half)
	}
	for _, mt := range mountains(newSize) {
		descend(mt.start, mt.size)
	}
	return p, nil
}

// VerifyConsistency checks that newRoot (at p.NewSize leaves) is an
// append-only extension of oldRoot (at p.OldSize leaves). The old
// mountains are the aligned greedy decomposition of the old prefix, so
// each is reachable by splitting exactly one new mountain; everything
// wholly past the old size must be supplied as a filler. Both peak lists
// must be consumed exactly.
func VerifyConsistency(oldRoot, newRoot Hash, p ConsistencyProof) error {
	if p.OldSize > p.NewSize {
		return fmt.Errorf("mmr: old size %d past new size %d", p.OldSize, p.NewSize)
	}
	oldMs := mountains(p.OldSize)
	if len(p.OldPeaks) != len(oldMs) {
		return fmt.Errorf("mmr: %d old peaks, want %d", len(p.OldPeaks), len(oldMs))
	}
	if BagPeaks(p.OldSize, p.OldPeaks) != oldRoot {
		return fmt.Errorf("mmr: old peaks do not bag to the old root")
	}
	oi, fi := 0, 0
	var build func(start, size uint64) (Hash, error)
	build = func(start, size uint64) (Hash, error) {
		if oi < len(oldMs) && oldMs[oi].start == start && oldMs[oi].size == size {
			h := p.OldPeaks[oi]
			oi++
			return h, nil
		}
		if start >= p.OldSize {
			if fi >= len(p.Fillers) {
				return Hash{}, fmt.Errorf("mmr: consistency proof is missing fillers")
			}
			h := p.Fillers[fi]
			fi++
			return h, nil
		}
		if size == 1 {
			return Hash{}, fmt.Errorf("mmr: malformed consistency proof")
		}
		half := size / 2
		l, err := build(start, half)
		if err != nil {
			return Hash{}, err
		}
		r, err := build(start+half, half)
		if err != nil {
			return Hash{}, err
		}
		return ParentHash(l, r), nil
	}
	newPeaks := make([]Hash, 0, bits.OnesCount64(p.NewSize))
	for _, mt := range mountains(p.NewSize) {
		h, err := build(mt.start, mt.size)
		if err != nil {
			return err
		}
		newPeaks = append(newPeaks, h)
	}
	if oi != len(oldMs) || fi != len(p.Fillers) {
		return fmt.Errorf("mmr: consistency proof has unused hashes")
	}
	if BagPeaks(p.NewSize, newPeaks) != newRoot {
		return fmt.Errorf("mmr: consistency proof does not reach the new root")
	}
	return nil
}
