package mmr

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
)

// StateMagic identifies a peak-file. The format is versioned by the
// magic, CRC-protected, and fixed-layout:
//
//	magic "PASSMMR1\n"
//	count:u64le  cursor:u64le  npeaks:u32le
//	npeaks × 32-byte peak hashes, largest mountain first
//	crc32(everything above):u32le
const StateMagic = "PASSMMR1\n"

// State is the compact resume state of an MMR: enough to keep appending
// and reporting roots without the node set.
type State struct {
	Count  uint64
	Cursor int64
	Peaks  []Hash
}

// Encode renders the peak-file bytes.
func (s State) Encode() []byte {
	out := make([]byte, 0, len(StateMagic)+8+8+4+32*len(s.Peaks)+4)
	out = append(out, StateMagic...)
	out = binary.LittleEndian.AppendUint64(out, s.Count)
	out = binary.LittleEndian.AppendUint64(out, uint64(s.Cursor))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Peaks)))
	for _, p := range s.Peaks {
		out = append(out, p[:]...)
	}
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// DecodeState parses and validates peak-file bytes.
func DecodeState(b []byte) (State, error) {
	head := len(StateMagic) + 8 + 8 + 4
	if len(b) < head+4 || string(b[:len(StateMagic)]) != StateMagic {
		return State{}, fmt.Errorf("mmr: not a peak file")
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return State{}, fmt.Errorf("mmr: peak file checksum mismatch")
	}
	var s State
	off := len(StateMagic)
	s.Count = binary.LittleEndian.Uint64(b[off:])
	s.Cursor = int64(binary.LittleEndian.Uint64(b[off+8:]))
	n := int(binary.LittleEndian.Uint32(b[off+16:]))
	if n != bits.OnesCount64(s.Count) {
		return State{}, fmt.Errorf("mmr: peak file has %d peaks for %d leaves, want %d",
			n, s.Count, bits.OnesCount64(s.Count))
	}
	if len(body) != head+32*n {
		return State{}, fmt.Errorf("mmr: peak file length %d, want %d", len(b), head+32*n+4)
	}
	s.Peaks = make([]Hash, n)
	for i := range s.Peaks {
		copy(s.Peaks[i][:], b[head+32*i:])
	}
	return s, nil
}
