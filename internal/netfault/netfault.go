// Package netfault injects network faults into net.Conn and net.Listener,
// the network-side twin of vfs.FaultFS: where FaultFS proves the
// checkpoint stack survives a disk that dies mid-write, netfault proves
// the replication and client-resilience stack survives a network that
// drops, delays, partitions, tears frames mid-write, and blackholes one
// direction while the other keeps flowing.
//
// A Faults value is a shared, dynamically adjustable control block; wrap a
// listener (or an individual connection) once and flip faults on and off
// while traffic is live:
//
//	flt := netfault.New()
//	srv, _ := passd.Serve(w, passd.Config{Listener: flt.Listener(ln)})
//	flt.SetWriteDelay(25 * time.Millisecond) // a slow replica
//	flt.Partition(true)                      // nothing in, nothing out
//	flt.TearAfter(100)                       // cut the next frame mid-write
//	flt.KillConns()                          // reset every live connection
//	flt.Heal()                               // back to a healthy network
//
// Faults are injected on the wrapped side only (usually the server's
// accepted connections); the peer experiences them as the corresponding
// client-visible pathology — stalls, resets, half-open connections and
// truncated responses. Blackholed reads and writes do not error: reads
// block (until the connection's read deadline, if any, fires) and writes
// report success while the bytes vanish, exactly like a mid-path packet
// drop. All methods are safe for concurrent use.
package netfault

import (
	"net"
	"os"
	"sync"
	"time"
)

// pollInterval is how often a blackholed read re-checks for healing or an
// expired deadline. Coarse is fine: blackholes are for tests that assert
// deadlines fire, not for latency measurements.
const pollInterval = 2 * time.Millisecond

// Faults is the shared fault state for a set of wrapped connections.
// The zero value is not ready; use New.
type Faults struct {
	mu         sync.Mutex
	readDelay  time.Duration
	writeDelay time.Duration
	blackRead  bool  // reads block (one-way blackhole toward the wrapped side)
	blackWrite bool  // writes vanish (one-way blackhole away from the wrapped side)
	refuse     bool  // new connections are accepted then immediately reset
	tearAfter  int64 // bytes the wrapped side may still write; -1 = off
	conns      map[*Conn]struct{}
}

// New returns a healthy Faults control block.
func New() *Faults {
	return &Faults{tearAfter: -1, conns: make(map[*Conn]struct{})}
}

// SetReadDelay stalls every read on wrapped connections by d.
func (f *Faults) SetReadDelay(d time.Duration) {
	f.mu.Lock()
	f.readDelay = d
	f.mu.Unlock()
}

// SetWriteDelay stalls every write on wrapped connections by d — the
// "artificially slow follower" fault the hedged-read benchmark uses.
func (f *Faults) SetWriteDelay(d time.Duration) {
	f.mu.Lock()
	f.writeDelay = d
	f.mu.Unlock()
}

// BlackholeReads makes reads on wrapped connections block indefinitely
// (honoring read deadlines): bytes toward the wrapped side are dropped
// in-flight while the reverse direction keeps working.
func (f *Faults) BlackholeReads(on bool) {
	f.mu.Lock()
	f.blackRead = on
	f.mu.Unlock()
}

// BlackholeWrites makes writes on wrapped connections report success while
// the bytes vanish: the wrapped side believes it answered, the peer never
// hears it — the classic half-open failure a response deadline must catch.
func (f *Faults) BlackholeWrites(on bool) {
	f.mu.Lock()
	f.blackWrite = on
	f.mu.Unlock()
}

// Refuse makes the wrapped listener reset new connections on accept.
func (f *Faults) Refuse(on bool) {
	f.mu.Lock()
	f.refuse = on
	f.mu.Unlock()
}

// Partition isolates the wrapped side completely: new connections are
// refused and existing ones go black in both directions. Partition(false)
// heals only what Partition(true) set.
func (f *Faults) Partition(on bool) {
	f.mu.Lock()
	f.refuse = on
	f.blackRead = on
	f.blackWrite = on
	f.mu.Unlock()
}

// TearAfter arms a torn write: across all wrapped connections, the next n
// written bytes pass through, then the write in flight is truncated
// mid-frame and that connection's writes silently vanish from then on (the
// peer sees a partial frame and then nothing — not even a FIN). Tearing
// disarms itself after cutting one connection; other connections are
// unaffected. The count is blind to message boundaries, so on a protocol
// v3 connection a small n lands inside the 10-byte binary frame header
// and a larger one mid-payload — both torn-frame shapes a crashing peer
// can leave behind (frame_test.go drives each).
func (f *Faults) TearAfter(n int64) {
	f.mu.Lock()
	f.tearAfter = n
	f.mu.Unlock()
}

// KillConns abruptly closes every live wrapped connection — the "drop"
// fault: peers see a reset/EOF, in-flight requests die.
func (f *Faults) KillConns() {
	f.mu.Lock()
	conns := make([]*Conn, 0, len(f.conns))
	for c := range f.conns {
		conns = append(conns, c)
	}
	f.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Heal clears every fault (but does not resurrect killed or torn
// connections — like a real network, recovery means reconnecting).
func (f *Faults) Heal() {
	f.mu.Lock()
	f.readDelay, f.writeDelay = 0, 0
	f.blackRead, f.blackWrite = false, false
	f.refuse = false
	f.tearAfter = -1
	f.mu.Unlock()
}

// snapshot reads the current fault state.
func (f *Faults) snapshot() (rd, wd time.Duration, br, bw bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.readDelay, f.writeDelay, f.blackRead, f.blackWrite
}

// Conn wraps c: all I/O passes through f's faults.
func (f *Faults) Conn(c net.Conn) *Conn {
	fc := &Conn{inner: c, f: f}
	f.mu.Lock()
	f.conns[fc] = struct{}{}
	f.mu.Unlock()
	return fc
}

// Listener wraps ln: accepted connections pass through f's faults, and
// Refuse/Partition reset new connections at the door.
func (f *Faults) Listener(ln net.Listener) net.Listener {
	return &listener{inner: ln, f: f}
}

type listener struct {
	inner net.Listener
	f     *Faults
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		c, err := l.inner.Accept()
		if err != nil {
			return nil, err
		}
		l.f.mu.Lock()
		refuse := l.f.refuse
		l.f.mu.Unlock()
		if refuse {
			c.Close()
			continue
		}
		return l.f.Conn(c), nil
	}
}

func (l *listener) Close() error   { return l.inner.Close() }
func (l *listener) Addr() net.Addr { return l.inner.Addr() }

// Conn is one fault-injected connection. It implements net.Conn.
type Conn struct {
	inner net.Conn
	f     *Faults

	mu      sync.Mutex
	torn    bool // a TearAfter cut this connection; writes vanish
	closed  bool
	readDL  time.Time
	writeDL time.Time
}

var _ net.Conn = (*Conn)(nil)

// Read applies read delay and read blackholing, honoring the read
// deadline: a blackholed read returns os.ErrDeadlineExceeded once the
// deadline passes instead of hanging the caller forever.
func (c *Conn) Read(p []byte) (int, error) {
	for {
		rd, _, black, _ := c.f.snapshot()
		if !black {
			if rd > 0 {
				time.Sleep(rd)
			}
			return c.inner.Read(p)
		}
		c.mu.Lock()
		dl, closed := c.readDL, c.closed
		c.mu.Unlock()
		if closed {
			return 0, net.ErrClosed
		}
		if !dl.IsZero() && time.Now().After(dl) {
			return 0, os.ErrDeadlineExceeded
		}
		time.Sleep(pollInterval)
	}
}

// Write applies write delay, write blackholing and torn-frame injection.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	torn, closed := c.torn, c.closed
	c.mu.Unlock()
	if closed {
		return 0, net.ErrClosed
	}
	if torn {
		return len(p), nil // the cut connection swallows everything
	}
	_, wd, _, black := c.f.snapshot()
	if wd > 0 {
		time.Sleep(wd)
	}
	if black {
		return len(p), nil // bytes vanish, caller believes they were sent
	}
	// Torn-frame arming is checked under the Faults lock so exactly one
	// write across all connections gets cut.
	c.f.mu.Lock()
	tear := c.f.tearAfter
	if tear >= 0 {
		if int64(len(p)) >= tear {
			c.f.tearAfter = -1 // disarm: one cut per arming
		} else {
			c.f.tearAfter -= int64(len(p))
		}
	}
	c.f.mu.Unlock()
	if tear >= 0 && int64(len(p)) >= tear {
		c.mu.Lock()
		c.torn = true
		c.mu.Unlock()
		if tear > 0 {
			c.inner.Write(p[:tear])
		}
		return len(p), nil // the frame was cut mid-write; the rest vanishes
	}
	return c.inner.Write(p)
}

// Close closes the underlying connection and unregisters it.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.f.mu.Lock()
	delete(c.f.conns, c)
	c.f.mu.Unlock()
	return c.inner.Close()
}

func (c *Conn) LocalAddr() net.Addr  { return c.inner.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL, c.writeDL = t, t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDL = t
	c.mu.Unlock()
	return c.inner.SetWriteDeadline(t)
}
