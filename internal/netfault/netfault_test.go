package netfault

import (
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// echoServer accepts through ln and echoes every byte back.
func echoServer(t *testing.T, ln net.Listener) {
	t.Helper()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
}

func startEcho(t *testing.T) (*Faults, string) {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flt := New()
	ln := flt.Listener(inner)
	t.Cleanup(func() { ln.Close() })
	echoServer(t, ln)
	return flt, ln.Addr().String()
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func roundTrip(c net.Conn, msg string, timeout time.Duration) (string, error) {
	if err := c.SetDeadline(time.Now().Add(timeout)); err != nil {
		return "", err
	}
	if _, err := c.Write([]byte(msg)); err != nil {
		return "", err
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func TestHealthyPassThrough(t *testing.T) {
	_, addr := startEcho(t)
	c := dial(t, addr)
	got, err := roundTrip(c, "hello", 2*time.Second)
	if err != nil || got != "hello" {
		t.Fatalf("echo = %q, %v", got, err)
	}
}

func TestWriteDelay(t *testing.T) {
	flt, addr := startEcho(t)
	flt.SetWriteDelay(60 * time.Millisecond)
	c := dial(t, addr)
	start := time.Now()
	if _, err := roundTrip(c, "x", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("delayed echo returned in %v, want >= 50ms", d)
	}
	flt.Heal()
	start = time.Now()
	if _, err := roundTrip(c, "y", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("healed echo took %v, want fast", d)
	}
}

func TestBlackholeWritesHonorsClientDeadline(t *testing.T) {
	flt, addr := startEcho(t)
	flt.BlackholeWrites(true)
	c := dial(t, addr)
	// The echo's response writes vanish; the client's read deadline must
	// fire rather than hang.
	_, err := roundTrip(c, "lost", 200*time.Millisecond)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("blackholed response returned %v, want timeout", err)
	}
}

func TestBlackholeReadsHonorsServerDeadline(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flt := New()
	ln := flt.Listener(inner)
	defer ln.Close()
	flt.BlackholeReads(true)

	var wg sync.WaitGroup
	wg.Add(1)
	var srvErr error
	go func() {
		defer wg.Done()
		sc, err := ln.Accept()
		if err != nil {
			srvErr = err
			return
		}
		defer sc.Close()
		sc.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
		_, srvErr = sc.Read(make([]byte, 16))
	}()
	c := dial(t, ln.Addr().String())
	c.Write([]byte("never arrives"))
	wg.Wait()
	if !errors.Is(srvErr, os.ErrDeadlineExceeded) {
		t.Fatalf("blackholed read returned %v, want deadline exceeded", srvErr)
	}
}

func TestTornWriteCutsOneFrame(t *testing.T) {
	flt, addr := startEcho(t)
	c := dial(t, addr)
	// Warm the connection through, then arm a tear 3 bytes into the next
	// server write: the client receives a partial echo and then silence.
	if _, err := roundTrip(c, "warm", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	flt.TearAfter(3)
	c.SetDeadline(time.Now().Add(300 * time.Millisecond))
	if _, err := c.Write([]byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := io.ReadFull(c, buf)
	if n != 3 || string(buf[:3]) != "abc" {
		t.Fatalf("torn frame delivered %d bytes (%q), want 3 (%q); err=%v", n, buf[:n], "abc", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read past the tear returned %v, want timeout", err)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	flt, addr := startEcho(t)
	c := dial(t, addr)
	if _, err := roundTrip(c, "pre", time.Second); err != nil {
		t.Fatal(err)
	}
	flt.Partition(true)
	// Existing connection: blackholed both ways.
	if _, err := roundTrip(c, "gone", 150*time.Millisecond); err == nil {
		t.Fatal("round-trip succeeded across a partition")
	}
	// New connections: reset at the door. TCP connect itself succeeds
	// (the kernel accepts), but the first exchange dies.
	c2 := dial(t, addr)
	if _, err := roundTrip(c2, "refused", 150*time.Millisecond); err == nil {
		t.Fatal("round-trip succeeded on a refused connection")
	}
	flt.Partition(false)
	c3 := dial(t, addr)
	if got, err := roundTrip(c3, "healed", 2*time.Second); err != nil || got != "healed" {
		t.Fatalf("post-heal echo = %q, %v", got, err)
	}
}

func TestKillConnsResetsPeers(t *testing.T) {
	flt, addr := startEcho(t)
	c := dial(t, addr)
	if _, err := roundTrip(c, "up", time.Second); err != nil {
		t.Fatal(err)
	}
	flt.KillConns()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	// The peer sees EOF or a reset, promptly.
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read on a killed connection succeeded")
	}
}
