package nfs

import (
	"testing"

	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// TestVersionBranchingUnderCloseToOpen documents §6.1.2's caveat: with
// close-to-open consistency, two clients can open the same version of a
// file and each freeze it locally, creating independent copies with the
// same version number. The server reconciles freeze records in arrival
// order; the result must stay monotonic and acyclic even though the
// clients briefly disagreed.
func TestVersionBranchingUnderCloseToOpen(t *testing.T) {
	srv := newTestServer(t)
	c1 := dialPass(t, srv)
	c2 := dialPass(t, srv)

	f1, _ := c1.Open("/branch", vfs.OCreate|vfs.ORdWr)
	pf1 := f1.(vfs.PassFile)
	f2, _ := c2.Open("/branch", vfs.ORdWr)
	pf2 := f2.(vfs.PassFile)

	// Both clients freeze locally without talking to the server: both
	// now believe version 2 exists — the branch.
	v1, _ := pf1.PassFreeze()
	v2, _ := pf2.PassFreeze()
	if v1 != 2 || v2 != 2 {
		t.Fatalf("local freezes = %v, %v", v1, v2)
	}
	// Each writes; the server applies the freeze records in arrival
	// order, so the server version advances twice.
	if _, err := pf1.PassWrite([]byte("from-c1"), 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := pf2.PassWrite([]byte("from-c2"), 0, nil); err != nil {
		t.Fatal(err)
	}
	srvVer := srv.Volume().CurrentVersion(pf1.Ref().PNode)
	if srvVer != 3 {
		t.Fatalf("server version = %v, want 3 (two reconciled freezes)", srvVer)
	}
	// Client 2's next pass_read adopts the server's view.
	buf := make([]byte, 16)
	_, ref, err := pf2.PassRead(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Version != 3 {
		t.Fatalf("client 2 did not converge: %v", ref)
	}
	// The provenance graph stays acyclic despite the branch.
	w := waldo.New()
	w.Attach(srv.Volume())
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	db := w.DB
	pn := pf1.Ref().PNode
	for _, v := range db.Versions(pn) {
		for _, in := range db.Inputs(refv(pn, v)) {
			if in.PNode == pn && in.Version >= v {
				t.Fatalf("version edge not strictly decreasing: v%d ← v%d", v, in.Version)
			}
		}
	}
}
