package nfs

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"passv2/internal/pnode"
	"passv2/internal/vfs"
)

// Client is the baseline NFS client: a vfs.FS over the wire with no
// provenance operations (the "NFS" column of Table 2). PassClient layers
// the DPAPI on top. Neither caches data, so close-to-open consistency
// holds trivially.
type Client struct {
	mu    sync.Mutex
	conn  net.Conn
	enc   *gob.Encoder
	dec   *gob.Decoder
	clock *vfs.Clock
	net   NetCost
	volID uint16
	name  string
}

// Dial connects to a PA-NFS server. clock may be nil (no cost charging).
func Dial(addr string, clock *vfs.Clock, cost NetCost) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("nfs: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:  conn,
		enc:   gob.NewEncoder(conn),
		dec:   gob.NewDecoder(conn),
		clock: clock,
		net:   cost,
	}
	rep, err := c.call(&Request{Op: OpHandshake})
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.volID = rep.Vol
	c.name = "nfs:" + rep.Name
	return c, nil
}

// Close disconnects.
func (c *Client) Close() error { return c.conn.Close() }

// call performs one synchronous RPC, charging the simulated network.
func (c *Client) call(req *Request) (*Reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("nfs: send: %w", err)
	}
	var rep Reply
	if err := c.dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("nfs: recv: %w", err)
	}
	if c.clock != nil {
		bytes := len(req.Data) + len(req.Prov) + len(rep.Data) + 128
		c.clock.Advance(c.net.RTT + time.Duration(bytes)*c.net.PerByte)
	}
	if rep.Err != "" {
		return &rep, wireErr(rep.Err)
	}
	return &rep, nil
}

func wireErr(name string) error {
	switch name {
	case errNotExist:
		return vfs.ErrNotExist
	case errExist:
		return vfs.ErrExist
	case errIsDir:
		return vfs.ErrIsDir
	case errNotDir:
		return vfs.ErrNotDir
	case errNotEmpty:
		return vfs.ErrNotEmpty
	case errReadOnly:
		return vfs.ErrReadOnly
	case errStaleFH:
		return ErrStale
	case errTooBig:
		return ErrTooBig
	case errCrashed:
		return ErrServerCrashed
	default:
		return vfs.ErrInvalid
	}
}

// Client-visible protocol errors.
var (
	ErrStale         = errors.New("nfs: stale file handle or pnode")
	ErrTooBig        = errors.New("nfs: request exceeds 64KB chunk limit")
	ErrServerCrashed = errors.New("nfs: server volume crashed")
)

// FSName names the mount.
func (c *Client) FSName() string { return c.name }

// Open opens a remote file.
func (c *Client) Open(path string, flags vfs.Flags) (vfs.File, error) {
	rep, err := c.call(&Request{Op: OpOpen, Path: path, Flags: uint32(flags)})
	if err != nil {
		return nil, err
	}
	return &plainFile{c: c, fh: rep.FH, ino: uint64(rep.Ref.PNode), size: int64(rep.N), baseRef: rep.Ref}, nil
}

func (c *Client) Mkdir(path string) error {
	_, err := c.call(&Request{Op: OpMkdir, Path: path})
	return err
}

func (c *Client) MkdirAll(path string) error {
	_, err := c.call(&Request{Op: OpMkdirAll, Path: path})
	return err
}

func (c *Client) ReadDir(path string) ([]vfs.DirEnt, error) {
	rep, err := c.call(&Request{Op: OpReadDir, Path: path})
	if err != nil {
		return nil, err
	}
	return rep.Ents, nil
}

func (c *Client) Stat(path string) (vfs.Stat, error) {
	rep, err := c.call(&Request{Op: OpStat, Path: path})
	if err != nil {
		return vfs.Stat{}, err
	}
	return rep.St, nil
}

func (c *Client) Rename(oldPath, newPath string) error {
	_, err := c.call(&Request{Op: OpRename, Path: oldPath, Path2: newPath})
	return err
}

func (c *Client) Remove(path string) error {
	_, err := c.call(&Request{Op: OpRemove, Path: path})
	return err
}

func (c *Client) Sync() error {
	_, err := c.call(&Request{Op: OpSync})
	return err
}

var _ vfs.FS = (*Client)(nil)

// plainFile is a baseline remote file handle.
type plainFile struct {
	c       *Client
	fh      uint64
	ino     uint64
	baseRef pnode.Ref

	mu   sync.Mutex
	size int64
}

func (f *plainFile) ReadAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > MaxChunk {
			n = MaxChunk
		}
		rep, err := f.c.call(&Request{Op: OpRead, FH: f.fh, Off: off + int64(total), N: int32(n)})
		if err != nil {
			return total, err
		}
		copy(p[total:], rep.Data)
		total += int(rep.N)
		if int(rep.N) < n {
			break // short read: EOF
		}
	}
	return total, nil
}

func (f *plainFile) WriteAt(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		n := len(p) - total
		if n > MaxChunk {
			n = MaxChunk
		}
		rep, err := f.c.call(&Request{Op: OpWrite, FH: f.fh, Off: off + int64(total), Data: p[total : total+n]})
		if err != nil {
			return total, err
		}
		total += int(rep.N)
	}
	f.mu.Lock()
	if off+int64(total) > f.size {
		f.size = off + int64(total)
	}
	f.mu.Unlock()
	return total, nil
}

func (f *plainFile) Truncate(size int64) error {
	_, err := f.c.call(&Request{Op: OpTruncate, FH: f.fh, Off: size})
	if err == nil {
		f.mu.Lock()
		f.size = size
		f.mu.Unlock()
	}
	return err
}

func (f *plainFile) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

func (f *plainFile) Ino() uint64 { return f.ino }
func (f *plainFile) Sync() error { return nil }

func (f *plainFile) Close() error {
	_, err := f.c.call(&Request{Op: OpClose, FH: f.fh})
	return err
}
