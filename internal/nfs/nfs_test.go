package nfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"passv2/internal/lasagna"
	"passv2/internal/pnode"
	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// newServer starts a server over a fresh Lasagna volume.
func newTestServer(t *testing.T) *Server {
	t.Helper()
	lower := vfs.NewMemFS("server-lower", nil)
	vol, err := lasagna.New("export0", lasagna.Config{Lower: lower, VolumeID: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(vol)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func dialPass(t *testing.T, srv *Server) *PassClient {
	t.Helper()
	c, err := DialPass(srv.Addr(), nil, DefaultNetCost())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPlainClientFSOps(t *testing.T) {
	srv := newTestServer(t)
	c, err := Dial(srv.Addr(), nil, DefaultNetCost())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(c, "/a/b/f.txt", []byte("remote data")); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(c, "/a/b/f.txt")
	if err != nil || string(got) != "remote data" {
		t.Fatalf("read back %q, %v", got, err)
	}
	st, err := c.Stat("/a/b/f.txt")
	if err != nil || st.Size != 11 {
		t.Fatalf("stat = %+v, %v", st, err)
	}
	ents, err := c.ReadDir("/a/b")
	if err != nil || len(ents) != 1 || ents[0].Name != "f.txt" {
		t.Fatalf("readdir = %v, %v", ents, err)
	}
	if err := c.Rename("/a/b/f.txt", "/a/f2.txt"); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("/a/f2.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("/a/f2.txt", vfs.ORdOnly); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("want ErrNotExist over the wire, got %v", err)
	}
}

func TestErrorsMappedAcrossWire(t *testing.T) {
	srv := newTestServer(t)
	c := dialPass(t, srv)
	if _, err := c.Open("/missing", vfs.ORdOnly); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("ENOENT mapping: %v", err)
	}
	if err := c.Mkdir("/no/parent"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("mkdir mapping: %v", err)
	}
	vfs.WriteFile(c, "/f", nil)
	if _, err := c.Open("/f", vfs.OCreate|vfs.OExcl); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("EEXIST mapping: %v", err)
	}
}

func TestPassWriteSmallBundleSingleOp(t *testing.T) {
	srv := newTestServer(t)
	c := dialPass(t, srv)
	f, err := c.Open("/out", vfs.OCreate|vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	pf := f.(vfs.PassFile)
	proc := pnode.Ref{PNode: 0xFFFF000000000001, Version: 1}
	if _, err := pf.PassWrite([]byte("hello"), 0, record.NewBundle(record.Input(pf.Ref(), proc))); err != nil {
		t.Fatal(err)
	}
	// Server volume has the data and the record.
	got, _ := vfs.ReadFile(srv.Volume(), "/out")
	if string(got) != "hello" {
		t.Fatalf("server data = %q", got)
	}
	recs, _ := srv.Volume().LogRecords()
	found := false
	for _, r := range recs {
		if r.Attr == record.AttrInput {
			if dep, _ := r.Value.AsRef(); dep == proc {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("provenance record did not reach the server log")
	}
}

func TestPassReadReturnsServerIdentity(t *testing.T) {
	srv := newTestServer(t)
	c := dialPass(t, srv)
	f, _ := c.Open("/in", vfs.OCreate|vfs.ORdWr)
	pf := f.(vfs.PassFile)
	pf.PassWrite([]byte("abc"), 0, nil)
	buf := make([]byte, 8)
	n, ref, err := pf.PassRead(buf, 0)
	if err != nil || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if pnode.VolumePrefix(ref.PNode) != 3 {
		t.Fatalf("identity not from server volume: %v", ref)
	}
}

func TestLargeBundleUsesTransaction(t *testing.T) {
	srv := newTestServer(t)
	c := dialPass(t, srv)
	f, _ := c.Open("/big", vfs.OCreate|vfs.ORdWr)
	pf := f.(vfs.PassFile)

	// Build a bundle well over 64KB: many records with long values.
	b := &record.Bundle{}
	long := string(bytes.Repeat([]byte("x"), 1024))
	for i := 0; i < 128; i++ {
		b.Add(record.New(pf.Ref(), record.Attr("PARAM"), record.StringVal(fmt.Sprintf("%s-%d", long, i))))
	}
	if _, err := pf.PassWrite([]byte("data"), 0, b); err != nil {
		t.Fatal(err)
	}

	// The log must contain BEGINTXN ... records(txn) ... ENDTXN.
	var sawBegin, sawEnd bool
	var txnRecords int
	provlog.ScanAll(srv.Volume().Lower(), "/.prov", func(e provlog.Entry) error {
		switch e.Type {
		case provlog.EntryBeginTxn:
			sawBegin = true
		case provlog.EntryEndTxn:
			sawEnd = true
		case provlog.EntryRecord:
			if e.Txn != 0 {
				txnRecords++
			}
		}
		return nil
	})
	if !sawBegin || !sawEnd || txnRecords < 128 {
		t.Fatalf("txn encapsulation missing: begin=%v end=%v recs=%d", sawBegin, sawEnd, txnRecords)
	}
	// Waldo applies the transaction only once ended.
	w := waldo.New()
	w.Attach(srv.Volume())
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(w.OrphanTxns()) != 0 {
		t.Fatal("completed transaction reported as orphan")
	}
	if got, _ := vfs.ReadFile(srv.Volume(), "/big"); string(got) != "data" {
		t.Fatalf("data = %q", got)
	}
}

func TestOrphanedTransactionDiscarded(t *testing.T) {
	srv := newTestServer(t)
	c := dialPass(t, srv)
	f, _ := c.Open("/victim", vfs.OCreate|vfs.ORdWr)
	pf := f.(*passFile)

	// Simulate the crash window: provenance sent under a txn, client
	// dies before the OP_PASSWRITE that would end it.
	rep, err := c.call(&Request{Op: OpBeginTxn})
	if err != nil {
		t.Fatal(err)
	}
	chunk := record.EncodeBundle(record.NewBundle(
		record.Input(pf.Ref(), pnode.Ref{PNode: 0xFFFF000000000009, Version: 1}),
	))
	if _, err := c.call(&Request{Op: OpPassProv, Txn: rep.Txn, Prov: chunk}); err != nil {
		t.Fatal(err)
	}
	// No ENDTXN ever arrives. Waldo sees the orphan and discards it.
	w := waldo.New()
	w.Attach(srv.Volume())
	w.Drain()
	orphans := w.OrphanTxns()
	if len(orphans) != 1 || orphans[0] != rep.Txn {
		t.Fatalf("orphans = %v", orphans)
	}
	if n := w.DiscardOrphans(); n != 1 {
		t.Fatalf("discarded %d", n)
	}
	if len(w.DB.Inputs(pf.Ref())) != 0 {
		t.Fatal("orphaned provenance leaked into database")
	}
}

func TestFreezeIsARecordNotAnOp(t *testing.T) {
	srv := newTestServer(t)
	c := dialPass(t, srv)
	f, _ := c.Open("/versioned", vfs.OCreate|vfs.ORdWr)
	pf := f.(vfs.PassFile)

	if pf.Ref().Version != 1 {
		t.Fatalf("fresh version = %v", pf.Ref().Version)
	}
	v, err := pf.PassFreeze()
	if err != nil || v != 2 {
		t.Fatalf("freeze = %v, %v", v, err)
	}
	// No round trip yet: the server still thinks version 1.
	if got := srv.Volume().CurrentVersion(pf.Ref().PNode); got != 1 {
		t.Fatalf("server version before write = %v", got)
	}
	// The next pass_write carries the freeze record; the server
	// re-applies it in order.
	if _, err := pf.PassWrite([]byte("x"), 0, nil); err != nil {
		t.Fatal(err)
	}
	if got := srv.Volume().CurrentVersion(pf.Ref().PNode); got != 2 {
		t.Fatalf("server version after write = %v", got)
	}
	if pf.Ref().Version != 2 {
		t.Fatalf("client version after write = %v", pf.Ref().Version)
	}
}

func TestTwoClientsShareServerState(t *testing.T) {
	srv := newTestServer(t)
	c1 := dialPass(t, srv)
	c2 := dialPass(t, srv)

	f1, _ := c1.Open("/shared", vfs.OCreate|vfs.ORdWr)
	pf1 := f1.(vfs.PassFile)
	pf1.PassWrite([]byte("from-c1"), 0, nil)

	f2, _ := c2.Open("/shared", vfs.ORdWr)
	pf2 := f2.(vfs.PassFile)
	buf := make([]byte, 16)
	n, ref2, err := pf2.PassRead(buf, 0)
	if err != nil || string(buf[:n]) != "from-c1" {
		t.Fatalf("c2 read %q, %v", buf[:n], err)
	}
	if ref2.PNode != pf1.Ref().PNode {
		t.Fatal("clients see different identities for one file")
	}
	// c1 freezes + writes; c2's next pass_read observes the new version.
	pf1.PassFreeze()
	pf1.PassWrite([]byte("v2!"), 0, nil)
	_, ref2b, _ := pf2.PassRead(buf, 0)
	if ref2b.Version < 2 {
		t.Fatalf("c2 did not observe server version: %v", ref2b)
	}
}

func TestPhantomObjectsOverWire(t *testing.T) {
	srv := newTestServer(t)
	c := dialPass(t, srv)
	ph, err := c.PassMkobj()
	if err != nil {
		t.Fatal(err)
	}
	if pnode.VolumePrefix(ph.Ref().PNode) != 3 {
		t.Fatalf("phantom pnode not from server: %v", ph.Ref())
	}
	// Records about the phantom reach the server log.
	if _, err := ph.PassWrite(nil, 0, record.NewBundle(
		record.New(ph.Ref(), record.AttrType, record.StringVal(record.TypeSession)),
	)); err != nil {
		t.Fatal(err)
	}
	recs, _ := srv.Volume().LogRecords()
	found := false
	for _, r := range recs {
		if r.Subject.PNode == ph.Ref().PNode && r.Attr == record.AttrType {
			found = true
		}
	}
	if !found {
		t.Fatal("phantom record missing from server log")
	}
	// Revive works; a bogus pnode does not.
	if _, err := c.PassReviveObj(ph.Ref()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PassReviveObj(pnode.Ref{PNode: 0xBEEF, Version: 1}); !errors.Is(err, ErrStale) {
		t.Fatalf("bogus revive: %v", err)
	}
}

func TestLargeDataSplitsIntoChunks(t *testing.T) {
	srv := newTestServer(t)
	c := dialPass(t, srv)
	f, _ := c.Open("/blob", vfs.OCreate|vfs.ORdWr)
	pf := f.(vfs.PassFile)
	data := bytes.Repeat([]byte{7}, 3*MaxChunk+100)
	n, err := pf.PassWrite(data, 0, nil)
	if err != nil || n != len(data) {
		t.Fatalf("wrote %d, %v", n, err)
	}
	got, _ := vfs.ReadFile(srv.Volume(), "/blob")
	if !bytes.Equal(got, data) {
		t.Fatal("large data corrupted in transit")
	}
	// Plain client large read too.
	buf := make([]byte, len(data))
	rn, err := f.ReadAt(buf, 0)
	if err != nil || rn != len(data) || !bytes.Equal(buf, data) {
		t.Fatalf("large read %d, %v", rn, err)
	}
}

func TestNetworkCostCharged(t *testing.T) {
	srv := newTestServer(t)
	var clk vfs.Clock
	c, err := DialPass(srv.Addr(), &clk, DefaultNetCost())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	before := clk.Now()
	vfs.WriteFile(c, "/f", make([]byte, 1000))
	if clk.Now() <= before {
		t.Fatal("RPCs must charge the simulated clock")
	}
}

func TestServerSideAnalyzerDedups(t *testing.T) {
	srv := newTestServer(t)
	c := dialPass(t, srv)
	f, _ := c.Open("/dup", vfs.OCreate|vfs.ORdWr)
	pf := f.(vfs.PassFile)
	proc := pnode.Ref{PNode: 0xFFFF000000000042, Version: 1}
	// A client that skips its own analyzer sends the same dependency
	// repeatedly; the server's analyzer collapses them.
	for i := 0; i < 10; i++ {
		if _, err := pf.PassWrite([]byte("x"), 0, record.NewBundle(record.Input(pf.Ref(), proc))); err != nil {
			t.Fatal(err)
		}
	}
	w := waldo.New()
	w.Attach(srv.Volume())
	w.Drain()
	if got := w.DB.Inputs(pf.Ref()); len(got) != 1 {
		t.Fatalf("server analyzer kept %d duplicate deps", len(got))
	}
}

func TestStaleFileHandle(t *testing.T) {
	srv := newTestServer(t)
	c := dialPass(t, srv)
	f, _ := c.Open("/f", vfs.OCreate|vfs.ORdWr)
	f.Close()
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrStale) {
		t.Fatalf("write on closed handle: %v", err)
	}
}
