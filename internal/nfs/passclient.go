package nfs

import (
	"sync"

	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// PassClient is the provenance-aware NFS client: the same mount as Client
// plus the DPAPI, making it a vfs.PassFS and a distributor sink. Stacked
// under a machine's observer/analyzer, it forwards analyzed provenance to
// the server, where the server-side analyzer sees the merged stream from
// all clients (§6.1.1).
type PassClient struct {
	*Client
}

// DialPass connects a provenance-aware client.
func DialPass(addr string, clock *vfs.Clock, cost NetCost) (*PassClient, error) {
	c, err := Dial(addr, clock, cost)
	if err != nil {
		return nil, err
	}
	return &PassClient{Client: c}, nil
}

// VolumeID reports the server volume's pnode space (distributor.Sink).
func (c *PassClient) VolumeID() uint16 { return c.volID }

// Open opens a remote file with DPAPI support.
func (c *PassClient) Open(path string, flags vfs.Flags) (vfs.File, error) {
	f, err := c.Client.Open(path, flags)
	if err != nil {
		return nil, err
	}
	return &passFile{plainFile: f.(*plainFile), c: c}, nil
}

// AppendProvenance ships analyzed records to the server's log in ≤64KB
// OP_PASSPROV chunks (this is also how pass_sync reaches the server).
func (c *PassClient) AppendProvenance(recs []record.Record) error {
	for _, chunk := range chunkRecords(recs) {
		if _, err := c.call(&Request{Op: OpPassProv, Prov: chunk}); err != nil {
			return err
		}
	}
	return nil
}

// chunkRecords encodes records into bundle chunks each below MaxChunk.
func chunkRecords(recs []record.Record) [][]byte {
	var chunks [][]byte
	var cur *record.Bundle
	curLen := 0
	flush := func() {
		if cur != nil && cur.Len() > 0 {
			chunks = append(chunks, record.EncodeBundle(cur))
			cur, curLen = nil, 0
		}
	}
	for _, r := range recs {
		rLen := len(record.AppendRecord(nil, r))
		if cur != nil && curLen+rLen > MaxChunk-64 {
			flush()
		}
		if cur == nil {
			cur = &record.Bundle{}
		}
		cur.Add(r)
		curLen += rLen
	}
	flush()
	return chunks
}

// PassMkobj allocates a phantom object at the server (§6.1.2: the server
// only hands out a pnode, so neither a server nor a client crash leaves
// state to clean up).
func (c *PassClient) PassMkobj() (vfs.PassFile, error) {
	rep, err := c.call(&Request{Op: OpPassMkobj})
	if err != nil {
		return nil, err
	}
	return &clientPhantom{c: c, ref: rep.Ref}, nil
}

// PassReviveObj validates the pnode with the server and returns a handle.
func (c *PassClient) PassReviveObj(ref pnode.Ref) (vfs.PassFile, error) {
	rep, err := c.call(&Request{Op: OpPassReviveObj, Ref: ref})
	if err != nil {
		return nil, err
	}
	return &clientPhantom{c: c, ref: rep.Ref}, nil
}

var _ vfs.PassFS = (*PassClient)(nil)

// passFile adds the DPAPI inode operations to a remote file, with the
// client-side versioning protocol of §6.1.2: pass_freeze increments the
// version locally and attaches a FREEZE record to the file; the server
// re-applies freezes in record order when the provenance arrives with
// OP_PASSWRITE. No round trip is paid for a freeze.
type passFile struct {
	*plainFile
	c *PassClient

	fmu     sync.Mutex
	bumps   pnode.Version   // local version increments not yet at server
	pending []record.Record // queued FREEZE records
}

// Ref returns the client's view of the file's identity: the server version
// plus local unsent freezes.
func (f *passFile) Ref() pnode.Ref {
	f.fmu.Lock()
	defer f.fmu.Unlock()
	return pnode.Ref{PNode: f.baseRef.PNode, Version: f.baseRef.Version + f.bumps}
}

// PassFreeze versions the file locally (no server round trip).
func (f *passFile) PassFreeze() (pnode.Version, error) {
	f.fmu.Lock()
	defer f.fmu.Unlock()
	f.bumps++
	v := f.baseRef.Version + f.bumps
	f.pending = append(f.pending, record.New(
		pnode.Ref{PNode: f.baseRef.PNode, Version: v},
		record.AttrFreeze, record.Int(int64(v)),
	))
	return v, nil
}

// PassRead returns data plus the identity read, adopting the server's
// version if another client moved it forward.
func (f *passFile) PassRead(p []byte, off int64) (int, pnode.Ref, error) {
	rep, err := f.c.call(&Request{Op: OpPassRead, FH: f.fh, Off: off, N: int32(min(len(p), MaxChunk))})
	if err != nil {
		return 0, pnode.Ref{}, err
	}
	n := copy(p, rep.Data)
	f.fmu.Lock()
	if rep.Ref.Version > f.baseRef.Version+f.bumps {
		f.baseRef = rep.Ref
		f.bumps = 0
	}
	ref := pnode.Ref{PNode: f.baseRef.PNode, Version: f.baseRef.Version + f.bumps}
	f.fmu.Unlock()
	return n, ref, nil
}

// PassWrite transmits data and provenance together. Small requests go in
// one OP_PASSWRITE; large bundles are encapsulated in a transaction
// (OP_BEGINTXN + OP_PASSPROV chunks + OP_PASSWRITE carrying the ENDTXN);
// large data is split into 64KB pieces after the provenance is safely
// transactional.
func (f *passFile) PassWrite(p []byte, off int64, b *record.Bundle) (int, error) {
	f.fmu.Lock()
	recs := append(f.pending, bundleRecords(b)...)
	f.pending = nil
	f.fmu.Unlock()

	// Reserve framing slack below the 64KB limit; continuation writes
	// carry an empty bundle (1 byte) plus gob overhead.
	const slack = 64
	enc := record.EncodeBundle(record.NewBundle(recs...))

	var txn uint64
	if len(enc) > MaxChunk/2 {
		// Transaction path: the bundle is too big to ride along with
		// data, so it travels first in OP_PASSPROV chunks under a
		// transaction the final OP_PASSWRITE ends.
		rep, err := f.c.call(&Request{Op: OpBeginTxn})
		if err != nil {
			return 0, err
		}
		txn = rep.Txn
		for _, chunk := range chunkRecords(recs) {
			if _, err := f.c.call(&Request{Op: OpPassProv, Txn: txn, Prov: chunk}); err != nil {
				return 0, err
			}
		}
		enc = record.EncodeBundle(nil)
	}
	budget := MaxChunk - len(enc) - slack
	firstData := p
	if len(firstData) > budget {
		firstData = p[:budget]
	}

	// First OP_PASSWRITE: carries the (small) bundle or the ENDTXN.
	rep, err := f.c.call(&Request{Op: OpPassWrite, FH: f.fh, Off: off, Data: firstData, Prov: enc, Txn: txn})
	if err != nil {
		return 0, err
	}
	f.adoptServerRef(rep.Ref)
	total := int(rep.N)

	// Remaining data pieces, plain provenance-less pass_writes.
	for total < len(p) {
		n := len(p) - total
		if n > MaxChunk-slack {
			n = MaxChunk - slack
		}
		rep, err := f.c.call(&Request{Op: OpPassWrite, FH: f.fh, Off: off + int64(total),
			Data: p[total : total+n], Prov: record.EncodeBundle(nil)})
		if err != nil {
			return total, err
		}
		total += int(rep.N)
	}
	f.mu.Lock()
	if off+int64(total) > f.size {
		f.size = off + int64(total)
	}
	f.mu.Unlock()
	return total, nil
}

func (f *passFile) adoptServerRef(ref pnode.Ref) {
	if !ref.IsValid() {
		return
	}
	f.fmu.Lock()
	if ref.Version >= f.baseRef.Version+f.bumps {
		f.baseRef = ref
		f.bumps = 0
	}
	f.fmu.Unlock()
}

// WriteAt on a PA mount is a provenance-less pass_write: the server still
// logs the WAP data descriptor.
func (f *passFile) WriteAt(p []byte, off int64) (int, error) {
	return f.PassWrite(p, off, nil)
}

// PassSync flushes queued freeze records.
func (f *passFile) PassSync() error {
	f.fmu.Lock()
	recs := f.pending
	f.pending = nil
	f.fmu.Unlock()
	if len(recs) == 0 {
		return nil
	}
	_, err := f.c.call(&Request{Op: OpPassWrite, FH: f.fh, Off: 0, Prov: record.EncodeBundle(record.NewBundle(recs...))})
	return err
}

func bundleRecords(b *record.Bundle) []record.Record {
	if b == nil {
		return nil
	}
	return b.Records
}

var _ vfs.PassFile = (*passFile)(nil)

// clientPhantom is the client handle of a server-allocated phantom object.
// Provenance written to it goes straight to the server; data stays in
// client memory (phantoms have no file body).
type clientPhantom struct {
	c   *PassClient
	ref pnode.Ref

	mu  sync.Mutex
	buf []byte
}

func (ph *clientPhantom) Ref() pnode.Ref { return ph.ref }

func (ph *clientPhantom) PassWrite(p []byte, off int64, b *record.Bundle) (int, error) {
	if b != nil && b.Len() > 0 {
		if err := ph.c.AppendProvenance(b.Records); err != nil {
			return 0, err
		}
	}
	if len(p) == 0 {
		return 0, nil
	}
	ph.mu.Lock()
	defer ph.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(ph.buf)) {
		grown := make([]byte, end)
		copy(grown, ph.buf)
		ph.buf = grown
	}
	copy(ph.buf[off:], p)
	return len(p), nil
}

func (ph *clientPhantom) PassRead(p []byte, off int64) (int, pnode.Ref, error) {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	if off < 0 || off >= int64(len(ph.buf)) {
		return 0, ph.ref, nil
	}
	return copy(p, ph.buf[off:]), ph.ref, nil
}

func (ph *clientPhantom) PassFreeze() (pnode.Version, error) {
	ph.ref.Version++
	err := ph.c.AppendProvenance([]record.Record{
		record.New(ph.ref, record.AttrFreeze, record.Int(int64(ph.ref.Version))),
	})
	return ph.ref.Version, err
}

func (ph *clientPhantom) PassSync() error { return nil }

func (ph *clientPhantom) ReadAt(p []byte, off int64) (int, error) {
	n, _, err := ph.PassRead(p, off)
	return n, err
}

func (ph *clientPhantom) WriteAt(p []byte, off int64) (int, error) {
	return ph.PassWrite(p, off, nil)
}

func (ph *clientPhantom) Truncate(int64) error { return vfs.ErrInvalid }

func (ph *clientPhantom) Size() int64 {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	return int64(len(ph.buf))
}

func (ph *clientPhantom) Ino() uint64  { return uint64(ph.ref.PNode) }
func (ph *clientPhantom) Sync() error  { return nil }
func (ph *clientPhantom) Close() error { return nil }

var _ vfs.PassFile = (*clientPhantom)(nil)

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
