// Package nfs implements provenance-aware NFS (PA-NFS, §6.1): a network
// file system whose protocol is extended with the six DPAPI operations, so
// that a client machine's analyzer can stack on a server's analyzer
// through the same interface every other PASSv2 layer uses.
//
// Protocol summary (the paper's extensions over NFSv4):
//
//   - OP_PASSREAD returns data plus the exact pnode/version read.
//   - OP_PASSWRITE transmits data and provenance together, preserving
//     provenance/data consistency, as long as they fit in one 64 KB
//     request.
//   - OP_BEGINTXN / OP_PASSPROV encapsulate larger bundles in a server
//     transaction; the final OP_PASSWRITE carries the ENDTXN record. A
//     client crash leaves a begun-but-unended transaction whose records
//     the server's Waldo identifies as orphans and discards.
//   - pass_freeze is a record type, not an operation: operations can be
//     reordered in flight, and freeze is order-sensitive with respect to
//     pass_write. The client versions files locally and the server
//     re-applies freeze records in arrival order.
//   - OP_PASSMKOBJ allocates a pnode at the server and nothing else, so
//     neither side needs crash-recovery state (§6.1.2); OP_PASSREVIVEOBJ
//     merely validates one.
//
// Transport: length-framed gob messages over TCP, one synchronous request
// per connection at a time (the client serializes). Real NFSv4 compounds
// are richer; the simulation preserves the decisions that matter to the
// paper (what travels together, what is a record vs an op, where
// transactions begin and end).
package nfs

import (
	"time"

	"passv2/internal/pnode"
	"passv2/internal/vfs"
)

// MaxChunk is the NFSv4 client block size the paper assumes (64 KB): the
// bound on data+provenance per OP_PASSWRITE and per OP_PASSPROV chunk.
const MaxChunk = 64 << 10

// Op identifies a protocol operation.
type Op uint8

const (
	OpHandshake Op = iota + 1
	OpOpen
	OpClose
	OpRead
	OpWrite
	OpTruncate
	OpMkdir
	OpMkdirAll
	OpReadDir
	OpStat
	OpRename
	OpRemove
	OpSync
	// DPAPI extensions.
	OpPassRead
	OpPassWrite
	OpBeginTxn
	OpPassProv
	OpPassMkobj
	OpPassReviveObj
)

// Request is the wire request. One struct keeps gob simple; unused fields
// are zero.
type Request struct {
	Op    Op
	Path  string
	Path2 string
	Flags uint32
	FH    uint64
	Off   int64
	N     int32
	Data  []byte
	Prov  []byte // record-encoded bundle
	Txn   uint64
	Ref   pnode.Ref
}

// Reply is the wire reply.
type Reply struct {
	Err  string // error name; "" means success
	FH   uint64
	N    int32
	Data []byte
	Ref  pnode.Ref
	St   vfs.Stat
	Ents []vfs.DirEnt
	Txn  uint64
	Vol  uint16
	Name string
}

// Error names carried on the wire, mapped back to vfs errors client-side.
const (
	errNotExist   = "ENOENT"
	errExist      = "EEXIST"
	errIsDir      = "EISDIR"
	errNotDir     = "ENOTDIR"
	errNotEmpty   = "ENOTEMPTY"
	errInvalid    = "EINVAL"
	errReadOnly   = "EROFS"
	errStaleFH    = "ESTALE"
	errNotPass    = "ENOPASS"
	errCrashed    = "ECRASHED"
	errTooBig     = "EFBIG"
	errCrossMount = "EXDEV"
)

// NetCost models the network for the simulated clock: the paper's testbed
// pays a round trip per NFS operation, which is why CPU-bound workloads
// see overheads shrink and chatty ones see them grow.
type NetCost struct {
	RTT     time.Duration
	PerByte time.Duration
}

// DefaultNetCost approximates the paper's gigabit LAN.
func DefaultNetCost() NetCost {
	return NetCost{
		RTT:     time.Millisecond,          // switch + kernel RPC stack, each way
		PerByte: time.Second / (100 << 20), // ~100 MB/s effective
	}
}
