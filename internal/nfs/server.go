package nfs

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"passv2/internal/analyzer"
	"passv2/internal/lasagna"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// Server exports one Lasagna volume over the PA-NFS protocol. Per §6.1.1
// the server runs its own analyzer instance: with multiple clients, only
// the server sees all records for its files, so only it can avoid cycles
// among them — and because client and server speak the same DPAPI record
// format, the client's analyzer stacks directly on the server's.
type Server struct {
	vol   *lasagna.FS // nil for a plain (non-provenance) export
	plain vfs.FS      // set when vol is nil
	disk  *vfs.Disk   // server spindle for metadata-commit charging
	an    *analyzer.Analyzer

	ln      net.Listener
	mu      sync.Mutex
	files   map[uint64]vfs.File // open-file table
	nextFH  uint64
	nextTxn atomic.Uint64
	done    chan struct{}
	wg      sync.WaitGroup
}

// fs returns the exported file system.
func (s *Server) fs() vfs.FS {
	if s.vol != nil {
		return s.vol
	}
	return s.plain
}

// chargeMetaCommit models NFS's synchronous metadata semantics: creates,
// renames and removes are stable on the server's disk before the reply
// (one seek).
func (s *Server) chargeMetaCommit() {
	if s.disk != nil {
		s.disk.Charge(s.disk.Model().Seek)
	}
}

// NewServer creates a server for vol and starts listening on a loopback
// port. Use Addr to reach it and Close to stop it.
func NewServer(vol *lasagna.FS) (*Server, error) {
	return newServer(vol, nil, nil)
}

// NewPlainServer exports a non-provenance file system: the baseline "NFS"
// column of the evaluation. DPAPI operations are rejected.
func NewPlainServer(fs vfs.FS, disk *vfs.Disk) (*Server, error) {
	return newServer(nil, fs, disk)
}

func newServer(vol *lasagna.FS, plain vfs.FS, disk *vfs.Disk) (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("nfs: listen: %w", err)
	}
	if vol != nil && disk == nil {
		// reuse the volume's disk for metadata commits when available
	}
	s := &Server{
		vol:   vol,
		plain: plain,
		disk:  disk,
		an:    analyzer.New(),
		ln:    ln,
		files: make(map[uint64]vfs.File),
		done:  make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetDisk attaches the server spindle used for synchronous metadata
// commits.
func (s *Server) SetDisk(d *vfs.Disk) { s.disk = d }

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Volume returns the exported volume (benchmarks attach Waldo to it).
func (s *Server) Volume() *lasagna.FS { return s.vol }

// Close stops the server.
func (s *Server) Close() error {
	close(s.done)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				return
			}
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		rep := s.handle(&req)
		if err := enc.Encode(rep); err != nil {
			return
		}
	}
}

func errName(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, vfs.ErrNotExist):
		return errNotExist
	case errors.Is(err, vfs.ErrExist):
		return errExist
	case errors.Is(err, vfs.ErrIsDir):
		return errIsDir
	case errors.Is(err, vfs.ErrNotDir):
		return errNotDir
	case errors.Is(err, vfs.ErrNotEmpty):
		return errNotEmpty
	case errors.Is(err, vfs.ErrReadOnly):
		return errReadOnly
	case errors.Is(err, lasagna.ErrCrashed):
		return errCrashed
	default:
		return errInvalid
	}
}

func (s *Server) lookupFH(fh uint64) (vfs.File, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[fh]
	return f, ok
}

// lookupPassFH resolves a DPAPI-capable handle.
func (s *Server) lookupPassFH(fh uint64) (vfs.PassFile, bool) {
	f, ok := s.lookupFH(fh)
	if !ok {
		return nil, false
	}
	pf, ok := f.(vfs.PassFile)
	return pf, ok
}

func (s *Server) handle(req *Request) *Reply {
	switch req.Op {
	case OpHandshake:
		if s.vol != nil {
			return &Reply{Vol: s.vol.VolumeID(), Name: s.vol.FSName()}
		}
		return &Reply{Name: s.plain.FSName()}

	case OpOpen:
		if req.Flags&uint32(vfs.OCreate) != 0 {
			s.chargeMetaCommit()
		}
		f, err := s.fs().Open(req.Path, vfs.Flags(req.Flags))
		if err != nil {
			return &Reply{Err: errName(err)}
		}
		s.mu.Lock()
		s.nextFH++
		fh := s.nextFH
		s.files[fh] = f
		s.mu.Unlock()
		rep := &Reply{FH: fh, N: int32(f.Size())}
		if pf, ok := f.(vfs.PassFile); ok {
			rep.Ref = pf.Ref()
		} else {
			rep.Ref = pnode.Ref{PNode: pnode.PNode(f.Ino()), Version: 1}
		}
		return rep

	case OpClose:
		s.mu.Lock()
		f, ok := s.files[req.FH]
		delete(s.files, req.FH)
		s.mu.Unlock()
		if !ok {
			return &Reply{Err: errStaleFH}
		}
		return &Reply{Err: errName(f.Close())}

	case OpRead:
		f, ok := s.lookupFH(req.FH)
		if !ok {
			return &Reply{Err: errStaleFH}
		}
		buf := make([]byte, req.N)
		n, err := f.ReadAt(buf, req.Off)
		if err != nil {
			return &Reply{Err: errName(err)}
		}
		return &Reply{Data: buf[:n], N: int32(n)}

	case OpWrite:
		f, ok := s.lookupFH(req.FH)
		if !ok {
			return &Reply{Err: errStaleFH}
		}
		n, err := f.WriteAt(req.Data, req.Off)
		return &Reply{N: int32(n), Err: errName(err)}

	case OpTruncate:
		f, ok := s.lookupFH(req.FH)
		if !ok {
			return &Reply{Err: errStaleFH}
		}
		return &Reply{Err: errName(f.Truncate(req.Off))}

	case OpMkdir:
		s.chargeMetaCommit()
		return &Reply{Err: errName(s.fs().Mkdir(req.Path))}
	case OpMkdirAll:
		s.chargeMetaCommit()
		return &Reply{Err: errName(s.fs().MkdirAll(req.Path))}
	case OpReadDir:
		ents, err := s.fs().ReadDir(req.Path)
		return &Reply{Ents: ents, Err: errName(err)}
	case OpStat:
		st, err := s.fs().Stat(req.Path)
		return &Reply{St: st, Err: errName(err)}
	case OpRename:
		s.chargeMetaCommit()
		return &Reply{Err: errName(s.fs().Rename(req.Path, req.Path2))}
	case OpRemove:
		s.chargeMetaCommit()
		return &Reply{Err: errName(s.fs().Remove(req.Path))}
	case OpSync:
		return &Reply{Err: errName(s.fs().Sync())}

	case OpPassRead:
		f, ok := s.lookupPassFH(req.FH)
		if !ok {
			return &Reply{Err: errStaleFH}
		}
		buf := make([]byte, req.N)
		n, ref, err := f.PassRead(buf, req.Off)
		if err != nil {
			return &Reply{Err: errName(err)}
		}
		// The read pins the version as observed at the server's
		// analyzer too.
		s.an.Observe(ref)
		return &Reply{Data: buf[:n], N: int32(n), Ref: ref}

	case OpPassWrite:
		return s.handlePassWrite(req)

	case OpBeginTxn:
		if s.vol == nil {
			return &Reply{Err: errNotPass}
		}
		txn := s.nextTxn.Add(1)
		if err := s.vol.Log().AppendBeginTxn(txn); err != nil {
			return &Reply{Err: errName(err)}
		}
		return &Reply{Txn: txn}

	case OpPassProv:
		if s.vol == nil {
			return &Reply{Err: errNotPass}
		}
		b, _, err := record.DecodeBundle(req.Prov)
		if err != nil {
			return &Reply{Err: errInvalid}
		}
		if err := s.applyBundle(req.Txn, b, nil); err != nil {
			return &Reply{Err: errName(err)}
		}
		return &Reply{}

	case OpPassMkobj:
		if s.vol == nil {
			return &Reply{Err: errNotPass}
		}
		ph, err := s.vol.PassMkobj()
		if err != nil {
			return &Reply{Err: errName(err)}
		}
		return &Reply{Ref: ph.Ref()}

	case OpPassReviveObj:
		if s.vol == nil {
			return &Reply{Err: errNotPass}
		}
		ph, err := s.vol.PassReviveObj(req.Ref)
		if err != nil {
			return &Reply{Err: errStaleFH}
		}
		return &Reply{Ref: ph.Ref()}

	default:
		return &Reply{Err: errInvalid}
	}
}

// handlePassWrite applies an OP_PASSWRITE: provenance (with freeze records
// re-applied in order) first, then data, under WAP. If the request is part
// of a transaction, the ENDTXN record closes it ahead of the data.
func (s *Server) handlePassWrite(req *Request) *Reply {
	if s.vol == nil {
		return &Reply{Err: errNotPass}
	}
	if len(req.Data)+len(req.Prov) > MaxChunk {
		return &Reply{Err: errTooBig}
	}
	f, ok := s.lookupPassFH(req.FH)
	if !ok {
		return &Reply{Err: errStaleFH}
	}
	b, _, err := record.DecodeBundle(req.Prov)
	if err != nil {
		return &Reply{Err: errInvalid}
	}
	if err := s.applyBundle(req.Txn, b, f); err != nil {
		return &Reply{Err: errName(err)}
	}
	if req.Txn != 0 {
		if err := s.vol.Log().AppendEndTxn(req.Txn); err != nil {
			return &Reply{Err: errName(err)}
		}
	}
	if len(req.Data) == 0 {
		return &Reply{Ref: f.Ref()}
	}
	if b.Len() > 0 || req.Txn != 0 {
		// WAP: the records this request carried must be durable before
		// its data.
		s.vol.ChargeWAPFlush()
	}
	n, err := f.PassWrite(req.Data, req.Off, nil)
	if err != nil {
		return &Reply{Err: errName(err)}
	}
	return &Reply{N: int32(n), Ref: f.Ref()}
}

// applyBundle walks a bundle in order, re-applying freeze records as
// version increments and running file-subject dependency records through
// the server-side analyzer before they reach the log.
func (s *Server) applyBundle(txn uint64, b *record.Bundle, file vfs.PassFile) error {
	if b == nil {
		return nil
	}
	log := s.vol.Log()
	for _, r := range b.Records {
		if r.Attr == record.AttrFreeze {
			if _, err := s.vol.FreezePnode(r.Subject.PNode); err != nil {
				return err
			}
			continue
		}
		out := []record.Record{r}
		if s.ownsSubject(r.Subject.PNode) {
			node := &serverNode{vol: s.vol, pn: r.Subject.PNode}
			var err error
			out, err = s.an.Process(node, rewriteToCurrent(r, s.vol))
			if err != nil {
				return err
			}
		}
		for _, rr := range out {
			if err := log.AppendRecord(txn, rr); err != nil {
				return err
			}
		}
		s.vol.ChargeRecords(len(out))
	}
	return nil
}

// ownsSubject reports whether the pnode belongs to this volume's space.
func (s *Server) ownsSubject(pn pnode.PNode) bool {
	return pnode.VolumePrefix(pn) == s.vol.VolumeID() && s.vol.CurrentVersion(pn) != 0
}

// rewriteToCurrent pins a record's subject to the server's current version
// of the object — a client using close-to-open consistency may lag behind
// another client's freezes (§6.1.2's version branching caveat).
func rewriteToCurrent(r record.Record, vol *lasagna.FS) record.Record {
	cur := vol.CurrentVersion(r.Subject.PNode)
	if cur > r.Subject.Version {
		r.Subject.Version = cur
	}
	return r
}

// serverNode adapts a volume object to the server analyzer.
type serverNode struct {
	vol *lasagna.FS
	pn  pnode.PNode
}

func (n *serverNode) Ref() pnode.Ref {
	return pnode.Ref{PNode: n.pn, Version: n.vol.CurrentVersion(n.pn)}
}

func (n *serverNode) Freeze() (pnode.Version, error) { return n.vol.FreezePnode(n.pn) }
