package nfs

import (
	"fmt"
	"sync"
	"testing"

	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// TestConcurrentClientsStress runs several PA-NFS clients against one
// server concurrently: distinct files per client plus one shared file
// everyone appends dependencies to. The server-side analyzer must keep the
// merged stream consistent (§6.1.1's reason for having one there).
func TestConcurrentClientsStress(t *testing.T) {
	srv := newTestServer(t)
	const clients = 6
	const writes = 40

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := DialPass(srv.Addr(), nil, DefaultNetCost())
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			own, err := cli.Open(fmt.Sprintf("/own%d", c), vfs.OCreate|vfs.ORdWr)
			if err != nil {
				errs <- err
				return
			}
			pf := own.(vfs.PassFile)
			// At this layer there is no observer above us, so the
			// "application" (this test) discloses the names itself.
			if _, err := pf.PassWrite(nil, 0, record.NewBundle(
				record.New(pf.Ref(), record.AttrName, record.StringVal(fmt.Sprintf("/own%d", c))),
			)); err != nil {
				errs <- err
				return
			}
			shared, err := cli.Open("/shared", vfs.OCreate|vfs.ORdWr)
			if err != nil {
				errs <- err
				return
			}
			spf := shared.(vfs.PassFile)
			if _, err := spf.PassWrite(nil, 0, record.NewBundle(
				record.New(spf.Ref(), record.AttrName, record.StringVal("/shared")),
			)); err != nil {
				errs <- err
				return
			}
			proc := transientRef(uint64(c + 1))
			for i := 0; i < writes; i++ {
				if _, err := pf.PassWrite([]byte("x"), int64(i), record.NewBundle(record.Input(pf.Ref(), proc))); err != nil {
					errs <- fmt.Errorf("client %d own write %d: %w", c, i, err)
					return
				}
				if i%8 == 0 {
					if _, err := spf.PassWrite([]byte("s"), int64(c), record.NewBundle(record.Input(spf.Ref(), proc))); err != nil {
						errs <- fmt.Errorf("client %d shared write: %w", c, err)
						return
					}
					if i%16 == 0 {
						if _, err := spf.PassFreeze(); err != nil {
							errs <- err
							return
						}
					}
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	w := waldo.New()
	w.Attach(srv.Volume())
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	db := w.DB
	// Every client's file exists with exactly one dependency on its proc
	// per version set (dedup at both analyzers).
	for c := 0; c < clients; c++ {
		pns := db.ByName(fmt.Sprintf("/own%d", c))
		if len(pns) != 1 {
			t.Fatalf("client %d file identity count = %d", c, len(pns))
		}
	}
	// The shared file has a consistent, acyclic version history.
	shared := db.ByName("/shared")
	if len(shared) != 1 {
		t.Fatalf("shared identities = %d", len(shared))
	}
	versions := db.Versions(shared[0])
	if len(versions) == 0 {
		t.Fatal("shared file lost its versions")
	}
	for _, v := range versions {
		for _, ref := range db.Inputs(refv(shared[0], v)) {
			if ref.PNode == shared[0] && ref.Version >= v {
				t.Fatalf("version chain goes forward: v%d ← v%d", v, ref.Version)
			}
		}
	}
}

func transientRef(n uint64) pnode.Ref {
	return pnode.Ref{PNode: pnode.PNode(0xFFFF<<48 | n), Version: 1}
}

func refv(pn pnode.PNode, v pnode.Version) pnode.Ref {
	return pnode.Ref{PNode: pn, Version: v}
}
