package observer

import (
	"testing"

	"passv2/internal/lasagna"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// TestDiscloseForeignPersistentSubject covers the staticNode path: an
// application discloses a record about a persistent object it holds no
// handle to (another file on the same volume). The record must land on
// that object's volume.
func TestDiscloseForeignPersistentSubject(t *testing.T) {
	r := newRig(t)
	p := r.k.Spawn(nil, "annotator", nil, nil)
	// Create the foreign file first.
	ffd, _ := p.Open("/data/foreign", vfs.OCreate|vfs.ORdWr)
	kffd, _ := p.FDGet(ffd)
	foreignRef := kffd.PassFile().Ref()
	p.Close(ffd)

	// Disclose about it through a different descriptor.
	fd, _ := p.Open("/data/mine", vfs.OCreate|vfs.ORdWr)
	if _, err := p.PassWriteFd(fd, []byte("data"), record.NewBundle(
		record.New(foreignRef, record.Attr("ANNOTATION"), record.StringVal("reviewed")),
	)); err != nil {
		t.Fatal(err)
	}
	db := r.drain(t)
	vals := db.AttrValues(foreignRef, record.Attr("ANNOTATION"))
	if len(vals) != 1 {
		t.Fatalf("foreign annotation missing: %v", vals)
	}
}

// TestDiscloseOnNonPassDescriptor: records about persistent subjects are
// routed to their owning volume even when the write target is a plain
// file; transient-subject records are cached.
func TestDiscloseOnNonPassDescriptor(t *testing.T) {
	r := newRig(t)
	p := r.k.Spawn(nil, "app", nil, nil)
	// A PASS file to be the subject.
	pfd, _ := p.Open("/data/target", vfs.OCreate|vfs.ORdWr)
	kpfd, _ := p.FDGet(pfd)
	targetRef := kpfd.PassFile().Ref()
	p.Close(pfd)

	// Disclose through a ROOT (non-PASS) descriptor.
	fd, _ := p.Open("/plain", vfs.OCreate|vfs.ORdWr)
	if _, err := p.PassWriteFd(fd, []byte("plain-data"), record.NewBundle(
		record.New(targetRef, record.Attr("TAG"), record.StringVal("v1.0")),
	)); err != nil {
		t.Fatal(err)
	}
	db := r.drain(t)
	if vals := db.AttrValues(targetRef, record.Attr("TAG")); len(vals) != 1 {
		t.Fatalf("TAG record not routed to owning volume: %v", vals)
	}
	// The plain file got its data.
	root := r.k.Mounts.FSAt("/")
	got, _ := vfs.ReadFile(root, "/plain")
	if string(got) != "plain-data" {
		t.Fatalf("plain data = %q", got)
	}
}

// TestRenameOnNonPassVolume keeps the transient identity's NAME fresh.
func TestRenameOnNonPassVolume(t *testing.T) {
	r := newRig(t)
	p := r.k.Spawn(nil, "mv", nil, nil)
	fd, _ := p.Open("/old-name", vfs.OCreate|vfs.ORdWr)
	p.Write(fd, []byte("x"))
	p.Close(fd)
	if err := p.Rename("/old-name", "/new-name"); err != nil {
		t.Fatal(err)
	}
	// Copy it into the PASS volume so the transient identity (with both
	// names) materializes.
	src, _ := p.Open("/new-name", vfs.ORdOnly)
	buf := make([]byte, 8)
	n, _ := p.Read(src, buf)
	p.Close(src)
	dst, _ := p.Open("/data/copy", vfs.OCreate|vfs.ORdWr)
	p.Write(dst, buf[:n])
	p.Close(dst)

	db := r.drain(t)
	if len(db.ByName("/new-name")) != 1 {
		t.Fatal("renamed transient file not findable by new name")
	}
}

// TestTwoVolumesCrossReference: a process reads from volume A and writes
// to volume B; B's ancestry reaches A's file through the merged databases.
func TestTwoVolumesCrossReference(t *testing.T) {
	clk := &vfs.Clock{}
	kern := newRig(t)
	volB, err := lasagna.New("pass2", lasagna.Config{Lower: vfs.NewMemFS("lower2", nil), VolumeID: 2})
	if err != nil {
		t.Fatal(err)
	}
	kern.k.Mount("/data2", volB)
	kern.o.RegisterVolume(volB)
	wB := waldo.New()
	wB.Attach(volB)
	_ = clk

	p := kern.k.Spawn(nil, "mover", nil, nil)
	in, _ := p.Open("/data/source", vfs.OCreate|vfs.ORdWr)
	p.Write(in, []byte("payload"))
	p.Seek(in, 0, 0)
	buf := make([]byte, 16)
	n, _ := p.Read(in, buf)
	p.Close(in)
	out, _ := p.Open("/data2/dest", vfs.OCreate|vfs.ORdWr)
	p.Write(out, buf[:n])
	p.Close(out)

	dbA := kern.drain(t)
	if err := wB.Drain(); err != nil {
		t.Fatal(err)
	}
	dbB := wB.DB

	dests := dbB.ByName("/data2/dest")
	if len(dests) != 1 {
		t.Fatal("dest missing on volume B")
	}
	v, _ := dbB.LatestVersion(dests[0])
	// Walk B's edges, falling back to A's for cross-volume nodes.
	seen := map[pnode.Ref]bool{}
	stack := []pnode.Ref{{PNode: dests[0], Version: v}}
	foundSource := false
	for len(stack) > 0 {
		nref := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[nref] {
			continue
		}
		seen[nref] = true
		if name, ok := dbA.NameOf(nref.PNode); ok && name == "/data/source" {
			foundSource = true
		}
		stack = append(stack, dbB.Inputs(nref)...)
		stack = append(stack, dbA.Inputs(nref)...)
	}
	if !foundSource {
		t.Fatal("cross-volume ancestry broken: /data/source unreachable from /data2/dest")
	}
}

// TestObserverStatsExposed sanity-checks the exported stats surfaces.
func TestObserverStatsExposed(t *testing.T) {
	r := newRig(t)
	p := r.k.Spawn(nil, "w", nil, nil)
	fd, _ := p.Open("/data/f", vfs.OCreate|vfs.ORdWr)
	p.Write(fd, []byte("x"))
	p.Close(fd)
	if st := r.o.Analyzer().Stats(); st.Records == 0 {
		t.Fatal("analyzer saw nothing")
	}
	cached, flushed := r.o.Distributor().Stats()
	if cached == 0 || flushed == 0 {
		t.Fatalf("distributor stats = %d/%d", cached, flushed)
	}
}
