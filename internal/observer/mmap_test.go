package observer

import (
	"sync"
	"testing"
	"time"

	"passv2/internal/pnode"
	"passv2/internal/vfs"
)

func TestMmapReadableCreatesDependency(t *testing.T) {
	r := newRig(t)
	p := r.k.Spawn(nil, "mapper", nil, nil)
	fd, _ := p.Open("/data/lib.so", vfs.OCreate|vfs.ORdWr)
	p.Write(fd, []byte("code"))
	if err := p.Mmap(fd, false); err != nil {
		t.Fatal(err)
	}
	// The process now depends on the file; write an output to
	// materialize the proc's provenance.
	out, _ := p.Open("/data/out", vfs.OCreate|vfs.ORdWr)
	p.Write(out, []byte("x"))
	db := r.drain(t)
	oPN := db.ByName("/data/out")[0]
	ov, _ := db.LatestVersion(oPN)
	anc := collectAncestors(db, pnode.Ref{PNode: oPN, Version: ov})
	found := false
	for ref := range anc {
		if name, ok := db.NameOf(ref.PNode); ok && name == "/data/lib.so" {
			found = true
		}
	}
	if !found {
		t.Fatal("mmapped file missing from ancestry")
	}
}

func TestMmapWritableCreatesBothDependencies(t *testing.T) {
	r := newRig(t)
	p := r.k.Spawn(nil, "mapper", nil, nil)
	fd, _ := p.Open("/data/shared.dat", vfs.OCreate|vfs.ORdWr)
	p.Write(fd, []byte("init"))
	if err := p.Mmap(fd, true); err != nil {
		t.Fatal(err)
	}
	db := r.drain(t)
	fPN := db.ByName("/data/shared.dat")[0]
	fv, _ := db.LatestVersion(fPN)
	// The file must depend on the process (writable mapping).
	inputs := db.Inputs(pnode.Ref{PNode: fPN, Version: fv})
	procDep := false
	for _, in := range inputs {
		if typ, ok := db.TypeOf(in.PNode); ok && typ == "PROC" {
			procDep = true
		}
	}
	if !procDep {
		t.Fatalf("writable mmap did not create file←proc dependency: %v", inputs)
	}
}

func TestMmapOnPipeRejected(t *testing.T) {
	r := newRig(t)
	p := r.k.Spawn(nil, "mapper", nil, nil)
	pr, _, _ := p.Pipe()
	if err := p.Mmap(pr, false); err == nil {
		t.Fatal("mmap of a pipe must fail")
	}
}

// TestConcurrentProcessesSafe hammers the observer from several goroutines
// to shake out data races (run with -race).
func TestConcurrentProcessesSafe(t *testing.T) {
	r := newRig(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := r.k.Spawn(nil, "worker", nil, nil)
			defer p.Exit()
			path := "/data/w" + string(rune('a'+i))
			for n := 0; n < 50; n++ {
				fd, err := p.Open(path, vfs.OCreate|vfs.ORdWr)
				if err != nil {
					t.Error(err)
					return
				}
				p.Write(fd, []byte("chunk"))
				buf := make([]byte, 8)
				p.Seek(fd, 0, 0)
				p.Read(fd, buf)
				p.Close(fd)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent workload deadlocked")
	}
	db := r.drain(t)
	if len(db.ByType("FILE")) < 8 {
		t.Fatal("missing files after concurrent run")
	}
}
