// Package observer implements the PASSv2 observer (§5.3): it translates
// system-call events delivered by the kernel interceptor into provenance
// records — a process that reads a file gains a dependency on it, a file
// that is written gains a dependency on the writer — and it is the entry
// point for provenance-aware applications that disclose provenance
// explicitly through the DPAPI. Records flow observer → analyzer
// (duplicate elimination, cycle avoidance) → distributor (transient
// caching) → Lasagna (WAP log).
package observer

import (
	"fmt"
	"strings"
	"sync"

	"passv2/internal/analyzer"
	"passv2/internal/distributor"
	"passv2/internal/dpapi"
	"passv2/internal/kernel"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// Observer wires the interceptor to the provenance pipeline. Install it
// with kernel.SetHooks.
type Observer struct {
	k    *kernel.Kernel
	an   *analyzer.Analyzer
	dist *distributor.Distributor

	mu       sync.Mutex
	nodes    map[pnode.PNode]*transNode // all transient objects
	fileIDs  map[fileKey]pnode.Ref      // non-PASS file identities
	phantoms map[pnode.PNode]*phantomState
	remote   dpapi.Layer // optional lower layer for phantom objects
}

type fileKey struct {
	fs  vfs.FS
	ino uint64
}

// New creates an observer for k and installs it as the kernel's hooks.
func New(k *kernel.Kernel) *Observer {
	o := &Observer{
		k:        k,
		an:       analyzer.New(),
		dist:     distributor.New(0xFFFF),
		nodes:    make(map[pnode.PNode]*transNode),
		fileIDs:  make(map[fileKey]pnode.Ref),
		phantoms: make(map[pnode.PNode]*phantomState),
	}
	k.SetHooks(o)
	return o
}

// SetPhantomLayer stacks this observer on a lower DPAPI layer for phantom
// objects: pass_mkobj and pass_reviveobj are delegated to it, so the
// objects a process creates live in that layer (e.g. a remote passd
// daemon via passd.Client) instead of in the local distributor cache.
// This is §5.2's layer stacking applied at the phantom boundary — the
// components above (Kepler recorders, the Python runtime) are unchanged.
// Pass nil to restore local phantoms.
func (o *Observer) SetPhantomLayer(l dpapi.Layer) {
	o.mu.Lock()
	o.remote = l
	o.mu.Unlock()
}

func (o *Observer) phantomLayer() dpapi.Layer {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.remote
}

// Analyzer exposes the analyzer (stats, tests).
func (o *Observer) Analyzer() *analyzer.Analyzer { return o.an }

// Distributor exposes the distributor (stats, tests).
func (o *Observer) Distributor() *distributor.Distributor { return o.dist }

// RegisterVolume announces a PASS volume so the distributor can
// materialize provenance onto it.
func (o *Observer) RegisterVolume(s distributor.Sink) { o.dist.RegisterSink(s) }

// --- node plumbing ---

// transNode is the analyzer's view of a transient object (process, pipe,
// non-PASS file, phantom). Freezing is local version arithmetic.
type transNode struct {
	mu  sync.Mutex
	ref pnode.Ref
}

func (n *transNode) Ref() pnode.Ref {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ref
}

func (n *transNode) Freeze() (pnode.Version, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ref.Version++
	return n.ref.Version, nil
}

// passNode adapts a vfs.PassFile to the analyzer.
type passNode struct{ pf vfs.PassFile }

func (n passNode) Ref() pnode.Ref                 { return n.pf.Ref() }
func (n passNode) Freeze() (pnode.Version, error) { return n.pf.PassFreeze() }

// staticNode stands in for a persistent object we hold no handle to (a
// foreign subject in a disclosed bundle). It cannot be frozen.
type staticNode struct{ ref pnode.Ref }

func (n staticNode) Ref() pnode.Ref { return n.ref }
func (n staticNode) Freeze() (pnode.Version, error) {
	return 0, fmt.Errorf("observer: cannot freeze foreign object %v", n.ref)
}

// transNodeFor returns the singleton node for a transient ref.
func (o *Observer) transNodeFor(ref pnode.Ref) *transNode {
	o.mu.Lock()
	defer o.mu.Unlock()
	n, ok := o.nodes[ref.PNode]
	if !ok {
		n = &transNode{ref: ref}
		o.nodes[ref.PNode] = n
	}
	return n
}

// fileNodeFor returns the transient identity node of a non-PASS file.
func (o *Observer) fileNodeFor(fs vfs.FS, ino uint64) *transNode {
	o.mu.Lock()
	key := fileKey{fs: fs, ino: ino}
	ref, ok := o.fileIDs[key]
	o.mu.Unlock()
	if !ok {
		ref = o.k.AllocTransient()
		o.mu.Lock()
		if prev, raced := o.fileIDs[key]; raced {
			ref = prev
		} else {
			o.fileIDs[key] = ref
		}
		o.mu.Unlock()
	}
	return o.transNodeFor(ref)
}

// sinkFor resolves the PASS volume behind a descriptor.
func (o *Observer) sinkFor(fd *kernel.FD) distributor.Sink {
	fs, _, err := o.k.Resolve(fd.Path)
	if err != nil {
		return nil
	}
	s, _ := fs.(distributor.Sink)
	return s
}

// cacheTransient runs records about a transient subject through the
// analyzer and caches the survivors.
func (o *Observer) cacheTransient(subject analyzer.Node, recs ...record.Record) {
	out, err := o.an.Process(subject, recs...)
	if err != nil || len(out) == 0 {
		return
	}
	o.dist.Cache(out...)
}

// --- kernel.Hooks ---

// Spawn records a new process: identity records plus descent from the
// parent.
func (o *Observer) Spawn(p, parent *kernel.Process) {
	node := o.transNodeFor(p.Ref())
	ref := node.Ref()
	recs := processIdentity(ref, p)
	if parent != nil {
		recs = append(recs, record.Input(ref, o.transNodeFor(parent.Ref()).Ref()))
	}
	o.cacheTransient(node, recs...)
}

func processIdentity(ref pnode.Ref, p *kernel.Process) []record.Record {
	recs := []record.Record{
		record.New(ref, record.AttrType, record.StringVal(record.TypeProc)),
		record.New(ref, record.AttrName, record.StringVal(p.Name)),
	}
	if len(p.Argv) > 0 {
		recs = append(recs, record.New(ref, record.AttrArgv, record.StringVal(strings.Join(p.Argv, " "))))
	}
	if len(p.Env) > 0 {
		recs = append(recs, record.New(ref, record.AttrEnv, record.StringVal(strings.Join(p.Env, " "))))
	}
	return recs
}

// Exec records the image replacement: the fresh identity descends from the
// old identity and from the binary.
func (o *Observer) Exec(p *kernel.Process, oldRef pnode.Ref, binPath string, bin vfs.PassFile, binFS vfs.FS) {
	node := o.transNodeFor(p.Ref())
	ref := node.Ref()
	recs := processIdentity(ref, p)
	recs = append(recs, record.Input(ref, o.transNodeFor(oldRef).Ref()))
	switch {
	case bin != nil:
		recs = append(recs, record.Input(ref, bin.Ref()))
	case binFS != nil:
		if _, rel, err := o.k.Resolve(binPath); err == nil {
			if st, serr := binFS.Stat(rel); serr == nil && !st.IsDir {
				recs = append(recs, record.Input(ref, o.fileNodeFor(binFS, st.Ino).Ref()))
			}
		}
	}
	o.cacheTransient(node, recs...)
}

// Exit: a process's cached provenance stays in the distributor; nothing to
// do until someone depends on it.
func (o *Observer) Exit(p *kernel.Process) {}

// Open names the file. For PASS files the identity records go straight to
// the volume; for others they are cached.
func (o *Observer) Open(p *kernel.Process, fd *kernel.FD) {
	if pf := fd.PassFile(); pf != nil {
		node := passNode{pf}
		recs := []record.Record{
			record.New(node.Ref(), record.AttrName, record.StringVal(fd.Path)),
			record.New(node.Ref(), record.AttrType, record.StringVal(record.TypeFile)),
		}
		out, err := o.an.Process(node, recs...)
		if err != nil || len(out) == 0 {
			return
		}
		sink := o.sinkFor(fd)
		if sink == nil {
			return
		}
		b := o.dist.BundleFor(sink, out)
		pf.PassWrite(nil, 0, b)
		return
	}
	node := o.fileNodeFor(o.fsOf(fd), fd.File().Ino())
	o.cacheTransient(node,
		record.New(node.Ref(), record.AttrName, record.StringVal(fd.Path)),
		record.New(node.Ref(), record.AttrType, record.StringVal(record.TypeFile)),
	)
}

func (o *Observer) fsOf(fd *kernel.FD) vfs.FS {
	fs, _, err := o.k.Resolve(fd.Path)
	if err != nil {
		return nil
	}
	return fs
}

// Read performs the read and records the process→file dependency.
func (o *Observer) Read(p *kernel.Process, fd *kernel.FD, buf []byte, off int64) (int, error) {
	n, ref, err := o.readInternal(fd, buf, off)
	if err == nil {
		procNode := o.transNodeFor(p.Ref())
		o.cacheTransient(procNode, record.Input(procNode.Ref(), ref))
	}
	return n, err
}

// PassRead is the user-level pass_read: same dependency, and the exact
// identity goes back to the caller.
func (o *Observer) PassRead(p *kernel.Process, fd *kernel.FD, buf []byte, off int64) (int, pnode.Ref, error) {
	n, ref, err := o.readInternal(fd, buf, off)
	if err == nil {
		procNode := o.transNodeFor(p.Ref())
		o.cacheTransient(procNode, record.Input(procNode.Ref(), ref))
	}
	return n, ref, err
}

func (o *Observer) readInternal(fd *kernel.FD, buf []byte, off int64) (int, pnode.Ref, error) {
	if pf := fd.PassFile(); pf != nil {
		return pf.PassRead(buf, off)
	}
	n, err := fd.File().ReadAt(buf, off)
	if err != nil {
		return n, pnode.Ref{}, err
	}
	node := o.fileNodeFor(o.fsOf(fd), fd.File().Ino())
	return n, node.Ref(), nil
}

// Write performs the write with its provenance: the file depends on the
// writing process, and the bundle carries the materialized closure of the
// process's own ancestry (distributor) ahead of the data (WAP).
func (o *Observer) Write(p *kernel.Process, fd *kernel.FD, data []byte, off int64) (int, error) {
	procNode := o.transNodeFor(p.Ref())
	if pf := fd.PassFile(); pf != nil {
		node := passNode{pf}
		out, err := o.an.Process(node, record.Input(node.Ref(), procNode.Ref()))
		if err != nil {
			return 0, err
		}
		var b *record.Bundle
		if sink := o.sinkFor(fd); sink != nil {
			b = o.dist.BundleFor(sink, out)
		} else {
			b = record.NewBundle(out...)
		}
		return pf.PassWrite(data, off, b)
	}
	node := o.fileNodeFor(o.fsOf(fd), fd.File().Ino())
	o.cacheTransient(node, record.Input(node.Ref(), procNode.Ref()))
	return fd.File().WriteAt(data, off)
}

// PipeRead / PipeWrite track data flow through pipes, which are transient
// first-class objects (§5.5).
func (o *Observer) PipeRead(p *kernel.Process, pipe *kernel.Pipe, n int) {
	if pipe == nil || n <= 0 {
		return
	}
	procNode := o.transNodeFor(p.Ref())
	pipeNode := o.transNodeFor(pipe.Ref())
	o.cacheTransient(procNode, record.Input(procNode.Ref(), pipeNode.Ref()))
}

func (o *Observer) PipeWrite(p *kernel.Process, pipe *kernel.Pipe, n int) {
	if pipe == nil || n <= 0 {
		return
	}
	procNode := o.transNodeFor(p.Ref())
	pipeNode := o.transNodeFor(pipe.Ref())
	ensureType(o, pipeNode, record.TypePipe)
	o.cacheTransient(pipeNode, record.Input(pipeNode.Ref(), procNode.Ref()))
}

func ensureType(o *Observer, n *transNode, typ string) {
	o.cacheTransient(n, record.New(n.Ref(), record.AttrType, record.StringVal(typ)))
}

// Mmap: a readable mapping is a read, a writable mapping is also a write.
func (o *Observer) Mmap(p *kernel.Process, fd *kernel.FD, writable bool) {
	procNode := o.transNodeFor(p.Ref())
	if pf := fd.PassFile(); pf != nil {
		o.cacheTransient(procNode, record.Input(procNode.Ref(), pf.Ref()))
		if writable {
			node := passNode{pf}
			out, err := o.an.Process(node, record.Input(node.Ref(), procNode.Ref()))
			if err == nil && len(out) > 0 {
				if sink := o.sinkFor(fd); sink != nil {
					pf.PassWrite(nil, 0, o.dist.BundleFor(sink, out))
				}
			}
		}
		return
	}
	node := o.fileNodeFor(o.fsOf(fd), fd.File().Ino())
	o.cacheTransient(procNode, record.Input(procNode.Ref(), node.Ref()))
	if writable {
		o.cacheTransient(node, record.Input(node.Ref(), procNode.Ref()))
	}
}

// Rename refreshes the renamed object's NAME record so queries by the new
// name find it (the file's pnode is unchanged; only its user-meaningful
// name moved).
func (o *Observer) Rename(p *kernel.Process, fs vfs.FS, oldPath, newPath string) {
	if pfs, ok := fs.(vfs.PassFS); ok {
		_, rel, err := o.k.Resolve(newPath)
		if err != nil {
			return
		}
		f, err := pfs.Open(rel, vfs.ORdOnly)
		if err != nil {
			return
		}
		defer f.Close()
		pf, ok := f.(vfs.PassFile)
		if !ok {
			return
		}
		node := passNode{pf}
		out, err := o.an.Process(node, record.New(node.Ref(), record.AttrName, record.StringVal(newPath)))
		if err != nil || len(out) == 0 {
			return
		}
		pf.PassWrite(nil, 0, record.NewBundle(out...))
		return
	}
	if st, err := fs.Stat(strings.TrimPrefix(newPath, mountPrefix(o, fs, newPath))); err == nil && !st.IsDir {
		node := o.fileNodeFor(fs, st.Ino)
		o.cacheTransient(node, record.New(node.Ref(), record.AttrName, record.StringVal(newPath)))
	}
}

// mountPrefix finds the mount prefix of fs for path resolution.
func mountPrefix(o *Observer, fs vfs.FS, path string) string {
	for _, prefix := range o.k.Mounts.Mounts() {
		if o.k.Mounts.FSAt(prefix) == fs {
			if prefix == "/" {
				return ""
			}
			return prefix
		}
	}
	return ""
}

// DropInode discards cached provenance of an unlinked non-PASS file that
// nothing persistent ever depended on.
func (o *Observer) DropInode(fs vfs.FS, path string, st vfs.Stat) {
	if vfs.IsPass(fs) {
		return // Lasagna owns PASS file identity.
	}
	o.mu.Lock()
	key := fileKey{fs: fs, ino: st.Ino}
	ref, ok := o.fileIDs[key]
	if ok {
		delete(o.fileIDs, key)
	}
	o.mu.Unlock()
	if ok {
		o.dist.Drop(ref.PNode)
	}
}

// Disclose is the DPAPI entry point for provenance-aware applications: an
// explicit bundle, optionally with data, directed at a descriptor. The
// observer adds the implicit application→file dependency, runs everything
// through the analyzer grouped by subject, and routes records by subject
// kind (§5.3).
func (o *Observer) Disclose(p *kernel.Process, fd *kernel.FD, data []byte, off int64, b *record.Bundle) (int, error) {
	procNode := o.transNodeFor(p.Ref())
	pf := fd.PassFile()

	var persistentOut []record.Record
	process := func(subjectRef pnode.Ref, recs []record.Record) error {
		node := o.nodeForSubject(subjectRef, pf)
		out, err := o.an.Process(node, recs...)
		if err != nil {
			return err
		}
		if o.dist.IsTransient(subjectRef.PNode) {
			o.dist.Cache(out...)
			return nil
		}
		persistentOut = append(persistentOut, out...)
		return nil
	}

	if b != nil {
		// Group by subject, preserving order within each group.
		order, groups := record.GroupBySubject(b.Records)
		for _, pn := range order {
			if err := process(groups[pn][0].Subject, groups[pn]); err != nil {
				return 0, err
			}
		}
	}
	// Implicit dependency: the disclosed data (if any) descends from the
	// disclosing process.
	if pf != nil && len(data) > 0 {
		node := passNode{pf}
		out, err := o.an.Process(node, record.Input(node.Ref(), procNode.Ref()))
		if err != nil {
			return 0, err
		}
		persistentOut = append(persistentOut, out...)
	}

	if pf != nil {
		var bundle *record.Bundle
		if sink := o.sinkFor(fd); sink != nil {
			bundle = o.dist.BundleFor(sink, persistentOut)
		} else {
			bundle = record.NewBundle(persistentOut...)
		}
		return pf.PassWrite(data, off, bundle)
	}
	// Non-PASS descriptor: persistent-subject records still belong to
	// their own volumes; data is written plainly.
	if len(persistentOut) > 0 {
		if err := o.routeToOwningVolumes(persistentOut); err != nil {
			return 0, err
		}
	}
	if len(data) == 0 {
		return 0, nil
	}
	if fd.File() == nil {
		return 0, kernel.ErrNotFile
	}
	n, err := fd.File().WriteAt(data, off)
	if err == nil {
		node := o.fileNodeFor(o.fsOf(fd), fd.File().Ino())
		o.cacheTransient(node, record.Input(node.Ref(), procNode.Ref()))
	}
	return n, err
}

func (o *Observer) nodeForSubject(ref pnode.Ref, pf vfs.PassFile) analyzer.Node {
	if pf != nil && pf.Ref().PNode == ref.PNode {
		return passNode{pf}
	}
	o.mu.Lock()
	if st, ok := o.phantoms[ref.PNode]; ok {
		o.mu.Unlock()
		return st.node
	}
	o.mu.Unlock()
	if o.dist.IsTransient(ref.PNode) {
		return o.transNodeFor(ref)
	}
	return staticNode{ref: ref}
}

// routeToOwningVolumes delivers records about persistent subjects to the
// volume owning each subject's pnode space.
func (o *Observer) routeToOwningVolumes(recs []record.Record) error {
	// Group by volume prefix.
	byVol := make(map[uint16][]record.Record)
	for _, r := range recs {
		byVol[pnode.VolumePrefix(r.Subject.PNode)] = append(byVol[pnode.VolumePrefix(r.Subject.PNode)], r)
	}
	for vol, group := range byVol {
		sink := o.sinkByID(vol)
		if sink == nil {
			return fmt.Errorf("observer: no volume registered for prefix %#x", vol)
		}
		b := o.dist.BundleFor(sink, group)
		if err := sink.AppendProvenance(b.Records); err != nil {
			return err
		}
	}
	return nil
}

func (o *Observer) sinkByID(id uint16) distributor.Sink {
	for _, prefix := range o.k.Mounts.Mounts() {
		fs := o.k.Mounts.FSAt(prefix)
		if s, ok := fs.(distributor.Sink); ok && s.VolumeID() == id {
			return s
		}
	}
	return nil
}

// Mkobj creates a phantom object (user-level pass_mkobj): a transient
// object the distributor will place on volumeHint's volume (or wherever
// its first persistent descendant lives). With a phantom layer stacked
// below (SetPhantomLayer), creation is delegated there and the object's
// provenance lives in that layer — the hint is moot, since the lower
// layer owns placement.
func (o *Observer) Mkobj(p *kernel.Process, volumeHint string) (dpapi.Object, error) {
	if l := o.phantomLayer(); l != nil {
		return l.PassMkobj()
	}
	ref := o.k.AllocTransient()
	node := o.transNodeFor(ref)
	st := &phantomState{node: node}
	o.mu.Lock()
	o.phantoms[ref.PNode] = st
	o.mu.Unlock()
	if volumeHint != "" {
		if fs, _, err := o.k.Resolve(volumeHint); err == nil {
			if s, ok := fs.(distributor.Sink); ok {
				o.dist.SetHint(ref.PNode, s.VolumeID())
			}
		}
	}
	return &phantomObj{o: o, st: st}, nil
}

// Revive returns a fresh handle to a previously created phantom object
// (pass_reviveobj) — the object outlives its handles, so reviving works
// after the creating handle was closed. A reference outside this layer's
// transient pnode space belongs to the stacked phantom layer when one is
// present, and is ErrWrongLayer otherwise; an unknown pnode inside our
// space is ErrStale.
func (o *Observer) Revive(p *kernel.Process, ref pnode.Ref) (dpapi.Object, error) {
	if !o.dist.IsTransient(ref.PNode) {
		if l := o.phantomLayer(); l != nil {
			return l.PassReviveObj(ref)
		}
		return nil, dpapi.ErrWrongLayer
	}
	o.mu.Lock()
	st, ok := o.phantoms[ref.PNode]
	o.mu.Unlock()
	if !ok {
		return nil, dpapi.ErrStale
	}
	return &phantomObj{o: o, st: st}, nil
}

var _ kernel.Hooks = (*Observer)(nil)
