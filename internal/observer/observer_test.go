package observer

import (
	"testing"

	"passv2/internal/kernel"
	"passv2/internal/lasagna"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// rig is a full local PASSv2 machine: kernel + observer + one Lasagna
// volume at /data + a plain MemFS root + Waldo.
type rig struct {
	k   *kernel.Kernel
	o   *Observer
	vol *lasagna.FS
	w   *waldo.Waldo
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clk := &vfs.Clock{}
	k := kernel.New(clk)
	root := vfs.NewMemFS("root", nil)
	k.Mount("/", root)
	lower := vfs.NewMemFS("lower", nil)
	vol, err := lasagna.New("pass0", lasagna.Config{Lower: lower, VolumeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	k.Mount("/data", vol)
	o := New(k)
	o.RegisterVolume(vol)
	w := waldo.New()
	w.Attach(vol)
	return &rig{k: k, o: o, vol: vol, w: w}
}

func (r *rig) drain(t *testing.T) *waldo.DB {
	t.Helper()
	if err := r.w.Drain(); err != nil {
		t.Fatal(err)
	}
	return r.w.DB
}

func TestWriteCreatesAncestryOnVolume(t *testing.T) {
	r := newRig(t)
	p := r.k.Spawn(nil, "writer", []string{"writer", "-o", "out"}, []string{"LANG=C"})
	fd, err := p.Open("/data/out.txt", vfs.OCreate|vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(fd, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	p.Close(fd)
	db := r.drain(t)

	files := db.ByName("/data/out.txt")
	if len(files) != 1 {
		t.Fatalf("file not in DB: %v", files)
	}
	filePN := files[0]
	v, _ := db.LatestVersion(filePN)
	inputs := db.Inputs(pnode.Ref{PNode: filePN, Version: v})
	if len(inputs) != 1 {
		t.Fatalf("inputs = %v", inputs)
	}
	procRef := inputs[0]
	// The process's identity records were materialized to the volume.
	if name, ok := db.NameOf(procRef.PNode); !ok || name != "writer" {
		t.Fatalf("proc name = %q,%v", name, ok)
	}
	if typ, ok := db.TypeOf(procRef.PNode); !ok || typ != record.TypeProc {
		t.Fatalf("proc type = %q", typ)
	}
	vals := db.AttrValues(procRef, record.AttrArgv)
	if len(vals) != 1 {
		t.Fatal("ARGV not materialized")
	}
	if s, _ := vals[0].AsString(); s != "writer -o out" {
		t.Fatalf("ARGV = %q", s)
	}
}

func TestReadThenWriteChainsProvenance(t *testing.T) {
	r := newRig(t)
	// Producer writes input file.
	prod := r.k.Spawn(nil, "producer", nil, nil)
	fd, _ := prod.Open("/data/in.dat", vfs.OCreate|vfs.ORdWr)
	prod.Write(fd, []byte("source-bytes"))
	prod.Close(fd)
	prod.Exit()

	// Consumer reads input, writes output.
	cons := r.k.Spawn(nil, "consumer", nil, nil)
	in, _ := cons.Open("/data/in.dat", vfs.ORdOnly)
	buf := make([]byte, 64)
	cons.Read(in, buf)
	cons.Close(in)
	out, _ := cons.Open("/data/out.dat", vfs.OCreate|vfs.ORdWr)
	cons.Write(out, []byte("derived"))
	cons.Close(out)

	db := r.drain(t)
	// out.dat ← consumer ← in.dat must be a connected ancestry path.
	outPN := db.ByName("/data/out.dat")[0]
	ov, _ := db.LatestVersion(outPN)
	anc := collectAncestors(db, pnode.Ref{PNode: outPN, Version: ov})
	inPN := db.ByName("/data/in.dat")[0]
	foundIn, foundProd := false, false
	prodName := "producer"
	for ref := range anc {
		if ref.PNode == inPN {
			foundIn = true
		}
		if n, ok := db.NameOf(ref.PNode); ok && n == prodName {
			foundProd = true
		}
	}
	if !foundIn {
		t.Fatal("input file missing from output's ancestry")
	}
	if !foundProd {
		t.Fatal("producer process missing from output's ancestry (closure not materialized)")
	}
}

func collectAncestors(db *waldo.DB, start pnode.Ref) map[pnode.Ref]bool {
	seen := map[pnode.Ref]bool{}
	stack := []pnode.Ref{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, db.Inputs(n)...)
	}
	return seen
}

func TestPipelineThroughPipe(t *testing.T) {
	r := newRig(t)
	sh := r.k.Spawn(nil, "sh", nil, nil)
	p1 := r.k.Spawn(sh, "cat", nil, nil)
	p2 := r.k.Spawn(sh, "grep", nil, nil)
	pr, pw, _ := sh.Pipe()
	prFD, _ := sh.GiveFD(pr, p2)
	pwFD, _ := sh.GiveFD(pw, p1)

	// cat reads a source file, writes into the pipe.
	src, _ := p1.Open("/data/src.txt", vfs.OCreate|vfs.ORdWr)
	p1.Write(src, []byte("line1\nline2\n"))
	p1.Seek(src, 0, 0)
	buf := make([]byte, 64)
	n, _ := p1.Read(src, buf)
	p1.Write(pwFD, buf[:n])
	p1.Close(pwFD)
	p1.Close(src)

	// grep reads the pipe, writes the result file.
	m, _ := p2.Read(prFD, buf)
	outFD, _ := p2.Open("/data/hits.txt", vfs.OCreate|vfs.ORdWr)
	p2.Write(outFD, buf[:m])
	p2.Close(outFD)

	db := r.drain(t)
	outPN := db.ByName("/data/hits.txt")[0]
	ov, _ := db.LatestVersion(outPN)
	anc := collectAncestors(db, pnode.Ref{PNode: outPN, Version: ov})
	// Ancestry must pass through grep, the pipe, cat, and src.txt.
	wantNames := map[string]bool{"grep": false, "cat": false, "/data/src.txt": false}
	sawPipe := false
	for ref := range anc {
		if name, ok := db.NameOf(ref.PNode); ok {
			if _, want := wantNames[name]; want {
				wantNames[name] = true
			}
		}
		if typ, ok := db.TypeOf(ref.PNode); ok && typ == record.TypePipe {
			sawPipe = true
		}
	}
	for name, found := range wantNames {
		if !found {
			t.Errorf("%s missing from ancestry", name)
		}
	}
	if !sawPipe {
		t.Error("pipe missing from ancestry")
	}
}

func TestCycleAvoidanceEndToEnd(t *testing.T) {
	r := newRig(t)
	p := r.k.Spawn(nil, "rewriter", nil, nil)
	fd, _ := p.Open("/data/f", vfs.OCreate|vfs.ORdWr)
	p.Write(fd, []byte("v1"))
	// Read it back: the file's version becomes observed; the process now
	// depends on the file.
	p.Seek(fd, 0, 0)
	buf := make([]byte, 8)
	p.Read(fd, buf)
	// Write again: without cycle avoidance this would create
	// file→proc→file at the same versions.
	p.Seek(fd, 0, 0)
	p.Write(fd, []byte("v2"))
	db := r.drain(t)

	filePN := db.ByName("/data/f")[0]
	versions := db.Versions(filePN)
	if len(versions) < 2 {
		t.Fatalf("file should have been frozen: versions=%v", versions)
	}
	// Version graph must be acyclic.
	for _, ref := range db.AllRefs() {
		if inCycle(db, ref) {
			t.Fatalf("cycle through %v", ref)
		}
	}
}

func inCycle(db *waldo.DB, start pnode.Ref) bool {
	seen := map[pnode.Ref]bool{}
	var stack []pnode.Ref
	stack = append(stack, db.Inputs(start)...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == start {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, db.Inputs(n)...)
	}
	return false
}

func TestExecAncestry(t *testing.T) {
	r := newRig(t)
	// Store the binary on the PASS volume.
	setup := r.k.Spawn(nil, "install", nil, nil)
	setup.MkdirAll("/data/bin")
	bfd, _ := setup.Open("/data/bin/cc", vfs.OCreate|vfs.ORdWr)
	setup.Write(bfd, []byte("#!elf"))
	setup.Close(bfd)

	sh := r.k.Spawn(nil, "sh", nil, nil)
	if err := sh.Exec("/data/bin/cc", []string{"cc", "-c", "x.c"}, nil); err != nil {
		t.Fatal(err)
	}
	out, _ := sh.Open("/data/x.o", vfs.OCreate|vfs.ORdWr)
	sh.Write(out, []byte("obj"))
	db := r.drain(t)

	oPN := db.ByName("/data/x.o")[0]
	ov, _ := db.LatestVersion(oPN)
	anc := collectAncestors(db, pnode.Ref{PNode: oPN, Version: ov})
	sawBinary, sawShell := false, false
	for ref := range anc {
		if name, ok := db.NameOf(ref.PNode); ok {
			switch name {
			case "/data/bin/cc":
				sawBinary = true
			case "sh":
				sawShell = true
			}
		}
	}
	if !sawBinary {
		t.Error("binary missing from ancestry (Exec dependency lost)")
	}
	if !sawShell {
		t.Error("pre-exec identity missing from ancestry")
	}
}

func TestDiscloseBundleWithPhantom(t *testing.T) {
	r := newRig(t)
	app := r.k.Spawn(nil, "browser", nil, nil)
	// The app models a session as a phantom object.
	sess, err := app.PassMkobj("/data")
	if err != nil {
		t.Fatal(err)
	}
	sref := sess.Ref()
	if _, err := sess.PassWrite(nil, 0, record.NewBundle(
		record.New(sref, record.AttrType, record.StringVal(record.TypeSession)),
		record.New(sref, record.AttrVisitedURL, record.StringVal("http://a.example/")),
	)); err != nil {
		t.Fatal(err)
	}

	// Download: data plus records linking the file to the session.
	fd, _ := app.Open("/data/download.bin", vfs.OCreate|vfs.ORdWr)
	kfd, _ := app.FDGet(fd)
	fileRef := kfd.PassFile().Ref()
	if _, err := app.PassWriteFd(fd, []byte("blob"), record.NewBundle(
		record.New(fileRef, record.AttrFileURL, record.StringVal("http://a.example/f.bin")),
		record.Input(fileRef, sref),
	)); err != nil {
		t.Fatal(err)
	}
	db := r.drain(t)

	fPN := db.ByName("/data/download.bin")[0]
	fv, _ := db.LatestVersion(fPN)
	inputs := db.Inputs(pnode.Ref{PNode: fPN, Version: fv})
	foundSession := false
	for _, in := range inputs {
		if in.PNode == sref.PNode {
			foundSession = true
		}
	}
	if !foundSession {
		t.Fatalf("session not among file inputs: %v", inputs)
	}
	// The session's VISITED_URL history was materialized with it.
	urls := db.AttrValues(pnode.Ref{PNode: sref.PNode, Version: sref.Version}, record.AttrVisitedURL)
	if len(urls) != 1 {
		t.Fatalf("session URLs = %v", urls)
	}
	// FILE_URL rode along on the file itself.
	if vals := db.AttrValues(pnode.Ref{PNode: fPN, Version: fv}, record.AttrFileURL); len(vals) != 1 {
		t.Fatal("FILE_URL missing")
	}
}

func TestPhantomSyncWithoutAncestry(t *testing.T) {
	r := newRig(t)
	app := r.k.Spawn(nil, "app", nil, nil)
	obj, _ := app.PassMkobj("/data")
	obj.PassWrite(nil, 0, record.NewBundle(
		record.New(obj.Ref(), record.AttrType, record.StringVal(record.TypeDataset)),
	))
	db := r.drain(t)
	if len(db.ByType(record.TypeDataset)) != 0 {
		t.Fatal("phantom provenance persisted without ancestry or sync")
	}
	if err := obj.PassSync(); err != nil {
		t.Fatal(err)
	}
	db = r.drain(t)
	if len(db.ByType(record.TypeDataset)) != 1 {
		t.Fatal("pass_sync did not persist phantom provenance")
	}
}

func TestPhantomRevive(t *testing.T) {
	r := newRig(t)
	app := r.k.Spawn(nil, "app", nil, nil)
	obj, _ := app.PassMkobj("")
	ref := obj.Ref()
	obj.Close()
	again, err := app.PassReviveObj(ref)
	if err != nil {
		t.Fatal(err)
	}
	if again.Ref().PNode != ref.PNode {
		t.Fatal("revive returned wrong object")
	}
	if _, err := app.PassReviveObj(pnode.Ref{PNode: 0xDEAD, Version: 1}); err == nil {
		t.Fatal("reviving unknown object must fail")
	}
}

func TestNonPassFileProvenanceMaterializedWhenCopiedIn(t *testing.T) {
	r := newRig(t)
	p := r.k.Spawn(nil, "cp", nil, nil)
	// Write a file OUTSIDE the PASS volume.
	src, _ := p.Open("/outside.txt", vfs.OCreate|vfs.ORdWr)
	p.Write(src, []byte("external data"))
	p.Seek(src, 0, 0)
	buf := make([]byte, 64)
	n, _ := p.Read(src, buf)
	p.Close(src)
	// Copy it INTO the PASS volume.
	dst, _ := p.Open("/data/copied.txt", vfs.OCreate|vfs.ORdWr)
	p.Write(dst, buf[:n])
	db := r.drain(t)

	dPN := db.ByName("/data/copied.txt")[0]
	dv, _ := db.LatestVersion(dPN)
	anc := collectAncestors(db, pnode.Ref{PNode: dPN, Version: dv})
	sawOutside := false
	for ref := range anc {
		if name, ok := db.NameOf(ref.PNode); ok && name == "/outside.txt" {
			sawOutside = true
		}
	}
	if !sawOutside {
		t.Fatal("non-PASS source file missing from ancestry (distributor closure)")
	}
}

func TestDropInodeDiscardsTempProvenance(t *testing.T) {
	r := newRig(t)
	p := r.k.Spawn(nil, "tmp", nil, nil)
	fd, _ := p.Open("/tmpfile", vfs.OCreate|vfs.ORdWr)
	p.Write(fd, []byte("scratch"))
	p.Close(fd)
	kfdRefCount, _ := r.o.Distributor().Stats()
	if kfdRefCount == 0 {
		t.Fatal("expected cached records for temp file")
	}
	if err := p.Remove("/tmpfile"); err != nil {
		t.Fatal(err)
	}
	// The temp file's provenance is gone: a later write into the PASS
	// volume referencing it cannot resurrect it, and nothing persists.
	db := r.drain(t)
	if len(db.ByName("/tmpfile")) != 0 {
		t.Fatal("dropped temp file leaked into database")
	}
}

func TestDuplicateWritesCollapse(t *testing.T) {
	r := newRig(t)
	p := r.k.Spawn(nil, "chunker", nil, nil)
	fd, _ := p.Open("/data/big", vfs.OCreate|vfs.ORdWr)
	chunk := make([]byte, 4096)
	for i := 0; i < 64; i++ {
		p.Write(fd, chunk)
	}
	db := r.drain(t)
	bPN := db.ByName("/data/big")[0]
	bv, _ := db.LatestVersion(bPN)
	inputs := db.Inputs(pnode.Ref{PNode: bPN, Version: bv})
	if len(inputs) != 1 {
		t.Fatalf("64 writes produced %d dependencies; analyzer dedup failed", len(inputs))
	}
	if st := r.o.Analyzer().Stats(); st.Duplicates < 60 {
		t.Fatalf("duplicates = %d", st.Duplicates)
	}
}
