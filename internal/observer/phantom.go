package observer

import (
	"sync"

	"passv2/internal/dpapi"
	"passv2/internal/pnode"
	"passv2/internal/record"
)

// phantomObj is the user-level handle for a pass_mkobj object: a browser
// session, a data set, a workflow operator, a Python function — anything
// that exists at a layer above the file system (§5.5). Its provenance is
// cached by the distributor; any data written to it lives in memory only.
type phantomObj struct {
	o    *Observer
	node *transNode

	mu     sync.Mutex
	buf    []byte
	closed bool
}

// Ref returns the phantom's current identity.
func (ph *phantomObj) Ref() pnode.Ref { return ph.node.Ref() }

// PassRead returns the phantom's in-memory data plus its identity.
func (ph *phantomObj) PassRead(p []byte, off int64) (int, pnode.Ref, error) {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	if ph.closed {
		return 0, pnode.Ref{}, dpapi.ErrClosed
	}
	if off < 0 || off >= int64(len(ph.buf)) {
		return 0, ph.node.Ref(), nil
	}
	return copy(p, ph.buf[off:]), ph.node.Ref(), nil
}

// PassWrite runs the disclosed records through the analyzer (grouped by
// subject — a phantom bundle may describe several objects) and caches
// them; data, if any, is buffered in memory.
func (ph *phantomObj) PassWrite(p []byte, off int64, b *record.Bundle) (int, error) {
	ph.mu.Lock()
	if ph.closed {
		ph.mu.Unlock()
		return 0, dpapi.ErrClosed
	}
	ph.mu.Unlock()

	if b != nil {
		order, groups := groupBySubject(b.Records)
		for _, pn := range order {
			recs := groups[pn]
			node := ph.o.nodeForSubject(recs[0].Subject, nil)
			out, err := ph.o.an.Process(node, recs...)
			if err != nil {
				return 0, err
			}
			if ph.o.dist.IsTransient(pn) {
				ph.o.dist.Cache(out...)
			} else if len(out) > 0 {
				if err := ph.o.routeToOwningVolumes(out); err != nil {
					return 0, err
				}
			}
		}
	}
	if len(p) == 0 {
		return 0, nil
	}
	ph.mu.Lock()
	defer ph.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(ph.buf)) {
		grown := make([]byte, end)
		copy(grown, ph.buf)
		ph.buf = grown
	}
	copy(ph.buf[off:], p)
	return len(p), nil
}

// PassFreeze breaks a cycle by versioning the phantom.
func (ph *phantomObj) PassFreeze() (pnode.Version, error) {
	_, chain, err := ph.o.an.Freeze(ph.node)
	if err != nil {
		return 0, err
	}
	ph.o.dist.Cache(chain)
	return ph.node.Ref().Version, nil
}

// PassSync forces the phantom's provenance to persistent storage
// (pass_sync).
func (ph *phantomObj) PassSync() error {
	return ph.o.dist.Sync(ph.node.Ref().PNode)
}

// Close releases the handle; the object remains revivable (§6.5: Firefox
// session objects are revived across restarts).
func (ph *phantomObj) Close() error {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	ph.closed = false // handles are cheap; Close is a logical no-op
	return nil
}

var _ dpapi.Object = (*phantomObj)(nil)
