package observer

import (
	"sync"

	"passv2/internal/dpapi"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// phantomState is a pass_mkobj object itself: a browser session, a data
// set, a workflow operator, a Python function — anything that exists at a
// layer above the file system (§5.5). Its provenance is cached by the
// distributor; any data written to it lives in memory only. The state
// outlives every handle onto it: pass_reviveobj opens a fresh handle long
// after the creating one was closed (§6.5's Firefox sessions).
type phantomState struct {
	node *transNode

	mu  sync.Mutex
	buf []byte
}

// phantomObj is one user-level handle onto a phantom. Handles are cheap
// and independently closable; closing one returns ErrClosed from further
// use of that handle but never destroys the object or its provenance.
type phantomObj struct {
	o  *Observer
	st *phantomState

	mu     sync.Mutex
	closed bool
}

// alive reports ErrClosed once the handle has been closed.
func (ph *phantomObj) alive() error {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	if ph.closed {
		return dpapi.ErrClosed
	}
	return nil
}

// Ref returns the phantom's current identity.
func (ph *phantomObj) Ref() pnode.Ref { return ph.st.node.Ref() }

// PassRead returns the phantom's in-memory data plus its identity.
func (ph *phantomObj) PassRead(p []byte, off int64) (int, pnode.Ref, error) {
	if err := ph.alive(); err != nil {
		return 0, pnode.Ref{}, err
	}
	st := ph.st
	st.mu.Lock()
	defer st.mu.Unlock()
	if off < 0 || off >= int64(len(st.buf)) {
		return 0, st.node.Ref(), nil
	}
	return copy(p, st.buf[off:]), st.node.Ref(), nil
}

// PassWrite runs the disclosed records through the analyzer (grouped by
// subject — a phantom bundle may describe several objects) and caches
// them; data, if any, is buffered in memory.
func (ph *phantomObj) PassWrite(p []byte, off int64, b *record.Bundle) (int, error) {
	if err := ph.alive(); err != nil {
		return 0, err
	}
	if b != nil {
		order, groups := record.GroupBySubject(b.Records)
		for _, pn := range order {
			recs := groups[pn]
			node := ph.o.nodeForSubject(recs[0].Subject, nil)
			out, err := ph.o.an.Process(node, recs...)
			if err != nil {
				return 0, err
			}
			if ph.o.dist.IsTransient(pn) {
				ph.o.dist.Cache(out...)
			} else if len(out) > 0 {
				if err := ph.o.routeToOwningVolumes(out); err != nil {
					return 0, err
				}
			}
		}
	}
	if len(p) == 0 {
		return 0, nil
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	st := ph.st
	st.mu.Lock()
	defer st.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(st.buf)) {
		grown := make([]byte, end)
		copy(grown, st.buf)
		st.buf = grown
	}
	copy(st.buf[off:], p)
	return len(p), nil
}

// PassFreeze breaks a cycle by versioning the phantom.
func (ph *phantomObj) PassFreeze() (pnode.Version, error) {
	if err := ph.alive(); err != nil {
		return 0, err
	}
	_, chain, err := ph.o.an.Freeze(ph.st.node)
	if err != nil {
		return 0, err
	}
	ph.o.dist.Cache(chain)
	return ph.st.node.Ref().Version, nil
}

// PassSync forces the phantom's provenance to persistent storage
// (pass_sync).
func (ph *phantomObj) PassSync() error {
	if err := ph.alive(); err != nil {
		return err
	}
	return ph.o.dist.Sync(ph.st.node.Ref().PNode)
}

// Close releases this handle; the object remains revivable (§6.5: Firefox
// session objects are revived across restarts) and its provenance is
// untouched.
func (ph *phantomObj) Close() error {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	if ph.closed {
		return dpapi.ErrClosed
	}
	ph.closed = true
	return nil
}

var _ dpapi.Object = (*phantomObj)(nil)
