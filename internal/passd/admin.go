package passd

import (
	"net"
	"net/http"
	"time"

	"passv2/internal/health"
	"passv2/internal/metrics"
)

// The admin surface: a small HTTP listener (Config.AdminAddr or
// Config.AdminListener) serving /metrics in the Prometheus text format,
// /healthz (liveness) and /readyz (readiness). The metric families are
// deliberately read-through wherever a STATS counter already exists —
// both surfaces sample the same atomics, so they cannot disagree — and
// the handful of families only /metrics has (per-verb latency, per-lane
// in-flight, per-tenant accounting) are maintained on the serving path in
// Server.serve. DESIGN.md §12 is the name registry.

// serverMetrics bundles the registry and the families the serving path
// writes directly. Everything else is registered as a CounterFunc or
// GaugeFunc over the server's existing counters at construction.
type serverMetrics struct {
	reg *metrics.Registry

	requests      *metrics.CounterVec   // passd_requests_total{verb}
	requestErrors *metrics.CounterVec   // passd_request_errors_total{verb}
	latency       *metrics.HistogramVec // passd_request_seconds{verb}
	inflight      *metrics.GaugeVec     // passd_inflight{lane}
	shed          *metrics.CounterVec   // passd_shed_total{lane}

	tenantRequests *metrics.CounterVec // passd_tenant_requests_total{tenant}
	quotaRefused   *metrics.CounterVec // passd_quota_refused_total{tenant}
	tenantStaged   *metrics.CounterVec // passd_tenant_staged_bytes_total{tenant}
	tenantInflight *metrics.GaugeVec   // passd_tenant_inflight{tenant}

	replCommit  *metrics.Histogram // passd_repl_commit_seconds
	followerLag *metrics.GaugeVec  // passd_repl_follower_lag_bytes{follower}

	srv *Server
}

func newServerMetrics(s *Server) *serverMetrics {
	r := metrics.NewRegistry()
	m := &serverMetrics{reg: r, srv: s}

	m.requests = r.CounterVec("passd_requests_total",
		"Requests dispatched, by verb (refusals at admission are not dispatched).", "verb")
	m.requestErrors = r.CounterVec("passd_request_errors_total",
		"Dispatched requests that returned an error, by verb.", "verb")
	m.latency = r.HistogramVec("passd_request_seconds",
		"Server-side request latency in seconds, by verb.", metrics.DefBuckets, "verb")
	m.inflight = r.GaugeVec("passd_inflight",
		"Requests currently executing, by dispatch lane.", "lane")
	m.shed = r.CounterVec("passd_shed_total",
		"Requests refused with the overloaded code, by shedding point.", "lane")
	// Pre-create every lane child so the families export all lanes from
	// the first scrape — a dashboard should never have to guess whether a
	// missing series means zero or not-yet-created.
	for _, lane := range []string{laneLine, laneSerial, laneConcurrent} {
		m.inflight.With(lane)
	}
	for _, lane := range []string{laneQueue, laneConn} {
		m.shed.With(lane)
	}

	m.tenantRequests = r.CounterVec("passd_tenant_requests_total",
		"Requests attempted by named tenants, including quota refusals.", "tenant")
	m.quotaRefused = r.CounterVec("passd_quota_refused_total",
		"Requests refused with the quota code, by tenant.", "tenant")
	m.tenantStaged = r.CounterVec("passd_tenant_staged_bytes_total",
		"Record-staging wire bytes admitted, by tenant.", "tenant")
	m.tenantInflight = r.GaugeVec("passd_tenant_inflight",
		"Admitted requests currently in flight, by tenant.", "tenant")

	// Serving-path counters the STATS verb already keeps: read-through, so
	// /metrics and STATS agree by construction.
	r.CounterFunc("passd_queries_total", "Query verb executions.", s.queries.Load)
	r.CounterFunc("passd_query_errors_total", "Queries that failed to parse or execute.", s.queryErrors.Load)
	r.CounterFunc("passd_query_timeouts_total", "Queries killed by their deadline.", s.timeouts.Load)
	r.CounterFunc("passd_cache_hits_total", "Queries answered from the snapshot result cache.", s.cacheHits.Load)
	r.CounterFunc("passd_cache_misses_total", "Queries that had to execute.", s.cacheMisses.Load)
	r.CounterFunc("passd_drains_total", "Drain verb executions.", s.drains.Load)
	r.CounterFunc("passd_mkobjs_total", "Phantom objects created over the wire.", s.mkobjs.Load)
	r.CounterFunc("passd_revives_total", "Phantom objects revived over the wire.", s.revives.Load)
	r.CounterFunc("passd_batches_total", "Batch pipelines executed.", s.batches.Load)
	r.CounterFunc("passd_staged_records_total", "Provenance records staged for commit.", s.appends.Load)

	r.GaugeFunc("passd_conns", "Open client connections.", func() float64 {
		return float64(s.ConnCount())
	})
	r.GaugeFunc("passd_v3_conns", "Connections upgraded to binary framing.", func() float64 {
		return float64(s.v3Conns.Load())
	})
	r.GaugeFunc("passd_workers", "Configured worker-pool size.", func() float64 {
		return float64(s.cfg.Workers)
	})
	r.GaugeFunc("passd_worker_queue", "Queries waiting for a worker slot.", func() float64 {
		return float64(s.waiting.Load())
	})
	r.GaugeFunc("passd_objects", "Live phantom objects in the registry.", func() float64 {
		return float64(s.reg.count())
	})
	r.GaugeFunc("passd_uptime_seconds", "Seconds since the daemon started serving.", func() float64 {
		return s.health.Uptime().Seconds()
	})

	// Ingest and database state.
	r.CounterFunc("passd_ingest_entries_total", "Log entries decoded into the database.", s.w.EntriesDecoded)
	r.GaugeFunc("passd_db_records", "Provenance records in the database.", func() float64 {
		records, _, _ := s.w.DB.Stats()
		return float64(records)
	})
	r.GaugeFunc("passd_db_generation", "Current database generation.", func() float64 {
		return float64(s.w.DB.Gen())
	})

	// Checkpointer.
	r.CounterFunc("passd_checkpoints_total", "Checkpoint generations written.", s.checkpoints.Load)
	r.CounterFunc("passd_checkpoint_errors_total", "Checkpoint attempts that failed.", s.checkpointErrors.Load)
	r.CounterFunc("passd_checkpoint_deltas_total", "Checkpoint generations written as deltas.", s.checkpointDeltas.Load)
	r.CounterFunc("passd_checkpoint_full_bytes_total", "Payload bytes committed as full snapshots.", s.checkpointFullBytes.Load)
	r.CounterFunc("passd_checkpoint_delta_bytes_total", "Payload bytes committed as delta generations.", s.checkpointDeltaBytes.Load)
	r.CounterFunc("passd_checkpoint_sweep_errors_total", "Committed generations whose post-commit retention sweep failed.", s.checkpointSweepErrors.Load)
	r.GaugeFunc("passd_checkpoint_generation", "Database generation of the last checkpoint.", func() float64 {
		return float64(s.lastCkptGen.Load())
	})
	r.GaugeFunc("passd_checkpoint_age_seconds", "Seconds since the last checkpoint committed (0 when none has).", func() float64 {
		at := s.lastCkptUnixNano.Load()
		if at == 0 {
			return 0
		}
		return time.Since(time.Unix(0, at)).Seconds()
	})

	// Replication. The scalar families always exist (zero on a daemon
	// that neither replicates nor follows); the per-follower lag gauge is
	// refreshed from the primary's follower table at scrape time.
	m.replCommit = r.Histogram("passd_repl_commit_seconds",
		"Quorum commit latency inside the durable-ack barrier.", metrics.DefBuckets)
	m.followerLag = r.GaugeVec("passd_repl_follower_lag_bytes",
		"Primary log bytes not yet durably acked, by follower.", "follower")
	r.CounterFunc("passd_repl_quorum_failures_total", "Durable acks refused for lack of quorum.", s.quorumFailures.Load)
	r.GaugeFunc("passd_repl_quorum", "Configured write quorum (0 when not a primary).", func() float64 {
		if p := s.cfg.Replicate; p != nil {
			return float64(p.Quorum())
		}
		return 0
	})
	r.GaugeFunc("passd_repl_followers", "Registered followers (primary only).", func() float64 {
		if p := s.cfg.Replicate; p != nil {
			return float64(len(p.Followers()))
		}
		return 0
	})
	r.GaugeFunc("passd_repl_connected", "Followers currently connected (primary only).", func() float64 {
		p := s.cfg.Replicate
		if p == nil {
			return 0
		}
		var n int
		for _, f := range p.Followers() {
			if f.Connected {
				n++
			}
		}
		return float64(n)
	})
	r.GaugeFunc("passd_repl_log_bytes", "Durable replicated log bytes (follower only).", func() float64 {
		if f := s.cfg.Follower; f != nil {
			return float64(f.Size())
		}
		return 0
	})

	// Tamper evidence (DESIGN.md §13). The recovery-skip breakdown is
	// fixed at boot — recovery ran before the server existed — so the
	// family is populated once here; the bounded reason set keeps
	// cardinality in check.
	skips := r.CounterVec("passd_recovery_skipped_generations_total",
		"Checkpoint generations recovery skipped at boot, by reason class.", "reason")
	if rec := s.cfg.Recovered; rec != nil {
		for _, sk := range rec.Skipped {
			skips.With(skipClass(sk.Class)).Inc()
		}
	}
	r.CounterFunc("passd_fork_refusals_total", "Replicated appends refused because the stream diverged from local history.", s.forkRefusals.Load)
	r.CounterFunc("passd_verify_total", "Verify verb executions (signed roots and Merkle proofs served).", s.verifies.Load)
	r.GaugeFunc("passd_mmr_leaves", "Leaves in the live provenance-log Merkle mountain range.", func() float64 {
		if t := s.cfg.Tamper; t != nil {
			return float64(t.MMR().Count())
		}
		return 0
	})
	r.GaugeFunc("passd_mmr_pruned", "Whether the live MMR is pruned (1, proofs need rehydration) or full (0).", func() float64 {
		if t := s.cfg.Tamper; t != nil && t.MMR().Pruned() {
			return 1
		}
		return 0
	})

	return m
}

// refresh recomputes the scrape-time families that are not read-through:
// today, only the per-follower replication lag.
func (m *serverMetrics) refresh() {
	p := m.srv.cfg.Replicate
	if p == nil {
		return
	}
	size, err := p.SourceSize()
	if err != nil {
		return // keep the last values rather than exporting garbage
	}
	for _, f := range p.Followers() {
		lag := size - f.Acked
		if lag < 0 {
			lag = 0
		}
		m.followerLag.With(f.Addr).Set(float64(lag))
	}
}

// verbCounts snapshots passd_requests_total for Stats.Verbs.
func (m *serverMetrics) verbCounts() map[string]int64 {
	out := make(map[string]int64)
	m.requests.Each(func(values []string, c *metrics.Counter) {
		if v := c.Value(); v > 0 {
			out[values[0]] = v
		}
	})
	if len(out) == 0 {
		return nil
	}
	return out
}

// tenantSnapshot assembles Stats.Tenants from the per-tenant families.
// Every named tenant that ever sent a request appears (admitTenant counts
// before it refuses, so refusal-only tenants are included too).
func (m *serverMetrics) tenantSnapshot() map[string]TenantStats {
	out := make(map[string]TenantStats)
	m.tenantRequests.Each(func(values []string, c *metrics.Counter) {
		t := values[0]
		out[t] = TenantStats{
			Requests:    c.Value(),
			Refused:     m.quotaRefused.With(t).Value(),
			StagedBytes: m.tenantStaged.With(t).Value(),
			InFlight:    int64(m.tenantInflight.With(t).Value()),
		}
	})
	if len(out) == 0 {
		return nil
	}
	return out
}

// startAdmin binds and serves the admin endpoints when configured; a nil
// return with no listener means the admin surface is simply off.
func (s *Server) startAdmin() error {
	ln := s.cfg.AdminListener
	if ln == nil {
		if s.cfg.AdminAddr == "" {
			return nil
		}
		var err error
		ln, err = net.Listen("tcp", s.cfg.AdminAddr)
		if err != nil {
			return err
		}
	}
	s.adminLn = ln

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		s.met.refresh()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.met.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.health.Live().WriteText(w)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		rep := s.health.Ready()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !rep.OK {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		rep.WriteText(w)
	})
	s.admin = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.admin.Serve(ln) // returns once Close tears the listener down
	}()
	return nil
}

// AdminAddr reports the bound admin listen address, or "" when the admin
// surface is off.
func (s *Server) AdminAddr() string {
	if s.adminLn == nil {
		return ""
	}
	return s.adminLn.Addr().String()
}

// Metrics exposes the server's registry — the tests' non-HTTP path to the
// exact families /metrics serves.
func (s *Server) Metrics() *metrics.Registry { return s.met.reg }

// Health exposes the server's health checker.
func (s *Server) Health() *health.Checker { return s.health }
