package passd

import (
	"testing"
	"time"

	"passv2/internal/checkpoint"
	"passv2/internal/pnode"
	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// logBackedWaldo builds a Waldo tailing a write-through log on a MemFS —
// the in-process twin of the daemon's -logdir arrangement.
func logBackedWaldo(t *testing.T) (*waldo.Waldo, *provlog.Writer, *vfs.MemFS) {
	t.Helper()
	lower := vfs.NewMemFS("log", nil)
	log, err := provlog.NewWriter(lower, "/log", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	w := waldo.New()
	w.Attach(waldo.NewLogVolume("vol1", lower, log))
	return w, log, lower
}

func nameRec(i int) record.Record {
	return record.New(pnode.Ref{PNode: pnode.PNode(i), Version: 1},
		record.AttrName, record.StringVal("/srv/f"))
}

// TestServerCheckpointVerb covers the forced-checkpoint and append verbs
// end to end: append over the wire, drain, force a checkpoint, kill the
// server (hard: no clean Close flush is relied on), recover a second
// server from the store, and confirm it resumes with the full database
// and only tail replay.
func TestServerCheckpointVerb(t *testing.T) {
	w, log, lower := logBackedWaldo(t)
	ckfs := vfs.NewMemFS("ck", nil)
	store, err := checkpoint.NewStore(ckfs, "/ck", 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, w, Config{
		Checkpoints: store,
		Append: func(recs []record.Record) error {
			for _, r := range recs {
				if err := log.AppendRecord(0, r); err != nil {
					return err
				}
			}
			return log.Flush()
		},
	})
	c := dialClient(t, srv)

	var batch []record.Record
	for i := 1; i <= 500; i++ {
		batch = append(batch, nameRec(i))
	}
	if n, err := c.Append(batch); err != nil || n != 500 {
		t.Fatalf("append: %d, %v", n, err)
	}
	if _, err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	info, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen <= 0 || info.Records != 500 || info.SnapshotBytes <= 0 {
		t.Fatalf("checkpoint info %+v", info)
	}
	// A second forced checkpoint with no new batches is a no-op (same gen).
	info2, err := c.Checkpoint()
	if err != nil || info2.Gen != info.Gen {
		t.Fatalf("idle checkpoint: %+v, %v", info2, err)
	}
	// 70 more acknowledged records, not checkpointed.
	batch = batch[:0]
	for i := 501; i <= 570; i++ {
		batch = append(batch, nameRec(i))
	}
	if _, err := c.Append(batch); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Checkpoints != 1 || st.LastCheckpointGen != info.Gen || st.Appends != 570 {
		t.Fatalf("stats %+v", st)
	}

	// "Crash": abandon the first server without Close (its final flush
	// must not be what saves us) and recover a fresh one from the store.
	rec, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rec.DB == nil || rec.Gen != info.Gen {
		t.Fatalf("recovered %+v", rec)
	}
	w2 := waldo.New()
	w2.DB = rec.DB
	log2, err := provlog.NewWriter(lower, "/log", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	w2.Attach(waldo.NewLogVolume("vol1", lower, log2))
	if missing := w2.RestoreVolumes(rec.Volumes); len(missing) != 0 {
		t.Fatalf("unmatched volumes %v", missing)
	}
	if err := w2.Drain(); err != nil {
		t.Fatal(err)
	}
	srv2 := startServer(t, w2, Config{Recovered: rec})
	c2 := dialClient(t, srv2)
	st2, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Records != 570 {
		t.Fatalf("recovered server sees %d records, want 570", st2.Records)
	}
	if st2.RecoveredGen != info.Gen || st2.RecoveredRecords != 500 || st2.ResumeBytes == 0 {
		t.Fatalf("recovery stats %+v", st2)
	}
	// Proportional work: only the 70-record tail was decoded.
	if st2.EntriesDecoded != 70 {
		t.Fatalf("recovery decoded %d entries, want 70", st2.EntriesDecoded)
	}
}

// TestServerBackgroundCheckpointer checks the records-applied trigger: a
// server configured to checkpoint every N records commits a generation
// without anyone calling the verb.
func TestServerBackgroundCheckpointer(t *testing.T) {
	w, log, _ := logBackedWaldo(t)
	store, err := checkpoint.NewStore(vfs.NewMemFS("ck", nil), "/ck", 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, w, Config{
		Checkpoints:        store,
		CheckpointInterval: time.Hour, // only the record trigger may fire
		CheckpointEvery:    100,
	})
	for i := 1; i <= 200; i++ {
		if err := log.AppendRecord(0, nameRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		gens, err := store.Generations()
		if err != nil {
			t.Fatal(err)
		}
		if len(gens) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background checkpointer never committed a generation")
		}
		time.Sleep(20 * time.Millisecond)
	}
	srv.Close()
	// Close's final flush must leave the tip generation on disk.
	rec, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rec.DB == nil || rec.Records != 200 {
		t.Fatalf("final checkpoint %+v", rec)
	}
}

// TestServerVerbsDisabled pins the error contract when no store or append
// hook is configured.
func TestServerVerbsDisabled(t *testing.T) {
	w, _ := testWaldo(4)
	srv := startServer(t, w, Config{})
	c := dialClient(t, srv)
	if _, err := c.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded without a store")
	}
	if _, err := c.Append([]record.Record{nameRec(1)}); err == nil {
		t.Fatal("append succeeded without a hook")
	}
}
