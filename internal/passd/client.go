package passd

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"passv2/internal/pql"
	"passv2/internal/record"
)

// Client is one connection to a passd server. It is safe for concurrent
// use: calls are serialized on the connection (the protocol is strict
// request/response), so open one Client per desired in-flight query.
//
// A Client is resilient by default (see Options): dials are bounded by a
// timeout, every round-trip carries a socket deadline derived from the
// request's own timeout (a hung or partitioned server surfaces as an
// error, never a stuck caller), transient failures — overload shedding
// on any op; quorum unavailability and connection resets on idempotent
// ops — are retried with exponential backoff and jitter, and a broken connection is
// transparently redialed, with every open RemoteObject revived on the new
// connection under its current identity (PR 5's registry semantics make
// that sound: handles are connection residue, objects live server-side).
//
// A Client is also a dpapi.Layer (and a distributor.Sink): PassMkobj and
// PassReviveObj hand out RemoteObject handles, making a remote daemon a
// drop-in lower layer for anything written against the DPAPI — see
// dpapi.go.
type Client struct {
	addr string
	opts Options

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// mux is non-nil once hello negotiates protocol v3: the connection
	// switches to binary frames and many requests share it concurrently,
	// each on its own stream (see clientMux). c.mu then guards only
	// lifecycle state (conn/hello/objs) — round-trips run outside it.
	mux *clientMux

	// Protocol negotiation, performed on every (re)connection so the
	// client works against a restarted daemon without caller involvement.
	helloDone bool
	version   int
	volume    uint16

	// objs is the revival registry: every open RemoteObject this client
	// handed out. After a reconnect, each is re-opened by its current
	// (pnode, version) and its wire handle refreshed in place.
	objs map[*RemoteObject]struct{}
}

// Options tunes a Client's resilience. The zero value means sane
// defaults; fields are only consulted at Dial time.
type Options struct {
	// DialTimeout bounds connection establishment; <=0 means 5s.
	DialTimeout time.Duration
	// RequestTimeout is the socket-deadline base for requests that carry
	// no timeout of their own; <=0 means 30s. Requests with an explicit
	// TimeoutMS use that instead, so a query's wire deadline tracks its
	// server-side execution deadline.
	RequestTimeout time.Duration
	// DeadlineGrace is added to the request timeout when deriving the
	// socket deadline, covering queueing and transfer time so the server
	// gets to report its own timeout error before the socket gives up;
	// <=0 means 2s.
	DeadlineGrace time.Duration
	// MaxRetries bounds retries of transient failures (shed load, quorum
	// unavailability, and transport errors on idempotent ops). 0 means
	// the default (4); negative disables retries.
	MaxRetries int
	// RetryBase and RetryMax bound the exponential backoff between
	// retries; defaults 25ms and 1s. Jitter is applied on top.
	RetryBase time.Duration
	RetryMax  time.Duration
	// MaxVersion caps the protocol version this client offers in hello;
	// <=0 means ProtocolVersion (prefer v3 binary framing when the
	// server speaks it). Pinning 2 forces the line-oriented JSON
	// protocol — the negotiation tests' and benchmark baseline's knob.
	MaxVersion int
	// Tenant, when non-empty, names this client's tenant on hello: every
	// request on the connection is accounted (and, when the server
	// configures TenantQuotas for the name, limited) under it. Over-quota
	// requests come back as ErrQuotaExceeded and are retried with backoff
	// like ErrOverloaded.
	Tenant string
}

func (o Options) withDefaults() Options {
	if o.MaxVersion <= 0 || o.MaxVersion > ProtocolVersion {
		o.MaxVersion = ProtocolVersion
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.DeadlineGrace <= 0 {
		o.DeadlineGrace = 2 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 4
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 25 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = time.Second
	}
	return o
}

// ErrExhausted is the terminal retry error: the failure was transient and
// retryable, but every attempt failed. It wraps the last attempt's error.
var ErrExhausted = errors.New("passd: retries exhausted")

// ErrTooLarge reports a request over the wire size budget — refused
// client-side before sending when the client can tell, or by the server
// with the "toolarge" code. Never retried: the same bytes would be
// refused again; split the bundle instead.
var ErrTooLarge = errors.New("passd: request exceeds the wire size budget")

// Dial connects to a passd server with default Options.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects to a passd server with explicit resilience
// options. The initial dial is attempted immediately so configuration
// errors surface here; later reconnects are automatic.
func DialOptions(addr string, opts Options) (*Client, error) {
	c := &Client{addr: addr, opts: opts.withDefaults(), objs: make(map[*RemoteObject]struct{})}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	if c.mux != nil {
		c.mux.fail(errors.New("passd: client closed"))
		c.mux = nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// connectLocked dials a fresh connection. Requires c.mu.
func (c *Client) connectLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return err
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	c.bw = bufio.NewWriter(conn)
	c.helloDone = false
	return nil
}

// dropLocked abandons a connection a transport error poisoned: the
// request/response framing is no longer trustworthy (a torn response
// would desynchronize every later exchange), so the next call redials.
// On a v3 connection this also fails the mux, which delivers the error
// to every request still waiting on the shared connection.
func (c *Client) dropLocked() {
	if c.mux != nil {
		c.mux.fail(errors.New("passd: connection dropped"))
		c.mux = nil
	}
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// dropConn drops conn if it is still the client's current connection —
// the unlocked path a v3 round-trip uses after a transport failure,
// where another goroutine may already have reconnected.
func (c *Client) dropConn(conn net.Conn) {
	c.mu.Lock()
	if c.conn == conn {
		c.dropLocked()
	}
	c.mu.Unlock()
}

// ensureLocked makes the connection ready: dialed, protocol negotiated,
// and every registered object revived on it. Errors here are always
// retryable — the caller's request has not been sent.
func (c *Client) ensureLocked() error {
	if c.conn == nil {
		if err := c.connectLocked(); err != nil {
			return err
		}
	}
	if c.helloDone {
		return nil
	}
	// Hello itself is always a JSON line exchange — that is what makes
	// negotiation backward compatible: a v2 server just answers it.
	resp, err := c.rawLocked(&Request{Op: "hello", Version: c.opts.MaxVersion, Tenant: c.opts.Tenant}, c.opts.RequestTimeout)
	if err != nil {
		return err
	}
	if !resp.OK {
		return wireError(resp)
	}
	c.version = resp.Version
	c.volume = resp.Volume
	c.helloDone = true
	if c.version >= 3 {
		// Upgrade: from here the connection speaks binary frames. Clear
		// the sticky deadline rawLocked set — the mux reader goroutine
		// runs deadline-free (each request is bounded by its own waiter
		// timer), and per-write deadlines are set per send.
		c.conn.SetDeadline(time.Time{})
		c.mux = newClientMux(c.conn, c.br)
	}
	c.reviveLocked()
	return nil
}

// exchangeLocked is one round-trip on the current connection, routed by
// the negotiated protocol: the JSON line path, or the frame mux (safe to
// call under c.mu — the mux's reader goroutine never takes it). Used by
// the lifecycle exchanges (revive); regular calls go through attempt,
// which releases c.mu before a mux round-trip.
func (c *Client) exchangeLocked(req *Request, timeout time.Duration) (*Response, error) {
	if c.mux != nil {
		resp, err := c.mux.do(req, timeout)
		if err != nil {
			if isTransportErr(err) {
				c.dropLocked()
			}
			return nil, err
		}
		return resp, nil
	}
	return c.rawLocked(req, timeout)
}

func isTransportErr(err error) bool {
	var te *transportError
	return errors.As(err, &te)
}

// reviveLocked re-opens every registered object on the current
// connection: wire handles are connection residue, but the objects and
// their provenance live in the server registry under stable (pnode,
// version) identities, so a reconnect revives them transparently. A
// revival failure is parked on the object — its next use reports it —
// rather than failing whatever unrelated call triggered the reconnect.
func (c *Client) reviveLocked() {
	for o := range c.objs {
		o.mu.Lock()
		if o.closed {
			o.mu.Unlock()
			continue
		}
		ref := o.ref
		o.mu.Unlock()
		resp, err := c.exchangeLocked(&Request{Op: "revive", P: uint64(ref.PNode), Ver: uint32(ref.Version)}, c.opts.RequestTimeout)
		if err == nil && !resp.OK {
			err = wireError(resp)
		}
		o.mu.Lock()
		if err != nil {
			o.handle, o.reviveErr = 0, err
		} else {
			o.handle, o.reviveErr = resp.Handle, nil
		}
		o.mu.Unlock()
		if err != nil && c.conn == nil {
			return // the reconnect itself died; later calls retry
		}
	}
}

// rawLocked performs one wire exchange on the current connection under a
// socket deadline. Requires c.mu. Transport failures drop the connection
// and return a transportError; wire-level failures return the decoded
// response with resp.OK false and a nil error.
func (c *Client) rawLocked(req *Request, timeout time.Duration) (*Response, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if len(b) > maxRequestWireBytes {
		return nil, fmt.Errorf("%w: request encodes to %d bytes, over the %d-byte wire line limit; split the bundle",
			ErrTooLarge, len(b), maxRequestWireBytes)
	}
	// The whole exchange runs under one deadline: a server that hangs —
	// or a network that partitions mid-exchange — surfaces as a timeout
	// here instead of blocking the caller forever (the old behavior
	// enforced TimeoutMS server-side only).
	if err := c.conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		c.dropLocked()
		return nil, &transportError{err}
	}
	b = append(b, '\n')
	if _, err := c.bw.Write(b); err != nil {
		c.dropLocked()
		return nil, &transportError{err}
	}
	if err := c.bw.Flush(); err != nil {
		c.dropLocked()
		return nil, &transportError{err}
	}
	// ReadBytes rather than a Scanner: a response line is as large as the
	// result set (a closure query can return megabytes of rows), and a
	// Scanner's buffer cap would wedge the connection mid-token.
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		c.dropLocked()
		if len(line) == 0 && errors.Is(err, io.EOF) {
			return nil, &transportError{errors.New("passd: connection closed by server")}
		}
		return nil, &transportError{err}
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		c.dropLocked()
		return nil, &transportError{fmt.Errorf("passd: bad response: %w", err)}
	}
	return &resp, nil
}

// transportError marks a failure of the transport itself — as opposed to
// a well-formed error reply — so retry classification can tell "the
// server refused" from "the request may or may not have arrived".
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// deadlineFor derives the socket deadline from the request's own timeout
// plus the grace margin, falling back to the client-wide default.
func (c *Client) deadlineFor(req *Request) time.Duration {
	if req.TimeoutMS > 0 {
		return time.Duration(req.TimeoutMS)*time.Millisecond + c.opts.DeadlineGrace
	}
	return c.opts.RequestTimeout + c.opts.DeadlineGrace
}

// idempotentOp reports whether op can be blindly re-sent after an
// ambiguous transport failure (the request may have executed). Reads and
// forced barriers are; record-staging writes are not — re-executing one
// after a lost ack would disclose its records twice on the basis of a
// guess. (Replicated appends are the engineered exception: the follower
// log skips already-held prefixes, which is what makes the replication
// stream safe under at-least-once delivery.)
func idempotentOp(op string) bool {
	switch strings.ToLower(op) {
	case "query", "explain", "stats", "drain", "checkpoint", "ping",
		"hello", "read", "revive", "sync",
		"replstate", "replappend", "repljoin", "verify":
		return true
	}
	return false
}

// retryable classifies one attempt's failure. An overload refusal is
// retryable for every op: the server shed the request before executing
// it, so nothing happened. A quorum-unavailable refusal is not — by the
// time the primary refuses the ack it has already staged and durably
// logged the request's records, so blindly re-sending a record-staging
// op would disclose those records a second time; only idempotent ops
// retry, and writers see the error and must decide. Transport failures
// are retryable only when the op is idempotent, or when the request
// provably never went out (dial/hello/revive failures).
func retryable(op string, err error, sent bool) bool {
	if errors.Is(err, ErrOverloaded) {
		return true
	}
	// Quota refusals happen at admission, before anything executes or
	// stages — re-sending can never double-apply, so they retry like
	// overload regardless of the op.
	if errors.Is(err, ErrQuotaExceeded) {
		return true
	}
	if errors.Is(err, ErrUnavailable) {
		return idempotentOp(op)
	}
	var te *transportError
	if errors.As(err, &te) {
		return !sent || idempotentOp(op)
	}
	return false
}

// call is the resilient request path: ensure a live negotiated
// connection, send, and retry transient failures with exponential
// backoff plus jitter. When o is non-nil the request addresses that
// object, and its wire handle is refreshed per attempt — a reconnect
// between attempts changes it.
func (c *Client) call(o *RemoteObject, req *Request) (*Response, error) {
	timeout := c.deadlineFor(req)
	backoff := c.opts.RetryBase
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, sent, err := c.attempt(o, req, timeout)
		if err == nil {
			return resp, nil
		}
		if !retryable(req.Op, err, sent) {
			return nil, err
		}
		lastErr = err
		if attempt >= c.opts.MaxRetries {
			// Both errors stay in the chain: errors.Is sees ErrExhausted
			// (the terminal classification) and the transient cause.
			return nil, fmt.Errorf("%w after %d attempts: %w", ErrExhausted, attempt+1, lastErr)
		}
		time.Sleep(backoff + time.Duration(rand.Int63n(int64(backoff/2+1))))
		if backoff *= 2; backoff > c.opts.RetryMax {
			backoff = c.opts.RetryMax
		}
	}
}

// attempt runs one try of a request. sent reports whether the request
// itself was handed to the transport (false for dial/negotiation
// failures, which are therefore always safe to retry). On a v3
// connection c.mu is released before the round-trip — the mux carries
// many concurrent requests on the one connection, which is the whole
// point of the framing; on v1/v2 the exchange serializes under c.mu as
// the line protocol requires.
func (c *Client) attempt(o *RemoteObject, req *Request, timeout time.Duration) (resp *Response, sent bool, err error) {
	c.mu.Lock()
	if err := c.ensureLocked(); err != nil {
		c.mu.Unlock()
		return nil, false, err
	}
	if o != nil {
		h, herr := o.wireHandle()
		if herr != nil {
			c.mu.Unlock()
			return nil, false, herr
		}
		req.Handle = h
	}
	if m := c.mux; m != nil {
		conn := c.conn
		c.mu.Unlock()
		resp, err = m.do(req, timeout)
		if err != nil {
			if isTransportErr(err) {
				c.dropConn(conn)
			}
			return nil, true, err
		}
	} else {
		resp, err = c.rawLocked(req, timeout)
		c.mu.Unlock()
		if err != nil {
			return nil, true, err
		}
	}
	if !resp.OK {
		return nil, true, wireError(resp)
	}
	return resp, true, nil
}

// roundTrip sends one request and reads one response, with resilience.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	return c.call(nil, req)
}

// register adds an object to the revival registry.
func (c *Client) register(o *RemoteObject) {
	c.mu.Lock()
	c.objs[o] = struct{}{}
	c.mu.Unlock()
}

// unregister removes an object (Close) from the revival registry.
func (c *Client) unregister(o *RemoteObject) {
	c.mu.Lock()
	delete(c.objs, o)
	c.mu.Unlock()
}

// Query evaluates a PQL query on the server under its default deadline and
// returns the result set, identical in shape to an in-process pql.Run.
func (c *Client) Query(q string) (*pql.Result, error) {
	return c.QueryTimeout(q, 0)
}

// QueryTimeout is Query with an explicit per-query deadline (capped by the
// server's MaxTimeout). Zero means the server default. The same deadline,
// plus the grace margin, bounds the socket exchange.
func (c *Client) QueryTimeout(q string, timeout time.Duration) (*pql.Result, error) {
	resp, err := c.roundTrip(&Request{Op: "query", Query: q, TimeoutMS: timeout.Milliseconds()})
	if err != nil {
		return nil, err
	}
	return decodeResult(resp.Columns, resp.Rows)
}

// Explain returns the plan the server would execute for q.
func (c *Client) Explain(q string) (string, error) {
	resp, err := c.roundTrip(&Request{Op: "explain", Query: q})
	if err != nil {
		return "", err
	}
	return resp.Plan, nil
}

// Stats returns the server's database and serving counters.
func (c *Client) Stats() (*Stats, error) {
	resp, err := c.roundTrip(&Request{Op: "stats"})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, errors.New("passd: stats response missing payload")
	}
	return resp.Stats, nil
}

// Drain asks the server to synchronously ingest everything new in its
// volumes' logs, returning the record count afterwards. Views pinned after
// Drain returns observe everything it ingested.
func (c *Client) Drain() (int64, error) {
	resp, err := c.roundTrip(&Request{Op: "drain"})
	if err != nil {
		return 0, err
	}
	return resp.Records, nil
}

// Checkpoint forces the server to write a durable checkpoint now and
// returns what it committed. It fails if the server has no checkpoint
// store configured.
func (c *Client) Checkpoint() (*CheckpointInfo, error) {
	resp, err := c.roundTrip(&Request{Op: "checkpoint"})
	if err != nil {
		return nil, err
	}
	if resp.Checkpoint == nil {
		return nil, errors.New("passd: checkpoint response missing payload")
	}
	return resp.Checkpoint, nil
}

// Append durably logs provenance records on the server; when the call
// returns, the records are in the server's write-through log and survive a
// daemon kill. Byte-valued records are not representable on this wire.
func (c *Client) Append(recs []record.Record) (int64, error) {
	wire := make([]WireRecord, 0, len(recs))
	for _, r := range recs {
		wr, ok := encodeRecord(r)
		if !ok {
			return 0, fmt.Errorf("passd: record value kind %v not representable", r.Value.Kind())
		}
		wire = append(wire, wr)
	}
	resp, err := c.roundTrip(&Request{Op: "append", Records: wire, recs: recs})
	if err != nil {
		return 0, err
	}
	return resp.Appended, nil
}

// Ping round-trips a no-op, for liveness checks.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&Request{Op: "ping"})
	return err
}

// verify round-trips one "verify" request and unwraps its payload.
func (c *Client) verify(req *Request) (*WireVerify, error) {
	req.Op = "verify"
	resp, err := c.roundTrip(req)
	if err != nil {
		return nil, err
	}
	if resp.Verify == nil {
		return nil, errors.New("passd: verify response missing payload")
	}
	return resp.Verify, nil
}

// VerifyRoot fetches the server's MMR root at size leaves (0 = current),
// signed when the daemon holds an identity. The answer is checkable with
// WireVerify.Statement and signer.Verify — trust the signature, not the
// transport.
func (c *Client) VerifyRoot(size uint64) (*WireVerify, error) {
	return c.verify(&Request{MMRSize: size})
}

// VerifyInclusion fetches an inclusion proof showing record position
// index is committed by the root at size leaves (0 = current). Check it
// with WireVerify.Inclusion and mmr.VerifyInclusion.
func (c *Client) VerifyInclusion(index, size uint64) (*WireVerify, error) {
	return c.verify(&Request{VerifyOp: "include", VerifyIndex: index, MMRSize: size})
}

// VerifyConsistency fetches a consistency proof showing the tree at "to"
// leaves (0 = current) extends the tree at "from" leaves without
// rewriting it. Check it with WireVerify.Consistency and
// mmr.VerifyConsistency.
func (c *Client) VerifyConsistency(from, to uint64) (*WireVerify, error) {
	return c.verify(&Request{VerifyOp: "consistency", VerifyFrom: from, VerifyTo: to})
}
