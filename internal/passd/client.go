package passd

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"passv2/internal/pql"
	"passv2/internal/record"
)

// Client is one connection to a passd server. It is safe for concurrent
// use: calls are serialized on the connection (the protocol is strict
// request/response), so open one Client per desired in-flight query.
//
// A Client is also a dpapi.Layer (and a distributor.Sink): PassMkobj and
// PassReviveObj hand out RemoteObject handles, making a remote daemon a
// drop-in lower layer for anything written against the DPAPI — see
// dpapi.go.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	addr string

	// Protocol negotiation, performed lazily on first DPAPI use.
	helloOnce sync.Once
	helloErr  error
	version   int
	volume    uint16
}

// Dial connects to a passd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn), addr: addr}, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip sends one request and reads one response.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if len(b) > maxRequestWireBytes {
		return nil, fmt.Errorf("passd: request encodes to %d bytes, over the %d-byte wire line limit; split the bundle",
			len(b), maxRequestWireBytes)
	}
	b = append(b, '\n')
	if _, err := c.bw.Write(b); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	// ReadBytes rather than a Scanner: a response line is as large as the
	// result set (a closure query can return megabytes of rows), and a
	// Scanner's buffer cap would wedge the connection mid-token.
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		if len(line) == 0 && errors.Is(err, io.EOF) {
			return nil, errors.New("passd: connection closed by server")
		}
		return nil, err
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, fmt.Errorf("passd: bad response: %w", err)
	}
	if !resp.OK {
		return nil, wireError(&resp)
	}
	return &resp, nil
}

// Query evaluates a PQL query on the server under its default deadline and
// returns the result set, identical in shape to an in-process pql.Run.
func (c *Client) Query(q string) (*pql.Result, error) {
	return c.QueryTimeout(q, 0)
}

// QueryTimeout is Query with an explicit per-query deadline (capped by the
// server's MaxTimeout). Zero means the server default.
func (c *Client) QueryTimeout(q string, timeout time.Duration) (*pql.Result, error) {
	resp, err := c.roundTrip(&Request{Op: "query", Query: q, TimeoutMS: timeout.Milliseconds()})
	if err != nil {
		return nil, err
	}
	return decodeResult(resp.Columns, resp.Rows)
}

// Explain returns the plan the server would execute for q.
func (c *Client) Explain(q string) (string, error) {
	resp, err := c.roundTrip(&Request{Op: "explain", Query: q})
	if err != nil {
		return "", err
	}
	return resp.Plan, nil
}

// Stats returns the server's database and serving counters.
func (c *Client) Stats() (*Stats, error) {
	resp, err := c.roundTrip(&Request{Op: "stats"})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, errors.New("passd: stats response missing payload")
	}
	return resp.Stats, nil
}

// Drain asks the server to synchronously ingest everything new in its
// volumes' logs, returning the record count afterwards. Views pinned after
// Drain returns observe everything it ingested.
func (c *Client) Drain() (int64, error) {
	resp, err := c.roundTrip(&Request{Op: "drain"})
	if err != nil {
		return 0, err
	}
	return resp.Records, nil
}

// Checkpoint forces the server to write a durable checkpoint now and
// returns what it committed. It fails if the server has no checkpoint
// store configured.
func (c *Client) Checkpoint() (*CheckpointInfo, error) {
	resp, err := c.roundTrip(&Request{Op: "checkpoint"})
	if err != nil {
		return nil, err
	}
	if resp.Checkpoint == nil {
		return nil, errors.New("passd: checkpoint response missing payload")
	}
	return resp.Checkpoint, nil
}

// Append durably logs provenance records on the server; when the call
// returns, the records are in the server's write-through log and survive a
// daemon kill. Byte-valued records are not representable on this wire.
func (c *Client) Append(recs []record.Record) (int64, error) {
	wire := make([]WireRecord, 0, len(recs))
	for _, r := range recs {
		wr, ok := encodeRecord(r)
		if !ok {
			return 0, fmt.Errorf("passd: record value kind %v not representable", r.Value.Kind())
		}
		wire = append(wire, wr)
	}
	resp, err := c.roundTrip(&Request{Op: "append", Records: wire})
	if err != nil {
		return 0, err
	}
	return resp.Appended, nil
}

// Ping round-trips a no-op, for liveness checks.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&Request{Op: "ping"})
	return err
}
