package passd

import (
	"errors"
	"sort"
	"sync"
	"time"

	"passv2/internal/metrics"
	"passv2/internal/pql"
)

// Cluster reads from a replicated passd group: one primary plus its
// followers, any of which can answer a query (followers serve the same
// log the primary acked — see internal/replica). It layers two policies
// over plain Clients:
//
//   - Failover: when a replica fails (dead daemon, refused connection,
//     exhausted retries), the query moves to the next replica. With a
//     quorum-replicated group, any single daemon's death leaves the
//     cluster answering.
//   - Hedged reads (PAPERS.md, "Low Latency via Redundancy"): if the
//     first replica hasn't answered within the cluster's observed p95
//     query latency, the same query is fired at a second replica and the
//     first answer wins. One straggler — a GC pause, a slow disk, an
//     overloaded peer — stops defining the tail; the cost is a bounded
//     ~5% duplicate-query rate by construction of the p95 trigger.
//
// Queries rotate round-robin across replicas so follower capacity is
// used, not just held in reserve. A Cluster is safe for concurrent use.
// Writes go to the primary via a plain Client: replication has one
// writer, so write hedging would be wrong, not just wasteful.
type Cluster struct {
	addrs []string
	opts  ClusterOptions

	mu      sync.Mutex
	clients []*Client // lazily dialed; nil until first use, re-dialed on demand
	next    int       // round-robin cursor
	lats    []time.Duration
	latPos  int
	latFull bool
	hedges  int64
	wins    int64 // hedged attempts where the second request answered first
}

// ClusterOptions tunes cluster reads; the embedded Options configure each
// per-replica Client.
type ClusterOptions struct {
	Options
	// HedgeDelay fixes the hedge trigger. Zero means adaptive: the p95 of
	// the cluster's recent query latencies (with a small floor so a
	// microsecond-fast cache workload does not hedge on noise).
	HedgeDelay time.Duration
	// NoHedge disables hedging, leaving only failover — the control arm
	// the passbench -replicate benchmark measures against.
	NoHedge bool
	// Metrics, when non-nil, registers the cluster's hedge counters
	// (passd_cluster_hedges_total / passd_cluster_hedge_wins_total) as
	// read-throughs over the same bookkeeping Hedges reports — the
	// serving edge's view of its own read hedging.
	Metrics *metrics.Registry
}

// hedgeFloor keeps the adaptive trigger from collapsing to ~0 on
// all-cache-hit workloads, where hedging every query would double load
// for nothing.
const hedgeFloor = 2 * time.Millisecond

// latWindow is how many recent query latencies feed the p95 estimate.
const latWindow = 128

// NewCluster makes a read cluster over the given replica addresses.
// Connections are dialed lazily, so a dead replica costs nothing until a
// query rotates onto it (and then only a failover hop).
func NewCluster(addrs []string, opts ClusterOptions) *Cluster {
	cl := &Cluster{
		addrs:   addrs,
		opts:    opts,
		clients: make([]*Client, len(addrs)),
		lats:    make([]time.Duration, latWindow),
	}
	if r := opts.Metrics; r != nil {
		r.CounterFunc("passd_cluster_hedges_total",
			"Hedge requests fired by this cluster client.", func() int64 {
				fired, _ := cl.Hedges()
				return fired
			})
		r.CounterFunc("passd_cluster_hedge_wins_total",
			"Hedge requests that answered before the first attempt.", func() int64 {
				_, won := cl.Hedges()
				return won
			})
	}
	return cl
}

// Close closes every dialed connection.
func (cl *Cluster) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var first error
	for i, c := range cl.clients {
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
			cl.clients[i] = nil
		}
	}
	return first
}

// Hedges reports how many hedge requests were fired and how many of them
// beat the primary attempt — the benchmark's bookkeeping.
func (cl *Cluster) Hedges() (fired, won int64) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.hedges, cl.wins
}

// client returns (dialing if needed) the i'th replica's client.
func (cl *Cluster) client(i int) (*Client, error) {
	cl.mu.Lock()
	if c := cl.clients[i]; c != nil {
		cl.mu.Unlock()
		return c, nil
	}
	addr := cl.addrs[i]
	opts := cl.opts.Options
	cl.mu.Unlock()
	// Dial outside the lock: one dead replica's dial timeout must not
	// serialize every other query in the cluster.
	c, err := DialOptions(addr, opts)
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if prev := cl.clients[i]; prev != nil {
		c.Close()
		return prev, nil
	}
	cl.clients[i] = c
	return c, nil
}

// dropClient forgets a client whose replica failed, so the next rotation
// redials instead of reusing a dead connection.
func (cl *Cluster) dropClient(i int, c *Client) {
	cl.mu.Lock()
	if cl.clients[i] == c {
		cl.clients[i] = nil
	}
	cl.mu.Unlock()
	c.Close()
}

// observe feeds one successful query latency into the p95 window.
func (cl *Cluster) observe(d time.Duration) {
	cl.mu.Lock()
	cl.lats[cl.latPos] = d
	cl.latPos++
	if cl.latPos == len(cl.lats) {
		cl.latPos, cl.latFull = 0, true
	}
	cl.mu.Unlock()
}

// hedgeDelay returns the current hedge trigger.
func (cl *Cluster) hedgeDelay() time.Duration {
	if cl.opts.HedgeDelay > 0 {
		return cl.opts.HedgeDelay
	}
	cl.mu.Lock()
	n := cl.latPos
	if cl.latFull {
		n = len(cl.lats)
	}
	sorted := append([]time.Duration(nil), cl.lats[:n]...)
	cl.mu.Unlock()
	if len(sorted) < 8 {
		// Too few samples to call a p95: start conservative so a cold
		// cluster does not hedge everything.
		return 25 * time.Millisecond
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p95 := sorted[len(sorted)*95/100]
	if p95 < hedgeFloor {
		p95 = hedgeFloor
	}
	return p95
}

// Query evaluates q on the cluster with failover and (unless disabled)
// hedging.
func (cl *Cluster) Query(q string) (*pql.Result, error) {
	return cl.QueryTimeout(q, 0)
}

// QueryTimeout is Query with an explicit per-query deadline.
func (cl *Cluster) QueryTimeout(q string, timeout time.Duration) (*pql.Result, error) {
	cl.mu.Lock()
	first := cl.next % len(cl.addrs)
	cl.next++
	cl.mu.Unlock()

	type outcome struct {
		res *pql.Result
		err error
		leg int // 0 = first attempt, >0 = hedge/failover legs
	}
	ch := make(chan outcome, len(cl.addrs))
	launched := 0
	// hedged marks legs launched by the hedge timer, as opposed to
	// failover legs launched after an error: only a hedge leg answering
	// first is a hedge "win", so Hedges() can never report won > fired.
	// Written and read only by this goroutine's select loop.
	hedged := make([]bool, len(cl.addrs))
	launch := func(leg int) {
		idx := (first + leg) % len(cl.addrs)
		launched++
		go func() {
			c, err := cl.client(idx)
			if err != nil {
				ch <- outcome{nil, err, leg}
				return
			}
			res, err := c.QueryTimeout(q, timeout)
			if err != nil && !isWireRefusal(err) {
				// Transport-level death (even after the client's own
				// retries): this replica is gone, make the rotation redial.
				cl.dropClient(idx, c)
			}
			ch <- outcome{res, err, leg}
		}()
	}

	start := time.Now()
	launch(0)
	var hedgeTimer <-chan time.Time
	if !cl.opts.NoHedge && len(cl.addrs) > 1 {
		hedgeTimer = time.After(cl.hedgeDelay())
	}

	inflight := 1
	var lastErr error
	for {
		select {
		case o := <-ch:
			inflight--
			if o.err == nil {
				cl.observe(time.Since(start))
				if hedged[o.leg] {
					cl.mu.Lock()
					cl.wins++
					cl.mu.Unlock()
				}
				return o.res, nil
			}
			lastErr = o.err
			// Failover: try the next untried replica; when none remain,
			// drain what's still in flight before giving up.
			if launched < len(cl.addrs) {
				launch(launched)
				inflight++
			} else if inflight == 0 {
				return nil, lastErr
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			if launched < len(cl.addrs) {
				cl.mu.Lock()
				cl.hedges++
				cl.mu.Unlock()
				hedged[launched] = true
				launch(launched)
				inflight++
			}
		}
	}
}

// isWireRefusal reports whether err is a well-formed server refusal (the
// connection is healthy) as opposed to transport-level death.
func isWireRefusal(err error) bool {
	var te *transportError
	if errors.As(err, &te) {
		return false
	}
	if errors.Is(err, ErrExhausted) {
		// Exhausted retries on a refusal code is still a live server.
		return errors.Is(err, ErrOverloaded) || errors.Is(err, ErrUnavailable)
	}
	return true
}
