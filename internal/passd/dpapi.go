package passd

// Client-side DPAPI: the remote half of the protocol-v2 contract. A
// passd.Client is a dpapi.Layer and hands out RemoteObject handles that
// are dpapi.Objects — the same six-call interface every local layer
// exports, implemented a second time over the wire. That is the point of
// the redesign: a component written against dpapi.Object (the Kepler
// PASS recorder, the provenance-aware Python runtime, the distributor's
// materialization sink) stacks on a remote daemon without changing a
// line, exactly as §5.2 lets layers stack locally.

import (
	"errors"
	"fmt"
	"sync"

	"passv2/internal/distributor"
	"passv2/internal/dpapi"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/replica"
)

var (
	_ dpapi.Layer      = (*Client)(nil)
	_ distributor.Sink = (*Client)(nil)
)

// Hello negotiates the protocol version with the server and returns the
// negotiated version plus the server's phantom-object volume prefix.
// Negotiation happens automatically on every (re)connection; calling this
// eagerly is a cheap way to confirm the server speaks v2.
func (c *Client) Hello() (version int, volume uint16, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureLocked(); err != nil {
		return 0, 0, err
	}
	return c.version, c.volume, nil
}

// PassMkobj creates a phantom object on the server (dpapi.Layer). The
// returned handle lives on this client's connection; the object itself
// lives in the server registry and is revivable from any connection —
// which is also how the client itself survives reconnects: it re-revives
// every open object on the new connection.
func (c *Client) PassMkobj() (dpapi.Object, error) {
	resp, err := c.roundTrip(&Request{Op: "mkobj"})
	if err != nil {
		return nil, err
	}
	return c.objFromResp(resp), nil
}

// PassReviveObj reopens a phantom object by reference (dpapi.Layer):
// across connections, and — because every acknowledged record is in the
// server's durable log — across daemon crashes (§6.5's session revival).
func (c *Client) PassReviveObj(ref pnode.Ref) (dpapi.Object, error) {
	resp, err := c.roundTrip(&Request{Op: "revive", P: uint64(ref.PNode), Ver: uint32(ref.Version)})
	if err != nil {
		return nil, err
	}
	return c.objFromResp(resp), nil
}

func (c *Client) objFromResp(resp *Response) *RemoteObject {
	o := &RemoteObject{
		c:      c,
		handle: resp.Handle,
		ref:    pnode.Ref{PNode: pnode.PNode(resp.P), Version: pnode.Version(resp.Ver)},
	}
	c.register(o)
	return o
}

// --- distributor.Sink ---

// FSName names the remote layer for sink bookkeeping.
func (c *Client) FSName() string { return "passd(" + c.addr + ")" }

// VolumeID reports the server's phantom-object volume prefix, so the
// distributor can route by pnode space. Zero if the server is
// unreachable or pre-v2.
func (c *Client) VolumeID() uint16 {
	_, vol, err := c.Hello()
	if err != nil {
		return 0
	}
	return vol
}

// AppendProvenance materializes already-analyzed records onto the remote
// daemon: the distributor's sink operation, carried by the handle-less
// write path (no second analyzer pass — the records were analyzed by the
// layer that produced them).
func (c *Client) AppendProvenance(recs []record.Record) error {
	wire, err := encodeRecords(recs)
	if err != nil {
		return err
	}
	// recs rides along in native form: a v3 connection ships it through
	// the binary record codec and never marshals the WireRecord slice.
	_, err = c.roundTrip(&Request{Op: "write", Records: wire, recs: recs})
	return err
}

// encodeRecords converts records to wire form, rejecting byte-valued
// records (not representable in the JSON line protocol).
func encodeRecords(recs []record.Record) ([]WireRecord, error) {
	wire := make([]WireRecord, 0, len(recs))
	for _, r := range recs {
		wr, ok := encodeRecord(r)
		if !ok {
			return nil, fmt.Errorf("passd: record value kind %v not representable", r.Value.Kind())
		}
		wire = append(wire, wr)
	}
	return wire, nil
}

// RemoteObject is a dpapi.Object whose layer is a passd daemon: the six
// DPAPI calls become protocol-v2 round-trips. It is safe for concurrent
// use (round-trips serialize on the owning Client). For many small
// disclosures, queue them on a Batch instead of paying a round-trip and a
// durable ack per record.
type RemoteObject struct {
	c *Client

	mu        sync.Mutex
	handle    uint64
	ref       pnode.Ref
	closed    bool
	reviveErr error // a reconnect failed to revive this object
}

var _ dpapi.Object = (*RemoteObject)(nil)

// wireHandle returns the object's handle, ErrClosed after Close, or the
// parked revival failure if a reconnect could not re-open the object.
func (o *RemoteObject) wireHandle() (uint64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return 0, dpapi.ErrClosed
	}
	if o.reviveErr != nil {
		return 0, fmt.Errorf("passd: object lost across reconnect: %w", o.reviveErr)
	}
	return o.handle, nil
}

// setRef updates the cached identity from a server response that carries
// one (read, write, freeze) — versions move server-side when cycle
// avoidance freezes the object.
func (o *RemoteObject) setRef(resp *Response) {
	if resp.P == 0 && resp.Ver == 0 {
		return
	}
	o.mu.Lock()
	if resp.P != 0 {
		o.ref.PNode = pnode.PNode(resp.P)
	}
	if resp.Ver != 0 {
		o.ref.Version = pnode.Version(resp.Ver)
	}
	o.mu.Unlock()
}

// Ref returns the object's identity as of the last call that reported it.
func (o *RemoteObject) Ref() pnode.Ref {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.ref
}

// PassRead reads the phantom's data plus the exact identity read. The
// wire handle is resolved per attempt, so a read that triggers a
// reconnect transparently uses the revived handle.
func (o *RemoteObject) PassRead(p []byte, off int64) (int, pnode.Ref, error) {
	resp, err := o.c.call(o, &Request{Op: "read", Off: off, Len: len(p)})
	if err != nil {
		return 0, pnode.Ref{}, err
	}
	o.setRef(resp)
	n := copy(p, resp.Data)
	return n, pnode.Ref{PNode: pnode.PNode(resp.P), Version: pnode.Version(resp.Ver)}, nil
}

// PassWrite sends data and a provenance bundle as one unit; the server
// acknowledges only after the records are committed durably (WAP order:
// records before data, ack after the sync barrier).
func (o *RemoteObject) PassWrite(p []byte, off int64, b *record.Bundle) (int, error) {
	var wire []WireRecord
	var recs []record.Record
	var err error
	if b != nil {
		if wire, err = encodeRecords(b.Records); err != nil {
			return 0, err
		}
		recs = b.Records
	}
	resp, err := o.c.call(o, &Request{Op: "write", Data: p, Off: off, Records: wire, recs: recs})
	if err != nil {
		return 0, err
	}
	o.setRef(resp)
	return resp.N, nil
}

// PassFreeze versions the object (cycle breaking) and returns the new
// current version.
func (o *RemoteObject) PassFreeze() (pnode.Version, error) {
	resp, err := o.c.call(o, &Request{Op: "freeze"})
	if err != nil {
		return 0, err
	}
	o.setRef(resp)
	return pnode.Version(resp.Ver), nil
}

// PassSync forces everything disclosed against this object onto the
// server's stable storage before returning.
func (o *RemoteObject) PassSync() error {
	_, err := o.c.call(o, &Request{Op: "sync"})
	return err
}

// Close releases the wire handle. The object's provenance — and the
// object itself, via PassReviveObj — survives (§5.2: closing a handle
// never destroys provenance). Transport failures count as success: a
// dead connection released every handle on it already.
func (o *RemoteObject) Close() error {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return dpapi.ErrClosed
	}
	o.closed = true
	h := o.handle
	o.mu.Unlock()
	o.c.unregister(o)
	if h == 0 {
		return nil // never held a live handle on the current connection
	}
	_, err := o.c.roundTrip(&Request{Op: "close", Handle: h})
	var te *transportError
	if errors.As(err, &te) {
		return nil
	}
	return err
}

// --- batching ---

// Batch queues DPAPI ops and ships them in one request: one round-trip
// and one durable acknowledgment for the whole pipeline, however many
// records it discloses. This is the §6.5 disclosure pattern at network
// scale — a browser session logging hundreds of page derivations pays one
// fsync, not hundreds. A Batch is not safe for concurrent use; it is a
// staging buffer for a single caller.
type Batch struct {
	c    *Client
	ops  []Request
	objs []*RemoteObject // parallel to ops; ref-update target (may be nil)
}

// NewBatch starts an empty pipeline on this client.
func (c *Client) NewBatch() *Batch { return &Batch{c: c} }

// Len reports queued ops.
func (b *Batch) Len() int { return len(b.ops) }

// Write queues a pass_write of data and records against obj.
func (b *Batch) Write(obj *RemoteObject, data []byte, off int64, recs *record.Bundle) error {
	h, err := obj.wireHandle()
	if err != nil {
		return err
	}
	var wire []WireRecord
	if recs != nil {
		if wire, err = encodeRecords(recs.Records); err != nil {
			return err
		}
	}
	var raw []record.Record
	if recs != nil {
		raw = recs.Records
	}
	b.ops = append(b.ops, Request{Op: "write", Handle: h, Data: data, Off: off, Records: wire, recs: raw})
	b.objs = append(b.objs, obj)
	return nil
}

// Disclose queues a provenance-only pass_write against obj.
func (b *Batch) Disclose(obj *RemoteObject, recs ...record.Record) error {
	if len(recs) == 0 {
		return nil
	}
	return b.Write(obj, nil, 0, record.NewBundle(recs...))
}

// Append queues a handle-less disclose of already-analyzed records.
func (b *Batch) Append(recs []record.Record) error {
	wire, err := encodeRecords(recs)
	if err != nil {
		return err
	}
	b.ops = append(b.ops, Request{Op: "write", Records: wire, recs: recs})
	b.objs = append(b.objs, nil)
	return nil
}

// Freeze queues a pass_freeze of obj.
func (b *Batch) Freeze(obj *RemoteObject) error {
	h, err := obj.wireHandle()
	if err != nil {
		return err
	}
	b.ops = append(b.ops, Request{Op: "freeze", Handle: h})
	b.objs = append(b.objs, obj)
	return nil
}

// maxBatchWireBytes bounds the encoded size of one batch request so it
// stays inside the server's per-line read budget (the connection handler
// caps lines at 4 MiB). Flush transparently splits a larger pipeline
// into several requests — per-op durability is unchanged, only the
// amortization granularity: each request is still one round-trip and
// one durable ack for everything it carries.
const maxBatchWireBytes = 2 << 20

// maxRequestWireBytes rejects any single request whose encoded line
// would overflow the server's read budget: the server could only answer
// it by tearing down the connection, so failing client-side with a real
// error is strictly better. Batches split themselves under this; a
// single op this large (an enormous record bundle) must be split by the
// caller.
const maxRequestWireBytes = 3 << 20

// approxWireSize conservatively estimates one op's encoded footprint.
func approxWireSize(r *Request) int {
	n := 96 + len(r.Data)*4/3
	for i := range r.Records {
		wr := &r.Records[i]
		n += 64 + len(wr.Attr) + len(wr.Val.S) + len(wr.Val.N)
	}
	return n
}

// Flush ships the queued ops in order and empties the pipeline, splitting
// into size-bounded batch requests when necessary. The server executes
// every op in order and acknowledges each request once, durably; per-op
// failures do not abort the rest, and Flush returns the first one
// (wrapped with its op index) after applying the identity updates of the
// ops that succeeded. A transport error aborts the remaining requests.
func (b *Batch) Flush() error {
	if len(b.ops) == 0 {
		return nil
	}
	ops, objs := b.ops, b.objs
	b.ops, b.objs = nil, nil
	var first error
	for start := 0; start < len(ops); {
		end, size := start, 0
		for end < len(ops) {
			sz := approxWireSize(&ops[end])
			if end > start && size+sz > maxBatchWireBytes {
				break
			}
			size += sz
			end++
		}
		// Handles are connection residue: re-resolve each op's handle just
		// before shipping, so a reconnect between queueing and flushing
		// (which revived every object under a fresh handle) still lands
		// the ops on the right objects.
		for i := start; i < end; i++ {
			if objs[i] != nil {
				if h, herr := objs[i].wireHandle(); herr == nil {
					ops[i].Handle = h
				}
			}
		}
		resp, err := b.c.roundTrip(&Request{Op: "batch", Ops: ops[start:end]})
		if err != nil {
			if first == nil {
				first = err
			}
			return first
		}
		if len(resp.Ops) != end-start {
			return fmt.Errorf("passd: batch returned %d responses for %d ops", len(resp.Ops), end-start)
		}
		for i := range resp.Ops {
			r := &resp.Ops[i]
			if !r.OK {
				if first == nil {
					first = fmt.Errorf("passd: batch op %d: %w", start+i, wireError(r))
				}
				continue
			}
			if objs[start+i] != nil {
				objs[start+i].setRef(r)
			}
		}
		start = end
	}
	return first
}

// wireError reconstructs a client-side error from a failed response,
// mapping the machine-readable code back onto the dpapi sentinels so
// errors.Is works across the wire.
func wireError(resp *Response) error {
	var base error
	switch resp.Code {
	case codeStale:
		base = dpapi.ErrStale
	case codeWrongLayer:
		base = dpapi.ErrWrongLayer
	case codeClosed:
		base = dpapi.ErrClosed
	case codeNotPass:
		base = dpapi.ErrNotPassVolume
	case codeTooLarge:
		// Not retryable: the same bytes would be refused again. The
		// server closes the connection after this refusal, but the error
		// the caller acts on is the budget, not the reconnect.
		return fmt.Errorf("passd: remote: %w (%s)", ErrTooLarge, resp.Error)
	case codeForked:
		// Not retryable either: the follower recomputed a different root
		// over the same bytes, so the two histories have diverged and
		// resending cannot reconcile them. The primary's stream stops
		// making progress against this follower until an operator
		// re-seeds one side — which is the fail-closed behavior a forked
		// primary must get.
		return fmt.Errorf("passd: remote: %w (%s)", ErrForked, resp.Error)
	case codeOverloaded, codeUnavail, codeReadOnly, codeQuota, codeGap:
		// Availability refusals keep the server's detail (quorum counts,
		// shed reason, gap offsets) while mapping onto the sentinel the
		// retry policy and errors.Is tests key on. codeGap maps back to
		// replica.ErrGap so a primary's replPeer.Append can tell "the
		// follower holds less than I thought — re-learn its state and
		// backfill" from a generic refusal.
		switch resp.Code {
		case codeOverloaded:
			base = ErrOverloaded
		case codeUnavail:
			base = ErrUnavailable
		case codeReadOnly:
			base = ErrReadOnly
		case codeQuota:
			base = ErrQuotaExceeded
		case codeGap:
			base = replica.ErrGap
		}
		return fmt.Errorf("passd: remote: %w (%s)", base, resp.Error)
	}
	if base != nil {
		return fmt.Errorf("passd: remote: %w", base)
	}
	return errors.New("passd: " + resp.Error)
}
