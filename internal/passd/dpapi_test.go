package passd

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"passv2/internal/dpapi"
	"passv2/internal/dpapi/dpapitest"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/waldo"
)

// TestRemoteConformance runs the shared DPAPI conformance harness against
// the wire implementation: passd.Client as the layer, RemoteObject as the
// object. Identical behavior to the kernel-local phantoms — including the
// ErrStale / ErrWrongLayer / ErrClosed sentinels, reconstructed from wire
// error codes — is the acceptance bar for remote layering.
func TestRemoteConformance(t *testing.T) {
	dpapitest.RunLayers(t, []dpapitest.LayerImpl{
		{
			Name: "passd-remote",
			New: func(t *testing.T) (dpapi.Layer, func()) {
				srv := startServer(t, waldo.New(), Config{})
				c := dialClient(t, srv)
				return c, func() {}
			},
		},
	})
}

// TestRemoteConformanceV2 runs the same harness with the client pinned to
// protocol v2, so the JSON line transport keeps passing the full DPAPI
// conformance surface even though new clients prefer v3 frames.
func TestRemoteConformanceV2(t *testing.T) {
	dpapitest.RunLayers(t, []dpapitest.LayerImpl{
		{
			Name: "passd-remote-v2",
			New: func(t *testing.T) (dpapi.Layer, func()) {
				srv := startServer(t, waldo.New(), Config{})
				c, err := DialOptions(srv.Addr(), Options{MaxVersion: 2})
				if err != nil {
					t.Fatalf("Dial: %v", err)
				}
				t.Cleanup(func() { c.Close() })
				return c, func() {}
			},
		},
	})
}

// TestHelloNegotiation pins version negotiation: the server answers with
// min(client, server) and its phantom volume prefix; a v1-era client that
// never sends hello keeps using v1 verbs untouched (covered throughout
// passd_test.go).
func TestHelloNegotiation(t *testing.T) {
	srv := startServer(t, waldo.New(), Config{})
	c := dialClient(t, srv)
	v, vol, err := c.Hello()
	if err != nil {
		t.Fatal(err)
	}
	if v != ProtocolVersion {
		t.Fatalf("negotiated version %d, want %d", v, ProtocolVersion)
	}
	if vol != DefaultObjectVolume {
		t.Fatalf("phantom volume %#x, want %#x", vol, DefaultObjectVolume)
	}
}

// TestRemoteDiscloseVisibleToQueries is the layering loop closed: an
// application discloses provenance through the remote DPAPI and the same
// daemon answers an ancestry query over it — one connection, no
// intermediate files.
func TestRemoteDiscloseVisibleToQueries(t *testing.T) {
	srv := startServer(t, waldo.New(), Config{})
	c := dialClient(t, srv)

	session, err := c.PassMkobj()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := c.PassMkobj()
	if err != nil {
		t.Fatal(err)
	}
	if err := dpapi.Disclose(session,
		record.New(session.Ref(), record.AttrType, record.StringVal(record.TypeSession)),
		record.New(session.Ref(), record.AttrName, record.StringVal("browse-1")),
	); err != nil {
		t.Fatal(err)
	}
	if err := dpapi.Disclose(doc,
		record.New(doc.Ref(), record.AttrType, record.StringVal(record.TypeDocument)),
		record.New(doc.Ref(), record.AttrName, record.StringVal("page.html")),
		record.Input(doc.Ref(), session.Ref()),
	); err != nil {
		t.Fatal(err)
	}

	res, err := c.Query(`select A from Provenance.document as D D.input* as A where D.name = "page.html"`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		for _, v := range row {
			if v.Ref.PNode == session.Ref().PNode {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("ancestry query did not reach the session object:\n%s", res.Format())
	}
}

// TestRemoteBatchPipelining checks batch semantics: every queued op
// executes in order under one acknowledgment, identity updates (freeze)
// propagate back to the client handles, and a poisoned op fails its slot
// without aborting the rest.
func TestRemoteBatchPipelining(t *testing.T) {
	srv := startServer(t, waldo.New(), Config{})
	c := dialClient(t, srv)

	obj, err := c.PassMkobj()
	if err != nil {
		t.Fatal(err)
	}
	ro := obj.(*RemoteObject)
	b := c.NewBatch()
	const n = 64
	for i := 0; i < n; i++ {
		dep := pnode.Ref{PNode: pnode.PNode(1000 + i), Version: 1}
		if err := b.Disclose(ro, record.Input(ro.Ref(), dep)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Freeze(ro); err != nil {
		t.Fatal(err)
	}
	if got := b.Len(); got != n+1 {
		t.Fatalf("batch length %d, want %d", got, n+1)
	}
	if err := b.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if b.Len() != 0 {
		t.Fatal("flush must drain the batch")
	}
	if v := ro.Ref().Version; v != 2 {
		t.Fatalf("freeze in batch: client-side version %v, want 2", v)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches != 1 {
		t.Fatalf("batches = %d, want 1", st.Batches)
	}
	// n INPUT records + the freeze chain record reached the database.
	if st.Appends < int64(n+1) {
		t.Fatalf("committed %d records, want >= %d", st.Appends, n+1)
	}

	// A closed handle poisons only its own slot.
	other, err := c.PassMkobj()
	if err != nil {
		t.Fatal(err)
	}
	ref := other.Ref()
	b2 := c.NewBatch()
	if err := b2.Disclose(ro, record.Input(ro.Ref(), pnode.Ref{PNode: 7, Version: 1})); err != nil {
		t.Fatal(err)
	}
	b2.ops = append(b2.ops, Request{Op: "write", Handle: 999999}) // unknown handle
	b2.objs = append(b2.objs, nil)
	if err := b2.Disclose(ro, record.Input(ro.Ref(), pnode.Ref{PNode: 8, Version: 1})); err != nil {
		t.Fatal(err)
	}
	err = b2.Flush()
	if err == nil || !strings.Contains(err.Error(), "batch op 1") {
		t.Fatalf("flush error %v, want failure naming op 1", err)
	}
	_ = ref
	recsBefore := st.Appends
	st, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Appends != recsBefore+2 {
		t.Fatalf("ops around the failed slot must still commit: appends %d, want %d", st.Appends, recsBefore+2)
	}

	// An oversized pipeline splits into several size-bounded requests so
	// the server's line budget is never exceeded; every op still lands.
	batchesBefore := st.Batches
	blob := strings.Repeat("x", 300<<10)
	big := c.NewBatch()
	const blobs = 10
	for i := 0; i < blobs; i++ {
		if err := big.Disclose(ro, record.New(ro.Ref(), record.Attr("BLOB"), record.StringVal(fmt.Sprintf("%s-%d", blob, i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := big.Flush(); err != nil {
		t.Fatalf("oversized flush: %v", err)
	}
	st, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches < batchesBefore+2 {
		t.Fatalf("oversized pipeline used %d batch requests, want >= 2", st.Batches-batchesBefore)
	}
	if st.Appends < recsBefore+2+blobs {
		t.Fatalf("split pipeline lost records: appends %d", st.Appends)
	}
}

// TestRemoteReviveAcrossConnections: handles are connection-scoped, the
// object is not. A second connection revives what the first created, and
// the first connection's handle numbers mean nothing to the second.
func TestRemoteReviveAcrossConnections(t *testing.T) {
	srv := startServer(t, waldo.New(), Config{})
	c1 := dialClient(t, srv)

	obj, err := c1.PassMkobj()
	if err != nil {
		t.Fatal(err)
	}
	ref := obj.Ref()
	if err := dpapi.Disclose(obj, record.New(ref, record.AttrName, record.StringVal("durable-session"))); err != nil {
		t.Fatal(err)
	}
	c1.Close() // drop the whole connection, handles and all

	c2 := dialClient(t, srv)
	back, err := c2.PassReviveObj(ref)
	if err != nil {
		t.Fatalf("revive on a fresh connection: %v", err)
	}
	if back.Ref().PNode != ref.PNode {
		t.Fatalf("revived %v, want %v", back.Ref(), ref)
	}
	if err := dpapi.Disclose(back, record.Input(back.Ref(), pnode.Ref{PNode: 42, Version: 1})); err != nil {
		t.Fatalf("disclose after revive: %v", err)
	}
	// The first connection's handle number is meaningless here.
	resp, err := c2.roundTrip(&Request{Op: "read", Handle: obj.(*RemoteObject).handle + 100, Len: 4})
	if err == nil {
		t.Fatalf("foreign handle resolved: %+v", resp)
	}
}

// TestRemoteReviveAcrossRestart: a new server process (same database) can
// revive objects a dead one created, because every acknowledged record is
// in the store and the registry reseeds from it — including the pnode
// allocator, which must never re-issue an old identity.
func TestRemoteReviveAcrossRestart(t *testing.T) {
	w := waldo.New()
	srv1 := startServer(t, w, Config{})
	c1 := dialClient(t, srv1)

	obj, err := c1.PassMkobj()
	if err != nil {
		t.Fatal(err)
	}
	ref := obj.Ref()
	if err := dpapi.Disclose(obj, record.New(ref, record.AttrName, record.StringVal("survivor"))); err != nil {
		t.Fatal(err)
	}
	if _, err := obj.PassFreeze(); err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	srv2 := startServer(t, w, Config{})
	c2 := dialClient(t, srv2)
	back, err := c2.PassReviveObj(ref)
	if err != nil {
		t.Fatalf("revive after restart: %v", err)
	}
	if got := back.Ref(); got.PNode != ref.PNode || got.Version != 2 {
		t.Fatalf("revived at %v, want pnode %v at version 2", got, ref.PNode)
	}
	// Never-recycled pnodes: fresh objects allocate past the survivor.
	fresh, err := c2.PassMkobj()
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Ref().PNode <= ref.PNode {
		t.Fatalf("allocator re-issued old identity space: %v <= %v", fresh.Ref().PNode, ref.PNode)
	}
	// And a truly unknown pnode is still stale.
	if _, err := c2.PassReviveObj(pnode.Ref{PNode: ref.PNode + 1<<30, Version: 1}); !errors.Is(err, dpapi.ErrStale) {
		t.Fatalf("unknown pnode after restart: %v, want ErrStale", err)
	}
}

// TestRemoteSinkAppend: the client is a distributor.Sink — handle-less
// writes materialize already-analyzed records onto the daemon, and the
// alias verb "append" shares the same committed counter (one durable-ack
// path).
func TestRemoteSinkAppend(t *testing.T) {
	srv := startServer(t, waldo.New(), Config{})
	c := dialClient(t, srv)
	if got := c.VolumeID(); got != DefaultObjectVolume {
		t.Fatalf("sink volume %#x, want %#x", got, DefaultObjectVolume)
	}
	recs := make([]record.Record, 0, 10)
	for i := 0; i < 10; i++ {
		ref := pnode.Ref{PNode: pnode.PNode(uint64(DefaultObjectVolume)<<48 | uint64(i+1)), Version: 1}
		recs = append(recs, record.New(ref, record.AttrName, record.StringVal(fmt.Sprintf("/m/%d", i))))
	}
	if err := c.AppendProvenance(recs); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Appends != 10 {
		t.Fatalf("appends = %d, want 10", st.Appends)
	}
	if st.Records != 10 {
		t.Fatalf("records = %d, want 10", st.Records)
	}
}

// TestRemoteWireHardening pins the bounds checks on wire-supplied spans:
// hostile offsets and lengths must produce errors, not panics or huge
// allocations, and a rejected write must commit nothing (records and
// data are one unit). The connection survives every rejection.
func TestRemoteWireHardening(t *testing.T) {
	srv := startServer(t, waldo.New(), Config{})
	c := dialClient(t, srv)
	obj, err := c.PassMkobj()
	if err != nil {
		t.Fatal(err)
	}
	ro := obj.(*RemoteObject)

	// Negative write offset: rejected whole, including the records.
	bundle := record.NewBundle(record.Input(ro.Ref(), pnode.Ref{PNode: 9, Version: 1}))
	if _, err := ro.PassWrite([]byte("x"), -1, bundle); err == nil {
		t.Fatal("negative-offset write accepted")
	}
	// Write beyond the phantom data cap: rejected, no allocation.
	if _, err := ro.PassWrite([]byte("x"), 1<<60, nil); err == nil {
		t.Fatal("beyond-cap write accepted")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Appends != 0 {
		t.Fatalf("rejected writes committed %d records, want 0", st.Appends)
	}

	// A huge read length allocates only what is readable.
	if _, err := ro.PassWrite([]byte("tiny"), 0, nil); err != nil {
		t.Fatal(err)
	}
	resp, err := c.roundTrip(&Request{Op: "read", Handle: ro.handle, Len: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if resp.N != 4 || string(resp.Data) != "tiny" {
		t.Fatalf("read returned %d bytes %q, want the 4 readable ones", resp.N, resp.Data)
	}
	// Negative lengths and offsets read as empty, not as errors or panics.
	if resp, err = c.roundTrip(&Request{Op: "read", Handle: ro.handle, Len: -5, Off: -9}); err != nil || resp.N != 0 {
		t.Fatalf("degenerate read: n=%d err=%v, want empty success", resp.N, err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection did not survive hardening probes: %v", err)
	}
}
