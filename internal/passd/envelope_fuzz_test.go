package passd

// Fuzz harness for the v2 JSON request envelope and the hello/negotiation
// line: whatever JSON a client sends, the envelope must either fail to
// parse or yield a Request the server can negotiate, re-encode onto the
// v3 wire, and decode back without panicking or losing the scalar fields.
// CI runs this as a short smoke (-fuzz FuzzEnvelopeDecode -fuzztime 15s)
// alongside FuzzFrameDecode; longer local runs just work:
// go test -fuzz FuzzEnvelopeDecode ./internal/passd

import (
	"encoding/json"
	"strings"
	"testing"
)

// envelopeSeeds is one representative request per verb the server
// dispatches — the conformance corpus the handler tests exercise — so the
// fuzzer starts inside the envelope grammar instead of rediscovering it.
func envelopeSeeds() []*Request {
	return []*Request{
		{Op: "hello", Version: ProtocolVersion, Tenant: "acct"},
		{Op: "hello", Version: 1},
		{Op: "query", Query: `select F from Provenance.file as F where F.name = "/x"`, TimeoutMS: 50},
		{Op: "explain", Query: "select F from Provenance.file as F"},
		{Op: "stats"},
		{Op: "drain"},
		{Op: "checkpoint"},
		{Op: "ping"},
		{Op: "append", Records: []WireRecord{
			{P: 9, V: 1, Attr: "NAME", Val: Value{K: "str", S: "/a"}},
			{P: 9, V: 1, Attr: "ENV", Val: Value{K: "int", I: -3}},
		}},
		{Op: "mkobj", Tenant: "bulk"},
		{Op: "revive", P: 12, Ver: 2},
		{Op: "read", Handle: 4, Off: 100, Len: 64},
		{Op: "write", Handle: 4, Off: -1, Data: []byte("payload"), Records: []WireRecord{
			{P: 4, V: 1, Attr: "TYPE", Val: Value{K: "bool", B: true}},
			{P: 4, V: 1, Attr: "X", Val: Value{K: "null"}},
			{P: 4, V: 1, Attr: "REF", Val: Value{K: "ref", P: 2, V: 1, N: "/dep"}},
		}},
		{Op: "freeze", Handle: 4},
		{Op: "sync", Handle: 4},
		{Op: "close", Handle: 4},
		{Op: "batch", Ops: []Request{
			{Op: "mkobj"},
			{Op: "write", Handle: 1, Off: -1, Data: []byte("b")},
			{Op: "freeze", Handle: 1},
		}},
		{Op: "repljoin", Addr: "127.0.0.1:9999"},
		{Op: "replstate"},
		{Op: "replappend", Off: 4096, Data: []byte("logchunk")},
	}
}

func FuzzEnvelopeDecode(f *testing.F) {
	for _, req := range envelopeSeeds() {
		line, err := json.Marshal(req)
		if err != nil {
			f.Fatalf("seed %q did not marshal: %v", req.Op, err)
		}
		f.Add(line)
	}
	// Hostile shapes the JSON decoder must survive: wrong types, deep
	// nesting, absurd versions, truncated/duplicated keys.
	for _, raw := range []string{
		`{}`,
		`{"op":""}`,
		`{"op":"hello","v":-1}`,
		`{"op":"hello","v":999999,"tenant":"` + strings.Repeat("t", 256) + `"}`,
		`{"op":"batch","ops":[{"op":"batch","ops":[{"op":"batch"}]}]}`,
		`{"op":"query","query":"\\u0000","timeout_ms":-5}`,
		`{"op":"append","records":[{"p":18446744073709551615,"v":4294967295,"attr":"A","val":{"k":"zzz"}}]}`,
		`{"op":"write","h":0,"off":-9223372036854775808,"data":"bm90IGJhc2U2NA"}`,
		`{"op":"ping","op":"query"}`,
	} {
		f.Add([]byte(raw))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := json.Unmarshal(data, &req); err != nil {
			return // rejected envelopes are the decoder doing its job
		}

		// Negotiation: for every server ceiling, the answer must land in
		// [1, ceiling] no matter what version the envelope claimed.
		for maxV := 1; maxV <= ProtocolVersion; maxV++ {
			got := negotiateVersion(req.Version, maxV)
			if got < 1 || got > maxV {
				t.Fatalf("negotiateVersion(%d, %d) = %d, outside [1, %d]",
					req.Version, maxV, got, maxV)
			}
		}

		// Record decoding must never panic, whatever the value kind.
		for _, wr := range req.Records {
			_, _ = decodeRecord(wr)
		}

		// Re-framing: a parsed envelope must survive the v3 codec
		// round-trip with its scalar fields intact. (Records is not
		// asserted: the binary framing ships records natively and the
		// payload marshaler drops the JSON form by design.)
		buf, err := appendRequestPayload(nil, &req, 0)
		if err != nil {
			return // not every envelope is representable (e.g. giant fields)
		}
		back, n, err := decodeRequestPayload(buf, 0)
		if err != nil {
			t.Fatalf("re-encoded envelope did not decode: %v\nreq: %+v", err, req)
		}
		if n != len(buf) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
		}
		if back.Op != req.Op || back.Query != req.Query || back.Tenant != req.Tenant ||
			back.Version != req.Version || back.Handle != req.Handle ||
			back.P != req.P || back.Ver != req.Ver ||
			back.Off != req.Off || back.Len != req.Len ||
			back.TimeoutMS != req.TimeoutMS || back.Addr != req.Addr {
			t.Fatalf("scalar fields changed across the v3 round-trip:\nsent: %+v\ngot:  %+v", req, *back)
		}
		if len(back.Ops) != len(req.Ops) {
			t.Fatalf("batch length changed across the v3 round-trip: sent %d ops, got %d",
				len(req.Ops), len(back.Ops))
		}
	})
}
