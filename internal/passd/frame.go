package passd

// Protocol v3: binary framing (DESIGN.md §11). After "hello" negotiates
// version 3, both sides abandon JSON lines and exchange length-prefixed
// frames carrying a stream ID, so one connection multiplexes many
// in-flight requests — a slow query on stream 7 cannot head-of-line-block
// a fast read on stream 8 — and a large result set is chunked across
// several frames instead of marshaled into one giant line.
//
// Frame layout (all integers little-endian):
//
//	length  u32  bytes of payload that follow the 10-byte header
//	stream  u32  request/response correlation ID (client-assigned, ≥1)
//	kind    u8   1 = request, 2 = response
//	flags   u8   bit 0 (MORE): this response continues in a later frame
//	payload [length]byte
//
// A request is always a single frame. A response is one or more frames on
// its request's stream; every frame but the last sets MORE, and frames of
// different streams may interleave freely.
//
// Payloads are a hybrid encoding: a small JSON "envelope" (the Request /
// Response struct with its bulk fields stripped) followed by binary
// sections for exactly the fields that dominate wire volume — provenance
// records ride internal/record's AppendBundle/DecodeBundle codec instead
// of base64-inside-JSON, data buffers are raw bytes, and result rows are
// a compact tagged encoding. The envelope keeps the long tail of small
// fields (op, handles, offsets, error codes) debuggable and versionable;
// the sections remove the JSON/base64 tax from the hot 99% of bytes.
//
// Request payload:
//
//	uvarint envLen, envLen bytes   JSON Request, Records/Data/Ops stripped
//	record bundle                  internal/record bundle (uvarint count…)
//	uvarint dataLen, dataLen bytes write payload
//	uvarint nOps, nOps × payload   batch ops, same grammar (no nesting)
//
// Response payload (per frame; sections accumulate across MORE frames):
//
//	uvarint envLen, envLen bytes   JSON Response, Rows/Data/Ops stripped
//	                               (zero on every frame after the first)
//	uvarint nRows, nRows × row     row = uvarint nCols, nCols × value
//	uvarint dataLen, dataLen bytes read payload
//	uvarint nOps, nOps × payload   batch op replies (first frame only)
//
// value = kind byte (0 null, 1 ref, 2 str, 3 int, 4 bool) then: ref =
// u64 pnode, u32 version, uvarint nameLen + name; str = uvarint len +
// bytes; int = signed varint; bool = one byte.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"passv2/internal/record"
)

const (
	frameHeaderLen = 10
	frameRequest   = 1
	frameResponse  = 2
	flagMore       = 1

	// maxFramePayload caps one frame, mirroring internal/record's 16 MiB
	// blob cap: big enough for any response chunk the server emits, small
	// enough that a corrupt or hostile length prefix cannot make either
	// side allocate unboundedly.
	maxFramePayload = 16 << 20

	// frameChunkTarget is the soft size at which a response is split
	// across MORE-flagged frames: large result sets stream out in ~256 KiB
	// pieces instead of one multi-megabyte write that would monopolize the
	// connection (and the peer's read buffer) in one burst.
	frameChunkTarget = 256 << 10
)

// errFrameTooLarge reports a frame whose declared payload exceeds
// maxFramePayload. The stream ID is already known when the header is
// read, so the receiver can refuse on that stream before closing.
var errFrameTooLarge = errors.New("passd: frame exceeds the wire size budget")

var errFrameCorrupt = errors.New("passd: corrupt frame payload")

// frameHeader is one decoded frame header.
type frameHeader struct {
	length int
	stream uint32
	kind   byte
	flags  byte
}

// readFrameHeader reads and validates the fixed 10-byte header. The
// payload length is validated here — before any allocation — so a
// corrupt length prefix costs nothing.
func readFrameHeader(r io.Reader) (frameHeader, error) {
	var b [frameHeaderLen]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return frameHeader{}, err
	}
	h := frameHeader{
		length: int(binary.LittleEndian.Uint32(b[0:4])),
		stream: binary.LittleEndian.Uint32(b[4:8]),
		kind:   b[8],
		flags:  b[9],
	}
	if h.length > maxFramePayload {
		return h, errFrameTooLarge
	}
	if h.kind != frameRequest && h.kind != frameResponse {
		return h, fmt.Errorf("%w: unknown frame kind %d", errFrameCorrupt, h.kind)
	}
	return h, nil
}

// putFrameHeader writes the header into a caller-provided 10-byte prefix.
func putFrameHeader(b []byte, payloadLen int, stream uint32, kind, flags byte) {
	binary.LittleEndian.PutUint32(b[0:4], uint32(payloadLen))
	binary.LittleEndian.PutUint32(b[4:8], stream)
	b[8] = kind
	b[9] = flags
}

// readFramePayload allocates and fills one frame's payload. The buffer is
// freshly allocated per frame on purpose: decoded requests/responses alias
// into it (data buffers, op slices), and the decoded object may outlive
// the read loop's next iteration (the server dispatches asynchronously).
func readFramePayload(r io.Reader, h frameHeader) ([]byte, error) {
	if h.length == 0 {
		return nil, nil
	}
	payload := make([]byte, h.length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// frameScratch is the pooled working set of one frame writer: the payload
// under construction (with the header prefix reserved in front, so client
// sends are one conn.Write) and an envelope marshal buffer.
type frameScratch struct {
	buf []byte // header + payload being built
	tmp []byte // row/op staging so section counts can prefix their bytes
}

var frameScratchPool = sync.Pool{New: func() any { return &frameScratch{} }}

func getFrameScratch() *frameScratch {
	sc := frameScratchPool.Get().(*frameScratch)
	sc.buf = sc.buf[:0]
	sc.tmp = sc.tmp[:0]
	return sc
}

// putFrameScratch returns a scratch unless a giant response inflated it —
// pooling multi-megabyte buffers would trade the GC churn this path
// exists to remove for permanently resident memory.
func putFrameScratch(sc *frameScratch) {
	if cap(sc.buf) <= 1<<20 && cap(sc.tmp) <= 1<<20 {
		frameScratchPool.Put(sc)
	}
}

// --- envelope marshaling ---

// marshalRequestEnv marshals req with its binary-section fields stripped.
// The fields are restored before returning; the caller owns req for the
// duration of the call.
func marshalRequestEnv(req *Request) ([]byte, error) {
	recs, data, ops := req.Records, req.Data, req.Ops
	req.Records, req.Data, req.Ops = nil, nil, nil
	b, err := json.Marshal(req)
	req.Records, req.Data, req.Ops = recs, data, ops
	return b, err
}

func marshalResponseEnv(resp *Response) ([]byte, error) {
	rows, data, ops := resp.Rows, resp.Data, resp.Ops
	resp.Rows, resp.Data, resp.Ops = nil, nil, nil
	b, err := json.Marshal(resp)
	resp.Rows, resp.Data, resp.Ops = rows, data, ops
	return b, err
}

// --- varint helpers over a cursor ---

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// readUvarint decodes a uvarint at buf[pos:], returning the value and the
// new cursor. Fails on truncation or overlong encodings.
func readUvarint(buf []byte, pos int) (uint64, int, error) {
	v, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return 0, 0, errFrameCorrupt
	}
	return v, pos + n, nil
}

// readSection bounds-checks and slices a uvarint-length-prefixed byte
// section. The returned slice aliases buf.
func readSection(buf []byte, pos int) ([]byte, int, error) {
	n, pos, err := readUvarint(buf, pos)
	if err != nil {
		return nil, 0, err
	}
	if n > uint64(len(buf)-pos) {
		return nil, 0, errFrameCorrupt
	}
	return buf[pos : pos+int(n)], pos + int(n), nil
}

// --- wire values (result cells) ---

const (
	bvNull = 0
	bvRef  = 1
	bvStr  = 2
	bvInt  = 3
	bvBool = 4
)

func appendWireValue(dst []byte, v *Value) []byte {
	switch v.K {
	case "ref":
		dst = append(dst, bvRef)
		dst = binary.LittleEndian.AppendUint64(dst, v.P)
		dst = binary.LittleEndian.AppendUint32(dst, v.V)
		dst = appendUvarint(dst, uint64(len(v.N)))
		return append(dst, v.N...)
	case "str":
		dst = append(dst, bvStr)
		dst = appendUvarint(dst, uint64(len(v.S)))
		return append(dst, v.S...)
	case "int":
		dst = append(dst, bvInt)
		return binary.AppendVarint(dst, v.I)
	case "bool":
		dst = append(dst, bvBool)
		if v.B {
			return append(dst, 1)
		}
		return append(dst, 0)
	default:
		return append(dst, bvNull)
	}
}

func readWireValue(buf []byte, pos int) (Value, int, error) {
	if pos >= len(buf) {
		return Value{}, 0, errFrameCorrupt
	}
	kind := buf[pos]
	pos++
	switch kind {
	case bvNull:
		return Value{K: "null"}, pos, nil
	case bvRef:
		if len(buf)-pos < 12 {
			return Value{}, 0, errFrameCorrupt
		}
		p := binary.LittleEndian.Uint64(buf[pos:])
		ver := binary.LittleEndian.Uint32(buf[pos+8:])
		name, pos, err := readSection(buf, pos+12)
		if err != nil {
			return Value{}, 0, err
		}
		return Value{K: "ref", P: p, V: ver, N: string(name)}, pos, nil
	case bvStr:
		s, pos, err := readSection(buf, pos)
		if err != nil {
			return Value{}, 0, err
		}
		return Value{K: "str", S: string(s)}, pos, nil
	case bvInt:
		i, n := binary.Varint(buf[pos:])
		if n <= 0 {
			return Value{}, 0, errFrameCorrupt
		}
		return Value{K: "int", I: i}, pos + n, nil
	case bvBool:
		if pos >= len(buf) {
			return Value{}, 0, errFrameCorrupt
		}
		return Value{K: "bool", B: buf[pos] != 0}, pos + 1, nil
	default:
		return Value{}, 0, fmt.Errorf("%w: unknown value kind %d", errFrameCorrupt, kind)
	}
}

func appendWireRow(dst []byte, row []Value) []byte {
	dst = appendUvarint(dst, uint64(len(row)))
	for i := range row {
		dst = appendWireValue(dst, &row[i])
	}
	return dst
}

func readWireRow(buf []byte, pos int) ([]Value, int, error) {
	n, pos, err := readUvarint(buf, pos)
	if err != nil {
		return nil, 0, err
	}
	if n > uint64(len(buf)-pos) { // each value is ≥1 byte
		return nil, 0, errFrameCorrupt
	}
	row := make([]Value, 0, n)
	for i := uint64(0); i < n; i++ {
		var v Value
		v, pos, err = readWireValue(buf, pos)
		if err != nil {
			return nil, 0, err
		}
		row = append(row, v)
	}
	return row, pos, nil
}

// --- request payloads ---

// maxOpsNesting bounds batch recursion in the decoders: the protocol says
// batches do not nest, so one level of ops is all a well-formed payload
// carries; the decoder tolerates exactly that and refuses deeper input
// (which could only come from corruption or an attacker).
const maxOpsNesting = 1

// requestBundle yields the request's records as a codec bundle: the
// native []record.Record when the request was built client-side (recs) or
// arrived over a binary frame, converting the JSON wire form otherwise
// (requests constructed directly with WireRecords).
func requestBundle(req *Request) (record.Bundle, error) {
	if req.recs != nil {
		return record.Bundle{Records: req.recs}, nil
	}
	if len(req.Records) == 0 {
		return record.Bundle{}, nil
	}
	recs := make([]record.Record, 0, len(req.Records))
	for _, wr := range req.Records {
		r, err := decodeRecord(wr)
		if err != nil {
			return record.Bundle{}, err
		}
		recs = append(recs, r)
	}
	return record.Bundle{Records: recs}, nil
}

// appendRequestPayload encodes req (including batch ops, recursively)
// onto dst. Requests are always a single frame: the client caps its own
// batches well under maxFramePayload.
func appendRequestPayload(dst []byte, req *Request, depth int) ([]byte, error) {
	if depth > maxOpsNesting {
		return nil, errors.New("passd: batch ops nest too deep to encode")
	}
	env, err := marshalRequestEnv(req)
	if err != nil {
		return nil, err
	}
	dst = appendUvarint(dst, uint64(len(env)))
	dst = append(dst, env...)
	b, err := requestBundle(req)
	if err != nil {
		return nil, err
	}
	dst = record.AppendBundle(dst, &b)
	dst = appendUvarint(dst, uint64(len(req.Data)))
	dst = append(dst, req.Data...)
	dst = appendUvarint(dst, uint64(len(req.Ops)))
	for i := range req.Ops {
		dst, err = appendRequestPayload(dst, &req.Ops[i], depth+1)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// decodeRequestPayload parses one request payload. Returned requests
// alias buf (data buffers, record blobs), so buf must not be reused while
// the request is live — the read loops allocate a fresh payload per
// frame for exactly this reason.
func decodeRequestPayload(buf []byte, depth int) (*Request, int, error) {
	if depth > maxOpsNesting {
		return nil, 0, fmt.Errorf("%w: ops nest too deep", errFrameCorrupt)
	}
	req := &Request{}
	env, pos, err := readSection(buf, 0)
	if err != nil {
		return nil, 0, err
	}
	if len(env) > 0 {
		if err := json.Unmarshal(env, req); err != nil {
			return nil, 0, fmt.Errorf("%w: bad envelope: %v", errFrameCorrupt, err)
		}
	}
	bundle, n, err := record.DecodeBundle(buf[pos:])
	if err != nil {
		return nil, 0, fmt.Errorf("%w: bad record bundle: %v", errFrameCorrupt, err)
	}
	pos += n
	if bundle.Records == nil {
		bundle.Records = []record.Record{}
	}
	req.recs = bundle.Records
	data, pos, err := readSection(buf, pos)
	if err != nil {
		return nil, 0, err
	}
	if len(data) > 0 {
		req.Data = data
	}
	nOps, pos, err := readUvarint(buf, pos)
	if err != nil {
		return nil, 0, err
	}
	if nOps > uint64(len(buf)-pos) { // each op is ≥3 bytes
		return nil, 0, errFrameCorrupt
	}
	if nOps > 0 {
		req.Ops = make([]Request, 0, min(int(nOps), 256))
		for i := uint64(0); i < nOps; i++ {
			op, n, err := decodeRequestPayload(buf[pos:], depth+1)
			if err != nil {
				return nil, 0, err
			}
			pos += n
			req.Ops = append(req.Ops, *op)
		}
	}
	return req, pos, nil
}

// --- response payloads ---

// appendResponsePayload encodes resp as a single payload (no chunking);
// used for batch op replies nested inside an outer response, which are
// never split.
func appendResponsePayload(dst []byte, resp *Response, depth int) ([]byte, error) {
	if depth > maxOpsNesting {
		return nil, errors.New("passd: response ops nest too deep to encode")
	}
	env, err := marshalResponseEnv(resp)
	if err != nil {
		return nil, err
	}
	dst = appendUvarint(dst, uint64(len(env)))
	dst = append(dst, env...)
	dst = appendUvarint(dst, uint64(len(resp.Rows)))
	for _, row := range resp.Rows {
		dst = appendWireRow(dst, row)
	}
	dst = appendUvarint(dst, uint64(len(resp.Data)))
	dst = append(dst, resp.Data...)
	dst = appendUvarint(dst, uint64(len(resp.Ops)))
	for i := range resp.Ops {
		dst, err = appendResponsePayload(dst, &resp.Ops[i], depth+1)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// writeResponseFrames encodes resp as one or more frames on stream and
// writes them to w. Responses whose rows/data exceed frameChunkTarget are
// split across MORE-flagged frames; the envelope and batch op replies
// ride the first frame only.
func writeResponseFrames(w *bufio.Writer, stream uint32, resp *Response, sc *frameScratch) error {
	env, err := marshalResponseEnv(resp)
	if err != nil {
		return err
	}
	rows, data := resp.Rows, resp.Data
	ri, di := 0, 0
	first := true
	for {
		buf := sc.buf[:0]
		buf = append(buf, make([]byte, frameHeaderLen)...)
		if first {
			buf = appendUvarint(buf, uint64(len(env)))
			buf = append(buf, env...)
		} else {
			buf = append(buf, 0)
		}
		// Rows chunk: stage rows in tmp so the count can prefix them.
		tmp := sc.tmp[:0]
		nRows := 0
		for ri < len(rows) && len(buf)+len(tmp) < frameChunkTarget {
			tmp = appendWireRow(tmp, rows[ri])
			ri++
			nRows++
		}
		buf = appendUvarint(buf, uint64(nRows))
		buf = append(buf, tmp...)
		sc.tmp = tmp
		// Data chunk: fill the remaining budget.
		chunk := 0
		if di < len(data) {
			chunk = len(data) - di
			if room := frameChunkTarget - len(buf); chunk > room {
				chunk = room
				if chunk < 1 {
					chunk = 1 // always make progress
				}
			}
		}
		buf = appendUvarint(buf, uint64(chunk))
		buf = append(buf, data[di:di+chunk]...)
		di += chunk
		// Batch op replies: first frame only, never chunked.
		if first {
			buf = appendUvarint(buf, uint64(len(resp.Ops)))
			for i := range resp.Ops {
				buf, err = appendResponsePayload(buf, &resp.Ops[i], 1)
				if err != nil {
					sc.buf = buf
					return err
				}
			}
		} else {
			buf = append(buf, 0)
		}
		sc.buf = buf
		payload := len(buf) - frameHeaderLen
		if payload > maxFramePayload {
			return fmt.Errorf("passd: response frame encodes to %d bytes, over the %d-byte frame budget", payload, maxFramePayload)
		}
		more := ri < len(rows) || di < len(data)
		var flags byte
		if more {
			flags = flagMore
		}
		putFrameHeader(buf[:frameHeaderLen], payload, stream, frameResponse, flags)
		if _, err := w.Write(buf); err != nil {
			return err
		}
		if !more {
			return nil
		}
		first = false
	}
}

// respPartial accumulates one response across its MORE-flagged frames.
type respPartial struct {
	env  []byte
	rows [][]Value
	data []byte
	ops  []Response
}

// decodeResponsePayload parses one complete (non-chunked) response
// payload — the nested form batch op replies use.
func decodeResponsePayload(buf []byte, depth int) (*Response, int, error) {
	if depth > maxOpsNesting {
		return nil, 0, fmt.Errorf("%w: response ops nest too deep", errFrameCorrupt)
	}
	var p respPartial
	pos, err := p.absorb(buf, depth)
	if err != nil {
		return nil, 0, err
	}
	resp, err := p.finish()
	return resp, pos, err
}

// absorb parses one frame's payload into the partial. Sections accumulate:
// rows and data append, the envelope and ops arrive on the first frame.
func (p *respPartial) absorb(buf []byte, depth int) (int, error) {
	env, pos, err := readSection(buf, 0)
	if err != nil {
		return 0, err
	}
	if len(env) > 0 {
		p.env = append(p.env, env...)
	}
	nRows, pos, err := readUvarint(buf, pos)
	if err != nil {
		return 0, err
	}
	if nRows > uint64(len(buf)-pos) { // each row is ≥1 byte
		return 0, errFrameCorrupt
	}
	if nRows > 0 && p.rows == nil {
		p.rows = make([][]Value, 0, min(int(nRows), 4096))
	}
	for i := uint64(0); i < nRows; i++ {
		var row []Value
		row, pos, err = readWireRow(buf, pos)
		if err != nil {
			return 0, err
		}
		p.rows = append(p.rows, row)
	}
	data, pos, err := readSection(buf, pos)
	if err != nil {
		return 0, err
	}
	if len(data) > 0 {
		p.data = append(p.data, data...)
	}
	nOps, pos, err := readUvarint(buf, pos)
	if err != nil {
		return 0, err
	}
	if nOps > uint64(len(buf)-pos) {
		return 0, errFrameCorrupt
	}
	if nOps > 0 && p.ops == nil {
		p.ops = make([]Response, 0, min(int(nOps), 256))
	}
	for i := uint64(0); i < nOps; i++ {
		op, n, err := decodeResponsePayload(buf[pos:], depth+1)
		if err != nil {
			return 0, err
		}
		pos += n
		p.ops = append(p.ops, *op)
	}
	return pos, nil
}

// finish assembles the accumulated sections into a Response.
func (p *respPartial) finish() (*Response, error) {
	resp := &Response{}
	if len(p.env) > 0 {
		if err := json.Unmarshal(p.env, resp); err != nil {
			return nil, fmt.Errorf("%w: bad envelope: %v", errFrameCorrupt, err)
		}
	}
	resp.Rows = p.rows
	resp.Data = p.data
	resp.Ops = p.ops
	return resp, nil
}
