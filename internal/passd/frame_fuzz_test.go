package passd

// Fuzz harness for the v3 frame payload decoders: whatever bytes arrive
// on the wire, decoding must return an error or a value — never panic,
// never over-allocate on a hostile length prefix. CI runs this as a
// short smoke (-fuzz FuzzFrameDecode -fuzztime 15s); longer local runs
// just work: go test -fuzz FuzzFrameDecode ./internal/passd

import (
	"bufio"
	"bytes"
	"testing"

	"passv2/internal/pnode"
	"passv2/internal/record"
)

func FuzzFrameDecode(f *testing.F) {
	// Seed with valid request payloads so the fuzzer starts inside the
	// grammar rather than spending its budget rediscovering it.
	reqs := []*Request{
		{Op: "query", Query: "select F from Provenance.file as F", TimeoutMS: 100},
		{Op: "write", Handle: 3, Off: -1, Data: []byte("abc"), recs: []record.Record{
			record.New(pnode.Ref{PNode: 7, Version: 2}, record.AttrName, record.StringVal("/x")),
			record.New(pnode.Ref{PNode: 7, Version: 2}, "ENV", record.Int(-9)),
		}},
		{Op: "batch", Ops: []Request{{Op: "mkobj"}, {Op: "freeze", Handle: 1}}},
	}
	for _, req := range reqs {
		if buf, err := appendRequestPayload(nil, req, 0); err == nil {
			f.Add(buf)
		}
	}
	// And valid response payloads — single-frame and chunked — so the
	// response decoder's row/value grammar is seeded too.
	resps := []*Response{
		{OK: true, Columns: []string{"A"}, Rows: [][]Value{
			{{K: "ref", P: 4, V: 1, N: "/y"}},
			{{K: "str", S: "s"}, {K: "int", I: 42}, {K: "bool", B: true}, {K: "null"}},
		}},
		{OK: true, Data: bytes.Repeat([]byte{0xEE}, 3000), Ops: []Response{{OK: false, Error: "e", Code: codeClosed}}},
	}
	for _, resp := range resps {
		var raw bytes.Buffer
		bw := bufio.NewWriter(&raw)
		if err := writeResponseFrames(bw, 1, resp, getFrameScratch()); err == nil {
			bw.Flush()
			// Strip the frame header: the decoders see payloads.
			if raw.Len() > frameHeaderLen {
				f.Add(raw.Bytes()[frameHeaderLen:])
			}
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, _, err := decodeRequestPayload(data, 0); err == nil && req == nil {
			t.Fatal("request decoder returned nil, nil")
		}
		if resp, _, err := decodeResponsePayload(data, 0); err == nil && resp == nil {
			t.Fatal("response decoder returned nil, nil")
		}
		// The chunk assembler must also hold up when the same bytes
		// arrive as two continuation chunks.
		p := &respPartial{}
		if _, err := p.absorb(data, 0); err == nil {
			mid := len(data) / 2
			rest := append([]byte{0}, data[mid:]...) // zero-length env continuation
			if _, err := p.absorb(rest, 0); err == nil {
				p.finish()
			}
		}
	})
}
