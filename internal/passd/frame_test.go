package passd

// Protocol v3 tests: frame codec round-trips, the hello negotiation
// matrix (v1/v2/v3 clients × v2-only/v3 servers), multiplexing — the
// acceptance bar that a slow request cannot head-of-line-block a fast
// one on the same connection — chunked responses, the toolarge refusal,
// per-connection admission control, and torn binary frames.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"passv2/internal/pnode"
	"passv2/internal/record"
)

func testRecords(n int) []record.Record {
	recs := make([]record.Record, 0, 3*n)
	for i := 1; i <= n; i++ {
		ref := pnode.Ref{PNode: pnode.PNode(i), Version: 1}
		recs = append(recs,
			record.New(ref, record.AttrName, record.StringVal(fmt.Sprintf("/swarm/%d", i))),
			record.New(ref, record.AttrType, record.StringVal(record.TypeFile)),
			record.New(ref, "ENV", record.Int(int64(i))))
	}
	return recs
}

// TestFrameRequestRoundTrip pins the request payload codec: envelope
// fields, native record bundles, data buffers and nested batch ops all
// survive encode → decode.
func TestFrameRequestRoundTrip(t *testing.T) {
	recs := testRecords(5)
	reqs := []*Request{
		{Op: "query", Query: "select F from Provenance.file as F", TimeoutMS: 250},
		{Op: "read", Handle: 7, Off: -3, Len: 1 << 40},
		{Op: "write", Handle: 9, Off: 64, Data: []byte("payload bytes"), recs: recs},
		{Op: "write", recs: []record.Record{}},
		{Op: "replappend", Off: 4096, Data: bytes.Repeat([]byte{0xAB}, 1000)},
		{Op: "batch", Ops: []Request{
			{Op: "mkobj"},
			{Op: "write", Handle: 1, Data: []byte("x"), recs: recs[:2]},
			{Op: "freeze", Handle: 1},
		}},
	}
	for _, req := range reqs {
		buf, err := appendRequestPayload(nil, req, 0)
		if err != nil {
			t.Fatalf("%s: encode: %v", req.Op, err)
		}
		got, n, err := decodeRequestPayload(buf, 0)
		if err != nil {
			t.Fatalf("%s: decode: %v", req.Op, err)
		}
		if n != len(buf) {
			t.Fatalf("%s: decoded %d of %d bytes", req.Op, n, len(buf))
		}
		if got.Op != req.Op || got.Query != req.Query || got.TimeoutMS != req.TimeoutMS ||
			got.Handle != req.Handle || got.Off != req.Off || got.Len != req.Len {
			t.Fatalf("%s: envelope mismatch: %+v", req.Op, got)
		}
		if !bytes.Equal(got.Data, req.Data) {
			t.Fatalf("%s: data mismatch", req.Op)
		}
		if req.recs != nil && !reflect.DeepEqual(got.recs, req.recs) {
			t.Fatalf("%s: records mismatch:\n got %v\nwant %v", req.Op, got.recs, req.recs)
		}
		if len(got.Ops) != len(req.Ops) {
			t.Fatalf("%s: got %d ops, want %d", req.Op, len(got.Ops), len(req.Ops))
		}
		for i := range req.Ops {
			if got.Ops[i].Op != req.Ops[i].Op || !bytes.Equal(got.Ops[i].Data, req.Ops[i].Data) {
				t.Fatalf("%s: op %d mismatch", req.Op, i)
			}
		}
	}
}

// decodeFrames consumes every frame of one response from a buffer the
// way the client mux does, returning the assembled response and how many
// frames carried it.
func decodeFrames(t *testing.T, raw *bytes.Buffer) (*Response, int) {
	t.Helper()
	br := bufio.NewReader(raw)
	p := &respPartial{}
	frames := 0
	for {
		h, err := readFrameHeader(br)
		if err != nil {
			t.Fatalf("frame %d header: %v", frames, err)
		}
		payload, err := readFramePayload(br, h)
		if err != nil {
			t.Fatalf("frame %d payload: %v", frames, err)
		}
		frames++
		if _, err := p.absorb(payload, 0); err != nil {
			t.Fatalf("frame %d absorb: %v", frames, err)
		}
		if h.flags&flagMore == 0 {
			resp, err := p.finish()
			if err != nil {
				t.Fatalf("finish: %v", err)
			}
			return resp, frames
		}
	}
}

// TestFrameResponseChunking pins the response writer: a small response is
// one frame; a large result set splits across MORE-flagged frames and
// reassembles identically, envelope and all.
func TestFrameResponseChunking(t *testing.T) {
	small := &Response{OK: true, Columns: []string{"A"}, Rows: [][]Value{{{K: "int", I: 7}}}, Elapsed: 42}
	big := &Response{OK: true, Columns: []string{"A", "B"}, Data: bytes.Repeat([]byte{1, 2, 3}, 200_000)}
	for i := 0; i < 40_000; i++ {
		big.Rows = append(big.Rows, []Value{
			{K: "ref", P: uint64(i), V: 1, N: fmt.Sprintf("/chunk/%d", i)},
			{K: "str", S: "some row payload"},
		})
	}
	batch := &Response{OK: true, Ops: []Response{
		{OK: true, Handle: 3, P: 9, Ver: 1},
		{OK: false, Error: "nope", Code: codeClosed},
	}}

	for name, resp := range map[string]*Response{"small": small, "big": big, "batch": batch} {
		var raw bytes.Buffer
		bw := bufio.NewWriter(&raw)
		if err := writeResponseFrames(bw, 5, resp, getFrameScratch()); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		bw.Flush()
		got, frames := decodeFrames(t, &raw)
		if name == "small" && frames != 1 {
			t.Fatalf("small response used %d frames", frames)
		}
		if name == "big" && frames < 4 {
			t.Fatalf("big response used only %d frames, want chunking", frames)
		}
		if got.OK != resp.OK || got.Error != resp.Error || got.Elapsed != resp.Elapsed {
			t.Fatalf("%s: envelope mismatch: %+v", name, got)
		}
		if !reflect.DeepEqual(got.Columns, resp.Columns) {
			t.Fatalf("%s: columns mismatch", name)
		}
		if len(got.Rows) != len(resp.Rows) || !bytes.Equal(got.Data, resp.Data) {
			t.Fatalf("%s: rows/data mismatch: %d rows", name, len(got.Rows))
		}
		for i := range resp.Rows {
			if !reflect.DeepEqual(got.Rows[i], resp.Rows[i]) {
				t.Fatalf("%s: row %d mismatch: %+v vs %+v", name, i, got.Rows[i], resp.Rows[i])
			}
		}
		if len(got.Ops) != len(resp.Ops) {
			t.Fatalf("%s: ops mismatch", name)
		}
		for i := range resp.Ops {
			if got.Ops[i].Error != resp.Ops[i].Error || got.Ops[i].Code != resp.Ops[i].Code {
				t.Fatalf("%s: op %d mismatch", name, i)
			}
		}
	}
}

// TestNegotiationMatrix pins every client×server version pairing: a v3
// client falls back to JSON lines against a v2-only server, a v2-pinned
// client stays on JSON against a v3 server, and full v3 upgrades to
// frames — all of them serving the same queries and disclosures.
func TestNegotiationMatrix(t *testing.T) {
	cases := []struct {
		name           string
		serverMax      int
		clientMax      int
		wantVersion    int
		wantV3Conns    int64
		wantMuxPresent bool
	}{
		{"v3-client-v2-server", 2, 0, 2, 0, false},
		{"v2-client-v3-server", 0, 2, 2, 0, false},
		{"v3-both", 0, 0, 3, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, q := testWaldo(6)
			srv := startServer(t, w, Config{MaxVersion: tc.serverMax})
			c, err := DialOptions(srv.Addr(), Options{MaxVersion: tc.clientMax})
			if err != nil {
				t.Fatalf("Dial: %v", err)
			}
			t.Cleanup(func() { c.Close() })
			v, _, err := c.Hello()
			if err != nil {
				t.Fatalf("Hello: %v", err)
			}
			if v != tc.wantVersion {
				t.Fatalf("negotiated v%d, want v%d", v, tc.wantVersion)
			}
			res, err := c.Query(q)
			if err != nil {
				t.Fatalf("query: %v", err)
			}
			if len(res.Rows) != 6 {
				t.Fatalf("query returned %d rows, want 6", len(res.Rows))
			}
			if err := c.AppendProvenance(testRecords(4)); err != nil {
				t.Fatalf("disclose: %v", err)
			}
			st, err := c.Stats()
			if err != nil {
				t.Fatalf("stats: %v", err)
			}
			if st.V3Conns != tc.wantV3Conns {
				t.Fatalf("server reports %d v3 conns, want %d", st.V3Conns, tc.wantV3Conns)
			}
			c.mu.Lock()
			gotMux := c.mux != nil
			c.mu.Unlock()
			if gotMux != tc.wantMuxPresent {
				t.Fatalf("client mux present=%v, want %v", gotMux, tc.wantMuxPresent)
			}
		})
	}
}

// TestV1ClientAgainstV3Server pins raw v1 compatibility: a client that
// never sends hello speaks bare JSON lines at a v3 server and is served
// unchanged — the server only upgrades a connection that negotiated.
func TestV1ClientAgainstV3Server(t *testing.T) {
	w, q := testWaldo(3)
	srv := startServer(t, w, Config{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(bufio.NewReader(conn))
	for i := 0; i < 3; i++ {
		if err := enc.Encode(&Request{Op: "query", Query: q}); err != nil {
			t.Fatalf("send: %v", err)
		}
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			t.Fatalf("recv: %v", err)
		}
		if !resp.OK || len(resp.Rows) != 3 {
			t.Fatalf("v1 query reply: ok=%v rows=%d (%s)", resp.OK, len(resp.Rows), resp.Error)
		}
	}
}

// TestV3NoHeadOfLineBlocking is the tentpole's acceptance criterion: a
// deliberately slow query on a multiplexed v3 connection must not delay
// a concurrent fast query on the same connection.
func TestV3NoHeadOfLineBlocking(t *testing.T) {
	w, _ := testWaldo(1000)
	// The unfiltered closure scan runs an ancestor walk from every one of
	// the 1000 files over a 1000-deep chain — roughly quadratic work that
	// measures ~2s here, a couple of orders of magnitude more than the
	// head start the fast query gets, and well under the server's query
	// timeout.
	slowQ := `select A from Provenance.file as F F.input* as A`
	srv := startServer(t, w, Config{Workers: 4})
	c := dialClient(t, srv)
	if v, _, _ := c.Hello(); v < 3 {
		t.Fatalf("negotiated v%d, want v3", v)
	}

	slowDone := make(chan time.Time, 1)
	fastDone := make(chan time.Time, 1)
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := c.QueryTimeout(slowQ, 25*time.Second); err != nil {
			t.Errorf("slow query: %v", err)
		}
		slowDone <- time.Now()
	}()
	go func() {
		defer wg.Done()
		time.Sleep(20 * time.Millisecond) // let the slow query hit the wire first
		if _, err := c.Query(`select F from Provenance.file as F where F.name = "/t/1"`); err != nil {
			t.Errorf("fast query: %v", err)
		}
		fastDone <- time.Now()
	}()
	wg.Wait()
	slow, fast := <-slowDone, <-fastDone
	if !fast.Before(slow) {
		t.Fatalf("fast query (%v) finished after the slow query (%v): head-of-line blocked",
			fast.Sub(start), slow.Sub(start))
	}
}

// TestV3SlowWriteDoesNotBlockQuery drives the same property through the
// serial lane: a disclosure stalled in the durable-ack path (slow log
// Append) must not delay a concurrent query on the same connection —
// and, as the contrast arm, a v2-pinned client's query does wait behind
// it, because the line protocol has exactly one exchange in flight.
func TestV3SlowWriteDoesNotBlockQuery(t *testing.T) {
	const stall = 400 * time.Millisecond
	run := func(t *testing.T, maxVersion int) (queryElapsed time.Duration) {
		w, q := testWaldo(4)
		var slow atomic.Bool
		srv := startServer(t, w, Config{
			Append: func(recs []record.Record) error {
				if slow.Load() {
					time.Sleep(stall)
				}
				w.DB.ApplyBatch(recs)
				return nil
			},
		})
		c, err := DialOptions(srv.Addr(), Options{MaxVersion: maxVersion})
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		t.Cleanup(func() { c.Close() })
		if err := c.Ping(); err != nil {
			t.Fatalf("ping: %v", err)
		}
		slow.Store(true)
		writeStarted := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			close(writeStarted)
			if err := c.AppendProvenance(testRecords(2)); err != nil {
				t.Errorf("slow disclose: %v", err)
			}
		}()
		<-writeStarted
		time.Sleep(50 * time.Millisecond) // write is on the wire, stalled in Append
		qStart := time.Now()
		if _, err := c.Query(q); err != nil {
			t.Fatalf("query: %v", err)
		}
		queryElapsed = time.Since(qStart)
		wg.Wait()
		return queryElapsed
	}
	t.Run("v3-concurrent", func(t *testing.T) {
		if elapsed := run(t, 0); elapsed > stall/2 {
			t.Fatalf("query took %v on a v3 connection with a stalled write; want well under %v", elapsed, stall)
		}
	})
	t.Run("v2-serialized", func(t *testing.T) {
		if elapsed := run(t, 2); elapsed < stall/2 {
			t.Fatalf("query took only %v on a v2 connection with a stalled write; the line protocol should have serialized it", elapsed)
		}
	})
}

// TestV3ConcurrentClientUse hammers one v3 client from many goroutines —
// queries and disclosures interleaved — to exercise the mux's stream
// bookkeeping under the race detector.
func TestV3ConcurrentClientUse(t *testing.T) {
	w, q := testWaldo(32)
	srv := startServer(t, w, Config{})
	c := dialClient(t, srv)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if g%2 == 0 {
					if _, err := c.Query(q); err != nil {
						t.Errorf("query: %v", err)
						return
					}
				} else if err := c.AppendProvenance(testRecords(3)); err != nil {
					t.Errorf("disclose: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.V3Conns != 1 {
		t.Fatalf("V3Conns = %d, want 1", st.V3Conns)
	}
}

// TestV3LargeResultChunked round-trips a result big enough to span many
// response frames end to end through a real server and client.
func TestV3LargeResultChunked(t *testing.T) {
	// 20k rows of refs encode to ~0.4 MB — comfortably past the 256 KiB
	// chunk target, so the result crosses frame boundaries for real.
	w, q := testWaldo(20000)
	srv := startServer(t, w, Config{})
	c := dialClient(t, srv)
	res, err := c.QueryTimeout(q, 25*time.Second)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Rows) != 20000 {
		t.Fatalf("chunked result returned %d rows, want 20000", len(res.Rows))
	}
}

// TestV3InFlightCap pins per-connection admission control: with
// MaxInFlight 1 and a write stalled in the durable-ack path, a second
// request on the same connection is refused with ErrOverloaded instead
// of queueing without bound.
func TestV3InFlightCap(t *testing.T) {
	w, q := testWaldo(4)
	gate := make(chan struct{})
	var gated atomic.Bool
	srv := startServer(t, w, Config{
		MaxInFlight: 1,
		Append: func(recs []record.Record) error {
			if gated.Load() {
				<-gate
			}
			w.DB.ApplyBatch(recs)
			return nil
		},
	})
	c, err := DialOptions(srv.Addr(), Options{MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	gated.Store(true)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := c.AppendProvenance(testRecords(1)); err != nil {
			t.Errorf("gated disclose: %v", err)
		}
	}()
	time.Sleep(100 * time.Millisecond) // the write occupies the one slot
	_, qerr := c.Query(q)
	close(gate)
	wg.Wait()
	if !errors.Is(qerr, ErrOverloaded) {
		t.Fatalf("second in-flight request got %v, want ErrOverloaded", qerr)
	}
	// The connection survives shedding: the next request succeeds.
	if _, err := c.Query(q); err != nil {
		t.Fatalf("query after shed: %v", err)
	}
}

// TestTooLargeJSONLine sends an over-budget JSON line on a raw
// connection and must read a machine-readable toolarge refusal before
// the close — the old Scanner path dropped the connection silently.
func TestTooLargeJSONLine(t *testing.T) {
	w, _ := testWaldo(2)
	srv := startServer(t, w, Config{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	huge := make([]byte, maxLineBytes+1024)
	for i := range huge {
		huge[i] = 'x'
	}
	copy(huge, `{"op":"query","query":"`)
	huge[len(huge)-1] = '\n'
	if _, err := conn.Write(huge); err != nil {
		t.Fatalf("send: %v", err)
	}
	var resp Response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		t.Fatalf("no refusal before close: %v", err)
	}
	if resp.OK || resp.Code != codeTooLarge {
		t.Fatalf("refusal = %+v, want code %q", resp, codeTooLarge)
	}
}

// TestTooLargeClientSentinel pins the client-side mapping: both the
// client's own precheck and a server toolarge refusal surface as
// ErrTooLarge, and neither is retried.
func TestTooLargeClientSentinel(t *testing.T) {
	w, _ := testWaldo(2)
	srv := startServer(t, w, Config{})

	// v2 path: the client's own wire-size precheck refuses before sending.
	c2, err := DialOptions(srv.Addr(), Options{MaxVersion: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	big := record.StringVal(string(make([]byte, maxRequestWireBytes)))
	recs := []record.Record{record.New(pnode.Ref{PNode: 1, Version: 1}, "ENV", big)}
	if err := c2.AppendProvenance(recs); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("v2 oversized disclose: %v, want ErrTooLarge", err)
	}

	// v3 path: an oversized frame is refused client-side against the
	// frame budget before it is sent.
	c3 := dialClient(t, srv)
	if err := c3.Ping(); err != nil {
		t.Fatal(err)
	}
	giant := record.StringVal(string(make([]byte, maxFramePayload)))
	recs = []record.Record{record.New(pnode.Ref{PNode: 1, Version: 1}, "ENV", giant)}
	if err := c3.AppendProvenance(recs); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("v3 oversized disclose: %v, want ErrTooLarge", err)
	}
}

// TestTooLargeFrameRefusedByServer drives an over-budget frame header at
// the server raw and must read a toolarge response frame back before the
// connection closes.
func TestTooLargeFrameRefusedByServer(t *testing.T) {
	w, _ := testWaldo(2)
	srv := startServer(t, w, Config{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Negotiate v3 by hand.
	if _, err := fmt.Fprintf(conn, `{"op":"hello","v":3}`+"\n"); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("hello reply: %v", err)
	}
	var hello Response
	if err := json.Unmarshal(line, &hello); err != nil || hello.Version != 3 {
		t.Fatalf("hello = %s (%v)", line, err)
	}
	// A frame header declaring a payload over the budget.
	var hdr [frameHeaderLen]byte
	putFrameHeader(hdr[:], maxFramePayload+1, 9, frameRequest, 0)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	h, err := readFrameHeader(br)
	if err != nil {
		t.Fatalf("refusal frame: %v", err)
	}
	payload, err := readFramePayload(br, h)
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := decodeResponsePayload(payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.stream != 9 || resp.Code != codeTooLarge {
		t.Fatalf("refusal on stream %d with code %q, want stream 9 code %q", h.stream, resp.Code, codeTooLarge)
	}
}

// TestV3TornFrameRecovery arms mid-frame tears at several cut points —
// inside the 10-byte header and inside the payload — and the client must
// classify each as a transport failure and transparently retry the
// idempotent query on a fresh connection.
func TestV3TornFrameRecovery(t *testing.T) {
	for _, cut := range []int64{3, 15, 200} {
		t.Run(fmt.Sprintf("cut-%d", cut), func(t *testing.T) {
			w, q := testWaldo(8)
			srv, flt := startFaultyServer(t, w, Config{})
			c, err := DialOptions(srv.Addr(), Options{
				RequestTimeout: 250 * time.Millisecond,
				DeadlineGrace:  100 * time.Millisecond,
				RetryBase:      5 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			if err := c.Ping(); err != nil { // hello + upgrade complete before arming
				t.Fatal(err)
			}
			flt.TearAfter(cut)
			res, err := c.Query(q)
			if err != nil {
				t.Fatalf("query through a torn frame did not recover: %v", err)
			}
			if len(res.Rows) != 8 {
				t.Fatalf("recovered query returned %d rows, want 8", len(res.Rows))
			}
		})
	}
}

// TestV3ReplVerbsFramed pins that the replication verbs — which carry
// their payloads in the binary Data section on v3 — round-trip over a
// framed connection; the full-topology suites in replication_test.go
// exercise them in anger.
func TestV3ReplVerbsFramed(t *testing.T) {
	w, _ := testWaldo(2)
	srv := startServer(t, w, Config{})
	c := dialClient(t, srv)
	if v, _, _ := c.Hello(); v != 3 {
		t.Fatalf("v3 not negotiated")
	}
	// replstate against a standalone daemon must fail cleanly over frames.
	if resp, err := c.roundTrip(&Request{Op: "replstate"}); err == nil {
		t.Fatalf("replstate on a standalone daemon succeeded: %+v", resp)
	}
}
