package passd

// clientMux is the client half of protocol v3's stream multiplexing: one
// connection, many requests in flight, each on its own stream ID. A
// single reader goroutine routes response frames (reassembling chunked
// results) to per-request waiters; sends serialize on a write mutex but
// requests never wait for each other's responses — which is what lets a
// fast read overtake a slow query on the same connection.
//
// Failure semantics match the v2 line protocol's: any transport fault —
// a read error, a torn frame, a request timing out — poisons the whole
// connection (frame boundaries can no longer be trusted), every waiter
// gets a transportError, and the owning Client redials. The retry policy
// in client.go then decides, per op, what is safe to resend.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

type muxReply struct {
	resp *Response
	err  error
}

type clientMux struct {
	conn net.Conn
	br   *bufio.Reader

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	waiters map[uint32]chan muxReply
	next    uint32
	err     error // sticky: set once by fail, checked by every do
}

func newClientMux(conn net.Conn, br *bufio.Reader) *clientMux {
	m := &clientMux{conn: conn, br: br, waiters: make(map[uint32]chan muxReply)}
	go m.readLoop()
	return m
}

// fail poisons the mux: the sticky error is set, every waiter is
// released with it, and the connection is closed (which also stops the
// read loop). Idempotent — the first error wins.
func (m *clientMux) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
		for id, ch := range m.waiters {
			delete(m.waiters, id)
			ch <- muxReply{err: err}
		}
	}
	m.mu.Unlock()
	m.conn.Close()
}

// do runs one round-trip: register a stream, send the request as a
// single frame, wait for the (possibly chunked) response or the timeout.
// A timeout kills the connection — same contract as the v2 socket
// deadline — so an abandoned response cannot desynchronize later ones.
func (m *clientMux) do(req *Request, timeout time.Duration) (*Response, error) {
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		return nil, &transportError{err}
	}
	m.next++
	stream := m.next
	ch := make(chan muxReply, 1)
	m.waiters[stream] = ch
	m.mu.Unlock()

	abandon := func() {
		m.mu.Lock()
		delete(m.waiters, stream)
		m.mu.Unlock()
	}

	sc := getFrameScratch()
	buf := append(sc.buf[:0], make([]byte, frameHeaderLen)...)
	buf, err := appendRequestPayload(buf, req, 0)
	sc.buf = buf
	if err != nil {
		putFrameScratch(sc)
		abandon()
		return nil, err // encode failure: nothing was sent, not a transport fault
	}
	payload := len(buf) - frameHeaderLen
	if payload > maxFramePayload {
		putFrameScratch(sc)
		abandon()
		return nil, fmt.Errorf("%w: request encodes to %d bytes, over the %d-byte frame budget; split the bundle",
			ErrTooLarge, payload, maxFramePayload)
	}
	putFrameHeader(buf[:frameHeaderLen], payload, stream, frameRequest, 0)

	m.wmu.Lock()
	m.conn.SetWriteDeadline(time.Now().Add(timeout))
	_, werr := m.conn.Write(buf)
	m.wmu.Unlock()
	putFrameScratch(sc)
	if werr != nil {
		m.fail(werr)
		<-ch // fail delivered to our registered waiter
		return nil, &transportError{werr}
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		if r.err != nil {
			return nil, &transportError{r.err}
		}
		return r.resp, nil
	case <-timer.C:
		err := fmt.Errorf("passd: request timed out after %v", timeout)
		m.fail(err)
		return nil, &transportError{err}
	}
}

// readLoop is the connection's single frame reader: it reassembles
// chunked responses per stream and delivers each completed response to
// its waiter. Any error — transport or framing — fails the whole mux.
func (m *clientMux) readLoop() {
	partials := make(map[uint32]*respPartial)
	for {
		h, err := readFrameHeader(m.br)
		if err != nil {
			m.fail(readErr(err))
			return
		}
		if h.kind != frameResponse {
			m.fail(fmt.Errorf("passd: server sent a non-response frame (kind %d)", h.kind))
			return
		}
		payload, err := readFramePayload(m.br, h)
		if err != nil {
			m.fail(readErr(err))
			return
		}
		p := partials[h.stream]
		if p == nil {
			p = &respPartial{}
			partials[h.stream] = p
		}
		if _, err := p.absorb(payload, 0); err != nil {
			m.fail(fmt.Errorf("passd: bad response frame: %w", err))
			return
		}
		if h.flags&flagMore != 0 {
			continue
		}
		delete(partials, h.stream)
		resp, err := p.finish()
		if err != nil {
			m.fail(fmt.Errorf("passd: bad response: %w", err))
			return
		}
		m.mu.Lock()
		ch, ok := m.waiters[h.stream]
		delete(m.waiters, h.stream)
		m.mu.Unlock()
		if ok {
			ch <- muxReply{resp: resp}
		}
		// No waiter: a response for a stream nobody owns (the waiter
		// timed out and the mux is being torn down, or a server bug).
		// Dropping it is safe — frame boundaries held.
	}
}

// readErr normalizes the reader's end-of-stream into the same message
// the v2 path reports for a server-closed connection.
func readErr(err error) error {
	if errors.Is(err, errFrameTooLarge) {
		return fmt.Errorf("passd: server sent an over-budget frame: %w", err)
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return errors.New("passd: connection closed by server")
	}
	return err
}
