package passd

// Server-side DPAPI object registry. A protocol-v2 daemon is a layer in
// the paper's sense (§5.2): clients above it create phantom objects
// (browser sessions, workflow operators, invocations), disclose provenance
// against them, freeze them to break cycles, and revive them across
// connections. The registry is the daemon's half of that contract:
//
//   - every phantom is a waldo-backed object: its records are committed
//     through the server's single durable-ack path (commitRecords in
//     server.go) and land in the same database queries run over;
//   - disclosed bundles pass through an analyzer (duplicate elimination +
//     cycle avoidance), exactly as the in-process observer phantoms do, so
//     a stack of layers behaves the same whether its lower layer is local
//     or remote;
//   - wire handles are per-connection and cheap; the object itself lives
//     in the registry, so a disconnect releases handles without destroying
//     provenance, and pass_reviveobj reopens the object on a later
//     connection;
//   - crash survival rides the PR 4 checkpoint machinery for free: every
//     acknowledged record — including the AttrMkobj allocation record a
//     log-backed daemon stages per pass_mkobj, so even a never-disclosed
//     identity is not re-issued — is in the checkpointed log/database,
//     and the registry's in-memory residue (allocator position, current
//     versions) is reseeded from the recovered database (waldo MaxPNode +
//     LatestVersion), so an open remote transaction survives a SIGKILL.
//     Phantom *data* buffers are volatile, matching in-process phantoms.

import (
	"fmt"
	"sync"

	"passv2/internal/analyzer"
	"passv2/internal/dpapi"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/waldo"
)

// DefaultObjectVolume is the pnode volume prefix remote phantom objects
// are allocated from when Config.ObjectVolume is zero. It sits just below
// the kernel's transient space (0xFFFF) so remote phantoms never collide
// with local transient objects or with on-disk volumes.
const DefaultObjectVolume uint16 = 0xFFFE

// registry is the server's object table: pnode → live object, plus the
// allocator that mints new phantom identities.
type registry struct {
	prefix uint16
	alloc  *pnode.Allocator
	an     *analyzer.Analyzer
	w      *waldo.Waldo

	mu   sync.Mutex
	objs map[pnode.PNode]*serverObject
}

// newRegistry builds a registry whose allocator resumes past the highest
// prefix-space pnode the (possibly checkpoint-recovered) database already
// knows, preserving the never-recycled pnode guarantee across restarts.
func newRegistry(w *waldo.Waldo, prefix uint16) *registry {
	alloc := pnode.NewPrefixed(prefix)
	if max, ok := w.DB.MaxPNode(prefix); ok {
		alloc.SeedPast(max)
	}
	return &registry{
		prefix: prefix,
		alloc:  alloc,
		an:     analyzer.New(),
		w:      w,
		objs:   make(map[pnode.PNode]*serverObject),
	}
}

// count reports live objects (stats).
func (rg *registry) count() int64 {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	return int64(len(rg.objs))
}

// mkobj mints a fresh phantom object at version 1. The returned object
// already holds one handle reference (the caller is about to hand out a
// wire handle); callers on error paths must release it.
func (rg *registry) mkobj() *serverObject {
	pn := rg.alloc.Next()
	obj := &serverObject{reg: rg, handles: 1, ref: pnode.Ref{PNode: pn, Version: 1}}
	rg.mu.Lock()
	rg.objs[pn] = obj
	rg.mu.Unlock()
	return obj
}

// release drops one wire handle (close verb, connection teardown, or a
// failed mkobj). When the last handle goes, the object's data buffer is
// freed — phantom data is volatile staging, and its size is
// client-controlled, so it must not outlive every handle — and the
// registry entry itself is dropped once the database can reconstruct the
// object at its current version (revive's cold path). An identity the
// database cannot yet reconstruct keeps its entry, so closing a handle
// never destroys an object (§5.2): it stays revivable either from memory
// or from its committed records.
func (rg *registry) release(obj *serverObject) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	obj.handles--
	if obj.handles > 0 {
		return
	}
	obj.dropData()
	ref := obj.Ref()
	if dbv, known := rg.w.DB.LatestVersion(ref.PNode); known && dbv >= ref.Version {
		delete(rg.objs, ref.PNode)
	}
}

// observeRecords advances the allocator past every in-prefix identity a
// committed record mentions (as subject or cross-reference), mirroring
// newRegistry's boot-time reseed: however an identity enters the store,
// mkobj must never re-issue it (§5.2).
func (rg *registry) observeRecords(recs []record.Record) {
	for _, r := range recs {
		if pnode.VolumePrefix(r.Subject.PNode) == rg.prefix {
			rg.alloc.SeedPast(r.Subject.PNode)
		}
		if dep, ok := r.Value.AsRef(); ok && pnode.VolumePrefix(dep.PNode) == rg.prefix {
			rg.alloc.SeedPast(dep.PNode)
		}
	}
}

// sweepZeroHandle drops zero-handle entries for the given subjects once
// the database can reconstruct them at their current version. Implicit
// bundle-subject entries (created by nodeForSubject, never retained by a
// wire handle) only need registry residence while their records are in
// flight; without this sweep every distinct referenced subject would pin
// a map entry for the process lifetime.
func (rg *registry) sweepZeroHandle(pns []pnode.PNode) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	for _, pn := range pns {
		obj, ok := rg.objs[pn]
		if !ok || obj.handles > 0 {
			continue
		}
		ref := obj.Ref()
		if dbv, known := rg.w.DB.LatestVersion(pn); known && dbv >= ref.Version {
			delete(rg.objs, pn)
		}
	}
}

// revive reopens an object by reference. An unknown pnode in the
// registry's own space falls back to the database — after a reconnect or
// a daemon restart the object's records are there even though the
// in-memory table is empty — draining first so records acknowledged but
// not yet ingested are visible. A pnode from another layer's space is
// ErrWrongLayer; a pnode nobody has ever seen is ErrStale (§5.2).
// The returned object carries an extra handle reference, taken inside
// the registry lock so a concurrent release of the last other handle
// cannot evict the object between lookup and retain.
func (rg *registry) revive(ref pnode.Ref) (*serverObject, error) {
	if pnode.VolumePrefix(ref.PNode) != rg.prefix {
		return nil, dpapi.ErrWrongLayer
	}
	rg.mu.Lock()
	obj, ok := rg.objs[ref.PNode]
	if ok {
		obj.handles++
		rg.mu.Unlock()
		return obj, nil
	}
	rg.mu.Unlock()
	// Cold lookup: make everything logged visible, then ask the database.
	if err := rg.w.Drain(); err != nil {
		return nil, err
	}
	v, known := rg.w.DB.LatestVersion(ref.PNode)
	if !known {
		return nil, dpapi.ErrStale
	}
	obj = &serverObject{reg: rg, handles: 1, ref: pnode.Ref{PNode: ref.PNode, Version: v}}
	rg.mu.Lock()
	if prior, raced := rg.objs[ref.PNode]; raced {
		prior.handles++
		obj = prior
	} else {
		rg.objs[ref.PNode] = obj
	}
	rg.mu.Unlock()
	return obj, nil
}

// nodeForSubject resolves the analyzer node for one bundle subject: a
// registry object for our own space (created implicitly if the bundle
// describes an object we have not handed out — bundles may describe any
// object by reference, §5.2), a static foreign node otherwise. An
// implicit creation consults the database so a reference at an old
// version cannot pin a pre-crash object below its recovered latest
// version.
func (rg *registry) nodeForSubject(ref pnode.Ref) analyzer.Node {
	if pnode.VolumePrefix(ref.PNode) != rg.prefix {
		return foreignNode{ref: ref}
	}
	rg.mu.Lock()
	defer rg.mu.Unlock()
	obj, ok := rg.objs[ref.PNode]
	if !ok {
		v := ref.Version
		if dbv, known := rg.w.DB.LatestVersion(ref.PNode); known && dbv > v {
			v = dbv
		}
		obj = &serverObject{reg: rg, ref: pnode.Ref{PNode: ref.PNode, Version: v}}
		rg.objs[ref.PNode] = obj
	}
	return obj
}

// foreignNode stands in for an object some other layer owns (a client-side
// file, a pnode from a Lasagna volume). Its records deduplicate here but
// it cannot be frozen by this layer.
type foreignNode struct{ ref pnode.Ref }

func (n foreignNode) Ref() pnode.Ref { return n.ref }
func (n foreignNode) Freeze() (pnode.Version, error) {
	return 0, dpapi.ErrWrongLayer
}

// serverObject is one remote phantom: the identity/version cell plus the
// in-memory data buffer (phantoms have nothing below them to store data
// in, §5.5 — same as observer and Lasagna phantoms). It implements
// analyzer.Node so the shared cycle-avoidance algorithm versions it.
type serverObject struct {
	reg *registry

	// handles counts open wire handles across all connections; guarded
	// by reg.mu (see retain/release).
	handles int

	mu  sync.Mutex
	ref pnode.Ref
	buf []byte
}

// dropData frees the phantom's volatile data buffer.
func (o *serverObject) dropData() {
	o.mu.Lock()
	o.buf = nil
	o.mu.Unlock()
}

// Ref returns the object's current identity.
func (o *serverObject) Ref() pnode.Ref {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.ref
}

// Freeze bumps the version (analyzer.Node; the analyzer emits the
// version-chain record).
func (o *serverObject) Freeze() (pnode.Version, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.ref.Version++
	return o.ref.Version, nil
}

// maxPhantomBytes caps a phantom's in-memory data buffer. Phantom data is
// a staging area with no file beneath it (§5.5), and it is sized by a
// remote, untrusted request — without the cap one write at a huge offset
// would make the daemon allocate the offset. 1 MiB also keeps any single
// write's JSON line comfortably inside the server's 4 MiB line budget.
const maxPhantomBytes = 1 << 20

// checkDataSpan validates a wire-supplied (offset, length) pair before
// anything is staged, so an invalid write fails whole — records included
// (the records-then-data unit must be all or nothing).
func checkDataSpan(n int, off int64) error {
	if n == 0 {
		return nil
	}
	if off < 0 {
		return fmt.Errorf("passd: negative data offset %d", off)
	}
	if end := off + int64(n); end > maxPhantomBytes {
		return fmt.Errorf("passd: data ends at byte %d, beyond the %d-byte phantom cap", end, int64(maxPhantomBytes))
	}
	return nil
}

// readAt returns up to n bytes of the phantom's in-memory data starting
// at off, and the identity it was read at (pass_read's contract: data
// plus the exact version). The allocation is bounded by what is actually
// readable, never by the request.
func (o *serverObject) readAt(n int, off int64) ([]byte, pnode.Ref) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if n <= 0 || off < 0 || off >= int64(len(o.buf)) {
		return nil, o.ref
	}
	if avail := int64(len(o.buf)) - off; int64(n) > avail {
		n = int(avail)
	}
	out := make([]byte, n)
	copy(out, o.buf[off:])
	return out, o.ref
}

// writeData grows and fills the in-memory buffer; the span must have
// passed checkDataSpan. Provenance is handled by the caller (server.go)
// so the records and the data commit as one unit.
func (o *serverObject) writeData(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if err := checkDataSpan(len(p), off); err != nil {
		return 0, err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(o.buf)) {
		grown := make([]byte, end)
		copy(grown, o.buf)
		o.buf = grown
	}
	copy(o.buf[off:], p)
	return len(p), nil
}

// process runs a disclosed bundle through the registry's analyzer grouped
// by subject — the same per-subject discipline the in-process observer
// applies — and returns the surviving records, rewritten across any
// cycle-avoidance freezes, plus the distinct subject pnodes (for the
// caller's post-commit sweepZeroHandle).
func (rg *registry) process(recs []record.Record) ([]record.Record, []pnode.PNode, error) {
	var out []record.Record
	order, groups := record.GroupBySubject(recs)
	for _, pn := range order {
		group := groups[pn]
		node := rg.nodeForSubject(group[0].Subject)
		processed, err := rg.an.Process(node, group...)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, processed...)
	}
	return out, order, nil
}
