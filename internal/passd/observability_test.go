package passd

// Serving-edge observability tests (DESIGN.md §12): the admin endpoint
// smoke, the metrics/STATS consistency property, and the per-tenant
// quota properties. The consistency test is the load-bearing one: every
// counter /metrics exports must agree with the STATS verb and with a
// client-side ledger of what was actually offered, after a randomized
// multi-tenant workload — the two surfaces read the same atomics, and
// this test is what keeps that true as the serving path evolves.

import (
	"errors"
	"math/rand"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"passv2/internal/metrics"
)

// requiredFamilies is the admin contract from DESIGN.md §12: families a
// dashboard may assume exist on every daemon, whatever its role.
var requiredFamilies = []string{
	"passd_requests_total",
	"passd_request_errors_total",
	"passd_request_seconds",
	"passd_inflight",
	"passd_shed_total",
	"passd_queries_total",
	"passd_query_errors_total",
	"passd_cache_hits_total",
	"passd_cache_misses_total",
	"passd_staged_records_total",
	"passd_ingest_entries_total",
	"passd_conns",
	"passd_workers",
	"passd_uptime_seconds",
	"passd_db_records",
	"passd_db_generation",
	"passd_checkpoint_generation",
	"passd_checkpoint_age_seconds",
	"passd_repl_commit_seconds",
	"passd_repl_quorum_failures_total",
}

// sampleKey renders one labeled Gather key, e.g.
// passd_requests_total{verb="query"}.
func sampleKey(name, label, value string) string {
	return metrics.SampleKey(name, label+`="`+value+`"`)
}

// hasFamily reports whether a scraped sample set contains any series of
// the named family (bare, labeled, or histogram-suffixed).
func hasFamily(samples map[string]float64, name string) bool {
	if _, ok := samples[name]; ok {
		return true
	}
	if _, ok := samples[name+"_count"]; ok {
		return true
	}
	for k := range samples {
		if strings.HasPrefix(k, name+"{") || strings.HasPrefix(k, name+"_count{") {
			return true
		}
	}
	return false
}

// TestAdminEndpoints is the admin-surface smoke CI runs: a daemon with
// the admin listener on, a little traffic, then /metrics must parse as
// Prometheus text and agree with the in-process registry, /healthz and
// /readyz must answer, and readiness must track the checker.
func TestAdminEndpoints(t *testing.T) {
	w, query := testWaldo(8)
	srv := startServer(t, w, Config{AdminAddr: "127.0.0.1:0"})
	if srv.AdminAddr() == "" {
		t.Fatal("AdminAddr is empty with the admin listener configured")
	}
	c := dialClient(t, srv)

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Query(query); err != nil {
			t.Fatalf("query: %v", err)
		}
	}
	if _, err := c.Query("select ! bad"); err == nil {
		t.Fatal("bad query did not error")
	}

	resp, err := http.Get("http://" + srv.AdminAddr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("GET /metrics: Content-Type %q is not Prometheus text 0.0.4", ct)
	}
	scraped, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("scrape did not parse as Prometheus text: %v", err)
	}
	for _, fam := range requiredFamilies {
		if !hasFamily(scraped, fam) {
			t.Errorf("scrape is missing required family %s", fam)
		}
	}
	// The scrape and the in-process registry are the same surface: every
	// series name must appear in both (values may drift for clocks).
	gathered := srv.Metrics().Gather()
	for k := range scraped {
		if _, ok := gathered[k]; !ok {
			t.Errorf("scraped series %s absent from Gather()", k)
		}
	}
	for k := range gathered {
		if _, ok := scraped[k]; !ok {
			t.Errorf("gathered series %s absent from the scrape", k)
		}
	}
	if got := scraped[`passd_requests_total{verb="query"}`]; got != 3 {
		t.Errorf(`passd_requests_total{verb="query"} = %v, want 3`, got)
	}
	if got := scraped[`passd_request_errors_total{verb="query"}`]; got != 1 {
		t.Errorf(`passd_request_errors_total{verb="query"} = %v, want 1`, got)
	}
	if got := scraped["passd_queries_total"]; got != 3 {
		t.Errorf("passd_queries_total = %v, want 3", got)
	}
	if got := scraped[`passd_request_seconds_count{verb="ping"}`]; got != 1 {
		t.Errorf(`passd_request_seconds_count{verb="ping"} = %v, want 1`, got)
	}

	get := func(path string) int {
		resp, err := http.Get("http://" + srv.AdminAddr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", code)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz = %d, want 200", code)
	}
	srv.Health().SetReady(false)
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after SetReady(false) = %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz must stay 200 while unready, got %d", code)
	}
	srv.Health().SetReady(true)
	if code := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after SetReady(true) = %d, want 200", code)
	}

	addr := srv.AdminAddr()
	srv.Close()
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("admin endpoint still answers after Close")
	}
}

// consistencyLedger is the harness's ground truth for the consistency
// property: what each client actually offered, dispatched, and had
// refused, merged across workers.
type consistencyLedger struct {
	mu       sync.Mutex
	verbs    map[string]int64 // dispatched requests per verb (refusals excluded)
	verbErrs map[string]int64 // dispatched requests that errored, per verb
	attempts map[string]int64 // offered requests per tenant (refusals included)
	refused  map[string]int64 // quota refusals per tenant
}

func (l *consistencyLedger) merge(verbs, verbErrs map[string]int64, tenant string, attempts, refused int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for v, n := range verbs {
		l.verbs[v] += n
	}
	for v, n := range verbErrs {
		l.verbErrs[v] += n
	}
	if tenant != "" {
		l.attempts[tenant] += attempts
		l.refused[tenant] += refused
	}
}

// TestMetricsStatsConsistency drives a randomized multi-tenant workload
// — an unattributed client, a free-running tenant, and a byte-capped
// tenant whose disclosures always exceed its rate — then requires three
// surfaces to agree exactly: the harness ledger, the STATS verb, and the
// metrics registry /metrics serves.
func TestMetricsStatsConsistency(t *testing.T) {
	w, query := testWaldo(16)
	srv := startServer(t, w, Config{
		TenantQuotas: map[string]TenantQuota{
			// One token per second and a full-at-boot bucket of one: any
			// real disclosure exceeds it, so bob's staging refusals are
			// deterministic while his reads flow freely.
			"bob": {StagedBytesPerSec: 1},
		},
	})

	opts := func(tenant string) Options {
		return Options{MaxRetries: -1, Tenant: tenant}
	}
	cAnon, err := DialOptions(srv.Addr(), opts(""))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cAnon.Close() })
	cAlice, err := DialOptions(srv.Addr(), opts("alice"))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cAlice.Close() })
	cBob, err := DialOptions(srv.Addr(), opts("bob"))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cBob.Close() })

	ledger := &consistencyLedger{
		verbs:    map[string]int64{},
		verbErrs: map[string]int64{},
		attempts: map[string]int64{},
		refused:  map[string]int64{},
	}

	// Each worker executes a fixed multiset of operations in an order
	// shuffled by its own generator: randomized interleaving, exact
	// expected counts.
	mix := func(op string, n int) []string {
		ops := make([]string, n)
		for i := range ops {
			ops[i] = op
		}
		return ops
	}
	baseMix := append(append(append(mix("ping", 8), mix("query", 10)...),
		append(mix("badquery", 4), mix("explain", 4)...)...),
		append(append(mix("stats", 2), mix("drain", 2)...), mix("append", 6)...)...)

	run := func(worker int, c *Client, tenant string, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		ops := append([]string(nil), baseMix...)
		rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
		verbs := map[string]int64{"hello": 1} // ensureLocked's negotiation
		verbErrs := map[string]int64{}
		attempts := int64(1) // the hello is tenant-attributed too
		var refused int64
		for round, op := range ops {
			attempts++
			var err error
			switch op {
			case "ping":
				verbs["ping"]++
				err = c.Ping()
			case "query":
				verbs["query"]++
				_, err = c.Query(query)
			case "badquery":
				verbs["query"]++
				if _, err := c.Query("select ! bad"); err == nil {
					t.Error("bad query did not error")
				}
				verbErrs["query"]++
			case "explain":
				verbs["explain"]++
				_, err = c.Explain(query)
			case "stats":
				verbs["stats"]++
				_, err = c.Stats()
			case "drain":
				verbs["drain"]++
				_, err = c.Drain()
			case "append":
				err = c.AppendProvenance(soakBatch(worker, round))
				if errors.Is(err, ErrQuotaExceeded) {
					// Refused at admission: never dispatched, so it must
					// not appear in the verb counters.
					refused++
					err = nil
				} else {
					verbs["write"]++
				}
			}
			if err != nil {
				t.Errorf("worker %d op %s: %v", worker, op, err)
			}
		}
		ledger.merge(verbs, verbErrs, tenant, attempts, refused)
	}

	var wg sync.WaitGroup
	for i, cl := range []struct {
		c      *Client
		tenant string
	}{{cAnon, ""}, {cAlice, "alice"}, {cBob, "bob"}} {
		wg.Add(1)
		go func(worker int, c *Client, tenant string) {
			defer wg.Done()
			run(worker, c, tenant, int64(worker))
		}(i, cl.c, cl.tenant)
	}
	wg.Wait()

	// Per-request tenant override: an unattributed connection naming a
	// tenant on one request bills that request to the tenant.
	if _, err := cAnon.roundTrip(&Request{Op: "ping", Tenant: "alice"}); err != nil {
		t.Fatalf("tenant-override ping: %v", err)
	}
	ledger.merge(map[string]int64{"ping": 1}, nil, "alice", 1, 0)

	// The final STATS read is itself a dispatched request.
	ledger.verbs["stats"]++
	st, err := cAnon.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	g := srv.Metrics().Gather()

	// Surface 1 vs ledger: the STATS verb.
	if !reflect.DeepEqual(st.Verbs, ledger.verbs) {
		t.Errorf("STATS verb counts disagree with the ledger:\nstats:  %v\nledger: %v", st.Verbs, ledger.verbs)
	}
	if bobRefused := ledger.refused["bob"]; st.QuotaRefusals != bobRefused || bobRefused == 0 {
		t.Errorf("STATS quota_refusals = %d, ledger refused %d (want equal and nonzero)", st.QuotaRefusals, bobRefused)
	}
	if len(st.Tenants) != 2 {
		t.Errorf("STATS tenants = %v, want exactly alice and bob (the empty tenant must never be accounted)", st.Tenants)
	}
	for _, tenant := range []string{"alice", "bob"} {
		ts, ok := st.Tenants[tenant]
		if !ok {
			t.Errorf("STATS has no tenant %q", tenant)
			continue
		}
		if ts.Requests != ledger.attempts[tenant] {
			t.Errorf("tenant %s: STATS requests %d, ledger offered %d", tenant, ts.Requests, ledger.attempts[tenant])
		}
		if ts.Refused != ledger.refused[tenant] {
			t.Errorf("tenant %s: STATS refused %d, ledger %d", tenant, ts.Refused, ledger.refused[tenant])
		}
		if ts.InFlight != 0 {
			t.Errorf("tenant %s: %d requests still in flight after quiesce", tenant, ts.InFlight)
		}
	}
	if st.Tenants["alice"].StagedBytes == 0 {
		t.Error("alice staged no bytes despite admitted disclosures")
	}
	if st.Tenants["bob"].StagedBytes != 0 {
		t.Errorf("bob staged %d bytes despite every disclosure being refused", st.Tenants["bob"].StagedBytes)
	}

	// Surface 2 vs ledger and STATS: the metrics registry.
	sample := func(key string) float64 { return g[key] }
	for verb, n := range ledger.verbs {
		if got := sample(sampleKey("passd_requests_total", "verb", verb)); got != float64(n) {
			t.Errorf("metrics requests{verb=%s} = %v, ledger %d", verb, got, n)
		}
		if got := sample(sampleKey("passd_request_seconds_count", "verb", verb)); got != float64(n) {
			t.Errorf("metrics latency count{verb=%s} = %v, ledger %d (every dispatched request must be timed)", verb, got, n)
		}
		if got := sample(sampleKey("passd_request_errors_total", "verb", verb)); got != float64(ledger.verbErrs[verb]) {
			t.Errorf("metrics errors{verb=%s} = %v, ledger %d", verb, got, ledger.verbErrs[verb])
		}
	}
	for tenant, n := range ledger.attempts {
		if got := sample(sampleKey("passd_tenant_requests_total", "tenant", tenant)); got != float64(n) {
			t.Errorf("metrics tenant_requests{tenant=%s} = %v, ledger %d", tenant, got, n)
		}
		if got := sample(sampleKey("passd_quota_refused_total", "tenant", tenant)); got != float64(ledger.refused[tenant]) {
			t.Errorf("metrics quota_refused{tenant=%s} = %v, ledger %d", tenant, got, ledger.refused[tenant])
		}
	}
	for _, lane := range []string{laneLine, laneSerial, laneConcurrent} {
		if got := sample(sampleKey("passd_inflight", "lane", lane)); got != 0 {
			t.Errorf("metrics inflight{lane=%s} = %v after quiesce", lane, got)
		}
	}
	crossChecks := map[string]int64{
		"passd_queries_total":        st.Queries,
		"passd_query_errors_total":   st.QueryErrors,
		"passd_cache_hits_total":     st.CacheHits,
		"passd_cache_misses_total":   st.CacheMisses,
		"passd_drains_total":         st.Drains,
		"passd_staged_records_total": st.Appends,
		"passd_conns":                st.Conns,
	}
	for key, want := range crossChecks {
		if got := sample(key); got != float64(want) {
			t.Errorf("metrics %s = %v, STATS says %d", key, got, want)
		}
	}
	shedSum := sample(sampleKey("passd_shed_total", "lane", laneQueue)) +
		sample(sampleKey("passd_shed_total", "lane", laneConn))
	if shedSum != float64(st.Shed) {
		t.Errorf("metrics shed lanes sum to %v, STATS says %d", shedSum, st.Shed)
	}
}

// TestQuotaProperties pins the quota admission properties down at both
// levels: the admission primitive directly (in-flight cap semantics) and
// over the wire (conservation of offered = accepted + refused per
// tenant, refusals confined to over-cap tenants, idle quota'd tenants
// never penalized or even accounted).
func TestQuotaProperties(t *testing.T) {
	w, query := testWaldo(8)
	srv := startServer(t, w, Config{
		TenantQuotas: map[string]TenantQuota{
			"cap":   {MaxInFlight: 1},
			"tiny":  {StagedBytesPerSec: 1},
			"burst": {MaxInFlight: 2},
			"idle":  {MaxInFlight: 1},
		},
	})

	// The admission primitive: an in-flight cap of one admits serially
	// and refuses concurrently, and release restores capacity.
	rel1, err := srv.admitTenant("cap", "query", 0)
	if err != nil {
		t.Fatalf("first admit under cap: %v", err)
	}
	if _, err := srv.admitTenant("cap", "query", 0); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("second concurrent admit = %v, want ErrQuotaExceeded", err)
	}
	rel1()
	rel2, err := srv.admitTenant("cap", "query", 0)
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	rel2()
	if rel, err := srv.admitTenant("", "query", 1<<30); err != nil {
		t.Fatalf("the empty tenant must never be limited, got %v", err)
	} else {
		rel()
	}

	dial := func(tenant string) *Client {
		c, err := DialOptions(srv.Addr(), Options{MaxRetries: -1, Tenant: tenant})
		if err != nil {
			t.Fatalf("dial %s: %v", tenant, err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}

	// Deterministic byte-rate refusals: every disclosure exceeds tiny's
	// one-byte bucket, every read passes.
	const tinyAppends, tinyPings = 12, 5
	cTiny := dial("tiny")
	if err := cTiny.Ping(); err != nil { // hello + prime
		t.Fatalf("tiny prime: %v", err)
	}
	for i := 0; i < tinyAppends; i++ {
		if err := cTiny.AppendProvenance(soakBatch(90, i)); !errors.Is(err, ErrQuotaExceeded) {
			t.Fatalf("tiny append %d = %v, want ErrQuotaExceeded", i, err)
		}
	}
	for i := 0; i < tinyPings; i++ {
		if err := cTiny.Ping(); err != nil {
			t.Fatalf("tiny ping %d: %v (non-staging verbs must not be byte-limited)", i, err)
		}
	}

	// A tenant with no configured quota is accounted but never refused.
	const freeOps = 10
	cFree := dial("free")
	for i := 0; i < freeOps; i++ {
		if err := cFree.AppendProvenance(soakBatch(91, i)); err != nil {
			t.Fatalf("free append %d: %v", i, err)
		}
	}

	// Conservation under contention: six connections share the burst
	// tenant (in-flight cap two) and hammer queries concurrently. Some
	// are refused; offered must equal accepted + refused exactly.
	const burstClients, burstOps = 6, 30
	burst := make([]*Client, burstClients)
	for i := range burst {
		burst[i] = dial("burst")
		if err := burst[i].Ping(); err != nil { // serial prime: hello under cap
			t.Fatalf("burst prime %d: %v", i, err)
		}
	}
	var accepted, refused int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, c := range burst {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			var ok, rej int64
			for n := 0; n < burstOps; n++ {
				_, err := c.Query(query)
				switch {
				case err == nil:
					ok++
				case errors.Is(err, ErrQuotaExceeded):
					rej++
				default:
					t.Errorf("burst client %d: unexpected error %v", i, err)
				}
			}
			mu.Lock()
			accepted += ok
			refused += rej
			mu.Unlock()
		}(i, c)
	}
	wg.Wait()
	if accepted+refused != burstClients*burstOps {
		t.Fatalf("burst ledger leaked answers: accepted %d + refused %d != offered %d",
			accepted, refused, burstClients*burstOps)
	}

	cAnon := dialClient(t, srv)
	st, err := cAnon.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	g := srv.Metrics().Gather()

	type want struct{ offered, refused int64 }
	wants := map[string]want{
		"tiny":  {2 + tinyAppends + tinyPings, tinyAppends}, // hello + prime + appends + pings
		"free":  {1 + freeOps, 0},                           // hello + appends
		"burst": {2*burstClients + burstClients*burstOps, refused},
	}
	for tenant, wantTS := range wants {
		ts, ok := st.Tenants[tenant]
		if !ok {
			t.Errorf("STATS has no tenant %q", tenant)
			continue
		}
		if ts.Requests != wantTS.offered || ts.Refused != wantTS.refused {
			t.Errorf("tenant %s: STATS offered/refused = %d/%d, ledger %d/%d",
				tenant, ts.Requests, ts.Refused, wantTS.offered, wantTS.refused)
		}
		if got := g[sampleKey("passd_tenant_requests_total", "tenant", tenant)]; got != float64(wantTS.offered) {
			t.Errorf("tenant %s: metrics offered %v, ledger %d", tenant, got, wantTS.offered)
		}
		if got := g[sampleKey("passd_quota_refused_total", "tenant", tenant)]; got != float64(wantTS.refused) {
			t.Errorf("tenant %s: metrics refused %v, ledger %d", tenant, got, wantTS.refused)
		}
	}

	// The idle tenant offered nothing: it must not appear on any surface.
	if _, ok := st.Tenants["idle"]; ok {
		t.Error("idle tenant appears in STATS despite offering nothing")
	}
	for k := range g {
		if strings.Contains(k, `tenant="idle"`) {
			t.Errorf("idle tenant appears on /metrics as %s despite offering nothing", k)
		}
	}
}
