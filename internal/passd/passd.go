// Package passd is the PASSv2 provenance daemon: a TCP serving layer over
// a Waldo database, the piece the paper's user-level stack stops short of
// (§5.6 runs Waldo and the query shell in one process, one client at a
// time). It exists so many clients can query a database that is still
// ingesting: every query pins an O(1) snapshot (waldo.DB.ReadView over
// kvdb's copy-on-write views), so readers never contend with ApplyBatch —
// the serialization the in-process path pays on waldo.DB's store lock.
//
// The wire protocol starts as one JSON object per line in each direction
// (see DESIGN.md §9 for the grammar); a hello that negotiates protocol
// version 3 upgrades the connection to the multiplexed binary framing in
// frame.go (DESIGN.md §11) — same verbs, same envelopes, but many
// requests in flight per connection and record/data/row payloads off
// JSON:
//
//	→ {"op":"query","query":"select ...","timeout_ms":500}
//	← {"ok":true,"columns":["A"],"rows":[[{"k":"ref","p":5,"v":1,"n":"/f"}]]}
//
// Protocol v1 verbs: "query" evaluates PQL over a pinned snapshot;
// "explain" returns the plan without executing; "stats" reports database
// and server counters (including checkpoint and boot-recovery state);
// "drain" forces a synchronous Waldo drain so subsequent views observe
// everything logged; "checkpoint" forces a durable checkpoint generation
// (Config.Checkpoints); "append" durably logs provenance records before
// replying; "ping" is a liveness no-op.
//
// Protocol v2 makes the daemon a DPAPI layer (§5.2): its verbs are the six
// Disclosed Provenance API calls, so anything that stacks on a local layer
// through dpapi.Object/dpapi.Layer stacks on a remote daemon through the
// same interface. "hello" negotiates the protocol version and reports the
// server's phantom-object volume prefix; "mkobj" creates a phantom object
// and returns a wire handle; "revive" reopens one by (pnode, version)
// across connections and daemon restarts; "read" returns data plus the
// exact identity read (pass_read); "write" applies a data buffer and a
// provenance-record bundle as one unit, durably acknowledged (pass_write);
// "freeze" versions the object (cycle breaking); "sync" forces its
// provenance to persistent storage; "close" releases the handle without
// destroying provenance; "batch" pipelines many DPAPI ops in one
// round-trip under a single durable acknowledgment. "append" is retained
// as a deprecated v1 alias over the handle-less write path. The client
// side of the same contract is passd.Client (a dpapi.Layer) handing out
// RemoteObject handles (dpapi.Object) — see dpapi.go.
//
// Replication (DESIGN.md §10) adds three peer verbs on the same wire:
// "repljoin" announces a follower's serving address to the primary (which
// dials back and drives replication), "replstate" reports a follower's
// durable replicated log size, and "replappend" appends a chunk of the
// primary's log bytes at an exact offset, durably, draining it into the
// follower's database before the ack. A follower is read-only: client
// writes are refused with the "read_only" code; queries, stats and the
// whole read-side DPAPI keep working, which is what makes follower reads
// and hedging sound. On a primary with a write quorum configured, the
// durable-ack barrier additionally blocks until W-1 followers hold the
// acknowledged bytes; when they don't, the client sees the retryable
// "unavailable" code instead of a false ack.
//
// Durability: with a checkpoint store configured the server runs a
// background checkpointer (interval- and records-applied-triggered, see
// Config) and flushes a final generation on Close; after a crash the
// daemon restarts from the newest valid generation and re-drains only the
// log tail past the checkpointed offsets — see passv2/internal/checkpoint.
//
// Concurrency model: one goroutine per connection, but query execution
// passes through a bounded worker pool (Config.Workers slots). When all
// slots are busy, up to Config.MaxQueue queries wait; beyond that the
// server sheds load with an "overloaded" error instead of queueing
// unboundedly — the backpressure contract DESIGN.md §7 documents. Each
// query runs under a deadline (client-requested, capped by
// Config.MaxTimeout) enforced inside the PQL executor.
package passd

import (
	"fmt"

	"passv2/internal/pnode"
	"passv2/internal/pql"
	"passv2/internal/record"
)

// Request is one client command, encoded as a single JSON line.
type Request struct {
	// Op is the verb (case-insensitive). v1: "query", "explain", "stats",
	// "drain", "checkpoint", "append", "ping". v2 (DPAPI): "hello",
	// "mkobj", "revive", "read", "write", "freeze", "sync", "close",
	// "batch".
	Op string `json:"op"`
	// Query is the PQL source for "query" and "explain".
	Query string `json:"query,omitempty"`
	// TimeoutMS overrides the server's default per-query deadline,
	// capped at Config.MaxTimeout. Zero means the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Records carries provenance records: the bundle of a "write", or the
	// raw payload of the deprecated "append" alias. The server commits
	// them durably (write-through to the volume log when it owns one)
	// before replying, so an acknowledged write survives a daemon kill.
	Records []WireRecord `json:"records,omitempty"`
	// Tenant is an optional tenant identity for per-tenant accounting and
	// quotas (Config.TenantQuotas). Carried on "hello" it names the whole
	// connection; carried on any other request it names that request
	// (overriding the connection's tenant). Empty means unattributed —
	// never quota-limited, never per-tenant-counted.
	Tenant string `json:"tenant,omitempty"`

	// --- protocol v2 fields ---

	// Version is the highest protocol version the client speaks
	// ("hello"). Servers reply with min(theirs, ours).
	Version int `json:"v,omitempty"`
	// Handle addresses an open object for "read", "write", "freeze",
	// "sync" and "close". Zero on "write" means the handle-less disclose
	// path (the "append" alias).
	Handle uint64 `json:"h,omitempty"`
	// P and Ver identify the object to "revive" (pnode, version).
	P   uint64 `json:"p,omitempty"`
	Ver uint32 `json:"ver,omitempty"`
	// Off is the byte offset of a "read" or "write".
	Off int64 `json:"off,omitempty"`
	// Len bounds how many bytes a "read" returns.
	Len int `json:"len,omitempty"`
	// Data is the payload of a "write" (base64 inside the JSON line).
	Data []byte `json:"data,omitempty"`
	// Ops is the pipelined op list of a "batch": each entry is a full
	// Request restricted to the DPAPI verbs (no nested batches). The
	// server executes them in order and acknowledges once, durably.
	Ops []Request `json:"ops,omitempty"`

	// --- replication fields (see internal/replica and DESIGN.md §10) ---

	// Addr is the follower's advertised serving address ("repljoin"): a
	// follower announces itself to the primary, which dials back and
	// drives replication. Off and Data double as the replicated log
	// offset and byte chunk of a "replappend".
	Addr string `json:"addr,omitempty"`

	// --- tamper-evidence fields (DESIGN.md §13) ---

	// MMRSize and MMRRoot ride on a "replappend" from a proof-aware
	// primary: the Merkle-mountain-range leaf count and hex-encoded root
	// covering the log prefix ending at Off+len(Data). A follower with a
	// live MMR recomputes its own root over the same prefix and refuses
	// the append with the "forked" code on mismatch. On a "verify" with
	// op "root" or "include", MMRSize optionally pins the tree size to
	// answer at (0 = current).
	MMRSize uint64 `json:"mmr_n,omitempty"`
	MMRRoot string `json:"mmr_root,omitempty"`
	// VerifyOp selects what a "verify" returns: "root" (default) — the
	// current signed root statement; "include" — an inclusion proof for
	// leaf VerifyIndex; "consistency" — a consistency proof showing the
	// tree at VerifyTo extends the tree at VerifyFrom (VerifyTo 0 =
	// current size).
	VerifyOp    string `json:"verify_op,omitempty"`
	VerifyIndex uint64 `json:"verify_index,omitempty"`
	VerifyFrom  uint64 `json:"verify_from,omitempty"`
	VerifyTo    uint64 `json:"verify_to,omitempty"`

	// recs is the native-form record bundle of a "write"/"append": the
	// protocol-v3 binary framing ships it through internal/record's codec
	// (frame.go) instead of the JSON WireRecord form, so Records never
	// needs to be materialized on a v3 connection. When both are present,
	// recs wins; the JSON marshaler never sees this field.
	recs []record.Record
}

// Response is one server reply, encoded as a single JSON line. Exactly one
// response is written per request, in request order.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Code is a machine-readable error class for DPAPI failures, so
	// clients can map wire errors back onto the dpapi sentinel errors:
	// "stale" (dpapi.ErrStale), "wrong_layer" (dpapi.ErrWrongLayer),
	// "closed" (dpapi.ErrClosed), "not_pass" (dpapi.ErrNotPassVolume).
	Code string `json:"code,omitempty"`

	Columns    []string        `json:"columns,omitempty"`    // query
	Rows       [][]Value       `json:"rows,omitempty"`       // query
	Plan       string          `json:"plan,omitempty"`       // explain
	Stats      *Stats          `json:"stats,omitempty"`      // stats
	Records    int64           `json:"records,omitempty"`    // drain
	Appended   int64           `json:"appended,omitempty"`   // append/write: records committed
	Checkpoint *CheckpointInfo `json:"checkpoint,omitempty"` // checkpoint
	Elapsed    int64           `json:"elapsed_us,omitempty"`

	// --- protocol v2 fields ---

	Version int        `json:"version,omitempty"` // hello: negotiated version
	Volume  uint16     `json:"volume,omitempty"`  // hello: phantom-object volume prefix
	Handle  uint64     `json:"h,omitempty"`       // mkobj/revive: wire handle
	P       uint64     `json:"p,omitempty"`       // mkobj/revive/read: object identity
	Ver     uint32     `json:"ver,omitempty"`     // mkobj/revive/read/freeze: version
	N       int        `json:"n,omitempty"`       // read/write: bytes moved
	Data    []byte     `json:"data,omitempty"`    // read: payload
	Ops     []Response `json:"ops,omitempty"`     // batch: one response per op, in order

	// ReplSize is the follower's durable replicated log size after a
	// "replstate" or "replappend" — the offset replication resumes from.
	ReplSize int64 `json:"repl_size,omitempty"`

	// Verify is the payload of the "verify" verb: a root statement, an
	// inclusion proof, or a consistency proof (see WireVerify).
	Verify *WireVerify `json:"verify,omitempty"`
}

// WireVerify is the wire form of a "verify" answer. All hashes, keys and
// signatures are hex-encoded so the struct survives both the JSON-line
// and the binary-framed transports unchanged. Which fields are set
// depends on Op:
//
//   - "root": Size, Root and Volume always; DeviceID, PubKey, Sig and
//     Timestamp when the daemon holds a signing identity (the signature
//     covers the canonical signer.Statement with Gen 0).
//   - "include": Index, Leaf, Size, Root, Path and Peaks — verifiable
//     with mmr.VerifyInclusion.
//   - "consistency": OldSize, OldRoot, OldPeaks, Size, Root and Fillers
//     — verifiable with mmr.VerifyConsistency.
type WireVerify struct {
	Op     string `json:"op"`
	Volume string `json:"volume,omitempty"`
	Size   uint64 `json:"n"`
	Root   string `json:"root"`

	DeviceID  string `json:"device_id,omitempty"`
	PubKey    string `json:"pub,omitempty"`
	Sig       string `json:"sig,omitempty"`
	Timestamp uint64 `json:"ts,omitempty"`

	Index uint64   `json:"index,omitempty"`
	Leaf  string   `json:"leaf,omitempty"`
	Path  []string `json:"path,omitempty"`
	Peaks []string `json:"peaks,omitempty"`

	OldSize  uint64   `json:"old_n,omitempty"`
	OldRoot  string   `json:"old_root,omitempty"`
	OldPeaks []string `json:"old_peaks,omitempty"`
	Fillers  []string `json:"fillers,omitempty"`
}

// Error codes carried in Response.Code; see decodeDPAPIError in dpapi.go.
// The last four classify availability failures so clients can decide what
// to retry without parsing error strings: "overloaded" (ErrOverloaded,
// shed before execution — always safe to retry), "unavailable"
// (ErrUnavailable, the write quorum was not reached after the records
// were already staged and durably logged — retried automatically only
// for idempotent ops; a record-staging op must not be blindly resent),
// "read_only" (ErrReadOnly, a follower refusing a write — not retryable
// here, go to the primary) and "gap" (replica.ErrGap, a replicated
// append past the follower's log end — the primary re-reads the follower
// state and backfills).
const (
	codeStale      = "stale"
	codeWrongLayer = "wrong_layer"
	codeClosed     = "closed"
	codeNotPass    = "not_pass"
	codeOverloaded = "overloaded"
	codeUnavail    = "unavailable"
	codeReadOnly   = "read_only"
	codeGap        = "gap"
	// codeTooLarge classifies a request that overflows the server's wire
	// budget (the 4 MiB JSON line cap, or the 16 MiB frame cap on v3).
	// The server replies with it before closing the connection — the old
	// behavior was a silent drop when bufio.Scanner hit ErrTooLong — and
	// the client maps it onto ErrTooLarge. It is never retryable: the
	// same bytes would be refused again.
	codeTooLarge = "toolarge"
	// codeQuota classifies a per-tenant quota refusal (ErrQuotaExceeded):
	// the request was refused at admission, before execution, because its
	// tenant is over its in-flight or staged-bytes/sec cap. Like
	// "overloaded" it is always safe to retry with backoff — nothing
	// executed — and the client does so automatically.
	codeQuota = "quota"
	// codeForked classifies a follower refusing a "replappend" whose
	// claimed MMR root disagrees with the root the follower recomputed
	// over the same byte prefix (ErrForked): the primary's history and
	// the follower's history are different logs. Never retryable — the
	// same bytes would be refused again, and resending cannot reconcile
	// two divergent histories. An operator must re-seed one side.
	codeForked = "forked"
)

// CheckpointInfo is the payload of the "checkpoint" verb: the committed
// generation, its kind ("full" or "delta"), the records it covers and the
// payload size on disk.
type CheckpointInfo struct {
	Gen           int64  `json:"gen"`
	Kind          string `json:"kind"`
	Records       int64  `json:"records"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
}

// Value is the wire form of one result cell (pql.Value without the
// unexported-kind enum, so both ends agree on a stable encoding).
type Value struct {
	K string `json:"k"`           // "null", "ref", "str", "int", "bool"
	S string `json:"s,omitempty"` // str payload
	I int64  `json:"i,omitempty"` // int payload
	B bool   `json:"b,omitempty"` // bool payload
	P uint64 `json:"p,omitempty"` // ref pnode
	V uint32 `json:"v,omitempty"` // ref version
	N string `json:"n,omitempty"` // ref display name
}

// Stats is the payload of the "stats" verb: the live database counters
// plus the server's serving counters.
type Stats struct {
	Records   int64 `json:"records"`
	ProvBytes int64 `json:"prov_bytes"`
	IdxBytes  int64 `json:"idx_bytes"`

	Queries     int64 `json:"queries"`            // queries served (including failed)
	QueryErrors int64 `json:"query_errors"`       // parse/eval failures
	Timeouts    int64 `json:"timeouts"`           // queries killed by deadline
	Shed        int64 `json:"shed"`               // queries refused by backpressure
	Drains      int64 `json:"drains"`             // drain verbs served
	Conns       int64 `json:"conns"`              // currently open connections
	V3Conns     int64 `json:"v3_conns,omitempty"` // connections upgraded to binary framing
	Workers     int   `json:"workers"`            // worker-pool size
	CacheHits   int64 `json:"cache_hits"`         // queries answered from a snapshot's result cache
	CacheMisses int64 `json:"cache_misses"`       // queries that executed

	Gen            int64 `json:"gen"`             // database generation (applied batches)
	EntriesDecoded int64 `json:"entries_decoded"` // log entries decoded by this process's drains

	Checkpoints       int64 `json:"checkpoints"`       // checkpoints committed by this process
	CheckpointErrors  int64 `json:"checkpoint_errors"` // checkpoint attempts that failed
	LastCheckpointGen int64 `json:"last_checkpoint_gen"`
	// Incremental-checkpoint accounting: generations committed as deltas,
	// payload bytes by kind, and committed generations whose post-commit
	// retention sweep failed (housekeeping lag, not checkpoint failure).
	CheckpointDeltas      int64 `json:"checkpoint_deltas"`
	CheckpointFullBytes   int64 `json:"checkpoint_full_bytes"`
	CheckpointDeltaBytes  int64 `json:"checkpoint_delta_bytes"`
	CheckpointSweepErrors int64 `json:"checkpoint_sweep_errors"`
	Appends               int64 `json:"appends"` // records accepted via the append verb

	RecoveredGen     int64 `json:"recovered_gen"`     // generation recovered at boot (0 = cold start)
	RecoveredRecords int64 `json:"recovered_records"` // records in the recovered snapshot
	ResumeBytes      int64 `json:"resume_bytes"`      // log bytes the recovery skipped
	SkippedGens      int64 `json:"skipped_gens"`      // corrupt generations recovery fell past

	Mkobjs  int64 `json:"mkobjs"`  // phantom objects created over the wire
	Revives int64 `json:"revives"` // handles reopened over the wire
	Batches int64 `json:"batches"` // pipelined batch requests served
	Objects int64 `json:"objects"` // live objects in the server registry

	// Replication state (DESIGN.md §10). Role is "" on a standalone
	// daemon, "primary" when replicating out, "follower" when receiving.
	Role           string `json:"role,omitempty"`
	ReplQuorum     int    `json:"repl_quorum,omitempty"`     // write quorum W, counting the primary
	ReplFollowers  int64  `json:"repl_followers,omitempty"`  // followers joined (primary)
	ReplConnected  int64  `json:"repl_connected,omitempty"`  // followers currently streaming (primary)
	ReplBytes      int64  `json:"repl_bytes,omitempty"`      // follower: durable replicated log bytes
	QuorumFailures int64  `json:"quorum_failures,omitempty"` // acks refused because quorum was not reached

	// Serving-edge observability (DESIGN.md §12). Verbs counts dispatched
	// requests per verb — the same counters /metrics exports as
	// passd_requests_total, read from one source so the two surfaces can
	// never disagree. QuotaRefusals totals per-tenant quota refusals, and
	// Tenants breaks accounting down per tenant (only tenants that ever
	// named themselves appear).
	Verbs         map[string]int64       `json:"verbs,omitempty"`
	QuotaRefusals int64                  `json:"quota_refusals,omitempty"`
	Tenants       map[string]TenantStats `json:"tenants,omitempty"`

	// Tamper evidence (DESIGN.md §13). RecoverySkips breaks SkippedGens
	// down by the machine-readable skip class checkpoint recovery
	// assigned ("manifest", "payload", "chain_base", "orphan",
	// "root_mismatch", "other"). MMRLeaves/MMRRoot describe the live
	// Merkle mountain range over the provenance log; MMRPruned reports
	// whether it was resumed from a peak snapshot (proofs need a
	// rehydrating rescan). ForkRefusals counts replicated appends this
	// follower refused as forked; Verifies counts "verify" verbs served.
	RecoverySkips map[string]int64 `json:"recovery_skips,omitempty"`
	MMRLeaves     uint64           `json:"mmr_leaves,omitempty"`
	MMRRoot       string           `json:"mmr_root,omitempty"`
	MMRPruned     bool             `json:"mmr_pruned,omitempty"`
	ForkRefusals  int64            `json:"fork_refusals,omitempty"`
	Verifies      int64            `json:"verifies,omitempty"`
}

// TenantStats is one tenant's slice of the serving counters. Requests
// counts every request the tenant offered (admitted or refused), Refused
// the quota refusals among them, StagedBytes the wire bytes of admitted
// record-staging requests, and InFlight the tenant's requests executing
// right now.
type TenantStats struct {
	Requests    int64 `json:"requests"`
	Refused     int64 `json:"refused"`
	StagedBytes int64 `json:"staged_bytes"`
	InFlight    int64 `json:"in_flight"`
}

// ProtocolVersion is the highest wire-protocol version this package
// speaks. Version 1 is the query protocol (PR 3/4); version 2 adds the
// DPAPI verbs; version 3 keeps the verb set and replaces the transport:
// after a hello that negotiates ≥3, both sides switch from JSON lines to
// the multiplexed binary framing in frame.go. Servers answer "hello"
// with min(client, server), so a v3 client falls back to JSON lines
// against a v2 server and a v2 client never sees a frame; every v1 verb
// remains valid on any connection.
const ProtocolVersion = 3

// AttrMkobj is the registry's allocation record: a daemon backed by a
// durable log stages one per pass_mkobj, so an acknowledged identity
// survives a crash (pnodes are never recycled, §5.2) and the object is
// revivable before its first disclosure. It is layer housekeeping, in
// the same spirit as Lasagna's LPATH records.
const AttrMkobj record.Attr = "MKOBJ"

// WireRecord is the wire form of one provenance record for the append
// verb: the subject ref, the attribute, and the value reusing the result
// Value encoding (kinds "str", "int", "bool" and "ref").
type WireRecord struct {
	P    uint64 `json:"p"`
	V    uint32 `json:"v"`
	Attr string `json:"attr"`
	Val  Value  `json:"val"`
}

// encodeRecord converts a provenance record to its wire form. Byte-valued
// records are not representable on this wire and report false.
func encodeRecord(r record.Record) (WireRecord, bool) {
	wr := WireRecord{P: uint64(r.Subject.PNode), V: uint32(r.Subject.Version), Attr: string(r.Attr)}
	switch r.Value.Kind() {
	case record.KindString:
		s, _ := r.Value.AsString()
		wr.Val = Value{K: "str", S: s}
	case record.KindInt:
		i, _ := r.Value.AsInt()
		wr.Val = Value{K: "int", I: i}
	case record.KindBool:
		b, _ := r.Value.AsBool()
		wr.Val = Value{K: "bool", B: b}
	case record.KindRef:
		dep, _ := r.Value.AsRef()
		wr.Val = Value{K: "ref", P: uint64(dep.PNode), V: uint32(dep.Version)}
	default:
		return wr, false
	}
	return wr, true
}

// decodeRecord converts a wire record back to a provenance record.
func decodeRecord(wr WireRecord) (record.Record, error) {
	subj := pnode.Ref{PNode: pnode.PNode(wr.P), Version: pnode.Version(wr.V)}
	var val record.Value
	switch wr.Val.K {
	case "str":
		val = record.StringVal(wr.Val.S)
	case "int":
		val = record.Int(wr.Val.I)
	case "bool":
		val = record.Bool(wr.Val.B)
	case "ref":
		val = record.Ref(pnode.Ref{PNode: pnode.PNode(wr.Val.P), Version: pnode.Version(wr.Val.V)})
	default:
		return record.Record{}, fmt.Errorf("passd: unknown record value kind %q", wr.Val.K)
	}
	return record.New(subj, record.Attr(wr.Attr), val), nil
}

// encodeValue converts an engine value to its wire form.
func encodeValue(v pql.Value) Value {
	switch v.Kind {
	case pql.ValRef:
		return Value{K: "ref", P: uint64(v.Ref.PNode), V: uint32(v.Ref.Version), N: v.Name}
	case pql.ValString:
		return Value{K: "str", S: v.Str}
	case pql.ValInt:
		return Value{K: "int", I: v.Int}
	case pql.ValBool:
		return Value{K: "bool", B: v.Bool}
	default:
		return Value{K: "null"}
	}
}

// decodeValue converts a wire value back to an engine value.
func decodeValue(v Value) (pql.Value, error) {
	switch v.K {
	case "ref":
		return pql.Value{
			Kind: pql.ValRef,
			Ref:  pnode.Ref{PNode: pnode.PNode(v.P), Version: pnode.Version(v.V)},
			Name: v.N,
		}, nil
	case "str":
		return pql.Value{Kind: pql.ValString, Str: v.S}, nil
	case "int":
		return pql.Value{Kind: pql.ValInt, Int: v.I}, nil
	case "bool":
		return pql.Value{Kind: pql.ValBool, Bool: v.B}, nil
	case "null":
		return pql.Value{Kind: pql.ValNull}, nil
	default:
		return pql.Value{}, fmt.Errorf("passd: unknown value kind %q", v.K)
	}
}

// encodeResult converts a result set to wire rows.
func encodeResult(res *pql.Result) (cols []string, rows [][]Value) {
	cols = res.Columns
	rows = make([][]Value, len(res.Rows))
	for i, row := range res.Rows {
		wr := make([]Value, len(row))
		for j, v := range row {
			wr[j] = encodeValue(v)
		}
		rows[i] = wr
	}
	return cols, rows
}

// decodeResult converts wire rows back to a result set.
func decodeResult(cols []string, rows [][]Value) (*pql.Result, error) {
	res := &pql.Result{Columns: cols}
	for _, wr := range rows {
		row := make([]pql.Value, len(wr))
		for j, v := range wr {
			dv, err := decodeValue(v)
			if err != nil {
				return nil, err
			}
			row[j] = dv
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
