package passd

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"passv2/internal/graph"
	"passv2/internal/pnode"
	"passv2/internal/pql"
	"passv2/internal/record"
	"passv2/internal/waldo"
)

// testWaldo builds a Waldo over an in-memory chain database (no volumes:
// Drain is a no-op, ApplyBatch stands in for ingestion).
func testWaldo(files int) (*waldo.Waldo, string) {
	w := waldo.New()
	var recs []record.Record
	for i := 1; i <= files; i++ {
		ref := pnode.Ref{PNode: pnode.PNode(i), Version: 1}
		recs = append(recs,
			record.New(ref, record.AttrName, record.StringVal(fmt.Sprintf("/t/%d", i))),
			record.New(ref, record.AttrType, record.StringVal(record.TypeFile)))
		if i > 1 {
			recs = append(recs, record.Input(ref, pnode.Ref{PNode: pnode.PNode(i - 1), Version: 1}))
		}
	}
	w.DB.ApplyBatch(recs)
	q := fmt.Sprintf(`select A from Provenance.file as F F.input* as A where F.name = "/t/%d"`, files)
	return w, q
}

func startServer(t *testing.T, w *waldo.Waldo, cfg Config) *Server {
	t.Helper()
	srv, err := Serve(w, cfg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func dialClient(t *testing.T, srv *Server) *Client {
	t.Helper()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestServerQuery is the end-to-end smoke test: remote result must be
// byte-identical to the in-process evaluation.
func TestServerQuery(t *testing.T) {
	w, q := testWaldo(20)
	srv := startServer(t, w, Config{})
	c := dialClient(t, srv)

	want, err := pql.Run(graph.New(w.DB), q)
	if err != nil {
		t.Fatalf("local eval: %v", err)
	}
	got, err := c.Query(q)
	if err != nil {
		t.Fatalf("remote query: %v", err)
	}
	if got.Format() != want.Format() {
		t.Fatalf("remote result differs:\n--- remote\n%s--- local\n%s", got.Format(), want.Format())
	}
	if len(got.Rows) != 20 { // input* closure includes the root itself
		t.Fatalf("rows = %d, want 20", len(got.Rows))
	}
}

func TestServerExplainStatsPingDrain(t *testing.T) {
	w, q := testWaldo(8)
	srv := startServer(t, w, Config{})
	c := dialClient(t, srv)

	plan, err := c.Explain(q)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if !strings.Contains(plan, "name seek") {
		t.Fatalf("plan missing name seek:\n%s", plan)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if _, err := c.Query(q); err != nil {
		t.Fatalf("query: %v", err)
	}
	recs, err := c.Drain()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	wantRecs, _, _ := w.DB.Stats()
	if recs != wantRecs {
		t.Fatalf("drain records = %d, want %d", recs, wantRecs)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Records != wantRecs || st.Queries != 1 || st.Drains != 1 || st.Conns != 1 {
		t.Fatalf("stats = %+v; want records=%d queries=1 drains=1 conns=1", st, wantRecs)
	}
}

func TestServerErrors(t *testing.T) {
	w, _ := testWaldo(4)
	srv := startServer(t, w, Config{})
	c := dialClient(t, srv)

	if _, err := c.Query("select bogus syntax from"); err == nil {
		t.Fatal("bad query did not error")
	}
	// The connection must survive an error and keep serving.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after error: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.QueryErrors != 1 {
		t.Fatalf("query_errors = %d, want 1", st.QueryErrors)
	}
}

// TestServerTimeout runs a three-way cross-product over every object —
// millions of tuple expansions, far beyond a 20ms budget on any machine —
// and checks the executor's deadline polling kills it promptly.
func TestServerTimeout(t *testing.T) {
	w, _ := testWaldo(256)
	srv := startServer(t, w, Config{})
	c := dialClient(t, srv)

	slow := `select A from Provenance.obj as A Provenance.obj as B Provenance.obj as C
	         where A.name = B.name and B.name = C.name`
	start := time.Now()
	_, err := c.QueryTimeout(slow, 20*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("expected timeout error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout enforcement took %v; deadline polling is broken", elapsed)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", st.Timeouts)
	}
}

// TestServerBackpressure fills the worker pool and the wait queue by hand,
// then checks the next query is shed with the overloaded error. The
// client's own retry policy is disabled to observe the raw shed (the
// retry-until-drained path is resilience_test.go's subject).
func TestServerBackpressure(t *testing.T) {
	w, q := testWaldo(4)
	srv := startServer(t, w, Config{Workers: 2, MaxQueue: 1})
	c, err := DialOptions(srv.Addr(), Options{MaxRetries: -1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	// Occupy both worker slots and the entire wait-queue allowance.
	srv.workers <- struct{}{}
	srv.workers <- struct{}{}
	srv.waiting.Add(int64(srv.cfg.MaxQueue))

	if _, err := c.Query(q); err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("expected overloaded error, got %v", err)
	}

	// Release: the same query must now succeed.
	srv.waiting.Add(-int64(srv.cfg.MaxQueue))
	<-srv.workers
	<-srv.workers
	if _, err := c.Query(q); err != nil {
		t.Fatalf("query after release: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Shed != 1 {
		t.Fatalf("shed = %d, want 1", st.Shed)
	}
}

// TestServerConcurrentClients runs many client connections against a live
// ingest load — the -race exercise for the whole serving stack.
func TestServerConcurrentClients(t *testing.T) {
	w, q := testWaldo(64)
	srv := startServer(t, w, Config{Workers: 4})

	stop := make(chan struct{})
	var ingest sync.WaitGroup
	ingest.Add(1)
	go func() {
		defer ingest.Done()
		for n := 0; n < 500; n++ {
			select {
			case <-stop:
				return
			default:
			}
			lo := 10000 + n*16
			var recs []record.Record
			for i := lo; i < lo+16; i++ {
				ref := pnode.Ref{PNode: pnode.PNode(i), Version: 1}
				recs = append(recs,
					record.New(ref, record.AttrName, record.StringVal(fmt.Sprintf("/bg/%d", i))),
					record.New(ref, record.AttrType, record.StringVal(record.TypeFile)))
			}
			w.DB.ApplyBatch(recs)
		}
	}()

	want, err := pql.Run(graph.New(w.DB), q)
	if err != nil {
		t.Fatalf("local eval: %v", err)
	}
	var clients sync.WaitGroup
	for i := 0; i < 8; i++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for j := 0; j < 25; j++ {
				res, err := c.Query(q)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				// The ingest load never touches the queried chain, so the
				// snapshot answer is stable across the whole run.
				if res.Format() != want.Format() {
					t.Errorf("result drifted under concurrent ingest")
					return
				}
			}
		}()
	}
	clients.Wait()
	close(stop)
	ingest.Wait()

	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Closed server refuses new connections.
	if _, err := Dial(srv.Addr()); err == nil {
		t.Fatal("dial succeeded after Close")
	}
}

// TestServerCleanShutdown closes the server while a client holds an open
// connection: the client must observe a closed connection, not a hang.
func TestServerCleanShutdown(t *testing.T) {
	w, q := testWaldo(4)
	srv := startServer(t, w, Config{})
	c := dialClient(t, srv)
	if _, err := c.Query(q); err != nil {
		t.Fatalf("query: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := c.Ping(); err == nil {
		t.Fatal("ping succeeded after server close")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close not idempotent: %v", err)
	}
}
