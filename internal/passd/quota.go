package passd

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Per-tenant quotas: admission control keyed by Request.Tenant, sitting in
// front of both execution lanes so one tenant's offered load cannot crowd
// out another's. Two independent caps exist because the two ways a tenant
// hurts its neighbors differ — holding execution slots (in-flight) and
// filling the durable-ack pipeline with record bytes (staged bytes/sec).
// Refusals happen before anything executes or stages, carry the "quota"
// wire code, and are therefore always safe for the client to retry with
// backoff (which it does automatically, exactly as for "overloaded").

// TenantQuota caps one named tenant. The zero value of either field means
// that axis is unlimited.
type TenantQuota struct {
	// MaxInFlight caps how many of the tenant's requests may be admitted
	// concurrently, across all of its connections; <=0 means unlimited.
	MaxInFlight int
	// StagedBytesPerSec caps the tenant's record-staging wire bytes per
	// second — a token bucket holding one second of burst, charged with
	// each staging request's encoded size at admission. Non-staging verbs
	// (queries, reads, pings) are never byte-charged. A single request
	// larger than the whole bucket can never pass and is refused
	// immediately rather than stalling the tenant. <=0 means unlimited.
	StagedBytesPerSec int64
}

// tenantState is one quota'd tenant's live accounting.
type tenantState struct {
	quota TenantQuota

	mu       sync.Mutex
	inflight int
	tokens   float64   // staged-bytes bucket level
	last     time.Time // last bucket refill
}

// tenantTable maps tenant names to their quota state. The map is built
// once at Serve and never mutated, so lookups need no lock; only the
// per-tenant states do.
type tenantTable struct {
	states map[string]*tenantState
}

func newTenantTable(quotas map[string]TenantQuota) *tenantTable {
	t := &tenantTable{states: make(map[string]*tenantState, len(quotas))}
	now := time.Now()
	for name, q := range quotas {
		t.states[name] = &tenantState{
			quota:  q,
			tokens: float64(q.StagedBytesPerSec), // start with a full bucket
			last:   now,
		}
	}
	return t
}

// state returns the quota state for tenant, or nil when the tenant is
// unlimited (no entry configured).
func (t *tenantTable) state(tenant string) *tenantState {
	return t.states[tenant]
}

// admit charges one request against the tenant's caps, or refuses it with
// an ErrQuotaExceeded-wrapping error. charge is the staged-bytes cost (0
// for non-staging verbs).
func (ts *tenantState) admit(charge int64) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.quota.MaxInFlight > 0 && ts.inflight >= ts.quota.MaxInFlight {
		return fmt.Errorf("quota: tenant at its %d in-flight request cap: %w",
			ts.quota.MaxInFlight, ErrQuotaExceeded)
	}
	if charge > 0 && ts.quota.StagedBytesPerSec > 0 {
		rate := float64(ts.quota.StagedBytesPerSec)
		now := time.Now()
		ts.tokens += now.Sub(ts.last).Seconds() * rate
		ts.last = now
		if ts.tokens > rate {
			ts.tokens = rate
		}
		if float64(charge) > ts.tokens {
			// Refuse without consuming: a refused request must not drain
			// the bucket, or a burst of refusals would starve the tenant's
			// own compliant traffic behind them.
			return fmt.Errorf("quota: tenant over its %d staged bytes/sec cap: %w",
				ts.quota.StagedBytesPerSec, ErrQuotaExceeded)
		}
		ts.tokens -= float64(charge)
	}
	ts.inflight++
	return nil
}

func (ts *tenantState) release() {
	ts.mu.Lock()
	ts.inflight--
	ts.mu.Unlock()
}

// stagingVerb reports whether op stages record bytes into the durable-ack
// pipeline — the verbs the staged-bytes/sec quota charges by wire size.
func stagingVerb(op string) bool {
	switch strings.ToLower(op) {
	case "append", "write", "batch", "mkobj", "freeze":
		return true
	}
	return false
}

// admitTenant is the serving path's quota gate. The empty tenant — every
// v1/v2 client that never heard of tenancy — is unattributed: never
// counted per-tenant, never limited. A named tenant is always counted
// (passd_tenant_requests_total includes refused attempts — that is what
// makes "accepted + refused == offered" checkable from the outside), and
// limited only when Config.TenantQuotas names it. The returned release
// must be called when the request finishes; it is non-nil exactly when
// err is nil.
func (s *Server) admitTenant(tenant, verb string, wireBytes int) (func(), error) {
	if tenant == "" {
		return func() {}, nil
	}
	s.met.tenantRequests.With(tenant).Inc()
	var charge int64
	if stagingVerb(verb) {
		charge = int64(wireBytes)
	}
	ts := s.tenants.state(tenant)
	if ts != nil {
		if err := ts.admit(charge); err != nil {
			s.met.quotaRefused.With(tenant).Inc()
			return nil, err
		}
	}
	if charge > 0 {
		s.met.tenantStaged.With(tenant).Add(charge)
	}
	s.met.tenantInflight.With(tenant).Add(1)
	return func() {
		s.met.tenantInflight.With(tenant).Add(-1)
		if ts != nil {
			ts.release()
		}
	}, nil
}
