package passd

// Replication glue: how a replica.Primary drives follower daemons over
// this package's wire protocol, and how a follower announces itself. The
// replication engine (internal/replica) knows nothing about passd — it
// sees Peers; these adapters are the only place the two meet.

import (
	"encoding/hex"
	"time"

	"passv2/internal/replica"
)

// replPeer adapts a Client into a replica.Peer speaking the
// replstate/replappend verbs. It also implements replica.ProofPeer, so a
// primary with a proof-aware source streams root claims for free.
type replPeer struct{ c *Client }

var _ replica.ProofPeer = replPeer{}

func (p replPeer) State() (int64, error) {
	resp, err := p.c.roundTrip(&Request{Op: "replstate"})
	if err != nil {
		return 0, err
	}
	return resp.ReplSize, nil
}

func (p replPeer) Append(off int64, b []byte) (int64, error) {
	resp, err := p.c.roundTrip(&Request{Op: "replappend", Off: off, Data: b})
	if err != nil {
		return 0, err
	}
	return resp.ReplSize, nil
}

// AppendProof is the proof-carrying append (replica.ProofPeer): the
// chunk plus the primary's MMR leaf count and root over the log prefix
// the chunk completes. A follower with a live feeder recomputes the root
// and refuses with the non-retryable "forked" code on mismatch — which
// is exactly what keeps a forked primary from ever reaching its quorum.
func (p replPeer) AppendProof(off int64, b []byte, n uint64, root [32]byte) (int64, error) {
	resp, err := p.c.roundTrip(&Request{
		Op:      "replappend",
		Off:     off,
		Data:    b,
		MMRSize: n,
		MMRRoot: hex.EncodeToString(root[:]),
	})
	if err != nil {
		return 0, err
	}
	return resp.ReplSize, nil
}

func (p replPeer) Close() error { return p.c.Close() }

// PeerDialer returns a replica.Dialer that connects to follower daemons
// as resilient passd clients. Retries stay on — replicated appends are
// idempotent, so at-least-once delivery is safe — but the generous
// request timeout matters more: a replappend covering a large catch-up
// chunk also drains it into the follower's database before replying.
func PeerDialer(opts Options) replica.Dialer {
	return func(addr string) (replica.Peer, error) {
		c, err := DialOptions(addr, opts)
		if err != nil {
			return nil, err
		}
		return replPeer{c}, nil
	}
}

// Announce tells the primary at primaryAddr that a follower serves at
// selfAddr, over a short-lived connection. It is idempotent on the
// primary, so followers call it on a timer: the first call registers,
// later ones are cheap no-ops that double as re-registration after a
// primary restart.
func Announce(primaryAddr, selfAddr string, timeout time.Duration) error {
	c, err := DialOptions(primaryAddr, Options{
		DialTimeout:    timeout,
		RequestTimeout: timeout,
		MaxRetries:     -1, // the announce loop is the retry policy
	})
	if err != nil {
		return err
	}
	defer c.Close()
	_, err = c.roundTrip(&Request{Op: "repljoin", Addr: selfAddr})
	return err
}
