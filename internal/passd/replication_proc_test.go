package passd

import (
	"bufio"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// reservePort picks a loopback port the kernel considers free right now,
// so a daemon can be restarted on the same address its peers know.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startReplDaemon launches a real passd process with the given flags and
// waits for its "serving ... on ADDR" banner.
func startReplDaemon(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	ready := make(chan struct{}, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("daemon[%s]: %s", args[1], line)
			if strings.HasPrefix(line, "passd: serving") {
				select {
				case ready <- struct{}{}:
				default:
				}
			}
		}
	}()
	select {
	case <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon %v never reported serving", args)
	}
	return cmd
}

// TestKillOneReplicaNoAckedLoss is the whole-group integration test the
// issue's acceptance criterion names: a 3-node replicated group (quorum 2)
// takes acknowledged writes while first a follower and then the primary are
// SIGKILLed. Zero acknowledged records may be lost, and cluster queries
// must keep being answered throughout — during the kills, not just after.
func TestKillOneReplicaNoAckedLoss(t *testing.T) {
	bin := buildPassd(t)
	pAddr, f1Addr, f2Addr := reservePort(t), reservePort(t), reservePort(t)
	logP := filepath.Join(t.TempDir(), "p")
	logF1 := filepath.Join(t.TempDir(), "f1")
	logF2 := filepath.Join(t.TempDir(), "f2")

	primaryArgs := []string{
		"-addr", pAddr, "-logdir", logP,
		"-replicate", "2", "-commit-timeout", "5s",
		"-drain-interval", "50ms",
	}
	followerArgs := func(addr, dir string) []string {
		return []string{
			"-addr", addr, "-logdir", dir,
			"-join", pAddr, "-join-interval", "100ms",
			"-drain-interval", "50ms",
		}
	}
	primary := startReplDaemon(t, bin, primaryArgs...)
	f1 := startReplDaemon(t, bin, followerArgs(f1Addr, logF1)...)
	_ = startReplDaemon(t, bin, followerArgs(f2Addr, logF2)...)

	// The writer: default options, so transient unavailability while the
	// group assembles is retried rather than failed.
	c, err := DialOptions(pAddr, Options{RetryBase: 50 * time.Millisecond, MaxRetries: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	const batches, perBatch = 10, 50 // 2 records per item
	wantRecords := int64(2 * batches * perBatch)
	appendBatch := func(b int) {
		t.Helper()
		if _, err := c.Append(replRecs(b*perBatch, perBatch)); err != nil {
			t.Fatalf("append batch %d: %v", b, err)
		}
	}
	lastOf := func(b int) string { return replQuery((b+1)*perBatch - 1) }

	// Background availability probe: a cluster reader hammers the group for
	// the whole test. Every query must be answered by someone — that is the
	// "queries keep serving during and after" half of the criterion.
	cl := NewCluster([]string{pAddr, f1Addr, f2Addr}, ClusterOptions{Options: Options{
		DialTimeout:    500 * time.Millisecond,
		RequestTimeout: 3 * time.Second,
		MaxRetries:     1,
		RetryBase:      10 * time.Millisecond,
	}})
	t.Cleanup(func() { cl.Close() })
	var (
		probes, probeFails atomic.Int64
		stopProbe          = make(chan struct{})
		probeDone          sync.WaitGroup
	)
	probeDone.Add(1)
	go func() {
		defer probeDone.Done()
		for {
			select {
			case <-stopProbe:
				return
			default:
			}
			probes.Add(1)
			if _, err := cl.Query(replQuery(0)); err != nil {
				probeFails.Add(1)
				t.Errorf("availability probe failed: %v", err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	stopProbes := func() {
		close(stopProbe)
		probeDone.Wait()
	}

	// Phase 1: writes with the full group up.
	for b := 0; b < batches/2; b++ {
		appendBatch(b)
	}

	// SIGKILL follower 1 mid-stream: quorum 2 survives on primary+f2, so
	// acknowledged writes must keep flowing.
	if err := f1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	f1.Wait()
	for b := batches / 2; b < batches; b++ {
		appendBatch(b)
	}
	f2c, err := Dial(f2Addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f2c.Close() })
	waitRows(t, f2c, lastOf(batches-1), 1)

	// Restart the killed follower on its old address over its old log dir:
	// it re-announces, the primary streams the missing range, and the
	// newcomer serves writes it was dead for.
	f1 = startReplDaemon(t, bin, followerArgs(f1Addr, logF1)...)
	f1c, err := Dial(f1Addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f1c.Close() })
	waitRows(t, f1c, lastOf(batches-1), 1)

	// SIGKILL the primary. Both followers hold the full acked prefix, so
	// reads keep being served from the survivors.
	if err := primary.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	primary.Wait()
	for i := 0; i < 10; i++ {
		res, err := cl.Query(lastOf(batches - 1))
		if err != nil {
			t.Fatalf("cluster query %d with primary dead: %v", i, err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("cluster query %d with primary dead: %d rows, want 1", i, len(res.Rows))
		}
	}

	// Restart the primary over its surviving log: every acknowledged record
	// — including the ones written while a follower was dead — must be
	// there. This is the zero-acked-loss assertion.
	startReplDaemon(t, bin, primaryArgs...)
	c2, err := Dial(pAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	if _, err := c2.Drain(); err != nil {
		t.Fatalf("drain on restarted primary: %v", err)
	}
	st, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != wantRecords {
		t.Fatalf("restarted primary serves %d records, want %d (acked records lost)", st.Records, wantRecords)
	}
	waitRows(t, c2, lastOf(batches-1), 1)

	stopProbes()
	if n := probes.Load(); n < 3 {
		t.Fatalf("availability probe only ran %d times; the test lost its witness", n)
	}
	if n := probeFails.Load(); n != 0 {
		t.Fatalf("%d/%d availability probes failed during the kills", n, probes.Load())
	}
	t.Logf("availability probes: %d, failures: %d", probes.Load(), probeFails.Load())
}

// TestReplicatedDaemonFlagValidation: the mutually-exclusive and
// missing-logdir flag combinations must be refused at startup, not fail
// mysteriously later.
func TestReplicatedDaemonFlagValidation(t *testing.T) {
	bin := buildPassd(t)
	for _, args := range [][]string{
		{"-demo", "-replicate", "2", "-join", "127.0.0.1:1"},
		{"-demo", "-replicate", "2"},
		{"-demo", "-join", "127.0.0.1:1"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err == nil {
			t.Fatalf("passd %v started despite invalid flags:\n%s", args, out)
		}
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
			t.Fatalf("passd %v exited %v, want usage exit 2:\n%s", args, err, out)
		}
	}
}
