package passd

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"passv2/internal/netfault"
	"passv2/internal/pnode"
	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/replica"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// replNode is one in-process daemon of a replicated group, with a netfault
// control block between it and its clients.
type replNode struct {
	srv *Server
	flt *netfault.Faults
}

// startReplPrimary builds a replication primary over a real on-disk log:
// the same wiring cmd/passd does for -replicate, compressed for tests.
func startReplPrimary(t *testing.T, quorum int, commitTimeout time.Duration) (*replNode, *replica.Primary) {
	t.Helper()
	dfs, err := vfs.NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	log, err := provlog.NewWriter(dfs, "/", 0)
	if err != nil {
		t.Fatal(err)
	}
	w := waldo.New()
	w.Attach(waldo.NewLogVolume("logdir", dfs, log))
	appendFn := func(recs []record.Record) error {
		for _, r := range recs {
			if err := log.AppendRecord(0, r); err != nil {
				return err
			}
		}
		return nil
	}
	src, err := replica.OpenFileSource(dfs, "/"+provlog.CurrentName)
	if err != nil {
		t.Fatal(err)
	}
	prim := replica.NewPrimary(src, replica.Config{
		Quorum:        quorum,
		CommitTimeout: commitTimeout,
		Dial: PeerDialer(Options{
			DialTimeout:    time.Second,
			RequestTimeout: 2 * time.Second,
			RetryBase:      5 * time.Millisecond,
		}),
		RetryBase: 10 * time.Millisecond,
		RetryMax:  200 * time.Millisecond,
	})
	n := startReplServer(t, w, Config{Append: appendFn, Sync: log.Sync, Replicate: prim})
	t.Cleanup(func() { prim.Close() })
	return n, prim
}

// startReplFollower builds a read-only follower over its own on-disk log,
// exactly as cmd/passd does for -join.
func startReplFollower(t *testing.T) *replNode {
	t.Helper()
	dfs, err := vfs.NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	log, err := provlog.NewWriter(dfs, "/", 0)
	if err != nil {
		t.Fatal(err)
	}
	w := waldo.New()
	// The follower's writer is never appended to — the replication stream is
	// the only writer — but the volume attachment is what drains replicated
	// bytes into the queryable database.
	w.Attach(waldo.NewLogVolume("logdir", dfs, log))
	flog, err := replica.OpenFollowerLog(dfs, "/"+provlog.CurrentName)
	if err != nil {
		t.Fatal(err)
	}
	return startReplServer(t, w, Config{Follower: flog})
}

func startReplServer(t *testing.T, w *waldo.Waldo, cfg Config) *replNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flt := netfault.New()
	cfg.Listener = flt.Listener(ln)
	srv, err := Serve(w, cfg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return &replNode{srv: srv, flt: flt}
}

// startReplGroup wires a primary and n followers together through the real
// announce path (the repljoin verb), like daemons joining over the network.
func startReplGroup(t *testing.T, quorum, followers int, commitTimeout time.Duration) (*replNode, *replica.Primary, []*replNode) {
	t.Helper()
	prim, p := startReplPrimary(t, quorum, commitTimeout)
	fs := make([]*replNode, followers)
	for i := range fs {
		fs[i] = startReplFollower(t)
		if err := Announce(prim.srv.Addr(), fs[i].srv.Addr(), 2*time.Second); err != nil {
			t.Fatalf("announce follower %d: %v", i, err)
		}
	}
	return prim, p, fs
}

// replRecs builds 2 records per item, mirroring the restart tests' shape.
func replRecs(lo, n int) []record.Record {
	out := make([]record.Record, 0, 2*n)
	for i := lo; i < lo+n; i++ {
		ref := pnode.Ref{PNode: pnode.PNode(i + 1), Version: 1}
		out = append(out,
			record.New(ref, record.AttrName, record.StringVal(fmt.Sprintf("/repl/%d", i))),
			record.New(ref, record.AttrType, record.StringVal(record.TypeFile)))
	}
	return out
}

func replQuery(i int) string {
	return fmt.Sprintf(`select F from Provenance.file as F where F.name = "/repl/%d"`, i)
}

// waitRows polls until a query against c returns want rows.
func waitRows(t *testing.T, c *Client, q string, want int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		res, err := c.Query(q)
		if err == nil && len(res.Rows) == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("query %q never reached %d rows (last: %v / %v)", q, want, res, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReplicatedQuorumAck: with quorum 2, an acknowledged append is
// queryable on the followers — replicated bytes are drained into each
// follower's database before the follower acks, so the quorum promise is
// about queryable records, not just bytes on disk.
func TestReplicatedQuorumAck(t *testing.T) {
	prim, p, fs := startReplGroup(t, 2, 2, 2*time.Second)
	c := dialClient(t, prim.srv)

	if _, err := c.Append(replRecs(0, 50)); err != nil {
		t.Fatalf("append: %v", err)
	}
	// The ack guarantees at least one follower; both catch up promptly.
	for i, f := range fs {
		fc := dialClient(t, f.srv)
		waitRows(t, fc, replQuery(49), 1)
		st, err := fc.Stats()
		if err != nil {
			t.Fatalf("follower %d stats: %v", i, err)
		}
		if st.Role != "follower" || st.ReplBytes == 0 {
			t.Fatalf("follower %d stats = role %q, repl_bytes %d", i, st.Role, st.ReplBytes)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Role != "primary" || st.ReplQuorum != 2 || st.ReplFollowers != 2 {
		t.Fatalf("primary stats = %+v; want role=primary quorum=2 followers=2", st)
	}
	if got := p.InSync(0); got != 2 {
		t.Fatalf("InSync(0) = %d followers, want 2", got)
	}
}

// TestFollowerRefusesWrites: a follower's log is a verbatim copy of the
// primary's, so every client write path — append, mkobj, disclose — is
// refused with ErrReadOnly while reads keep working.
func TestFollowerRefusesWrites(t *testing.T) {
	f := startReplFollower(t)
	c := dialClient(t, f.srv)

	if _, err := c.Append(replRecs(0, 1)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("append on follower: %v, want ErrReadOnly", err)
	}
	if _, err := c.PassMkobj(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("mkobj on follower: %v, want ErrReadOnly", err)
	}
	// Reads are the whole point of a follower.
	if _, err := c.Query(replQuery(0)); err != nil {
		t.Fatalf("query on follower: %v", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping on follower: %v", err)
	}
}

// TestReplicatedGroupSurvivesFollowerKill: killing one of two followers
// leaves quorum 2 intact (primary + survivor), so writes keep being
// acknowledged; killing the second leaves the primary refusing acks with
// the retryable ErrUnavailable instead of lying about durability.
func TestReplicatedGroupSurvivesFollowerKill(t *testing.T) {
	prim, _, fs := startReplGroup(t, 2, 2, 500*time.Millisecond)
	c := dialClient(t, prim.srv)

	if _, err := c.Append(replRecs(0, 20)); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	f2c := dialClient(t, fs[1].srv)
	waitRows(t, f2c, replQuery(19), 1)

	// Kill follower 0: quorum still holds via follower 1.
	fs[0].srv.Close()
	if _, err := c.Append(replRecs(20, 20)); err != nil {
		t.Fatalf("append after one follower died: %v", err)
	}
	waitRows(t, f2c, replQuery(39), 1)

	// Kill follower 1 too: no follower can ack, so the primary must refuse
	// — the records are durable on its own disk, but the ack's promise is
	// that they survive the primary's machine.
	fs[1].srv.Close()
	nc, err := DialOptions(prim.srv.Addr(), Options{MaxRetries: -1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { nc.Close() })
	if _, err := nc.Append(replRecs(40, 1)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("append with no followers: %v, want ErrUnavailable", err)
	}
	st, err := nc.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.QuorumFailures < 1 {
		t.Fatalf("quorum_failures = %d, want >= 1", st.QuorumFailures)
	}
	// A retry-enabled client must NOT auto-resend a refused write: the
	// primary staged and durably logged the records before refusing the
	// ack, so a blind resend would stage them a second time. The error
	// surfaces immediately (no ErrExhausted — no retries happened) and the
	// server's staging counter moves by exactly one request's records.
	rc, err := DialOptions(prim.srv.Addr(), Options{MaxRetries: 3, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { rc.Close() })
	before, err := rc.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if _, err := rc.Append(replRecs(41, 1)); !errors.Is(err, ErrUnavailable) || errors.Is(err, ErrExhausted) {
		t.Fatalf("refused write = %v, want ErrUnavailable surfaced without retries", err)
	}
	after, err := rc.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if got := after.Appends - before.Appends; got != 2 { // replRecs(41, 1) is 2 records
		t.Fatalf("refused write staged %d records, want exactly 2 (no duplicate staging)", got)
	}
}

// TestClusterFailoverKeepsServing kills replicas one by one under a live
// cluster reader: queries keep being answered as long as any node lives —
// including after the primary itself dies, which is what follower reads
// are for.
func TestClusterFailoverKeepsServing(t *testing.T) {
	prim, _, fs := startReplGroup(t, 2, 2, 2*time.Second)
	c := dialClient(t, prim.srv)
	if _, err := c.Append(replRecs(0, 30)); err != nil {
		t.Fatalf("append: %v", err)
	}
	// Followers drain on replappend; the primary drains on demand.
	if _, err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, f := range fs {
		waitRows(t, dialClient(t, f.srv), replQuery(29), 1)
	}

	cl := NewCluster(
		[]string{prim.srv.Addr(), fs[0].srv.Addr(), fs[1].srv.Addr()},
		ClusterOptions{Options: Options{
			DialTimeout:    300 * time.Millisecond,
			RequestTimeout: 2 * time.Second,
			MaxRetries:     1,
			RetryBase:      5 * time.Millisecond,
		}},
	)
	t.Cleanup(func() { cl.Close() })

	check := func(stage string, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			res, err := cl.Query(replQuery(29))
			if err != nil {
				t.Fatalf("%s: cluster query %d failed: %v", stage, i, err)
			}
			if len(res.Rows) != 1 {
				t.Fatalf("%s: cluster query %d returned %d rows, want 1", stage, i, len(res.Rows))
			}
		}
	}
	check("all alive", 6)
	fs[0].srv.Close()
	check("one follower dead", 6)
	prim.srv.Close()
	check("primary dead", 6)
}

// TestHedgedReadsBeatSlowReplica plants a 40ms response delay on one
// replica: hedged queries fire a second request after the hedge delay and
// take the fast replica's answer, so the slow node stops defining latency.
func TestHedgedReadsBeatSlowReplica(t *testing.T) {
	prim, _, fs := startReplGroup(t, 2, 2, 2*time.Second)
	c := dialClient(t, prim.srv)
	if _, err := c.Append(replRecs(0, 10)); err != nil {
		t.Fatalf("append: %v", err)
	}
	for _, f := range fs {
		waitRows(t, dialClient(t, f.srv), replQuery(9), 1)
	}

	slow, fast := fs[0], fs[1]
	slow.flt.SetWriteDelay(40 * time.Millisecond)
	cl := NewCluster(
		[]string{slow.srv.Addr(), fast.srv.Addr()},
		ClusterOptions{
			Options:    Options{RequestTimeout: 2 * time.Second, RetryBase: 5 * time.Millisecond},
			HedgeDelay: 5 * time.Millisecond,
		},
	)
	t.Cleanup(func() { cl.Close() })

	// Even queries start on the slow replica (round-robin from 0), so the
	// hedge must fire and the fast replica must win at least once.
	for i := 0; i < 8; i++ {
		res, err := cl.Query(replQuery(9))
		if err != nil {
			t.Fatalf("hedged query %d: %v", i, err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("hedged query %d returned %d rows, want 1", i, len(res.Rows))
		}
	}
	fired, won := cl.Hedges()
	if fired < 1 || won < 1 {
		t.Fatalf("hedges fired=%d won=%d; want both >= 1 with a slow first replica", fired, won)
	}
}

// TestFollowerLateJoinCatchesUp starts a follower only after the primary
// has acknowledged (asynchronously, quorum 1) a pile of records: joining
// streams the whole existing log, and the newcomer ends up serving history
// it never saw written.
func TestFollowerLateJoinCatchesUp(t *testing.T) {
	prim, p, _ := startReplGroup(t, 1, 0, time.Second)
	c := dialClient(t, prim.srv)
	if _, err := c.Append(replRecs(0, 100)); err != nil {
		t.Fatalf("append: %v", err)
	}

	late := startReplFollower(t)
	if err := Announce(prim.srv.Addr(), late.srv.Addr(), 2*time.Second); err != nil {
		t.Fatalf("announce: %v", err)
	}
	lc := dialClient(t, late.srv)
	waitRows(t, lc, replQuery(0), 1)
	waitRows(t, lc, replQuery(99), 1)

	// Announce again: Join is idempotent, the group does not double-count.
	if err := Announce(prim.srv.Addr(), late.srv.Addr(), 2*time.Second); err != nil {
		t.Fatalf("re-announce: %v", err)
	}
	if n := len(p.Followers()); n != 1 {
		t.Fatalf("re-announce grew the follower set to %d, want 1", n)
	}
}
