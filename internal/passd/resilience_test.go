package passd

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"passv2/internal/dpapi"
	"passv2/internal/netfault"
	"passv2/internal/record"
	"passv2/internal/waldo"
)

// startFaultyServer serves w behind a netfault listener, so tests can
// inject network pathologies between the daemon and its clients while
// traffic is live.
func startFaultyServer(t *testing.T, w *waldo.Waldo, cfg Config) (*Server, *netfault.Faults) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	flt := netfault.New()
	cfg.Listener = flt.Listener(ln)
	srv, err := Serve(w, cfg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, flt
}

// TestClientSocketDeadline is the deadline satellite: a server whose
// responses vanish (write blackhole — the classic half-open failure) must
// surface as a bounded transport error at the client, never a hung caller.
// Before this PR roundTrip set no socket deadlines, so this exact fault
// blocked the client forever.
func TestClientSocketDeadline(t *testing.T) {
	w, _ := testWaldo(4)
	srv, flt := startFaultyServer(t, w, Config{})
	c, err := DialOptions(srv.Addr(), Options{
		MaxRetries:     -1, // observe the raw deadline, no retry masking
		RequestTimeout: 250 * time.Millisecond,
		DeadlineGrace:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Ping(); err != nil {
		t.Fatalf("ping before fault: %v", err)
	}

	flt.BlackholeWrites(true)
	start := time.Now()
	err = c.Ping()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("ping succeeded against a blackholed server")
	}
	var te *transportError
	if !errors.As(err, &te) {
		t.Fatalf("blackhole surfaced as %v, want a transport error", err)
	}
	// The deadline is timeout+grace = 350ms; allow generous scheduling slop
	// but fail a client that sat anywhere near forever.
	if elapsed > 3*time.Second {
		t.Fatalf("deadline took %v to fire; socket deadlines are broken", elapsed)
	}

	// Healing the network is enough: the client redials transparently.
	flt.Heal()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after heal: %v", err)
	}
}

// TestClientQueryDeadlineTracksTimeout checks the per-request deadline
// derivation: an explicit query timeout, not the client-wide default,
// bounds the socket exchange.
func TestClientQueryDeadlineTracksTimeout(t *testing.T) {
	w, q := testWaldo(4)
	srv, flt := startFaultyServer(t, w, Config{})
	c, err := DialOptions(srv.Addr(), Options{
		MaxRetries:     -1,
		RequestTimeout: time.Hour, // would hang the test if it governed
		DeadlineGrace:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	flt.BlackholeWrites(true)
	start := time.Now()
	if _, err := c.QueryTimeout(q, 200*time.Millisecond); err == nil {
		t.Fatal("query succeeded against a blackholed server")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("per-query deadline took %v; request timeout did not drive the socket deadline", elapsed)
	}
}

// TestClientReconnectRevive kills every live connection under an open
// remote object: the next idempotent call must transparently redial,
// re-negotiate the protocol and revive the object under its stable
// (pnode, version) identity — the caller never notices the reset.
func TestClientReconnectRevive(t *testing.T) {
	w, _ := testWaldo(4)
	srv, flt := startFaultyServer(t, w, Config{})
	c, err := DialOptions(srv.Addr(), Options{RetryBase: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	obj, err := c.PassMkobj()
	if err != nil {
		t.Fatalf("mkobj: %v", err)
	}
	ref := obj.Ref()
	if err := dpapi.Disclose(obj,
		record.New(ref, record.AttrType, record.StringVal(record.TypeProc)),
		record.New(ref, record.AttrName, record.StringVal("resilient-proc")),
	); err != nil {
		t.Fatalf("disclose: %v", err)
	}

	flt.KillConns()

	// A read on the object is idempotent: the retry path reconnects and the
	// revival registry restores the wire handle before the read is re-sent.
	ro := obj.(*RemoteObject)
	if _, gotRef, err := ro.PassRead(nil, 0); err != nil {
		t.Fatalf("read after connection reset: %v", err)
	} else if gotRef.PNode != ref.PNode {
		t.Fatalf("revived object reads as %v, want pnode %v", gotRef, ref.PNode)
	}
	// The connection is healthy again, so writes continue on the same
	// object — the revived handle is live, not a stale number.
	if err := dpapi.Disclose(obj, record.New(ref, record.AttrArgv, record.StringVal("argv"))); err != nil {
		t.Fatalf("disclose after revive: %v", err)
	}
	res, err := c.Query(`select P from Provenance.proc as P where P.name = "resilient-proc"`)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("query after reconnect returned %d rows, want 1", len(res.Rows))
	}
}

// TestClientRetriesTornResponse arms a mid-frame tear on the server's next
// response: the client sees a truncated line and then silence, and must
// classify it as a transport failure, drop the poisoned connection and
// transparently retry the (idempotent) query on a fresh one.
func TestClientRetriesTornResponse(t *testing.T) {
	w, q := testWaldo(8)
	srv, flt := startFaultyServer(t, w, Config{})
	c, err := DialOptions(srv.Addr(), Options{
		RequestTimeout: 250 * time.Millisecond,
		DeadlineGrace:  100 * time.Millisecond,
		RetryBase:      5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Ping(); err != nil { // complete hello before arming the tear
		t.Fatalf("ping: %v", err)
	}

	flt.TearAfter(10)
	res, err := c.Query(q)
	if err != nil {
		t.Fatalf("query through a torn response did not recover: %v", err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("recovered query returned %d rows, want 8", len(res.Rows))
	}
}

// TestClientPartitionRecovery partitions the server away mid-session: calls
// fail with bounded errors while the partition holds, and plain healing —
// no caller intervention — restores service.
func TestClientPartitionRecovery(t *testing.T) {
	w, q := testWaldo(4)
	srv, flt := startFaultyServer(t, w, Config{})
	c, err := DialOptions(srv.Addr(), Options{
		MaxRetries:     -1,
		DialTimeout:    250 * time.Millisecond,
		RequestTimeout: 250 * time.Millisecond,
		DeadlineGrace:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	if _, err := c.Query(q); err != nil {
		t.Fatalf("query before partition: %v", err)
	}

	flt.Partition(true)
	start := time.Now()
	if _, err := c.Query(q); err == nil {
		t.Fatal("query succeeded across a partition")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("partitioned query took %v to fail", elapsed)
	}

	flt.Partition(false)
	if _, err := c.Query(q); err != nil {
		t.Fatalf("query after heal: %v", err)
	}
}

// TestDialFailsFast is the dial-timeout satellite's observable contract: a
// dead address surfaces as a prompt Dial error (the old code used blocking
// net.Dial with no bound at all).
func TestDialFailsFast(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	start := time.Now()
	if _, err := DialOptions(addr, Options{DialTimeout: 500 * time.Millisecond}); err == nil {
		t.Fatal("dial to a dead address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dead dial took %v", elapsed)
	}
}

// overload fills srv's worker pool and wait queue by hand and returns a
// release func. While held, every query is shed with ErrOverloaded.
func overload(srv *Server) (release func()) {
	for i := 0; i < srv.cfg.Workers; i++ {
		srv.workers <- struct{}{}
	}
	srv.waiting.Add(int64(srv.cfg.MaxQueue))
	var done bool
	return func() {
		if done {
			return
		}
		done = true
		srv.waiting.Add(-int64(srv.cfg.MaxQueue))
		for i := 0; i < srv.cfg.Workers; i++ {
			<-srv.workers
		}
	}
}

// TestOverloadRetryDrains is the load-shedding end-to-end satellite: a
// shed query is retried with backoff and succeeds once the worker pool
// drains — the caller sees one slow success, not an error.
func TestOverloadRetryDrains(t *testing.T) {
	w, q := testWaldo(4)
	srv := startServer(t, w, Config{Workers: 2, MaxQueue: 1})
	c, err := DialOptions(srv.Addr(), Options{
		MaxRetries: 8,
		RetryBase:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	release := overload(srv)
	defer release()
	go func() {
		time.Sleep(60 * time.Millisecond) // a couple of shed attempts first
		release()
	}()
	if _, err := c.Query(q); err != nil {
		t.Fatalf("query did not survive transient overload: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Shed < 1 {
		t.Fatalf("shed = %d; the overload window was never hit", st.Shed)
	}
}

// TestOverloadRetriesExhausted is the other half of the contract: when the
// overload never clears, retries end in a distinct terminal error that
// still identifies the transient cause.
func TestOverloadRetriesExhausted(t *testing.T) {
	w, q := testWaldo(4)
	srv := startServer(t, w, Config{Workers: 2, MaxQueue: 1})
	c, err := DialOptions(srv.Addr(), Options{
		MaxRetries: 2,
		RetryBase:  time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	release := overload(srv)
	defer release()
	_, err = c.Query(q)
	if err == nil {
		t.Fatal("query succeeded against a permanently overloaded server")
	}
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("terminal error %v is not ErrExhausted", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("terminal error %v lost its ErrOverloaded cause", err)
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("terminal error %v does not report its attempt count", err)
	}
}

// TestNonIdempotentWriteNotRetriedAfterSend: a write whose connection dies
// after the request went out is ambiguous (it may have executed), so the
// client must NOT blindly re-send it — re-executing would disclose the
// records twice on a guess. The error surfaces instead.
func TestNonIdempotentWriteNotRetriedAfterSend(t *testing.T) {
	w, _ := testWaldo(4)
	srv, flt := startFaultyServer(t, w, Config{})
	c, err := DialOptions(srv.Addr(), Options{
		RequestTimeout: 250 * time.Millisecond,
		DeadlineGrace:  100 * time.Millisecond,
		RetryBase:      5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	obj, err := c.PassMkobj()
	if err != nil {
		t.Fatalf("mkobj: %v", err)
	}
	ref := obj.Ref()

	// Blackhole responses: the write goes out, the ack never comes back.
	flt.BlackholeWrites(true)
	err = dpapi.Disclose(obj, record.New(ref, record.AttrName, record.StringVal("ambiguous")))
	if err == nil {
		t.Fatal("ambiguous write reported success")
	}
	var te *transportError
	if !errors.As(err, &te) {
		t.Fatalf("ambiguous write failed with %v, want a transport error", err)
	}
	if errors.Is(err, ErrExhausted) {
		t.Fatalf("ambiguous write was retried to exhaustion (%v); writes must not be re-sent", err)
	}
	flt.Heal()

	// The record was in fact applied exactly once (the server processed the
	// request; only the ack vanished) — re-sending would have doubled it.
	res, err := c.Query(`select P from Provenance.obj as P where P.name = "ambiguous"`)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("ambiguous write left %d records, want exactly 1", len(res.Rows))
	}
}
