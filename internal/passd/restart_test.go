package passd

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"passv2/internal/dpapi"
	"passv2/internal/pnode"
	"passv2/internal/record"
)

// buildPassd compiles the real daemon binary, or skips the test when the
// toolchain is unavailable or -short is set.
func buildPassd(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and drives a real daemon; skipped in -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}
	bin := filepath.Join(t.TempDir(), "passd")
	if out, err := exec.Command(goBin, "build", "-o", bin, "passv2/cmd/passd").CombinedOutput(); err != nil {
		t.Fatalf("building passd: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the daemon over logDir/ckptDir and returns the
// process and a connected client.
func startDaemon(t *testing.T, bin, logDir, ckptDir string) (*exec.Cmd, *Client) {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-logdir", logDir,
		"-checkpoint-dir", ckptDir,
		"-drain-interval", "50ms",
		"-checkpoint-interval", "1h", // checkpoints only via the verb
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	// The daemon prints "passd: serving N records on ADDR" once bound;
	// earlier lines narrate recovery.
	addrCh := make(chan string, 1)
	go func() {
		// Ends when the daemon dies and its stdout closes.
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("daemon: %s", line)
			if i := strings.LastIndex(line, " on "); i >= 0 && strings.HasPrefix(line, "passd: serving") {
				select {
				case addrCh <- line[i+4:]:
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never reported its address")
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return cmd, c
}

// TestKillRestartRecovery is the whole-daemon integration test: a real
// passd process tails a log directory on disk, acknowledges appends,
// checkpoints, is SIGKILLed mid-stream, and is restarted from the
// checkpoint directory. The restarted daemon must serve every
// acknowledged record, report the recovered generation, and — the
// proportional-work assertion — have decoded only the log entries past
// the checkpointed offsets.
func TestKillRestartRecovery(t *testing.T) {
	bin := buildPassd(t)
	logDir := filepath.Join(t.TempDir(), "log")
	ckptDir := filepath.Join(t.TempDir(), "ckpt")
	start := func() (*exec.Cmd, *Client) { return startDaemon(t, bin, logDir, ckptDir) }

	recs := func(lo, n int) []record.Record {
		out := make([]record.Record, 0, 2*n)
		for i := lo; i < lo+n; i++ {
			ref := pnode.Ref{PNode: pnode.PNode(i + 1), Version: 1}
			out = append(out,
				record.New(ref, record.AttrName, record.StringVal(fmt.Sprintf("/r/%d", i))),
				record.New(ref, record.AttrType, record.StringVal(record.TypeFile)))
		}
		return out
	}

	const pre, post = 3000, 150 // appends before / after the checkpoint

	cmd, c := start()
	for lo := 0; lo < pre; lo += 500 {
		if _, err := c.Append(recs(lo, 500)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	info, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 2*pre {
		t.Fatalf("checkpoint covers %d records, want %d", info.Records, 2*pre)
	}
	// Post-checkpoint appends: acknowledged (therefore durably logged),
	// never checkpointed.
	if _, err := c.Append(recs(pre, post)); err != nil {
		t.Fatal(err)
	}

	// SIGKILL mid-flight: no clean shutdown, no final checkpoint.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	_, c2 := start()
	st, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.RecoveredGen != info.Gen {
		t.Fatalf("recovered generation %d, want %d", st.RecoveredGen, info.Gen)
	}
	if st.RecoveredRecords != 2*pre {
		t.Fatalf("recovered snapshot holds %d records, want %d", st.RecoveredRecords, 2*pre)
	}
	// No lost records: everything acknowledged before the kill is served.
	if want := int64(2 * (pre + post)); st.Records != want {
		t.Fatalf("restarted daemon serves %d records, want %d (lost records)", st.Records, want)
	}
	// Proportional work: recovery decoded only the post-checkpoint tail,
	// and the checkpoint's offsets cover a meaningful chunk of the log.
	if st.EntriesDecoded != int64(2*post) {
		t.Fatalf("recovery decoded %d entries, want %d (the tail only)", st.EntriesDecoded, 2*post)
	}
	if st.ResumeBytes == 0 {
		t.Fatal("recovery reports no resumed bytes")
	}
	if st.SkippedGens != 0 {
		t.Fatalf("recovery skipped %d generations on a clean store", st.SkippedGens)
	}

	// Both pre- and post-checkpoint records answer queries.
	for _, name := range []string{"/r/10", fmt.Sprintf("/r/%d", pre+post-1)} {
		res, err := c2.Query(fmt.Sprintf(`select F from Provenance.file as F where F.name = %q`, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("query for %s returned %d rows, want 1", name, len(res.Rows))
		}
	}
}

// TestKillRestartOpenRemoteTransaction is the protocol-v2 crash promise:
// a client holds an open remote object (a §6.5 browser session), batches
// acknowledged disclosures against it, the daemon is SIGKILLed with the
// handle still open and no checkpoint taken since, and the restarted
// daemon must (a) revive the object by reference, (b) serve every
// acknowledged record, and (c) keep accepting disclosures against the
// revived object — no acked record lost, no identity recycled.
func TestKillRestartOpenRemoteTransaction(t *testing.T) {
	bin := buildPassd(t)
	logDir := filepath.Join(t.TempDir(), "log")
	ckptDir := filepath.Join(t.TempDir(), "ckpt")

	cmd, c := startDaemon(t, bin, logDir, ckptDir)
	session, err := c.PassMkobj()
	if err != nil {
		t.Fatal(err)
	}
	ref := session.Ref()
	if err := dpapi.Disclose(session,
		record.New(ref, record.AttrType, record.StringVal(record.TypeSession)),
		record.New(ref, record.AttrName, record.StringVal("session-1")),
	); err != nil {
		t.Fatal(err)
	}
	// A pipelined batch of page-derivation records, acknowledged under
	// one durable ack. Each page is its own remote object.
	const pages = 40
	ro := session.(*RemoteObject)
	b := c.NewBatch()
	pageRefs := make([]pnode.Ref, 0, pages)
	for i := 0; i < pages; i++ {
		page, err := c.PassMkobj()
		if err != nil {
			t.Fatal(err)
		}
		pref := page.Ref()
		pageRefs = append(pageRefs, pref)
		if err := b.Disclose(page.(*RemoteObject),
			record.New(pref, record.AttrType, record.StringVal(record.TypeDocument)),
			record.New(pref, record.AttrName, record.StringVal(fmt.Sprintf("page-%d", i))),
			record.Input(pref, ro.Ref()),
		); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}

	// An identity with no disclosures at all: the acknowledged mkobj
	// alone (its MKOBJ allocation record) must survive the crash.
	bare, err := c.PassMkobj()
	if err != nil {
		t.Fatal(err)
	}
	bareRef := bare.Ref()

	// SIGKILL with the session handle open, mid-transaction: no Close, no
	// final checkpoint, nothing graceful.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	_, c2 := startDaemon(t, bin, logDir, ckptDir)
	back, err := c2.PassReviveObj(ref)
	if err != nil {
		t.Fatalf("revive after SIGKILL: %v", err)
	}
	if back.Ref().PNode != ref.PNode {
		t.Fatalf("revived %v, want pnode %v", back.Ref(), ref.PNode)
	}
	// Every acknowledged record is served: the full page fan-out answers
	// an ancestry query.
	res, err := c2.Query(`select P from Provenance.document as P P.input as S
	                      where S.type = "SESSION"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != pages {
		t.Fatalf("restarted daemon serves %d acked pages, want %d", len(res.Rows), pages)
	}
	// The transaction continues: new disclosures against the revived
	// object, and fresh objects allocate past every pre-crash identity.
	if err := dpapi.Disclose(back, record.Input(back.Ref(), pageRefs[0])); err != nil {
		t.Fatalf("disclose after revive: %v", err)
	}
	if _, err := c2.PassReviveObj(bareRef); err != nil {
		t.Fatalf("revive of never-disclosed object after SIGKILL: %v", err)
	}
	fresh, err := c2.PassMkobj()
	if err != nil {
		t.Fatal(err)
	}
	for _, pref := range append(pageRefs, bareRef) {
		if fresh.Ref().PNode <= pref.PNode {
			t.Fatalf("pnode %v re-entered recycled space (%v)", fresh.Ref().PNode, pref.PNode)
		}
	}
}
