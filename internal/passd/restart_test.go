package passd

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"passv2/internal/pnode"
	"passv2/internal/record"
)

// TestKillRestartRecovery is the whole-daemon integration test: a real
// passd process tails a log directory on disk, acknowledges appends,
// checkpoints, is SIGKILLed mid-stream, and is restarted from the
// checkpoint directory. The restarted daemon must serve every
// acknowledged record, report the recovered generation, and — the
// proportional-work assertion — have decoded only the log entries past
// the checkpointed offsets.
func TestKillRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives a real daemon; skipped in -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}
	bin := filepath.Join(t.TempDir(), "passd")
	if out, err := exec.Command(goBin, "build", "-o", bin, "passv2/cmd/passd").CombinedOutput(); err != nil {
		t.Fatalf("building passd: %v\n%s", err, out)
	}
	logDir := filepath.Join(t.TempDir(), "log")
	ckptDir := filepath.Join(t.TempDir(), "ckpt")

	start := func() (*exec.Cmd, *Client) {
		t.Helper()
		cmd := exec.Command(bin,
			"-addr", "127.0.0.1:0",
			"-logdir", logDir,
			"-checkpoint-dir", ckptDir,
			"-drain-interval", "50ms",
			"-checkpoint-interval", "1h", // checkpoints only via the verb
		)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
		// The daemon prints "passd: serving N records on ADDR" once bound;
		// earlier lines narrate recovery.
		addrCh := make(chan string, 1)
		go func() {
			// Ends when the daemon dies and its stdout closes.
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				line := sc.Text()
				t.Logf("daemon: %s", line)
				if i := strings.LastIndex(line, " on "); i >= 0 && strings.HasPrefix(line, "passd: serving") {
					select {
					case addrCh <- line[i+4:]:
					default:
					}
				}
			}
		}()
		var addr string
		select {
		case addr = <-addrCh:
		case <-time.After(30 * time.Second):
			t.Fatal("daemon never reported its address")
		}
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return cmd, c
	}

	recs := func(lo, n int) []record.Record {
		out := make([]record.Record, 0, 2*n)
		for i := lo; i < lo+n; i++ {
			ref := pnode.Ref{PNode: pnode.PNode(i + 1), Version: 1}
			out = append(out,
				record.New(ref, record.AttrName, record.StringVal(fmt.Sprintf("/r/%d", i))),
				record.New(ref, record.AttrType, record.StringVal(record.TypeFile)))
		}
		return out
	}

	const pre, post = 3000, 150 // appends before / after the checkpoint

	cmd, c := start()
	for lo := 0; lo < pre; lo += 500 {
		if _, err := c.Append(recs(lo, 500)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	info, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 2*pre {
		t.Fatalf("checkpoint covers %d records, want %d", info.Records, 2*pre)
	}
	// Post-checkpoint appends: acknowledged (therefore durably logged),
	// never checkpointed.
	if _, err := c.Append(recs(pre, post)); err != nil {
		t.Fatal(err)
	}

	// SIGKILL mid-flight: no clean shutdown, no final checkpoint.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	_, c2 := start()
	st, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.RecoveredGen != info.Gen {
		t.Fatalf("recovered generation %d, want %d", st.RecoveredGen, info.Gen)
	}
	if st.RecoveredRecords != 2*pre {
		t.Fatalf("recovered snapshot holds %d records, want %d", st.RecoveredRecords, 2*pre)
	}
	// No lost records: everything acknowledged before the kill is served.
	if want := int64(2 * (pre + post)); st.Records != want {
		t.Fatalf("restarted daemon serves %d records, want %d (lost records)", st.Records, want)
	}
	// Proportional work: recovery decoded only the post-checkpoint tail,
	// and the checkpoint's offsets cover a meaningful chunk of the log.
	if st.EntriesDecoded != int64(2*post) {
		t.Fatalf("recovery decoded %d entries, want %d (the tail only)", st.EntriesDecoded, 2*post)
	}
	if st.ResumeBytes == 0 {
		t.Fatal("recovery reports no resumed bytes")
	}
	if st.SkippedGens != 0 {
		t.Fatalf("recovery skipped %d generations on a clean store", st.SkippedGens)
	}

	// Both pre- and post-checkpoint records answer queries.
	for _, name := range []string{"/r/10", fmt.Sprintf("/r/%d", pre+post-1)} {
		res, err := c2.Query(fmt.Sprintf(`select F from Provenance.file as F where F.name = %q`, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("query for %s returned %d rows, want 1", name, len(res.Rows))
		}
	}
}
